module fssim

go 1.22
