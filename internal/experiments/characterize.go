package experiments

import (
	"fmt"
	"sort"

	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

// profilePairNeeds declares the two profiled full-system runs Figs 3-5 read
// (ab-rand and ab-seq); the underlying cache entries double as the fig1/fig8
// detailed baselines.
func profilePairNeeds(cfg Config) []RunKey {
	return []RunKey{
		cfg.benchKey("ab-rand", machine.FullSystem, 0),
		cfg.benchKey("ab-seq", machine.FullSystem, 0),
	}
}

// fig6Needs declares profiled full-system runs of every OS-intensive
// benchmark.
func fig6Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		keys = append(keys, cfg.benchKey(name, machine.FullSystem, 0))
	}
	return keys
}

// Fig3 regenerates Figure 3: the average and range (avg ± std) of cycles and
// IPC per OS service, for ab-rand and ab-seq, services invoked more than once.
func Fig3(cfg Config) (*Result, error) {
	t := NewTable("service", "bench", "n", "cycles avg", "cycles ±std", "IPC avg", "IPC ±std")
	for _, bench := range []string{"ab-rand", "ab-seq"} {
		prof, err := profileRun(cfg, bench)
		if err != nil {
			return nil, err
		}
		for _, sp := range prof.Services() {
			if sp.N < 2 {
				continue
			}
			t.AddRowf(sp.Service.String(), bench, fmt.Sprint(sp.N),
				f1(sp.Cycles.Mean()), f1(sp.Cycles.Std()),
				f3(sp.IPC.Mean()), f3(sp.IPC.Std()))
		}
	}
	return &Result{Table: t}, nil
}

// Fig4 regenerates Figure 4: sys_read's execution time across invocations
// for ab-rand and ab-seq. The table summarizes the series (the full series is
// available programmatically via core.Profiler); the paper's observation is
// high invocation-to-invocation variation over a limited set of levels.
func Fig4(cfg Config) (*Result, error) {
	t := NewTable("bench", "invocations", "min cyc", "p25", "median", "p75", "max cyc", "distinct levels (1k-inst x 4k-cyc bins)")
	for _, bench := range []string{"ab-rand", "ab-seq"} {
		prof, err := profileRun(cfg, bench)
		if err != nil {
			return nil, err
		}
		sp := prof.Service(isa.Sys(isa.SysRead))
		if sp == nil {
			continue
		}
		cyc := make([]float64, len(sp.Series))
		for i, s := range sp.Series {
			cyc[i] = float64(s.Cycles)
		}
		mn, q1, md, q3, mx := quantiles(cyc)
		h := sp.Hist2D(1000, 4000)
		t.AddRowf(bench, fmt.Sprint(len(cyc)), f1(mn), f1(q1), f1(md), f1(q3), f1(mx),
			fmt.Sprint(h.NonEmpty()))
	}
	return &Result{Table: t, Notes: []string{
		"Use `oschar -bench ab-rand -service sys_read -series` to dump the full per-invocation series.",
	}}, nil
}

// Fig5 regenerates Figure 5: the bubble histogram of sys_read behavior
// points over instruction bins (1000 insts) and cycle bins (4000 cycles).
// Each row is one non-empty bubble; the paper's observation is that few
// bins are occupied and, per instruction bin, cycles cluster narrowly.
func Fig5(cfg Config) (*Result, error) {
	t := NewTable("bench", "inst bin center", "cycle bin center", "occurrences")
	for _, bench := range []string{"ab-rand", "ab-seq"} {
		prof, err := profileRun(cfg, bench)
		if err != nil {
			return nil, err
		}
		sp := prof.Service(isa.Sys(isa.SysRead))
		if sp == nil {
			continue
		}
		cells := sp.Hist2D(1000, 4000).Cells()
		for _, c := range cells {
			t.AddRowf(bench, f1(c.X), f1(c.Y), fmt.Sprint(c.Count))
		}
	}
	return &Result{Table: t}, nil
}

// Fig6 regenerates Figure 6: average coefficient of variation of execution
// time and IPC across OS services, with and without scaled clustering, for
// the five OS-intensive benchmarks. The paper reports time CV dropping
// roughly 0.72 -> 0.15 (4.7x) and IPC CV 0.13 -> 0.08 on average.
func Fig6(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "time CV non-clustered", "time CV clustered",
		"IPC CV non-clustered", "IPC CV clustered")
	var sums core.CVSummary
	n := 0
	for _, bench := range workload.OSIntensiveNames() {
		prof, err := profileRun(cfg, bench)
		if err != nil {
			return nil, err
		}
		cv := prof.CVs()
		t.AddRowf(bench, f3(cv.NonClusteredTime), f3(cv.ClusteredTime),
			f3(cv.NonClusteredIPC), f3(cv.ClusteredIPC))
		sums.NonClusteredTime += cv.NonClusteredTime
		sums.ClusteredTime += cv.ClusteredTime
		sums.NonClusteredIPC += cv.NonClusteredIPC
		sums.ClusteredIPC += cv.ClusteredIPC
		n++
	}
	t.AddRowf("average", f3(sums.NonClusteredTime/float64(n)), f3(sums.ClusteredTime/float64(n)),
		f3(sums.NonClusteredIPC/float64(n)), f3(sums.ClusteredIPC/float64(n)))
	return &Result{Table: t}, nil
}

func quantiles(xs []float64) (mn, q1, md, q3, mx float64) {
	if len(xs) == 0 {
		return
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	return s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1]
}
