package experiments

import (
	"testing"

	"fssim/internal/machine"
)

// withPoisonedPools runs fn with every pooled record in the simulator —
// vacated event-heap slots, recycled delivery and sleep-queue slabs, the
// per-machine measurement/prediction scratch — scrubbed with loud garbage at
// release time. If any consumer reads a recycled record before its producer
// fully rewrites it, the poison leaks into simulated state and the
// byte-identity assertions below fail. The global is written before any
// simulation goroutine starts and restored after they have all joined, so
// the toggle is race-free.
func withPoisonedPools(t *testing.T, fn func()) {
	t.Helper()
	old := machine.PoisonPools
	machine.PoisonPools = true
	defer func() { machine.PoisonPools = old }()
	fn()
}

// TestPoisonedPoolsDeterminism re-runs the parallelism byte-identity
// contract with dirty pools: the hot-path experiments (the figures whose
// goldens the acceptance gate compares) must render identically clean vs
// poisoned, serial vs eight-wide. Clean-vs-poisoned is the sharper check —
// it proves pooling is invisible to simulation output, not merely
// self-consistent.
func TestPoisonedPoolsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the hot-path experiments three times")
	}
	exps := []string{"fig1", "fig2", "fig10", "fig11"}
	render := func(parallelism int) map[string]string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc}
		results, err := RunAll(exps, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		out := make(map[string]string, len(results))
		for _, res := range results {
			out[res.ID] = res.StableRender()
		}
		return out
	}
	clean := render(1)
	var pj1, pj8 map[string]string
	withPoisonedPools(t, func() {
		pj1 = render(1)
		pj8 = render(8)
	})
	for _, id := range exps {
		if clean[id] == "" {
			t.Fatalf("%s: missing clean rendering", id)
		}
		if clean[id] != pj1[id] {
			t.Errorf("%s: poisoned pools changed the output — a recycled record leaks state:\n--- clean ---\n%s\n--- poisoned ---\n%s",
				id, clean[id], pj1[id])
		}
		if pj1[id] != pj8[id] {
			t.Errorf("%s: poisoned run renders differently at -j 1 vs -j 8", id)
		}
	}
}

// TestPoisonedFaultedDeterminism extends the dirty-pool contract to
// perturbed runs: fault plans lean hardest on the pooled paths (sleep
// wakeups, loss-delayed segment deliveries, jittered scheduling), so a
// poisoned faulted run failing byte-identity would localize a leak there.
func TestPoisonedFaultedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs a faulted experiment three times")
	}
	render := func(parallelism int) string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc, FaultPlan: "mild"}
		res, err := Run("fig11", cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.StableRender()
	}
	clean := render(1)
	withPoisonedPools(t, func() {
		if p := render(1); p != clean {
			t.Errorf("faulted fig11 output changed under poisoned pools:\n--- clean ---\n%s\n--- poisoned ---\n%s", clean, p)
		}
		if p1, p8 := render(1), render(8); p1 != p8 {
			t.Errorf("poisoned faulted fig11 renders differently at -j 1 vs -j 8")
		}
	})
}

// TestPoisonedSampledDeterminism extends the dirty-pool contract to the
// stratified-sampling fast path: sampled runs lean on the emulated-interval
// machinery (virtual-clock advancement, prediction scratch reuse, phantom
// cache touches), so a recycled-record leak there would surface here as a
// clean-vs-poisoned or j1-vs-j8 divergence of the sampling experiment.
func TestPoisonedSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the sampling experiment three times")
	}
	render := func(parallelism int) string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc}
		res, err := Run("sampling", cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.StableRender()
	}
	clean := render(1)
	withPoisonedPools(t, func() {
		if p := render(1); p != clean {
			t.Errorf("sampling output changed under poisoned pools:\n--- clean ---\n%s\n--- poisoned ---\n%s", clean, p)
		}
		if p1, p8 := render(1), render(8); p1 != p8 {
			t.Errorf("poisoned sampling experiment renders differently at -j 1 vs -j 8")
		}
	})
}

// TestPoisonedTracedDeterminism closes the loop on the observability layer:
// traces and metrics are recorded from the same hot loop the pools serve, so
// all three exports must be byte-identical with pools poisoned, at any -j.
func TestPoisonedTracedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs traced fig1 three times")
	}
	r, c, j, m := tracedFig1(t, 1)
	withPoisonedPools(t, func() {
		r1, c1, j1, m1 := tracedFig1(t, 1)
		r8, c8, j8, m8 := tracedFig1(t, 8)
		if r1 != r || c1 != c || j1 != j || m1 != m {
			t.Errorf("traced fig1 exports changed under poisoned pools (render %v, chrome %v, jsonl %v, metrics %v)",
				r1 != r, c1 != c, j1 != j, m1 != m)
		}
		if r1 != r8 || c1 != c8 || j1 != j8 || m1 != m8 {
			t.Errorf("poisoned traced fig1 differs at -j 1 vs -j 8 (render %v, chrome %v, jsonl %v, metrics %v)",
				r1 != r8, c1 != c8, j1 != j8, m1 != m8)
		}
	})
}
