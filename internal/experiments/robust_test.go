package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fssim/internal/kernel"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

// The misbehaving benchmarks the robustness tests run. Hidden keeps them out
// of workload.Names(), so the paper-artifact experiments (which enumerate the
// benchmark set) never pick them up even though they share this test binary.
func init() {
	workload.Register(workload.Benchmark{
		Name: "panic-test", Hidden: true,
		Description: "deliberately panics mid-simulation",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("boom", func(p *kernel.Proc) {
			p.U.Mix(500)
			panic("deliberate test panic")
		})
	})
	workload.Register(workload.Benchmark{
		Name: "hang-test", Hidden: true,
		Description: "spins forever; only a timeout ends it",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("spin", func(p *kernel.Proc) {
			for {
				p.U.Mix(10_000)
			}
		})
	})
	workload.Register(workload.Benchmark{
		Name: "ok-test", Hidden: true,
		Description: "small well-behaved control workload",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("ok", func(p *kernel.Proc) {
			p.U.Mix(50_000)
		})
	})
}

func TestHiddenBenchmarksStayOutOfNames(t *testing.T) {
	for _, n := range workload.Names() {
		if strings.HasSuffix(n, "-test") {
			t.Fatalf("hidden benchmark %q leaked into Names()", n)
		}
	}
	if _, err := workload.Lookup("panic-test"); err != nil {
		t.Fatalf("hidden benchmark not runnable: %v", err)
	}
	if _, err := workload.Lookup("nope"); !errors.Is(err, workload.ErrUnknown) {
		t.Errorf("Lookup error does not wrap ErrUnknown: %v", err)
	}
}

// TestPanicIsolation is the crash-proofing contract: a benchmark that panics
// mid-simulation yields a per-run *RunError — it does not take down the
// scheduler, and other runs on the same scheduler complete normally.
func TestPanicIsolation(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 2})
	_, err := s.Get(s.cfg.benchKey("panic-test", machine.FullSystem, 0))
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Attempts != 1 || re.Timeout {
		t.Errorf("unexpected RunError shape: %+v", re)
	}
	if !strings.Contains(err.Error(), "deliberate test panic") {
		t.Errorf("error lost the panic cause: %v", err)
	}
	// The same scheduler still serves healthy runs.
	res, err := s.Get(s.cfg.benchKey("ok-test", machine.FullSystem, 0))
	if err != nil {
		t.Fatalf("healthy run failed after a panicked one: %v", err)
	}
	if res.Stats.Cycles == 0 {
		t.Error("healthy run produced no cycles")
	}
	if st := s.Stats(); st.Failures != 1 {
		t.Errorf("Failures = %d, want 1", st.Failures)
	}
}

// TestEvictOnFailure: a failed run must not poison the memo cache — the next
// Get for the same key re-executes instead of replaying the stored error.
func TestEvictOnFailure(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 1})
	key := s.cfg.benchKey("panic-test", machine.FullSystem, 0)
	if _, err := s.Get(key); err == nil {
		t.Fatal("panicking run succeeded")
	}
	if _, err := s.Get(key); err == nil {
		t.Fatal("panicking run succeeded on re-get")
	}
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("failed entry was cached: misses=%d hits=%d", st.Misses, st.Hits)
	}
	if st.Distinct != 0 {
		t.Errorf("failed entries still memoized: distinct=%d", st.Distinct)
	}
}

// TestRetriesUseFreshSeeds: each retry attempt re-runs the workload with a
// distinct derived machine seed, and the attempts are accounted.
func TestRetriesUseFreshSeeds(t *testing.T) {
	var seeds []int64
	workload.Register(workload.Benchmark{
		Name: "retry-test", Hidden: true,
	}, func(k *kernel.Kernel, scale float64) {
		seeds = append(seeds, k.Machine().Config().Seed)
		panic("always fails")
	})
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 1, Retries: 2})
	key := s.cfg.benchKey("retry-test", machine.FullSystem, 0)
	_, err := s.Get(key)
	var re *RunError
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("want 3 attempts, got %v", err)
	}
	if len(seeds) != 3 {
		t.Fatalf("workload built %d times, want 3", len(seeds))
	}
	if seeds[0] != key.AttemptSeed(0) || seeds[1] != key.AttemptSeed(1) || seeds[2] != key.AttemptSeed(2) {
		t.Errorf("attempt seeds not derived: %v", seeds)
	}
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] || seeds[0] == seeds[2] {
		t.Errorf("retry seeds not fresh: %v", seeds)
	}
	if st := s.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
}

func TestAttemptSeedDerivation(t *testing.T) {
	key := Config{Scale: 1, Seed: 1}.benchKey("du", machine.FullSystem, 0)
	if key.AttemptSeed(0) != key.DeriveSeed() {
		t.Error("attempt 0 must reuse the canonical derived seed")
	}
	if key.AttemptSeed(1) == key.AttemptSeed(0) || key.AttemptSeed(2) == key.AttemptSeed(1) {
		t.Error("retry seeds collide")
	}
	if key.AttemptSeed(1) != key.AttemptSeed(1) {
		t.Error("retry seed not deterministic")
	}
	// Faulted keys derive different seeds; unfaulted derivation is unchanged
	// by the existence of the Faults field (byte-identity guarantee).
	if key.withFaults("mild").DeriveSeed() == key.DeriveSeed() {
		t.Error("fault plan does not separate derived seeds")
	}
}

// TestPerRunTimeout: a hanging simulation is aborted at the configured
// deadline and reported as a timeout, not as a generic failure.
func TestPerRunTimeout(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 1, Timeout: 50 * time.Millisecond})
	_, err := s.Get(s.cfg.benchKey("hang-test", machine.FullSystem, 0))
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if !re.Timeout {
		t.Errorf("timeout not flagged: %+v", re)
	}
	if !errors.Is(err, machine.ErrCanceled) {
		t.Errorf("cause chain lost machine.ErrCanceled: %v", err)
	}
}

// TestContextCancellation: canceling the suite context aborts in-flight runs
// and fails fast without burning retries.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Scale: 1, Seed: 1, Parallelism: 1, Retries: 5}.WithContext(ctx)
	s := NewScheduler(cfg)
	done := make(chan error, 1)
	go func() {
		_, err := s.Get(s.cfg.benchKey("hang-test", machine.FullSystem, 0))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled run reported success")
		}
		if st := s.Stats(); st.Retries != 0 {
			t.Errorf("cancellation burned %d retries", st.Retries)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not end the run")
	}
}

// TestZeroTimeoutMeansNoDeadline pins the timeout semantics: zero is "no
// per-run deadline" — a run under Timeout 0 completes normally rather than
// being canceled immediately.
func TestZeroTimeoutMeansNoDeadline(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 1, Timeout: 0})
	res, err := s.Get(s.cfg.benchKey("ok-test", machine.FullSystem, 0))
	if err != nil {
		t.Fatalf("zero timeout canceled a healthy run: %v", err)
	}
	if res.Stats.Cycles == 0 {
		t.Error("zero-timeout run produced no cycles")
	}
}

// TestNegativeTimeoutIsConfigError pins the other half: a negative timeout is
// a configuration mistake surfaced at Run/RunMany time, never a silent
// immediate cancel.
func TestNegativeTimeoutIsConfigError(t *testing.T) {
	cfg := Config{Scale: 1, Seed: 1, Timeout: -time.Second}
	if _, err := Run("fig7", cfg); err == nil || !strings.Contains(err.Error(), "timeout must be non-negative") {
		t.Errorf("Run did not reject negative timeout: %v", err)
	}
	if _, err := NewScheduler(cfg).RunMany([]string{"fig7"}); err == nil || !strings.Contains(err.Error(), "timeout must be non-negative") {
		t.Errorf("RunMany did not reject negative timeout: %v", err)
	}
	if _, err := RunAll([]string{"fig7"}, cfg); err == nil || !strings.Contains(err.Error(), "timeout must be non-negative") {
		t.Errorf("RunAll did not reject negative timeout: %v", err)
	}
}

// TestQueuedCancellation covers the cancellation edge the serving front-end
// leans on: a run whose context is canceled while it is still queued (waiting
// for a worker slot, not yet running) must resolve promptly with a *RunError
// wrapping context.Canceled and Attempts == 0, and the cancellation must not
// evict unrelated completed entries from the memo cache.
func TestQueuedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Scale: 1, Seed: 1, Parallelism: 1}.WithContext(ctx)
	s := NewScheduler(cfg)

	// A completed, memoized run that must survive the cancellation.
	okKey := s.cfg.benchKey("ok-test", machine.FullSystem, 0)
	if _, err := s.Get(okKey); err != nil {
		t.Fatalf("setup run failed: %v", err)
	}

	// Occupy the single worker slot with a run that only ends on cancel.
	hangDone := make(chan struct{})
	go func() {
		defer close(hangDone)
		_, _ = s.Get(s.cfg.benchKey("hang-test", machine.FullSystem, 0))
	}()

	// Wait until the hanging run actually holds the worker slot, so the next
	// request is genuinely queued rather than racing it for the slot.
	for i := 0; len(s.slots) == 0; i++ {
		if i > 1000 {
			t.Fatal("hanging run never acquired the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue a run behind it (distinct L2 so it cannot hit the memo cache).
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Get(s.cfg.benchKey("ok-test", machine.FullSystem, 2<<20))
		queuedErr <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the queue
	cancel()

	select {
	case err := <-queuedErr:
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("queued cancellation returned %T, want *RunError: %v", err, err)
		}
		if re.Attempts != 0 {
			t.Errorf("queued run reports %d attempts, want 0 (it never started)", re.Attempts)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued RunError does not wrap context.Canceled: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued run did not resolve promptly on cancellation")
	}
	<-hangDone

	// Only the completed entry remains memoized: the queued and the hanging
	// runs were evicted, the unrelated completed one was not.
	if st := s.Stats(); st.Distinct != 1 {
		t.Errorf("Distinct = %d after cancellation, want 1 (completed entry retained)", st.Distinct)
	}
	s.mu.Lock()
	_, kept := s.runs[okKey]
	s.mu.Unlock()
	if !kept {
		t.Error("cancellation evicted the unrelated completed memo-cache entry")
	}
}

// TestLookupDetachedExecution: a Lookup whose waiter context expires leaves
// the underlying simulation running for later callers — the serving
// front-end's "abandoned request does not kill the shared run" contract.
func TestLookupDetachedExecution(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 2})
	key := s.cfg.benchKey("ok-test", machine.FullSystem, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // waiter gives up immediately
	_, status, err := s.Lookup(ctx, key)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter error = %v, want context.Canceled", err)
	}
	if status != LookupMiss {
		t.Errorf("first Lookup status = %v, want miss", status)
	}

	// The detached run completes; a fresh waiter collects it.
	out, status, err := s.Lookup(context.Background(), key)
	if err != nil {
		t.Fatalf("second Lookup failed: %v", err)
	}
	if status == LookupMiss {
		t.Error("second Lookup re-executed instead of joining/hitting the first run")
	}
	if out.Result.Stats.Cycles == 0 {
		t.Error("detached run produced no cycles")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (single detached execution)", st.Misses)
	}
}

// TestAbortedTraceFlush: a traced run that dies (here: per-run timeout) still
// leaves its partial recorder, and the exports label it "!aborted" — the
// drain-path guarantee that interrupted invocations produce usable traces.
func TestAbortedTraceFlush(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 1,
		Timeout: 50 * time.Millisecond, Trace: true})
	if _, err := s.Get(s.cfg.benchKey("hang-test", machine.FullSystem, 0)); err == nil {
		t.Fatal("hanging run succeeded")
	}
	aborted := s.AbortedTracedRuns()
	if len(aborted) != 1 {
		t.Fatalf("AbortedTracedRuns = %d entries, want 1", len(aborted))
	}
	if aborted[0].Rec == nil || aborted[0].Err == nil {
		t.Fatalf("aborted run lost its recorder or error: %+v", aborted[0])
	}
	var chrome, metrics strings.Builder
	if err := s.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRunMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), "!aborted") {
		t.Error("Chrome export does not label the aborted run")
	}
	if !strings.Contains(metrics.String(), "(aborted") {
		t.Error("metrics export does not label the aborted run")
	}
}

// TestAbortedTracesBounded: a long failure storm must not grow the salvaged
// partial-trace list without bound — a long-lived traced server would
// otherwise leak one recorder per failed run. Only the most recent
// maxAbortedTraces survive.
func TestAbortedTracesBounded(t *testing.T) {
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 2, Trace: true})
	for i := 0; i < maxAbortedTraces+8; i++ {
		key := RunKey{Bench: "panic-test", Mode: machine.FullSystem, Scale: 1, Seed: int64(i + 1)}
		if _, err := s.Get(key); err == nil {
			t.Fatalf("panicking run %d succeeded", i)
		}
	}
	aborted := s.AbortedTracedRuns()
	if len(aborted) != maxAbortedTraces {
		t.Fatalf("AbortedTracedRuns = %d entries, want capped at %d", len(aborted), maxAbortedTraces)
	}
	for _, tr := range aborted {
		if tr.Rec == nil || tr.Err == nil {
			t.Fatalf("salvaged trace lost its recorder or error: %+v", tr)
		}
	}
}

// TestRunManyPartialResults: one failing experiment yields a nil slot and a
// joined error while the other experiments' results come back intact.
func TestRunManyPartialResults(t *testing.T) {
	registry["zz-fail"] = runner{
		title: "always fails (test)",
		fn: func(Config) (*Result, error) {
			return nil, errors.New("synthetic experiment failure")
		},
	}
	defer delete(registry, "zz-fail")
	s := NewScheduler(Config{Scale: 1, Seed: 1, Parallelism: 2})
	results, err := s.RunMany([]string{"fig7", "zz-fail"})
	if err == nil {
		t.Fatal("failing experiment not reported")
	}
	if !strings.Contains(err.Error(), "synthetic experiment failure") {
		t.Errorf("joined error lost the cause: %v", err)
	}
	if results[0] == nil || results[0].ID != "fig7" {
		t.Error("healthy experiment result lost")
	}
	if results[1] != nil {
		t.Error("failed experiment produced a result")
	}
}

// TestFaultsGoldenOrdering guards the faults artifact's headline claim using
// the pinned golden (no re-simulation): under the storm plan, every
// re-learning strategy's average absolute cycle error is at most Best-Match's
// (which has no re-learning trigger of its own), and at least one recovers a
// strictly lower error.
func TestFaultsGoldenOrdering(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "faults.golden"))
	if err != nil {
		t.Fatalf("faults golden missing (generate with -update): %v", err)
	}
	avg := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 4 && fields[0] == "average" {
			var v float64
			if _, err := fmt.Sscanf(fields[3], "%f%%", &v); err != nil {
				t.Fatalf("unparseable average row %q: %v", line, err)
			}
			avg[fields[1]] = v
		}
	}
	base, ok := avg["Best-Match"]
	if !ok {
		t.Fatalf("no Best-Match average row in golden: %v", avg)
	}
	better := false
	for _, strat := range []string{"Statistical", "Delayed", "Eager"} {
		v, ok := avg[strat]
		if !ok {
			t.Fatalf("no %s average row in golden: %v", strat, avg)
		}
		if v > base {
			t.Errorf("%s average error %.1f%% exceeds Best-Match's %.1f%%", strat, v, base)
		}
		if v < base {
			better = true
		}
	}
	if !better {
		t.Errorf("no re-learning strategy beat Best-Match under faults: %v", avg)
	}
}
