package experiments

import (
	"fssim/internal/machine"
	"fssim/internal/workload"
)

// fig1Needs declares fig1's runs: every benchmark under full-system and
// application-only simulation at the default L2.
func fig1Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.Names() {
		keys = append(keys,
			cfg.benchKey(name, machine.FullSystem, 0),
			cfg.benchKey(name, machine.AppOnly, 0))
	}
	return keys
}

// Fig1 regenerates the paper's Figure 1: the L2 cache misses, execution time,
// and IPC obtained by full-system simulation, normalized to application-only
// simulation, for the five OS-intensive benchmarks and the four SPEC-like
// controls. The paper's shape: OS-intensive workloads diverge by 1-2 orders
// of magnitude; the SPEC controls stay near 1.
func Fig1(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "L2miss(App+OS)/(AppOnly)", "time ratio", "IPC ratio", "OS insts")
	for _, name := range workload.Names() {
		full, err := runBench(cfg, name, machine.FullSystem, 0)
		if err != nil {
			return nil, err
		}
		app, err := runBench(cfg, name, machine.AppOnly, 0)
		if err != nil {
			return nil, err
		}
		fs, as := full.Stats, app.Stats
		// An app-only run can take literally zero post-warm-up L2 misses;
		// clamp the denominator so the ratio renders as a (huge) number.
		appMisses := as.Mem.L2.Misses
		if appMisses == 0 {
			appMisses = 1
		}
		t.AddRowf(name,
			f1(ratio(fs.Mem.L2.Misses, appMisses)),
			f1(ratio(fs.Cycles, as.Cycles)),
			f3(fs.IPC()/nonzero(as.IPC())),
			pct(float64(fs.OSInsts)/float64(fs.Insts)))
	}
	return &Result{Table: t, Notes: []string{
		"App-only simulation executes OS services functionally at zero cost, as in the paper's baseline.",
	}}, nil
}

// fig2Needs declares fig2's runs: every benchmark in both modes at 512KB and
// 1MB L2 (the 1MB key normalizes onto fig1's default-L2 baselines).
func fig2Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.Names() {
		for _, mode := range []machine.SimMode{machine.AppOnly, machine.FullSystem} {
			keys = append(keys,
				cfg.benchKey(name, mode, 512<<10),
				cfg.benchKey(name, mode, 1<<20))
		}
	}
	return keys
}

// Fig2 regenerates Figure 2: the speedup ratio from growing the L2 from
// 512KB to 1MB, measured by application-only simulation versus full-system
// simulation. The paper's conclusion: app-only simulation wrongly reports
// negligible benefit for OS-intensive workloads.
func Fig2(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "App Only", "App+OS")
	for _, name := range workload.Names() {
		row := []string{name}
		for _, mode := range []machine.SimMode{machine.AppOnly, machine.FullSystem} {
			small, err := runBench(cfg, name, mode, 512<<10)
			if err != nil {
				return nil, err
			}
			large, err := runBench(cfg, name, mode, 1<<20)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(ratio(small.Stats.Cycles, large.Stats.Cycles)))
		}
		t.AddRowf(row...)
	}
	return &Result{Table: t}, nil
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
