package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tracedFig1 runs fig1 with tracing on at the given parallelism and returns
// the stable rendering plus all three exports.
func tracedFig1(t *testing.T, parallelism int) (render, chrome, jsonl, metrics string) {
	t.Helper()
	mc := ReferenceModeCosts
	s := NewScheduler(Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc, Trace: true})
	res, err := s.Run("fig1")
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	var c, j, m bytes.Buffer
	if err := s.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONLTrace(&j); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRunMetrics(&m); err != nil {
		t.Fatal(err)
	}
	return res.StableRender(), c.String(), j.String(), m.String()
}

// TestTracedDeterminism is the observability layer's own j1-vs-j8 contract:
// recorded traces and per-run metrics — not just the result tables — must be
// byte-identical regardless of harness parallelism.
func TestTracedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs fig1 twice with tracing")
	}
	r1, c1, j1, m1 := tracedFig1(t, 1)
	r8, c8, j8, m8 := tracedFig1(t, 8)
	if r1 != r8 {
		t.Errorf("traced fig1 renders differently at -j 1 vs -j 8")
	}
	if c1 != c8 {
		t.Errorf("Chrome trace export differs at -j 1 vs -j 8")
	}
	if j1 != j8 {
		t.Errorf("JSONL trace export differs at -j 1 vs -j 8")
	}
	if m1 != m8 {
		t.Errorf("metrics dump differs at -j 1 vs -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", m1, m8)
	}
	if len(c1) == 0 || !strings.Contains(c1, `"traceEvents"`) {
		t.Errorf("Chrome export looks empty or malformed: %q", firstN(c1, 200))
	}
	if !strings.Contains(m1, "# run ") || !strings.Contains(m1, "interval.cycles_count") {
		t.Errorf("metrics dump missing expected sections:\n%s", firstN(m1, 400))
	}
}

// TestTracingDoesNotPerturbResults pins the zero-influence half of the
// zero-overhead contract: a traced suite's tables are byte-identical to an
// untraced suite's. Combined with the golden tests (which run untraced), this
// proves instrumentation sites never change simulated behavior.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs fig1 twice")
	}
	render := func(traced bool) string {
		t.Helper()
		mc := ReferenceModeCosts
		res, err := Run("fig1", Config{Scale: 0.1, Seed: 1, Parallelism: 4, ModeCosts: &mc, Trace: traced})
		if err != nil {
			t.Fatal(err)
		}
		return res.StableRender()
	}
	if off, on := render(false), render(true); off != on {
		t.Errorf("tracing changed the result tables:\n--- untraced ---\n%s\n--- traced ---\n%s", off, on)
	}
}

// TestUntracedSchedulerExportsNothing: with Trace unset, recorders are never
// created and the export surface yields an empty (but valid) document.
func TestUntracedSchedulerExportsNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs one simulation")
	}
	mc := ReferenceModeCosts
	s := NewScheduler(Config{Scale: 0.1, Seed: 1, ModeCosts: &mc})
	if _, err := s.Get(s.cfg.benchKey("gzip", 1, 0)); err != nil { // AppOnly gzip: cheapest run
		t.Fatal(err)
	}
	if runs := s.TracedRuns(); len(runs) != 0 {
		t.Errorf("untraced scheduler reported traced runs: %v", runs)
	}
	var c, m bytes.Buffer
	if err := s.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "traceEvents") {
		t.Errorf("empty Chrome export invalid: %s", c.String())
	}
	if err := s.WriteRunMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("untraced metrics dump not empty: %s", m.String())
	}
}

func firstN(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
