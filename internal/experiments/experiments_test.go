package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestIDsCoverPaperArtifacts(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("have %d experiments, want 18 (Figs 1-12 + Tables 1-2 + faults + warmstart + sampling + sweep)", len(ids))
	}
	if ids[0] != "fig1" || ids[11] != "fig12" || ids[12] != "tab1" || ids[13] != "tab2" ||
		ids[14] != "faults" || ids[15] != "sampling" || ids[16] != "sweep" || ids[17] != "warmstart" {
		t.Fatalf("ordering wrong: %v", ids)
	}
	for _, id := range ids {
		title, err := Title(id)
		if err != nil {
			t.Errorf("Title(%s): %v", id, err)
		}
		if title == "" {
			t.Errorf("%s has no title", id)
		}
	}
	if _, err := Title("fig99"); err == nil {
		t.Error("Title accepted an unknown id")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", DefaultConfig()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestFig7MatchesPaperAnchors(t *testing.T) {
	res, err := Run("fig7", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table.Render()
	// p_min = 3%: ~100 at 95% and a little over 150 at 99% (paper Fig 7).
	if !strings.Contains(out, "0.030  99") {
		t.Errorf("fig7 output missing the paper's 95%% anchor:\n%s", out)
	}
	if !strings.Contains(out, "152") {
		t.Errorf("fig7 output missing the paper's 99%% anchor:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", 1.5)
	tb.AddRowf("longer-name", "v")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[2], "x          ") {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Errorf("float cell not formatted:\n%s", out)
	}
}

func TestSpeedupEq10(t *testing.T) {
	// Paper Eq 10 sanity: full coverage at R=133 gives 133x; zero coverage 1x.
	if s := SpeedupEq10(1000, 1000, 133); math.Abs(s-133) > 1e-9 {
		t.Errorf("full-coverage speedup = %v", s)
	}
	if s := SpeedupEq10(1000, 0, 133); s != 1 {
		t.Errorf("zero-coverage speedup = %v", s)
	}
	// 89% coverage (the paper's average) at R=133: ~8.5x ceiling for the
	// covered instructions; the exact value follows Eq 10.
	want := 1000.0 / (890.0/133 + 110.0)
	if s := SpeedupEq10(1000, 890, 133); math.Abs(s-want) > 1e-9 {
		t.Errorf("Eq10(89%%) = %v, want %v", s, want)
	}
}

func TestMeasureModeCostsOrdering(t *testing.T) {
	mc := measureModeCosts(400_000)
	if mc.Emulation <= 0 || mc.InorderNoCache <= 0 {
		t.Fatalf("non-positive costs: %+v", mc)
	}
	if mc.Emulation >= mc.InorderNoCache {
		t.Errorf("emulation (%v) not cheaper than inorder-nocache (%v)",
			mc.Emulation, mc.InorderNoCache)
	}
	if mc.InorderCache <= mc.InorderNoCache {
		t.Errorf("caches did not add cost: %v vs %v", mc.InorderCache, mc.InorderNoCache)
	}
	if mc.OOOCache <= mc.OOONoCache {
		t.Errorf("ooo-cache (%v) not slower than ooo-nocache (%v)",
			mc.OOOCache, mc.OOONoCache)
	}
}

// TestFig6SmallScale exercises the characterization pipeline end to end at a
// tiny scale: clustering must reduce the execution-time CV (the paper's
// Fig 6 conclusion).
func TestFig6SmallScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.2
	res, err := Run("fig6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The last row is the average: clustered time CV < non-clustered.
	avg := res.Table.Rows[len(res.Table.Rows)-1]
	var non, clu float64
	if _, err := fmtSscan(avg[1], &non); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(avg[2], &clu); err != nil {
		t.Fatal(err)
	}
	if clu >= non {
		t.Errorf("clustering did not reduce time CV: %.3f vs %.3f", clu, non)
	}
}

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscanf(s, "%f", v) }

// TestAllExperimentsSmoke runs every artifact runner end to end at a small
// scale: each must produce a non-empty table without error. Skipped under
// -short (it simulates dozens of workload runs).
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs every experiment")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.15
	mc := ReferenceModeCosts
	cfg.ModeCosts = &mc
	sched := NewScheduler(cfg) // shared cache: overlapping runners simulate once
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := sched.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			if res.Render() == "" {
				t.Fatal("empty render")
			}
		})
	}
}
