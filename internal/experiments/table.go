package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used for all experiment output.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// AddRow appends a row; cells may be strings or anything fmt can print.
// float64 cells render with 3 decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of preformatted cells.
func (t *Table) AddRowf(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Cell formatting helpers shared across experiments.

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
