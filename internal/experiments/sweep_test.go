package experiments

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"fssim/internal/core"
)

// TestSweepTransferCutsDetailedWork is the tentpole acceptance check: every
// transferred sweep point must simulate at most half the detailed intervals
// of its cold twin, the ineligible point must be rejected and counted, and
// every import must carry provenance.
func TestSweepTransferCutsDetailedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the sweep experiment")
	}
	mc := ReferenceModeCosts
	s := NewScheduler(Config{Scale: 0.1, Seed: 1, Parallelism: 4, ModeCosts: &mc})
	res, err := s.Run("sweep")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TransferHits != 4 || st.TransferRejected != 2 {
		t.Errorf("transfer hits %d rejected %d, want 4 hits (2 benches x 2 eligible points) and 2 rejections",
			st.TransferHits, st.TransferRejected)
	}
	recs := s.Transfers()
	if len(recs) != 4 {
		t.Fatalf("Transfers() returned %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if !strings.HasPrefix(r.Prov.String(), "transferred-from=") {
			t.Errorf("%s: provenance %q lacks the transferred-from prefix", r.Key, r.Prov)
		}
	}

	var transferred int
	for _, line := range strings.Split(res.StableRender(), "\n") {
		f := strings.Fields(line)
		if len(f) != 9 || f[8] != "transferred" {
			continue
		}
		transferred++
		dc, err1 := strconv.Atoi(f[4])
		dw, err2 := strconv.Atoi(f[5])
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable detailed counts in row %q", line)
		}
		if dw*2 > dc {
			t.Errorf("%s @ %s: transferred point simulated %d detailed intervals vs %d cold — less than the required 2x cut",
				f[0], f[1], dw, dc)
		}
	}
	if transferred != 4 {
		t.Errorf("table shows %d transferred rows, want 4", transferred)
	}
}

// TestStoreTransferWarmStartsFromDonor covers the store-driven path end to
// end: a donor scheduler learns the 512KB point cold and persists it; a
// -transfer scheduler then imports it for the default (1MB) configuration,
// cutting detailed work at least 2x against a cold twin; and a third pass
// replays the transferred run from its own snapshot without simulating.
func TestStoreTransferWarmStartsFromDonor(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates accelerated runs")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)

	// Donor pass: the 512KB point, cold.
	if _, err := NewScheduler(cfg).Get(cfg.accelKey("ab-rand", core.Statistical, 512<<10)); err != nil {
		t.Fatal(err)
	}

	// Cold twin of the recipient, in a store-free scheduler.
	noWarm := cfg
	noWarm.WarmDir = ""
	coldRes, err := NewScheduler(noWarm).Get(cfg.accelKey("ab-rand", core.Statistical, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Recipient pass: -transfer resolves the stored donor for the 1MB point.
	tcfg := cfg
	tcfg.Transfer = true
	s := NewScheduler(tcfg)
	key := tcfg.accelKey("ab-rand", core.Statistical, 0)
	if key.Transfer != "store" {
		t.Fatalf("accelKey under Transfer config carries directive %q, want \"store\"", key.Transfer)
	}
	out, _, err := s.Lookup(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TransferHits != 1 || st.TransferRejected != 0 {
		t.Errorf("transfer hits %d rejected %d, want exactly one import", st.TransferHits, st.TransferRejected)
	}
	if out.Transfer == nil {
		t.Fatal("transferred run carries no provenance")
	}
	if out.Transfer.DonorBench != "ab-rand" || out.Transfer.Distance != 1.0 {
		t.Errorf("provenance = %+v, want ab-rand donor at distance 1.0", out.Transfer)
	}
	dc := coldRes.Stats.Intervals - coldRes.Stats.Emulated
	dw := out.Result.Stats.Intervals - out.Result.Stats.Emulated
	if dw*2 > dc {
		t.Errorf("transferred run simulated %d detailed intervals vs %d cold — less than a 2x cut", dw, dc)
	}

	// Replay pass: the transferred run's own snapshot replays under the same
	// resolved donor, with no new simulation.
	s2 := NewScheduler(tcfg)
	out2, _, err := s2.Lookup(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.WarmHits != 1 || st2.PLTLearned != 0 {
		t.Errorf("replay pass: warm hits %d learned %d, want 1 hit and no learning", st2.WarmHits, st2.PLTLearned)
	}
	if out2.Result.Stats != out.Result.Stats {
		t.Error("replayed transferred run differs from the run that produced the snapshot")
	}
	if out2.Transfer == nil || *out2.Transfer != *out.Transfer {
		t.Errorf("replayed provenance %+v differs from original %+v", out2.Transfer, out.Transfer)
	}
}

// TestStoreTransferRejectsIneligibleDonor: a donor beyond the distance cutoff
// is never imported — the directive is counted as rejected and the run is
// byte-identical to a cold one.
func TestStoreTransferRejectsIneligibleDonor(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates accelerated runs")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)

	// The only stored donor sits at 16MB: distance 4.0 from the default 1MB
	// recipient, comfortably beyond the 2.5 cutoff.
	if _, err := NewScheduler(cfg).Get(cfg.accelKey("ab-rand", core.Statistical, 16<<20)); err != nil {
		t.Fatal(err)
	}

	tcfg := cfg
	tcfg.Transfer = true
	s := NewScheduler(tcfg)
	out, _, err := s.Lookup(context.Background(), tcfg.accelKey("ab-rand", core.Statistical, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TransferHits != 0 || st.TransferRejected != 1 {
		t.Errorf("transfer hits %d rejected %d, want the lone directive rejected", st.TransferHits, st.TransferRejected)
	}
	if out.Transfer != nil {
		t.Errorf("rejected transfer still carries provenance %+v", out.Transfer)
	}

	noWarm := cfg
	noWarm.WarmDir = ""
	ref, err := NewScheduler(noWarm).Get(cfg.accelKey("ab-rand", core.Statistical, 0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Stats != ref.Stats {
		t.Error("rejected transfer's cold fallback differs from a plain cold run")
	}
}

// TestWarmSnapshotPathTieBreak pins the newest-snapshot selection when
// modification times collide (coarse filesystem timestamps): the
// lexicographically smallest path must win, deterministically.
func TestWarmSnapshotPathTieBreak(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates accelerated runs")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)
	s := NewScheduler(cfg)
	if _, err := s.Get(cfg.accelKey("ab-rand", core.Statistical, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(cfg.accelKey("ab-rand", core.Statistical, 512<<10)); err != nil {
		t.Fatal(err)
	}
	paths, err := s.WarmStore().List("ab-rand")
	if err != nil || len(paths) != 2 {
		t.Fatalf("List = (%v, %v), want two snapshots", paths, err)
	}
	when := time.Now().Truncate(time.Second)
	for _, p := range paths {
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.WarmSnapshotPath("ab-rand")
	if !ok || got != paths[0] {
		t.Errorf("WarmSnapshotPath with tied mtimes = (%q, %v), want the lexicographically smallest %q",
			got, ok, paths[0])
	}
}

// TestTransferConfigValidation: the transfer flag is meaningless without a
// warm store to draw donors from.
func TestTransferConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transfer = true
	if _, err := Run("fig7", cfg); err == nil || !strings.Contains(err.Error(), "WarmDir") {
		t.Errorf("Run with Transfer but no WarmDir = %v, want a WarmDir error", err)
	}
}
