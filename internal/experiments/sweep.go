package experiments

import (
	"fmt"

	"fssim/internal/core"
	"fssim/internal/transfer"
)

// The sweep experiment measures what cross-config PLT transfer buys on the
// paper's canonical design-space walk: an L2 capacity sweep (the Figs 2/10/12
// axis). The 512KB point is simulated cold and acts as the donor; every
// further point is simulated twice — once cold and once warm-started from the
// donor via the explicit "l2=<bytes>" directive — so the table shows, per
// point, the detailed-interval work transfer avoids and the prediction error
// it costs against the cold twin (both runs replay the identical workload
// trajectory, so the difference is purely the imported priors). An 8MB point
// sits beyond the eligibility cutoff (distance 4.0 > 2.5): its directive is
// rejected, counted, and the run falls back to a cold start the experiment
// verifies is byte-identical to the cold twin.
//
// The in-invocation sibling donor (rather than the warm store) keeps the
// experiment a pure function of the Config: no on-disk state participates,
// and the table is byte-identical at any parallelism, with or without
// Config.WarmDir.

// sweepDonorL2 is the sweep's first (donor) point.
const sweepDonorL2 = 512 << 10

// sweepPoints are the recipient L2 capacities walked from the donor:
// 1MB and 2MB are within the eligibility cutoff (distance 1.0 and 2.0);
// 8MB (distance 4.0) is deliberately beyond it to pin the rejection path.
var sweepPoints = []int{1 << 20, 2 << 20, 8 << 20}

// sweepBenches mirrors warmstartBenches: two OS-intensive workloads carry the
// result; more add cost, not information.
func sweepBenches() []string { return warmstartBenches() }

// sweepDirective is the transfer directive pairing every recipient with the
// sweep's donor point.
func sweepDirective() string {
	return transfer.Spec{L2: sweepDonorL2}.String()
}

// sweepKeys builds one benchmark's run set: the cold donor, then a cold and a
// transferred twin per recipient point. Keys are built explicitly (not through
// accelKey alone) so the cold twins stay cold even under a -transfer Config.
func sweepKeys(cfg Config, name string) (donor RunKey, cold, warm []RunKey) {
	donor = cfg.accelKey(name, core.Statistical, sweepDonorL2).withTransfer("")
	for _, l2 := range sweepPoints {
		base := cfg.accelKey(name, core.Statistical, l2).withTransfer("")
		cold = append(cold, base)
		warm = append(warm, base.withTransfer(sweepDirective()))
	}
	return donor, cold, warm
}

func sweepNeeds(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range sweepBenches() {
		donor, cold, warm := sweepKeys(cfg, name)
		keys = append(keys, donor)
		keys = append(keys, cold...)
		keys = append(keys, warm...)
	}
	return keys
}

// sizeLabel renders an L2 capacity the way the sweep table heads its rows.
func sizeLabel(bytes int) string {
	if bytes >= 1<<20 && bytes%(1<<20) == 0 {
		return fmt.Sprintf("%dMB", bytes>>20)
	}
	return fmt.Sprintf("%dKB", bytes>>10)
}

// SweepExp runs the transfer study: per sweep point, the detailed-interval
// work a transferred PLT avoids versus its cold twin, the cycle error the
// imported priors introduce, and the explicit rejection of an out-of-range
// donor.
func SweepExp(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "L2", "dist", "scale", "detailed cold", "detailed xfer",
		"speedup", "cyc err %", "status")
	var detCold, detWarm uint64
	var transferred, rejected int
	for _, name := range sweepBenches() {
		donorKey, coldKeys, warmKeys := sweepKeys(cfg, name)
		donorOut, err := getKey(cfg, donorKey)
		if err != nil {
			return nil, err
		}
		dDonor := donorOut.res.Stats.Intervals - donorOut.res.Stats.Emulated
		t.AddRowf(name, sizeLabel(sweepDonorL2), "-", "-",
			fmt.Sprintf("%d", dDonor), "-", "-", "-", "donor")

		donorCrd := transfer.FromConfig(machineConfigFor(donorKey))
		for i, l2 := range sweepPoints {
			coldOut, err := getKey(cfg, coldKeys[i])
			if err != nil {
				return nil, err
			}
			warmOut, err := getKey(cfg, warmKeys[i])
			if err != nil {
				return nil, err
			}
			dist := transfer.Distance(donorCrd, transfer.FromConfig(machineConfigFor(warmKeys[i])))
			dc := coldOut.res.Stats.Intervals - coldOut.res.Stats.Emulated
			dw := warmOut.res.Stats.Intervals - warmOut.res.Stats.Emulated
			speedup := fmt.Sprintf("%.1fx", float64(dc)/float64(dw))
			errPct := fmt.Sprintf("%.3f",
				100*absErr(float64(warmOut.res.Stats.Cycles), float64(coldOut.res.Stats.Cycles)))
			switch {
			case warmOut.transfer != nil:
				transferred++
				detCold += dc
				detWarm += dw
				t.AddRowf(name, sizeLabel(l2),
					fmt.Sprintf("%.1f", warmOut.transfer.Distance),
					fmt.Sprintf("%.3f", warmOut.transfer.Scale),
					fmt.Sprintf("%d", dc), fmt.Sprintf("%d", dw),
					speedup, errPct, "transferred")
			default:
				// The directive was rejected (here: distance beyond the
				// cutoff) and the run fell back to a cold start. The fallback
				// must be *exactly* the cold twin — same seed, same
				// trajectory — so anything but identical stats means the
				// rejection path leaked state.
				rejected++
				if warmOut.res.Stats != coldOut.res.Stats {
					return nil, fmt.Errorf(
						"sweep: %s @ %s: rejected transfer diverged from its cold twin",
						name, sizeLabel(l2))
				}
				t.AddRowf(name, sizeLabel(l2),
					fmt.Sprintf("%.1f", dist), "-",
					fmt.Sprintf("%d", dc), fmt.Sprintf("%d", dw),
					speedup, errPct, "rejected")
			}
		}
	}
	res := &Result{Table: t}
	res.Notes = append(res.Notes,
		fmt.Sprintf("transfer: %d point(s) imported rescaled donor priors, %d rejected (distance > %.1f) and re-learned cold",
			transferred, rejected, transfer.MaxDistance),
		fmt.Sprintf("transferred points simulate %d detailed intervals where cold sweeps needed %d",
			detWarm, detCold),
		"rejected points are byte-identical to their cold twins: a bad donor is refused, never half-imported")
	return res, nil
}
