package experiments

import (
	"fmt"

	"fssim/internal/stats"
)

// Fig7 regenerates Figure 7: the initial learning window (number of trials)
// required to capture, at 95% and 99% confidence, every behavior cluster
// whose probability of occurrence is at least p_min. The paper's anchor
// points: at p_min = 3%, ~100 trials at 95% and a little over 150 at 99%.
func Fig7(cfg Config) (*Result, error) {
	t := NewTable("p_min", "window @95%", "window @99%")
	for _, pmin := range []float64{
		0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08,
		0.10, 0.12, 0.14, 0.16, 0.18, 0.20,
	} {
		t.AddRowf(fmt.Sprintf("%.3f", pmin),
			fmt.Sprint(stats.LearningWindow(pmin, 0.95)),
			fmt.Sprint(stats.LearningWindow(pmin, 0.99)))
	}
	return &Result{Table: t, Notes: []string{
		"Closed form of paper Eq 3: smallest N with 1-(1-p_min)^N >= DoC.",
	}}, nil
}
