package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fssim/internal/core"
	"fssim/internal/faults"
	"fssim/internal/machine"
	"fssim/internal/pltstore"
	"fssim/internal/sample"
	"fssim/internal/trace"
	"fssim/internal/transfer"
	"fssim/internal/workload"
)

// RunKey identifies one distinct simulation in the harness's memo cache.
// Two experiment runners asking for the same key share a single simulation:
// the paper's baselines (full-system App+OS at the default L2, for example)
// are needed by fig1, fig2, fig8, fig9, fig10 and tab2, but are simulated
// exactly once per Scheduler.
type RunKey struct {
	Bench string
	Mode  machine.SimMode
	L2    int // L2 size in bytes; 0 = the platform default (keys are normalized)
	Scale float64
	Seed  int64 // the config's base seed; the run's machine seed is derived
	// OptsHash discriminates option variants beyond (mode, L2). For
	// Accelerated runs the low byte encodes the re-learning strategy as
	// uint64(strategy)+1 (0 for plain detailed/app-only runs); the
	// watchdogOpt bit arms the divergence watchdog.
	OptsHash uint64
	// Faults names a faults.Named plan injected into the run ("" = none).
	// The plan is derived from the config's base Seed, not the per-run
	// machine seed, so every mode and strategy of one config experiences
	// the identical fault schedule and stays comparable.
	Faults string
	// Sample is the canonical sample.Spec string of the application-interval
	// stratified-sampling policy ("" = every app interval detailed). Part of
	// the key — sampled and unsampled runs never share cache entries — but
	// deliberately excluded from DeriveSeed: a sampled run replays the exact
	// workload trajectory of its unsampled twin, so comparing the two
	// measures pure estimator error, not seed-to-seed variance.
	Sample string
	// Transfer is the canonical transfer.Spec directive for warm-starting
	// this run's PLT from a neighbor configuration ("" = cold start). Part
	// of the key — a transferred run and its cold twin never share cache
	// entries — but excluded from DeriveSeed for the same reason Sample is:
	// the transferred run must replay the byte-identical workload trajectory
	// of its cold twin so that any divergence is attributable purely to the
	// imported priors, not to seed-to-seed variance.
	Transfer string
}

// watchdogOpt is the OptsHash bit arming the prediction-divergence watchdog
// on an Accelerated run. It sits above the low strategy byte.
const watchdogOpt uint64 = 1 << 8

// String renders the key compactly for notes and error messages.
func (k RunKey) String() string {
	s := fmt.Sprintf("%s/%s/L2=%d/scale=%g", k.Bench, k.Mode, k.L2, k.Scale)
	if k.OptsHash != 0 {
		s += fmt.Sprintf("/opts=%d", k.OptsHash)
	}
	if k.Faults != "" {
		s += "/faults=" + k.Faults
	}
	if k.Sample != "" {
		s += "/sample=" + k.Sample
	}
	if k.Transfer != "" {
		s += "/transfer=" + k.Transfer
	}
	return s
}

// DeriveSeed maps the base seed and the key's coordinates to the seed the
// run's machine uses. Deriving per-run seeds (rather than handing every run
// the same base seed) makes each simulation's randomness a pure function of
// what is being simulated, so results are independent of scheduling order
// and of which other experiments happen to share the cache.
func (k RunKey) DeriveSeed() int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%x|%d|%d",
		k.Bench, k.Mode, k.L2, math.Float64bits(k.Scale), k.Seed, k.OptsHash)
	// Appended only for faulted keys so unfaulted runs keep the seeds (and
	// therefore the byte-identical tables) they had before fault injection
	// existed.
	if k.Faults != "" {
		fmt.Fprintf(h, "|faults=%s", k.Faults)
	}
	// k.Sample and k.Transfer are intentionally NOT hashed: the sampler only
	// decides which intervals are measured versus extrapolated, transfer only
	// seeds the learners' prior tables, and both variants must replay the
	// byte-identical workload trajectory of the plain run at the same
	// coordinates for error attribution to be meaningful.
	s := int64(h.Sum64() &^ (1 << 63)) // keep it non-negative for readability
	if s == 0 {
		s = 1
	}
	return s
}

// AttemptSeed is the machine seed for the given retry attempt: attempt 0 is
// DeriveSeed itself (preserving established results); each retry derives a
// fresh seed so a failure tied to one random trajectory is not replayed
// verbatim. Still a pure function of (key, attempt) — retries are as
// deterministic as first attempts.
func (k RunKey) AttemptSeed(attempt int) int64 {
	if attempt <= 0 {
		return k.DeriveSeed()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|retry=%d", k.DeriveSeed(), attempt)
	s := int64(h.Sum64() &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// accelStrategy recovers the re-learning strategy an Accelerated key encodes.
func (k RunKey) accelStrategy() core.Strategy { return core.Strategy(k.OptsHash&0xff - 1) }

// withFaults returns the key with the named fault plan applied.
func (k RunKey) withFaults(plan string) RunKey { k.Faults = plan; return k }

// withWatchdog returns the key with the divergence watchdog armed.
func (k RunKey) withWatchdog() RunKey { k.OptsHash |= watchdogOpt; return k }

// withSample returns the key with the given canonical sampling spec applied.
func (k RunKey) withSample(spec string) RunKey { k.Sample = spec; return k }

// withTransfer returns the key with the given transfer directive applied.
func (k RunKey) withTransfer(spec string) RunKey { k.Transfer = spec; return k }

// runOutput is everything a memoized run yields. Full-system runs always
// carry a Profiler (characterization is free to record and lets Figs 3-6
// share the same cached simulations as the fig1/fig8 baselines); Accelerated
// runs carry their Accelerator. Both are immutable once the run completes,
// so concurrent readers need no locking.
type runOutput struct {
	res      workload.Result
	acc      *core.Accelerator
	prof     *core.Profiler
	smp      *sample.Sampler      // non-nil when the key carries a sampling spec
	rec      *trace.Recorder      // non-nil when Config.Trace is set
	transfer *transfer.Provenance // non-nil when the run imported donor priors
}

// outcome is the exported view of this output for serving front-ends.
func (o runOutput) outcome() Outcome {
	oc := Outcome{Result: o.res, Accel: o.acc, Trace: o.rec, Transfer: o.transfer}
	if o.smp != nil {
		rep := o.smp.Report()
		oc.Sample = &rep
	}
	return oc
}

// runEntry is one cache slot; done is closed when out/err/wall are final.
// creator records which experiment's request created the entry, so a runner
// re-reading a run its own prefetch started is not miscounted as a cache hit.
type runEntry struct {
	done    chan struct{}
	creator *expStats
	out     runOutput
	err     error
	wall    time.Duration
}

// SchedStats is the scheduler's aggregate view of work performed and saved.
type SchedStats struct {
	Distinct int           // distinct simulations currently memoized
	Hits     int64         // Get calls served from cache (or coalesced in-flight)
	Misses   int64         // Get calls that executed a new simulation
	Failures int64         // runs that exhausted their attempts and failed
	Retries  int64         // extra attempts after a failed first try
	SimWall  time.Duration // summed wall-clock of executed simulations

	// Warm-start counters (all zero unless Config.WarmDir is set).
	WarmHits    int64 // runs replayed from an on-disk PLT snapshot without simulating
	WarmMisses  int64 // eligible runs with no snapshot for their configuration
	WarmInvalid int64 // snapshots rejected (corrupt, stale hash, or mismatched identity)
	WarmSaves   int64 // snapshots written (per-run saves plus FlushWarm sweeps)
	// PLTLearned sums the learned-instance counters of accelerated runs this
	// process actually simulated; replayed runs contribute nothing, so a
	// fully warm process reports ~0.
	PLTLearned int64
	// Startup recovery sweep results (see pltstore.RecoveryReport): orphan
	// temp files deleted and corrupt/torn snapshots quarantined when the
	// warm store was opened.
	WarmRecoveredOrphans     int64
	WarmRecoveredQuarantined int64

	// Stratified-sampling counters (all zero unless sampled keys were run).
	SampledRuns        int64 // runs executed with an application-interval sampler
	SampleDetailed     int64 // app intervals simulated in detail across sampled runs
	SampleExtrapolated int64 // app intervals fast-forwarded across sampled runs

	// Cross-config transfer counters (all zero unless keys carried a
	// transfer directive).
	TransferHits     int64 // runs that imported rescaled donor priors
	TransferRejected int64 // transfer directives that fell back to a cold start
	//   (ineligible or missing donor, failed donor run, or invalid rescale)
}

// RunError describes one simulation's final failure: which run, how many
// attempts it was given, whether the last attempt hit the per-run timeout,
// and the underlying cause (a workload panic converted to an error, a
// machine abort, or a context cancellation).
type RunError struct {
	Key      RunKey
	Attempts int
	Timeout  bool
	Cause    error
}

func (e *RunError) Error() string {
	if e.Attempts == 0 {
		// The run never started: its suite (or serving) context was canceled
		// while it waited for a worker slot.
		return fmt.Sprintf("run %s canceled while queued: %v", e.Key, e.Cause)
	}
	what := "failed"
	if e.Timeout {
		what = "timed out"
	}
	return fmt.Sprintf("run %s %s after %d attempt(s): %v", e.Key, what, e.Attempts, e.Cause)
}

func (e *RunError) Unwrap() error { return e.Cause }

// Scheduler memoizes simulation runs keyed by RunKey and executes distinct
// runs on a bounded worker pool. Concurrent requests for the same key are
// coalesced singleflight-style: the first caller simulates, later callers
// block on the same entry. A Scheduler is safe for concurrent use.
type Scheduler struct {
	cfg   Config
	slots chan struct{}   // worker-pool semaphore; cap = parallelism
	warm  *pltstore.Store // nil unless Config.WarmDir is set

	mu      sync.Mutex
	runs    map[RunKey]*runEntry
	aborted []TracedRun // recorders salvaged from failed/canceled traced runs

	costsOnce sync.Once
	costs     ModeCosts

	hits     atomic.Int64
	misses   atomic.Int64
	failures atomic.Int64
	retries  atomic.Int64
	simWall  atomic.Int64 // nanoseconds

	warmHits    atomic.Int64
	warmMisses  atomic.Int64
	warmInvalid atomic.Int64
	warmSaves   atomic.Int64
	pltLearned  atomic.Int64
	recOrphans  atomic.Int64
	recQuar     atomic.Int64

	sampledRuns  atomic.Int64
	sampleDet    atomic.Int64
	sampleExtrap atomic.Int64

	transferHits     atomic.Int64
	transferRejected atomic.Int64

	// donors is the transfer donor set for "store" directives, frozen at
	// construction: every valid, cold-learned snapshot the warm directory
	// held when the scheduler was built. Freezing makes store-driven donor
	// resolution independent of scheduling order — snapshots saved *during*
	// this invocation never become donors within it, so tables stay
	// byte-identical at any -j.
	donors []*pltstore.Snapshot
}

// NewScheduler builds a scheduler for cfg; cfg is normalized first, so a
// zero Parallelism becomes GOMAXPROCS and a zero Scale the default 1.0.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.normalized()
	s := &Scheduler{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.Parallelism),
		runs:  make(map[RunKey]*runEntry),
	}
	if cfg.WarmDir != "" {
		if cfg.warmFS != nil {
			s.warm = pltstore.OpenFS(cfg.WarmDir, cfg.warmFS)
		} else {
			s.warm = pltstore.Open(cfg.WarmDir)
		}
		// Startup recovery sweep: delete orphan temps from crashed writers and
		// quarantine torn/corrupt snapshots so a damaged store degrades to
		// counted cold starts, never to a wedged or lying warm start.
		// Best-effort — a sweep error leaves per-load verification as the
		// safety net.
		if rep, err := s.warm.Recover(); err == nil {
			s.recOrphans.Store(int64(rep.Orphans))
			s.recQuar.Store(int64(rep.Quarantined))
		}
		if cfg.Transfer {
			s.loadDonors()
		}
	}
	return s
}

// loadDonors freezes the store-driven transfer donor set: every snapshot in
// the warm directory that decodes, validates, and is cold-learned
// (TransferHash 0 — transferred tables never donate). Paths come from List,
// which sorts, so the donor order — and therefore nearest-donor tie-breaking
// — is deterministic.
func (s *Scheduler) loadDonors() {
	paths, err := s.warm.List("")
	if err != nil {
		return
	}
	for _, p := range paths {
		snap, err := s.warm.LoadPath(p)
		if err != nil || snap.TransferHash != 0 {
			continue
		}
		s.donors = append(s.donors, snap)
	}
}

// Parallelism returns the worker-pool width.
func (s *Scheduler) Parallelism() int { return cap(s.slots) }

// Stats returns a snapshot of cache and timing counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	return SchedStats{
		Distinct:    n,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Failures:    s.failures.Load(),
		Retries:     s.retries.Load(),
		SimWall:     time.Duration(s.simWall.Load()),
		WarmHits:    s.warmHits.Load(),
		WarmMisses:  s.warmMisses.Load(),
		WarmInvalid: s.warmInvalid.Load(),
		WarmSaves:   s.warmSaves.Load(),
		PLTLearned:  s.pltLearned.Load(),

		WarmRecoveredOrphans:     s.recOrphans.Load(),
		WarmRecoveredQuarantined: s.recQuar.Load(),

		SampledRuns:        s.sampledRuns.Load(),
		SampleDetailed:     s.sampleDet.Load(),
		SampleExtrapolated: s.sampleExtrap.Load(),

		TransferHits:     s.transferHits.Load(),
		TransferRejected: s.transferRejected.Load(),
	}
}

// Get runs (or returns the memoized result of) the simulation key describes.
func (s *Scheduler) Get(key RunKey) (workload.Result, error) {
	out, err := s.get(s.cfg.context(), key, nil)
	return out.res, err
}

// Prefetch starts the given runs in the background without waiting for them.
// Experiment runners declare their full run set up front so that independent
// simulations proceed concurrently while the runner consumes results in its
// (serial) presentation order.
func (s *Scheduler) Prefetch(keys ...RunKey) { s.prefetch(nil, keys...) }

// prefetch is Prefetch with per-experiment stat attribution: simulations the
// prefetch starts are credited to st, not miscounted later as cache hits.
func (s *Scheduler) prefetch(st *expStats, keys ...RunKey) {
	ctx := s.cfg.context()
	for _, key := range keys {
		key := key
		go func() { _, _ = s.get(ctx, key, st) }()
	}
}

// get is the memoizing core. st, when non-nil, receives per-experiment
// hit/miss attribution for the requesting runner's notes. Failed runs are
// evicted from the cache once their waiters are released, so one poisoned
// entry does not pin its error for the scheduler's remaining lifetime — a
// later Get retries from scratch.
func (s *Scheduler) get(ctx context.Context, key RunKey, st *expStats) (runOutput, error) {
	s.mu.Lock()
	e, ok := s.runs[key]
	if ok {
		s.mu.Unlock()
		s.hits.Add(1)
		if st != nil && e.creator != st {
			st.hits.Add(1)
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return runOutput{}, ctx.Err()
		}
		return e.out, e.err
	}
	e = &runEntry{done: make(chan struct{}), creator: st}
	s.runs[key] = e
	s.mu.Unlock()
	s.misses.Add(1)
	if st != nil {
		st.misses.Add(1)
	}
	s.run(ctx, key, e, st)
	return e.out, e.err
}

// run executes the simulation behind a freshly created entry: it waits for a
// worker slot (a cancellation while queued resolves the entry with a
// *RunError wrapping the context error, without ever starting the run),
// executes, and publishes the result via finish.
func (s *Scheduler) run(ctx context.Context, key RunKey, e *runEntry, st *expStats) {
	// Donor resolution happens BEFORE this run occupies a worker slot: the
	// sibling-donor path runs (or joins) the donor simulation through the
	// ordinary memo cache, which itself needs a slot — resolving first both
	// orders every sweep so donors complete before their recipients and
	// keeps -j 1 deadlock-free.
	prior, prov := s.resolveTransfer(ctx, key, st)
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		e.err = &RunError{Key: key, Attempts: 0, Cause: ctx.Err()}
		s.finish(key, e, st)
		return
	}
	start := time.Now()
	e.out, e.err = s.execute(ctx, key, prior, prov)
	e.wall = time.Since(start)
	<-s.slots

	s.simWall.Add(int64(e.wall))
	if st != nil {
		st.simWall.Add(int64(e.wall))
	}
	s.finish(key, e, st)
}

// LookupStatus classifies how a Lookup request was satisfied — the value a
// serving front-end reports in its cache-status response header.
type LookupStatus int

const (
	// LookupMiss: this request started a fresh simulation.
	LookupMiss LookupStatus = iota
	// LookupCoalesced: the request joined an in-flight simulation for the
	// same key (singleflight dedup).
	LookupCoalesced
	// LookupHit: the result was already memoized.
	LookupHit
)

func (st LookupStatus) String() string {
	switch st {
	case LookupHit:
		return "hit"
	case LookupCoalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Outcome is the exported view of one memoized run, for serving front-ends.
type Outcome struct {
	Result workload.Result
	// Accel is the run's acceleration engine (nil unless Accelerated); its
	// Health feeds circuit-breaking degradation decisions.
	Accel *core.Accelerator
	// Sample is the estimator report of a sampled run (nil unless the key
	// carried a sampling spec): strata, detailed/extrapolated split, and the
	// 95% confidence half-width on the extrapolated cycles.
	Sample *sample.Report
	// Trace is the run's recorder (nil unless Config.Trace).
	Trace *trace.Recorder
	// Transfer is the provenance of the donor priors this run imported (nil
	// for cold runs and for transfer directives that were rejected).
	Transfer *transfer.Provenance
}

// Lookup resolves key through the memo cache on behalf of a long-lived
// serving front-end. Unlike Get, execution is detached from the caller: a
// fresh simulation runs under the scheduler's own lifetime context (bounded
// by the per-run Timeout), while ctx bounds only this caller's wait — a
// waiter that gives up (request deadline, client disconnect) leaves the
// shared simulation running for other coalesced clients to collect. The
// reported status tells the caller whether it started the run, joined an
// in-flight one, or was served from the cache.
func (s *Scheduler) Lookup(ctx context.Context, key RunKey) (Outcome, LookupStatus, error) {
	return s.LookupNotify(ctx, key, nil)
}

// LookupNotify is Lookup with a completion hook for the detached execution:
// when this call starts a fresh run (status LookupMiss), onDone is invoked
// exactly once with the run's final outcome, after the entry resolves —
// regardless of whether this caller's ctx expires first. Joined (coalesced or
// hit) lookups never invoke onDone: each distinct execution notifies only its
// creator, so a front-end feeding health signals (circuit breakers, run
// records) from the hook counts every run exactly once, even when all of its
// waiters abandoned it.
func (s *Scheduler) LookupNotify(ctx context.Context, key RunKey, onDone func(Outcome, error)) (Outcome, LookupStatus, error) {
	s.mu.Lock()
	e, ok := s.runs[key]
	if ok {
		s.mu.Unlock()
		s.hits.Add(1)
		status := LookupCoalesced
		select {
		case <-e.done:
			status = LookupHit
		default:
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return Outcome{}, status, ctx.Err()
		}
		return e.out.outcome(), status, e.err
	}
	e = &runEntry{done: make(chan struct{})}
	s.runs[key] = e
	s.mu.Unlock()
	s.misses.Add(1)
	go func() {
		s.run(s.cfg.context(), key, e, nil)
		if onDone != nil {
			onDone(e.out.outcome(), e.err)
		}
	}()
	select {
	case <-e.done:
	case <-ctx.Done():
		return Outcome{}, LookupMiss, ctx.Err()
	}
	return e.out.outcome(), LookupMiss, e.err
}

// TraceOf returns the recorder of the completed memoized run for key, if the
// run was traced and succeeded.
func (s *Scheduler) TraceOf(key RunKey) (*trace.Recorder, bool) {
	s.mu.Lock()
	e, ok := s.runs[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
	default:
		return nil, false
	}
	if e.err != nil || e.out.rec == nil {
		return nil, false
	}
	return e.out.rec, true
}

// maxAbortedTraces bounds the salvaged-recorder list: under a long failure
// storm a long-lived server would otherwise accumulate one full trace
// recorder per failed run without limit. The most recent failures are the
// diagnostically useful ones, so older salvaged traces are dropped first.
const maxAbortedTraces = 32

// finish publishes an entry's result and evicts it on failure. A failed (or
// canceled) traced run's recorder is salvaged into the aborted list (capped
// at maxAbortedTraces, oldest dropped) before the entry is dropped, so an
// interrupted suite still flushes usable partial traces on drain (see
// AbortedTracedRuns).
func (s *Scheduler) finish(key RunKey, e *runEntry, st *expStats) {
	close(e.done)
	if e.err == nil {
		return
	}
	s.failures.Add(1)
	if st != nil {
		st.failures.Add(1)
	}
	s.mu.Lock()
	if s.runs[key] == e {
		delete(s.runs, key)
	}
	if e.out.rec != nil {
		if len(s.aborted) >= maxAbortedTraces {
			n := copy(s.aborted, s.aborted[len(s.aborted)-maxAbortedTraces+1:])
			s.aborted = s.aborted[:n]
		}
		s.aborted = append(s.aborted, TracedRun{Key: key, Rec: e.out.rec, Err: e.err})
	}
	s.mu.Unlock()
}

// execute runs the simulation a key describes, retrying failed attempts (up
// to cfg.Retries extra tries) with fresh derived seeds. Context cancellation
// is terminal: a canceled suite does not burn retries.
//
// When a warm store is configured, an eligible run first consults it: an
// exact-identity snapshot (same ReplayHash) replays the recorded result
// without simulating at all — simulations are deterministic, so the replayed
// result is byte-identical to what re-running would produce. Any other
// outcome (no snapshot, stale hash, corrupt file) is counted and falls
// through to a normal cold simulation, whose result is saved back.
func (s *Scheduler) execute(ctx context.Context, key RunKey, prior *core.AccelState, prov *transfer.Provenance) (runOutput, error) {
	if out, ok := s.warmReplay(key, prov); ok {
		return out, nil
	}
	var lastErr error
	var lastOut runOutput
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
		}
		out, err := s.executeOnce(ctx, key, attempt, prior, prov)
		if err == nil {
			if out.acc != nil {
				s.pltLearned.Add(out.acc.Summary().Learned)
			}
			if out.smp != nil {
				rep := out.smp.Report()
				s.sampledRuns.Add(1)
				s.sampleDet.Add(rep.Detailed)
				s.sampleExtrap.Add(rep.Extrapolated)
			}
			s.warmSave(key, out)
			return out, nil
		}
		// Keep the failed attempt's partial output: its recorder holds the
		// trace up to the abort point, which the drain path salvages.
		lastOut = out
		lastErr = &RunError{
			Key:      key,
			Attempts: attempt + 1,
			Timeout:  isTimeout(ctx, err),
			Cause:    err,
		}
		if ctx.Err() != nil {
			break
		}
	}
	return lastOut, lastErr
}

// isTimeout reports whether err is a per-run deadline rather than a suite
// cancellation: the run was aborted but the surrounding context is live.
func isTimeout(ctx context.Context, err error) bool {
	return ctx.Err() == nil &&
		(errors.Is(err, machine.ErrCanceled) || errors.Is(err, context.DeadlineExceeded))
}

// executeOnce builds and runs one attempt of the simulation a key fully
// describes. A panic escaping the workload's own recovery (e.g. out of a
// Prepare hook) is converted to an error here, so a broken run can never
// take down the scheduler's worker or the whole suite.
func (s *Scheduler) executeOnce(ctx context.Context, key RunKey, attempt int, prior *core.AccelState, prov *transfer.Provenance) (out runOutput, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run %s: panic: %v\n%s", key, r, debug.Stack())
		}
	}()
	opts := workload.DefaultOptions()
	opts.Scale = key.Scale
	opts.Machine = machineConfigFor(key)
	opts.Machine.Seed = key.AttemptSeed(attempt)
	if key.Faults != "" {
		spec, ferr := faults.Named(key.Faults)
		if ferr != nil {
			return out, ferr
		}
		// Seeded by the config's base seed: every run of this config sees
		// the same schedule regardless of mode, strategy or retry attempt.
		plan := faults.NewPlan(key.Seed, spec.Scaled(key.Scale))
		opts.Prepare = plan.Install
	}
	if s.cfg.Trace {
		out.rec = trace.NewRecorder(trace.DefaultConfig())
		opts.Trace = out.rec
	}
	if s.cfg.Timeout > 0 || ctx.Done() != nil {
		runCtx := ctx
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		opts.Cancel = runCtx.Done()
	}
	switch key.Mode {
	case machine.FullSystem:
		out.prof = core.NewProfiler()
		opts.Observer = out.prof.Observer()
	case machine.Accelerated:
		out.acc = core.NewAccelerator(accelParamsFor(key))
		if prior != nil {
			// Warm-start the learners from the rescaled donor priors. Rescale
			// already validated the state and Import re-validates; a failure
			// here leaves the accelerator empty, so the run proceeds cold and
			// the rejection is counted — never a silent half-import.
			if ierr := out.acc.Import(prior); ierr == nil {
				out.transfer = prov
			} else {
				s.transferHits.Add(-1)
				s.transferRejected.Add(1)
			}
		}
		opts.Sink = out.acc
	}
	if key.Sample != "" {
		spec, serr := sample.ParseSpec(key.Sample)
		if serr != nil {
			return out, serr
		}
		// Seeded by the attempt's machine seed: sampling decisions are a pure
		// function of (key, attempt), like everything else about the run.
		out.smp = sample.New(spec, opts.Machine.Seed)
		opts.Sample = out.smp
	}
	res, err := workload.Run(key.Bench, opts)
	out.res = res
	return out, err
}

// machineConfigFor is the machine configuration a run of key uses (with the
// first attempt's derived seed). It is shared by executeOnce and the warm
// store's LearnHash so the snapshot address always reflects the exact
// configuration that would be simulated.
func machineConfigFor(key RunKey) machine.Config {
	mcfg := workload.DefaultOptions().Machine
	mcfg.Mode = key.Mode
	mcfg.Seed = key.DeriveSeed()
	if key.L2 > 0 {
		mcfg.Mem = mcfg.Mem.WithL2Size(key.L2)
	}
	return mcfg
}

// accelParamsFor is the acceleration parameter set an Accelerated key encodes.
func accelParamsFor(key RunKey) core.Params {
	params := core.DefaultParams()
	params.Strategy = key.accelStrategy()
	if key.OptsHash&watchdogOpt != 0 {
		params.WatchdogThreshold = core.DefaultWatchdogThreshold
		params.WatchdogWindow = core.DefaultWatchdogWindow
	}
	return params
}

// --- cross-config transfer --------------------------------------------------

// resolveTransfer resolves a key's transfer directive into rescaled donor
// priors plus their provenance, or (nil, nil) for keys without a directive
// and for every rejection. Rejections — unparseable directive, wrong mode,
// no eligible donor, failed donor run, or an invalid rescale — are counted
// in TransferRejected and the run proceeds cold; a directive is never
// silently ignored and a bad donor is never silently imported.
//
// The "l2=<bytes>" form resolves the donor through the memo cache (the
// sibling run at that L2 in this invocation, simulated on demand), so sweep
// run-sets are automatically ordered donor-first. The "store" form resolves
// against the donor set frozen at construction from the warm directory.
func (s *Scheduler) resolveTransfer(ctx context.Context, key RunKey, st *expStats) (*core.AccelState, *transfer.Provenance) {
	if key.Transfer == "" {
		return nil, nil
	}
	reject := func() (*core.AccelState, *transfer.Provenance) {
		s.transferRejected.Add(1)
		return nil, nil
	}
	spec, err := transfer.ParseSpec(key.Transfer)
	if err != nil || key.Mode != machine.Accelerated {
		return reject()
	}
	recipCoords := transfer.FromConfig(machineConfigFor(key))
	targetParams := accelParamsFor(key)

	var (
		donorState *core.AccelState
		donorBench string
		donorLearn uint64
		donorFam   uint64
		donorCrd   transfer.Coords
	)
	if spec.Store {
		fam := transfer.FamilyHash(key.Bench, machineConfigFor(key), targetParams,
			key.Scale, key.Faults)
		var best *pltstore.Snapshot
		bestDist := math.Inf(1)
		for _, snap := range s.donors {
			if snap.Family != fam {
				continue
			}
			d := transfer.Distance(snap.Coords, recipCoords)
			// Strict < keeps the first of equally-near donors; the frozen
			// list is in List (path-lexicographic) order, so ties break
			// deterministically.
			if transfer.Eligible(d) && d < bestDist {
				best, bestDist = snap, d
			}
		}
		if best == nil {
			return reject()
		}
		donorState = best.State
		donorBench, donorLearn, donorFam, donorCrd = best.Benchmark, best.LearnHash, best.Family, best.Coords
	} else {
		donorKey := key.withTransfer("")
		donorKey.L2 = spec.L2
		if donorKey.L2 == defaultL2() {
			donorKey.L2 = 0
		}
		out, err := s.get(ctx, donorKey, st)
		if err != nil || out.acc == nil {
			return reject()
		}
		donorMcfg := machineConfigFor(donorKey)
		donorCrd = transfer.FromConfig(donorMcfg)
		if d := transfer.Distance(donorCrd, recipCoords); !transfer.Eligible(d) {
			return reject()
		}
		donorState = out.acc.Export()
		donorBench = donorKey.Bench
		donorLearn = warmLearnHash(donorKey)
		donorFam = transfer.FamilyHash(donorKey.Bench, donorMcfg, accelParamsFor(donorKey),
			donorKey.Scale, donorKey.Faults)
	}

	dist := transfer.Distance(donorCrd, recipCoords)
	model := transfer.FitAnalytic(donorCrd, recipCoords)
	prior, err := transfer.Rescale(donorState, model, targetParams)
	if err != nil {
		return reject()
	}
	s.transferHits.Add(1)
	return prior, &transfer.Provenance{
		DonorBench: donorBench,
		DonorAddr:  pltstore.FormatHash(donorFam) + "/" + pltstore.FormatHash(donorLearn),
		Distance:   dist,
		Scale:      model.L2M,
		Hash:       transfer.TransferHash(donorLearn, model),
	}
}

// TransferRecord pairs a completed run with its transfer provenance, for the
// CLIs' summary lines.
type TransferRecord struct {
	Key  RunKey
	Prov transfer.Provenance
}

// Transfers lists the completed runs that imported donor priors, sorted by
// key for deterministic output.
func (s *Scheduler) Transfers() []TransferRecord {
	s.mu.Lock()
	entries := make(map[RunKey]*runEntry, len(s.runs))
	for k, e := range s.runs {
		entries[k] = e
	}
	s.mu.Unlock()
	var out []TransferRecord
	for k, e := range entries {
		select {
		case <-e.done:
		default:
			continue
		}
		if e.err == nil && e.out.transfer != nil {
			out = append(out, TransferRecord{Key: k, Prov: *e.out.transfer})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// --- warm-start store -------------------------------------------------------

// warmEligible: only Accelerated runs carry learned state worth persisting.
// Sampled runs are excluded: their statistics depend on the sampler's
// estimator, the snapshot identity does not encode the sampling spec, and a
// stats-only replay would drop the run's Report (the error-bar contract).
func (s *Scheduler) warmEligible(key RunKey) bool {
	return s.warm != nil && key.Mode == machine.Accelerated && key.Sample == ""
}

// warmLearnHash is the snapshot address of key's configuration. The transfer
// directive is part of the address: a transferred run's learned table is
// shaped by the imported priors and must never be mistaken for (or overwrite)
// the cold-learned table of the identical configuration.
func warmLearnHash(key RunKey) uint64 {
	return pltstore.LearnHashWith(key.Bench, machineConfigFor(key), accelParamsFor(key),
		key.Scale, key.Faults, key.Transfer)
}

// warmReplayHash is the exact-replay address of key: transferred runs
// additionally bind the provenance hash (exact donor + model), so a snapshot
// recorded under one donor never replays for an invocation that resolved a
// different one.
func warmReplayHash(key RunKey, prov *transfer.Provenance) uint64 {
	learn := warmLearnHash(key)
	if prov != nil {
		return pltstore.TransferReplayHash(learn, key.String(), key.DeriveSeed(), prov.Hash)
	}
	return pltstore.ReplayHash(learn, key.String(), key.DeriveSeed())
}

// warmReplay consults the warm store for an exact-identity snapshot of key.
// On a hit it reconstructs the run's output — recorded machine statistics
// plus an accelerator imported from the persisted learner state — without
// executing anything. Every non-hit is counted (miss or invalid) and returns
// ok=false: a stale or corrupt snapshot degrades to a cold start, never to a
// wrong result. Replayed runs carry no trace recorder (nothing executed to
// trace).
func (s *Scheduler) warmReplay(key RunKey, prov *transfer.Provenance) (runOutput, bool) {
	if !s.warmEligible(key) {
		return runOutput{}, false
	}
	learn := warmLearnHash(key)
	snap, err := s.warm.Load(key.Bench, learn)
	if err != nil {
		if errors.Is(err, pltstore.ErrNotFound) {
			s.warmMisses.Add(1)
		} else {
			s.warmInvalid.Add(1)
		}
		return runOutput{}, false
	}
	if snap.ReplayHash != warmReplayHash(key, prov) {
		// Compatible learned state, but not this exact run (different base
		// seed, or a transferred snapshot recorded under a different donor
		// than this invocation resolved): exact replay would be wrong, so
		// simulate cold.
		s.warmInvalid.Add(1)
		return runOutput{}, false
	}
	acc := core.NewAccelerator(snap.State.Params)
	if err := acc.Import(snap.State); err != nil {
		s.warmInvalid.Add(1)
		return runOutput{}, false
	}
	s.warmHits.Add(1)
	return runOutput{res: workload.Result{Stats: snap.Stats}, acc: acc, transfer: prov}, true
}

// warmSave persists one successful run's snapshot, best-effort: a failed
// write never fails the run that produced the result.
func (s *Scheduler) warmSave(key RunKey, out runOutput) {
	if !s.warmEligible(key) || out.acc == nil {
		return
	}
	if s.warm.Save(warmSnapshot(key, out)) == nil {
		s.warmSaves.Add(1)
	}
}

// warmSnapshot builds the (format v2) snapshot one successful run persists:
// alongside the learned state it records the sweep-family address and swept
// coordinates that make the snapshot discoverable as a transfer donor, and —
// for runs that imported priors — the TransferHash provenance trailer that
// both marks the table as transferred (ineligible to donate further) and
// binds its replay address to the exact donor and model imported.
func warmSnapshot(key RunKey, out runOutput) *pltstore.Snapshot {
	mcfg := machineConfigFor(key)
	snap := &pltstore.Snapshot{
		LearnHash:  warmLearnHash(key),
		ReplayHash: warmReplayHash(key, out.transfer),
		Benchmark:  key.Bench,
		Key:        key.String(),
		Family: transfer.FamilyHash(key.Bench, mcfg, accelParamsFor(key),
			key.Scale, key.Faults),
		Coords: transfer.FromConfig(mcfg),
		Stats:  out.res.Stats,
		State:  out.acc.Export(),
	}
	if out.transfer != nil {
		snap.TransferHash = out.transfer.Hash
	}
	return snap
}

// FlushWarm sweeps every completed successful accelerated run into the warm
// store — the authoritative drain-time save (server.WriteArtifacts calls it),
// catching any run whose best-effort per-run save failed. It waits for
// in-flight runs to finish. A scheduler without a warm store is a no-op.
// The returned count is how many snapshots were written by this sweep.
func (s *Scheduler) FlushWarm() (int, error) {
	return s.FlushWarmCtx(context.Background())
}

// FlushWarmCtx is FlushWarm bounded by ctx: already-completed runs are saved
// first (each save independently atomic, so every snapshot written is whole
// progress that survives whatever happens next), then in-flight runs are
// waited on only until the deadline. Runs still in flight when ctx expires
// are skipped and reported in the error; everything saved before that stays
// saved.
func (s *Scheduler) FlushWarmCtx(ctx context.Context) (int, error) {
	if s.warm == nil {
		return 0, nil
	}
	s.mu.Lock()
	entries := make(map[RunKey]*runEntry, len(s.runs))
	for k, e := range s.runs {
		entries[k] = e
	}
	s.mu.Unlock()
	saved := 0
	var errs []error
	save := func(key RunKey, e *runEntry) {
		if e.err != nil || e.out.acc == nil {
			return
		}
		if err := s.warm.Save(warmSnapshot(key, e.out)); err != nil {
			errs = append(errs, err)
			return
		}
		s.warmSaves.Add(1)
		saved++
	}
	// Pass 1: everything already finished is saved unconditionally — a
	// near-expired deadline still flushes all completed work.
	var pending []RunKey
	for key, e := range entries {
		if !s.warmEligible(key) {
			continue
		}
		select {
		case <-e.done:
			save(key, e)
		default:
			pending = append(pending, key)
		}
	}
	// Pass 2: wait for in-flight runs, but only as long as ctx allows.
	for i, key := range pending {
		e := entries[key]
		select {
		case <-e.done:
			save(key, e)
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("flush deadline: %d in-flight run(s) skipped: %w",
				len(pending)-i, ctx.Err()))
			return saved, errors.Join(errs...)
		}
	}
	return saved, errors.Join(errs...)
}

// WarmDir returns the warm store's directory ("" when no store is configured).
func (s *Scheduler) WarmDir() string {
	if s.warm == nil {
		return ""
	}
	return s.warm.Dir()
}

// WarmStore exposes the scheduler's PLT snapshot store (nil when persistence
// is disabled) — serving front-ends index it for peers and gossip verified
// snapshots into it.
func (s *Scheduler) WarmStore() *pltstore.Store { return s.warm }

// WarmSnapshotPath returns the newest on-disk snapshot for bench, for
// serving front-ends that export learned state (GET /v1/plt/{benchmark}).
// ok is false when no store is configured or no snapshot exists.
func (s *Scheduler) WarmSnapshotPath(bench string) (string, bool) {
	if s.warm == nil {
		return "", false
	}
	paths, err := s.warm.List(bench)
	if err != nil || len(paths) == 0 {
		return "", false
	}
	// List sorts by name; pick the newest by modification time so the most
	// recently refreshed configuration wins when several coexist. Equal
	// timestamps (same-second saves on coarse filesystems) break to the
	// lexicographically smallest path, so the choice is deterministic rather
	// than an artifact of directory iteration order.
	best, bestAt := "", time.Time{}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		if best == "" || fi.ModTime().After(bestAt) ||
			(fi.ModTime().Equal(bestAt) && p < best) {
			best, bestAt = p, fi.ModTime()
		}
	}
	return best, best != ""
}

// modeCosts returns the Table 1 host-cost measurement, pinned from the
// config when set, otherwise measured once per scheduler. Measurement drains
// the worker pool first so concurrent simulations cannot skew the timing.
func (s *Scheduler) modeCosts() ModeCosts {
	s.costsOnce.Do(func() {
		if s.cfg.ModeCosts != nil {
			s.costs = *s.cfg.ModeCosts
			return
		}
		for i := 0; i < cap(s.slots); i++ {
			s.slots <- struct{}{}
		}
		s.costs = measureModeCosts(3_000_000)
		for i := 0; i < cap(s.slots); i++ {
			<-s.slots
		}
	})
	return s.costs
}

// --- key constructors -------------------------------------------------------

// RunSpec is the exported description of one simulation request, as a serving
// front-end receives it. Key normalizes it into the scheduler's cache key
// using the same rules the experiment runners use, so server requests and
// suite runs share memo-cache entries when they coincide.
type RunSpec struct {
	Bench  string
	Mode   machine.SimMode
	L2     int     // bytes; 0 or the platform default normalize to 0
	Scale  float64 // 0 normalizes to 1.0
	Seed   int64   // 0 normalizes to 1
	Faults string  // faults.Named plan ("" = none)
	// Sample is the canonical sampling spec ("" = no sampling). Callers
	// canonicalize via sample.Canonical before building the spec so that
	// every spelling of one policy shares a cache entry.
	Sample string
	// Transfer is the canonical transfer directive ("" = cold start); only
	// meaningful for Accelerated runs — the server's request validation
	// rejects it elsewhere, and the scheduler counts any directive on a
	// non-accelerated key as a rejection.
	Transfer string
	// Strategy selects the re-learning policy for Accelerated runs.
	Strategy core.Strategy
	// Watchdog arms the divergence watchdog on Accelerated runs, so the
	// Outcome's Accel.Health() carries degradation signals.
	Watchdog bool
}

// Key returns the spec's normalized memo-cache key.
func (sp RunSpec) Key() RunKey {
	if sp.L2 == defaultL2() {
		sp.L2 = 0
	}
	if sp.Scale <= 0 {
		sp.Scale = 1.0
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	k := RunKey{Bench: sp.Bench, Mode: sp.Mode, L2: sp.L2,
		Scale: sp.Scale, Seed: sp.Seed, Faults: sp.Faults, Sample: sp.Sample,
		Transfer: sp.Transfer}
	if sp.Mode == machine.Accelerated {
		k.OptsHash = uint64(sp.Strategy) + 1
		if sp.Watchdog {
			k.OptsHash |= watchdogOpt
		}
	}
	return k
}

// benchKey is the cache key for a plain run of name under mode with the
// given L2 size (0 or the platform default both normalize to 0).
func (c Config) benchKey(name string, mode machine.SimMode, l2 int) RunKey {
	if l2 == defaultL2() {
		l2 = 0
	}
	return RunKey{Bench: name, Mode: mode, L2: l2, Scale: c.Scale, Seed: c.Seed,
		Faults: c.FaultPlan, Sample: c.Sample}
}

// accelKey is the cache key for an Accelerated run under the given
// re-learning strategy.
func (c Config) accelKey(name string, strat core.Strategy, l2 int) RunKey {
	k := c.benchKey(name, machine.Accelerated, l2)
	k.OptsHash = uint64(strat) + 1
	// A -transfer invocation warm-starts every accelerated run from the
	// nearest store donor; rejections (no eligible donor) are counted and
	// fall back to cold, so the flag is safe on an empty store.
	if c.Transfer {
		k.Transfer = "store"
	}
	return k
}

// --- per-experiment attribution --------------------------------------------

// expStats attributes scheduler activity to one experiment run for its
// "harness:" note: how many of its requests were fresh simulations versus
// cache hits, and how much simulation wall-clock its fresh runs cost.
type expStats struct {
	hits     atomic.Int64
	misses   atomic.Int64
	failures atomic.Int64
	simWall  atomic.Int64
}

func (st *expStats) note(wall time.Duration, parallelism int) string {
	h, m := st.hits.Load(), st.misses.Load()
	s := fmt.Sprintf("harness: %d runs (%d simulated, %d cache hits), sim %.1fs, wall %.1fs, parallelism %d",
		h+m, m, h, time.Duration(st.simWall.Load()).Seconds(), wall.Seconds(), parallelism)
	if f := st.failures.Load(); f > 0 {
		s += fmt.Sprintf(", %d failed", f)
	}
	return s
}

// --- runner-facing helpers --------------------------------------------------

// runBench returns the (memoized) result of one benchmark under the given
// machine mode and L2 size.
func runBench(cfg Config, name string, mode machine.SimMode, l2 int) (workload.Result, error) {
	out, err := cfg.sched.get(cfg.context(), cfg.benchKey(name, mode, l2), cfg.stats)
	return out.res, err
}

// getKey resolves an explicit key through the config's scheduler — for
// runners (like the faults experiment) that build keys beyond the standard
// benchKey/accelKey variants.
func getKey(cfg Config, key RunKey) (runOutput, error) {
	return cfg.sched.get(cfg.context(), key, cfg.stats)
}

// accelRun returns the (memoized) result of one benchmark under the
// accelerated scheme with the given strategy, plus the accelerator that
// drove it, for coverage inspection.
func accelRun(cfg Config, name string, strat core.Strategy, l2 int) (workload.Result, *core.Accelerator, error) {
	out, err := cfg.sched.get(cfg.context(), cfg.accelKey(name, strat, l2), cfg.stats)
	return out.res, out.acc, err
}

// profileRun returns the §3 characterization profiler of a full-system run
// of name. The underlying simulation is the same cache entry the baseline
// figures use: every full-system run records its profile as it executes.
func profileRun(cfg Config, name string) (*core.Profiler, error) {
	out, err := cfg.sched.get(cfg.context(), cfg.benchKey(name, machine.FullSystem, 0), cfg.stats)
	return out.prof, err
}
