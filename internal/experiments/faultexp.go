package experiments

import (
	"fmt"

	"fssim/internal/core"
	"fssim/internal/faults"
	"fssim/internal/machine"
)

// The faults experiment extends the paper's Figure 11 study to a perturbed
// platform: a deterministic fault plan (disk latency spikes, IRQ storms,
// unsolicited network traffic, loss windows, scheduler jitter and cache
// flushes) is injected into both the full-system truth and every accelerated
// run, and the four re-learning strategies are scored on how well they track
// the shifted service behavior. A fifth variant arms the divergence watchdog
// on top of Best-Match — the strategy with no re-learning trigger of its own
// — to show the guardrail recovering accuracy that strategy otherwise loses.

// faultsPlan is the preset injected by the faults experiment.
const faultsPlan = "storm"

// faultsBenches are the OS-intensive workloads the experiment perturbs: one
// disk-heavy, one fork/exec-heavy, one network-heavy.
func faultsBenches() []string { return []string{"ab-rand", "find-od", "iperf"} }

// faultsVariant is one scored accelerated configuration.
type faultsVariant struct {
	label    string
	strategy core.Strategy
	watchdog bool
}

func faultsVariants() []faultsVariant {
	vs := make([]faultsVariant, 0, 5)
	for _, strat := range core.Strategies() {
		vs = append(vs, faultsVariant{label: strat.String(), strategy: strat})
	}
	vs = append(vs, faultsVariant{label: "BestMatch+guard", strategy: core.BestMatch, watchdog: true})
	return vs
}

// faultsKey builds the cache key for one variant's faulted accelerated run.
func faultsKey(cfg Config, name string, v faultsVariant) RunKey {
	k := cfg.accelKey(name, v.strategy, 0).withFaults(faultsPlan)
	if v.watchdog {
		k = k.withWatchdog()
	}
	return k
}

func faultsExpNeeds(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range faultsBenches() {
		keys = append(keys, cfg.benchKey(name, machine.FullSystem, 0).withFaults(faultsPlan))
		for _, v := range faultsVariants() {
			keys = append(keys, faultsKey(cfg, name, v))
		}
	}
	return keys
}

// FaultsExp runs the robustness study: per benchmark and variant, the
// absolute execution-time error against the faulted full-system truth, the
// prediction coverage, and how often the learners re-learned or (for the
// guarded variant) degraded back to detailed simulation.
func FaultsExp(cfg Config) (*Result, error) {
	spec, err := faults.Named(faultsPlan)
	if err != nil {
		return nil, err
	}
	plan := faults.NewPlan(cfg.Seed, spec.Scaled(cfg.Scale))

	t := NewTable("benchmark", "variant", "coverage", "abs error", "relearns", "degrades")
	type agg struct {
		cov, err float64
		n        int
	}
	aggs := make(map[string]*agg)
	var degradedServices int
	for _, name := range faultsBenches() {
		full, err := getKey(cfg, cfg.benchKey(name, machine.FullSystem, 0).withFaults(faultsPlan))
		if err != nil {
			return nil, err
		}
		for _, v := range faultsVariants() {
			out, err := getKey(cfg, faultsKey(cfg, name, v))
			if err != nil {
				return nil, err
			}
			sum := out.acc.Summary()
			e := absErr(float64(out.res.Stats.Cycles), float64(full.res.Stats.Cycles))
			a := aggs[v.label]
			if a == nil {
				a = &agg{}
				aggs[v.label] = a
			}
			a.cov += sum.Coverage()
			a.err += e
			a.n++
			t.AddRowf(name, v.label, pct(sum.Coverage()), pct(e),
				fmt.Sprintf("%d", sum.Relearns), fmt.Sprintf("%d", sum.Degrades))
			if v.watchdog {
				degradedServices += out.acc.Health().Degraded
			}
		}
	}
	for _, v := range faultsVariants() {
		a := aggs[v.label]
		if a == nil || a.n == 0 {
			continue
		}
		t.AddRowf("average", v.label, pct(a.cov/float64(a.n)), pct(a.err/float64(a.n)), "", "")
	}
	res := &Result{Table: t}
	res.Notes = append(res.Notes,
		fmt.Sprintf("fault %s, seeded by base seed %d", plan, cfg.Seed),
		fmt.Sprintf("watchdog (BestMatch+guard): threshold %.0f%% over the moving window; %d service(s) still degraded at run end",
			100*core.DefaultWatchdogThreshold, degradedServices))
	return res, nil
}
