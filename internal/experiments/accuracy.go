package experiments

import (
	"fmt"
	"math"

	"fssim/internal/core"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

func absErr(pred, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(pred-truth) / truth
}

// fig8Needs declares fig8's runs: the OS-intensive benchmarks under full
// detail, the Statistical accelerated scheme, and app-only simulation.
func fig8Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		keys = append(keys,
			cfg.benchKey(name, machine.FullSystem, 0),
			cfg.accelKey(name, core.Statistical, 0),
			cfg.benchKey(name, machine.AppOnly, 0))
	}
	return keys
}

// Fig8 regenerates Figure 8: execution time and IPC predicted by the
// accelerated scheme (Statistical strategy) versus full-system and
// application-only simulation, normalized to full-system. The paper reports
// 3.2% average and 4.2% worst-case absolute error for the scheme, against
// 12.5% average / 39.8% worst for application-only.
func Fig8(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "time App+OS", "time Pred", "time AppOnly",
		"IPC App+OS", "IPC Pred", "IPC AppOnly", "pred err")
	var sumErr, worst float64
	n := 0
	for _, name := range workload.OSIntensiveNames() {
		full, err := runBench(cfg, name, machine.FullSystem, 0)
		if err != nil {
			return nil, err
		}
		pred, _, err := accelRun(cfg, name, core.Statistical, 0)
		if err != nil {
			return nil, err
		}
		app, err := runBench(cfg, name, machine.AppOnly, 0)
		if err != nil {
			return nil, err
		}
		fc := float64(full.Stats.Cycles)
		e := absErr(float64(pred.Stats.Cycles), fc)
		sumErr += e
		if e > worst {
			worst = e
		}
		n++
		t.AddRowf(name, "1.000",
			f3(float64(pred.Stats.Cycles)/fc),
			f3(float64(app.Stats.Cycles)/fc),
			f3(full.Stats.IPC()), f3(pred.Stats.IPC()), f3(app.Stats.IPC()),
			pct(e))
	}
	return &Result{Table: t, Notes: []string{
		fmt.Sprintf("prediction error: average %.1f%%, worst case %.1f%% (paper: 3.2%% / 4.2%%)",
			100*sumErr/float64(n), 100*worst),
	}}, nil
}

// fig9Needs declares fig9's runs: full-system and Statistical accelerated
// runs of the OS-intensive benchmarks.
func fig9Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		keys = append(keys,
			cfg.benchKey(name, machine.FullSystem, 0),
			cfg.accelKey(name, core.Statistical, 0))
	}
	return keys
}

// Fig9 regenerates Figure 9: L1I / L1D / L2 miss rates from full-system
// simulation versus the accelerated scheme's effective rates (detailed
// periods measured + prediction periods estimated). The paper reports
// differences of 1% or less (1.4% worst, L2 in find-od).
func Fig9(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "L1I full", "L1I pred", "L1D full", "L1D pred",
		"L2 full", "L2 pred", "max |diff|")
	for _, name := range workload.OSIntensiveNames() {
		full, err := runBench(cfg, name, machine.FullSystem, 0)
		if err != nil {
			return nil, err
		}
		pred, _, err := accelRun(cfg, name, core.Statistical, 0)
		if err != nil {
			return nil, err
		}
		fi := full.Stats.Mem.L1I.MissRate()
		fd := full.Stats.Mem.L1D.MissRate()
		fl := full.Stats.Mem.L2.MissRate()
		pi, pd, pl := pred.Stats.MissRates()
		maxd := math.Max(math.Abs(fi-pi), math.Max(math.Abs(fd-pd), math.Abs(fl-pl)))
		t.AddRowf(name, pct(fi), pct(pi), pct(fd), pct(pd), pct(fl), pct(pl), pct(maxd))
	}
	return &Result{Table: t}, nil
}

// fig10Needs declares fig10's runs: both L2 sizes under app-only,
// full-system, and Statistical accelerated simulation.
func fig10Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		for _, l2 := range []int{512 << 10, 1 << 20} {
			keys = append(keys,
				cfg.benchKey(name, machine.AppOnly, l2),
				cfg.benchKey(name, machine.FullSystem, l2),
				cfg.accelKey(name, core.Statistical, l2))
		}
	}
	return keys
}

// Fig10 repeats Figure 2's L2-size study with the accelerated simulator in
// the comparison (Figure 10): the scheme must capture the speedup of a 1MB
// L2 over 512KB that application-only simulation misses.
func Fig10(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "App Only", "App+OS", "App+OS Pred")
	for _, name := range workload.OSIntensiveNames() {
		row := []string{name}
		for _, mode := range []machine.SimMode{machine.AppOnly, machine.FullSystem} {
			small, err := runBench(cfg, name, mode, 512<<10)
			if err != nil {
				return nil, err
			}
			large, err := runBench(cfg, name, mode, 1<<20)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(ratio(small.Stats.Cycles, large.Stats.Cycles)))
		}
		small, _, err := accelRun(cfg, name, core.Statistical, 512<<10)
		if err != nil {
			return nil, err
		}
		large, _, err := accelRun(cfg, name, core.Statistical, 1<<20)
		if err != nil {
			return nil, err
		}
		row = append(row, f2(ratio(small.Stats.Cycles, large.Stats.Cycles)))
		t.AddRowf(row...)
	}
	return &Result{Table: t}, nil
}

// fig11Needs declares fig11's runs: the full-system truth plus an
// accelerated run per re-learning strategy.
func fig11Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		keys = append(keys, cfg.benchKey(name, machine.FullSystem, 0))
		for _, strat := range core.Strategies() {
			keys = append(keys, cfg.accelKey(name, strat, 0))
		}
	}
	return keys
}

// Fig11 regenerates Figure 11: coverage and absolute execution-time error of
// the four re-learning strategies. The paper's shape: Best-Match has the
// highest coverage (93%) but 9.6% average / 29% worst error; Eager the best
// accuracy (1.5%) but 74% coverage; Statistical and Delayed sit close to
// Eager's accuracy at close to Best-Match's coverage (89% / 88%).
func Fig11(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "strategy", "coverage", "abs error")
	type agg struct {
		cov, err float64
		n        int
	}
	aggs := map[core.Strategy]*agg{}
	for _, name := range workload.OSIntensiveNames() {
		full, err := runBench(cfg, name, machine.FullSystem, 0)
		if err != nil {
			return nil, err
		}
		for _, strat := range core.Strategies() {
			pred, acc, err := accelRun(cfg, name, strat, 0)
			if err != nil {
				return nil, err
			}
			cov := acc.Summary().Coverage()
			e := absErr(float64(pred.Stats.Cycles), float64(full.Stats.Cycles))
			a := aggs[strat]
			if a == nil {
				a = &agg{}
				aggs[strat] = a
			}
			a.cov += cov
			a.err += e
			a.n++
			t.AddRowf(name, strat.String(), pct(cov), pct(e))
		}
	}
	for _, strat := range core.Strategies() {
		a := aggs[strat]
		if a == nil || a.n == 0 {
			continue
		}
		t.AddRowf("average", strat.String(),
			pct(a.cov/float64(a.n)), pct(a.err/float64(a.n)))
	}
	return &Result{Table: t}, nil
}

// fig12Needs declares fig12's runs: full-system and Statistical accelerated
// runs at 1MB, 2MB and 4MB L2.
func fig12Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		for _, l2 := range []int{1 << 20, 2 << 20, 4 << 20} {
			keys = append(keys,
				cfg.benchKey(name, machine.FullSystem, l2),
				cfg.accelKey(name, core.Statistical, l2))
		}
	}
	return keys
}

// Fig12 regenerates Figure 12: the absolute execution-time prediction error
// with L2 sizes of 1MB, 2MB and 4MB (8-way). The paper's observation:
// accuracy holds across sizes, improving slightly for larger caches.
func Fig12(cfg Config) (*Result, error) {
	sizes := []int{1 << 20, 2 << 20, 4 << 20}
	t := NewTable("benchmark", "1MB", "2MB", "4MB")
	perSize := make([]float64, len(sizes))
	n := 0
	for _, name := range workload.OSIntensiveNames() {
		row := []string{name}
		for i, l2 := range sizes {
			full, err := runBench(cfg, name, machine.FullSystem, l2)
			if err != nil {
				return nil, err
			}
			pred, _, err := accelRun(cfg, name, core.Statistical, l2)
			if err != nil {
				return nil, err
			}
			e := absErr(float64(pred.Stats.Cycles), float64(full.Stats.Cycles))
			perSize[i] += e
			row = append(row, pct(e))
		}
		n++
		t.AddRowf(row...)
	}
	avg := []string{"average"}
	for _, s := range perSize {
		avg = append(avg, pct(s/float64(n)))
	}
	t.AddRowf(avg...)
	return &Result{Table: t}, nil
}
