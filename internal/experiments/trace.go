package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"fssim/internal/trace"
)

// TracedRun pairs a simulation's cache key with its recorder. Err is nil for
// completed runs; for aborted runs (AbortedTracedRuns) it is the failure that
// ended the run, and Rec holds the partial trace up to the abort point.
type TracedRun struct {
	Key RunKey
	Rec *trace.Recorder
	Err error
}

// TracedRuns returns every traced simulation the scheduler has executed,
// sorted by key string. It waits for in-flight runs to finish (failed and
// untraced runs are omitted), so the listing — and everything exported from
// it — is a pure function of the run set, independent of parallelism.
func (s *Scheduler) TracedRuns() []TracedRun {
	return s.TracedRunsCtx(context.Background())
}

// TracedRunsCtx is TracedRuns bounded by ctx: completed runs are always
// listed, while in-flight runs are waited on only until the deadline — runs
// still executing when ctx expires are omitted rather than blocking a drain
// forever. With an unexpired ctx the listing is identical to TracedRuns.
func (s *Scheduler) TracedRunsCtx(ctx context.Context) []TracedRun {
	s.mu.Lock()
	entries := make(map[RunKey]*runEntry, len(s.runs))
	for k, e := range s.runs {
		entries[k] = e
	}
	s.mu.Unlock()

	out := make([]TracedRun, 0, len(entries))
	collect := func(k RunKey, e *runEntry) {
		if e.err == nil && e.out.rec != nil {
			out = append(out, TracedRun{Key: k, Rec: e.out.rec})
		}
	}
	var pending []RunKey
	for k, e := range entries {
		select {
		case <-e.done:
			collect(k, e)
		default:
			pending = append(pending, k)
		}
	}
	for _, k := range pending {
		e := entries[k]
		select {
		case <-e.done:
			collect(k, e)
		case <-ctx.Done():
			sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
			return out
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// AbortedTracedRuns returns the recorders salvaged from failed or canceled
// traced runs, sorted by key string. These partial traces are what an
// interrupted suite (SIGINT) or a draining server still flushes: the spans
// recorded up to the abort point remain loadable and diagnosable even though
// the run produced no result.
func (s *Scheduler) AbortedTracedRuns() []TracedRun {
	s.mu.Lock()
	out := make([]TracedRun, len(s.aborted))
	copy(out, s.aborted)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// abortedLabel marks aborted runs' sections in the exports so partial traces
// are never mistaken for completed ones.
func abortedLabel(tr TracedRun) string { return tr.Key.String() + " !aborted" }

// WriteChromeTrace exports every traced run as one Chrome trace-event JSON
// document: one process (pid) per simulation, one thread (tid) per OS
// service. Aborted runs' partial traces follow the completed ones, labeled
// "!aborted". The file loads directly in Perfetto or chrome://tracing.
func (s *Scheduler) WriteChromeTrace(w io.Writer) error {
	return s.WriteChromeTraceCtx(context.Background(), w)
}

// WriteChromeTraceCtx is WriteChromeTrace bounded by ctx: runs still
// executing at the deadline are omitted instead of blocking the export.
func (s *Scheduler) WriteChromeTraceCtx(ctx context.Context, w io.Writer) error {
	x := trace.NewChromeExporter(w)
	for _, tr := range s.TracedRunsCtx(ctx) {
		if err := x.AddProcess(tr.Key.String(), tr.Rec); err != nil {
			return err
		}
	}
	for _, tr := range s.AbortedTracedRuns() {
		if err := x.AddProcess(abortedLabel(tr), tr.Rec); err != nil {
			return err
		}
	}
	return x.Close()
}

// WriteJSONLTrace exports every traced run's spans and instants as compact
// JSON lines tagged with the run key (aborted runs tagged "!aborted").
func (s *Scheduler) WriteJSONLTrace(w io.Writer) error {
	return s.WriteJSONLTraceCtx(context.Background(), w)
}

// WriteJSONLTraceCtx is WriteJSONLTrace bounded by ctx (in-flight runs at
// the deadline are omitted).
func (s *Scheduler) WriteJSONLTraceCtx(ctx context.Context, w io.Writer) error {
	for _, tr := range s.TracedRunsCtx(ctx) {
		if err := trace.WriteJSONL(w, tr.Key.String(), tr.Rec); err != nil {
			return err
		}
	}
	for _, tr := range s.AbortedTracedRuns() {
		if err := trace.WriteJSONL(w, abortedLabel(tr), tr.Rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteRunMetrics writes each traced run's metrics registry as a plaintext
// /metrics-style dump, one "# run <key>" section per simulation. The output
// is deterministic: sections sort by key and each snapshot renders
// name-sorted (simulated quantities only — host timings live in
// WriteHarnessMetrics).
func (s *Scheduler) WriteRunMetrics(w io.Writer) error {
	return s.WriteRunMetricsCtx(context.Background(), w)
}

// WriteRunMetricsCtx is WriteRunMetrics bounded by ctx (in-flight runs at
// the deadline are omitted).
func (s *Scheduler) WriteRunMetricsCtx(ctx context.Context, w io.Writer) error {
	for _, tr := range s.TracedRunsCtx(ctx) {
		if _, err := fmt.Fprintf(w, "# run %s\n", tr.Key); err != nil {
			return err
		}
		if err := tr.Rec.Metrics().WriteText(w); err != nil {
			return err
		}
	}
	for _, tr := range s.AbortedTracedRuns() {
		if _, err := fmt.Fprintf(w, "# run %s (aborted: %v)\n", tr.Key, tr.Err); err != nil {
			return err
		}
		if err := tr.Rec.Metrics().WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteHarnessMetrics writes the scheduler's own cache and worker-pool
// counters. These are host- and parallelism-dependent (like the "harness:"
// notes StableRender excludes), so they are kept out of WriteRunMetrics and
// the deterministic trace comparisons.
func (s *Scheduler) WriteHarnessMetrics(w io.Writer) error {
	st := s.Stats()
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	_, err := fmt.Fprintf(w,
		"# harness (host-dependent, excluded from deterministic comparisons)\n"+
			"sched.distinct %d\nsched.hits %d\nsched.misses %d\n"+
			"sched.hit_rate %.3f\nsched.failures %d\nsched.retries %d\n"+
			"sched.sim_wall_seconds %.3f\nsched.parallelism %d\n",
		st.Distinct, st.Hits, st.Misses, hitRate, st.Failures, st.Retries,
		st.SimWall.Seconds(), s.Parallelism())
	if err != nil || s.warm == nil {
		return err
	}
	// Warm-start counters appear only when a store is configured, so existing
	// metrics consumers see an unchanged document otherwise. plt.learned is
	// the learning performed by runs this process simulated: a fully
	// warm-started process reports 0.
	_, err = fmt.Fprintf(w,
		"plt.warm_hits %d\nplt.warm_misses %d\nplt.warm_invalid %d\n"+
			"plt.warm_saves %d\nplt.learned %d\n"+
			"plt.recovered.orphans %d\nplt.recovered.quarantined %d\n"+
			"transfer.hits %d\ntransfer.rejected %d\n",
		st.WarmHits, st.WarmMisses, st.WarmInvalid, st.WarmSaves, st.PLTLearned,
		st.WarmRecoveredOrphans, st.WarmRecoveredQuarantined,
		st.TransferHits, st.TransferRejected)
	return err
}
