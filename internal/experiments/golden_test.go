package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden-table files under testdata/")

// goldenIDs is the representative subset whose rendered output is pinned:
// a baseline divergence figure (fig1), the two characterization summaries
// clustering feeds (fig6), the closed-form learning window (fig7), the
// strategy comparison (fig11), the Eq-10 speedup table (tab2), the
// fault-injection robustness study (faults), the PLT persistence study
// (warmstart) whose parity column pins the warm-start invariant, and the
// stratified-sampling error/speedup study (sampling) whose error column pins
// the extrapolation estimator.
var goldenIDs = []string{"fig1", "fig6", "fig7", "fig11", "tab2", "faults", "warmstart", "sampling", "sweep"}

// goldenConfig is the pinned small-scale configuration the files were
// rendered under. Mode costs are pinned so tab2 doesn't time the host.
func goldenConfig() Config {
	mc := ReferenceModeCosts
	return Config{Scale: 0.1, Seed: 1, Parallelism: 4, ModeCosts: &mc}
}

// TestGoldenTables locks the paper-reproduction numbers: any change to the
// simulated platform, the workloads, the characterization pipeline or the
// harness's seed derivation that shifts an experiment's output fails here.
// Intentional changes are re-pinned with:
//
//	go test ./internal/experiments/ -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates the golden subset")
	}
	results, err := RunAll(goldenIDs, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		res := res
		t.Run(res.ID, func(t *testing.T) {
			path := filepath.Join("testdata", res.ID+".golden")
			got := res.StableRender()
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden table.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, regenerate with -update.",
					res.ID, got, want)
			}
		})
	}
}
