package experiments

import (
	"bytes"
	"fmt"

	"fssim/internal/core"
	"fssim/internal/faults"
	"fssim/internal/pltstore"
	"fssim/internal/workload"
)

// The warmstart experiment measures what PLT persistence buys and pins the
// invariant it rests on. For each benchmark it takes one cold accelerated
// run (the learning session), pushes its learned state through the full
// pltstore byte codec, and then simulates the *same* configuration twice
// more: once continuing from the in-memory state and once from the state
// that round-tripped through snapshot bytes. The two continuation runs must
// be identical down to the machine statistics — a warm-started run's
// predictions come from the same clusters a continuous run would have used —
// while against the cold session the warm run skips the learning window:
// higher coverage, fewer detailed intervals, and (near) zero learning.
//
// Everything runs in memory, so the experiment is a pure function of the
// Config — byte-identical at any parallelism, with or without Config.WarmDir
// — while still exercising the exact Encode/Decode/Import path a process
// restart would.

// warmstartBenches keeps the experiment to two OS-intensive workloads; the
// invariant is per-run, so more benchmarks add cost, not information.
func warmstartBenches() []string {
	names := workload.OSIntensiveNames()
	if len(names) > 2 {
		names = names[:2]
	}
	return names
}

func warmstartNeeds(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range warmstartBenches() {
		keys = append(keys, cfg.accelKey(name, core.Statistical, 0))
	}
	return keys
}

// warmstartOpts rebuilds the exact workload options the scheduler would use
// for key (executeOnce's first attempt), so the experiment's direct
// simulations are the same deterministic runs the memo cache holds.
func warmstartOpts(cfg Config, key RunKey) (workload.Options, error) {
	opts := workload.DefaultOptions()
	opts.Scale = key.Scale
	opts.Machine = machineConfigFor(key)
	if key.Faults != "" {
		spec, err := faults.Named(key.Faults)
		if err != nil {
			return opts, err
		}
		plan := faults.NewPlan(key.Seed, spec.Scaled(key.Scale))
		opts.Prepare = plan.Install
	}
	if done := cfg.context().Done(); done != nil {
		opts.Cancel = done
	}
	return opts, nil
}

// WarmstartExp runs the persistence study: cold vs warm coverage, the
// detailed-interval work a warm start avoids, the learning it skips, and the
// cluster-parity invariant between a continuous and a snapshot-restored run.
func WarmstartExp(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "cov cold", "cov warm", "detailed cold", "detailed warm",
		"learned warm", "clusters", "parity")
	var snapBytes int
	var detCold, detWarm uint64
	for _, name := range warmstartBenches() {
		key := cfg.accelKey(name, core.Statistical, 0)

		// Session 1 (cold): the shared memoized accelerated run; its
		// accelerator holds the learned state a restart would persist.
		cold, acc, err := accelRun(cfg, name, core.Statistical, 0)
		if err != nil {
			return nil, err
		}
		coldSum := acc.Summary()
		state := acc.Export()

		// Persist through the real codec: state -> snapshot bytes -> state.
		learn := warmLearnHash(key)
		snap := &pltstore.Snapshot{
			LearnHash:  learn,
			ReplayHash: pltstore.ReplayHash(learn, key.String(), key.DeriveSeed()),
			Benchmark:  key.Bench,
			Key:        key.String(),
			Stats:      cold.Stats,
			State:      state,
		}
		data := pltstore.Encode(snap)
		snapBytes += len(data)
		restored, err := pltstore.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("warmstart: snapshot round trip: %w", err)
		}
		if !bytes.Equal(pltstore.Encode(restored), data) {
			return nil, fmt.Errorf("warmstart: %s snapshot re-encode not byte-identical", name)
		}

		// Session 2, both ways: continuing from the in-memory state, and
		// restoring from the snapshot bytes. core's prediction-parity test
		// proves Import(Export(a)) behaves exactly like a itself, so the
		// imported continuation stands in for the continuous run without
		// mutating the memo cache's shared accelerator.
		contAcc := core.NewAccelerator(state.Params)
		if err := contAcc.Import(state); err != nil {
			return nil, fmt.Errorf("warmstart: %s: import of exported state: %w", name, err)
		}
		warmAcc := core.NewAccelerator(restored.State.Params)
		if err := warmAcc.Import(restored.State); err != nil {
			return nil, fmt.Errorf("warmstart: %s: import of decoded state: %w", name, err)
		}
		opts, err := warmstartOpts(cfg, key)
		if err != nil {
			return nil, err
		}
		contOpts, warmOpts := opts, opts
		contOpts.Sink = contAcc
		warmOpts.Sink = warmAcc
		contRes, err := workload.Run(name, contOpts)
		if err != nil {
			return nil, fmt.Errorf("warmstart: %s continuous rerun: %w", name, err)
		}
		warmRes, err := workload.Run(name, warmOpts)
		if err != nil {
			return nil, fmt.Errorf("warmstart: %s warm rerun: %w", name, err)
		}

		parity := "ok"
		if contRes.Stats != warmRes.Stats || contAcc.Summary() != warmAcc.Summary() {
			parity = "DIVERGED"
		}
		warmSum := warmAcc.Summary()
		dc := cold.Stats.Intervals - cold.Stats.Emulated
		dw := warmRes.Stats.Intervals - warmRes.Stats.Emulated
		detCold += dc
		detWarm += dw
		t.AddRowf(name,
			pct(cold.Stats.Coverage()), pct(warmRes.Stats.Coverage()),
			fmt.Sprintf("%d", dc), fmt.Sprintf("%d", dw),
			fmt.Sprintf("%d", warmSum.Learned-coldSum.Learned),
			fmt.Sprintf("%d", warmSum.Clusters), parity)
	}
	res := &Result{Table: t}
	res.Notes = append(res.Notes,
		"parity: a snapshot-restored run matches a continuous run's machine stats and counters exactly",
		fmt.Sprintf("warm start simulates %d detailed intervals where cold learning needed %d", detWarm, detCold),
		fmt.Sprintf("snapshots: %d bytes total (format v%d)", snapBytes, pltstore.FormatVersion))
	return res, nil
}
