// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs 1-12, Tables 1-2) on the simulated platform. Each
// experiment is a named runner producing a text table whose rows correspond
// to the series the paper plots; EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
//
// Runners request simulations through a shared Scheduler (scheduler.go): a
// RunKey-addressed memo cache over a bounded worker pool, so each distinct
// (benchmark, mode, L2, scale, seed, options) simulation executes exactly
// once per suite and independent simulations run concurrently. Each run's
// machine seed is derived from the base seed and its RunKey, which makes
// every table a pure function of the Config — byte-identical at any
// parallelism level.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fssim/internal/durable"
	"fssim/internal/faults"
	"fssim/internal/machine"
	"fssim/internal/sample"
)

// Config scales and seeds the experiment runs.
type Config struct {
	Scale   float64 // workload size multiplier (1.0 = defaults)
	Seed    int64   // base seed; per-run seeds are derived (RunKey.DeriveSeed)
	Verbose bool
	// Parallelism bounds how many simulations run concurrently; <= 0 means
	// GOMAXPROCS. Results are independent of the value.
	Parallelism int
	// ModeCosts, when non-nil, pins Table 1/2's host-cost measurement to
	// fixed values instead of timing the host — the deterministic form the
	// golden and determinism tests use (see ReferenceModeCosts).
	ModeCosts *ModeCosts

	// Timeout bounds each simulation's wall-clock time; 0 means unlimited.
	// A run that exceeds it is aborted cooperatively and reported as a
	// per-run *RunError with Timeout set.
	Timeout time.Duration
	// Retries is how many extra attempts a failed run gets, each with a
	// fresh derived seed (RunKey.AttemptSeed). 0 means fail on first error.
	Retries int
	// FaultPlan names a faults.Named perturbation plan injected into every
	// simulation ("" = none). Enabling it changes every RunKey, so faulted
	// and unfaulted runs never share cache entries.
	FaultPlan string
	// Sample, when non-empty, attaches an application-interval stratified
	// sampler (sample.ParseSpec syntax: a preset like "default"/"fast"/
	// "precise" or a key=value list) to every simulation. It is normalized
	// to canonical form, becomes part of every RunKey, and each result's
	// extrapolated figures carry a variance-derived 95% confidence interval
	// (Outcome.Sample). Empty disables sampling.
	Sample string
	// Trace attaches a fresh trace.Recorder to every simulation the scheduler
	// executes. Recorders observe without influencing: a traced run's tables
	// and statistics are byte-identical to an untraced run's (asserted by
	// TestTracingDoesNotPerturbResults). Export the collected traces and
	// metrics through Scheduler.WriteChromeTrace / WriteJSONLTrace /
	// WriteRunMetrics.
	Trace bool
	// Transfer, when set, attaches the "store" transfer directive to every
	// accelerated run: its PLT is warm-started from the nearest eligible
	// donor snapshot in WarmDir's sweep-family index (rescaled to this
	// configuration, imported as low-confidence priors), cutting the learning
	// phase at every sweep point after the first. Requires WarmDir. Ineligible
	// or missing donors are counted (SchedStats.TransferRejected) and the run
	// proceeds cold — a transfer is never silent in either direction.
	Transfer bool
	// WarmDir, when set, roots a pltstore warm-start store there: every
	// successful accelerated run's learned PLT state is snapshotted to disk,
	// and an identical later run (same configuration, exact replay hash) is
	// reconstructed from its snapshot without simulating. Stale, mismatched
	// or corrupt snapshots degrade to cold starts with counted metrics
	// (SchedStats.Warm*), never to wrong predictions. Empty disables
	// persistence entirely; results are byte-identical either way.
	WarmDir string

	ctx   context.Context // suite-wide cancellation (WithContext)
	sched *Scheduler      // shared memo cache + worker pool (set by Run/RunAll)
	stats *expStats       // per-experiment cache-hit/timing attribution

	// warmFS overrides the warm store's filesystem (nil = the real one).
	// Test seam: crash-exploration suites inject a durable.CrashFS here to
	// record and replay every durable operation FlushWarm performs.
	warmFS durable.FS
}

// WithContext returns the config with a cancellation context attached: when
// ctx is canceled, in-flight simulations abort cooperatively and pending
// ones never start. Attach before building a Scheduler.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

// context returns the attached context, defaulting to Background.
func (c Config) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// DefaultConfig runs at full default workload scale.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

// normalized fills defaulted fields: Scale 1.0, Seed 1, Parallelism
// GOMAXPROCS.
func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Sample != "" {
		// validate() has already accepted the spec; canonicalize so every
		// spelling of one policy produces identical keys and tables.
		if canon, err := sample.Canonical(c.Sample); err == nil {
			c.Sample = canon
		}
	}
	return c
}

// validate rejects configs no experiment can run under.
func (c Config) validate() error {
	if c.Seed < 0 {
		return fmt.Errorf("experiments: seed must be non-negative, got %d", c.Seed)
	}
	if c.Retries < 0 {
		return fmt.Errorf("experiments: retries must be non-negative, got %d", c.Retries)
	}
	// Zero means "no per-run deadline"; a negative duration is always a
	// configuration mistake and is rejected up front rather than silently
	// behaving like either extreme.
	if c.Timeout < 0 {
		return fmt.Errorf("experiments: timeout must be non-negative (0 = no deadline), got %v", c.Timeout)
	}
	if c.FaultPlan != "" {
		if _, err := faults.Named(c.FaultPlan); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	if c.Sample != "" {
		if _, err := sample.Canonical(c.Sample); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	if c.WarmDir != "" {
		if fi, err := os.Stat(c.WarmDir); err == nil && !fi.IsDir() {
			return fmt.Errorf("experiments: warm dir %s exists and is not a directory", c.WarmDir)
		}
	}
	if c.Transfer && c.WarmDir == "" {
		return errors.New("experiments: transfer requires a warm-start store (set WarmDir)")
	}
	return nil
}

// ReferenceModeCosts is a pinned, host-independent ModeCosts instance with
// the ordering every host exhibits (emulation cheapest, detailed OOO+cache
// most expensive; R = detailed/emulation = 40x). Tests and reproducible CLI
// runs use it so tab1/tab2 render identically everywhere.
var ReferenceModeCosts = ModeCosts{
	Emulation:      0.5,
	InorderNoCache: 2.0,
	InorderCache:   8.0,
	OOONoCache:     5.0,
	OOOCache:       20.0,
}

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	Table *Table
	Notes []string
}

// Render formats the result for terminal output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.Render())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// harnessNotePrefix marks the scheduler-stats note appended to every result;
// it carries host timings and is excluded from byte-comparable rendering.
const harnessNotePrefix = "harness:"

// StableRender formats the result omitting host-timing harness notes: the
// byte-comparable form the golden and determinism tests assert on.
func (r *Result) StableRender() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.Render())
	for _, n := range r.Notes {
		if strings.HasPrefix(n, harnessNotePrefix) {
			continue
		}
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner produces one artifact.
type runner struct {
	title string
	fn    func(Config) (*Result, error)
	// needs declares the simulations the runner will request, so Run can
	// prefetch them into the scheduler and the pool can execute them
	// concurrently while the runner consumes results in presentation order.
	needs func(Config) []RunKey
}

var registry map[string]runner

// The table is populated in init (not a composite-literal initializer)
// because runners reference Title, which reads the registry.
func init() {
	registry = map[string]runner{
		"fig1":  {"L2 misses, execution time and IPC: full-system vs application-only", Fig1, fig1Needs},
		"fig2":  {"Speedup of 1MB over 512KB L2: app-only vs full-system", Fig2, fig2Needs},
		"fig3":  {"Per-OS-service cycles and IPC (avg ± std), ab-rand and ab-seq", Fig3, profilePairNeeds},
		"fig4":  {"sys_read execution time across invocations", Fig4, profilePairNeeds},
		"fig5":  {"sys_read behavior points: instruction x cycle bubble histogram", Fig5, profilePairNeeds},
		"fig6":  {"Coefficient of variation: non-clustered vs scaled clusters", Fig6, fig6Needs},
		"fig7":  {"Initial learning window vs minimum probability of occurrence", Fig7, nil},
		"fig8":  {"Execution time and IPC: full vs predicted vs app-only", Fig8, fig8Needs},
		"fig9":  {"Cache miss rates: full-system vs predicted", Fig9, fig9Needs},
		"fig10": {"Speedup of 1MB over 512KB L2 incl. accelerated simulation", Fig10, fig10Needs},
		"fig11": {"Coverage and accuracy of the four re-learning strategies", Fig11, fig11Needs},
		"fig12": {"Prediction error across L2 sizes (1MB/2MB/4MB)", Fig12, fig12Needs},
		"tab1":  {"Simulation-mode slowdown ratios (measured wall-clock)", Table1, nil},
		"tab2":  {"Estimated simulation speedups (Eq 10)", Table2, tab2Needs},
		"faults": {"Re-learning strategies and the divergence watchdog under injected faults",
			FaultsExp, faultsExpNeeds},
		"warmstart": {"Warm-started PLTs: prediction parity, coverage and work saved vs cold learning",
			WarmstartExp, warmstartNeeds},
		"sampling": {"Stratified app-interval sampling: error/speedup curve with 95% confidence intervals",
			SamplingExp, samplingNeeds},
		"sweep": {"Cross-config transfer: warm-starting an L2 sweep from its first point",
			SweepExp, sweepNeeds},
	}
}

// IDs returns all experiment ids in paper order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		oi, oj := orderKey(ids[i]), orderKey(ids[j])
		if oi != oj {
			return oi < oj
		}
		// Extensions share an order bucket; break ties lexically so the
		// listing stays deterministic (sort.Slice is not stable).
		return ids[i] < ids[j]
	})
	return ids
}

func orderKey(id string) int {
	var n int
	if strings.HasPrefix(id, "fig") {
		fmt.Sscanf(id, "fig%d", &n)
		return n
	}
	if strings.HasPrefix(id, "tab") {
		fmt.Sscanf(id, "tab%d", &n)
		return 100 + n
	}
	return 200 // extensions beyond the paper's artifacts sort last
}

// Title returns an experiment's title, or an error for unknown ids (instead
// of the zero-value lookup callers previously had to guard against).
func Title(id string) (string, error) {
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r.title, nil
}

// Run executes one experiment by id on its own fresh scheduler. Use a
// Scheduler (or RunAll) to share the memo cache across experiments.
func Run(id string, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	return NewScheduler(cfg).Run(id)
}

// Run executes one experiment by id over the scheduler's shared cache.
func (s *Scheduler) Run(id string) (*Result, error) {
	if err := s.cfg.validate(); err != nil {
		return nil, err
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	cfg := s.cfg
	cfg.sched = s
	cfg.stats = &expStats{}
	if r.needs != nil {
		s.prefetch(cfg.stats, r.needs(cfg)...)
	}
	start := time.Now()
	res, err := r.fn(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	res.Notes = append(res.Notes, cfg.stats.note(time.Since(start), s.Parallelism()))
	return res, nil
}

// RunAll regenerates the given artifacts (all of them when ids is empty)
// over one shared scheduler, running experiments concurrently; results come
// back in input order. The shared cache is where the harness's speedup
// comes from: across the full suite the detailed App+OS baselines, the
// Statistical-strategy accelerated runs and the profiled runs each execute
// once instead of once per figure.
func RunAll(ids []string, cfg Config) ([]*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if len(ids) == 0 {
		ids = IDs()
	}
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	return NewScheduler(cfg).RunMany(ids)
}

// RunMany executes several experiments concurrently over the scheduler's
// shared cache, returning results in input order. One failing experiment no
// longer voids the suite: its slot in the result slice is nil and its error
// is joined into the returned error, while every other experiment's result
// is still returned — callers render what succeeded and report what failed.
func (s *Scheduler) RunMany(ids []string) ([]*Result, error) {
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			results[i], errs[i] = s.Run(id)
		}(i, id)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// --- shared run helpers ----------------------------------------------------

func defaultL2() int { return machine.DefaultConfig().Mem.L2.Size }
