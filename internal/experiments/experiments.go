// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs 1-12, Tables 1-2) on the simulated platform. Each
// experiment is a named runner producing a text table whose rows correspond
// to the series the paper plots; EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fssim/internal/kernel"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

// Config scales and seeds the experiment runs.
type Config struct {
	Scale   float64 // workload size multiplier (1.0 = defaults)
	Seed    int64
	Verbose bool
}

// DefaultConfig runs at full default workload scale.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	Table *Table
	Notes []string
}

// Render formats the result for terminal output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.Render())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// runner produces one artifact.
type runner struct {
	title string
	fn    func(Config) (*Result, error)
}

var registry map[string]runner

// The table is populated in init (not a composite-literal initializer)
// because runners reference Title, which reads the registry.
func init() {
	registry = map[string]runner{
		"fig1":  {"L2 misses, execution time and IPC: full-system vs application-only", Fig1},
		"fig2":  {"Speedup of 1MB over 512KB L2: app-only vs full-system", Fig2},
		"fig3":  {"Per-OS-service cycles and IPC (avg ± std), ab-rand and ab-seq", Fig3},
		"fig4":  {"sys_read execution time across invocations", Fig4},
		"fig5":  {"sys_read behavior points: instruction x cycle bubble histogram", Fig5},
		"fig6":  {"Coefficient of variation: non-clustered vs scaled clusters", Fig6},
		"fig7":  {"Initial learning window vs minimum probability of occurrence", Fig7},
		"fig8":  {"Execution time and IPC: full vs predicted vs app-only", Fig8},
		"fig9":  {"Cache miss rates: full-system vs predicted", Fig9},
		"fig10": {"Speedup of 1MB over 512KB L2 incl. accelerated simulation", Fig10},
		"fig11": {"Coverage and accuracy of the four re-learning strategies", Fig11},
		"fig12": {"Prediction error across L2 sizes (1MB/2MB/4MB)", Fig12},
		"tab1":  {"Simulation-mode slowdown ratios (measured wall-clock)", Table1},
		"tab2":  {"Estimated simulation speedups (Eq 10)", Table2},
	}
}

// IDs returns all experiment ids in paper order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) int {
	var n int
	if strings.HasPrefix(id, "fig") {
		fmt.Sscanf(id, "fig%d", &n)
		return n
	}
	fmt.Sscanf(id, "tab%d", &n)
	return 100 + n
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	return r.fn(cfg)
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// --- shared run helpers ----------------------------------------------------

// runBench runs one benchmark under the given machine mode and L2 size.
func runBench(cfg Config, name string, mode machine.SimMode, l2 int,
	opt func(*workload.Options)) (workload.Result, error) {
	opts := workload.DefaultOptions()
	opts.Scale = cfg.Scale
	opts.Machine.Mode = mode
	opts.Machine.Seed = cfg.Seed
	if l2 > 0 {
		opts.Machine.Mem = opts.Machine.Mem.WithL2Size(l2)
	}
	if opt != nil {
		opt(&opts)
	}
	return workload.Run(name, opts)
}

func defaultL2() int { return machine.DefaultConfig().Mem.L2.Size }

var _ = kernel.DefaultTunables // keep the import meaningful for helpers below
