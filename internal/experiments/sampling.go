package experiments

import (
	"fmt"
	"math"

	"fssim/internal/machine"
	"fssim/internal/sample"
	"fssim/internal/workload"
)

// The sampling experiment quantifies the stratified-sampling fast path: for
// each OS-intensive benchmark it simulates the full-system run twice — once
// with every application interval in detailed mode (the reference) and once
// per sampling preset — and reports the error/speedup curve: how many times
// fewer app intervals were simulated in detail, what that did to the
// predicted CPI, and the estimator's own 95% confidence interval on the
// extrapolated cycles. Because a sampled key shares its unsampled twin's
// derived seed, both runs replay the identical workload trajectory and the
// error column is pure estimator error.

// samplingPresets is the coarse-to-fine curve the experiment sweeps.
var samplingPresets = []string{"fast", "default", "precise"}

// samplingMinScale is the smallest workload scale the estimator is
// characterized at: below it the per-benchmark app-interval population is too
// small for the pilot phase plus per-stratum budgets to amortize, and
// trajectory perturbation noise dominates the estimate.
const samplingMinScale = 0.25

// samplingScale clamps the config's scale up to the estimator's minimum.
func samplingScale(cfg Config) float64 {
	if cfg.Scale < samplingMinScale {
		return samplingMinScale
	}
	return cfg.Scale
}

// samplingBase is the all-detailed reference key for one benchmark: the
// full-system run at the sampling scale with any config-wide sampling spec
// stripped, so the reference is always the exact-simulation twin.
func samplingBase(cfg Config, name string) RunKey {
	k := cfg.benchKey(name, machine.FullSystem, 0)
	k.Scale = samplingScale(cfg)
	k.Sample = ""
	return k
}

// samplingSpec returns the canonical spec string of a preset.
func samplingSpec(preset string) string {
	sp, err := sample.ParseSpec(preset)
	if err != nil {
		panic("experiments: bad built-in sampling preset " + preset + ": " + err.Error())
	}
	return sp.String()
}

func samplingNeeds(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		base := samplingBase(cfg, name)
		keys = append(keys, base)
		for _, preset := range samplingPresets {
			keys = append(keys, base.withSample(samplingSpec(preset)))
		}
	}
	return keys
}

// SamplingExp renders the error/speedup curve of the app-interval sampler.
func SamplingExp(cfg Config) (*Result, error) {
	t := NewTable("benchmark", "spec", "intervals", "detailed", "reduction",
		"cpi full", "cpi sampled", "err%", "ci±%")
	type worst struct {
		err, red float64
	}
	w := worst{red: math.Inf(1)}
	for _, name := range workload.OSIntensiveNames() {
		base := samplingBase(cfg, name)
		ref, err := getKey(cfg, base)
		if err != nil {
			return nil, err
		}
		refCPI := cpiOf(ref.res.Stats)
		for _, preset := range samplingPresets {
			out, err := getKey(cfg, base.withSample(samplingSpec(preset)))
			if err != nil {
				return nil, err
			}
			if out.smp == nil {
				return nil, fmt.Errorf("sampling: run %s produced no sampler report", name)
			}
			rep := out.smp.Report()
			cpi := cpiOf(out.res.Stats)
			errPct := 100 * (cpi - refCPI) / refCPI
			t.AddRowf(name, preset,
				fmt.Sprint(rep.Intervals), fmt.Sprint(rep.Detailed),
				fmt.Sprintf("%.2fx", rep.Reduction()),
				fmt.Sprintf("%.4f", refCPI), fmt.Sprintf("%.4f", cpi),
				fmt.Sprintf("%+.3f", errPct),
				fmt.Sprintf("%.3f", 100*rep.RelCI(out.res.Stats.Cycles)))
			if preset == "default" {
				if a := math.Abs(errPct); a > w.err {
					w.err = a
				}
				if r := rep.Reduction(); r < w.red {
					w.red = r
				}
			}
		}
	}
	res := &Result{Table: t}
	if sc := samplingScale(cfg); sc != cfg.Scale {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"measured at scale %g: below it the app-interval population cannot amortize the pilot phase", sc))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"default preset, worst case across benchmarks: |err| %.3f%% at %.2fx reduction (target ≤2%% at ≥3x)",
		w.err, w.red))
	return res, nil
}

// cpiOf is the run's cycles-per-instruction over its post-warm-up window.
func cpiOf(st machine.Stats) float64 {
	if st.Insts == 0 {
		return 0
	}
	return float64(st.Cycles) / float64(st.Insts)
}
