package experiments

import (
	"testing"

	"fssim/internal/machine"
)

// TestDeterminismAcrossParallelism is the contract the memo cache and the
// per-run seed derivation must uphold: every experiment renders
// byte-identically whether its simulations run serially or eight-wide.
// Mode costs are pinned so tab1/tab2 don't time the host, and the harness
// note (which carries host timings) is excluded via StableRender.
func TestDeterminismAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the full suite twice")
	}
	render := func(parallelism int) map[string]string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc}
		results, err := RunAll(nil, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		out := make(map[string]string, len(results))
		for _, res := range results {
			out[res.ID] = res.StableRender()
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	for _, id := range IDs() {
		if serial[id] == "" {
			t.Errorf("%s: missing serial rendering", id)
			continue
		}
		if serial[id] != parallel[id] {
			t.Errorf("%s renders differently at parallelism 1 vs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial[id], parallel[id])
		}
	}
}

// TestFaultedDeterminism extends the parallelism contract to perturbed runs:
// a config with a fault plan injected into every simulation must still render
// byte-identically at any -j, because the plan is a pure function of the base
// seed and the spec — never of scheduling order or wall-clock time.
func TestFaultedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs a faulted experiment twice")
	}
	render := func(parallelism int) string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc, FaultPlan: "mild"}
		res, err := Run("fig11", cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.StableRender()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("faulted fig11 renders differently at parallelism 1 vs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestSampledDeterminism extends the parallelism contract to sampled runs: a
// config routing every simulation through the stratified app-interval sampler
// must render byte-identically at any -j, because every sampling decision is
// a pure function of (spec, derived seed, observation history) — never of
// scheduling order. fig1 covers the sampled full-system and app-only paths;
// the sampling experiment itself is covered by the suite-wide test above.
func TestSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs a sampled experiment twice")
	}
	render := func(parallelism int) string {
		t.Helper()
		mc := ReferenceModeCosts
		cfg := Config{Scale: 0.1, Seed: 1, Parallelism: parallelism, ModeCosts: &mc, Sample: "default"}
		res, err := Run("fig1", cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res.StableRender()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("sampled fig1 renders differently at parallelism 1 vs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestSampledSpellingSharesKeys pins spec canonicalization: two spellings of
// one sampling policy must normalize to identical run keys, so they share
// memo-cache entries, run ids, and byte-identical tables.
func TestSampledSpellingSharesKeys(t *testing.T) {
	a := Config{Sample: "default"}.normalized()
	b := Config{Sample: "budget=8,min=2,pilot=64,range=0.05,refresh=64"}.normalized()
	ka := a.benchKey("ab-rand", machine.FullSystem, 0)
	kb := b.benchKey("ab-rand", machine.FullSystem, 0)
	if ka != kb {
		t.Errorf("spellings of one policy produced distinct keys:\n%s\n%s", ka, kb)
	}
	if ka.Sample == "" {
		t.Error("normalized config lost its sampling spec")
	}
	// The sampled key must share its unsampled twin's derived seed (same
	// trajectory), while still being a distinct cache entry.
	plain := Config{}.normalized().benchKey("ab-rand", machine.FullSystem, 0)
	if ka == plain {
		t.Error("sampled and unsampled keys collide")
	}
	if ka.DeriveSeed() != plain.DeriveSeed() {
		t.Error("sampled run does not replay its unsampled twin's trajectory seed")
	}
}

// TestSchedulerCoalescesDuplicates asserts the memo layer's accounting: a
// suite-wide run must simulate each distinct RunKey exactly once, and every
// repeated request must be served from cache.
func TestSchedulerCoalescesDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs several experiments")
	}
	mc := ReferenceModeCosts
	s := NewScheduler(Config{Scale: 0.1, Seed: 1, Parallelism: 4, ModeCosts: &mc})
	// fig8 and fig9 share their full-system and accelerated baselines; tab2
	// shares fig8's accelerated runs.
	if _, err := s.RunMany([]string{"fig8", "fig9", "tab2"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits == 0 {
		t.Errorf("no cache hits across overlapping experiments: %+v", st)
	}
	if int64(st.Distinct) != st.Misses {
		t.Errorf("distinct runs (%d) != misses (%d): duplicate simulations executed", st.Distinct, st.Misses)
	}
	// fig8: 5 benchmarks x {full, accel, apponly} = 15 distinct; fig9 and
	// tab2 add nothing new.
	if st.Distinct != 15 {
		t.Errorf("distinct simulations = %d, want 15 (fig9/tab2 fully served by fig8's runs)", st.Distinct)
	}
}

// TestRunSeedValidation covers the harness's config validation: negative
// seeds are rejected, zero seed and non-positive parallelism take defaults.
func TestRunSeedValidation(t *testing.T) {
	if _, err := Run("fig7", Config{Scale: 1, Seed: -3}); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := RunAll([]string{"fig7"}, Config{Scale: 1, Seed: -3}); err == nil {
		t.Error("RunAll accepted negative seed")
	}
	res, err := Run("fig7", Config{}) // zero Scale, Seed, Parallelism
	if err != nil {
		t.Fatalf("zero-value config rejected: %v", err)
	}
	if res.ID != "fig7" || res.Title == "" {
		t.Errorf("Run did not fill ID/Title: %+v", res)
	}
	cfg := Config{Parallelism: -2}.normalized()
	if cfg.Parallelism <= 0 {
		t.Errorf("Parallelism not defaulted: %d", cfg.Parallelism)
	}
	if cfg.Seed != 1 || cfg.Scale != 1.0 {
		t.Errorf("Seed/Scale not defaulted: %+v", cfg)
	}
}
