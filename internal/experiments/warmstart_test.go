package experiments

import (
	"os"
	"strings"
	"testing"

	"fssim/internal/core"
	"fssim/internal/pltstore"
)

func warmTestConfig(dir string) Config {
	mc := ReferenceModeCosts
	return Config{Scale: 0.1, Seed: 1, Parallelism: 2, ModeCosts: &mc, WarmDir: dir}
}

// TestWarmReplayByteIdentity is the tentpole acceptance check at the
// scheduler level: a second scheduler pointed at the same warm directory
// replays the accelerated run from its snapshot — no simulation, no learning
// — and the replayed result is byte-identical to both the run that produced
// the snapshot and a cold scheduler that never saw the warm store.
func TestWarmReplayByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates an accelerated run")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)
	key := cfg.accelKey("ab-rand", core.Statistical, 0)

	s1 := NewScheduler(cfg)
	cold, err := s1.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.Stats()
	if st1.WarmMisses != 1 || st1.WarmHits != 0 {
		t.Errorf("first run: warm misses %d hits %d, want 1 miss 0 hits", st1.WarmMisses, st1.WarmHits)
	}
	if st1.WarmSaves != 1 {
		t.Errorf("first run saved %d snapshots, want 1", st1.WarmSaves)
	}
	if st1.PLTLearned == 0 {
		t.Error("cold run reported zero learning")
	}

	s2 := NewScheduler(cfg)
	warm, err := s2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.WarmHits != 1 || st2.WarmInvalid != 0 {
		t.Errorf("second run: warm hits %d invalid %d, want 1 hit", st2.WarmHits, st2.WarmInvalid)
	}
	if st2.PLTLearned != 0 {
		t.Errorf("replayed run reported %d learned instances, want 0 (nothing simulated)", st2.PLTLearned)
	}
	if warm.Stats != cold.Stats {
		t.Errorf("replayed stats differ from the run that produced the snapshot:\n got %+v\nwant %+v",
			warm.Stats, cold.Stats)
	}

	noWarm := cfg
	noWarm.WarmDir = ""
	s3 := NewScheduler(noWarm)
	ref, err := s3.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats != ref.Stats {
		t.Error("replayed stats differ from a cold scheduler's: replay is not result-preserving")
	}
}

// TestWarmInvalidSnapshotsDegradeToCold covers the two invalidation paths:
// corrupt bytes, and a compatible-but-not-identical snapshot (different base
// seed, so the replay hash disagrees). Both count WarmInvalid and produce
// exactly the cold result.
func TestWarmInvalidSnapshotsDegradeToCold(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates accelerated runs")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)
	key := cfg.accelKey("ab-rand", core.Statistical, 0)
	s1 := NewScheduler(cfg)
	cold, err := s1.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt file", func(t *testing.T) {
		paths, err := pltstore.Open(dir).List(key.Bench)
		if err != nil || len(paths) != 1 {
			t.Fatalf("List = (%v, %v), want one snapshot", paths, err)
		}
		orig, err := os.ReadFile(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		corrupt := append([]byte(nil), orig...)
		corrupt[len(corrupt)/2] ^= 0xff
		if err := os.WriteFile(paths[0], corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := NewScheduler(cfg)
		got, err := s2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		st := s2.Stats()
		// The startup recovery sweep quarantines the corrupt snapshot before
		// any run consults the store, so the lookup is a plain cold miss
		// rather than a per-load invalidation.
		if st.WarmRecoveredQuarantined != 1 {
			t.Errorf("recovered quarantined %d, want 1", st.WarmRecoveredQuarantined)
		}
		if st.WarmMisses != 1 || st.WarmHits != 0 || st.WarmInvalid != 0 {
			t.Errorf("warm misses %d hits %d invalid %d, want 1 miss after quarantine",
				st.WarmMisses, st.WarmHits, st.WarmInvalid)
		}
		if got.Stats != cold.Stats {
			t.Error("cold fallback after corrupt snapshot produced different stats")
		}
		// The cold rerun re-saves a valid snapshot over the corrupt one.
		if st.WarmSaves != 1 {
			t.Errorf("fallback run saved %d snapshots, want 1", st.WarmSaves)
		}
		if err := os.WriteFile(paths[0], orig, 0o644); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("replay hash mismatch", func(t *testing.T) {
		// Same machine configuration (LearnHash ignores the seed), different
		// base seed: the snapshot is found at the same address but describes
		// a different exact run, so exact replay must be refused.
		cfg2 := cfg
		cfg2.Seed = 2
		key2 := cfg2.accelKey("ab-rand", core.Statistical, 0)
		s2 := NewScheduler(cfg2)
		got, err := s2.Get(key2)
		if err != nil {
			t.Fatal(err)
		}
		st := s2.Stats()
		if st.WarmInvalid != 1 || st.WarmHits != 0 {
			t.Errorf("warm invalid %d hits %d, want 1 invalid 0 hits", st.WarmInvalid, st.WarmHits)
		}
		noWarm := cfg2
		noWarm.WarmDir = ""
		ref, err := NewScheduler(noWarm).Get(key2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats != ref.Stats {
			t.Error("seed-2 run with stale snapshot differs from cold seed-2 run")
		}
	})
}

// TestWarmTablesByteIdentical runs a whole experiment cold, then warm, and
// requires the rendered tables to match byte for byte while the warm pass
// replays every accelerated run it needs.
func TestWarmTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs fig11 twice")
	}
	cfg := warmTestConfig(t.TempDir())
	s1 := NewScheduler(cfg)
	res1, err := s1.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.WarmSaves == 0 {
		t.Fatalf("cold pass saved no snapshots: %+v", st)
	}

	s2 := NewScheduler(cfg)
	res2, err := s2.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.WarmHits == 0 || st.WarmMisses != 0 || st.WarmInvalid != 0 {
		t.Errorf("warm pass: hits %d misses %d invalid %d, want all accelerated runs replayed",
			st.WarmHits, st.WarmMisses, st.WarmInvalid)
	}
	if got, want := res2.StableRender(), res1.StableRender(); got != want {
		t.Errorf("warm table differs from cold:\n--- warm ---\n%s\n--- cold ---\n%s", got, want)
	}

	noWarm := cfg
	noWarm.WarmDir = ""
	res3, err := NewScheduler(noWarm).Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if res3.StableRender() != res1.StableRender() {
		t.Error("warm-store-enabled table differs from a store-free run")
	}
}

// TestFlushWarm: the drain-time sweep rewrites every completed accelerated
// run's snapshot, recovering from lost per-run saves.
func TestFlushWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates an accelerated run")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)
	s := NewScheduler(cfg)
	if _, err := s.Get(cfg.accelKey("ab-rand", core.Statistical, 0)); err != nil {
		t.Fatal(err)
	}
	store := pltstore.Open(dir)
	paths, err := store.List("")
	if err != nil || len(paths) != 1 {
		t.Fatalf("List = (%v, %v), want one snapshot", paths, err)
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	n, err := s.FlushWarm()
	if err != nil || n != 1 {
		t.Fatalf("FlushWarm = (%d, %v), want (1, nil)", n, err)
	}
	if paths, _ := store.List(""); len(paths) != 1 {
		t.Errorf("flush left %d snapshots, want 1", len(paths))
	}
	// A scheduler without a warm store is a no-op.
	if n, err := NewScheduler(Config{Scale: 0.1}).FlushWarm(); n != 0 || err != nil {
		t.Errorf("FlushWarm without store = (%d, %v), want (0, nil)", n, err)
	}
}

// TestWarmDirValidation rejects a warm dir that exists as a regular file.
func TestWarmDirValidation(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "not-a-dir")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := DefaultConfig()
	cfg.WarmDir = f.Name()
	if _, err := Run("fig7", cfg); err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Errorf("Run with file warm dir = %v, want not-a-directory error", err)
	}
}
