package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"fssim/internal/core"
	"fssim/internal/durable"
	"fssim/internal/pltstore"
)

// TestFlushWarmCtxBoundedByDeadline pins the bounded-drain contract: a run
// that never finishes cannot wedge the flush. Completed runs' snapshots are
// saved unconditionally, the in-flight one is skipped at the deadline, and
// the skip is reported rather than silently dropped.
func TestFlushWarmCtxBoundedByDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates an accelerated run")
	}
	dir := t.TempDir()
	cfg := warmTestConfig(dir)
	s := NewScheduler(cfg)
	if _, err := s.Get(cfg.accelKey("ab-rand", core.Statistical, 0)); err != nil {
		t.Fatal(err)
	}
	// Remove the per-run save so the flush has real work to do.
	store := pltstore.Open(dir)
	paths, err := store.List("")
	if err != nil || len(paths) != 1 {
		t.Fatalf("List = (%v, %v), want one snapshot", paths, err)
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	// A warm-eligible run that never completes: its done channel never
	// closes, the shape of a simulation wedged past every timeout.
	hung := cfg.accelKey("hung-run", core.Statistical, 0)
	s.mu.Lock()
	s.runs[hung] = &runEntry{done: make(chan struct{})}
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := s.FlushWarmCtx(ctx)
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("flush took %v with a hung run; the deadline did not bound it", elapsed)
	}
	if n != 1 {
		t.Errorf("flushed %d snapshots, want the 1 completed run", n)
	}
	if err == nil || !strings.Contains(err.Error(), "flush deadline") {
		t.Errorf("FlushWarmCtx error = %v, want a flush-deadline skip report", err)
	}
	if paths, _ := store.List(""); len(paths) != 1 {
		t.Errorf("completed run's snapshot not persisted: %d files", len(paths))
	}
}

// TestCrashExplorerFlushWarm drives the whole stack — scheduler, warm save,
// drain-time flush — over a crash-injecting filesystem and explores every
// crash point of the combined op log: after recovery the snapshot address
// holds the exact persisted bytes or nothing, and the store is never wedged.
func TestCrashExplorerFlushWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates an accelerated run")
	}
	cfs := durable.NewCrashFS()
	cfg := warmTestConfig("warm")
	cfg.warmFS = cfs
	s := NewScheduler(cfg)
	key := cfg.accelKey("ab-rand", core.Statistical, 0)
	if _, err := s.Get(key); err != nil {
		t.Fatal(err)
	}
	if n, err := s.FlushWarm(); err != nil || n != 1 {
		t.Fatalf("FlushWarm = (%d, %v), want (1, nil)", n, err)
	}
	learn := warmLearnHash(key)
	snap, err := pltstore.OpenFS("warm", cfs).Load(key.Bench, learn)
	if err != nil {
		t.Fatalf("final snapshot unloadable: %v", err)
	}
	want := pltstore.Encode(snap)

	n, err := cfs.Explore(0, "warm", t.TempDir(), func(p durable.CrashPoint, dir string) error {
		rs := pltstore.Open(dir)
		if _, err := rs.Recover(); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		got, err := os.ReadFile(rs.Path(key.Bench, learn))
		if err != nil {
			if os.IsNotExist(err) {
				return nil // crashed before publication: a clean cold start
			}
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("snapshot holds %d bytes matching neither absent nor the persisted state", len(got))
		}
		if _, err := rs.Load(key.Bench, learn); err != nil {
			return fmt.Errorf("snapshot survived recovery but fails load: %w", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d crash states", n)
	if n < 10 {
		t.Fatalf("only %d crash states explored; explorer is not exhaustive", n)
	}
}
