package experiments

import (
	"fmt"
	"time"

	"fssim/internal/cache"
	"fssim/internal/core"
	"fssim/internal/cpu"
	"fssim/internal/isa"
	"fssim/internal/memsys"
	"fssim/internal/stats"
	"fssim/internal/workload"
)

// ModeCosts holds the measured host cost per simulated instruction for each
// simulation detail level, mirroring the paper's Table 1 methodology: the
// slowdown of each mode relative to the fastest (in-order, no caches), plus
// the pure-emulation mode used to fast-forward prediction periods.
type ModeCosts struct {
	Emulation      float64 // ns per instruction
	InorderNoCache float64
	InorderCache   float64
	OOONoCache     float64
	OOOCache       float64
}

// measureModeCosts times a representative synthetic instruction stream
// through each backend. The stream mixes ALU work, strided and random loads
// and stores over a 4MB region, and loop branches — enough to exercise the
// cache and predictor paths that dominate detailed-mode cost.
func measureModeCosts(insts int) ModeCosts {
	stream := make([]isa.Inst, 0, 4096)
	base := uint64(0x1000_0000)
	pc := uint64(0x40_0000)
	rng := uint64(88172645463325252)
	for i := 0; len(stream) < cap(stream); i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		switch i % 8 {
		case 0:
			stream = append(stream, isa.Inst{Op: isa.ALU, PC: pc, Dep: 4})
		case 1:
			stream = append(stream, isa.Inst{Op: isa.LOAD, PC: pc + 4,
				Addr: base + uint64(i%65536)*64, Size: 8, Dep: 1})
		case 2, 3:
			stream = append(stream, isa.Inst{Op: isa.ALU, PC: pc + 8, Dep: 1})
		case 4:
			stream = append(stream, isa.Inst{Op: isa.LOAD, PC: pc + 12,
				Addr: base + rng%(4<<20), Size: 8})
		case 5:
			stream = append(stream, isa.Inst{Op: isa.STORE, PC: pc + 16,
				Addr: base + uint64(i%32768)*64, Size: 8})
		case 6:
			stream = append(stream, isa.Inst{Op: isa.MUL, PC: pc + 20})
		default:
			stream = append(stream, isa.Inst{Op: isa.BRANCH, PC: pc + 24,
				Taken: i%3 != 0, Target: pc})
		}
	}
	timeCore := func(mk func() cpu.Core) float64 {
		c := mk()
		start := time.Now()
		n := 0
		for n < insts {
			for j := range stream {
				c.Exec(&stream[j], cache.OwnerOS)
				n++
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	var mc ModeCosts
	ccfg := cpu.DefaultConfig()
	mcfg := memsys.DefaultConfig()
	mc.InorderNoCache = timeCore(func() cpu.Core { return cpu.NewInOrder(ccfg, nil) })
	mc.InorderCache = timeCore(func() cpu.Core { return cpu.NewInOrder(ccfg, memsys.New(mcfg)) })
	mc.OOONoCache = timeCore(func() cpu.Core { return cpu.NewOOO(ccfg, nil) })
	mc.OOOCache = timeCore(func() cpu.Core { return cpu.NewOOO(ccfg, memsys.New(mcfg)) })

	// Emulation mode: the per-instruction cost of the fast-forward path is a
	// counter bump; time the same dispatch loop against a counting sink.
	start := time.Now()
	n := 0
	var sink uint64
	for n < insts {
		for j := range stream {
			sink += uint64(stream[j].Op)
			n++
		}
	}
	_ = sink
	mc.Emulation = float64(time.Since(start).Nanoseconds()) / float64(n)
	if mc.Emulation <= 0 {
		mc.Emulation = 0.1
	}
	return mc
}

// Table1 regenerates the paper's Table 1: the slowdown ratios of the
// simulation modes relative to the fastest mode (in-order without caches).
// The paper measured Simics at 3x / 64x / 133x; our substrate's ratios
// differ (the timestamp-based OOO model is far cheaper than an event-driven
// one), and the measured values feed Table 2's Eq-10 speedup estimates.
// The measurement is shared with Table 2 through the scheduler (taken once,
// with the worker pool drained so concurrent simulations cannot skew it)
// and can be pinned via Config.ModeCosts for reproducible output.
func Table1(cfg Config) (*Result, error) {
	mc := cfg.sched.modeCosts()
	t := NewTable("mode", "ns/inst", "slowdown vs inorder-nocache")
	rows := []struct {
		name string
		v    float64
	}{
		{"emulation (fast-forward)", mc.Emulation},
		{"inorder-nocache", mc.InorderNoCache},
		{"inorder-cache", mc.InorderCache},
		{"ooo-nocache", mc.OOONoCache},
		{"ooo-cache", mc.OOOCache},
	}
	for _, r := range rows {
		t.AddRowf(r.name, f2(r.v), f1(r.v/mc.InorderNoCache)+"x")
	}
	notes := []string{
		fmt.Sprintf("detailed(ooo-cache)/emulation ratio R = %.0fx (paper assumes 133x for Eq 10)",
			mc.OOOCache/mc.Emulation),
	}
	if cfg.ModeCosts != nil {
		notes = append(notes, "mode costs pinned via Config.ModeCosts (not measured on this host)")
	}
	return &Result{Table: t, Notes: notes}, nil
}

// SpeedupEq10 computes the paper's Eq 10: with N total instructions, X of
// them fast-forwarded, and a detailed/emulation cost ratio R,
// speedup = N / (X/R + (N-X)).
func SpeedupEq10(n, x uint64, r float64) float64 {
	if n == 0 || r <= 0 {
		return 1
	}
	den := float64(x)/r + float64(n-x)
	if den <= 0 {
		return 1
	}
	return float64(n) / den
}

// tab2Needs declares tab2's runs: a Statistical accelerated run per
// OS-intensive benchmark (shared with fig8/fig9's cache entries).
func tab2Needs(cfg Config) []RunKey {
	var keys []RunKey
	for _, name := range workload.OSIntensiveNames() {
		keys = append(keys, cfg.accelKey(name, core.Statistical, 0))
	}
	return keys
}

// Table2 regenerates the paper's Table 2: estimated simulation speedups per
// benchmark under the Statistical strategy, from instruction coverage and
// the mode-cost ratio — with the paper's R=133 and with our measured R.
// The paper reports 2.8x-15.6x with a 4.9x geometric mean.
func Table2(cfg Config) (*Result, error) {
	mc := cfg.sched.modeCosts()
	rMeasured := mc.OOOCache / mc.Emulation
	const rPaper = 133
	t := NewTable("benchmark", "insts fast-forwarded", "coverage",
		"speedup (R=133)", fmt.Sprintf("speedup (R=%.0f measured)", rMeasured))
	var sp133, spM []float64
	for _, name := range workload.OSIntensiveNames() {
		res, acc, err := accelRun(cfg, name, core.Statistical, 0)
		if err != nil {
			return nil, err
		}
		st := res.Stats
		s1 := SpeedupEq10(st.Insts, st.EmuInsts, rPaper)
		s2 := SpeedupEq10(st.Insts, st.EmuInsts, rMeasured)
		sp133 = append(sp133, s1)
		spM = append(spM, s2)
		t.AddRowf(name, pct(float64(st.EmuInsts)/float64(st.Insts)),
			pct(acc.Summary().Coverage()), f1(s1)+"x", f1(s2)+"x")
	}
	t.AddRowf("gmean", "", "", f1(stats.GeoMean(sp133))+"x", f1(stats.GeoMean(spM))+"x")
	return &Result{Table: t, Notes: []string{
		"Eq 10: speedup = N / (X/R + (N-X)); paper reports 2.8x-15.6x, gmean 4.9x at R=133.",
	}}, nil
}
