package stats

import (
	"math"
	"testing"
)

func momentsOf(xs ...float64) Moments {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Moments()
}

func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// TestMomentsMergeMatchesDirectAccumulation is the parallel-axis contract:
// merging the moments of two disjoint sample halves must equal accumulating
// the concatenated sample directly.
func TestMomentsMergeMatchesDirectAccumulation(t *testing.T) {
	left := []float64{3, 1, 4, 1, 5, 9, 2.5}
	right := []float64{-6, 5, 3.5, 8.25}
	got := momentsOf(left...).Merge(momentsOf(right...))
	want := momentsOf(append(append([]float64{}, left...), right...)...)
	if got.N != want.N || !closeTo(got.Mean, want.Mean) || !closeTo(got.M2, want.M2) {
		t.Errorf("merged %+v, direct accumulation %+v", got, want)
	}
	if !closeTo(got.Var(), want.Var()) {
		t.Errorf("merged variance %g, direct %g", got.Var(), want.Var())
	}
}

// TestMomentsMergeEdgeCases pins the N=0 and N=1 behavior: empty sides are
// identities, and two single observations merge into the exact two-sample
// moments (mean of the pair, M2 = d²/2).
func TestMomentsMergeEdgeCases(t *testing.T) {
	var empty Moments
	one := momentsOf(7)

	if got := empty.Merge(empty); got != (Moments{}) {
		t.Errorf("empty.Merge(empty) = %+v, want zero", got)
	}
	if got := one.Merge(empty); got != one {
		t.Errorf("one.Merge(empty) = %+v, want %+v", got, one)
	}
	if got := empty.Merge(one); got != one {
		t.Errorf("empty.Merge(one) = %+v, want %+v", got, one)
	}

	got := momentsOf(2).Merge(momentsOf(10))
	want := momentsOf(2, 10)
	if got.N != 2 || !closeTo(got.Mean, 6) || !closeTo(got.M2, want.M2) {
		t.Errorf("singletons merged to %+v, want %+v", got, want)
	}
	if v := got.Var(); !closeTo(v, 32) { // ((2-6)² + (10-6)²) / (2-1)
		t.Errorf("two-sample variance %g, want 32", v)
	}

	// N=1 accumulators carry no variance; merging must not invent any beyond
	// the between-sample term.
	if momentsOf(5).M2 != 0 {
		t.Error("single observation must have M2 == 0")
	}
}

// TestMomentsWelfordRoundTrip asserts the exported-moments round trip is
// exact, including the Merge equivalence with Welford.Merge.
func TestMomentsWelfordRoundTrip(t *testing.T) {
	var a, b Welford
	for i := 0; i < 17; i++ {
		a.Add(float64(i) * 1.25)
	}
	for i := 0; i < 5; i++ {
		b.Add(float64(100 - 7*i))
	}

	ra := WelfordFromMoments(a.Moments())
	if ra != a {
		t.Errorf("round trip changed the accumulator: %+v vs %+v", ra, a)
	}

	merged := a.Moments().Merge(b.Moments())
	wm := a // copy
	wm.Merge(b)
	if got := wm.Moments(); got.N != merged.N || !closeTo(got.Mean, merged.Mean) || !closeTo(got.M2, merged.M2) {
		t.Errorf("Moments.Merge %+v disagrees with Welford.Merge %+v", merged, got)
	}
}

// TestMomentsVar pins the guard: fewer than two observations report zero
// variance rather than a division by zero.
func TestMomentsVar(t *testing.T) {
	if v := (Moments{}).Var(); v != 0 {
		t.Errorf("empty variance %g, want 0", v)
	}
	if v := momentsOf(42).Var(); v != 0 {
		t.Errorf("single-sample variance %g, want 0", v)
	}
}

// TestMomentsScaleMatchesDirectAccumulation checks Scale against the ground
// truth: scaling the moments must equal accumulating the scaled sample.
func TestMomentsScaleMatchesDirectAccumulation(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2.5, -6}
	for _, s := range []float64{0.25, 1, 2, 7.5} {
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = s * x
		}
		got := momentsOf(xs...).Scale(s)
		want := momentsOf(scaled...)
		if got.N != want.N || !closeTo(got.Mean, want.Mean) || !closeTo(got.M2, want.M2) {
			t.Errorf("scale %g: got %+v, direct accumulation %+v", s, got, want)
		}
	}
}

// TestMomentsScaleMergeCommute is the algebraic contract the transfer path
// depends on: rescaling a donor's statistics and then folding in (already
// rescaled) fresh observations must equal folding first and scaling the
// union — scale-then-merge and merge-then-scale agree.
func TestMomentsScaleMergeCommute(t *testing.T) {
	a := momentsOf(3, 1, 4, 1, 5)
	b := momentsOf(9, 2.5, -6, 5)
	for _, s := range []float64{0.1, 0.5, 2, 13} {
		stm := a.Scale(s).Merge(b.Scale(s))
		mts := a.Merge(b).Scale(s)
		if stm.N != mts.N || !closeTo(stm.Mean, mts.Mean) || !closeTo(stm.M2, mts.M2) {
			t.Errorf("scale %g: scale-then-merge %+v != merge-then-scale %+v", s, stm, mts)
		}
	}
	// Edge cases: empty and singleton sides keep the identity exactly.
	var empty Moments
	if got := empty.Scale(3); got != empty {
		t.Errorf("empty.Scale = %+v, want zero", got)
	}
	one := momentsOf(7)
	if got := one.Scale(2); got.N != 1 || !closeTo(got.Mean, 14) || got.M2 != 0 {
		t.Errorf("singleton scaled to %+v, want N=1 mean=14 M2=0", got)
	}
}
