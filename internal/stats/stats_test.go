package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.CV() != 0 {
		t.Fatal("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Sample std of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := w.Std(); math.Abs(got-want) > 1e-12 {
		t.Errorf("std = %v, want %v", got, want)
	}
	if got := w.CV(); math.Abs(got-want/5) > 1e-12 {
		t.Errorf("cv = %v, want %v", got, want/5)
	}
}

// TestWelfordMatchesNaive property-checks the online algorithm against the
// two-pass formula on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 2
		xs := make([]float64, m)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(m)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(m-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWelfordMerge property-checks that merging two accumulators equals
// accumulating the concatenation.
func TestWelfordMerge(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, all := Welford{}, Welford{}, Welford{}
		for i := 0; i < int(na%40)+1; i++ {
			x := rng.Float64() * 1000
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb%40)+1; i++ {
			x := rng.Float64() * 1000
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtLeastOnce(t *testing.T) {
	cases := []struct {
		p    float64
		n    int
		want float64
	}{
		{0.5, 1, 0.5},
		{0.5, 2, 0.75},
		{0, 100, 0},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := AtLeastOnce(c.p, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AtLeastOnce(%v,%d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

// TestBinomialSumsToAtLeastOnce verifies paper Eq 2: summing the binomial
// pmf over k >= 1 equals 1-(1-p)^N.
func TestBinomialSumsToAtLeastOnce(t *testing.T) {
	f := func(pRaw uint16, nRaw uint8) bool {
		p := float64(pRaw%999+1) / 1000
		n := int(nRaw%60) + 1
		var sum float64
		for k := 1; k <= n; k++ {
			sum += Binomial(n, k, p)
		}
		return math.Abs(sum-AtLeastOnce(p, n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFSums(t *testing.T) {
	for _, n := range []int{1, 5, 17, 40} {
		for _, p := range []float64{0.01, 0.3, 0.97} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += Binomial(n, k, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("pmf(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

// TestLearningWindowPaperAnchors checks the paper's Fig 7 anchor points: at
// p_min = 3%, ~100 trials at 95% confidence and a little over 150 at 99%.
func TestLearningWindowPaperAnchors(t *testing.T) {
	if n := LearningWindow(0.03, 0.95); n < 95 || n > 105 {
		t.Errorf("window(0.03, 0.95) = %d, want ~100", n)
	}
	if n := LearningWindow(0.03, 0.99); n < 148 || n > 160 {
		t.Errorf("window(0.03, 0.99) = %d, want a little over 150", n)
	}
	if n := LearningWindow(0.2, 0.95); n > 20 {
		t.Errorf("window(0.2, 0.95) = %d, want small", n)
	}
}

// TestLearningWindowSufficient property-checks the defining inequality:
// the returned N satisfies the confidence bound and N-1 does not.
func TestLearningWindowSufficient(t *testing.T) {
	f := func(pRaw, dRaw uint16) bool {
		p := float64(pRaw%195+5) / 1000 // 0.005 .. 0.199
		doc := float64(dRaw%98+1) / 100 // 0.01 .. 0.98
		n := LearningWindow(p, doc)
		if AtLeastOnce(p, n) < doc-1e-12 {
			return false
		}
		return n == 1 || AtLeastOnce(p, n-1) < doc+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLearningWindowMonotone(t *testing.T) {
	prev := 1 << 30
	for p := 0.005; p <= 0.2; p += 0.005 {
		n := LearningWindow(p, 0.95)
		if n > prev {
			t.Errorf("window not monotonically decreasing at p=%v: %d > %d", p, n, prev)
		}
		prev = n
	}
}

func TestStudentT(t *testing.T) {
	if v := TOneSided95(1); math.Abs(v-6.314) > 1e-3 {
		t.Errorf("t(1) = %v", v)
	}
	if v := TOneSided95(10); math.Abs(v-1.812) > 1e-3 {
		t.Errorf("t(10) = %v", v)
	}
	if v := TOneSided95(1000); math.Abs(v-1.645) > 1e-3 {
		t.Errorf("t(inf) = %v", v)
	}
	// Monotonically decreasing in df.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TOneSided95(df)
		if v > prev {
			t.Errorf("t table not monotone at df=%d", df)
		}
		prev = v
	}
}

func TestTUpperBound95(t *testing.T) {
	if !math.IsInf(TUpperBound95(0.5, 0.1, 1), 1) {
		t.Error("single sample should give an unbounded estimate")
	}
	// Zero variance: bound equals the mean.
	if b := TUpperBound95(0.02, 0, 5); math.Abs(b-0.02) > 1e-12 {
		t.Errorf("bound = %v, want 0.02", b)
	}
	// More samples tighten the bound.
	loose := TUpperBound95(0.02, 0.01, 4)
	tight := TUpperBound95(0.02, 0.01, 25)
	if tight >= loose {
		t.Errorf("bound should tighten with samples: %v vs %v", tight, loose)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := GeoMean([]float64{-1, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean should skip non-positive entries, got %v", g)
	}
}

func TestHist2D(t *testing.T) {
	h := NewHist2D(1000, 4000)
	// Three points in one bin, one in another.
	h.Add(1500, 5000)
	h.Add(1600, 4100)
	h.Add(1900, 7900)
	h.Add(9500, 100)
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.NonEmpty() != 2 {
		t.Fatalf("non-empty = %d, want 2", h.NonEmpty())
	}
	cells := h.Cells()
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Count != 3 || cells[0].X != 1500 || cells[0].Y != 6000 {
		t.Errorf("bin 0 = %+v", cells[0])
	}
}
