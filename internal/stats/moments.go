package stats

import "math"

// Moments is the exported, serialization-friendly form of a Welford
// accumulator: observation count, sample mean, and the sum of squared
// deviations from the mean (M2). It is the on-disk representation the PLT
// snapshot format stores for every cluster statistic, and the algebra the
// warm-start path uses to fold a reloaded cluster's history with newly
// observed members without losing variance.
type Moments struct {
	N    int64
	Mean float64
	M2   float64
}

// Merge returns the moments of the union of the two underlying samples,
// using the parallel-axis combination of Chan et al. — the same update
// Welford.Merge applies in place. Merging with an empty side returns the
// other side unchanged, so N=0 and N=1 accumulators (whose M2 is zero)
// combine exactly: variance information is neither invented nor lost.
func (m Moments) Merge(o Moments) Moments {
	if o.N == 0 {
		return m
	}
	if m.N == 0 {
		return o
	}
	n := m.N + o.N
	d := o.Mean - m.Mean
	return Moments{
		N:    n,
		Mean: m.Mean + d*float64(o.N)/float64(n),
		M2:   m.M2 + o.M2 + d*d*float64(m.N)*float64(o.N)/float64(n),
	}
}

// Scale returns the moments of the sample with every observation multiplied
// by s: the mean scales linearly and M2 quadratically, while N is unchanged —
// scaling does not add or remove information. Because an affine map of the
// underlying observations commutes with the Chan et al. union, Scale
// distributes over Merge: a.Scale(s).Merge(b.Scale(s)) == a.Merge(b).Scale(s).
// The cross-config transfer path relies on this to rescale a donor cluster's
// statistics before folding in fresh observations from the recipient config.
func (m Moments) Scale(s float64) Moments {
	return Moments{N: m.N, Mean: s * m.Mean, M2: s * s * m.M2}
}

// Var returns the unbiased sample variance (0 with fewer than 2 observations),
// mirroring Welford.Var.
func (m Moments) Var() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N-1)
}

// CI95Half returns the half-width of the two-sided 95% confidence interval
// on the mean: t_(N-1, 0.025) * sqrt(Var/N). It is always well-defined —
// never NaN or Inf: a single observation or a zero-variance stratum has no
// measurable spread, so its half-width is 0 and the caller's error bar
// degrades gracefully instead of poisoning a whole table. Callers that need
// to distinguish "no spread" from "no information" check N themselves.
func (m Moments) CI95Half() float64 {
	if m.N < 2 {
		return 0
	}
	v := m.Var()
	if v <= 0 {
		return 0
	}
	return TTwoSided95(int(m.N-1)) * math.Sqrt(v/float64(m.N))
}

// Moments returns the accumulator's exported moments — the serializable view
// of its (unexported) running state.
func (w *Welford) Moments() Moments { return Moments{N: w.n, Mean: w.mean, M2: w.m2} }

// WelfordFromMoments reconstructs an accumulator from exported moments; the
// round trip w.Moments() -> WelfordFromMoments is exact.
func WelfordFromMoments(m Moments) Welford { return Welford{n: m.N, mean: m.Mean, m2: m.M2} }
