package stats

import (
	"math"
	"testing"
)

// TestCI95HalfEdgeCases pins the confidence-interval contract the sampling
// estimator leans on: CI95Half is well-defined — never NaN or Inf — for every
// degenerate accumulator a stratum can produce (empty, single observation,
// zero variance), and positive exactly when there is measurable spread over
// at least two observations.
func TestCI95HalfEdgeCases(t *testing.T) {
	finite := func(name string, m Moments) float64 {
		t.Helper()
		h := m.CI95Half()
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("%s: CI95Half = %v, want finite", name, h)
		}
		if h < 0 {
			t.Fatalf("%s: CI95Half = %v, want >= 0", name, h)
		}
		return h
	}

	if h := finite("empty", Moments{}); h != 0 {
		t.Errorf("empty moments: CI95Half = %v, want 0", h)
	}
	var one Welford
	one.Add(42.5)
	if h := finite("single", one.Moments()); h != 0 {
		t.Errorf("single observation: CI95Half = %v, want 0", h)
	}
	var flat Welford
	for i := 0; i < 10; i++ {
		flat.Add(3.25)
	}
	if h := finite("zero-variance", flat.Moments()); h != 0 {
		t.Errorf("zero-variance stratum: CI95Half = %v, want 0", h)
	}
	var spread Welford
	for _, v := range []float64{1, 2, 3, 4, 5} {
		spread.Add(v)
	}
	if h := finite("spread", spread.Moments()); h <= 0 {
		t.Errorf("spread sample: CI95Half = %v, want > 0", h)
	}
	// Negative M2 can only arise from corrupt deserialized state; Var clamps
	// at the N<2 guard but not above it, so verify the <=0 variance guard.
	if h := finite("corrupt", Moments{N: 5, Mean: 1, M2: -4}); h != 0 {
		t.Errorf("negative-M2 moments: CI95Half = %v, want 0", h)
	}
}

// TestMergeEmptyPreservesCI verifies that merging with empty moments is the
// identity in both directions — including for the derived CI — and that a
// merge of two empties stays empty rather than inventing spread.
func TestMergeEmptyPreservesCI(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 6, 8} {
		w.Add(v)
	}
	m := w.Moments()
	for name, got := range map[string]Moments{
		"m.Merge(empty)": m.Merge(Moments{}),
		"empty.Merge(m)": (Moments{}).Merge(m),
	} {
		if got != m {
			t.Errorf("%s = %+v, want %+v", name, got, m)
		}
		if got.CI95Half() != m.CI95Half() {
			t.Errorf("%s: CI changed: %v vs %v", name, got.CI95Half(), m.CI95Half())
		}
	}
	both := (Moments{}).Merge(Moments{})
	if both.N != 0 || both.CI95Half() != 0 {
		t.Errorf("empty.Merge(empty) = %+v (CI %v), want zero", both, both.CI95Half())
	}
	// Merging two single-observation accumulators must produce real variance:
	// N=1 sides carry M2=0, and the parallel-axis term supplies the spread.
	var a, b Welford
	a.Add(1)
	b.Add(3)
	ab := a.Moments().Merge(b.Moments())
	if ab.N != 2 || ab.Mean != 2 {
		t.Fatalf("merge of singletons: %+v, want N=2 Mean=2", ab)
	}
	if v := ab.Var(); v != 2 {
		t.Errorf("merge of singletons: Var = %v, want 2", v)
	}
	if h := ab.CI95Half(); math.IsNaN(h) || h <= 0 {
		t.Errorf("merge of singletons: CI95Half = %v, want positive finite", h)
	}
}
