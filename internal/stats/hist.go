package stats

import "sort"

// Hist2D is a sparse two-dimensional histogram over fixed-size bins. The
// characterization study uses it to build the paper's Fig 5 bubble plots
// (instruction-count bins x cycle bins, bubble area = occurrences).
type Hist2D struct {
	XBin, YBin float64 // bin widths; must be > 0
	cells      map[[2]int64]int64
}

// NewHist2D returns a histogram with the given bin widths.
func NewHist2D(xbin, ybin float64) *Hist2D {
	return &Hist2D{XBin: xbin, YBin: ybin, cells: make(map[[2]int64]int64)}
}

// Add records one (x, y) observation.
func (h *Hist2D) Add(x, y float64) {
	key := [2]int64{int64(x / h.XBin), int64(y / h.YBin)}
	h.cells[key]++
}

// Cell is one non-empty histogram bin: the bin's center coordinates and the
// number of observations that fell into it.
type Cell struct {
	X, Y  float64
	Count int64
}

// Cells returns all non-empty bins ordered by (X, Y).
func (h *Hist2D) Cells() []Cell {
	out := make([]Cell, 0, len(h.cells))
	for k, c := range h.cells {
		out = append(out, Cell{
			X:     (float64(k[0]) + 0.5) * h.XBin,
			Y:     (float64(k[1]) + 0.5) * h.YBin,
			Count: c,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Total returns the number of observations recorded.
func (h *Hist2D) Total() int64 {
	var t int64
	for _, c := range h.cells {
		t += c
	}
	return t
}

// NonEmpty returns the number of occupied bins — a proxy for the number of
// distinct behavior points (the paper's Fig 5 observation is that this stays
// small even for thousands of invocations).
func (h *Hist2D) NonEmpty() int { return len(h.cells) }
