package stats

import (
	"math"
	"math/bits"
	"sort"
)

// Hist2D is a sparse two-dimensional histogram over fixed-size bins. The
// characterization study uses it to build the paper's Fig 5 bubble plots
// (instruction-count bins x cycle bins, bubble area = occurrences).
type Hist2D struct {
	XBin, YBin float64 // bin widths; must be > 0
	cells      map[[2]int64]int64
}

// NewHist2D returns a histogram with the given bin widths.
func NewHist2D(xbin, ybin float64) *Hist2D {
	return &Hist2D{XBin: xbin, YBin: ybin, cells: make(map[[2]int64]int64)}
}

// Add records one (x, y) observation.
func (h *Hist2D) Add(x, y float64) {
	key := [2]int64{int64(x / h.XBin), int64(y / h.YBin)}
	h.cells[key]++
}

// Cell is one non-empty histogram bin: the bin's center coordinates and the
// number of observations that fell into it.
type Cell struct {
	X, Y  float64
	Count int64
}

// Cells returns all non-empty bins ordered by (X, Y).
func (h *Hist2D) Cells() []Cell {
	out := make([]Cell, 0, len(h.cells))
	for k, c := range h.cells {
		out = append(out, Cell{
			X:     (float64(k[0]) + 0.5) * h.XBin,
			Y:     (float64(k[1]) + 0.5) * h.YBin,
			Count: c,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// Total returns the number of observations recorded.
func (h *Hist2D) Total() int64 {
	var t int64
	for _, c := range h.cells {
		t += c
	}
	return t
}

// NonEmpty returns the number of occupied bins — a proxy for the number of
// distinct behavior points (the paper's Fig 5 observation is that this stays
// small even for thousands of invocations).
func (h *Hist2D) NonEmpty() int { return len(h.cells) }

// logHistBuckets is the number of power-of-two buckets a LogHist keeps:
// bucket 0 covers [0, 1), bucket i covers [2^(i-1), 2^i), so the top regular
// bucket ends at 2^63. Anything at or beyond that lands in the overflow
// bucket; negative (or NaN) observations land in the out-of-range bucket.
const logHistBuckets = 64

// LogHist is a fixed-size power-of-two-bucketed histogram over non-negative
// values, with running mean/variance via Welford and explicit out-of-range
// and overflow buckets. The observability layer uses it for metrics whose
// values span orders of magnitude (interval cycle counts, queue depths)
// where uniform bins would be useless. The zero value is ready to use.
type LogHist struct {
	w        Welford
	buckets  [logHistBuckets]int64
	oob      int64 // negative or NaN observations
	overflow int64 // observations >= 2^63
	min, max float64
}

// Add records one observation. Negative and NaN values are counted in the
// out-of-range bucket and excluded from the moments; values >= 2^63 are
// counted in the overflow bucket but still contribute to the moments.
func (h *LogHist) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		h.oob++
		return
	}
	if h.w.N() == 0 || v < h.min {
		h.min = v
	}
	if h.w.N() == 0 || v > h.max {
		h.max = v
	}
	h.w.Add(v)
	if v >= float64(uint64(1)<<63) {
		h.overflow++
		return
	}
	h.buckets[bits.Len64(uint64(v))]++
}

// N returns the number of in-range observations (overflow included,
// out-of-range excluded).
func (h *LogHist) N() int64 { return h.w.N() }

// Mean returns the mean of in-range observations.
func (h *LogHist) Mean() float64 { return h.w.Mean() }

// Std returns the sample standard deviation of in-range observations.
func (h *LogHist) Std() float64 { return h.w.Std() }

// Min returns the smallest in-range observation (0 if empty).
func (h *LogHist) Min() float64 { return h.min }

// Max returns the largest in-range observation (0 if empty).
func (h *LogHist) Max() float64 { return h.max }

// OutOfRange returns the count of negative/NaN observations.
func (h *LogHist) OutOfRange() int64 { return h.oob }

// Overflow returns the count of observations >= 2^63.
func (h *LogHist) Overflow() int64 { return h.overflow }

// LogBucket is one non-empty LogHist bucket: [Lo, Hi) and its count.
type LogBucket struct {
	Lo, Hi float64
	N      int64
}

// Buckets returns the non-empty regular buckets in ascending order.
func (h *LogHist) Buckets() []LogBucket {
	var out []LogBucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(uint64(1) << (i - 1))
		}
		out = append(out, LogBucket{Lo: lo, Hi: float64(uint64(1) << i), N: n})
	}
	return out
}
