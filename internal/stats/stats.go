// Package stats provides the statistical machinery the acceleration scheme is
// built on: running mean/variance accumulators and coefficient of variation
// (used to evaluate cluster uniformity, paper §4.2/Fig 6), the binomial
// learning-window solver (paper §4.3/Fig 7), and the one-sided Student-t
// bound used by the Statistical re-learning strategy (paper §4.4, Eq 4–8).
package stats

import "math"

// Welford accumulates a running mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CV returns the coefficient of variation: standard deviation divided by the
// mean. It is the cluster-uniformity metric of paper §4.2. A zero mean yields
// CV 0 to keep aggregate averages well defined.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return math.Abs(w.Std() / w.mean)
}

// Merge combines another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// AtLeastOnce returns the probability that an event with per-trial probability
// p occurs at least once in n independent trials: 1 - (1-p)^n. This is the
// closed form of paper Eq (2)/(3) summed over k >= 1.
func AtLeastOnce(p float64, n int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(n))
}

// Binomial returns the binomial probability P(X = k) for n trials with
// per-trial probability p (paper Eq 1). It works in log space to stay finite
// for the window sizes the paper sweeps.
func Binomial(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// LearningWindow returns the smallest learning window N such that a behavior
// cluster with probability of occurrence >= pmin appears at least once within
// the window with confidence >= doc (paper §4.3, Eq 3; Fig 7 plots this
// function). With pmin = 0.03 it yields ~99 at 95% confidence and ~152 at 99%.
func LearningWindow(pmin, doc float64) int {
	if pmin <= 0 || pmin >= 1 || doc <= 0 {
		return 1
	}
	if doc >= 1 {
		return math.MaxInt32
	}
	n := math.Log(1-doc) / math.Log(1-pmin)
	return int(math.Ceil(n))
}

// tOneSided95 tabulates the one-sided 95% Student-t critical value
// t_(df, 0.05) for small degrees of freedom; TOneSided95 interpolates and
// falls back to the asymptotic normal value 1.645 for large df. These are the
// values paper Eq (8) plugs in to upper-bound an outlier cluster's true
// probability of occurrence.
var tOneSided95 = []float64{
	// df = 1 .. 30
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// TOneSided95 returns the one-sided 95% Student-t critical value for the
// given degrees of freedom.
func TOneSided95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(tOneSided95):
		return tOneSided95[df-1]
	case df <= 40:
		return 1.684
	case df <= 60:
		return 1.671
	case df <= 120:
		return 1.658
	default:
		return 1.645
	}
}

// tTwoSided95 tabulates the two-sided 95% Student-t critical value
// t_(df, 0.025) for small degrees of freedom; TTwoSided95 falls back to the
// asymptotic normal value 1.960 for large df. The stratified-sampling
// estimator multiplies this by a stratum's standard error to produce the
// ± half-width reported next to every extrapolated figure.
var tTwoSided95 = []float64{
	// df = 1 .. 30
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TTwoSided95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TTwoSided95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(tTwoSided95):
		return tTwoSided95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// TUpperBound95 returns the one-sided 95% upper confidence bound
// mean + t_(m-1,0.05) * s / sqrt(m) for m observations with sample mean mean
// and sample standard deviation s (paper Eq 8). With fewer than 2 samples the
// bound is +Inf: no statistically meaningful statement can be made.
func TUpperBound95(mean, s float64, m int) float64 {
	if m < 2 {
		return math.Inf(1)
	}
	return mean + TOneSided95(m-1)*s/math.Sqrt(float64(m))
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
