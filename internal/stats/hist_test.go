package stats

import (
	"math"
	"testing"
)

// TestHist2DEmpty covers the zero-observation histogram: no cells, zero
// total, and Cells must return an empty (not nil-panicking) slice.
func TestHist2DEmpty(t *testing.T) {
	h := NewHist2D(1000, 4000)
	if h.Total() != 0 {
		t.Errorf("empty Total = %d", h.Total())
	}
	if h.NonEmpty() != 0 {
		t.Errorf("empty NonEmpty = %d", h.NonEmpty())
	}
	if cells := h.Cells(); len(cells) != 0 {
		t.Errorf("empty Cells = %v", cells)
	}
}

// TestHist2DSingleSample pins the bin-center math for one observation.
func TestHist2DSingleSample(t *testing.T) {
	h := NewHist2D(1000, 4000)
	h.Add(1500, 9000) // bins (1, 2) -> centers (1500, 10000)
	if h.Total() != 1 || h.NonEmpty() != 1 {
		t.Fatalf("Total %d NonEmpty %d, want 1/1", h.Total(), h.NonEmpty())
	}
	c := h.Cells()[0]
	if c.X != 1500 || c.Y != 10000 || c.Count != 1 {
		t.Errorf("cell = %+v, want X=1500 Y=10000 Count=1", c)
	}
}

// TestHist2DBinningAndOrder covers multi-sample aggregation and the sorted
// Cells contract, including the boundary sample that opens a new bin.
func TestHist2DBinningAndOrder(t *testing.T) {
	h := NewHist2D(10, 10)
	h.Add(1, 1)
	h.Add(9.99, 9.99) // same bin as (1,1)
	h.Add(10, 0)      // x boundary opens bin 1
	h.Add(0, 10)      // y boundary opens bin 1
	if h.Total() != 4 || h.NonEmpty() != 3 {
		t.Fatalf("Total %d NonEmpty %d, want 4/3", h.Total(), h.NonEmpty())
	}
	cells := h.Cells()
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
			t.Errorf("cells not (X,Y)-sorted: %v", cells)
		}
	}
	if cells[0].Count != 2 {
		t.Errorf("shared bin count = %d, want 2: %v", cells[0].Count, cells)
	}
}

func TestLogHistEmpty(t *testing.T) {
	var h LogHist // zero value must be usable
	if h.N() != 0 || h.Mean() != 0 || h.Std() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty LogHist has non-zero moments")
	}
	if h.OutOfRange() != 0 || h.Overflow() != 0 {
		t.Error("empty LogHist has bucket counts")
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Errorf("empty Buckets = %v", b)
	}
}

func TestLogHistSingleSample(t *testing.T) {
	var h LogHist
	h.Add(6) // [4, 8) bucket
	if h.N() != 1 || h.Mean() != 6 || h.Min() != 6 || h.Max() != 6 {
		t.Errorf("single-sample moments wrong: N=%d mean=%g min=%g max=%g",
			h.N(), h.Mean(), h.Min(), h.Max())
	}
	if h.Std() != 0 {
		t.Errorf("single-sample Std = %g, want 0", h.Std())
	}
	b := h.Buckets()
	if len(b) != 1 || b[0].Lo != 4 || b[0].Hi != 8 || b[0].N != 1 {
		t.Errorf("buckets = %v, want one [4,8) bucket", b)
	}
}

// TestLogHistOutOfRangeAndOverflow covers the two special buckets: negative
// and NaN observations land out-of-range (excluded from moments); values at
// or beyond 2^63 land in the overflow bucket (included in moments).
func TestLogHistOutOfRangeAndOverflow(t *testing.T) {
	var h LogHist
	h.Add(-1)
	h.Add(math.NaN())
	if h.OutOfRange() != 2 || h.N() != 0 {
		t.Errorf("oob = %d N = %d, want 2/0", h.OutOfRange(), h.N())
	}

	huge := math.Ldexp(1, 70) // 2^70
	h.Add(huge)
	h.Add(math.Ldexp(1, 63)) // exactly 2^63: first value past the top bucket
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.N() != 2 || h.Max() != huge {
		t.Errorf("overflow values excluded from moments: N=%d max=%g", h.N(), h.Max())
	}
	if b := h.Buckets(); len(b) != 0 {
		t.Errorf("overflow values must not occupy regular buckets: %v", b)
	}

	// Boundary below the overflow cutoff stays in the top regular bucket.
	h.Add(math.Ldexp(1, 62)) // 2^62 -> [2^62, 2^63)
	b := h.Buckets()
	if len(b) != 1 || b[0].Lo != math.Ldexp(1, 62) || b[0].Hi != math.Ldexp(1, 63) {
		t.Errorf("top regular bucket wrong: %v", b)
	}

	// Zero and sub-1 values share bucket 0: [0, 1).
	var z LogHist
	z.Add(0)
	z.Add(0.5)
	b = z.Buckets()
	if len(b) != 1 || b[0].Lo != 0 || b[0].Hi != 1 || b[0].N != 2 {
		t.Errorf("[0,1) bucket wrong: %v", b)
	}
}
