// The prior-import path: an analytic per-metric scaling model fitted from
// the donor and recipient coordinates, applied to the donor's per-service
// clusters to produce a *low-confidence* PLT prior for the recipient.
//
// The model is deliberately simple — square-root capacity laws and linear
// width/latency terms seeded from the machine model — because it does not
// have to be right, only close: Rescale caps every imported sample count at
// PriorWeight, so the recipient's first detailed intervals (a short refit
// window instead of the full learning window) dominate the priors in the
// Welford merge, and the divergence watchdog demotes any service whose
// transferred table keeps mispredicting. A bad transfer costs a re-learn; it
// never silently emits wrong predictions.

package transfer

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"fssim/internal/core"
	"fssim/internal/stats"
)

// PriorWeight is the sample count every transferred statistic is capped at:
// the imported cluster behaves like one learned from this many observations,
// so roughly that many fresh recipient intervals outvote it.
const PriorWeight = 6

// RefitWindow is the shortened learning window a transferred learner runs
// before predicting: enough detailed intervals to refine (or expose) the
// scaled priors per service, an order of magnitude below the cold-start
// window (~100 at the paper's PMin/DoC).
const RefitWindow = 12

// ScaleModel holds the fitted per-metric multipliers taking donor cluster
// statistics to recipient priors. Access counts (L1IA, L1DA) are properties
// of the program, not the hierarchy, and always scale by 1.
type ScaleModel struct {
	L1IM float64 // L1I miss-count factor
	L1DM float64 // L1D miss-count factor
	L2M  float64 // L2 miss-count factor (the headline "scale=" in provenance)
	L2A  float64 // L2 access factor (follows the L1 miss factors)
	L2WB float64 // writeback factor (follows L2M)

	// Cycle reconstruction terms: per-cluster compute time scales with the
	// issue-width ratio, memory time with the rescaled L2 misses times the
	// recipient's per-miss penalty.
	Width                    float64 // donor IssueWidth / recipient IssueWidth
	MemPenDonor, MemPenRecip float64 // MemLatency + BusOccupancy per side
}

// missScale is the analytic cache model: miss count scales with the inverse
// square root of the capacity ratio (the classic sqrt capacity/miss-rate
// power law) and, more weakly, of the associativity ratio. Zero or missing
// geometry on either side contributes a neutral factor — FamilyHash keeps
// cacheless configs in their own family, so this is belt and braces.
func missScale(dSize, dAssoc, rSize, rAssoc int) float64 {
	f := 1.0
	if dSize > 0 && rSize > 0 {
		f *= math.Sqrt(float64(dSize) / float64(rSize))
	}
	if dAssoc > 0 && rAssoc > 0 {
		f *= math.Sqrt(float64(dAssoc) / float64(rAssoc))
	}
	return f
}

// FitAnalytic seeds the scaling model from the two coordinate vectors.
func FitAnalytic(donor, recip Coords) ScaleModel {
	m := ScaleModel{
		L1IM: missScale(donor.L1ISize, donor.L1IAssoc, recip.L1ISize, recip.L1IAssoc),
		L1DM: missScale(donor.L1DSize, donor.L1DAssoc, recip.L1DSize, recip.L1DAssoc),
		L2M:  missScale(donor.L2Size, donor.L2Assoc, recip.L2Size, recip.L2Assoc),

		Width:       1,
		MemPenDonor: float64(donor.MemLatency + donor.BusOccupancy),
		MemPenRecip: float64(recip.MemLatency + recip.BusOccupancy),
	}
	// L2 accesses are the L1 misses arriving below, so their factor follows
	// the L1 factors; writebacks are evicted dirty L2 lines and follow L2M.
	m.L2A = (m.L1IM + m.L1DM) / 2
	m.L2WB = m.L2M
	if donor.IssueWidth > 0 && recip.IssueWidth > 0 {
		m.Width = float64(donor.IssueWidth) / float64(recip.IssueWidth)
	}
	return m
}

// cycleBounds clamp the per-cluster cycle factor: a scaling model that asks
// for more than these is evidence of a mis-fit, not a prediction.
const (
	minCycleFactor = 0.05
	maxCycleFactor = 20.0
)

// maxMemFrac caps the share of a cluster's cycles attributed to L2 misses.
// The overlap-free bound (misses x full penalty) routinely *exceeds* total
// cycles — MSHRs overlap most of the raw product — so it is usable only as
// an upper estimate, never taken at face value.
const maxMemFrac = 0.75

// scaleCluster maps one donor cluster to a recipient prior. The signature
// (Centroid: interval instruction count; MixCentroid: instruction mix) is a
// property of the workload, not the machine, and passes through unchanged —
// only the performance moments are rescaled. Sample counts are capped at
// PriorWeight with variance preserved (M2 shrunk proportionally to the
// retained degrees of freedom).
func scaleCluster(c core.ClusterState, m ScaleModel) core.ClusterState {
	oldCyc := c.Perf.Cycles.Mean
	oldL2M := c.Perf.L2M.Mean

	// Reconstruct cycles multiplicatively: estimate the memory-bound share of
	// the cluster's cycles (the overlap-free bound, capped at maxMemFrac),
	// scale the compute share by the width ratio and the memory share by the
	// miss-count and per-miss-penalty ratios. The estimate errs toward
	// over-attributing memory time, which only over-states how much a larger
	// cache helps — a direction the refit window and capped prior weight
	// absorb.
	factor := 1.0
	if oldCyc > 0 {
		memFrac := 0.0
		if oldL2M > 0 && m.MemPenDonor > 0 {
			memFrac = math.Min(oldL2M*m.MemPenDonor/oldCyc, maxMemFrac)
		}
		penRatio := 1.0
		if m.MemPenDonor > 0 {
			penRatio = m.MemPenRecip / m.MemPenDonor
		}
		newRel := (1-memFrac)*m.Width + memFrac*m.L2M*penRatio
		factor = math.Min(math.Max(newRel, minCycleFactor), maxCycleFactor)
	}

	p := c.Perf
	p.Cycles = p.Cycles.Scale(factor)
	p.IPC = p.IPC.Scale(1 / factor)
	p.L1IM = p.L1IM.Scale(m.L1IM)
	p.L1DM = p.L1DM.Scale(m.L1DM)
	p.L2M = p.L2M.Scale(m.L2M)
	p.L2A = p.L2A.Scale(m.L2A)
	p.L2WB = p.L2WB.Scale(m.L2WB)
	// L1IA, L1DA: access counts are workload properties; unchanged.

	c.N = capN(c.N)
	for _, mom := range []*stats.Moments{
		&p.Cycles, &p.L1IM, &p.L1DM, &p.L2M, &p.L1IA, &p.L1DA, &p.L2A, &p.L2WB, &p.IPC,
	} {
		*mom = capMoments(*mom)
	}
	c.Perf = p
	return c
}

func capN(n int64) int64 {
	if n > PriorWeight {
		return PriorWeight
	}
	return n
}

// capMoments truncates a sample to PriorWeight observations, keeping the
// mean and the unbiased variance: M2' = Var * (N'-1).
func capMoments(m stats.Moments) stats.Moments {
	if m.N <= PriorWeight {
		return m
	}
	v := m.Var()
	m.M2 = v * float64(PriorWeight-1)
	m.N = PriorWeight
	return m
}

// ErrNoClusters reports a donor snapshot with nothing transferable: every
// learner was still warming up or learning when it was exported.
var ErrNoClusters = errors.New("transfer: donor snapshot has no learned clusters")

// Rescale converts a donor accelerator state into a recipient prior state:
// every learned cluster is rescaled by the model and demoted to a
// low-confidence prior, and every learner restarts in the learning phase
// with the shortened RefitWindow — its first detailed intervals on the
// recipient config refine (and, through the Welford merge, dominate) the
// priors before the first prediction is emitted. Learners without clusters
// are dropped; the accelerator re-creates them on demand as cold learners.
//
// targetParams are the recipient run's learner parameters; the returned
// state carries them, with fresh rings sized to their windows and the
// divergence watchdog armed whenever they arm it — a transferred table is
// exactly the situation the watchdog exists for. The result always passes
// core.AccelState.Validate.
func Rescale(st *core.AccelState, model ScaleModel, targetParams core.Params) (*core.AccelState, error) {
	out := &core.AccelState{Params: targetParams, Deferred: st.Deferred}
	for _, l := range st.Learners {
		if len(l.Clusters) == 0 {
			continue
		}
		nl := core.LearnerState{
			Service:   l.Service,
			Phase:     1, // learning: refit before predicting
			LearnLeft: RefitWindow,
			Ring:      make([]int16, movingWindow(targetParams)),
			NextOutID: 1,
		}
		for i := range nl.Ring {
			nl.Ring[i] = -1
		}
		if targetParams.WatchdogThreshold > 0 {
			nl.WDRing = make([]bool, watchdogWindow(targetParams))
		}
		nl.Clusters = make([]core.ClusterState, 0, len(l.Clusters))
		for _, c := range l.Clusters {
			sc := scaleCluster(c, model)
			nl.Clusters = append(nl.Clusters, sc)
			nl.ObsCycles += float64(sc.N) * sc.Perf.Cycles.Mean
			nl.ObsInsts += float64(sc.N) * sc.Centroid
		}
		out.Learners = append(out.Learners, nl)
	}
	if len(out.Learners) == 0 {
		return nil, ErrNoClusters
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transfer: rescaled state invalid: %w", err)
	}
	return out, nil
}

func movingWindow(p core.Params) int {
	if p.MovingWindow > 0 {
		return p.MovingWindow
	}
	return core.DefaultParams().MovingWindow
}

func watchdogWindow(p core.Params) int {
	switch {
	case p.WatchdogWindow > 0:
		return p.WatchdogWindow
	case p.MovingWindow > 0:
		return p.MovingWindow
	default:
		return core.DefaultParams().MovingWindow
	}
}

// TransferHash is the provenance trailer stored in a transferred snapshot
// and bound into its replay address: it names the exact donor (by learn
// hash) and the exact model applied. A cold run, or a run transferred from a
// different donor or under a different model version, can never replay a
// transferred snapshot — the replay address differs and the warm path falls
// back to a counted cold start.
func TransferHash(donorLearnHash uint64, model ScaleModel) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-transfer|v%d|donor=%016x|model=%x,%x,%x,%x,%x,%x,%x,%x",
		Version, donorLearnHash,
		math.Float64bits(model.L1IM), math.Float64bits(model.L1DM),
		math.Float64bits(model.L2M), math.Float64bits(model.L2A),
		math.Float64bits(model.L2WB), math.Float64bits(model.Width),
		math.Float64bits(model.MemPenDonor), math.Float64bits(model.MemPenRecip))
	return h.Sum64()
}

// Provenance describes one applied transfer, for summary lines and the run
// API: where the priors came from, how far away the donor was, and the
// headline scale factor (the L2 miss factor — the quantity an L2 sweep is
// about).
type Provenance struct {
	DonorBench string  // donor benchmark name
	DonorAddr  string  // donor snapshot address, "family/learnhash" hex
	Distance   float64 // parameter distance donor -> recipient
	Scale      float64 // headline factor: ScaleModel.L2M
	Hash       uint64  // TransferHash of this import
}

// String renders the summary-line form used by fsbench and fssim.
func (p Provenance) String() string {
	return fmt.Sprintf("transferred-from=%s/%s scale=%.3f", p.DonorBench, p.DonorAddr, p.Scale)
}
