// Package transfer warm-starts a PLT for one machine configuration from the
// learned snapshot of a *similar* configuration, so a design-space sweep pays
// the full learning phase only at its first point.
//
// Reuse so far has been all-or-nothing: pltstore.LearnHash addresses a
// snapshot by the exact machine config, so changing one swept parameter (L2
// size, core width) orphans every learned table. This package relaxes that in
// three controlled steps:
//
//   - FamilyHash addresses the *sweep family*: it is LearnHash with the
//     conventionally swept parameters (cache geometry sizes/associativities,
//     core widths, memory timing) zeroed out, so every point of an L2 or
//     width sweep over one workload shares an address.
//   - Distance is a typed metric over exactly those swept parameters: the
//     weighted sum of |log2| capacity/width ratios between two Coords. A hard
//     cutoff (MaxDistance) rejects transfers between configs too far apart
//     for the analytic scaling model to be trusted; rejection is always
//     explicit (counted by the scheduler), never silent.
//   - Rescale (scale.go) converts the donor's per-service clusters into
//     low-confidence priors for the recipient: moment statistics are rescaled
//     by the fitted model and their sample counts capped, so the first
//     detailed intervals of the recipient dominate the priors and the
//     divergence watchdog demotes any transfer the model got wrong.
package transfer

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"fssim/internal/core"
	"fssim/internal/machine"
)

// Version is the transfer-format version, mixed into FamilyHash and
// TransferHash so any change to the family definition or the scaling model
// invalidates cross-version provenance rather than mismatching silently.
const Version = 1

// Coords are the swept machine parameters — the axes a design-space sweep
// moves along, and exactly the fields FamilyHash excludes. They are stored in
// every snapshot (pltstore format v2) so a recipient can measure its distance
// to a donor without reconstructing the donor's full machine config.
type Coords struct {
	L1ISize, L1IAssoc int
	L1DSize, L1DAssoc int
	L2Size, L2Assoc   int
	FetchWidth        int
	IssueWidth        int
	RetireWidth       int
	ROBSize           int
	MemLatency        int
	BusOccupancy      int
}

// FromConfig extracts the swept coordinates of a machine config.
func FromConfig(mcfg machine.Config) Coords {
	return Coords{
		L1ISize: mcfg.Mem.L1I.Size, L1IAssoc: mcfg.Mem.L1I.Assoc,
		L1DSize: mcfg.Mem.L1D.Size, L1DAssoc: mcfg.Mem.L1D.Assoc,
		L2Size: mcfg.Mem.L2.Size, L2Assoc: mcfg.Mem.L2.Assoc,
		FetchWidth:  mcfg.CPU.FetchWidth,
		IssueWidth:  mcfg.CPU.IssueWidth,
		RetireWidth: mcfg.CPU.RetireWidth,
		ROBSize:     mcfg.CPU.ROBSize,
		MemLatency:  mcfg.Mem.MemLatency, BusOccupancy: mcfg.Mem.BusOccupancy,
	}
}

// FamilyHash addresses the sweep family a run belongs to. It is the exact
// analog of pltstore.LearnHash — same inputs, same seed-independence — except
// the swept parameters (Coords) are zeroed out of the machine config before
// hashing, so two configs that differ only along sweep axes share a family.
// Everything else that shapes learned behavior (workload, scale, fault plan,
// learner parameters, block sizes, hit latencies, ablation switches) still
// separates families: transfer never crosses a boundary the scaling model
// has no account of.
func FamilyHash(bench string, mcfg machine.Config, p core.Params, scale float64, faultPlan string) uint64 {
	mcfg.Seed = 0
	mcfg.CPU.FetchWidth, mcfg.CPU.IssueWidth = 0, 0
	mcfg.CPU.RetireWidth, mcfg.CPU.ROBSize = 0, 0
	mcfg.Mem.L1I.Size, mcfg.Mem.L1I.Assoc = 0, 0
	mcfg.Mem.L1D.Size, mcfg.Mem.L1D.Assoc = 0, 0
	mcfg.Mem.L2.Size, mcfg.Mem.L2.Assoc = 0, 0
	mcfg.Mem.MemLatency, mcfg.Mem.BusOccupancy = 0, 0
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-family|v%d|bench=%s|scale=%x|faults=%s|machine=%+v|params=%+v",
		Version, bench, math.Float64bits(scale), faultPlan, mcfg, p)
	return h.Sum64()
}

// MaxDistance is the eligibility cutoff: donors farther than this (in
// Distance units — weighted octaves of parameter change) are rejected. At
// the default weights this admits an L2 sweep up to 4x in either direction
// plus an associativity step (1MB→2MB = 1.0, 1MB→4MB = 2.0) but rejects
// e.g. a 16x capacity jump (4.0), where the sqrt-capacity miss model's error
// would swamp the priors' value.
const MaxDistance = 2.5

// Distance returns the typed parameter distance between two coordinate
// vectors: sum over coordinates of weight * |log2(a/b)| — capacity and width
// ratios count full octaves; associativity, window depth and memory timing,
// whose performance effect per octave is flatter, count half. Identical coords
// (including both-zero fields, e.g. cacheless configs) are at distance 0; a
// coordinate present on one side but zero on the other makes the pair
// incomparable and the distance +Inf — structurally different machines are
// never eligible, whatever the cutoff.
func Distance(a, b Coords) float64 {
	type term struct {
		x, y int
		w    float64
	}
	terms := [...]term{
		{a.L1ISize, b.L1ISize, 1.0}, {a.L1IAssoc, b.L1IAssoc, 0.5},
		{a.L1DSize, b.L1DSize, 1.0}, {a.L1DAssoc, b.L1DAssoc, 0.5},
		{a.L2Size, b.L2Size, 1.0}, {a.L2Assoc, b.L2Assoc, 0.5},
		{a.FetchWidth, b.FetchWidth, 1.0},
		{a.IssueWidth, b.IssueWidth, 1.0},
		{a.RetireWidth, b.RetireWidth, 1.0},
		{a.ROBSize, b.ROBSize, 0.5},
		{a.MemLatency, b.MemLatency, 0.5},
		{a.BusOccupancy, b.BusOccupancy, 0.5},
	}
	d := 0.0
	for _, t := range terms {
		if t.x == t.y { // includes the 0,0 case: absent on both sides
			continue
		}
		if t.x <= 0 || t.y <= 0 {
			return math.Inf(1)
		}
		d += t.w * math.Abs(math.Log2(float64(t.x)/float64(t.y)))
	}
	return d
}

// Eligible reports whether a donor at the given distance may be imported.
func Eligible(d float64) bool { return d <= MaxDistance }

// Spec is a parsed transfer directive. Exactly one form is set:
//
//   - Store: take the nearest eligible donor from the warm store's family
//     index (fsbench -transfer, fssimd -transfer).
//   - L2 > 0: take the in-invocation sibling run whose L2 capacity is L2
//     bytes as the donor (the sweep experiment's explicit pairing).
type Spec struct {
	Store bool
	L2    int
}

// ParseSpec parses a transfer directive: "store" or "l2=<bytes>". The empty
// string is not a directive (callers treat it as "no transfer") and is
// rejected here so it can never round-trip into a run key.
func ParseSpec(s string) (Spec, error) {
	switch {
	case s == "store":
		return Spec{Store: true}, nil
	case strings.HasPrefix(s, "l2="):
		n, err := strconv.Atoi(s[len("l2="):])
		if err != nil || n <= 0 {
			return Spec{}, fmt.Errorf("transfer: bad donor L2 size in %q", s)
		}
		return Spec{L2: n}, nil
	default:
		return Spec{}, fmt.Errorf("transfer: unknown directive %q (want \"store\" or \"l2=<bytes>\")", s)
	}
}

// String renders the canonical directive form: ParseSpec(s.String()) == s.
func (s Spec) String() string {
	if s.Store {
		return "store"
	}
	return "l2=" + strconv.Itoa(s.L2)
}
