package transfer

import (
	"math"
	"testing"

	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/stats"
)

func defaultCoords() Coords { return FromConfig(machine.DefaultConfig()) }

// TestDistanceZeroDelta pins the identity: a config is at distance 0 from
// itself (including zeroed fields on both sides) and always eligible.
func TestDistanceZeroDelta(t *testing.T) {
	c := defaultCoords()
	if d := Distance(c, c); d != 0 {
		t.Errorf("self-distance %g, want 0", d)
	}
	var empty Coords
	if d := Distance(empty, empty); d != 0 {
		t.Errorf("empty self-distance %g, want 0", d)
	}
	if !Eligible(0) {
		t.Error("distance 0 must be eligible")
	}
}

// TestDistanceSingleParamSweep pins the L2-sweep geometry the sweep
// experiment uses: each capacity doubling costs one octave, so 512KB->1MB
// and 512KB->2MB are eligible while 512KB->8MB (4 octaves) is past the
// cutoff — the deliberately-ineligible donor of the acceptance criteria.
func TestDistanceSingleParamSweep(t *testing.T) {
	base := defaultCoords()
	base.L2Size = 512 << 10
	for _, tc := range []struct {
		l2   int
		want float64
		ok   bool
	}{
		{1 << 20, 1, true},
		{2 << 20, 2, true},
		{8 << 20, 4, false},
	} {
		r := base
		r.L2Size = tc.l2
		d := Distance(base, r)
		if math.Abs(d-tc.want) > 1e-12 {
			t.Errorf("512KB->%d: distance %g, want %g", tc.l2, d, tc.want)
		}
		if Eligible(d) != tc.ok {
			t.Errorf("512KB->%d: eligible=%v, want %v", tc.l2, Eligible(d), tc.ok)
		}
		if back := Distance(r, base); back != d {
			t.Errorf("distance not symmetric: %g vs %g", d, back)
		}
	}
}

// TestDistanceIneligiblePairs pins the incomparable cases: a parameter
// present on one side and absent (zero) on the other makes the pair
// structurally different — distance +Inf, never eligible at any cutoff.
func TestDistanceIneligiblePairs(t *testing.T) {
	a := defaultCoords()
	b := a
	b.L2Size = 0
	if d := Distance(a, b); !math.IsInf(d, 1) {
		t.Errorf("cache vs cacheless distance %g, want +Inf", d)
	}
	if Eligible(Distance(a, b)) {
		t.Error("one-sided zero parameter must be ineligible")
	}
	c := a
	c.IssueWidth = 0
	if d := Distance(a, c); !math.IsInf(d, 1) {
		t.Errorf("width vs no-width distance %g, want +Inf", d)
	}
	// Multi-parameter accumulation: an assoc step (half weight) on top of a
	// capacity octave.
	e := a
	e.L2Size, e.L2Assoc = a.L2Size*2, a.L2Assoc*2
	if d := Distance(a, e); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("capacity+assoc step distance %g, want 1.5", d)
	}
}

// TestParseSpecRoundTrip pins the canonical directive forms and the
// rejection of everything else (including the empty string — "no transfer"
// must never round-trip into a run key as a directive).
func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{"store", "l2=524288", "l2=1048576"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if spec.String() != s {
			t.Errorf("ParseSpec(%q).String() = %q", s, spec.String())
		}
	}
	for _, s := range []string{"", "l2=", "l2=0", "l2=-4", "l2=abc", "width=2", "Store"} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", s)
		}
	}
}

// familyArgs are the non-machine FamilyHash inputs the tests vary.
func familyHashOf(mcfg machine.Config) uint64 {
	return FamilyHash("ab-seq", mcfg, core.DefaultParams(), 1.0, "")
}

// TestFamilyHashSweptInvariance is the addressing contract: moving along any
// sweep axis (cache geometry, core width, memory timing, seed) keeps the
// family, while changing anything else — workload, scale, fault plan,
// learner parameters, block size — leaves it.
func TestFamilyHashSweptInvariance(t *testing.T) {
	base := machine.DefaultConfig()
	want := familyHashOf(base)

	swept := []func(*machine.Config){
		func(c *machine.Config) { c.Mem = c.Mem.WithL2Size(8 << 20) },
		func(c *machine.Config) { c.Mem.L2.Assoc = 16 },
		func(c *machine.Config) { c.Mem.L1I.Size = 64 << 10 },
		func(c *machine.Config) { c.Mem.L1D.Assoc = 8 },
		func(c *machine.Config) { c.CPU.FetchWidth = 8 },
		func(c *machine.Config) { c.CPU.IssueWidth = 2 },
		func(c *machine.Config) { c.CPU.RetireWidth = 6 },
		func(c *machine.Config) { c.CPU.ROBSize = 256 },
		func(c *machine.Config) { c.Mem.MemLatency = 150 },
		func(c *machine.Config) { c.Mem.BusOccupancy = 20 },
		func(c *machine.Config) { c.Seed = 99 },
	}
	for i, mut := range swept {
		cfg := base
		mut(&cfg)
		if got := familyHashOf(cfg); got != want {
			t.Errorf("swept mutation %d changed FamilyHash: %016x != %016x", i, got, want)
		}
	}

	nonSwept := []func(*machine.Config){
		func(c *machine.Config) { c.Mem.L2.BlockSize = 128 },
		func(c *machine.Config) { c.Mem.L2.HitLatency = 12 },
		func(c *machine.Config) { c.CPU.MispredictCycles = 20 },
		func(c *machine.Config) { c.CPU.ModeSwitchCycles = 80 },
		func(c *machine.Config) { c.WithCaches = false },
		func(c *machine.Config) { c.NoPollution = true },
		func(c *machine.Config) { c.Mem = c.Mem.WithTLB() },
	}
	for i, mut := range nonSwept {
		cfg := base
		mut(&cfg)
		if got := familyHashOf(cfg); got == want {
			t.Errorf("non-swept mutation %d did not change FamilyHash", i)
		}
	}

	// The non-machine inputs all separate families too.
	if FamilyHash("ab-rand", base, core.DefaultParams(), 1.0, "") == want {
		t.Error("benchmark change did not change FamilyHash")
	}
	if FamilyHash("ab-seq", base, core.DefaultParams(), 0.5, "") == want {
		t.Error("scale change did not change FamilyHash")
	}
	if FamilyHash("ab-seq", base, core.DefaultParams(), 1.0, "storm") == want {
		t.Error("fault-plan change did not change FamilyHash")
	}
	p := core.DefaultParams()
	p.PMin = 0.1
	if FamilyHash("ab-seq", base, p, 1.0, "") == want {
		t.Error("learner-parameter change did not change FamilyHash")
	}
}

// FuzzFamilyHash drives the same contract with fuzzed sweep coordinates:
// whatever (positive) values the swept parameters take, they never move the
// family, while a non-swept perturbation always does.
func FuzzFamilyHash(f *testing.F) {
	f.Add(int64(1<<20), 8, 4, 126, 300, int64(1))
	f.Add(int64(512<<10), 2, 1, 16, 10, int64(7))
	f.Add(int64(0), 0, 0, 0, 0, int64(0))
	f.Fuzz(func(t *testing.T, l2Size int64, l2Assoc, issue, rob, memLat int, seed int64) {
		base := machine.DefaultConfig()
		want := familyHashOf(base)

		cfg := base
		cfg.Mem.L2.Size = int(l2Size)
		cfg.Mem.L2.Assoc = int(l2Assoc)
		cfg.CPU.IssueWidth = int(issue)
		cfg.CPU.ROBSize = int(rob)
		cfg.Mem.MemLatency = int(memLat)
		cfg.Seed = seed
		if got := familyHashOf(cfg); got != want {
			t.Fatalf("swept coords (%d,%d,%d,%d,%d,seed %d) changed FamilyHash",
				l2Size, l2Assoc, issue, rob, memLat, seed)
		}

		// A non-swept field perturbed by a fuzzed amount must re-address.
		cfg2 := base
		cfg2.CPU.MispredictCycles = base.CPU.MispredictCycles + 1 + int(uint64(l2Size)%1000)
		if familyHashOf(cfg2) == want {
			t.Fatalf("non-swept perturbation %d did not change FamilyHash", cfg2.CPU.MispredictCycles)
		}
	})
}

// TestFitAnalyticL2Sweep pins the seeded model for the sweep the golden
// experiment runs: only the L2 capacity differs, so the L1 and access
// factors are neutral and the L2 miss factor follows the sqrt capacity law.
func TestFitAnalyticL2Sweep(t *testing.T) {
	donor := defaultCoords()
	donor.L2Size = 512 << 10
	recip := defaultCoords() // 1MB
	m := FitAnalytic(donor, recip)
	if m.L1IM != 1 || m.L1DM != 1 || m.L2A != 1 || m.Width != 1 {
		t.Errorf("pure L2 sweep must leave L1/width factors neutral: %+v", m)
	}
	if want := math.Sqrt(0.5); math.Abs(m.L2M-want) > 1e-12 {
		t.Errorf("L2M factor %g, want sqrt(1/2) = %g", m.L2M, want)
	}
	if m.L2WB != m.L2M {
		t.Errorf("writeback factor %g must follow L2M %g", m.L2WB, m.L2M)
	}
	if m.MemPenDonor != 340 || m.MemPenRecip != 340 {
		t.Errorf("memory penalties %g/%g, want 340/340", m.MemPenDonor, m.MemPenRecip)
	}
	// Identity fit: same coords, all factors 1 — transferring to an
	// identical config is a no-op on the statistics.
	id := FitAnalytic(recip, recip)
	if id.L2M != 1 || id.L1IM != 1 || id.Width != 1 || id.L2A != 1 {
		t.Errorf("identity fit not neutral: %+v", id)
	}
}

// donorState builds a plausible exported donor: one learner with two learned
// clusters of 50 members each, plus one learner that never got past warmup.
func donorState(t *testing.T) *core.AccelState {
	t.Helper()
	mk := func(mean float64, n int64) stats.Moments {
		var w stats.Welford
		for i := int64(0); i < n; i++ {
			w.Add(mean * (1 + 0.01*float64(i%5)))
		}
		return w.Moments()
	}
	cluster := func(centroid, cyc, l2m float64) core.ClusterState {
		const n = 50
		return core.ClusterState{
			Centroid:    centroid,
			MixCentroid: [3]float64{centroid * 0.3, centroid * 0.2, centroid * 0.1},
			N:           n,
			Perf: core.PerfState{
				Cycles: mk(cyc, n), L2M: mk(l2m, n),
				L1IM: mk(20, n), L1DM: mk(35, n),
				L1IA: mk(centroid, n), L1DA: mk(centroid*0.5, n),
				L2A: mk(55, n), L2WB: mk(8, n), IPC: mk(1.2, n),
			},
		}
	}
	p := core.DefaultParams()
	learned := core.LearnerState{
		Service: isa.Sys(4), Phase: 2, Seen: 120,
		Ring: make([]int16, p.MovingWindow), NextOutID: 1,
		Clusters: []core.ClusterState{cluster(1000, 2400, 3), cluster(5000, 14000, 25)},
	}
	for i := range learned.Ring {
		learned.Ring[i] = -1
	}
	warming := core.LearnerState{
		Service: isa.Sys(5), Phase: 0, Seen: 2, WarmLeft: 3,
		Ring: make([]int16, p.MovingWindow), NextOutID: 1,
	}
	return &core.AccelState{Params: p, Learners: []core.LearnerState{learned, warming}}
}

// TestRescaleProducesValidPriors is the end-to-end contract of the import
// path: the rescaled state validates under the recipient's parameters, every
// learner restarts in the (shortened) learning phase with the watchdog
// armed, clusterless learners are dropped, signatures pass through unchanged
// and sample counts are capped to prior weight.
func TestRescaleProducesValidPriors(t *testing.T) {
	st := donorState(t)
	donor, recip := defaultCoords(), defaultCoords()
	donor.L2Size = 512 << 10
	model := FitAnalytic(donor, recip)

	target := core.DefaultParams()
	target.WatchdogThreshold = core.DefaultWatchdogThreshold
	target.WatchdogWindow = core.DefaultWatchdogWindow

	out, err := Rescale(st, model, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("rescaled state does not validate: %v", err)
	}
	if len(out.Learners) != 1 {
		t.Fatalf("%d learners survived, want 1 (clusterless learner dropped)", len(out.Learners))
	}
	l := out.Learners[0]
	if l.Phase != 1 || l.LearnLeft != RefitWindow || l.WarmLeft != 0 || l.Seen != 0 {
		t.Errorf("learner not reset to refit-learning: phase %d learnLeft %d warmLeft %d seen %d",
			l.Phase, l.LearnLeft, l.WarmLeft, l.Seen)
	}
	if len(l.WDRing) != target.WatchdogWindow {
		t.Errorf("watchdog ring length %d, want %d — a transferred table must keep its watchdog armed",
			len(l.WDRing), target.WatchdogWindow)
	}
	if len(l.Ring) != target.MovingWindow {
		t.Errorf("ring length %d, want %d", len(l.Ring), target.MovingWindow)
	}
	if l.Learned != 0 || l.Predicted != 0 || l.OutlierN != 0 {
		t.Error("evaluation counters must reset on import")
	}

	orig := st.Learners[0].Clusters
	for i, c := range l.Clusters {
		if c.Centroid != orig[i].Centroid || c.MixCentroid != orig[i].MixCentroid {
			t.Errorf("cluster %d: signature changed — centroids are workload properties", i)
		}
		if c.N != PriorWeight {
			t.Errorf("cluster %d: N %d, want capped at %d", i, c.N, PriorWeight)
		}
		if c.Perf.L2M.N != PriorWeight || c.Perf.Cycles.N != PriorWeight {
			t.Errorf("cluster %d: moment counts not capped", i)
		}
		// Fewer misses on the bigger L2, same access counts.
		wantL2M := (orig[i].Perf.L2M.Mean) * model.L2M
		if math.Abs(c.Perf.L2M.Mean-wantL2M) > 1e-9 {
			t.Errorf("cluster %d: L2M mean %g, want %g", i, c.Perf.L2M.Mean, wantL2M)
		}
		if c.Perf.L1IA.Mean != orig[i].Perf.L1IA.Mean {
			t.Errorf("cluster %d: access counts must not rescale", i)
		}
		// Cycles shrink (fewer misses, same penalty) but stay positive, and
		// IPC moves inversely.
		if c.Perf.Cycles.Mean <= 0 || c.Perf.Cycles.Mean >= orig[i].Perf.Cycles.Mean {
			t.Errorf("cluster %d: cycles %g, want in (0, %g)", i, c.Perf.Cycles.Mean, orig[i].Perf.Cycles.Mean)
		}
		if c.Perf.IPC.Mean <= orig[i].Perf.IPC.Mean {
			t.Errorf("cluster %d: IPC %g did not rise with falling cycles", i, c.Perf.IPC.Mean)
		}
	}

	// Without a watchdog in the target params, no ring is allocated and the
	// state still validates.
	plain, err := Rescale(st, model, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Learners[0].WDRing) != 0 {
		t.Error("watchdog ring allocated though target params do not arm it")
	}
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRescaleNoClusters pins the explicit failure: a donor with nothing
// learned is an error the caller counts as a rejection, not a silent no-op.
func TestRescaleNoClusters(t *testing.T) {
	p := core.DefaultParams()
	bare := core.LearnerState{Service: isa.Sys(9), Ring: make([]int16, p.MovingWindow), NextOutID: 1}
	st := &core.AccelState{Params: p, Learners: []core.LearnerState{bare}}
	if _, err := Rescale(st, FitAnalytic(defaultCoords(), defaultCoords()), p); err == nil {
		t.Fatal("Rescale of clusterless donor succeeded, want ErrNoClusters")
	}
}

// TestCapMomentsKeepsVariance pins the prior-weight truncation: the capped
// sample keeps the mean and the unbiased variance of the original.
func TestCapMomentsKeepsVariance(t *testing.T) {
	var w stats.Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 7))
	}
	m := w.Moments()
	c := capMoments(m)
	if c.N != PriorWeight {
		t.Fatalf("capped N %d, want %d", c.N, PriorWeight)
	}
	if math.Abs(c.Mean-m.Mean) > 1e-12 {
		t.Errorf("cap changed mean: %g vs %g", c.Mean, m.Mean)
	}
	if math.Abs(c.Var()-m.Var()) > 1e-9 {
		t.Errorf("cap changed variance: %g vs %g", c.Var(), m.Var())
	}
	// Already-small samples pass through untouched.
	small := stats.Moments{N: 3, Mean: 5, M2: 2}
	if capMoments(small) != small {
		t.Error("cap modified a sample already below prior weight")
	}
}
