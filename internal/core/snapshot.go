package core

import (
	"errors"
	"fmt"
	"math"

	"fssim/internal/isa"
	"fssim/internal/stats"
)

// This file is the snapshot boundary of the acceleration engine: Export
// captures everything a Learner's state machine holds — PLT clusters with
// full moments, phase, outlier bookkeeping, watchdog rings, counters — into
// plain exported value types, and Import rebuilds an equivalent engine from
// them. The invariant warm-starting rests on: an imported accelerator
// produces exactly the predictions (and exactly the re-export) the original
// would have, so a warm-started run's predictions come from the same
// clusters a continuous run would have used.
//
// Import is the trust boundary for on-disk state (internal/pltstore feeds it
// decoded snapshot files): it strictly validates everything — NaN or
// negative centroids, out-of-range cluster counts, inconsistent ring sizes —
// and rejects with ErrBadState rather than letting a corrupt file poison
// predictions.

// ErrBadState tags every validation failure of an accelerator snapshot.
// Callers degrade to a cold start when they see it.
var ErrBadState = errors.New("core: invalid accelerator state")

// Snapshot size limits. Real runs stay orders of magnitude below these; a
// crafted or corrupt snapshot that exceeds them is rejected instead of
// allocating unbounded memory.
const (
	maxSnapshotLearners = 1 << 12
	maxSnapshotClusters = 1 << 16
	maxSnapshotOutliers = 1 << 16
	maxSnapshotEPOs     = 1 << 20
	maxSnapshotRing     = 1 << 20
	maxOutlierID        = 30000 // nextOutID wraps here (see Learner.outlier)
)

// PerfState is the exported form of a cluster's Perf accumulators: the nine
// per-metric moments the PLT records for prediction.
type PerfState struct {
	Cycles stats.Moments
	L1IM   stats.Moments
	L1DM   stats.Moments
	L2M    stats.Moments
	L1IA   stats.Moments
	L1DA   stats.Moments
	L2A    stats.Moments
	L2WB   stats.Moments
	IPC    stats.Moments
}

func (p *Perf) export() PerfState {
	return PerfState{
		Cycles: p.Cycles.Moments(),
		L1IM:   p.L1IM.Moments(),
		L1DM:   p.L1DM.Moments(),
		L2M:    p.L2M.Moments(),
		L1IA:   p.L1IA.Moments(),
		L1DA:   p.L1DA.Moments(),
		L2A:    p.L2A.Moments(),
		L2WB:   p.L2WB.Moments(),
		IPC:    p.IPC.Moments(),
	}
}

func (ps PerfState) restore() Perf {
	return Perf{
		Cycles: stats.WelfordFromMoments(ps.Cycles),
		L1IM:   stats.WelfordFromMoments(ps.L1IM),
		L1DM:   stats.WelfordFromMoments(ps.L1DM),
		L2M:    stats.WelfordFromMoments(ps.L2M),
		L1IA:   stats.WelfordFromMoments(ps.L1IA),
		L1DA:   stats.WelfordFromMoments(ps.L1DA),
		L2A:    stats.WelfordFromMoments(ps.L2A),
		L2WB:   stats.WelfordFromMoments(ps.L2WB),
		IPC:    stats.WelfordFromMoments(ps.IPC),
	}
}

// moments lists the nine accumulators for validation.
func (ps PerfState) moments() []stats.Moments {
	return []stats.Moments{ps.Cycles, ps.L1IM, ps.L1DM, ps.L2M,
		ps.L1IA, ps.L1DA, ps.L2A, ps.L2WB, ps.IPC}
}

// ClusterState is the exported form of one scaled cluster.
type ClusterState struct {
	Centroid    float64
	MixCentroid [3]float64
	N           int64
	Perf        PerfState
}

// OutlierState is the exported form of one outlier entry (the occurrence
// bookkeeping the re-learning strategies score; paper §4.4).
type OutlierState struct {
	ID       int
	Centroid float64
	N        int64
	EPOs     []float64
}

// LearnerState is the exported form of one service's learner: table, phase
// machine, outlier and watchdog bookkeeping, and evaluation counters.
type LearnerState struct {
	Service isa.ServiceID
	Phase   int
	Seen    int64

	WarmLeft  int
	LearnLeft int

	Ring    []int16
	RingPos int

	NextOutID int
	Outliers  []OutlierState

	WDRing []bool
	WDPos  int
	WDLen  int
	WDOut  int

	HoldLeft     int
	RearmSeen    int
	RearmMatched int

	Learned   int64
	Predicted int64
	OutlierN  int64
	Relearns  int64
	Degrades  int64

	ObsCycles float64
	ObsInsts  float64

	Clusters []ClusterState
}

// AccelState is the full exported state of an Accelerator: its parameters
// and every learner in first-seen order. All fields are plain values, so the
// type is directly serializable (internal/pltstore) and comparable with
// reflect.DeepEqual in tests.
type AccelState struct {
	Params   Params
	Deferred bool
	Learners []LearnerState
}

// Export deep-copies the accelerator's complete state. The returned state
// shares no memory with the accelerator, so it stays valid (and immutable)
// however the run continues.
func (a *Accelerator) Export() *AccelState {
	st := &AccelState{Params: a.params, Deferred: a.deferred}
	if len(a.order) > 0 {
		st.Learners = make([]LearnerState, 0, len(a.order))
	}
	for _, svc := range a.order {
		st.Learners = append(st.Learners, a.learners[svc].export())
	}
	return st
}

func (l *Learner) export() LearnerState {
	ls := LearnerState{
		Service:   l.Svc,
		Phase:     int(l.phase),
		Seen:      l.seen,
		WarmLeft:  l.warmLeft,
		LearnLeft: l.learnLeft,
		Ring:      append([]int16(nil), l.ring...),
		RingPos:   l.ringPos,
		NextOutID: l.nextOutID,
		WDPos:     l.wdPos,
		WDLen:     l.wdLen,
		WDOut:     l.wdOut,
		HoldLeft:  l.holdLeft,
		RearmSeen: l.rearmSeen, RearmMatched: l.rearmMatched,
		Learned: l.Learned, Predicted: l.Predicted, OutlierN: l.Outliers,
		Relearns: l.Relearns, Degrades: l.Degrades,
		ObsCycles: l.obsCycles, ObsInsts: l.obsInsts,
	}
	if len(l.wdRing) > 0 {
		ls.WDRing = append([]bool(nil), l.wdRing...)
	}
	if len(l.outliers) > 0 {
		ls.Outliers = make([]OutlierState, 0, len(l.outliers))
		for _, o := range l.outliers {
			os := OutlierState{ID: o.id, Centroid: o.centroid, N: o.n}
			if len(o.epos) > 0 {
				os.EPOs = append([]float64(nil), o.epos...)
			}
			ls.Outliers = append(ls.Outliers, os)
		}
	}
	if len(l.Table.Clusters) > 0 {
		ls.Clusters = make([]ClusterState, 0, len(l.Table.Clusters))
		for _, c := range l.Table.Clusters {
			ls.Clusters = append(ls.Clusters, ClusterState{
				Centroid: c.Centroid, MixCentroid: c.MixCentroid, N: c.N,
				Perf: c.Perf.export(),
			})
		}
	}
	return ls
}

// Import rebuilds the accelerator from an exported state. The receiver must
// be freshly constructed (no learners yet); st is validated in full before
// anything is applied, so a rejected import leaves the accelerator unchanged
// and ready for a cold start. Every validation failure wraps ErrBadState.
//
// The round trip is exact: NewAccelerator(p).Import(st) followed by Export
// reproduces st, and the imported learners predict from byte-identical
// tables — the warm-start invariant.
func (a *Accelerator) Import(st *AccelState) error {
	if len(a.learners) > 0 {
		return fmt.Errorf("%w: import into a non-empty accelerator", ErrBadState)
	}
	if err := st.Validate(); err != nil {
		return err
	}
	a.params = st.Params
	a.deferred = st.Deferred
	for i := range st.Learners {
		l := st.Learners[i].restore(st.Params)
		l.trc = a.trc
		a.learners[l.Svc] = l
		a.order = append(a.order, l.Svc)
	}
	return nil
}

func (ls *LearnerState) restore(p Params) *Learner {
	l := &Learner{
		Svc: ls.Service, params: p,
		phase:     phase(ls.Phase),
		seen:      ls.Seen,
		warmLeft:  ls.WarmLeft,
		learnLeft: ls.LearnLeft,
		ring:      append([]int16(nil), ls.Ring...),
		ringPos:   ls.RingPos,
		nextOutID: ls.NextOutID,
		wdPos:     ls.WDPos,
		wdLen:     ls.WDLen,
		wdOut:     ls.WDOut,
		holdLeft:  ls.HoldLeft,
		rearmSeen: ls.RearmSeen, rearmMatched: ls.RearmMatched,
		Learned: ls.Learned, Predicted: ls.Predicted, Outliers: ls.OutlierN,
		Relearns: ls.Relearns, Degrades: ls.Degrades,
		obsCycles: ls.ObsCycles, obsInsts: ls.ObsInsts,
	}
	if len(ls.WDRing) > 0 {
		l.wdRing = append([]bool(nil), ls.WDRing...)
	}
	for _, os := range ls.Outliers {
		o := &outlierEntry{id: os.ID, centroid: os.Centroid, n: os.N}
		if len(os.EPOs) > 0 {
			o.epos = append([]float64(nil), os.EPOs...)
		}
		l.outliers = append(l.outliers, o)
	}
	for _, cs := range ls.Clusters {
		l.Table.Clusters = append(l.Table.Clusters, &Cluster{
			Centroid: cs.Centroid, MixCentroid: cs.MixCentroid, N: cs.N,
			Perf: cs.Perf.restore(),
		})
	}
	return l
}

// Validate checks the state in full: parameter sanity, phase ranges, ring
// consistency with the parameters, finite non-negative centroids, positive
// member counts, bounded cluster and outlier populations, and well-formed
// moments. Every failure wraps ErrBadState and names the offending learner.
func (st *AccelState) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadState, fmt.Sprintf(format, args...))
	}
	if st == nil {
		return bad("nil state")
	}
	p := st.Params
	if p.MovingWindow <= 0 || p.MovingWindow > maxSnapshotRing {
		return bad("moving window %d out of range", p.MovingWindow)
	}
	if !finite(p.PMin) || !finite(p.DoC) || !finite(p.RangeFrac) ||
		!finite(p.FixedRange) || !finite(p.WatchdogThreshold) {
		return bad("non-finite parameter")
	}
	if p.Strategy < BestMatch || p.Strategy > Statistical {
		return bad("unknown strategy %d", p.Strategy)
	}
	if len(st.Learners) > maxSnapshotLearners {
		return bad("%d learners exceeds limit %d", len(st.Learners), maxSnapshotLearners)
	}
	seen := make(map[isa.ServiceID]bool, len(st.Learners))
	for i := range st.Learners {
		ls := &st.Learners[i]
		if seen[ls.Service] {
			return bad("learner %d: duplicate service %v", i, ls.Service)
		}
		seen[ls.Service] = true
		if err := ls.validate(p); err != nil {
			return fmt.Errorf("%w (learner %d, service %v)", err, i, ls.Service)
		}
	}
	return nil
}

func (ls *LearnerState) validate(p Params) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadState, fmt.Sprintf(format, args...))
	}
	if ls.Phase < int(phaseWarmup) || ls.Phase > int(phaseDegraded) {
		return bad("phase %d out of range", ls.Phase)
	}
	if ls.Seen < 0 || ls.Learned < 0 || ls.Predicted < 0 || ls.OutlierN < 0 ||
		ls.Relearns < 0 || ls.Degrades < 0 {
		return bad("negative counter")
	}
	if !finite(ls.ObsCycles) || ls.ObsCycles < 0 || !finite(ls.ObsInsts) || ls.ObsInsts < 0 {
		return bad("invalid observed cycle/instruction totals (%g, %g)", ls.ObsCycles, ls.ObsInsts)
	}
	if len(ls.Ring) != p.MovingWindow {
		return bad("ring length %d != moving window %d", len(ls.Ring), p.MovingWindow)
	}
	if ls.RingPos < 0 || ls.RingPos >= len(ls.Ring) {
		return bad("ring position %d out of range", ls.RingPos)
	}
	for _, id := range ls.Ring {
		if id < -1 || int(id) > maxOutlierID {
			return bad("ring outlier id %d out of range", id)
		}
	}
	if ls.NextOutID < 1 || ls.NextOutID > maxOutlierID+1 {
		return bad("next outlier id %d out of range", ls.NextOutID)
	}
	if len(ls.WDRing) > maxSnapshotRing {
		return bad("watchdog ring length %d exceeds limit", len(ls.WDRing))
	}
	if len(ls.WDRing) == 0 {
		if ls.WDPos != 0 || ls.WDLen != 0 || ls.WDOut != 0 {
			return bad("watchdog bookkeeping without a ring")
		}
	} else {
		if ls.WDPos < 0 || ls.WDPos >= len(ls.WDRing) {
			return bad("watchdog position %d out of range", ls.WDPos)
		}
		if ls.WDLen < 0 || ls.WDLen > len(ls.WDRing) {
			return bad("watchdog fill %d out of range", ls.WDLen)
		}
		out := 0
		for _, v := range ls.WDRing {
			if v {
				out++
			}
		}
		if ls.WDOut != out {
			return bad("watchdog outlier count %d inconsistent with ring (%d set)", ls.WDOut, out)
		}
	}
	if ls.HoldLeft < 0 || ls.RearmSeen < 0 || ls.RearmMatched < 0 || ls.RearmMatched > ls.RearmSeen {
		return bad("invalid re-arm bookkeeping")
	}
	if len(ls.Outliers) > maxSnapshotOutliers {
		return bad("%d outlier entries exceeds limit %d", len(ls.Outliers), maxSnapshotOutliers)
	}
	for j, o := range ls.Outliers {
		if o.ID < 1 || o.ID > maxOutlierID {
			return bad("outlier %d: id %d out of range", j, o.ID)
		}
		if !finite(o.Centroid) || o.Centroid < 0 {
			return bad("outlier %d: invalid centroid %g", j, o.Centroid)
		}
		if o.N < 1 {
			return bad("outlier %d: member count %d < 1", j, o.N)
		}
		if len(o.EPOs) > maxSnapshotEPOs {
			return bad("outlier %d: %d probability estimates exceeds limit", j, len(o.EPOs))
		}
		for _, e := range o.EPOs {
			if !finite(e) || e < 0 || e > 1 {
				return bad("outlier %d: probability estimate %g outside [0,1]", j, e)
			}
		}
	}
	if len(ls.Clusters) > maxSnapshotClusters {
		return bad("%d clusters exceeds limit %d", len(ls.Clusters), maxSnapshotClusters)
	}
	for j, c := range ls.Clusters {
		if !finite(c.Centroid) || c.Centroid < 0 {
			return bad("cluster %d: invalid centroid %g", j, c.Centroid)
		}
		for _, m := range c.MixCentroid {
			if !finite(m) || m < 0 {
				return bad("cluster %d: invalid mix centroid %g", j, m)
			}
		}
		if c.N < 1 {
			return bad("cluster %d: member count %d < 1", j, c.N)
		}
		for k, m := range c.Perf.moments() {
			if m.N < 0 || m.N > c.N {
				return bad("cluster %d: moment %d count %d outside [0,%d]", j, k, m.N, c.N)
			}
			if !finite(m.Mean) || !finite(m.M2) || m.M2 < 0 {
				return bad("cluster %d: moment %d not finite or negative M2 (mean %g, M2 %g)",
					j, k, m.Mean, m.M2)
			}
		}
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
