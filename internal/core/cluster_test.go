package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fssim/internal/machine"
)

func meas(cycles uint64) *machine.Measurement {
	return &machine.Measurement{Insts: 1000, Cycles: cycles}
}

// sig builds an instruction-count-only signature (the paper's default).
func sig(insts uint64) Signature { return Signature{Insts: insts} }

func TestClusterRange(t *testing.T) {
	c := &Cluster{Centroid: 1000}
	if !c.InRange(sig(1000), 0.05, 0) || !c.InRange(sig(1049), 0.05, 0) || !c.InRange(sig(951), 0.05, 0) {
		t.Error("in-range signatures rejected")
	}
	if c.InRange(sig(1051), 0.05, 0) || c.InRange(sig(949), 0.05, 0) {
		t.Error("out-of-range signatures accepted")
	}
}

func TestClusterCentroidIsMean(t *testing.T) {
	c := &Cluster{}
	for _, v := range []uint64{100, 110, 90, 105} {
		c.addMember(sig(v), meas(500))
	}
	if math.Abs(c.Centroid-101.25) > 1e-9 {
		t.Errorf("centroid = %v, want 101.25", c.Centroid)
	}
	if c.N != 4 {
		t.Errorf("N = %d", c.N)
	}
	if got := c.Perf.Cycles.Mean(); got != 500 {
		t.Errorf("cycles mean = %v", got)
	}
}

func TestPLTLearnAndMatch(t *testing.T) {
	var plt PLT
	// Two well-separated behavior points.
	for i := 0; i < 10; i++ {
		plt.Learn(sig(1000), meas(5000), 0.05, 0, false)
		plt.Learn(sig(9000), meas(90000), 0.05, 0, false)
	}
	if len(plt.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(plt.Clusters))
	}
	if c := plt.Match(sig(1020), 0.05, 0, false); c == nil || math.Abs(c.Centroid-1000) > 1 {
		t.Errorf("match(1020) = %+v", c)
	}
	if c := plt.Match(sig(5000), 0.05, 0, false); c != nil {
		t.Errorf("match(5000) should be an outlier, got centroid %v", c.Centroid)
	}
	if c := plt.Nearest(sig(5000)); c == nil {
		t.Error("nearest(5000) = nil")
	}
}

// TestPLTMatchClosestCentroid checks the paper's tie-break: among clusters
// whose range contains the signature, the closest centroid wins.
func TestPLTMatchClosestCentroid(t *testing.T) {
	plt := PLT{Clusters: []*Cluster{
		{Centroid: 1000, N: 1},
		{Centroid: 1040, N: 1},
	}}
	if c := plt.Match(sig(1030), 0.05, 0, false); c == nil || c.Centroid != 1040 {
		t.Errorf("match(1030) = %+v, want centroid 1040", c)
	}
	if c := plt.Match(sig(1010), 0.05, 0, false); c == nil || c.Centroid != 1000 {
		t.Errorf("match(1010) = %+v, want centroid 1000", c)
	}
}

// TestPLTLearnedAlwaysMatches property-checks that a signature just learned
// matches the table (its cluster's centroid moved toward it).
func TestPLTLearnedAlwaysMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var plt PLT
		for i := 0; i < 200; i++ {
			v := uint64(rng.Intn(50000) + 50)
			plt.Learn(sig(v), meas(v*3), 0.05, 0, false)
			if plt.Match(sig(v), 0.05, 0, false) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPLTClusterCountBounded property-checks that clustering compresses:
// signatures drawn from K distinct levels (with small jitter) produce close
// to K clusters, not one per instance.
func TestPLTClusterCountBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	levels := []uint64{500, 2000, 8000, 30000}
	var plt PLT
	for i := 0; i < 1000; i++ {
		base := levels[rng.Intn(len(levels))]
		jitter := uint64(float64(base) * 0.02 * rng.Float64())
		plt.Learn(sig(base+jitter), meas(1000), 0.05, 0, false)
	}
	if len(plt.Clusters) > 2*len(levels) {
		t.Errorf("clusters = %d for %d levels", len(plt.Clusters), len(levels))
	}
}

func TestPredictionFromPerf(t *testing.T) {
	var p Perf
	p.add(&machine.Measurement{Insts: 100, Cycles: 400})
	p.add(&machine.Measurement{Insts: 100, Cycles: 600})
	var pred machine.Prediction
	p.predictInto(&pred)
	if pred.Cycles != 500 {
		t.Errorf("predicted cycles = %d, want 500", pred.Cycles)
	}
}
