package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"fssim/internal/isa"
)

// buildRichAccelerator drives an accelerator through a deterministic mixed
// workload so its exported state exercises every snapshot field: multiple
// services, warm-up/learning/predicting phases, outlier entries with
// probability estimates, a populated watchdog ring, and non-trivial
// counters.
func buildRichAccelerator() *Accelerator {
	p := DefaultParams()
	p.LearnWindow = 15
	p.WarmupSkip = 2
	p.WatchdogThreshold = 0.6
	p.WatchdogWindow = 8
	a := NewAccelerator(p)
	svcs := []isa.ServiceID{isa.Sys(isa.SysRead), isa.Sys(isa.SysWrite), isa.Sys(isa.SysOpen)}
	bases := []uint64{1000, 4000, 250}
	for step := 0; step < 600; step++ {
		i := step % len(svcs)
		insts := bases[i] + uint64(step%7) // small jitter inside cluster range
		if step%23 == 0 {
			insts = bases[i]*3 + uint64(step) // occasional outliers
		}
		feed(a, svcs[i], insts)
	}
	return a
}

// feed pushes one service instance through the accelerator's sink interface,
// running it detailed or predicted as the learner decides.
func feed(a *Accelerator, svc isa.ServiceID, insts uint64) {
	detailed, _ := a.OnServiceStart(svc)
	if detailed {
		a.OnServiceEnd(svc, sig(insts), feedMeas(insts, insts*5))
	} else {
		a.OnServiceEnd(svc, sig(insts), nil)
	}
}

// TestSnapshotRoundTrip is the snapshot layer's core contract:
// Export -> Import -> Export reproduces the state exactly, field for field.
func TestSnapshotRoundTrip(t *testing.T) {
	a := buildRichAccelerator()
	st := a.Export()
	if len(st.Learners) != 3 {
		t.Fatalf("exported %d learners, want 3", len(st.Learners))
	}

	b := NewAccelerator(st.Params)
	if err := b.Import(st); err != nil {
		t.Fatalf("import: %v", err)
	}
	st2 := b.Export()
	if !reflect.DeepEqual(st, st2) {
		t.Errorf("re-exported state differs from original:\n got %+v\nwant %+v", st2, st)
	}
	if got, want := b.Summary(), a.Summary(); got != want {
		t.Errorf("imported summary %+v, original %+v", got, want)
	}
}

// TestSnapshotPredictionParity is the warm-start invariant: an imported
// accelerator must make the same detailed/predicted decisions and return the
// same predictions as the original, instance for instance — its predictions
// come from the same clusters a continuous run would have used.
func TestSnapshotPredictionParity(t *testing.T) {
	a := buildRichAccelerator()
	b := NewAccelerator(a.Params())
	if err := b.Import(a.Export()); err != nil {
		t.Fatalf("import: %v", err)
	}
	svcs := []isa.ServiceID{isa.Sys(isa.SysRead), isa.Sys(isa.SysWrite), isa.Sys(isa.SysOpen)}
	bases := []uint64{1000, 4000, 250}
	for step := 0; step < 300; step++ {
		i := step % len(svcs)
		insts := bases[i] + uint64(step%9)
		if step%31 == 0 {
			insts *= 4
		}
		svc := svcs[i]
		da, cpiA := a.OnServiceStart(svc)
		db, cpiB := b.OnServiceStart(svc)
		if da != db || cpiA != cpiB {
			t.Fatalf("step %d: decision diverged: original (%v, %g), imported (%v, %g)",
				step, da, cpiA, db, cpiB)
		}
		s := sig(insts)
		if da {
			m := feedMeas(insts, insts*5)
			a.OnServiceEnd(svc, s, m)
			b.OnServiceEnd(svc, s, feedMeas(insts, insts*5))
			continue
		}
		pa := a.OnServiceEnd(svc, s, nil)
		pb := b.OnServiceEnd(svc, s, nil)
		if (pa == nil) != (pb == nil) || (pa != nil && *pa != *pb) {
			t.Fatalf("step %d: prediction diverged: original %+v, imported %+v", step, pa, pb)
		}
	}
	if got, want := b.Summary(), a.Summary(); got != want {
		t.Errorf("summaries diverged after parallel driving: imported %+v, original %+v", got, want)
	}
}

// TestSnapshotExportIsDeepCopy asserts continued simulation cannot mutate an
// already-taken snapshot.
func TestSnapshotExportIsDeepCopy(t *testing.T) {
	a := buildRichAccelerator()
	st := a.Export()
	ref := a.Export()
	for step := 0; step < 200; step++ {
		feed(a, isa.Sys(isa.SysRead), 1000+uint64(step%50)*40)
	}
	if !reflect.DeepEqual(st, ref) {
		t.Error("snapshot mutated by continued simulation: Export did not deep-copy")
	}
}

// TestImportValidation rejects every class of corrupt state with ErrBadState,
// leaving the accelerator importable afterwards — corrupt snapshots degrade
// to cold starts, never to poisoned predictions.
func TestImportValidation(t *testing.T) {
	pristine := buildRichAccelerator().Export()
	mutations := map[string]func(st *AccelState){
		"nan centroid":         func(st *AccelState) { st.Learners[0].Clusters[0].Centroid = math.NaN() },
		"negative centroid":    func(st *AccelState) { st.Learners[0].Clusters[0].Centroid = -5 },
		"inf mix centroid":     func(st *AccelState) { st.Learners[0].Clusters[0].MixCentroid[1] = math.Inf(1) },
		"zero cluster members": func(st *AccelState) { st.Learners[0].Clusters[0].N = 0 },
		"negative M2":          func(st *AccelState) { st.Learners[0].Clusters[0].Perf.Cycles.M2 = -1 },
		"moment count over N":  func(st *AccelState) { st.Learners[0].Clusters[0].Perf.IPC.N = 1 << 40 },
		"cluster count over limit": func(st *AccelState) {
			st.Learners[0].Clusters = make([]ClusterState, maxSnapshotClusters+1)
			for i := range st.Learners[0].Clusters {
				st.Learners[0].Clusters[i] = ClusterState{Centroid: 1, N: 1}
			}
		},
		"phase out of range":      func(st *AccelState) { st.Learners[0].Phase = 7 },
		"ring length mismatch":    func(st *AccelState) { st.Learners[0].Ring = st.Learners[0].Ring[:3] },
		"ring position overflow":  func(st *AccelState) { st.Learners[0].RingPos = len(st.Learners[0].Ring) },
		"outlier id zero":         func(st *AccelState) { st.Learners[0].NextOutID = 0 },
		"negative counter":        func(st *AccelState) { st.Learners[0].Predicted = -1 },
		"nan observed cycles":     func(st *AccelState) { st.Learners[0].ObsCycles = math.NaN() },
		"watchdog pos overflow":   func(st *AccelState) { st.Learners[0].WDPos = len(st.Learners[0].WDRing) },
		"watchdog count mismatch": func(st *AccelState) { st.Learners[0].WDOut = st.Learners[0].WDOut + 1 },
		"duplicate service":       func(st *AccelState) { st.Learners[1].Service = st.Learners[0].Service },
		"bad moving window":       func(st *AccelState) { st.Params.MovingWindow = -1 },
		"bad strategy":            func(st *AccelState) { st.Params.Strategy = Strategy(9) },
		"epo outside unit range": func(st *AccelState) {
			for i := range st.Learners {
				if len(st.Learners[i].Outliers) > 0 {
					st.Learners[i].Outliers[0].EPOs = []float64{1.5}
					return
				}
			}
			panic("rich state has no outliers to corrupt")
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			// Deep-copy via a round trip so mutations never touch pristine.
			tmp := NewAccelerator(pristine.Params)
			if err := tmp.Import(pristine); err != nil {
				t.Fatalf("pristine state failed to import: %v", err)
			}
			st := tmp.Export()
			mutate(st)
			b := NewAccelerator(pristine.Params)
			err := b.Import(st)
			if err == nil {
				t.Fatal("corrupt state imported without error")
			}
			if !errors.Is(err, ErrBadState) {
				t.Fatalf("error %v does not wrap ErrBadState", err)
			}
			// The rejected accelerator is still clean: a cold start (or a
			// later valid import) proceeds normally.
			if err := b.Import(pristine); err != nil {
				t.Fatalf("accelerator unusable after rejected import: %v", err)
			}
		})
	}
}

// TestImportRequiresEmptyAccelerator pins the receiver contract.
func TestImportRequiresEmptyAccelerator(t *testing.T) {
	a := buildRichAccelerator()
	if err := a.Import(a.Export()); err == nil || !errors.Is(err, ErrBadState) {
		t.Errorf("import into a used accelerator = %v, want ErrBadState", err)
	}
}

// TestImportNilState rejects a nil state instead of panicking.
func TestImportNilState(t *testing.T) {
	a := NewAccelerator(DefaultParams())
	if err := a.Import(nil); err == nil || !errors.Is(err, ErrBadState) {
		t.Errorf("import(nil) = %v, want ErrBadState", err)
	}
}
