package core

import (
	"sort"

	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/trace"
)

// Accelerator is the machine-facing engine: one Learner per OS service type,
// dispatched at every service interval boundary. Attach it to a machine
// running in Accelerated mode via Machine.SetSink.
type Accelerator struct {
	params   Params
	learners map[isa.ServiceID]*Learner
	order    []isa.ServiceID // creation order for stable reporting
	// deferred suppresses learning during a workload's warm-up period (the
	// paper measures after skipping warm-up requests); Arm enables it.
	deferred bool
	trc      *traceHooks // nil unless a recorder is attached
}

// traceHooks fans the run's trace recorder and pre-resolved instruments into
// the accelerator's learners. Every hook is a no-op on a nil receiver, so the
// learner hot paths pay a single nil check when tracing is off.
type traceHooks struct {
	rec      *trace.Recorder
	hits     *trace.Counter
	outliers *trace.Counter
	learned  *trace.Counter
	relearns *trace.Counter
	degrades *trace.Counter
}

// predicted records a PLT hit and stages the matched cluster id for the span
// the machine is about to emit.
func (h *traceHooks) predicted(cluster int) {
	if h == nil {
		return
	}
	h.hits.Inc()
	h.rec.Annotate(cluster, false)
}

// outlier records a prediction whose signature matched no cluster.
func (h *traceHooks) outlier() {
	if h == nil {
		return
	}
	h.outliers.Inc()
	h.rec.Annotate(-1, true)
}

// observed records a detailed instance folded into the PLT.
func (h *traceHooks) observed(cluster int) {
	if h == nil {
		return
	}
	h.learned.Inc()
	h.rec.Annotate(cluster, false)
}

func (h *traceHooks) relearn(svc isa.ServiceID) {
	if h == nil {
		return
	}
	h.relearns.Inc()
	h.rec.InstantNow("relearn " + svc.String())
}

func (h *traceHooks) degrade(svc isa.ServiceID) {
	if h == nil {
		return
	}
	h.degrades.Inc()
	h.rec.InstantNow("degrade " + svc.String())
}

// phase marks a learner phase transition on the timeline.
func (h *traceHooks) phase(svc isa.ServiceID, name string) {
	if h == nil {
		return
	}
	h.rec.InstantNow("phase " + name + " " + svc.String())
}

// SetRecorder attaches the run's trace recorder: prediction outcomes annotate
// interval spans with their PLT cluster id, learner phase transitions and
// watchdog degrades become instant events, and the PLT counters land in the
// recorder's metrics registry. A nil recorder detaches (tracing off).
func (a *Accelerator) SetRecorder(r *trace.Recorder) {
	if r == nil {
		a.trc = nil
	} else {
		reg := r.Metrics()
		a.trc = &traceHooks{
			rec:      r,
			hits:     reg.Counter("plt.hits"),
			outliers: reg.Counter("plt.outliers"),
			learned:  reg.Counter("plt.learned"),
			relearns: reg.Counter("learner.relearns"),
			degrades: reg.Counter("learner.degrades"),
		}
	}
	for _, l := range a.learners {
		l.trc = a.trc
	}
}

// NewAccelerator returns an accelerator with the given parameters.
func NewAccelerator(p Params) *Accelerator {
	if p.MovingWindow <= 0 {
		p.MovingWindow = 100
	}
	return &Accelerator{params: p, learners: make(map[isa.ServiceID]*Learner)}
}

var _ machine.IntervalSink = (*Accelerator)(nil)

func (a *Accelerator) learner(svc isa.ServiceID) *Learner {
	l := a.learners[svc]
	if l == nil {
		l = NewLearner(svc, a.params)
		l.trc = a.trc
		a.learners[svc] = l
		a.order = append(a.order, svc)
	}
	return l
}

// Defer suppresses learning until Arm is called: every interval runs
// detailed and is ignored. Used while a workload warms up.
func (a *Accelerator) Defer() { a.deferred = true }

// Arm enables the scheme after a deferred warm-up.
func (a *Accelerator) Arm() { a.deferred = false }

// OnServiceStart implements machine.IntervalSink: it decides per instance
// whether to run detailed simulation (learning) or emulation (prediction),
// supplying the service's mean CPI for the machine's virtual clock.
func (a *Accelerator) OnServiceStart(svc isa.ServiceID) (bool, float64) {
	if a.deferred {
		return true, 1
	}
	l := a.learner(svc)
	return l.WantDetailed(), l.MinClusterCPI()
}

// OnServiceEnd implements machine.IntervalSink: detailed instances feed the
// learner; emulated instances get their performance predicted from the PLT.
func (a *Accelerator) OnServiceEnd(svc isa.ServiceID, sig machine.Signature, meas *machine.Measurement) *machine.Prediction {
	if a.deferred {
		return nil
	}
	l := a.learner(svc)
	if meas != nil {
		l.Observe(sig, meas)
		return nil
	}
	return l.Predict(sig)
}

// Params returns the accelerator's configuration.
func (a *Accelerator) Params() Params { return a.params }

// Learners returns the per-service learners in first-seen order.
func (a *Accelerator) Learners() []*Learner {
	out := make([]*Learner, 0, len(a.order))
	for _, svc := range a.order {
		out = append(out, a.learners[svc])
	}
	return out
}

// Summary aggregates learner counters across services.
type Summary struct {
	Services  int
	Learned   int64
	Predicted int64
	Outliers  int64
	Relearns  int64
	Degrades  int64
	Clusters  int
}

// Coverage returns predicted / (learned + predicted) — the fraction of OS
// service invocations whose detailed simulation was skipped.
func (s Summary) Coverage() float64 {
	total := s.Learned + s.Predicted
	if total == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(total)
}

// Summary returns aggregate counters.
func (a *Accelerator) Summary() Summary {
	var s Summary
	s.Services = len(a.learners)
	for _, l := range a.learners {
		// Warm-up instances are neither learned nor predicted but were fully
		// simulated; count them against coverage via seen.
		s.Learned += l.seen - l.Predicted
		s.Predicted += l.Predicted
		s.Outliers += l.Outliers
		s.Relearns += l.Relearns
		s.Degrades += l.Degrades
		s.Clusters += len(l.Table.Clusters)
	}
	return s
}

// ServiceReport is a per-service summary row for diagnostics and the
// characterization tools.
type ServiceReport struct {
	Service   isa.ServiceID
	Seen      int64
	Clusters  int
	Predicted int64
	Outliers  int64
	Relearns  int64
	Degrades  int64
	// Phase is the learner's current phase name; OutlierRate its outlier
	// fraction over the watchdog window (0 when the watchdog is disabled).
	Phase       string
	OutlierRate float64
}

// Report returns per-service rows sorted by invocation count (descending).
func (a *Accelerator) Report() []ServiceReport {
	out := make([]ServiceReport, 0, len(a.learners))
	for _, l := range a.learners {
		out = append(out, ServiceReport{
			Service: l.Svc, Seen: l.seen, Clusters: len(l.Table.Clusters),
			Predicted: l.Predicted, Outliers: l.Outliers, Relearns: l.Relearns,
			Degrades: l.Degrades, Phase: l.Phase(), OutlierRate: l.OutlierRate(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seen > out[j].Seen })
	return out
}

// Health is the guardrail-state summary: how many services sit in each phase,
// how many degrade transitions have fired, and the worst per-service outlier
// rate — the at-a-glance view fsbench and Accelerator users surface to decide
// whether predictions are currently trustworthy.
type Health struct {
	Watchdog   bool // whether the divergence watchdog is armed
	Services   int
	Predicting int
	Learning   int // includes warm-up
	Degraded   int
	Degrades   int64 // total degrade transitions across services
	// WorstOutlierRate is the highest per-service outlier fraction over the
	// watchdog window; WorstService names the service exhibiting it.
	WorstOutlierRate float64
	WorstService     isa.ServiceID
}

// Healthy reports whether no service is currently degraded.
func (h Health) Healthy() bool { return h.Degraded == 0 }

// Health returns the accelerator's guardrail-state summary.
func (a *Accelerator) Health() Health {
	h := Health{Watchdog: a.params.WatchdogThreshold > 0, Services: len(a.learners)}
	for _, svc := range a.order {
		l := a.learners[svc]
		switch l.phase {
		case phasePredicting:
			h.Predicting++
		case phaseDegraded:
			h.Degraded++
		default:
			h.Learning++
		}
		h.Degrades += l.Degrades
		if r := l.OutlierRate(); r > h.WorstOutlierRate {
			h.WorstOutlierRate = r
			h.WorstService = l.Svc
		}
	}
	return h
}
