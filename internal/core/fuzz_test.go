package core

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzClusterMatch drives the PLT's scaled-cluster algebra (paper §4.2) with
// arbitrary signature sequences and asserts the invariants the acceleration
// scheme's hot path — now also exercised concurrently by the parallel
// experiment harness — relies on:
//
//  1. a matched instance always falls within the scaled range of the
//     cluster Match returns, and that cluster is the nearest in-range one;
//  2. Learn creates a new cluster only when the instance is an outlier to
//     every existing cluster (centroid ranges never swallow a point that
//     spawned a sibling), and otherwise folds into the matched cluster;
//  3. centroids stay inside the convex hull of their members, so member
//     counts and centroid updates never produce NaN or runaway values.
func FuzzClusterMatch(f *testing.F) {
	f.Add([]byte{0x10, 0x00, 0x11, 0x00, 0x80, 0x3e, 0x81, 0x3e})
	f.Add([]byte{0xff, 0xff, 0x01, 0x00, 0x00, 0x04, 0xf0, 0x03, 0x10, 0x04})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const frac = 0.05 // the paper's ±5% scaled-cluster range
		var plt PLT
		var minSeen, maxSeen float64 = math.Inf(1), math.Inf(-1)
		for i := 0; i+2 <= len(data); i += 2 {
			insts := uint64(binary.LittleEndian.Uint16(data[i:])) + 1
			sig := Signature{Insts: insts}
			v := float64(insts)

			pre := plt.Match(sig, frac, 0, false)
			if pre != nil {
				if !pre.InRange(sig, frac, 0) {
					t.Fatalf("Match returned out-of-range cluster: insts=%d centroid=%g", insts, pre.Centroid)
				}
				for _, c := range plt.Clusters {
					if c.InRange(sig, frac, 0) && c.distance(sig) < pre.distance(sig) {
						t.Fatalf("Match not nearest: insts=%d got centroid %g, closer in-range centroid %g",
							insts, pre.Centroid, c.Centroid)
					}
				}
			}

			before := len(plt.Clusters)
			got := plt.Learn(sig, nil, frac, 0, false)
			switch {
			case pre == nil:
				if len(plt.Clusters) != before+1 {
					t.Fatalf("outlier insts=%d did not create a cluster (%d -> %d)", insts, before, len(plt.Clusters))
				}
				if got.Centroid != v || got.N != 1 {
					t.Fatalf("new cluster not seeded at the instance: centroid=%g n=%d want %g/1", got.Centroid, got.N, v)
				}
				// The new centroid must not lie within any sibling's range:
				// had it, Match would have returned that sibling instead.
				for _, c := range plt.Clusters {
					if c != got && c.InRange(sig, frac, 0) {
						t.Fatalf("new cluster at %g overlaps sibling centroid %g (±%g)", v, c.Centroid, c.Centroid*frac)
					}
				}
			default:
				if got != pre {
					t.Fatalf("Learn folded insts=%d into centroid %g, Match chose %g", insts, got.Centroid, pre.Centroid)
				}
				if len(plt.Clusters) != before {
					t.Fatalf("matched instance grew the table (%d -> %d)", before, len(plt.Clusters))
				}
			}

			minSeen = math.Min(minSeen, v)
			maxSeen = math.Max(maxSeen, v)
			for _, c := range plt.Clusters {
				if math.IsNaN(c.Centroid) || c.Centroid < minSeen || c.Centroid > maxSeen {
					t.Fatalf("centroid %g escaped the member hull [%g, %g]", c.Centroid, minSeen, maxSeen)
				}
				if c.N <= 0 {
					t.Fatalf("cluster with non-positive member count %d", c.N)
				}
			}
		}
	})
}
