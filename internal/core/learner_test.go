package core

import (
	"testing"

	"fssim/internal/isa"
	"fssim/internal/machine"
)

func newTestLearner(strat Strategy) *Learner {
	p := DefaultParams()
	p.Strategy = strat
	p.LearnWindow = 20 // small windows keep the tests readable
	p.WarmupSkip = 2
	return NewLearner(isa.Sys(isa.SysRead), p)
}

func feedMeas(insts, cycles uint64) *machine.Measurement {
	return &machine.Measurement{Insts: insts, Cycles: cycles}
}

// driveWarmupAndLearning pushes the learner through warm-up and its initial
// window with a single stable behavior point.
func driveWarmupAndLearning(l *Learner, insts, cycles uint64) {
	for l.WantDetailed() {
		l.Observe(sig(insts), feedMeas(insts, cycles))
	}
}

func TestLearnerPhases(t *testing.T) {
	l := newTestLearner(Statistical)
	if !l.WantDetailed() {
		t.Fatal("fresh learner should want detailed simulation")
	}
	// Warm-up instances are simulated but not recorded.
	l.Observe(sig(1000), feedMeas(1000, 5000))
	l.Observe(sig(1000), feedMeas(1000, 5000))
	if len(l.Table.Clusters) != 0 {
		t.Fatal("warm-up instances must not be recorded")
	}
	for i := 0; i < 20; i++ {
		if !l.WantDetailed() {
			t.Fatalf("learning ended early at %d", i)
		}
		l.Observe(sig(1000), feedMeas(1000, 5000))
	}
	if l.WantDetailed() {
		t.Fatal("learner should predict after its window")
	}
	if len(l.Table.Clusters) != 1 {
		t.Fatalf("clusters = %d", len(l.Table.Clusters))
	}
}

func TestLearnerPredictsClusterMean(t *testing.T) {
	l := newTestLearner(Statistical)
	driveWarmupAndLearning(l, 1000, 5000)
	pred := l.Predict(sig(1005))
	if pred.Cycles != 5000 {
		t.Errorf("predicted cycles = %d, want 5000", pred.Cycles)
	}
	if l.Outliers != 0 {
		t.Errorf("in-range prediction counted as outlier")
	}
}

func TestBestMatchNeverRelearns(t *testing.T) {
	l := newTestLearner(BestMatch)
	driveWarmupAndLearning(l, 1000, 5000)
	for i := 0; i < 50; i++ {
		l.Predict(sig(40000)) // far outlier every time
	}
	if l.Relearns != 0 {
		t.Errorf("Best-Match re-learned %d times", l.Relearns)
	}
	if l.WantDetailed() {
		t.Error("Best-Match fell out of prediction mode")
	}
	if l.Outliers != 50 {
		t.Errorf("outliers = %d", l.Outliers)
	}
}

func TestEagerRelearnsImmediately(t *testing.T) {
	l := newTestLearner(Eager)
	driveWarmupAndLearning(l, 1000, 5000)
	l.Predict(sig(40000))
	if l.Relearns != 1 {
		t.Fatalf("relearns = %d, want 1", l.Relearns)
	}
	if !l.WantDetailed() {
		t.Fatal("Eager should re-enter learning after one outlier")
	}
}

func TestDelayedRelearnsAtThreshold(t *testing.T) {
	l := newTestLearner(Delayed)
	driveWarmupAndLearning(l, 1000, 5000)
	for i := 0; i < 3; i++ {
		l.Predict(sig(40000))
		if l.Relearns != 0 {
			t.Fatalf("re-learned after %d outliers (threshold 4)", i+1)
		}
	}
	l.Predict(sig(40000))
	if l.Relearns != 1 {
		t.Fatalf("relearns = %d after 4 outliers", l.Relearns)
	}
}

// TestDelayedDistinctOutliersDontAccumulate checks that outlier occurrences
// only count toward re-learning when they form one cluster.
func TestDelayedDistinctOutliersDontAccumulate(t *testing.T) {
	l := newTestLearner(Delayed)
	driveWarmupAndLearning(l, 1000, 5000)
	for _, v := range []uint64{40000, 80000, 120000} {
		l.Predict(sig(v))
	}
	if l.Relearns != 0 {
		t.Errorf("distinct outliers triggered re-learning")
	}
}

// TestStatisticalRelearnsOnFrequentOutlier: an outlier cluster appearing
// often gets a high estimated probability of occurrence; the Student-t upper
// bound exceeds p_min and re-learning triggers (paper Eq 8).
func TestStatisticalRelearnsOnFrequentOutlier(t *testing.T) {
	l := newTestLearner(Statistical)
	driveWarmupAndLearning(l, 1000, 5000)
	// The new behavior point appears on every invocation: EPOs pile up fast.
	n := 0
	for l.Relearns == 0 && n < 50 {
		l.Predict(sig(40000))
		n++
	}
	if l.Relearns != 1 {
		t.Fatalf("frequent outlier never triggered statistical re-learning")
	}
	if n < l.params.MinEPOs {
		t.Fatalf("re-learned after only %d occurrences (< MinEPOs)", n)
	}
	// After re-learning, detailed instances absorb the new cluster.
	for l.WantDetailed() {
		l.Observe(sig(40000), feedMeas(40000, 99000))
	}
	if pred := l.Predict(sig(40100)); pred.Cycles != 99000 {
		t.Errorf("new behavior point predicts %d, want 99000", pred.Cycles)
	}
}

// TestStatisticalToleratesRareOutlier: an outlier with a low probability of
// occurrence (its EPOs stay well under p_min) must NOT trigger re-learning.
func TestStatisticalToleratesRareOutlier(t *testing.T) {
	p := DefaultParams()
	p.Strategy = Statistical
	p.LearnWindow = 20
	p.WarmupSkip = 2
	p.MovingWindow = 400 // rare outlier: ~1% probability of occurrence
	l := NewLearner(isa.Sys(isa.SysRead), p)
	driveWarmupAndLearning(l, 1000, 5000)
	// 1 outlier per 100 invocations over 400-wide windows: EPO ~ 0.01 < 3%.
	for round := 0; round < 8; round++ {
		for i := 0; i < 99; i++ {
			l.Predict(sig(1000))
		}
		l.Predict(sig(40000))
	}
	if l.Relearns != 0 {
		t.Errorf("rare outlier (PO~1%%) triggered re-learning %d times", l.Relearns)
	}
}

func TestOutlierFallbackUsesNearest(t *testing.T) {
	l := newTestLearner(BestMatch)
	driveWarmupAndLearning(l, 1000, 5000)
	// Add a second behavior point via a forced relearn path: observe directly.
	l.Observe(sig(10000), feedMeas(10000, 77000))
	if pred := l.Predict(sig(9000)); pred.Cycles != 77000 {
		t.Errorf("outlier predicted %d, want nearest cluster's 77000", pred.Cycles)
	}
	if pred := l.Predict(sig(1500)); pred.Cycles != 5000 {
		t.Errorf("outlier predicted %d, want nearest cluster's 5000", pred.Cycles)
	}
}

func TestLearnerCPI(t *testing.T) {
	l := newTestLearner(Statistical)
	if l.CPI() != 1 {
		t.Errorf("default CPI = %v", l.CPI())
	}
	driveWarmupAndLearning(l, 1000, 3000)
	if got := l.CPI(); got != 3 {
		t.Errorf("CPI = %v, want 3", got)
	}
	if got := l.MinClusterCPI(); got != 3 {
		t.Errorf("MinClusterCPI = %v, want 3", got)
	}
}

func TestAcceleratorDispatch(t *testing.T) {
	a := NewAccelerator(Params{
		Strategy: Statistical, PMin: 0.03, DoC: 0.95, RangeFrac: 0.05,
		WarmupSkip: 1, LearnWindow: 3, DelayedThreshold: 4, MinEPOs: 4,
		MovingWindow: 100,
	})
	svcA, svcB := isa.Sys(isa.SysRead), isa.Irq(isa.IrqTimer)
	// Independent learners per service.
	for i := 0; i < 4; i++ {
		det, _ := a.OnServiceStart(svcA)
		if !det {
			t.Fatalf("instance %d of svcA should be detailed", i)
		}
		a.OnServiceEnd(svcA, sig(1000), feedMeas(1000, 2000))
	}
	if det, _ := a.OnServiceStart(svcA); det {
		t.Fatal("svcA should now predict")
	}
	if det, _ := a.OnServiceStart(svcB); !det {
		t.Fatal("svcB is fresh and should be detailed")
	}
	pred := a.OnServiceEnd(svcA, sig(1000), nil)
	if pred == nil || pred.Cycles != 2000 {
		t.Fatalf("prediction = %+v", pred)
	}
	sum := a.Summary()
	if sum.Services != 2 || sum.Predicted != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(a.Report()) != 2 {
		t.Fatal("report rows != 2")
	}
}

func TestAcceleratorDeferArm(t *testing.T) {
	a := NewAccelerator(DefaultParams())
	a.Defer()
	for i := 0; i < 500; i++ {
		det, _ := a.OnServiceStart(isa.Sys(isa.SysRead))
		if !det {
			t.Fatal("deferred accelerator must stay detailed")
		}
		a.OnServiceEnd(isa.Sys(isa.SysRead), sig(1000), feedMeas(1000, 2000))
	}
	if s := a.Summary(); s.Learned != 0 {
		t.Fatalf("deferred accelerator recorded %d instances", s.Learned)
	}
	a.Arm()
	a.OnServiceEnd(isa.Sys(isa.SysRead), sig(1000), feedMeas(1000, 2000))
	if s := a.Summary(); s.Learned == 0 {
		t.Fatal("armed accelerator did not record")
	}
}

func TestStrategiesStringer(t *testing.T) {
	if len(Strategies()) != 4 {
		t.Fatal("want 4 strategies")
	}
	names := map[string]bool{}
	for _, s := range Strategies() {
		names[s.String()] = true
	}
	for _, want := range []string{"Best-Match", "Eager", "Delayed", "Statistical"} {
		if !names[want] {
			t.Errorf("missing strategy %s", want)
		}
	}
}

func TestParamsWindowDefaults(t *testing.T) {
	p := DefaultParams()
	if w := p.Window(); w < 95 || w > 105 {
		t.Errorf("default window = %d, want ~100 (paper)", w)
	}
	p.LearnWindow = 42
	if p.Window() != 42 {
		t.Error("explicit window ignored")
	}
}

// TestMixSignatureSeparatesAliases: two behavior points with the SAME
// instruction count but different instruction mixes alias under the paper's
// count-only signature and are separated by the extended mix signature
// (the §3 future-work direction).
func TestMixSignatureSeparatesAliases(t *testing.T) {
	a := Signature{Insts: 2000, Loads: 800, Stores: 100, Branches: 200}
	b := Signature{Insts: 2000, Loads: 100, Stores: 800, Branches: 200}

	// Count-only: both land in one cluster; the prediction is a blur.
	var plain PLT
	for i := 0; i < 20; i++ {
		plain.Learn(a, feedMeas(2000, 3000), 0.05, 0, false)
		plain.Learn(b, feedMeas(2000, 30000), 0.05, 0, false)
	}
	if len(plain.Clusters) != 1 {
		t.Fatalf("count-only clusters = %d, want 1 (aliased)", len(plain.Clusters))
	}

	// Mix signature: distinct clusters with sharp predictions.
	var mix PLT
	for i := 0; i < 20; i++ {
		mix.Learn(a, feedMeas(2000, 3000), 0.05, 0, true)
		mix.Learn(b, feedMeas(2000, 30000), 0.05, 0, true)
	}
	if len(mix.Clusters) != 2 {
		t.Fatalf("mix clusters = %d, want 2", len(mix.Clusters))
	}
	ca := mix.Match(a, 0.05, 0, true)
	cb := mix.Match(b, 0.05, 0, true)
	if ca == nil || cb == nil || ca == cb {
		t.Fatal("mix signature failed to separate the aliases")
	}
	if ca.Perf.Cycles.Mean() != 3000 || cb.Perf.Cycles.Mean() != 30000 {
		t.Errorf("cluster means blurred: %v / %v",
			ca.Perf.Cycles.Mean(), cb.Perf.Cycles.Mean())
	}
}

// newWatchdogLearner builds a learner with the divergence watchdog armed over
// a small window so the tests can trip it with a handful of predictions.
func newWatchdogLearner(window int, threshold float64) *Learner {
	p := DefaultParams()
	p.Strategy = BestMatch // no re-learning trigger of its own: watchdog-only
	p.LearnWindow = 10
	p.WarmupSkip = 1
	p.WatchdogThreshold = threshold
	p.WatchdogWindow = window
	return NewLearner(isa.Sys(isa.SysRead), p)
}

func TestFallbackEmptyTable(t *testing.T) {
	l := newTestLearner(BestMatch)
	// No learning at all: the table is empty and the fallback must still
	// produce a usable prediction (IPC 1, no misses).
	pred := l.fallback(sig(1234))
	if pred == nil || pred.Cycles != 1234 {
		t.Fatalf("empty-table fallback = %+v, want Cycles=1234", pred)
	}
	// With a learned cluster, the fallback predicts from the nearest centroid.
	driveWarmupAndLearning(l, 1000, 5000)
	if pred := l.fallback(sig(40000)); pred.Cycles != 5000 {
		t.Errorf("nearest-centroid fallback = %d, want 5000", pred.Cycles)
	}
}

func TestTriggerRelearnResetsState(t *testing.T) {
	l := newTestLearner(BestMatch)
	driveWarmupAndLearning(l, 1000, 5000)
	if l.WantDetailed() {
		t.Fatal("learner not predicting after its window")
	}
	l.triggerRelearn()
	if !l.WantDetailed() {
		t.Fatal("triggerRelearn did not leave prediction mode")
	}
	if l.Relearns != 1 || l.outliers != nil || l.learnLeft != l.params.Window() {
		t.Errorf("relearn state: relearns=%d outliers=%v learnLeft=%d",
			l.Relearns, l.outliers, l.learnLeft)
	}
}

// TestWatchdogDisabledByDefault: with the paper's default parameters the
// watchdog never arms — a sustained outlier storm under Best-Match keeps
// predicting, exactly as before the guardrail existed.
func TestWatchdogDisabledByDefault(t *testing.T) {
	l := newTestLearner(BestMatch)
	driveWarmupAndLearning(l, 1000, 5000)
	for i := 0; i < 300; i++ {
		l.Predict(sig(40000))
	}
	if l.Degrades != 0 || l.WantDetailed() {
		t.Errorf("disabled watchdog degraded: degrades=%d phase=%s", l.Degrades, l.Phase())
	}
	if r := l.OutlierRate(); r != 0 {
		t.Errorf("disabled watchdog reports outlier rate %v", r)
	}
}

// TestWatchdogRequiresFullWindow: the outlier fraction is only meaningful
// over a complete window, so a short prediction burst — even 100% outliers —
// must not trip the degrade transition.
func TestWatchdogRequiresFullWindow(t *testing.T) {
	l := newWatchdogLearner(8, 0.5)
	driveWarmupAndLearning(l, 1000, 5000)
	for i := 0; i < 7; i++ {
		l.Predict(sig(40000))
	}
	if l.Degrades != 0 {
		t.Fatalf("watchdog tripped on a %d-prediction burst (window 8)", 7)
	}
}

// TestWatchdogDegradeAndRearm drives the full guardrail cycle: predicting →
// (outlier burst) → degraded → (re-learning converges) → predicting, with the
// rebuilt table predicting the service's new behavior.
func TestWatchdogDegradeAndRearm(t *testing.T) {
	l := newWatchdogLearner(8, 0.5)
	driveWarmupAndLearning(l, 1000, 5000)

	// The service's behavior shifts: every prediction is an outlier. Once the
	// window fills, the watchdog overrides Best-Match and degrades.
	for i := 0; i < 8; i++ {
		if l.WantDetailed() {
			t.Fatalf("degraded after only %d outliers", i)
		}
		l.Predict(sig(40000))
	}
	if l.Degrades != 1 || l.Phase() != "degraded" {
		t.Fatalf("watchdog did not degrade: degrades=%d phase=%s", l.Degrades, l.Phase())
	}
	if !l.WantDetailed() {
		t.Fatal("degraded learner must run detailed")
	}
	if l.Relearns != 0 {
		t.Errorf("Best-Match re-learned (%d) — the watchdog should be the only trigger", l.Relearns)
	}

	// Detailed observations of the new behavior rebuild the table; once the
	// hold window's observations match it, prediction re-arms.
	for i := 0; i < 2*l.params.Window() && l.WantDetailed(); i++ {
		l.Observe(sig(40000), feedMeas(40000, 99000))
	}
	if l.Phase() != "predicting" {
		t.Fatalf("watchdog never re-armed: phase=%s", l.Phase())
	}
	if pred := l.Predict(sig(40100)); pred.Cycles != 99000 {
		t.Errorf("re-armed prediction = %d, want the new behavior's 99000", pred.Cycles)
	}
	if l.OutlierRate() != 0 {
		t.Errorf("outlier window not reset after re-arm: %v", l.OutlierRate())
	}
}

// TestWatchdogHoldsWhileDrifting: a service whose behavior keeps changing
// never satisfies the re-arm test and (accurately) stays detailed.
func TestWatchdogHoldsWhileDrifting(t *testing.T) {
	l := newWatchdogLearner(8, 0.5)
	driveWarmupAndLearning(l, 1000, 5000)
	for i := 0; i < 8; i++ {
		l.Predict(sig(40000))
	}
	if l.Phase() != "degraded" {
		t.Fatalf("setup failed: phase=%s", l.Phase())
	}
	// Every observation lands somewhere new: nothing matches the table.
	v := uint64(50000)
	for i := 0; i < 3*l.params.Window(); i++ {
		l.Observe(sig(v), feedMeas(v, 10*v))
		v += v / 2
	}
	if l.Phase() != "degraded" {
		t.Errorf("drifting service re-armed prediction: phase=%s", l.Phase())
	}
}

// TestAcceleratorHealth surfaces the guardrail state machine through the
// public Health summary.
func TestAcceleratorHealth(t *testing.T) {
	p := DefaultParams()
	p.Strategy = BestMatch
	p.LearnWindow = 4
	p.WarmupSkip = 1
	p.WatchdogThreshold = 0.5
	p.WatchdogWindow = 4
	a := NewAccelerator(p)
	svc := isa.Sys(isa.SysRead)
	for i := 0; i < 5; i++ {
		a.OnServiceEnd(svc, sig(1000), feedMeas(1000, 5000))
	}
	h := a.Health()
	if !h.Watchdog || h.Services != 1 || h.Predicting != 1 || !h.Healthy() {
		t.Fatalf("post-learning health = %+v", h)
	}
	for i := 0; i < 2; i++ {
		a.OnServiceEnd(svc, sig(40000), nil)
	}
	// Mid-burst: outliers accumulating but the window has not filled.
	h = a.Health()
	if h.WorstOutlierRate == 0 || h.WorstService != svc {
		t.Errorf("mid-burst worst = %.2f/%v, want >0/%v", h.WorstOutlierRate, h.WorstService, svc)
	}
	for i := 0; i < 2; i++ {
		a.OnServiceEnd(svc, sig(40000), nil)
	}
	h = a.Health()
	if h.Healthy() || h.Degraded != 1 || h.Degrades != 1 {
		t.Fatalf("post-burst health = %+v", h)
	}
	rep := a.Report()
	if len(rep) != 1 || rep[0].Phase != "degraded" || rep[0].Degrades != 1 {
		t.Errorf("report row = %+v", rep)
	}
}

// TestMixSignatureToleratesJitter: small mix variations must still match.
func TestMixSignatureToleratesJitter(t *testing.T) {
	var plt PLT
	base := Signature{Insts: 2000, Loads: 800, Stores: 100, Branches: 200}
	for i := 0; i < 10; i++ {
		plt.Learn(base, feedMeas(2000, 3000), 0.05, 0, true)
	}
	near := Signature{Insts: 2010, Loads: 810, Stores: 101, Branches: 198}
	if plt.Match(near, 0.05, 0, true) == nil {
		t.Error("near-identical mix rejected")
	}
}
