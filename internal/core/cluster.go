// Package core implements the paper's contribution: characterization and
// prediction of OS-service performance to accelerate full-system simulation.
//
// Each OS service gets a Performance Lookup Table (PLT) of scaled clusters
// keyed by the service interval's dynamic instruction count — the signature
// that is obtainable in fast emulation mode (paper §3, Fig 5). A
// statistically-derived initial learning window records behavior points; four
// re-learning strategies (Best-Match, Eager, Delayed, Statistical) govern how
// the scheme reacts to outlier signatures during prediction periods (paper
// §4.4); and the predictor replaces detailed simulation of a service instance
// with a PLT lookup plus cache-pollution injection (paper §4.5).
package core

import (
	"math"

	"fssim/internal/machine"
	"fssim/internal/stats"
)

// Signature identifies a performance behavior point. The paper's signature
// is the interval's dynamic instruction count (§3: cheap to obtain in
// emulation mode, and cycle-count clusters align well with instruction-count
// bins); machine.Signature additionally carries the instruction mix for the
// extended signature the paper names as future work.
type Signature = machine.Signature

// Perf accumulates the performance characteristics of the instances mapped
// to one cluster: cycles and the per-level cache activity needed both for
// prediction and for miss-rate bookkeeping.
type Perf struct {
	Cycles stats.Welford
	L1IM   stats.Welford
	L1DM   stats.Welford
	L2M    stats.Welford
	L1IA   stats.Welford
	L1DA   stats.Welford
	L2A    stats.Welford
	L2WB   stats.Welford
	IPC    stats.Welford
}

func (p *Perf) add(m *machine.Measurement) {
	p.Cycles.Add(float64(m.Cycles))
	p.L1IM.Add(float64(m.L1I.Misses))
	p.L1DM.Add(float64(m.L1D.Misses))
	p.L2M.Add(float64(m.L2.Misses))
	p.L1IA.Add(float64(m.L1I.Accesses))
	p.L1DA.Add(float64(m.L1D.Accesses))
	p.L2A.Add(float64(m.L2.Accesses))
	p.L2WB.Add(float64(m.L2.Writebacks))
	p.IPC.Add(m.IPC())
}

// predictInto fills out with the cluster means. The learner routes every
// prediction through its reusable scratch record, so the hot prediction
// path performs no per-interval allocation (the machine copies the fields
// out before the next prediction — see machine.IntervalSink's contract).
func (p *Perf) predictInto(out *machine.Prediction) {
	*out = machine.Prediction{
		Cycles:       uint64(math.Round(p.Cycles.Mean())),
		L1IMisses:    uint64(math.Round(p.L1IM.Mean())),
		L1DMisses:    uint64(math.Round(p.L1DM.Mean())),
		L2Misses:     uint64(math.Round(p.L2M.Mean())),
		L1IAccesses:  uint64(math.Round(p.L1IA.Mean())),
		L1DAccesses:  uint64(math.Round(p.L1DA.Mean())),
		L2Accesses:   uint64(math.Round(p.L2A.Mean())),
		L2Writebacks: uint64(math.Round(p.L2WB.Mean())),
	}
}

// Cluster is one scaled cluster (paper §4.2): a centroid over instruction
// counts with a range proportional to the centroid, plus the recorded
// performance of its member instances. MixCentroid tracks the mean
// loads/stores/branches of members for the extended mix signature.
type Cluster struct {
	Centroid    float64
	MixCentroid [3]float64
	N           int64
	Perf        Perf
}

// InRange reports whether sig falls within the cluster's scaled range
// [centroid*(1-frac), centroid*(1+frac)]. If abs > 0 a fixed-size range of
// ±abs instructions is used instead — the alternative the paper considered
// and rejected (§4.2: fixed bins are too coarse for short services and too
// fine for long ones); it is retained for the ablation study.
func (c *Cluster) InRange(sig Signature, frac, abs float64) bool {
	r := c.Centroid * frac
	if abs > 0 {
		r = abs
	}
	return math.Abs(float64(sig.Insts)-c.Centroid) <= r
}

// MixInRange additionally requires each instruction-mix component (loads,
// stores, branches) to fall within the scaled range of its centroid, with a
// small absolute slack so near-zero components do not fragment clusters.
// This is the extended signature the paper's §3 leaves as future work.
func (c *Cluster) MixInRange(sig Signature, frac float64) bool {
	comps := [3]float64{float64(sig.Loads), float64(sig.Stores), float64(sig.Branches)}
	for i, v := range comps {
		slack := c.MixCentroid[i] * frac
		if slack < 4 {
			slack = 4
		}
		if math.Abs(v-c.MixCentroid[i]) > slack {
			return false
		}
	}
	return true
}

// distance is the absolute centroid distance over instruction counts.
func (c *Cluster) distance(sig Signature) float64 {
	return math.Abs(float64(sig.Insts) - c.Centroid)
}

// addMember folds an instance into the cluster, updating the centroid as the
// running arithmetic mean of member signatures.
func (c *Cluster) addMember(sig Signature, m *machine.Measurement) {
	c.N++
	n := float64(c.N)
	c.Centroid += (float64(sig.Insts) - c.Centroid) / n
	c.MixCentroid[0] += (float64(sig.Loads) - c.MixCentroid[0]) / n
	c.MixCentroid[1] += (float64(sig.Stores) - c.MixCentroid[1]) / n
	c.MixCentroid[2] += (float64(sig.Branches) - c.MixCentroid[2]) / n
	if m != nil {
		c.Perf.add(m)
	}
}

// PLT is the Performance Lookup Table of one OS service.
type PLT struct {
	Clusters []*Cluster
}

// Match returns the best matching cluster for sig: among clusters whose
// range contains sig, the one with the closest centroid; nil if none is in
// range (an outlier). abs > 0 selects fixed-size ranges (see InRange);
// mix additionally requires the instruction-mix components to match.
//
// Ties are deterministic: when two in-range clusters are equidistant from
// sig, the lowest-index (earliest-learned) cluster wins — the strict `<`
// comparison never replaces an established best. Snapshot round trips
// preserve cluster order, so a warm-started table resolves ties exactly as
// the continuous run would have.
func (t *PLT) Match(sig Signature, frac, abs float64, mix bool) *Cluster {
	var best *Cluster
	for _, c := range t.Clusters {
		if !c.InRange(sig, frac, abs) {
			continue
		}
		if mix && !c.MixInRange(sig, frac) {
			continue
		}
		if best == nil || c.distance(sig) < best.distance(sig) {
			best = c
		}
	}
	return best
}

// Nearest returns the cluster with the closest centroid regardless of range
// (the fallback used to predict outlier instances), or nil if empty.
// Equidistant candidates resolve like Match: the lowest index wins.
func (t *PLT) Nearest(sig Signature) *Cluster {
	var best *Cluster
	for _, c := range t.Clusters {
		if best == nil || c.distance(sig) < best.distance(sig) {
			best = c
		}
	}
	return best
}

// Index returns c's position in the table — the cluster id interval spans
// are annotated with — or -1 when c is not in the table.
func (t *PLT) Index(c *Cluster) int {
	for i, x := range t.Clusters {
		if x == c {
			return i
		}
	}
	return -1
}

// Learn folds a detailed-simulation instance into the PLT: the matching
// cluster absorbs it, or a new cluster is created (paper §4.3).
func (t *PLT) Learn(sig Signature, m *machine.Measurement, frac, abs float64, mix bool) *Cluster {
	c := t.Match(sig, frac, abs, mix)
	if c == nil {
		c = &Cluster{}
		t.Clusters = append(t.Clusters, c)
	}
	c.addMember(sig, m)
	return c
}
