package core

import "testing"

// TestPLTMatchTieBreakLowestIndex pins the deterministic tie-break Match
// documents: when two in-range clusters are exactly equidistant from the
// signature, the lowest-index (earliest-learned) cluster wins, regardless of
// centroid values. Warm-start correctness depends on this: snapshots
// preserve cluster order, so an imported table must resolve ties the same
// way the continuous run did.
func TestPLTMatchTieBreakLowestIndex(t *testing.T) {
	lo := &Cluster{Centroid: 900, N: 1}
	hi := &Cluster{Centroid: 1100, N: 1}
	// |1000-900| == |1000-1100| == 100, and both are in range at ±20%.
	plt := PLT{Clusters: []*Cluster{lo, hi}}
	if c := plt.Match(sig(1000), 0.2, 0, false); c != lo {
		t.Errorf("equidistant match picked centroid %v, want the lowest index (900)", c.Centroid)
	}
	// Reversing the table order reverses the winner: the rule is positional,
	// not value-based.
	flipped := PLT{Clusters: []*Cluster{hi, lo}}
	if c := flipped.Match(sig(1000), 0.2, 0, false); c != hi {
		t.Errorf("equidistant match picked centroid %v, want the lowest index (1100)", c.Centroid)
	}
}

// TestPLTNearestTieBreakLowestIndex pins the same rule for the outlier
// fallback path, which ignores ranges entirely.
func TestPLTNearestTieBreakLowestIndex(t *testing.T) {
	lo := &Cluster{Centroid: 400, N: 1}
	hi := &Cluster{Centroid: 1600, N: 1}
	plt := PLT{Clusters: []*Cluster{lo, hi}}
	if c := plt.Nearest(sig(1000)); c != lo {
		t.Errorf("equidistant nearest picked centroid %v, want the lowest index", c.Centroid)
	}
	flipped := PLT{Clusters: []*Cluster{hi, lo}}
	if c := flipped.Nearest(sig(1000)); c != hi {
		t.Errorf("equidistant nearest picked centroid %v, want the lowest index", c.Centroid)
	}
}

// TestPLTEmptyTable pins the empty-table contract: Match and Nearest both
// return nil (the learner's fallback then predicts IPC 1, see
// TestFallbackEmptyTable) rather than panicking or inventing a cluster.
func TestPLTEmptyTable(t *testing.T) {
	var plt PLT
	if c := plt.Nearest(sig(123)); c != nil {
		t.Errorf("Nearest on empty table = %+v, want nil", c)
	}
	if c := plt.Match(sig(123), 0.05, 0, false); c != nil {
		t.Errorf("Match on empty table = %+v, want nil", c)
	}
}
