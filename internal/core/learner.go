package core

import (
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/stats"
)

// Strategy selects the re-learning policy used when prediction-period
// signatures mismatch every PLT entry (paper §4.4).
type Strategy int

const (
	// BestMatch never re-learns: outliers are predicted from the nearest
	// centroid. Highest coverage, lowest accuracy.
	BestMatch Strategy = iota
	// Eager re-learns on every outlier. Best accuracy, lowest coverage.
	Eager
	// Delayed re-learns once an outlier cluster has been seen
	// DelayedThreshold times.
	Delayed
	// Statistical re-learns when a one-sided 95% Student-t upper bound on an
	// outlier cluster's estimated probability of occurrence reaches PMin.
	Statistical
)

var strategyNames = [...]string{"Best-Match", "Eager", "Delayed", "Statistical"}

func (s Strategy) String() string { return strategyNames[s] }

// Strategies lists all four in the paper's comparison order (Fig 11).
func Strategies() []Strategy { return []Strategy{BestMatch, Statistical, Delayed, Eager} }

// Params collects the scheme's tunables with the paper's defaults.
type Params struct {
	Strategy  Strategy
	PMin      float64 // minimum probability of occurrence to capture (0.03)
	DoC       float64 // degree of confidence for the learning window (0.95)
	RangeFrac float64 // scaled-cluster range fraction (0.05 = ±5%)
	// WarmupSkip delays the start of initial learning until the service has
	// occurred this many times, avoiding cold-start effects (paper §4.4).
	WarmupSkip int
	// LearnWindow overrides the statically derived initial learning window
	// (0 = derive from PMin and DoC; ≈100 at 95%).
	LearnWindow int
	// DelayedThreshold is the outlier count that triggers re-learning under
	// the Delayed strategy.
	DelayedThreshold int
	// MinEPOs is the number of probability estimates required before the
	// Statistical strategy tests its hypothesis.
	MinEPOs int
	// MovingWindow is W, the span of invocations over which each estimated
	// probability of occurrence is computed.
	MovingWindow int
	// FixedRange, when positive, replaces scaled cluster ranges with fixed
	// ±FixedRange-instruction bins — the alternative the paper rejects in
	// §4.2, kept for the ablation study.
	FixedRange float64
	// MixSignature extends the signature from the instruction count alone to
	// the instruction mix (count + loads + stores + branches), all still
	// obtainable in emulation mode — the future-work direction named in the
	// paper's §3. Finer signatures distinguish aliased behavior points at
	// some cost in learning time and coverage.
	MixSignature bool
	// WatchdogThreshold, when positive, arms the divergence watchdog: once
	// the outlier fraction over the last WatchdogWindow predictions reaches
	// the threshold, the learner degrades back to detailed simulation and
	// only re-arms prediction after re-learning converges (new observations
	// matching the rebuilt table). 0 (the default) disables the watchdog,
	// preserving the paper's strategy behavior exactly.
	WatchdogThreshold float64
	// WatchdogWindow is the prediction span the outlier fraction is evaluated
	// over (default: MovingWindow).
	WatchdogWindow int
}

// DefaultWatchdogThreshold is the guardrail configuration fsbench and the
// fault experiments arm: degrade a service once 15% of its recent
// predictions were outliers. Healthy steady-state workloads stay in the low
// single digits (the paper captures >= 97% of behavior by design: PMin 3%),
// so this trips only under genuine behavior drift.
const DefaultWatchdogThreshold = 0.15

// DefaultWatchdogWindow is the prediction span the armed watchdog evaluates
// the outlier fraction over. Deliberately shorter than the strategies'
// MovingWindow (100): the watchdog is a burst detector — a fault that shifts
// a service's behavior produces a dense run of outliers — and a short window
// both reacts faster and fills (the rate is only meaningful over a full
// window) for services with modest invocation counts.
const DefaultWatchdogWindow = 40

// DefaultParams returns the paper's configuration: Statistical strategy,
// p_min = 3%, 95% confidence (learning window ~100), ±5% scaled clusters,
// warmup skip of 5, Delayed threshold 4, ≥4 EPOs over W = 100.
func DefaultParams() Params {
	return Params{
		Strategy:         Statistical,
		PMin:             0.03,
		DoC:              0.95,
		RangeFrac:        0.05,
		WarmupSkip:       5,
		DelayedThreshold: 4,
		MinEPOs:          4,
		MovingWindow:     100,
	}
}

// Window returns the effective initial learning window.
func (p Params) Window() int {
	if p.LearnWindow > 0 {
		return p.LearnWindow
	}
	return stats.LearningWindow(p.PMin, p.DoC)
}

type phase int

const (
	phaseWarmup phase = iota
	phaseLearning
	phasePredicting
	// phaseDegraded is the watchdog's fallback state: prediction diverged, so
	// every instance runs detailed again until the rebuilt table matches the
	// service's current behavior (see Observe's re-arm test).
	phaseDegraded
)

// outlierEntry is a special PLT entry for a signature cluster observed
// during prediction periods that matches no learned cluster. It carries no
// performance numbers — only occurrence bookkeeping (paper §4.4).
type outlierEntry struct {
	id       int
	centroid float64
	n        int64
	epos     []float64
}

func (o *outlierEntry) inRange(sig Signature, frac float64) bool {
	d := float64(sig.Insts) - o.centroid
	if d < 0 {
		d = -d
	}
	return d <= o.centroid*frac
}

// Learner runs the learning/prediction state machine of one OS service.
type Learner struct {
	Svc    isa.ServiceID
	Table  PLT
	params Params
	trc    *traceHooks // shared with the owning Accelerator; nil = tracing off

	phase     phase
	seen      int64
	warmLeft  int
	learnLeft int

	// ring of the last MovingWindow invocation outcomes: the outlier-entry
	// id each invocation matched, or -1 (matched a learned cluster /
	// detailed simulation).
	ring    []int16
	ringPos int

	outliers  []*outlierEntry
	nextOutID int

	// Divergence watchdog (Params.WatchdogThreshold > 0): a ring of the last
	// WatchdogWindow prediction outcomes (true = outlier) whose running sum
	// trips the degrade transition.
	wdRing []bool
	wdPos  int
	wdLen  int
	wdOut  int
	// Degraded-phase re-arm bookkeeping: of the last holdLeft observations,
	// how many matched the (rebuilding) table.
	holdLeft     int
	rearmSeen    int
	rearmMatched int

	// Counters for evaluation.
	Learned   int64 // instances fully simulated and recorded
	Predicted int64 // instances fast-forwarded
	Outliers  int64 // predicted instances with no in-range cluster
	Relearns  int64 // re-learning periods triggered
	Degrades  int64 // watchdog degrade transitions

	// CPI estimation over all observed (detailed) instances; drives the
	// machine's virtual clock during fast-forwarded intervals.
	obsCycles float64
	obsInsts  float64

	// predScratch is the reusable prediction record Predict returns a
	// pointer into; the machine consumes it field-wise before the next
	// interval closes (see machine.IntervalSink), so steady-state
	// prediction allocates nothing.
	predScratch machine.Prediction
}

// NewLearner returns a learner for svc.
func NewLearner(svc isa.ServiceID, p Params) *Learner {
	l := &Learner{
		Svc: svc, params: p,
		phase:     phaseWarmup,
		warmLeft:  p.WarmupSkip,
		ring:      make([]int16, p.MovingWindow),
		nextOutID: 1, // 0 is reserved; the ring's "no outlier" marker is -1
	}
	for i := range l.ring {
		l.ring[i] = -1
	}
	if p.WatchdogThreshold > 0 {
		w := p.WatchdogWindow
		if w <= 0 {
			w = p.MovingWindow
		}
		if w <= 0 {
			w = 100
		}
		l.wdRing = make([]bool, w)
	}
	return l
}

// WantDetailed reports whether the next instance should be fully simulated
// (warm-up and learning periods) or fast-forwarded (prediction periods).
func (l *Learner) WantDetailed() bool { return l.phase != phasePredicting }

// Phase returns a human-readable phase name (diagnostics).
func (l *Learner) Phase() string {
	return [...]string{"warmup", "learning", "predicting", "degraded"}[l.phase]
}

// OutlierRate returns the outlier fraction over the watchdog window (0 while
// the watchdog is disabled or its window has not filled yet).
func (l *Learner) OutlierRate() float64 {
	if l.wdLen == 0 {
		return 0
	}
	return float64(l.wdOut) / float64(l.wdLen)
}

// wdPush records one prediction outcome in the watchdog ring.
func (l *Learner) wdPush(outlier bool) {
	if len(l.wdRing) == 0 {
		return
	}
	if l.wdLen == len(l.wdRing) {
		if l.wdRing[l.wdPos] {
			l.wdOut--
		}
	} else {
		l.wdLen++
	}
	l.wdRing[l.wdPos] = outlier
	if outlier {
		l.wdOut++
	}
	l.wdPos = (l.wdPos + 1) % len(l.wdRing)
}

// wdTripped reports whether the full watchdog window's outlier fraction has
// reached the configured threshold.
func (l *Learner) wdTripped() bool {
	return l.wdLen == len(l.wdRing) && len(l.wdRing) > 0 &&
		float64(l.wdOut)/float64(l.wdLen) >= l.params.WatchdogThreshold
}

// wdReset clears the watchdog ring (on degrade, so the re-armed predictor
// starts with a clean window).
func (l *Learner) wdReset() {
	for i := range l.wdRing {
		l.wdRing[i] = false
	}
	l.wdPos, l.wdLen, l.wdOut = 0, 0, 0
}

// degrade is the watchdog transition: back to detailed simulation, with the
// accumulated outlier entries discarded — they describe behavior the rebuilt
// table is about to capture properly.
func (l *Learner) degrade() {
	l.phase = phaseDegraded
	l.holdLeft = l.params.Window()
	l.rearmSeen, l.rearmMatched = 0, 0
	l.outliers = nil
	l.Degrades++
	l.wdReset()
	l.trc.degrade(l.Svc)
}

func (l *Learner) pushRing(outID int16) {
	if len(l.ring) == 0 {
		return
	}
	l.ring[l.ringPos] = outID
	l.ringPos = (l.ringPos + 1) % len(l.ring)
}

// countInWindow returns how often outlier id occurred in the last W
// invocations.
func (l *Learner) countInWindow(id int16) int {
	n := 0
	for _, v := range l.ring {
		if v == id {
			n++
		}
	}
	return n
}

// CPI returns the service's mean cycles per instruction over the instances
// observed in detail (1.0 before any observation).
func (l *Learner) CPI() float64 {
	if l.obsInsts == 0 {
		return 1
	}
	return l.obsCycles / l.obsInsts
}

// MinClusterCPI returns the smallest per-cluster mean CPI — the conservative
// rate for the machine's virtual clock during fast-forwarding. Clusters that
// include I/O waits have enormous CPIs; advancing at the cheapest cluster's
// rate guarantees the virtual clock undershoots, and the final cluster
// prediction supplies the remainder.
func (l *Learner) MinClusterCPI() float64 {
	best := 0.0
	for _, c := range l.Table.Clusters {
		if c.Centroid <= 0 {
			continue
		}
		cpi := c.Perf.Cycles.Mean() / c.Centroid
		if best == 0 || cpi < best {
			best = cpi
		}
	}
	if best == 0 {
		return l.CPI()
	}
	return best
}

// Observe folds a detailed-simulation instance into the learner (warm-up or
// learning period).
func (l *Learner) Observe(sig Signature, m *machine.Measurement) {
	l.seen++
	l.pushRing(-1)
	l.obsCycles += float64(m.Cycles)
	l.obsInsts += float64(m.Insts)
	switch l.phase {
	case phaseWarmup:
		// Cold-start instances are simulated but not recorded (their cache
		// behavior is not representative — paper §4.4).
		l.warmLeft--
		if l.warmLeft <= 0 {
			l.phase = phaseLearning
			l.learnLeft = l.params.Window()
			l.trc.phase(l.Svc, "learning")
		}
	case phaseLearning:
		c := l.Table.Learn(sig, m, l.params.RangeFrac, l.params.FixedRange, l.params.MixSignature)
		l.trc.observed(l.Table.Index(c))
		l.Learned++
		l.learnLeft--
		if l.learnLeft <= 0 {
			l.phase = phasePredicting
			l.trc.phase(l.Svc, "predicting")
		}
	case phaseDegraded:
		// Watchdog fallback: re-learn in detail and test convergence — the
		// fraction of recent observations the rebuilt table already matches.
		// Prediction re-arms only once the table tracks current behavior; a
		// service that keeps drifting stays (accurately) detailed.
		matched := l.Table.Match(sig, l.params.RangeFrac, l.params.FixedRange, l.params.MixSignature) != nil
		c := l.Table.Learn(sig, m, l.params.RangeFrac, l.params.FixedRange, l.params.MixSignature)
		l.trc.observed(l.Table.Index(c))
		l.Learned++
		l.rearmSeen++
		if matched {
			l.rearmMatched++
		}
		l.holdLeft--
		if l.holdLeft <= 0 {
			if float64(l.rearmMatched) >= (1-l.params.WatchdogThreshold)*float64(l.rearmSeen) {
				l.phase = phasePredicting
				l.trc.phase(l.Svc, "predicting")
			} else {
				l.holdLeft = l.params.Window()
				l.rearmSeen, l.rearmMatched = 0, 0
			}
		}
	default:
		// Detailed instance while predicting should not happen; record it
		// anyway — information is information.
		c := l.Table.Learn(sig, m, l.params.RangeFrac, l.params.FixedRange, l.params.MixSignature)
		l.trc.observed(l.Table.Index(c))
		l.Learned++
	}
}

// Predict returns the performance prediction for a fast-forwarded instance
// with the given signature, applying the re-learning strategy on mismatch.
func (l *Learner) Predict(sig Signature) *machine.Prediction {
	l.seen++
	l.Predicted++
	if c := l.Table.Match(sig, l.params.RangeFrac, l.params.FixedRange, l.params.MixSignature); c != nil {
		l.pushRing(-1)
		l.wdPush(false)
		l.trc.predicted(l.Table.Index(c))
		c.Perf.predictInto(&l.predScratch)
		return &l.predScratch
	}

	// Outlier: predict from the nearest centroid, then decide re-learning.
	l.Outliers++
	l.wdPush(true)
	l.trc.outlier()
	pred := l.fallback(sig)
	switch l.params.Strategy {
	case BestMatch:
		l.pushRing(-1)
	case Eager:
		l.pushRing(-1)
		l.triggerRelearn()
	case Delayed:
		o := l.outlier(sig)
		l.pushRing(int16(o.id))
		if o.n >= int64(l.params.DelayedThreshold) {
			l.triggerRelearn()
		}
	case Statistical:
		o := l.outlier(sig)
		l.pushRing(int16(o.id))
		// Each match contributes one estimated probability of occurrence
		// over its own moving window (paper Eq 4-5).
		epo := float64(l.countInWindow(int16(o.id))) / float64(len(l.ring))
		o.epos = append(o.epos, epo)
		if len(o.epos) >= l.params.MinEPOs {
			var w stats.Welford
			for _, p := range o.epos {
				w.Add(p)
			}
			bound := stats.TUpperBound95(w.Mean(), w.Std(), len(o.epos))
			// If we cannot be 95% confident the true probability of
			// occurrence is below p_min, conservatively re-learn (Eq 8).
			if bound >= l.params.PMin {
				l.triggerRelearn()
			}
		}
	}
	// The divergence watchdog overrides the strategy once the outlier rate
	// over its window crosses the threshold: whatever the strategy decided
	// (Best-Match in particular decides nothing), fall back to detailed
	// simulation. A strategy-triggered re-learn already left predicting mode;
	// the watchdog only fires if the learner would otherwise keep predicting.
	if l.phase == phasePredicting && l.wdTripped() {
		l.degrade()
	}
	return pred
}

// fallback predicts an outlier from the nearest cluster, scaled is NOT
// applied — the paper predicts directly from the closest centroid's stats.
func (l *Learner) fallback(sig Signature) *machine.Prediction {
	if c := l.Table.Nearest(sig); c != nil {
		c.Perf.predictInto(&l.predScratch)
	} else {
		// Empty table (pathological): assume IPC 1 and no misses.
		l.predScratch = machine.Prediction{Cycles: sig.Insts}
	}
	return &l.predScratch
}

// outlier finds or creates the outlier entry matching sig.
func (l *Learner) outlier(sig Signature) *outlierEntry {
	var best *outlierEntry
	for _, o := range l.outliers {
		if !o.inRange(sig, l.params.RangeFrac) {
			continue
		}
		if best == nil ||
			absf(o.centroid-float64(sig.Insts)) < absf(best.centroid-float64(sig.Insts)) {
			best = o
		}
	}
	if best == nil {
		best = &outlierEntry{id: l.nextOutID}
		l.nextOutID++
		if l.nextOutID > 30000 {
			l.nextOutID = 1 // int16 ring ids wrap; ancient ids are long gone
		}
		l.outliers = append(l.outliers, best)
	}
	best.n++
	best.centroid += (float64(sig.Insts) - best.centroid) / float64(best.n)
	return best
}

// triggerRelearn starts a re-learning period of the same size as the initial
// window and clears all outlier entries (paper §4.4).
func (l *Learner) triggerRelearn() {
	l.phase = phaseLearning
	l.learnLeft = l.params.Window()
	l.outliers = nil
	l.Relearns++
	l.trc.relearn(l.Svc)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
