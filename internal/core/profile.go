package core

import (
	"sort"

	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/stats"
)

// Profiler performs the paper's §3 characterization: it records every OS
// service interval of a full-system run and derives per-service statistics
// (Fig 3), per-invocation series (Fig 4), signature-vs-cycles histograms
// (Fig 5), and clustered-vs-unclustered coefficient of variation (Fig 6).
type Profiler struct {
	RangeFrac float64 // scaled-cluster range for the offline clustering
	services  map[isa.ServiceID]*ServiceProfile
	order     []isa.ServiceID
}

// ServiceProfile accumulates one service's characterization.
type ServiceProfile struct {
	Service isa.ServiceID
	N       int64
	Cycles  stats.Welford
	Insts   stats.Welford
	IPC     stats.Welford
	Table   PLT // offline scaled clustering over (signature -> perf)

	// Series holds per-invocation (insts, cycles) pairs for Figs 4 and 5.
	Series []InstanceSample
}

// InstanceSample is one invocation's signature and outcome.
type InstanceSample struct {
	Insts  uint64
	Cycles uint64
}

// NewProfiler returns a profiler using the paper's ±5% scaled clusters.
func NewProfiler() *Profiler {
	return &Profiler{RangeFrac: 0.05, services: make(map[isa.ServiceID]*ServiceProfile)}
}

// Observer returns the machine.IntervalRecord hook to attach via
// Machine.SetObserver.
func (p *Profiler) Observer() func(machine.IntervalRecord) {
	return func(rec machine.IntervalRecord) {
		if rec.Meas == nil {
			return // fast-forwarded intervals carry no measured truth
		}
		sp := p.services[rec.Service]
		if sp == nil {
			sp = &ServiceProfile{Service: rec.Service}
			p.services[rec.Service] = sp
			p.order = append(p.order, rec.Service)
		}
		sp.N++
		sp.Cycles.Add(float64(rec.Cycles))
		sp.Insts.Add(float64(rec.Insts))
		sp.IPC.Add(rec.Meas.IPC())
		sp.Table.Learn(rec.Sig, rec.Meas, p.RangeFrac, 0, false)
		sp.Series = append(sp.Series, InstanceSample{Insts: rec.Insts, Cycles: rec.Cycles})
	}
}

// Service returns the profile for svc (nil if never seen).
func (p *Profiler) Service(svc isa.ServiceID) *ServiceProfile { return p.services[svc] }

// Services returns profiles sorted by service name (the paper's Fig 3 lists
// services alphabetically by syscall name with interrupts last).
func (p *Profiler) Services() []*ServiceProfile {
	out := make([]*ServiceProfile, 0, len(p.services))
	for _, svc := range p.order {
		out = append(out, p.services[svc])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Service, out[j].Service
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.String() < b.String()
	})
	return out
}

// CVSummary is the Fig 6 comparison for one benchmark run: the average
// coefficient of variation of execution time and IPC across services, with
// all instances of a service treated as one cluster (NonClustered) versus
// grouped into scaled clusters (Clustered). Cluster CVs are weighted by
// cluster population, and services with a single invocation are skipped, as
// in the paper ("services that are invoked more than once").
type CVSummary struct {
	NonClusteredTime float64
	ClusteredTime    float64
	NonClusteredIPC  float64
	ClusteredIPC     float64
	Services         int
}

// CVs computes the Fig 6 summary over all profiled services.
func (p *Profiler) CVs() CVSummary {
	var sum CVSummary
	for _, sp := range p.services {
		if sp.N < 2 {
			continue
		}
		sum.Services++
		sum.NonClusteredTime += sp.Cycles.CV()
		sum.NonClusteredIPC += sp.IPC.CV()
		var ct, ci, weight float64
		for _, c := range sp.Table.Clusters {
			w := float64(c.N)
			ct += w * c.Perf.Cycles.CV()
			ci += w * c.Perf.IPC.CV()
			weight += w
		}
		if weight > 0 {
			sum.ClusteredTime += ct / weight
			sum.ClusteredIPC += ci / weight
		}
	}
	if sum.Services > 0 {
		n := float64(sum.Services)
		sum.NonClusteredTime /= n
		sum.ClusteredTime /= n
		sum.NonClusteredIPC /= n
		sum.ClusteredIPC /= n
	}
	return sum
}

// Hist2D builds the Fig 5 bubble histogram for one service: instruction bins
// of instBin and cycle bins of cycleBin (paper: 1000 instructions x 4000
// cycles).
func (sp *ServiceProfile) Hist2D(instBin, cycleBin float64) *stats.Hist2D {
	h := stats.NewHist2D(instBin, cycleBin)
	for _, s := range sp.Series {
		h.Add(float64(s.Insts), float64(s.Cycles))
	}
	return h
}
