package cpu

import (
	"math/rand"
	"testing"

	"fssim/internal/cache"
	"fssim/internal/isa"
	"fssim/internal/memsys"
)

// streamLoads issues n independent 8-byte loads, 64 bytes apart, mimicking a
// streaming scan, and returns cycles per load.
func streamLoads(t *testing.T, core Core, n int, base uint64) float64 {
	t.Helper()
	pc := uint64(0x1000)
	for i := 0; i < n; i++ {
		core.Exec(&isa.Inst{Op: isa.ALU, PC: pc, Dep: 4}, cache.OwnerApp)
		core.Exec(&isa.Inst{Op: isa.LOAD, PC: pc + 4, Addr: base + uint64(i)*64, Size: 8, Dep: 1}, cache.OwnerApp)
		core.Exec(&isa.Inst{Op: isa.ALU, PC: pc + 8, Dep: 1}, cache.OwnerApp)
		core.Exec(&isa.Inst{Op: isa.BRANCH, PC: pc + 12, Taken: i < n-1, Target: pc}, cache.OwnerApp)
	}
	return float64(core.Now()) / float64(n)
}

// TestOOOStreamingOverlap checks that independent missing loads overlap:
// a streaming scan must be bounded by bus bandwidth (~40 cycles/line), not
// serialized at full memory latency (300+ cycles/line).
func TestOOOStreamingOverlap(t *testing.T) {
	mem := memsys.New(memsys.DefaultConfig())
	core := NewOOO(DefaultConfig(), mem)
	cpl := streamLoads(t, core, 4000, 0x10_000_000) // 256KB: misses everywhere
	t.Logf("streaming: %.1f cycles/line", cpl)
	if cpl > 80 {
		t.Errorf("streaming loads do not overlap: %.1f cycles/line (want <80)", cpl)
	}
	if cpl < 35 {
		t.Errorf("streaming loads beat the bus bandwidth bound: %.1f cycles/line", cpl)
	}
}

// TestOOOCacheHitIPC checks that an L1-resident scan runs at multiple
// instructions per cycle.
func TestOOOCacheHitIPC(t *testing.T) {
	mem := memsys.New(memsys.DefaultConfig())
	core := NewOOO(DefaultConfig(), mem)
	scan := func(rounds int) {
		for r := 0; r < rounds; r++ {
			pc := uint64(0x1000)
			for i := 0; i < 128; i++ {
				core.Exec(&isa.Inst{Op: isa.ALU, PC: pc, Dep: 4}, cache.OwnerApp)
				core.Exec(&isa.Inst{Op: isa.LOAD, PC: pc + 4, Addr: 0x2000 + uint64(i)*64, Size: 8, Dep: 1}, cache.OwnerApp)
				core.Exec(&isa.Inst{Op: isa.ALU, PC: pc + 8, Dep: 1}, cache.OwnerApp)
				core.Exec(&isa.Inst{Op: isa.BRANCH, PC: pc + 12, Taken: i < 127, Target: pc}, cache.OwnerApp)
			}
		}
	}
	scan(5) // warm caches and predictor
	insts0, now0 := core.Retired(), core.Now()
	scan(15)
	ipc := float64(core.Retired()-insts0) / float64(core.Now()-now0)
	t.Logf("warm cache-hit scan IPC %.2f", ipc)
	if ipc < 1.5 {
		t.Errorf("warm cache-hit scan IPC %.2f, want >= 1.5", ipc)
	}
}

// TestInOrderSlower checks the in-order model is substantially slower than
// OOO on the same missing stream (it cannot overlap misses).
func TestInOrderSlower(t *testing.T) {
	memA := memsys.New(memsys.DefaultConfig())
	ooo := NewOOO(DefaultConfig(), memA)
	fast := streamLoads(t, ooo, 2000, 0x20_000_000)
	memB := memsys.New(memsys.DefaultConfig())
	ino := NewInOrder(DefaultConfig(), memB)
	slow := streamLoads(t, ino, 2000, 0x20_000_000)
	t.Logf("ooo=%.1f inorder=%.1f cycles/line", fast, slow)
	if slow < fast*2 {
		t.Errorf("in-order (%.1f) should be much slower than OOO (%.1f)", slow, fast)
	}
}

// TestMispredictPenalty verifies branch mispredictions cost cycles.
func TestMispredictPenalty(t *testing.T) {
	run := func(taken func(i int) bool) uint64 {
		core := NewOOO(DefaultConfig(), nil)
		for i := 0; i < 10000; i++ {
			core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x100}, cache.OwnerApp)
			core.Exec(&isa.Inst{Op: isa.BRANCH, PC: 0x104, Taken: taken(i), Target: 0x100}, cache.OwnerApp)
		}
		return core.Now()
	}
	rng := rand.New(rand.NewSource(42))
	predictable := run(func(i int) bool { return true })
	random := run(func(i int) bool { return rng.Intn(2) == 0 })
	t.Logf("predictable=%d random=%d cycles", predictable, random)
	if random <= predictable {
		t.Errorf("random branches (%d) should cost more than predictable (%d)", random, predictable)
	}
}

// TestSkipTo checks fast-forward semantics: the clock moves forward, never
// backward, and execution resumes cleanly.
func TestSkipTo(t *testing.T) {
	for _, mk := range []func() Core{
		func() Core { return NewOOO(DefaultConfig(), memsys.New(memsys.DefaultConfig())) },
		func() Core { return NewInOrder(DefaultConfig(), memsys.New(memsys.DefaultConfig())) },
	} {
		core := mk()
		core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x100}, cache.OwnerApp)
		before := core.Now()
		core.SkipTo(before + 100000)
		if core.Now() != before+100000 {
			t.Fatalf("SkipTo landed at %d", core.Now())
		}
		core.SkipTo(before) // backwards: no-op
		if core.Now() != before+100000 {
			t.Fatalf("SkipTo moved backwards to %d", core.Now())
		}
		// Execution resumes with instructions committing after the skip.
		core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x104}, cache.OwnerApp)
		if core.Now() < before+100000 {
			t.Fatalf("post-skip commit at %d", core.Now())
		}
	}
}

// TestSyscallSerializes checks that SYSCALL/IRET drain the pipeline: they
// cost the configured mode-switch penalty.
func TestSyscallSerializes(t *testing.T) {
	cfg := DefaultConfig()
	core := NewOOO(cfg, nil)
	for i := 0; i < 100; i++ {
		core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x100}, cache.OwnerApp)
	}
	before := core.Now()
	core.Exec(&isa.Inst{Op: isa.SYSCALL, PC: 0x104}, cache.OwnerApp)
	if d := core.Now() - before; d < uint64(cfg.ModeSwitchCycles) {
		t.Fatalf("syscall cost %d cycles, want >= %d", d, cfg.ModeSwitchCycles)
	}
}

// TestRetireWidthBound checks that IPC cannot exceed the retire width even
// for pure independent ALU streams.
func TestRetireWidthBound(t *testing.T) {
	cfg := DefaultConfig()
	core := NewOOO(cfg, nil)
	n := 30000
	for i := 0; i < n; i++ {
		core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x100 + uint64(i%16)*4}, cache.OwnerApp)
	}
	ipc := float64(core.Retired()) / float64(core.Now())
	if ipc > float64(cfg.RetireWidth)+0.01 {
		t.Fatalf("IPC %.2f exceeds retire width %d", ipc, cfg.RetireWidth)
	}
	if ipc < float64(cfg.RetireWidth)-0.5 {
		t.Fatalf("independent ALU stream IPC %.2f, want close to retire width", ipc)
	}
}

// TestDependenceChainLimitsIPC: a fully serial chain must run at ~1 IPC.
func TestDependenceChainLimitsIPC(t *testing.T) {
	core := NewOOO(DefaultConfig(), nil)
	n := 20000
	for i := 0; i < n; i++ {
		core.Exec(&isa.Inst{Op: isa.ALU, PC: 0x100, Dep: 1}, cache.OwnerApp)
	}
	ipc := float64(core.Retired()) / float64(core.Now())
	if ipc > 1.05 {
		t.Fatalf("serial chain IPC %.2f > 1", ipc)
	}
}

// TestLongLatencyDepChain: dependent divides serialize at the divide latency.
func TestLongLatencyDepChain(t *testing.T) {
	core := NewOOO(DefaultConfig(), nil)
	n := 1000
	for i := 0; i < n; i++ {
		core.Exec(&isa.Inst{Op: isa.DIV, PC: 0x100, Dep: 1}, cache.OwnerApp)
	}
	perOp := float64(core.Now()) / float64(n)
	if perOp < 19 || perOp > 22 {
		t.Fatalf("dependent divides at %.1f cycles each, want ~20", perOp)
	}
}

// TestPredictorLearnsLoop: a loop branch pattern becomes predictable.
func TestPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(12)
	// Steady taken branch: after the global history register saturates, the
	// predictor settles on one counter and stops missing.
	for i := 0; i < 512; i++ {
		bp.Predict(0x400, true)
	}
	lo, mo := bp.Stats()
	if float64(mo)/float64(lo) > 0.08 {
		t.Fatalf("steady branch mispredicted %d/%d", mo, lo)
	}
}

// TestStoreDrainDoesNotStall: a burst of independent store misses must not
// inflate commit time (posted through the store buffer).
func TestStoreDrainDoesNotStall(t *testing.T) {
	core := NewOOO(DefaultConfig(), memsys.New(memsys.DefaultConfig()))
	n := 2000
	for i := 0; i < n; i++ {
		core.Exec(&isa.Inst{Op: isa.STORE, PC: 0x100,
			Addr: 0x40_000_000 + uint64(i)*64, Size: 64}, cache.OwnerApp)
	}
	perOp := float64(core.Now()) / float64(n)
	if perOp > 3 {
		t.Fatalf("store stream at %.1f cycles each; stores should post", perOp)
	}
}
