// Package cpu provides the processor timing models of the simulated machine:
// a timestamp-based out-of-order superscalar core, a simpler in-order core,
// and a gshare branch predictor. Both cores are execution-driven: the machine
// feeds them dynamic instructions and they advance a cycle-accurate clock,
// consulting the memory hierarchy for fetch and data latencies.
package cpu

// BranchPredictor is a gshare predictor: a global history register XORed with
// the branch PC indexes a table of 2-bit saturating counters.
type BranchPredictor struct {
	history uint32
	bits    uint
	table   []uint8
	lookups uint64
	misses  uint64
}

// NewBranchPredictor returns a gshare predictor with 2^bits counters.
func NewBranchPredictor(bits uint) *BranchPredictor {
	if bits == 0 {
		bits = 12
	}
	t := make([]uint8, 1<<bits)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{bits: bits, table: t}
}

// Predict consults and updates the predictor for a branch at pc with actual
// outcome taken, returning whether the prediction was correct.
func (b *BranchPredictor) Predict(pc uint64, taken bool) bool {
	idx := (uint32(pc>>2) ^ b.history) & (1<<b.bits - 1)
	ctr := b.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		b.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history = (b.history<<1 | bit(taken)) & (1<<b.bits - 1)
	b.lookups++
	correct := pred == taken
	if !correct {
		b.misses++
	}
	return correct
}

// Stats returns (lookups, mispredictions).
func (b *BranchPredictor) Stats() (lookups, misses uint64) { return b.lookups, b.misses }

// MispredictRate returns misses/lookups.
func (b *BranchPredictor) MispredictRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.misses) / float64(b.lookups)
}

func bit(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}
