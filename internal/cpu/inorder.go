package cpu

import (
	"fssim/internal/cache"
	"fssim/internal/isa"
	"fssim/internal/memsys"
)

// InOrderCore is a blocking in-order model in the style of the simpler
// simulation modes the paper measures for Table 1 (inorder-cache /
// inorder-nocache): single-issue-per-dependence in-order pipeline in which a
// load stalls the machine until its data returns, with the same branch
// predictor and memory hierarchy as the OOO model.
type InOrderCore struct {
	cfg     Config
	mem     *memsys.Hierarchy
	bp      *BranchPredictor
	now     uint64
	slot    int // instructions begun in cycle `now`
	line    uint64
	redo    bool
	retired uint64
	lastCmp uint64 // completion of previous instruction (for dep stalls)
}

// NewInOrder returns an in-order core over mem (nil for ideal memory).
func NewInOrder(cfg Config, mem *memsys.Hierarchy) *InOrderCore {
	return &InOrderCore{cfg: cfg, mem: mem, bp: NewBranchPredictor(cfg.PredictorBits)}
}

// Now implements Core.
func (c *InOrderCore) Now() uint64 { return c.now }

// Retired implements Core.
func (c *InOrderCore) Retired() uint64 { return c.retired }

// Predictor implements Core.
func (c *InOrderCore) Predictor() *BranchPredictor { return c.bp }

// SkipTo implements Core.
func (c *InOrderCore) SkipTo(cycle uint64) {
	if cycle > c.now {
		c.now, c.slot = cycle, 0
	}
	if cycle > c.lastCmp {
		c.lastCmp = cycle
	}
	c.redo = true
}

// Exec implements Core.
func (c *InOrderCore) Exec(in *isa.Inst, owner cache.Owner) {
	start := c.now
	if c.slot >= c.cfg.IssueWidth {
		start++
		c.slot = 0
	}
	// In-order: any dependence on the previous instruction stalls to its
	// completion; loads always block (no overlap in this mode).
	if in.Dep != 0 || in.Dep2 != 0 {
		if c.lastCmp > start {
			start = c.lastCmp
			c.slot = 0
		}
	}
	// Fetch.
	line := in.PC &^ 63
	if c.redo || line != c.line {
		c.line = line
		c.redo = false
		if c.mem != nil {
			f := c.mem.Fetch(in.PC, start, owner)
			if f > start {
				start, c.slot = f, 0
			}
		} else {
			start++
			c.slot = 0
		}
	}

	var done uint64
	switch in.Op {
	case isa.LOAD:
		if c.mem != nil {
			done = c.mem.Data(in.Addr, int(in.Size), start, false, owner)
		} else {
			done = start + 2
		}
		// Blocking load: the machine stalls until data returns.
		start = done
		c.slot = 0
	case isa.STORE:
		if c.mem != nil {
			c.mem.Data(in.Addr, int(in.Size), start, true, owner)
		}
		done = start + 1
	case isa.BRANCH:
		done = start + 1
		if !c.bp.Predict(in.PC, in.Taken) {
			done += uint64(c.cfg.MispredictCycles)
			start = done
			c.slot = 0
			c.redo = true
		} else if in.Taken {
			c.redo = true
		}
	case isa.SYSCALL, isa.IRET:
		done = start + uint64(c.cfg.ModeSwitchCycles)
		start = done
		c.slot = 0
		c.redo = true
	default:
		done = start + opLatency[in.Op]
	}
	if start > c.now {
		c.now, c.slot = start, 0
	}
	c.slot++
	c.lastCmp = done
	if done > c.now {
		// The in-order machine's committed time tracks the completing
		// instruction for multi-cycle ops.
		c.now, c.slot = done, 0
	}
	c.retired++
}

var _ Core = (*InOrderCore)(nil)
