package cpu

import (
	"fssim/internal/cache"
	"fssim/internal/isa"
	"fssim/internal/memsys"
)

// Config describes the processor core. DefaultConfig matches the paper's
// evaluation platform (§5.1): a 4GHz Pentium-4-class machine — 4-wide
// out-of-order issue, up to 3 instructions retired per cycle, 126 in-flight
// instructions, and a 10-cycle branch misprediction penalty.
type Config struct {
	FetchWidth       int
	IssueWidth       int
	RetireWidth      int
	ROBSize          int
	MispredictCycles int
	ModeSwitchCycles int // serialization cost of SYSCALL / IRET
	PredictorBits    uint
}

// DefaultConfig returns the paper's §5.1 core parameters.
func DefaultConfig() Config {
	return Config{
		FetchWidth:       4,
		IssueWidth:       4,
		RetireWidth:      3,
		ROBSize:          126,
		MispredictCycles: 10,
		ModeSwitchCycles: 40,
		PredictorBits:    12,
	}
}

// opLatency gives the execution latency (beyond memory) per opcode class.
var opLatency = [...]uint64{
	isa.NOP: 1, isa.ALU: 1, isa.MUL: 3, isa.DIV: 20, isa.FPU: 4, isa.FDIV: 24,
	isa.LOAD: 0, isa.STORE: 1, isa.BRANCH: 1, isa.SYSCALL: 1, isa.IRET: 1,
}

// Core is a processor timing model. Exec consumes one dynamic instruction;
// Now reports the cycle at which the most recent instruction committed.
type Core interface {
	// Exec runs one instruction attributed to owner (application or OS).
	Exec(in *isa.Inst, owner cache.Owner)
	// Now returns the current committed-time cycle counter.
	Now() uint64
	// Retired returns the number of committed instructions.
	Retired() uint64
	// SkipTo advances the clock to cycle (if ahead of Now) and squashes
	// in-flight state — used after fast-forwarded (predicted) OS services
	// and for idle-time advances.
	SkipTo(cycle uint64)
	// Predictor exposes the branch predictor for statistics.
	Predictor() *BranchPredictor
}

const histSize = 512 // completion-time history ring; must exceed max Dep (255) and ROB size

// OOOCore is a timestamp-based out-of-order superscalar model. Rather than
// simulating every pipeline structure cycle by cycle, it computes, per
// instruction, the cycle at which each pipeline event (fetch, dispatch,
// issue, complete, commit) occurs, subject to the structural constraints:
// fetch width and I-cache latency, ROB occupancy, issue width, operand
// readiness (dataflow through the Dep fields), memory latency with
// MSHR-limited overlap, in-order retirement at the retire width, and branch
// misprediction redirects. The committed-cycle clock this produces responds
// to cache geometry, latency, ILP, and branch behavior the way an
// event-driven OOO model does, at far lower simulation cost.
type OOOCore struct {
	cfg  Config
	mem  *memsys.Hierarchy // nil = ideal memory ("nocache" modes)
	bp   *BranchPredictor
	seq  uint64
	comp [histSize]uint64 // completion time by seq % histSize
	cmt  [histSize]uint64 // commit time by seq % histSize (ROB constraint)

	fetchCycle  uint64
	fetchCount  int // instructions fetched in fetchCycle
	fetchLine   uint64
	redirect    bool // next fetch must re-access the I-cache (taken branch/mispredict)
	dispCycle   uint64
	dispCount   int
	commitCycle uint64
	commitCount int
	lastCommit  uint64
	retired     uint64
}

// NewOOO returns an out-of-order core over mem (nil for ideal memory).
func NewOOO(cfg Config, mem *memsys.Hierarchy) *OOOCore {
	return &OOOCore{cfg: cfg, mem: mem, bp: NewBranchPredictor(cfg.PredictorBits)}
}

// Now returns the committed-time cycle counter.
func (c *OOOCore) Now() uint64 { return c.lastCommit }

// Retired returns committed instruction count.
func (c *OOOCore) Retired() uint64 { return c.retired }

// Predictor returns the branch predictor.
func (c *OOOCore) Predictor() *BranchPredictor { return c.bp }

// SkipTo implements Core.
func (c *OOOCore) SkipTo(cycle uint64) {
	if cycle < c.lastCommit {
		cycle = c.lastCommit
	}
	c.lastCommit = cycle
	c.commitCycle, c.commitCount = cycle, 0
	if c.fetchCycle < cycle {
		c.fetchCycle, c.fetchCount = cycle, 0
	}
	if c.dispCycle < cycle {
		c.dispCycle, c.dispCount = cycle, 0
	}
	// In-flight dataflow state is stale after a skip: make prior completion
	// times no later than the resume point.
	for i := range c.comp {
		if c.comp[i] > cycle {
			c.comp[i] = cycle
		}
		if c.cmt[i] > cycle {
			c.cmt[i] = cycle
		}
	}
	c.redirect = true
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Exec implements Core.
func (c *OOOCore) Exec(in *isa.Inst, owner cache.Owner) {
	cfg := &c.cfg
	c.seq++
	seq := c.seq

	// --- Fetch: width-limited; new cache line or redirect pays I-cache latency.
	line := in.PC &^ 63
	newLine := c.redirect || line != c.fetchLine
	c.fetchLine = line
	c.redirect = false
	if c.fetchCount >= cfg.FetchWidth {
		c.fetchCycle++
		c.fetchCount = 0
	}
	fetchReady := c.fetchCycle
	if newLine {
		if c.mem != nil {
			fetchReady = c.mem.Fetch(in.PC, c.fetchCycle, owner)
		} else {
			fetchReady = c.fetchCycle + 1
		}
		if fetchReady > c.fetchCycle {
			c.fetchCycle = fetchReady
			c.fetchCount = 0
		}
	}
	c.fetchCount++

	// --- Dispatch: in-order, width-limited, stalling while the ROB is full
	// (the instruction ROBSize ago must have committed before this one can
	// enter the window). Bandwidth is enforced here rather than at issue:
	// issue itself is out of order, so instructions may begin execution
	// earlier than previously-dispatched long-latency ones.
	dispatch := fetchReady
	if c.dispCount >= cfg.IssueWidth {
		c.dispCycle++
		c.dispCount = 0
	}
	if dispatch < c.dispCycle {
		dispatch = c.dispCycle
	}
	if seq > uint64(cfg.ROBSize) {
		if t := c.cmt[(seq-uint64(cfg.ROBSize))%histSize]; t > dispatch {
			dispatch = t
			// Backpressure propagates to fetch.
			if t > c.fetchCycle {
				c.fetchCycle, c.fetchCount = t, 1
			}
		}
	}
	if dispatch > c.dispCycle {
		c.dispCycle, c.dispCount = dispatch, 0
	}
	c.dispCount++

	// --- Operand readiness from the Dep distances; issue is out of order.
	issue := dispatch
	if in.Dep != 0 && uint64(in.Dep) < seq {
		issue = max64(issue, c.comp[(seq-uint64(in.Dep))%histSize])
	}
	if in.Dep2 != 0 && uint64(in.Dep2) < seq {
		issue = max64(issue, c.comp[(seq-uint64(in.Dep2))%histSize])
	}

	// --- Execute.
	var complete uint64
	switch in.Op {
	case isa.LOAD:
		if c.mem != nil {
			complete = c.mem.Data(in.Addr, int(in.Size), issue, false, owner)
		} else {
			complete = issue + 2
		}
	case isa.STORE:
		// Stores drain through the store buffer after retirement: the
		// cache-state update is charged no earlier than the current commit
		// point, so a burst of independent stores cannot flood the memory
		// system ahead of the loads pacing the window.
		if c.mem != nil {
			c.mem.Data(in.Addr, int(in.Size), max64(issue, c.lastCommit), true, owner)
		}
		complete = issue + opLatency[isa.STORE]
	case isa.BRANCH:
		complete = issue + opLatency[isa.BRANCH]
		correct := c.bp.Predict(in.PC, in.Taken)
		if !correct {
			// Redirect fetch after resolution.
			r := complete + uint64(cfg.MispredictCycles)
			if r > c.fetchCycle {
				c.fetchCycle, c.fetchCount = r, 0
			}
			c.redirect = true
		} else if in.Taken {
			c.redirect = true // new fetch line next instruction
		}
	case isa.SYSCALL, isa.IRET:
		// Serializing: drains the pipeline and flushes the front end.
		complete = max64(issue, c.lastCommit) + uint64(cfg.ModeSwitchCycles)
		if complete > c.fetchCycle {
			c.fetchCycle, c.fetchCount = complete, 0
		}
		c.redirect = true
	default:
		complete = issue + opLatency[in.Op]
	}
	c.comp[seq%histSize] = complete

	// --- Commit: in-order, retire-width limited.
	commit := complete
	if commit < c.commitCycle {
		commit = c.commitCycle
	}
	if commit == c.commitCycle && c.commitCount >= cfg.RetireWidth {
		commit++
	}
	if commit > c.commitCycle {
		c.commitCycle, c.commitCount = commit, 0
	}
	c.commitCount++
	c.cmt[seq%histSize] = commit
	c.lastCommit = commit
	c.retired++
}

var _ Core = (*OOOCore)(nil)
