package isa

import "testing"

func TestServiceNames(t *testing.T) {
	cases := []struct {
		svc  ServiceID
		want string
	}{
		{Sys(SysRead), "sys_read"},
		{Sys(SysWritev), "sys_writev"},
		{Sys(SysStat64), "sys_stat64"},
		{Sys(SysSocketcall), "sys_socketcall"},
		{Sys(SysIpc), "sys_ipc"},
		{Sys(999), "sys_999"},
		{Irq(IrqTimer), "Int_239"},
		{Irq(IrqNIC), "Int_121"},
		{Irq(IrqDisk), "Int_49"},
		{Exc(ExcPageFault), "exc_page_fault"},
		{Exc(42), "exc_42"},
	}
	for _, c := range cases {
		if got := c.svc.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.svc, got, c.want)
		}
	}
}

func TestLinuxSyscallNumbers(t *testing.T) {
	// Spot-check the i386 table numbers the paper's services map to.
	nums := map[string]uint16{
		"read": SysRead, "write": SysWrite, "open": SysOpen, "close": SysClose,
		"gettimeofday": SysGettimeofday, "socketcall": SysSocketcall,
		"ipc": SysIpc, "poll": SysPoll, "writev": SysWritev,
		"stat64": SysStat64, "fcntl64": SysFcntl64, "getdents64": SysGetdents64,
	}
	want := map[string]uint16{
		"read": 3, "write": 4, "open": 5, "close": 6, "gettimeofday": 78,
		"socketcall": 102, "ipc": 117, "poll": 168, "writev": 146,
		"stat64": 195, "fcntl64": 221, "getdents64": 220,
	}
	for name, n := range want {
		if nums[name] != n {
			t.Errorf("%s = %d, want %d (Linux 2.6 i386)", name, nums[name], n)
		}
	}
}

func TestServiceIDComparable(t *testing.T) {
	m := map[ServiceID]int{}
	m[Sys(SysRead)] = 1
	m[Irq(IrqTimer)] = 2
	if m[Sys(SysRead)] != 1 || m[Irq(IrqTimer)] != 2 {
		t.Fatal("ServiceID map semantics broken")
	}
	if Sys(3) != Sys(SysRead) {
		t.Fatal("equal service ids differ")
	}
	if Sys(49) == Irq(49) {
		t.Fatal("syscall 49 must differ from interrupt 49")
	}
}

func TestOpcodeString(t *testing.T) {
	if ALU.String() != "alu" || LOAD.String() != "load" || IRET.String() != "iret" {
		t.Error("opcode names wrong")
	}
	if Opcode(200).String() == "" {
		t.Error("unknown opcode should still render")
	}
}
