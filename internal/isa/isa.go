// Package isa defines the synthetic instruction set executed by the simulated
// machine: dynamic instruction records, opcodes, and OS service identifiers.
//
// The simulator is execution-driven: guest and kernel code emit dynamic
// instructions (with resolved effective addresses and branch outcomes) into the
// machine, which feeds them to the active backend (detailed timing model or
// fast emulation). There is no binary encoding; an Inst is the unit of work.
package isa

import "fmt"

// Opcode classifies a dynamic instruction. Timing models map opcodes to
// functional-unit latencies; LOAD/STORE additionally access the data cache
// hierarchy and BRANCH consults the branch predictor.
type Opcode uint8

const (
	NOP     Opcode = iota
	ALU            // integer add/sub/logic/compare, 1 cycle
	MUL            // integer multiply, 3 cycles
	DIV            // integer divide, 20 cycles, unpipelined
	FPU            // floating-point add/mul, 4 cycles
	FDIV           // floating-point divide/sqrt, 24 cycles, unpipelined
	LOAD           // memory read via L1D
	STORE          // memory write via L1D (write-back, allocate)
	BRANCH         // conditional or unconditional control transfer
	SYSCALL        // trap into kernel mode
	IRET           // return from kernel mode
	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	"nop", "alu", "mul", "div", "fpu", "fdiv", "load", "store", "branch", "syscall", "iret",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Inst is one dynamic instruction. PC is filled in by the machine's code
// cursor; Addr/Size are the resolved effective address and width for memory
// operations; Taken/Target describe the actual outcome of a BRANCH.
//
// Dep encodes data dependences compactly: this instruction's operands become
// ready when the instruction Dep slots earlier in program order completes
// (0 means no register dependence, i.e. operands are immediately ready).
// Dep2 optionally names a second, independent producer. This captures the
// dependence shapes that dominate timing — pointer chasing (Dep=1 on loads),
// reductions (dependent ALU chains), and parallel sweeps (Dep=0) — without
// carrying full register names through the pipeline model.
type Inst struct {
	PC     uint64
	Addr   uint64 // effective address (LOAD/STORE)
	Target uint64 // branch target (BRANCH)
	Op     Opcode
	Size   uint8 // access size in bytes (LOAD/STORE)
	Dep    uint8 // distance (in dynamic instructions) to first producer; 0 = none
	Dep2   uint8 // distance to second producer; 0 = none
	Taken  bool  // actual branch outcome (BRANCH)
}

// ServiceKind distinguishes the three sources of user→kernel mode switches.
type ServiceKind uint8

const (
	KindSyscall   ServiceKind = iota // synchronous, requested by the application
	KindInterrupt                    // asynchronous, external device
	KindException                    // synchronous fault (page fault, FP trap, ...)
	// KindApp is the pseudo-kind under which sampled application intervals
	// (user-mode stretches between OS services) are reported in traces and
	// phantom working sets. It never causes a real mode switch.
	KindApp
)

// ServiceID identifies an OS service type: a (kind, number) pair.
// Syscall numbers follow the Linux 2.6 i386 system-call table so that
// characterization output reads like the paper's (sys_read, sys_writev, ...);
// interrupt numbers are vector numbers (Int_239 = local APIC timer).
type ServiceID struct {
	Kind ServiceKind
	Num  uint16
}

// Sys returns the ServiceID for system call number n.
func Sys(n uint16) ServiceID { return ServiceID{KindSyscall, n} }

// Irq returns the ServiceID for interrupt vector n.
func Irq(n uint16) ServiceID { return ServiceID{KindInterrupt, n} }

// Exc returns the ServiceID for exception vector n.
func Exc(n uint16) ServiceID { return ServiceID{KindException, n} }

// App returns the pseudo ServiceID of application intervals (stratified
// sampling's trace spans and phantom working sets key off it).
func App() ServiceID { return ServiceID{KindApp, 0} }

// Linux 2.6 i386 system call numbers used by the simulated kernel.
const (
	SysExit         = 1
	SysFork         = 2
	SysRead         = 3
	SysWrite        = 4
	SysOpen         = 5
	SysClose        = 6
	SysWaitpid      = 7
	SysUnlink       = 10
	SysExecve       = 11
	SysChdir        = 12
	SysTime         = 13
	SysLseek        = 19
	SysGetpid       = 20
	SysAccess       = 33
	SysKill         = 37
	SysBrk          = 45
	SysIoctl        = 54
	SysFcntl        = 55
	SysGettimeofday = 78
	SysMmap         = 90
	SysMunmap       = 91
	SysSocketcall   = 102
	SysStat         = 106
	SysIpc          = 117
	SysClone        = 120
	SysUname        = 122
	SysMprotect     = 125
	SysLlseek       = 140
	SysGetdents     = 141
	SysSelect       = 142
	SysReadv        = 145
	SysWritev       = 146
	SysSchedYield   = 158
	SysNanosleep    = 162
	SysPoll         = 168
	SysRtSigaction  = 174
	SysGetcwd       = 183
	SysMmap2        = 192
	SysStat64       = 195
	SysLstat64      = 196
	SysFstat64      = 197
	SysGetdents64   = 220
	SysFcntl64      = 221
	SysFutex        = 240
	SysExitGroup    = 252
)

// Interrupt vectors used by the simulated machine.
const (
	IrqDisk  = 49  // block device completion
	IrqNIC   = 121 // network interface RX/TX
	IrqTimer = 239 // local APIC timer tick
)

// Exception vectors.
const (
	ExcPageFault = 14
	ExcFP        = 16
)

var sysNames = map[uint16]string{
	SysExit: "exit", SysFork: "fork", SysRead: "read", SysWrite: "write",
	SysOpen: "open", SysClose: "close", SysWaitpid: "waitpid", SysUnlink: "unlink",
	SysExecve: "execve", SysChdir: "chdir", SysTime: "time", SysLseek: "lseek",
	SysGetpid: "getpid", SysAccess: "access", SysKill: "kill", SysBrk: "brk",
	SysIoctl: "ioctl", SysFcntl: "fcntl", SysGettimeofday: "gettimeofday",
	SysMmap: "mmap", SysMunmap: "munmap", SysSocketcall: "socketcall",
	SysStat: "stat", SysIpc: "ipc", SysClone: "clone", SysUname: "uname",
	SysMprotect: "mprotect", SysLlseek: "llseek", SysGetdents: "getdents",
	SysSelect: "select", SysReadv: "readv", SysWritev: "writev",
	SysSchedYield: "sched_yield", SysNanosleep: "nanosleep", SysPoll: "poll",
	SysRtSigaction: "rt_sigaction", SysGetcwd: "getcwd", SysMmap2: "mmap2",
	SysStat64: "stat64", SysLstat64: "lstat64", SysFstat64: "fstat64",
	SysGetdents64: "getdents64", SysFcntl64: "fcntl64", SysFutex: "futex",
	SysExitGroup: "exit_group",
}

var excNames = map[uint16]string{
	ExcPageFault: "page_fault",
	ExcFP:        "fp_trap",
}

// String renders a ServiceID the way the paper labels services:
// "sys_read", "Int_239", "exc_page_fault".
func (s ServiceID) String() string {
	switch s.Kind {
	case KindSyscall:
		if n, ok := sysNames[s.Num]; ok {
			return "sys_" + n
		}
		return fmt.Sprintf("sys_%d", s.Num)
	case KindInterrupt:
		return fmt.Sprintf("Int_%d", s.Num)
	case KindApp:
		return "app"
	default:
		if n, ok := excNames[s.Num]; ok {
			return "exc_" + n
		}
		return fmt.Sprintf("exc_%d", s.Num)
	}
}
