// Package cache implements the set-associative cache model used for the L1
// instruction, L1 data, and unified L2 caches: LRU replacement, write-back
// write-allocate policy, per-line owner tagging (application vs OS), and the
// pollution-eviction primitive the predictor uses to model OS-induced
// displacement of application working sets (paper §4.5).
package cache

import (
	"fmt"
	"math/rand"
)

// Owner tags who filled a cache line. The accelerated simulator uses the tag
// to find application-owned victims when injecting predicted OS pollution.
type Owner uint8

const (
	OwnerApp Owner = iota
	OwnerOS
)

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int // total bytes
	Assoc      int // ways
	BlockSize  int // bytes per line
	HitLatency int // cycles
}

// Stats counts accesses and misses, split by the owner performing them.
type Stats struct {
	Accesses    uint64
	Misses      uint64
	OSAccesses  uint64
	OSMisses    uint64
	Writebacks  uint64
	Evictions   uint64
	PollutionEv uint64 // lines displaced by injected pollution
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns s - o component-wise; used to attribute deltas to an interval.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses: s.Accesses - o.Accesses, Misses: s.Misses - o.Misses,
		OSAccesses: s.OSAccesses - o.OSAccesses, OSMisses: s.OSMisses - o.OSMisses,
		Writebacks: s.Writebacks - o.Writebacks, Evictions: s.Evictions - o.Evictions,
		PollutionEv: s.PollutionEv - o.PollutionEv,
	}
}

// Add returns s + o component-wise.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Accesses: s.Accesses + o.Accesses, Misses: s.Misses + o.Misses,
		OSAccesses: s.OSAccesses + o.OSAccesses, OSMisses: s.OSMisses + o.OSMisses,
		Writebacks: s.Writebacks + o.Writebacks, Evictions: s.Evictions + o.Evictions,
		PollutionEv: s.PollutionEv + o.PollutionEv,
	}
}

// Line state is kept as a structure of arrays indexed by way slot
// (set*assoc + way): the tag scan — the hottest loop in a detailed run —
// then walks a dense uint64 array (an 8-way set's tags share one hardware
// cache line) instead of striding through 24-byte structs.
const (
	metaValid = 1 << iota
	metaDirty
	metaOS // owner bit: set = OwnerOS, clear = OwnerApp
)

// Cache is a single set-associative cache level.
type Cache struct {
	cfg      Config
	tags     []uint64 // block number per way slot
	lru      []uint64 // last-touch stamp; larger = more recent
	meta     []uint8  // metaValid | metaDirty | metaOS
	assoc    int
	numSets  int
	blkShift uint
	setMask  uint64
	stamp    uint64
	stats    Stats
}

func metaOwner(m uint8) Owner {
	if m&metaOS != 0 {
		return OwnerOS
	}
	return OwnerApp
}

func ownerMeta(o Owner) uint8 {
	if o == OwnerOS {
		return metaOS
	}
	return 0
}

// New builds a cache from cfg. Size, Assoc and BlockSize must describe a
// power-of-two number of sets.
func New(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic(fmt.Sprintf("cache %q: invalid config %+v", cfg.Name, cfg))
	}
	numSets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %q: sets=%d not a power of two", cfg.Name, numSets))
	}
	c := &Cache{cfg: cfg, assoc: cfg.Assoc, numSets: numSets, setMask: uint64(numSets - 1)}
	for s := 1; s < cfg.BlockSize; s <<= 1 {
		c.blkShift++
	}
	c.tags = make([]uint64, numSets*cfg.Assoc)
	c.lru = make([]uint64, numSets*cfg.Assoc)
	c.meta = make([]uint8, numSets*cfg.Assoc)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.blkShift << c.blkShift }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.blkShift
	return int(blk & c.setMask), blk >> 0 // full block number as tag (set bits redundant but harmless)
}

// AccessResult reports the outcome of one cache access.
type AccessResult struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced by the fill
	EvictedDirty bool   // ... and it was dirty (writeback to next level)
	EvictedAddr  uint64 // line address of the victim
}

// Access looks up addr, fills on miss (LRU victim), and returns the outcome.
// isWrite marks the line dirty; owner tags who performed the access; words
// is the number of word-granularity references the call represents (a 64B
// streaming touch is 8 word accesses but at most one miss), keeping miss
// *rates* comparable to per-reference statistics.
func (c *Cache) Access(addr uint64, words int, isWrite bool, owner Owner) AccessResult {
	if words < 1 {
		words = 1
	}
	c.stamp++
	c.stats.Accesses += uint64(words)
	if owner == OwnerOS {
		c.stats.OSAccesses += uint64(words)
	}
	set, tag := c.index(addr)
	base := set * c.assoc
	tags := c.tags[base : base+c.assoc]
	for i, t := range tags {
		if t == tag && c.meta[base+i]&metaValid != 0 {
			j := base + i
			c.lru[j] = c.stamp
			m := c.meta[j]&^metaOS | ownerMeta(owner)
			if isWrite {
				m |= metaDirty
			}
			c.meta[j] = m
			return AccessResult{Hit: true}
		}
	}
	// Miss: fill into invalid way or LRU victim. One fused pass: the first
	// invalid way wins outright; otherwise the earliest minimum-lru way does —
	// identical victim choice to separate invalid-then-LRU scans.
	c.stats.Misses++
	if owner == OwnerOS {
		c.stats.OSMisses++
	}
	lru := c.lru[base : base+c.assoc]
	victim, filled := 0, false
	for i := range tags {
		if c.meta[base+i]&metaValid == 0 {
			victim = i
			filled = true
			break
		}
		if lru[i] < lru[victim] {
			victim = i
		}
	}
	var res AccessResult
	j := base + victim
	if !filled {
		res.Evicted = true
		res.EvictedDirty = c.meta[j]&metaDirty != 0
		res.EvictedAddr = tags[victim] << c.blkShift
		c.stats.Evictions++
		if res.EvictedDirty {
			c.stats.Writebacks++
		}
	}
	tags[victim] = tag
	lru[victim] = c.stamp
	m := metaValid | ownerMeta(owner)
	if isWrite {
		m |= metaDirty
	}
	c.meta[j] = m
	return res
}

// Probe reports whether addr is present without disturbing LRU state or
// counters. Used by tests and by the warmup checker.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.assoc
	for i, t := range c.tags[base : base+c.assoc] {
		if t == tag && c.meta[base+i]&metaValid != 0 {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (TLB shootdown / flush semantics).
func (c *Cache) InvalidateAll() {
	clear(c.tags)
	clear(c.lru)
	clear(c.meta)
}

// Invalidate drops addr's line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.assoc
	for i, t := range c.tags[base : base+c.assoc] {
		j := base + i
		if t == tag && c.meta[j]&metaValid != 0 {
			d := c.meta[j]&metaDirty != 0
			c.tags[j], c.lru[j], c.meta[j] = 0, 0, 0
			return true, d
		}
	}
	return false, false
}

// Touch performs an uncounted fill of addr's line: a lookup that, on miss,
// installs the line over the LRU victim (preferring invalid ways) without
// perturbing the access/miss statistics. The pollution injector uses it to
// replay a fast-forwarded OS service's working set: the service's phantom
// lines compete for capacity like the real lines would have, but the
// predicted miss counts — which are accounted separately — are not
// double-counted.
func (c *Cache) Touch(addr uint64) {
	c.stamp++
	set, tag := c.index(addr)
	base := set * c.assoc
	tags := c.tags[base : base+c.assoc]
	for i, t := range tags {
		if t == tag && c.meta[base+i]&metaValid != 0 {
			c.lru[base+i] = c.stamp
			c.meta[base+i] |= metaOS
			return
		}
	}
	lru := c.lru[base : base+c.assoc]
	victim, filled := 0, false
	for i := range tags {
		if c.meta[base+i]&metaValid == 0 {
			victim = i
			filled = true
			break
		}
		if lru[i] < lru[victim] {
			victim = i
		}
	}
	if !filled {
		c.stats.PollutionEv++
	}
	tags[victim] = tag
	lru[victim] = c.stamp
	c.meta[base+victim] = metaValid | metaOS
}

// InjectPollution models the working-set displacement an OS service would
// have caused had it been simulated in detail (paper §4.5): it performs n
// victim selections over uniformly random sets, assuming OS pollution is
// uniformly distributed across sets. In each chosen set the victim
// preference order follows the paper: an invalid line first, then the valid
// least-recently-used line (regardless of owner — stale lines the OS itself
// left behind are displaced like any other), progressing to more recently
// used lines on later selections of the same set. The victim way is refilled
// with an OS-owned placeholder line so that subsequent accesses to the
// displaced data miss, as they would have after real OS execution.
func (c *Cache) InjectPollution(n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		c.stamp++
		set := rng.Intn(c.numSets)
		base := set * c.assoc
		lru := c.lru[base : base+c.assoc]
		victim, filled := 0, false
		// Invalid line first: pollution then consumes capacity without
		// displacing live data; otherwise the least-recently-used line, any
		// owner — stale lines the OS itself left behind are displaced like
		// any other.
		for w := range lru {
			if c.meta[base+w]&metaValid == 0 {
				victim = w
				filled = true
				break
			}
			if lru[w] < lru[victim] {
				victim = w
			}
		}
		if !filled {
			c.stats.PollutionEv++
		}
		// Placeholder tag outside any allocated region; unique per injection
		// so placeholder lines never alias real data.
		phantom := (uint64(0xF0000000_00000000) | c.stamp<<c.blkShift) >> c.blkShift
		c.tags[base+victim] = phantom
		lru[victim] = c.stamp
		c.meta[base+victim] = metaValid | metaOS
	}
}

// OwnedLines counts valid lines per owner; used by tests and diagnostics.
func (c *Cache) OwnedLines() (app, os int) {
	for _, m := range c.meta {
		if m&metaValid == 0 {
			continue
		}
		if metaOwner(m) == OwnerApp {
			app++
		} else {
			os++
		}
	}
	return
}
