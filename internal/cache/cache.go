// Package cache implements the set-associative cache model used for the L1
// instruction, L1 data, and unified L2 caches: LRU replacement, write-back
// write-allocate policy, per-line owner tagging (application vs OS), and the
// pollution-eviction primitive the predictor uses to model OS-induced
// displacement of application working sets (paper §4.5).
package cache

import (
	"fmt"
	"math/rand"
)

// Owner tags who filled a cache line. The accelerated simulator uses the tag
// to find application-owned victims when injecting predicted OS pollution.
type Owner uint8

const (
	OwnerApp Owner = iota
	OwnerOS
)

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int // total bytes
	Assoc      int // ways
	BlockSize  int // bytes per line
	HitLatency int // cycles
}

// Stats counts accesses and misses, split by the owner performing them.
type Stats struct {
	Accesses    uint64
	Misses      uint64
	OSAccesses  uint64
	OSMisses    uint64
	Writebacks  uint64
	Evictions   uint64
	PollutionEv uint64 // lines displaced by injected pollution
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns s - o component-wise; used to attribute deltas to an interval.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses: s.Accesses - o.Accesses, Misses: s.Misses - o.Misses,
		OSAccesses: s.OSAccesses - o.OSAccesses, OSMisses: s.OSMisses - o.OSMisses,
		Writebacks: s.Writebacks - o.Writebacks, Evictions: s.Evictions - o.Evictions,
		PollutionEv: s.PollutionEv - o.PollutionEv,
	}
}

// Add returns s + o component-wise.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Accesses: s.Accesses + o.Accesses, Misses: s.Misses + o.Misses,
		OSAccesses: s.OSAccesses + o.OSAccesses, OSMisses: s.OSMisses + o.OSMisses,
		Writebacks: s.Writebacks + o.Writebacks, Evictions: s.Evictions + o.Evictions,
		PollutionEv: s.PollutionEv + o.PollutionEv,
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	owner Owner
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  int
	blkShift uint
	setMask  uint64
	stamp    uint64
	stats    Stats
}

// New builds a cache from cfg. Size, Assoc and BlockSize must describe a
// power-of-two number of sets.
func New(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic(fmt.Sprintf("cache %q: invalid config %+v", cfg.Name, cfg))
	}
	numSets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %q: sets=%d not a power of two", cfg.Name, numSets))
	}
	c := &Cache{cfg: cfg, numSets: numSets, setMask: uint64(numSets - 1)}
	for s := 1; s < cfg.BlockSize; s <<= 1 {
		c.blkShift++
	}
	c.sets = make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.blkShift << c.blkShift }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.blkShift
	return int(blk & c.setMask), blk >> 0 // full block number as tag (set bits redundant but harmless)
}

// AccessResult reports the outcome of one cache access.
type AccessResult struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced by the fill
	EvictedDirty bool   // ... and it was dirty (writeback to next level)
	EvictedAddr  uint64 // line address of the victim
}

// Access looks up addr, fills on miss (LRU victim), and returns the outcome.
// isWrite marks the line dirty; owner tags who performed the access; words
// is the number of word-granularity references the call represents (a 64B
// streaming touch is 8 word accesses but at most one miss), keeping miss
// *rates* comparable to per-reference statistics.
func (c *Cache) Access(addr uint64, words int, isWrite bool, owner Owner) AccessResult {
	if words < 1 {
		words = 1
	}
	c.stamp++
	c.stats.Accesses += uint64(words)
	if owner == OwnerOS {
		c.stats.OSAccesses += uint64(words)
	}
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.stamp
			if isWrite {
				lines[i].dirty = true
			}
			lines[i].owner = owner
			return AccessResult{Hit: true}
		}
	}
	// Miss: fill into invalid way or LRU victim.
	c.stats.Misses++
	if owner == OwnerOS {
		c.stats.OSMisses++
	}
	victim := -1
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
	}
	var res AccessResult
	if victim < 0 {
		victim = 0
		for i := 1; i < len(lines); i++ {
			if lines[i].lru < lines[victim].lru {
				victim = i
			}
		}
		res.Evicted = true
		res.EvictedDirty = lines[victim].dirty
		res.EvictedAddr = lines[victim].tag << c.blkShift
		c.stats.Evictions++
		if res.EvictedDirty {
			c.stats.Writebacks++
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: isWrite, owner: owner, lru: c.stamp}
	return res
}

// Probe reports whether addr is present without disturbing LRU state or
// counters. Used by tests and by the warmup checker.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (TLB shootdown / flush semantics).
func (c *Cache) InvalidateAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Invalidate drops addr's line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			d := lines[i].dirty
			lines[i] = line{}
			return true, d
		}
	}
	return false, false
}

// Touch performs an uncounted fill of addr's line: a lookup that, on miss,
// installs the line over the LRU victim (preferring invalid ways) without
// perturbing the access/miss statistics. The pollution injector uses it to
// replay a fast-forwarded OS service's working set: the service's phantom
// lines compete for capacity like the real lines would have, but the
// predicted miss counts — which are accounted separately — are not
// double-counted.
func (c *Cache) Touch(addr uint64) {
	c.stamp++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.stamp
			lines[i].owner = OwnerOS
			return
		}
	}
	victim := -1
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(lines); i++ {
			if lines[i].lru < lines[victim].lru {
				victim = i
			}
		}
		c.stats.PollutionEv++
	}
	lines[victim] = line{tag: tag, valid: true, owner: OwnerOS, lru: c.stamp}
}

// InjectPollution models the working-set displacement an OS service would
// have caused had it been simulated in detail (paper §4.5): it performs n
// victim selections over uniformly random sets, assuming OS pollution is
// uniformly distributed across sets. In each chosen set the victim
// preference order follows the paper: an invalid line first, then the valid
// least-recently-used line (regardless of owner — stale lines the OS itself
// left behind are displaced like any other), progressing to more recently
// used lines on later selections of the same set. The victim way is refilled
// with an OS-owned placeholder line so that subsequent accesses to the
// displaced data miss, as they would have after real OS execution.
func (c *Cache) InjectPollution(n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		c.stamp++
		set := rng.Intn(c.numSets)
		lines := c.sets[set]
		victim := -1
		// Invalid line first: pollution then consumes capacity without
		// displacing live data.
		for w := range lines {
			if !lines[w].valid {
				victim = w
				break
			}
		}
		if victim < 0 {
			// Least-recently-used line, any owner.
			victim = 0
			for w := 1; w < len(lines); w++ {
				if lines[w].lru < lines[victim].lru {
					victim = w
				}
			}
		}
		if lines[victim].valid {
			c.stats.PollutionEv++
		}
		// Placeholder tag outside any allocated region; unique per injection
		// so placeholder lines never alias real data.
		phantom := (uint64(0xF0000000_00000000) | c.stamp<<c.blkShift) >> c.blkShift
		lines[victim] = line{tag: phantom, valid: true, owner: OwnerOS, lru: c.stamp}
	}
}

// OwnedLines counts valid lines per owner; used by tests and diagnostics.
func (c *Cache) OwnedLines() (app, os int) {
	for _, set := range c.sets {
		for _, ln := range set {
			if !ln.valid {
				continue
			}
			if ln.owner == OwnerApp {
				app++
			} else {
				os++
			}
		}
	}
	return
}
