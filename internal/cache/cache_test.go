package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCache() *Cache {
	return New(Config{Name: "t", Size: 4096, Assoc: 4, BlockSize: 64, HitLatency: 1})
}

func TestMissThenHit(t *testing.T) {
	c := testCache()
	if r := c.Access(0x1000, 1, false, OwnerApp); r.Hit {
		t.Fatal("cold access should miss")
	}
	if r := c.Access(0x1000, 1, false, OwnerApp); !r.Hit {
		t.Fatal("second access should hit")
	}
	if r := c.Access(0x1030, 1, false, OwnerApp); !r.Hit {
		t.Fatal("same-line access should hit")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWordCounting(t *testing.T) {
	c := testCache()
	c.Access(0x2000, 8, false, OwnerApp) // one 64B streaming touch
	st := c.Stats()
	if st.Accesses != 8 || st.Misses != 1 {
		t.Fatalf("want 8 accesses / 1 miss, got %+v", st)
	}
	if mr := st.MissRate(); mr != 0.125 {
		t.Fatalf("miss rate = %v", mr)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := testCache() // 16 sets, 4 ways
	// Five lines mapping to the same set (stride = sets*block = 1024).
	base := uint64(0x8000)
	for i := uint64(0); i < 4; i++ {
		c.Access(base+i*1024, 1, false, OwnerApp)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Access(base, 1, false, OwnerApp)
	r := c.Access(base+4*1024, 1, false, OwnerApp) // evicts line 1
	if !r.Evicted || r.EvictedAddr != base+1024 {
		t.Fatalf("expected eviction of %#x, got %+v", base+1024, r)
	}
	if !c.Probe(base) {
		t.Error("recently used line evicted")
	}
	if c.Probe(base + 1024) {
		t.Error("LRU line still present")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := testCache()
	base := uint64(0x8000)
	c.Access(base, 1, true, OwnerApp) // dirty
	for i := uint64(1); i <= 4; i++ {
		c.Access(base+i*1024, 1, false, OwnerApp)
	}
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("want 1 writeback, got %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache()
	c.Access(0x40, 1, true, OwnerOS)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v, %v)", present, dirty)
	}
	if c.Probe(0x40) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestOwnerTracking(t *testing.T) {
	c := testCache()
	c.Access(0x100, 1, false, OwnerApp)
	c.Access(0x200, 1, false, OwnerOS)
	app, os := c.OwnedLines()
	if app != 1 || os != 1 {
		t.Fatalf("owned = (%d, %d)", app, os)
	}
	// Re-access by the other owner re-tags.
	c.Access(0x100, 1, false, OwnerOS)
	app, os = c.OwnedLines()
	if app != 0 || os != 2 {
		t.Fatalf("after re-tag owned = (%d, %d)", app, os)
	}
}

func TestInjectPollutionDisplacesApp(t *testing.T) {
	c := testCache()
	// Fill the whole cache with app lines.
	for i := uint64(0); i < 64; i++ {
		c.Access(0x10000+i*64, 1, false, OwnerApp)
	}
	rng := rand.New(rand.NewSource(1))
	c.InjectPollution(64, rng)
	app, os := c.OwnedLines()
	if os == 0 {
		t.Fatal("pollution installed no OS lines")
	}
	if app == 64 {
		t.Fatal("pollution displaced nothing")
	}
	if ev := c.Stats().PollutionEv; ev == 0 {
		t.Fatal("pollution eviction counter not incremented")
	}
}

// TestInjectPollutionPrefersInvalid checks that pollution consumes empty
// ways before displacing live lines (paper §4.5's victim order).
func TestInjectPollutionPrefersInvalid(t *testing.T) {
	c := testCache()
	c.Access(0x40, 1, false, OwnerApp) // one line in one set
	rng := rand.New(rand.NewSource(2))
	c.InjectPollution(48, rng) // fewer injections than empty ways
	if !c.Probe(0x40) {
		// With 63 invalid ways and 48 injections, displacing the only live
		// line means invalid ways were not preferred.
		t.Error("live line displaced while invalid ways remained")
	}
}

// TestPollutionPhantomsDontAlias checks pollution placeholder lines never
// match real addresses.
func TestPollutionPhantomsDontAlias(t *testing.T) {
	c := testCache()
	rng := rand.New(rand.NewSource(3))
	c.InjectPollution(256, rng)
	misses := c.Stats().Misses
	for i := uint64(0); i < 64; i++ {
		c.Access(0x20000+i*64, 1, false, OwnerApp)
	}
	if got := c.Stats().Misses - misses; got != 64 {
		t.Errorf("fresh lines after pollution: want 64 misses, got %d", got)
	}
}

// TestCacheInclusionProperty property-checks a basic invariant: immediately
// re-accessing any address hits, regardless of history.
func TestRepeatAccessAlwaysHits(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := testCache()
		for i := 0; i < int(ops)+10; i++ {
			addr := uint64(rng.Intn(1 << 20))
			c.Access(addr, 1, rng.Intn(2) == 0, OwnerApp)
			if r := c.Access(addr, 1, false, OwnerApp); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStatsConservation property-checks counter consistency: misses never
// exceed accesses; evictions never exceed misses; valid lines <= capacity.
func TestStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := testCache()
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(64<<10))&^7, 1+rng.Intn(8), rng.Intn(3) == 0, Owner(rng.Intn(2)))
		}
		st := c.Stats()
		app, os := c.OwnedLines()
		return st.Misses <= st.Accesses &&
			st.Evictions <= st.Misses &&
			st.Writebacks <= st.Evictions &&
			app+os <= 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count should panic")
		}
	}()
	New(Config{Name: "bad", Size: 3000, Assoc: 3, BlockSize: 64})
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Accesses: 10, Misses: 4, Writebacks: 1, Evictions: 2}
	b := Stats{Accesses: 3, Misses: 1, Writebacks: 0, Evictions: 1}
	d := a.Sub(b)
	if d.Accesses != 7 || d.Misses != 3 || d.Evictions != 1 {
		t.Errorf("sub = %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Errorf("add(sub) != original: %+v", s)
	}
}
