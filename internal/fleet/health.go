package fleet

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"fssim/internal/trace"
)

// HealthConfig tunes backend health tracking and the active probe loop.
type HealthConfig struct {
	// FailThreshold ejects a backend after this many consecutive failures
	// (probe or traffic). Default 3.
	FailThreshold int
	// RecoverThreshold readmits an ejected backend after this many
	// consecutive successes. Default 2.
	RecoverThreshold int
	// Window is the per-backend outcome ring consulted for outlier ejection:
	// a backend whose windowed failure rate reaches EjectRate is ejected even
	// if its failures never run consecutively. Default 20.
	Window int
	// EjectRate is the windowed failure-rate ejection threshold in (0, 1].
	// Default 0.5.
	EjectRate float64
	// Interval is the active probe period (jittered ±25%). Default 1s.
	Interval time.Duration
	// Probe checks one backend, typically a /readyz fetch: nil error means
	// the backend is admitting work (a draining or erroring node fails).
	Probe func(ctx context.Context, backend string) error
}

func (c HealthConfig) normalized() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.EjectRate <= 0 || c.EjectRate > 1 {
		c.EjectRate = 0.5
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	return c
}

// Health tracks per-backend availability from two evidence streams — active
// /readyz probes and passive traffic outcomes the router reports — and
// decides ejection. Ejection is sticky: an ejected backend keeps its ring
// arc but is skipped by routing until RecoverThreshold consecutive successes
// (normally from the probe loop, which keeps probing ejected backends)
// readmit it. All methods are safe for concurrent use.
type Health struct {
	cfg HealthConfig

	mu     sync.Mutex
	states map[string]*backendState

	mEjections  *trace.Counter
	mReadmits   *trace.Counter
	mProbeFails *trace.Counter
	gHealthy    *trace.Gauge
}

type backendState struct {
	ejected    bool
	consecFail int
	consecOK   int
	// Outcome ring for outlier ejection: true = failure.
	win    []bool
	wpos   int
	wlen   int
	wfails int
}

// NewHealth builds a tracker for the given backends, registering its
// fleet.backend.* instruments on reg (nil is fine: instruments no-op).
func NewHealth(cfg HealthConfig, reg *trace.Registry, backends ...string) *Health {
	cfg = cfg.normalized()
	h := &Health{
		cfg:         cfg,
		states:      make(map[string]*backendState, len(backends)),
		mEjections:  reg.Counter("fleet.backend.ejections"),
		mReadmits:   reg.Counter("fleet.backend.readmissions"),
		mProbeFails: reg.Counter("fleet.backend.probe_failures"),
		gHealthy:    reg.Gauge("fleet.backend.healthy"),
	}
	for _, b := range backends {
		h.states[b] = &backendState{win: make([]bool, cfg.Window)}
	}
	h.gHealthy.Set(int64(len(h.states)))
	return h
}

// ReportOK records one successful interaction with the backend.
func (h *Health) ReportOK(backend string) { h.report(backend, false) }

// ReportFail records one failed interaction (connect error, 5xx, deadline,
// or failed probe) with the backend.
func (h *Health) ReportFail(backend string) { h.report(backend, true) }

func (h *Health) report(backend string, failed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[backend]
	if st == nil {
		return // not a configured backend
	}
	// Slide the outcome window.
	if st.wlen == len(st.win) {
		if st.win[st.wpos] {
			st.wfails--
		}
	} else {
		st.wlen++
	}
	st.win[st.wpos] = failed
	if failed {
		st.wfails++
	}
	st.wpos = (st.wpos + 1) % len(st.win)

	if failed {
		st.consecFail++
		st.consecOK = 0
		h.mProbeFails.Add(1)
		if !st.ejected && h.isOutlierLocked(st) {
			st.ejected = true
			h.mEjections.Add(1)
			h.updateHealthyGaugeLocked()
		}
		return
	}
	st.consecOK++
	st.consecFail = 0
	if st.ejected && st.consecOK >= h.cfg.RecoverThreshold {
		st.ejected = false
		// A readmitted backend starts with a clean window: its ejected-era
		// failures must not immediately re-eject it.
		st.wlen, st.wpos, st.wfails = 0, 0, 0
		h.mReadmits.Add(1)
		h.updateHealthyGaugeLocked()
	}
}

// isOutlierLocked is the ejection decision: a run of consecutive failures,
// or a windowed failure rate at/above EjectRate once the window has enough
// evidence (half full) to call the backend an outlier rather than unlucky.
func (h *Health) isOutlierLocked(st *backendState) bool {
	if st.consecFail >= h.cfg.FailThreshold {
		return true
	}
	if st.wlen*2 >= h.cfg.Window &&
		float64(st.wfails) >= h.cfg.EjectRate*float64(st.wlen) {
		return true
	}
	return false
}

func (h *Health) updateHealthyGaugeLocked() {
	n := 0
	for _, st := range h.states {
		if !st.ejected {
			n++
		}
	}
	h.gHealthy.Set(int64(n))
}

// Healthy reports whether the backend is currently admitted by routing.
func (h *Health) Healthy(backend string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[backend]
	return st != nil && !st.ejected
}

// HealthyCount returns how many backends are currently admitted.
func (h *Health) HealthyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.states {
		if !st.ejected {
			n++
		}
	}
	return n
}

// Snapshot returns each backend's admitted/ejected state, for status bodies.
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.states))
	for b, st := range h.states {
		out[b] = !st.ejected
	}
	return out
}

// ProbeAll actively probes every backend once (including ejected ones — the
// probe loop is how they earn readmission) and reports the outcomes.
func (h *Health) ProbeAll(ctx context.Context) {
	if h.cfg.Probe == nil {
		return
	}
	h.mu.Lock()
	backends := make([]string, 0, len(h.states))
	for b := range h.states {
		backends = append(backends, b)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.cfg.Interval)
			defer cancel()
			if err := h.cfg.Probe(pctx, b); err != nil {
				h.ReportFail(b)
			} else {
				h.ReportOK(b)
			}
		}(b)
	}
	wg.Wait()
}

// Run probes all backends every Interval (jittered ±25% so a fleet of
// routers does not synchronize its probes) until ctx is canceled.
func (h *Health) Run(ctx context.Context) {
	for {
		h.ProbeAll(ctx)
		jitter := time.Duration((rand.Float64() - 0.5) * 0.5 * float64(h.cfg.Interval))
		select {
		case <-time.After(h.cfg.Interval + jitter):
		case <-ctx.Done():
			return
		}
	}
}
