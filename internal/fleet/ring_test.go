package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnerDeterministicAndStable(t *testing.T) {
	a := NewRing(0, "http://n1", "http://n2", "http://n3")
	b := NewRing(0, "http://n3", "http://n1", "http://n2", "http://n2") // order + dupes irrelevant
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("ring sizes = %d, %d, want 3", a.Len(), b.Len())
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("r%016x", i*7919)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner differs across construction orders (%s vs %s)", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSequenceDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(0, "http://n1", "http://n2", "http://n3")
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("key %s: sequence length %d, want 3", k, len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Errorf("key %s: sequence[0] = %s, owner = %s", k, seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %s: duplicate node %s in sequence %v", k, n, seq)
			}
			seen[n] = true
		}
	}
	if got := r.Sequence("k", 10); len(got) != 3 {
		t.Errorf("over-asking returned %d nodes, want 3", len(got))
	}
	if got := r.Sequence("k", 0); got != nil {
		t.Errorf("n=0 returned %v, want nil", got)
	}
}

// TestRingBalance: with DefaultReplicas virtual points, three nodes each own
// a sane share of the keyspace (no node starved or dominant).
func TestRingBalance(t *testing.T) {
	r := NewRing(0, "http://n1", "http://n2", "http://n3")
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("r%016x", i))]++
	}
	for n, c := range counts {
		share := float64(c) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, want a sane share (counts %v)", n, 100*share, counts)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property the failover
// design depends on: removing one member only moves the keys it owned.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing(0, "http://n1", "http://n2", "http://n3")
	reduced := NewRing(0, "http://n1", "http://n2")
	moved := 0
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("r%016x", i)
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != "http://n3" && before != after {
			t.Fatalf("key %s moved from surviving node %s to %s", k, before, after)
		}
		if before == "http://n3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed node; balance test should have caught this")
	}
}

// TestRingFailoverMatchesReducedRing: the Sequence-based failover target for
// a dead node's keys is (statistically) the node a ring without that member
// would pick — i.e. skipping at lookup equals removal, without reshuffling
// survivors.
func TestRingFailoverMatchesReducedRing(t *testing.T) {
	full := NewRing(0, "http://n1", "http://n2", "http://n3")
	reduced := NewRing(0, "http://n1", "http://n2")
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("r%016x", i)
		seq := full.Sequence(k, 3)
		// Simulate n3 ejected: first non-n3 entry is the failover target.
		var target string
		for _, n := range seq {
			if n != "http://n3" {
				target = n
				break
			}
		}
		if target != reduced.Owner(k) {
			t.Fatalf("key %s: skip-based target %s != reduced-ring owner %s", k, target, reduced.Owner(k))
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if r.Owner("k") != "" || r.Sequence("k", 2) != nil || r.Len() != 0 {
		t.Error("empty ring should own nothing")
	}
	if got := NewRing(0, "a", "b").Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Nodes() = %v", got)
	}
}
