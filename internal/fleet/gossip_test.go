package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/pltstore"
	"fssim/internal/server"
	"fssim/internal/trace"
)

// gossipState drives an accelerator through a deterministic mixed workload
// via its public sink interface, so the exported state populates every
// snapshot field — the same shape pltstore's own tests use.
func gossipState() *core.AccelState {
	p := core.DefaultParams()
	p.LearnWindow = 12
	p.WarmupSkip = 2
	a := core.NewAccelerator(p)
	svcs := []isa.ServiceID{isa.Sys(isa.SysRead), isa.Sys(isa.SysWrite), isa.Sys(isa.SysOpen)}
	bases := []uint64{1000, 4000, 250}
	for step := 0; step < 400; step++ {
		i := step % len(svcs)
		insts := bases[i] + uint64(step%7)
		svc := svcs[i]
		sig := machine.Signature{Insts: insts, Loads: insts / 4, Stores: insts / 8, Branches: insts / 5}
		detailed, _ := a.OnServiceStart(svc)
		if detailed {
			a.OnServiceEnd(svc, sig, &machine.Measurement{Insts: insts, Cycles: insts * 5})
		} else {
			a.OnServiceEnd(svc, sig, nil)
		}
	}
	return a.Export()
}

// gossipSnapshot builds a valid snapshot for bench, returning it and its
// encoded bytes.
func gossipSnapshot(bench string) (*pltstore.Snapshot, []byte) {
	st := gossipState()
	lh := pltstore.LearnHash(bench, machine.Config{}, st.Params, 0.1, "")
	key := bench + "/accel/L2=1048576/scale=0.1"
	snap := &pltstore.Snapshot{
		LearnHash:  lh,
		ReplayHash: pltstore.ReplayHash(lh, key, 42),
		Benchmark:  bench,
		Key:        key,
		Stats:      machine.Stats{Cycles: 1000, Insts: 900, Intervals: 42},
		State:      st,
	}
	return snap, pltstore.Encode(snap)
}

// TestGossipSpreadsVerifiedSnapshots: a cold node pulls a warm peer's
// snapshots through the real server endpoints, verifies them, and lands
// byte-identical files — the fleet-wide warm-start path.
func TestGossipSpreadsVerifiedSnapshots(t *testing.T) {
	warmDir := t.TempDir()
	warmStore := pltstore.Open(warmDir)
	var want [][]byte
	for _, bench := range []string{"fleet-g1", "fleet-g2"} {
		snap, data := gossipSnapshot(bench)
		if _, err := warmStore.PutVerified(bench, snap.LearnHash, data); err != nil {
			t.Fatalf("seeding peer store: %v", err)
		}
		want = append(want, data)
	}
	peer := httptest.NewServer(server.New(server.Config{WarmDir: warmDir}).Handler())
	t.Cleanup(peer.Close)

	coldDir := t.TempDir()
	cold := pltstore.Open(coldDir)
	reg := trace.NewRegistry()
	g, err := NewGossiper(GossipConfig{Peers: []string{peer.URL}}, cold, reg)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Cycle(context.Background()); n != 2 {
		t.Fatalf("first cycle imported %d snapshots, want 2", n)
	}
	idx, err := cold.Index()
	if err != nil || len(idx) != 2 {
		t.Fatalf("cold index = %v (%v), want 2 valid entries", idx, err)
	}
	for i, e := range idx {
		h, _ := pltstore.ParseHash(e.LearnHash)
		got, rerr := os.ReadFile(cold.Path(e.Benchmark, h))
		if rerr != nil || !bytes.Equal(got, want[i]) {
			t.Errorf("imported %s is not byte-identical to the peer's copy (err %v)", e.Addr(), rerr)
		}
	}
	if g.mRejected.Value() != 0 || g.QuarantineLen() != 0 {
		t.Errorf("clean gossip rejected %d / quarantined %d, want 0/0",
			g.mRejected.Value(), g.QuarantineLen())
	}
	// A second cycle is a no-op: everything is already local.
	if n := g.Cycle(context.Background()); n != 0 {
		t.Errorf("second cycle imported %d, want 0", n)
	}
}

// hostilePeer serves a scripted index and scripted snapshot bodies, counting
// every fetch per address.
type hostilePeer struct {
	srv    *httptest.Server
	index  []pltstore.IndexEntry
	bodies map[string][]byte // "bench/hash" -> served bytes

	mu      sync.Mutex
	fetches map[string]int
}

func newHostilePeer(t *testing.T) *hostilePeer {
	t.Helper()
	p := &hostilePeer{bodies: map[string][]byte{}, fetches: map[string]int{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plt", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Snapshots []pltstore.IndexEntry `json:"snapshots"`
		}{p.index})
	})
	mux.HandleFunc("GET /v1/plt/{benchmark}/{hash}", func(w http.ResponseWriter, r *http.Request) {
		addr := r.PathValue("benchmark") + "/" + r.PathValue("hash")
		p.mu.Lock()
		p.fetches[addr]++
		p.mu.Unlock()
		body, ok := p.bodies[addr]
		if !ok {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(body)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *hostilePeer) fetchCount(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fetches[addr]
}

// TestGossipRejectsHostileInputs is the hostile-input battery: a truncated
// snapshot, a flipped checksum byte, a LearnHash-incompatible snapshot, an
// oversize body, and malformed advertisements. None may be installed, each
// is counted on fleet.gossip.rejected, and each bad object is fetched at
// most once (quarantine).
func TestGossipRejectsHostileInputs(t *testing.T) {
	peer := newHostilePeer(t)

	// Malformed advertisements: rejected before any fetch happens.
	peer.index = append(peer.index,
		pltstore.IndexEntry{Benchmark: "h-badhash", LearnHash: "zzz", Size: 100},
		pltstore.IndexEntry{Benchmark: "h-toolarge", LearnHash: pltstore.FormatHash(1), Size: pltstore.MaxSnapshotBytes + 1},
	)

	// Truncated bytes under a truthful address.
	snapT, dataT := gossipSnapshot("h-trunc")
	addrT := "h-trunc/" + pltstore.FormatHash(snapT.LearnHash)
	peer.bodies[addrT] = dataT[:len(dataT)-10]
	peer.index = append(peer.index, pltstore.IndexEntry{
		Benchmark: "h-trunc", LearnHash: pltstore.FormatHash(snapT.LearnHash), Size: int64(len(dataT) - 10)})

	// One flipped byte: the checksum-first decode must catch it.
	snapF, dataF := gossipSnapshot("h-flip")
	corrupt := append([]byte(nil), dataF...)
	corrupt[len(corrupt)/2] ^= 0x40
	addrF := "h-flip/" + pltstore.FormatHash(snapF.LearnHash)
	peer.bodies[addrF] = corrupt
	peer.index = append(peer.index, pltstore.IndexEntry{
		Benchmark: "h-flip", LearnHash: pltstore.FormatHash(snapF.LearnHash), Size: int64(len(corrupt))})

	// A perfectly valid snapshot advertised under a different LearnHash — a
	// config-incompatible table must never be installed under a compatible
	// address.
	snapW, dataW := gossipSnapshot("h-wrongaddr")
	wrongHash := pltstore.FormatHash(snapW.LearnHash + 1)
	addrW := "h-wrongaddr/" + wrongHash
	peer.bodies[addrW] = dataW
	peer.index = append(peer.index, pltstore.IndexEntry{
		Benchmark: "h-wrongaddr", LearnHash: wrongHash, Size: int64(len(dataW))})

	// Advertised small, served enormous: the size cap must trip mid-fetch.
	snapO, _ := gossipSnapshot("h-oversize")
	addrO := "h-oversize/" + pltstore.FormatHash(snapO.LearnHash)
	peer.bodies[addrO] = bytes.Repeat([]byte{0xF5}, pltstore.MaxSnapshotBytes+1)
	peer.index = append(peer.index, pltstore.IndexEntry{
		Benchmark: "h-oversize", LearnHash: pltstore.FormatHash(snapO.LearnHash), Size: 4096})

	coldDir := t.TempDir()
	cold := pltstore.Open(coldDir)
	g, err := NewGossiper(GossipConfig{Peers: []string{peer.srv.URL}}, cold, trace.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n := g.Cycle(context.Background()); n != 0 {
			t.Fatalf("cycle %d imported %d hostile snapshots", i, n)
		}
	}

	if idx, _ := cold.Index(); len(idx) != 0 {
		t.Fatalf("hostile bytes were installed: %v", idx)
	}
	if entries, _ := os.ReadDir(coldDir); len(entries) != 0 {
		t.Fatalf("hostile bytes left files behind: %v", entries)
	}
	if got := g.mRejected.Value(); got != 6 {
		t.Errorf("fleet.gossip.rejected = %d, want 6 (4 fetched + 2 malformed adverts)", got)
	}
	if got := g.QuarantineLen(); got != 6 {
		t.Errorf("quarantine population = %d, want 6", got)
	}
	for _, addr := range []string{addrT, addrF, addrW, addrO} {
		if n := peer.fetchCount(addr); n != 1 {
			t.Errorf("hostile object %s fetched %d times across 3 cycles, want exactly 1 (quarantine)", addr, n)
		}
		if !g.Quarantined(peer.srv.URL, addr) {
			t.Errorf("%s not quarantined", addr)
		}
	}
}

// TestGossipCorruptPeerDoesNotPoisonGoodAddress: quarantine is per (peer,
// object) — a corrupt peer serving garbage at an address does not stop the
// node from importing the good copy another peer holds, and the corrupt
// bytes are never installed.
func TestGossipCorruptPeerDoesNotPoisonGoodAddress(t *testing.T) {
	snap, data := gossipSnapshot("fleet-dual")
	hash := pltstore.FormatHash(snap.LearnHash)
	addr := "fleet-dual/" + hash
	entry := pltstore.IndexEntry{Benchmark: "fleet-dual", LearnHash: hash, Size: int64(len(data))}

	corruptPeer := newHostilePeer(t)
	bad := append([]byte(nil), data...)
	bad[10] ^= 0x01
	corruptPeer.bodies[addr] = bad
	corruptPeer.index = []pltstore.IndexEntry{entry}

	goodPeer := newHostilePeer(t)
	goodPeer.bodies[addr] = data
	goodPeer.index = []pltstore.IndexEntry{entry}

	cold := pltstore.Open(t.TempDir())
	// Corrupt peer listed first: it is tried, rejected, quarantined — and
	// then the good peer supplies the same address.
	g, err := NewGossiper(GossipConfig{
		Peers: []string{corruptPeer.srv.URL, goodPeer.srv.URL},
	}, cold, trace.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Cycle(context.Background()); n != 1 {
		t.Fatalf("imported %d, want 1 (the good copy)", n)
	}
	got, err := os.ReadFile(cold.Path("fleet-dual", snap.LearnHash))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("installed bytes are not the good peer's copy (err %v)", err)
	}
	if g.mRejected.Value() != 1 || !g.Quarantined(corruptPeer.srv.URL, addr) {
		t.Errorf("corrupt peer: rejected=%d quarantined=%v, want 1/true",
			g.mRejected.Value(), g.Quarantined(corruptPeer.srv.URL, addr))
	}
	if g.Quarantined(goodPeer.srv.URL, addr) {
		t.Error("good peer was quarantined")
	}
}
