package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fssim/internal/kernel"
	"fssim/internal/server"
	"fssim/internal/trace"
	"fssim/internal/workload"
)

// fleet-ok is the hidden benchmark fleet tests simulate: small and
// well-behaved, invisible to real experiments.
func init() {
	workload.Register(workload.Benchmark{
		Name: "fleet-ok", Hidden: true,
		Description: "small well-behaved fleet-test workload",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("ok", func(p *kernel.Proc) { p.U.Mix(20_000) })
	})
}

// fakeBackend is a scriptable fssimd stand-in: it serves a constant run body
// (so byte-identity holds across backends) and can be flipped into failure.
type fakeBackend struct {
	srv      *httptest.Server
	served   atomic.Int64
	failWith atomic.Int64 // 0 = healthy; else that HTTP status
}

func newFakeBackend(t *testing.T, body string) *fakeBackend {
	t.Helper()
	b := &fakeBackend{}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if code := b.failWith.Load(); code != 0 {
			http.Error(w, `{"error":"scripted failure"}`, int(code))
			return
		}
		b.served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, body)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func alwaysHealthy(context.Context, string) error { return nil }

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.Health.Probe == nil {
		cfg.Health.Probe = alwaysHealthy
	}
	rt, err := NewRouter(cfg, trace.NewRegistry())
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

func submitBody() string {
	return `{"benchmark":"fleet-ok","mode":"full","scale":0.1,"seed":7}`
}

func postRun(t *testing.T, rt *Router, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(body))
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRouterShardsConsistently: identical submits land on one backend (its
// shard), and the placement is the ring's.
func TestRouterShardsConsistently(t *testing.T) {
	bks := []*fakeBackend{
		newFakeBackend(t, `{"id":"r1"}`),
		newFakeBackend(t, `{"id":"r1"}`),
		newFakeBackend(t, `{"id":"r1"}`),
	}
	urls := []string{bks[0].srv.URL, bks[1].srv.URL, bks[2].srv.URL}
	rt := newTestRouter(t, RouterConfig{Backends: urls})

	for i := 0; i < 4; i++ {
		rec := postRun(t, rt, submitBody())
		if rec.Code != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Fssim-Fleet"); got != "routed" {
			t.Errorf("X-Fssim-Fleet = %q, want routed", got)
		}
	}
	total, nonzero := int64(0), 0
	for _, b := range bks {
		n := b.served.Load()
		total += n
		if n > 0 {
			nonzero++
		}
	}
	if total != 4 || nonzero != 1 {
		t.Fatalf("4 identical submits hit %d backends (%d requests total), want exactly 1",
			nonzero, total)
	}
}

// TestRouterFailoverOn5xx: the home backend turning 500 moves the request to
// the next ring node; the client still sees 200.
func TestRouterFailoverOn5xx(t *testing.T) {
	bks := []*fakeBackend{
		newFakeBackend(t, `{"id":"r1"}`),
		newFakeBackend(t, `{"id":"r1"}`),
		newFakeBackend(t, `{"id":"r1"}`),
	}
	urls := []string{bks[0].srv.URL, bks[1].srv.URL, bks[2].srv.URL}
	rt := newTestRouter(t, RouterConfig{Backends: urls})

	if rec := postRun(t, rt, submitBody()); rec.Code != http.StatusOK {
		t.Fatalf("baseline submit: HTTP %d", rec.Code)
	}
	var home *fakeBackend
	for _, b := range bks {
		if b.served.Load() > 0 {
			home = b
		}
	}
	home.failWith.Store(http.StatusInternalServerError)

	rec := postRun(t, rt, submitBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("failover submit: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Fssim-Backend"); got == home.srv.URL {
		t.Errorf("request served by the failing home backend %s", got)
	}
	if rt.mFailovers.Value() == 0 {
		t.Error("failover counter did not move")
	}
	if rt.mMismatches.Value() != 0 {
		t.Error("byte-identical failover must not count a mismatch")
	}
}

// TestRouterFailoverOnConnectError: a dead (closed) backend fails over too.
func TestRouterFailoverOnConnectError(t *testing.T) {
	alive := newFakeBackend(t, `{"id":"r1"}`)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rt := newTestRouter(t, RouterConfig{Backends: []string{dead.URL, alive.srv.URL}})

	rec := postRun(t, rt, submitBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Fssim-Backend"); got != alive.srv.URL {
		t.Errorf("served by %q, want the alive backend", got)
	}
}

// TestRouterBadRequestStopsAtTheEdge: an invalid submit is rejected by the
// router itself; no backend sees it.
func TestRouterBadRequestStopsAtTheEdge(t *testing.T) {
	b := newFakeBackend(t, `{"id":"r1"}`)
	rt := newTestRouter(t, RouterConfig{Backends: []string{b.srv.URL}})
	rec := postRun(t, rt, `{"benchmark":"no-such-benchmark"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", rec.Code)
	}
	if b.served.Load() != 0 {
		t.Error("backend saw an invalid request the edge should have rejected")
	}
}

// TestRouter404Authoritative: a 404 from the home shard is the answer (the
// run does not exist anywhere — placement is deterministic), not a failover.
func TestRouter404Authoritative(t *testing.T) {
	bks := []*fakeBackend{newFakeBackend(t, `{}`), newFakeBackend(t, `{}`)}
	for _, b := range bks {
		b.failWith.Store(http.StatusNotFound)
	}
	rt := newTestRouter(t, RouterConfig{
		Backends:   []string{bks[0].srv.URL, bks[1].srv.URL},
		HedgeAfter: -1, // sequential, so failover accounting is deterministic
	})
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/r0000000000000000", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", rec.Code)
	}
	if rt.mFailovers.Value() != 0 {
		t.Error("a 404 must be authoritative, not a failover")
	}
}

// TestRouterDegradedLocalBelowQuorum: with every backend failing, requests
// run on the embedded local server and are marked degraded — and still
// produce a real, deterministic run body.
func TestRouterDegradedLocalBelowQuorum(t *testing.T) {
	bks := []*fakeBackend{newFakeBackend(t, `{}`), newFakeBackend(t, `{}`)}
	for _, b := range bks {
		b.failWith.Store(http.StatusInternalServerError)
	}
	local := server.New(server.Config{})
	t.Cleanup(func() { _ = local.Drain(context.Background()) })
	rt := newTestRouter(t, RouterConfig{
		Backends: []string{bks[0].srv.URL, bks[1].srv.URL},
		Local:    local,
		Passes:   1,
	})

	var bodies []string
	for i := 0; i < 3; i++ {
		rec := postRun(t, rt, submitBody())
		if rec.Code != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Fssim-Fleet"); got != "degraded" {
			t.Fatalf("submit %d: X-Fssim-Fleet = %q, want degraded", i, got)
		}
		bodies = append(bodies, rec.Body.String())
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Error("degraded-local responses for one request are not byte-identical")
		}
	}
	var resp server.RunResponse
	if err := json.Unmarshal([]byte(bodies[0]), &resp); err != nil || resp.Cycles == 0 {
		t.Fatalf("degraded body is not a real run response: %v (%s)", err, bodies[0])
	}
	if rt.mDegraded.Value() == 0 {
		t.Error("degraded counter did not move")
	}
	// The repeated failures ejected both backends, so the fleet is now below
	// quorum and new requests go local directly (no more failover churn).
	if !rt.belowQuorum() {
		t.Error("both backends failing repeatedly should have dropped the fleet below quorum")
	}
}

// TestRouterHedgedGet: when the home shard stalls past the hedge delay, the
// next ring node answers and the client never waits for the stall.
func TestRouterHedgedGet(t *testing.T) {
	slowBody := `{"id":"rh"}`
	var slow, fast *httptest.Server
	slowHit := atomic.Int64{}
	slow = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHit.Add(1)
		time.Sleep(400 * time.Millisecond)
		fmt.Fprintln(w, slowBody)
	}))
	fast = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, slowBody)
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(fast.Close)

	rt := newTestRouter(t, RouterConfig{
		Backends:   []string{slow.URL, fast.URL},
		HedgeAfter: 20 * time.Millisecond,
	})
	// Find an id homed on the slow backend so the hedge has something to do.
	id := ""
	for i := 0; i < 200; i++ {
		cand := fmt.Sprintf("r%016x", i)
		if rt.Ring().Owner(cand) == slow.URL {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no key homed on the slow backend in 200 tries")
	}
	start := time.Now()
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Errorf("hedged GET took %v; the stall leaked to the client", d)
	}
	if got := rec.Header().Get("X-Fssim-Backend"); got != fast.URL {
		t.Errorf("served by %q, want the fast hedge target", got)
	}
	if rt.mHedged.Value() == 0 || rt.mHedgeWins.Value() == 0 {
		t.Errorf("hedge counters = (%d, %d), want both > 0",
			rt.mHedged.Value(), rt.mHedgeWins.Value())
	}
	if slowHit.Load() == 0 {
		t.Error("primary was never tried")
	}
}

// TestRouterByteIdentityVerification: duplicate 200 bodies for one id must
// agree; a disagreement is counted.
func TestRouterByteIdentityVerification(t *testing.T) {
	rt := newTestRouter(t, RouterConfig{Backends: []string{"http://unused"}})
	if !rt.verifyBody("rA", []byte("body-1")) {
		t.Error("first body for an id must verify")
	}
	if !rt.verifyBody("rA", []byte("body-1")) {
		t.Error("identical duplicate must verify")
	}
	if rt.verifyBody("rA", []byte("body-2")) {
		t.Error("conflicting duplicate must fail verification")
	}
	if rt.mMismatches.Value() != 1 {
		t.Errorf("mismatch counter = %d, want 1", rt.mMismatches.Value())
	}
}

// TestRouterReadyz: the fleet summary reflects health and quorum.
func TestRouterReadyz(t *testing.T) {
	b := newFakeBackend(t, `{}`)
	rt := newTestRouter(t, RouterConfig{Backends: []string{b.srv.URL}})
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var body struct {
		Status   string `json:"status"`
		Healthy  int    `json:"healthy"`
		Quorum   int    `json:"quorum"`
		Backends int    `json:"backends"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("undecodable readyz body %q: %v", rec.Body.String(), err)
	}
	if body.Status != "ready" || body.Healthy != 1 || body.Backends != 1 || body.Degraded {
		t.Errorf("readyz = %+v", body)
	}

	// Eject the only backend: no local fallback, so the router is unavailable.
	for i := 0; i < 3; i++ {
		rt.Health().ReportFail(b.srv.URL)
	}
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d after full ejection, want 503", rec.Code)
	}
}
