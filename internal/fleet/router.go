package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fssim/internal/pltstore"
	"fssim/internal/server"
	"fssim/internal/trace"
)

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Addr is the listen address for Serve (":0" picks a port).
	Addr string
	// Backends are the fssimd base URLs the ring shards over
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Backends []string
	// Replicas is the ring's virtual-point count per backend
	// (0 = DefaultReplicas).
	Replicas int
	// Quorum is the minimum healthy-backend count for fleet routing: below
	// it, requests run locally through the embedded server (degraded mode).
	// 0 defaults to a majority of the configured backends.
	Quorum int
	// Passes is how many full failover sweeps over a key's preference
	// sequence are made before giving up on the fleet (default 2; the first
	// sweep is pass 1). Between sweeps the router backs off with full jitter,
	// honoring the largest Retry-After any backend returned.
	Passes int
	// AttemptTimeout bounds each single backend attempt (default 1m) so a
	// wedged backend converts to failover, not an unbounded stall.
	AttemptTimeout time.Duration
	// HedgeAfter is the idempotent-GET hedging delay: when the home node has
	// not answered within it, a second request is fired at the next ring node
	// and the first success wins. 0 = adaptive (2× the forward-latency EWMA);
	// negative disables hedging.
	HedgeAfter time.Duration
	// Scale and Seed are the request-normalization defaults. They MUST match
	// the backends' own -scale/-seed defaults: the ring placement and run id
	// are computed from the normalized key, and a disagreement would route a
	// request to one shard while the backend memoizes it under another key.
	Scale float64
	Seed  int64
	// Local is the embedded degraded-mode server: when fewer than Quorum
	// backends are healthy (or every forward failed), requests run locally —
	// cold, but correct, because responses are a pure function of the
	// request. nil disables the fallback (the router then fails closed).
	Local *server.Server
	// Health tunes probing and ejection. Health.Probe is set by the router
	// (a /readyz fetch) unless overridden.
	Health HealthConfig

	// rnd and sleep are test seams for the inter-pass backoff.
	rnd   func() float64
	sleep func(context.Context, time.Duration) error
}

func (c RouterConfig) normalized() (RouterConfig, error) {
	if len(c.Backends) == 0 {
		return c, errors.New("fleet: router needs at least one backend")
	}
	if c.Addr == "" {
		c.Addr = ":8100"
	}
	if c.Quorum <= 0 {
		c.Quorum = len(c.Backends)/2 + 1
	}
	if c.Quorum > len(c.Backends) {
		c.Quorum = len(c.Backends)
	}
	if c.Passes <= 0 {
		c.Passes = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Minute
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.rnd == nil {
		c.rnd = rand.Float64
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	for i, b := range c.Backends {
		c.Backends[i] = strings.TrimRight(b, "/")
	}
	return c, nil
}

// maxRouteBody bounds buffered request bodies (a run request is a handful of
// scalars; see server's own cap).
const maxRouteBody = 1 << 16

// maxIDSums bounds the byte-identity verification map.
const maxIDSums = 4096

// Router is the fleet's routing tier: one HTTP front that consistent-hash
// shards requests over N fssimd backends, fails over on connect errors, 5xx
// and deadlines (safe, because responses are byte-identical pure functions
// of the request), hedges slow idempotent GETs, opportunistically verifies
// that duplicate responses for one run id are byte-identical across
// backends, and degrades to a local embedded scheduler when the fleet drops
// below quorum.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	health *Health
	hc     *http.Client

	latencyEWMA atomic.Int64 // µs of successful forwards; feeds hedging

	idMu    sync.Mutex
	idSums  map[string]uint64 // run id -> FNV-1a of its 200 body
	idOrder []string

	addr    atomic.Value // string
	started chan struct{}

	reg         *trace.Registry
	latMu       sync.Mutex
	mRequests   *trace.Counter
	mForwarded  *trace.Counter
	mFailovers  *trace.Counter
	mPasses     *trace.Counter
	mHedged     *trace.Counter
	mHedgeWins  *trace.Counter
	mDegraded   *trace.Counter
	mExhausted  *trace.Counter
	mMismatches *trace.Counter
	mLatency    *trace.Histogram
}

// NewRouter builds a router (without listening; see Handler and Serve).
// Its fleet.* instruments live on reg (pass nil for no-op instruments).
func NewRouter(cfg RouterConfig, reg *trace.Registry) (*Router, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:         cfg,
		ring:        NewRing(cfg.Replicas, cfg.Backends...),
		hc:          &http.Client{},
		idSums:      make(map[string]uint64),
		started:     make(chan struct{}),
		reg:         reg,
		mRequests:   reg.Counter("fleet.route.requests"),
		mForwarded:  reg.Counter("fleet.route.forwarded"),
		mFailovers:  reg.Counter("fleet.route.failovers"),
		mPasses:     reg.Counter("fleet.route.backoff_passes"),
		mHedged:     reg.Counter("fleet.route.hedged"),
		mHedgeWins:  reg.Counter("fleet.route.hedge_wins"),
		mDegraded:   reg.Counter("fleet.route.degraded_local"),
		mExhausted:  reg.Counter("fleet.route.exhausted"),
		mMismatches: reg.Counter("fleet.route.mismatches"),
		mLatency:    reg.Histogram("fleet.route.latency_us"),
	}
	rt.latencyEWMA.Store(50_000) // 50ms prior until real forwards teach it
	hcfg := cfg.Health
	if hcfg.Probe == nil {
		hcfg.Probe = rt.probeReadyz
	}
	rt.health = NewHealth(hcfg, reg, cfg.Backends...)
	return rt, nil
}

// Health exposes the router's backend tracker (status bodies, tests).
func (rt *Router) Health() *Health { return rt.health }

// Ring exposes the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *trace.Registry { return rt.reg }

// probeReadyz is the default health probe: GET /readyz must answer with a
// decodable body that is ready and not draining.
func (rt *Router) probeReadyz(ctx context.Context, backend string) error {
	st, err := server.NewClient(backend).Readyz(ctx)
	if err != nil {
		return err
	}
	if st.Draining || st.Status != "ready" {
		return fmt.Errorf("fleet: backend %s not ready (%s)", backend, st.Status)
	}
	return nil
}

// Handler returns the router's HTTP routes — a superset-compatible mirror of
// the fssimd surface, so clients talk to the fleet exactly as they would to
// one node.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", rt.handleRunGet)
	mux.HandleFunc("GET /v1/runs/{id}/trace", rt.handleRunTrace)
	mux.HandleFunc("GET /v1/plt", rt.handlePLTIndex)
	mux.HandleFunc("GET /v1/plt/{benchmark}", rt.handlePLT)
	mux.HandleFunc("GET /v1/plt/{benchmark}/{hash}", rt.handlePLTAt)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// backendResult is one relayed (or relayable) backend response.
type backendResult struct {
	backend string
	status  int
	header  http.Header
	body    []byte
}

// attempt forwards one request to one backend, bounded by AttemptTimeout,
// and buffers the response up to limit bytes.
func (rt *Router) attempt(ctx context.Context, backend, method, path string, body []byte, limit int64) (*backendResult, error) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(actx, method, backend+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := rt.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rbody, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, err
	}
	rt.observeForward(time.Since(start))
	return &backendResult{backend: backend, status: resp.StatusCode, header: resp.Header, body: rbody}, nil
}

func (rt *Router) observeForward(d time.Duration) {
	us := d.Microseconds()
	rt.latMu.Lock()
	rt.mLatency.Observe(float64(us))
	rt.latMu.Unlock()
	for {
		old := rt.latencyEWMA.Load()
		next := old + (us-old)/4
		if next <= 0 {
			next = 1
		}
		if rt.latencyEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// preference is the key's failover order: the ring sequence with healthy
// backends first (in ring order), ejected ones demoted to last resort.
func (rt *Router) preference(key string) []string {
	seq := rt.ring.Sequence(key, rt.ring.Len())
	out := make([]string, 0, len(seq))
	var ejected []string
	for _, b := range seq {
		if rt.health.Healthy(b) {
			out = append(out, b)
		} else {
			ejected = append(ejected, b)
		}
	}
	return append(out, ejected...)
}

// authoritative reports whether a backend response settles the request — no
// failover. 2xx is success; 4xx is the client's fault and will fail
// identically everywhere (responses are deterministic).
func authoritative(status int) bool { return status < 500 && status != http.StatusTooManyRequests }

// route tries the key's preference sequence up to Passes times, failing over
// on transport errors, deadlines, 429 and 5xx. It returns the first
// authoritative response; exhaustion returns the last non-authoritative
// response (or nil with the last transport error).
func (rt *Router) route(ctx context.Context, key, method, path string, body []byte, limit int64) (*backendResult, error) {
	var last *backendResult
	var lastErr error
	for pass := 1; pass <= rt.cfg.Passes; pass++ {
		var retryAfter time.Duration
		for _, b := range rt.preference(key) {
			res, err := rt.attempt(ctx, b, method, path, body, limit)
			if err != nil {
				if ctx.Err() != nil {
					return last, errors.Join(ctx.Err(), lastErr)
				}
				rt.health.ReportFail(b)
				rt.mFailovers.Add(1)
				lastErr = fmt.Errorf("fleet: %s %s%s: %w", method, b, path, err)
				continue
			}
			if authoritative(res.status) {
				rt.health.ReportOK(b)
				rt.mForwarded.Add(1)
				return res, nil
			}
			if res.status == http.StatusTooManyRequests {
				// The backend is alive, just saturated: spread to the next
				// ring node without counting it as unhealthy.
				if ra := parseRetryAfter(res.header); ra > retryAfter {
					retryAfter = ra
				}
			} else {
				rt.health.ReportFail(b)
				if ra := parseRetryAfter(res.header); ra > retryAfter {
					retryAfter = ra
				}
			}
			rt.mFailovers.Add(1)
			last, lastErr = res, nil
		}
		if pass < rt.cfg.Passes {
			rt.mPasses.Add(1)
			// Full-jitter backoff between sweeps, floored by the largest
			// Retry-After any backend volunteered.
			max := 50 * time.Millisecond << uint(pass-1)
			d := time.Duration(rt.cfg.rnd() * float64(max))
			if d < time.Millisecond {
				d = time.Millisecond
			}
			if retryAfter > d {
				d = retryAfter
			}
			if err := rt.cfg.sleep(ctx, d); err != nil {
				return last, errors.Join(err, lastErr)
			}
		}
	}
	return last, lastErr
}

func parseRetryAfter(h http.Header) time.Duration {
	if v := h.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec > 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// relay writes a backend result to the client, stamping fleet headers.
func (rt *Router) relay(w http.ResponseWriter, res *backendResult, fleet string) {
	for k, vs := range res.header {
		if k == "Content-Type" || strings.HasPrefix(k, "X-Fssim-") || k == "Retry-After" {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
	}
	w.Header().Set("X-Fssim-Fleet", fleet)
	w.Header().Set("X-Fssim-Backend", res.backend)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// serveLocal runs the request on the embedded server — the degraded mode:
// cold (no shared memo cache, no warm peers) but correct, because every
// response is a pure function of the request.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.mDegraded.Add(1)
	w.Header().Set("X-Fssim-Fleet", "degraded")
	r2 := r.Clone(r.Context())
	if body != nil {
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
	}
	rt.cfg.Local.Handler().ServeHTTP(w, r2)
}

// belowQuorum reports whether the fleet is too unhealthy to route.
func (rt *Router) belowQuorum() bool {
	return rt.health.HealthyCount() < rt.cfg.Quorum
}

// verifyBody is the opportunistic byte-identity check: every 200 body for a
// run id must be identical, no matter which backend (or local fallback)
// produced it. A mismatch means a backend violated the determinism contract;
// it is counted loudly but the response is still served (the router cannot
// know which copy is right).
func (rt *Router) verifyBody(id string, body []byte) bool {
	h := fnv.New64a()
	_, _ = h.Write(body)
	sum := h.Sum64()
	rt.idMu.Lock()
	defer rt.idMu.Unlock()
	if prev, ok := rt.idSums[id]; ok {
		if prev != sum {
			rt.mMismatches.Add(1)
			return false
		}
		return true
	}
	if len(rt.idOrder) >= maxIDSums {
		delete(rt.idSums, rt.idOrder[0])
		rt.idOrder = rt.idOrder[1:]
	}
	rt.idSums[id] = sum
	rt.idOrder = append(rt.idOrder, id)
	return true
}

// handleSubmit is POST /v1/runs: decode at the edge (bad requests never
// travel), place by run id on the ring, fail over along it, degrade local
// below quorum or on exhaustion.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody))
	if err != nil {
		http.Error(w, `{"error":"unreadable request body"}`, http.StatusBadRequest)
		return
	}
	req, err := server.DecodeRunRequest(bytes.NewReader(body))
	if err == nil {
		err = req.Validate()
	}
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, `{"error":%q}`+"\n", err.Error())
		return
	}
	spec, err := req.Spec(rt.cfg.Scale, rt.cfg.Seed)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, `{"error":%q}`+"\n", err.Error())
		return
	}
	id := server.RunID(spec.Key())

	if rt.cfg.Local != nil && rt.belowQuorum() {
		rt.serveLocal(w, r, body)
		return
	}
	res, rerr := rt.route(r.Context(), id, http.MethodPost, "/v1/runs", body, maxResultBody)
	if res != nil && authoritative(res.status) {
		if res.status == http.StatusOK {
			rt.verifyBody(id, res.body)
		}
		rt.relay(w, res, "routed")
		return
	}
	// Fleet exhausted: run it here if we can — degraded beats down.
	rt.mExhausted.Add(1)
	if rt.cfg.Local != nil {
		rt.serveLocal(w, r, body)
		return
	}
	rt.relayFailure(w, res, rerr)
}

// relayFailure renders total fleet failure: the last backend response if any
// (its Retry-After intact), else 502.
func (rt *Router) relayFailure(w http.ResponseWriter, res *backendResult, err error) {
	if res != nil {
		rt.relay(w, res, "exhausted")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fssim-Fleet", "exhausted")
	w.WriteHeader(http.StatusBadGateway)
	msg := "no backend reachable"
	if err != nil {
		msg = err.Error()
	}
	fmt.Fprintf(w, `{"error":%q}`+"\n", msg)
}

// maxResultBody bounds relayed run/trace bodies.
const maxResultBody = 8 << 20

// hedgeDelay is the current idempotent-GET hedging threshold.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	d := 2 * time.Duration(rt.latencyEWMA.Load()) * time.Microsecond
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// routeIdempotentGet routes a GET with hedging: the home node gets
// hedgeDelay to answer; then the next preference node races it and the first
// authoritative response wins. Falls back to the full sequential route when
// the race produces nothing.
func (rt *Router) routeIdempotentGet(ctx context.Context, key, path string, limit int64) (*backendResult, error) {
	seq := rt.preference(key)
	hd := rt.hedgeDelay()
	if len(seq) < 2 || rt.cfg.HedgeAfter < 0 {
		return rt.route(ctx, key, http.MethodGet, path, nil, limit)
	}
	type outcome struct {
		backend string
		res     *backendResult
		err     error
		hedged  bool
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	try := func(b string, hedged bool) {
		res, err := rt.attempt(rctx, b, http.MethodGet, path, nil, limit)
		ch <- outcome{b, res, err, hedged}
	}
	go try(seq[0], false)
	timer := time.NewTimer(hd)
	defer timer.Stop()
	launched := 1
	var firstFail *outcome
	for {
		select {
		case <-timer.C:
			if launched < 2 {
				rt.mHedged.Add(1)
				go try(seq[1], true)
				launched++
			}
		case o := <-ch:
			if o.err == nil && authoritative(o.res.status) {
				rt.health.ReportOK(o.res.backend)
				rt.mForwarded.Add(1)
				if o.hedged {
					rt.mHedgeWins.Add(1)
				}
				return o.res, nil
			}
			if o.err != nil && rctx.Err() == nil {
				rt.health.ReportFail(o.backend)
			}
			if firstFail == nil {
				firstFail = &o
				if launched < 2 {
					// Primary failed fast: hedge immediately.
					rt.mHedged.Add(1)
					go try(seq[1], true)
					launched++
				}
				continue
			}
			// Both raced attempts failed; sweep the whole ring sequentially.
			return rt.route(ctx, key, http.MethodGet, path, nil, limit)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// handleRunGet is GET /v1/runs/{id}: the id is itself the ring key (it is a
// pure function of the run key the submit was placed by), so the GET lands
// on the same shard — hedged, because it is idempotent and cheap.
func (rt *Router) handleRunGet(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	id := r.PathValue("id")
	if rt.cfg.Local != nil && rt.belowQuorum() {
		rt.serveLocal(w, r, nil)
		return
	}
	res, err := rt.routeIdempotentGet(r.Context(), id, "/v1/runs/"+id, maxResultBody)
	if res != nil && authoritative(res.status) {
		if res.status == http.StatusOK {
			rt.verifyBody(id, res.body)
		}
		rt.relay(w, res, "routed")
		return
	}
	rt.mExhausted.Add(1)
	if rt.cfg.Local != nil {
		rt.serveLocal(w, r, nil)
		return
	}
	rt.relayFailure(w, res, err)
}

// handleRunTrace is GET /v1/runs/{id}/trace, placed like the run itself.
func (rt *Router) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	id := r.PathValue("id")
	res, err := rt.routeIdempotentGet(r.Context(), id, "/v1/runs/"+id+"/trace", maxResultBody)
	if res != nil {
		rt.relay(w, res, "routed")
		return
	}
	rt.relayFailure(w, nil, err)
}

// handlePLT routes GET /v1/plt/{benchmark} by benchmark, hedged.
func (rt *Router) handlePLT(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	bench := r.PathValue("benchmark")
	res, err := rt.routeIdempotentGet(r.Context(), "plt|"+bench,
		"/v1/plt/"+bench, pltstore.MaxSnapshotBytes+1)
	if res != nil {
		rt.relay(w, res, "routed")
		return
	}
	rt.relayFailure(w, nil, err)
}

// handlePLTAt routes the exact-address snapshot fetch like handlePLT.
func (rt *Router) handlePLTAt(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	bench, hash := r.PathValue("benchmark"), r.PathValue("hash")
	res, err := rt.routeIdempotentGet(r.Context(), "plt|"+bench,
		"/v1/plt/"+bench+"/"+hash, pltstore.MaxSnapshotBytes+1)
	if res != nil {
		rt.relay(w, res, "routed")
		return
	}
	rt.relayFailure(w, nil, err)
}

// handlePLTIndex proxies the snapshot index from the first healthy backend
// (indexes are per-node; gossip converges them, so any node's answer is a
// usable approximation of the fleet's).
func (rt *Router) handlePLTIndex(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Add(1)
	res, err := rt.routeIdempotentGet(r.Context(), "plt-index", "/v1/plt", maxResultBody)
	if res != nil {
		rt.relay(w, res, "routed")
		return
	}
	rt.relayFailure(w, nil, err)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz reports the fleet's routable state: ready while at least one
// backend is healthy or a local fallback exists, with the per-backend map
// and quorum so operators see degradation coming.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.health.HealthyCount()
	degraded := rt.belowQuorum()
	status := http.StatusOK
	if healthy == 0 && rt.cfg.Local == nil {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	state := "ready"
	if degraded {
		state = "degraded"
	}
	if status != http.StatusOK {
		state = "unavailable"
	}
	fmt.Fprintf(w, `{"status":%q,"healthy":%d,"quorum":%d,"backends":%d,"degraded":%v}`+"\n",
		state, healthy, rt.cfg.Quorum, rt.ring.Len(), degraded)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rt.latMu.Lock()
	_ = rt.reg.WriteText(w)
	rt.latMu.Unlock()
}

// Addr returns the bound listen address once Serve is up (useful with ":0").
func (rt *Router) Addr() string {
	<-rt.started
	v, _ := rt.addr.Load().(string)
	return v
}

// Serve listens on cfg.Addr, runs the health probe loop, and serves until
// ctx is canceled; then it shuts the listener down gracefully and, when a
// local fallback server exists, drains it (flushing its artifacts).
func (rt *Router) Serve(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return err
	}
	rt.addr.Store(ln.Addr().String())
	close(rt.started)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go rt.health.Run(pctx)
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	herr := hs.Shutdown(hctx)
	var derr error
	if rt.cfg.Local != nil {
		dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer dcancel()
		derr = rt.cfg.Local.Drain(dctx)
	}
	return errors.Join(herr, derr)
}
