// Package fleet turns N independent fssimd processes into one fault-tolerant
// simulation service: a consistent-hash routing tier that shards the
// RunKey-addressed memo cache across backends (instead of duplicating it), a
// health layer that probes /readyz and ejects outlier backends, failover
// routing that exploits the system's core invariant — responses are a pure,
// byte-identical function of the normalized request, so any retry against
// any node is safe — and an anti-entropy gossip protocol that spreads
// learned PLT snapshots between nodes under full re-verification, so one
// node's learning warms the whole fleet without a corrupt or incompatible
// table ever being imported.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes a fixed
// number of virtual points, and a key is owned by the first point clockwise
// from its hash. Membership is the configured backend set, not the live one —
// an unhealthy backend keeps its arc (the router skips it at lookup time via
// the Sequence preference order), so keys return to their home shard the
// moment the node recovers instead of reshuffling twice.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct members, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-point count per member: enough that three
// nodes split the keyspace within a few percent of evenly.
const DefaultReplicas = 128

// NewRing builds a ring over the given members with replicas virtual points
// each (<= 0 means DefaultReplicas). Duplicate members are collapsed.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.nodes = append(r.nodes, m)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), node: m})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic tie-break on (vanishing) collisions
	})
	return r
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the key's home node ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct members in the key's preference order:
// the home node first, then each successive distinct node clockwise. This is
// the failover order — when the home node is ejected or errors, the request
// moves to the next ring node, and every key not homed on the dead node
// keeps its owner (minimal movement, the consistent-hashing property).
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// ringHash is FNV-1a with a splitmix64-style finalizer. FNV alone has weak
// avalanche in its low bytes, so near-identical keys (run ids share a long
// prefix) cluster onto one arc and defeat the ring's balance; the finalizer
// spreads them across the whole 64-bit circle. Stable across processes —
// placement must agree between routers.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
