package fleet

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"fssim/internal/pltstore"
	"fssim/internal/server"
	"fssim/internal/trace"
)

// GossipConfig tunes a node's anti-entropy loop.
type GossipConfig struct {
	// Peers are the other nodes' base URLs. An empty list makes the gossiper
	// a no-op.
	Peers []string
	// Interval is the anti-entropy period (jittered ±25%). Default 5s.
	Interval time.Duration
	// MaxFetchPerCycle rate-limits how many snapshots one cycle pulls in
	// (across all peers), so a cold node warms gradually instead of slamming
	// its peers. Default 4.
	MaxFetchPerCycle int
	// MaxBytesPerCycle bounds one cycle's total transfer. Default
	// 2×MaxSnapshotBytes.
	MaxBytesPerCycle int64
	// Retry is the per-request policy for peer fetches (zero = single-shot).
	Retry server.RetryPolicy
}

func (c GossipConfig) normalized() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MaxFetchPerCycle <= 0 {
		c.MaxFetchPerCycle = 4
	}
	if c.MaxBytesPerCycle <= 0 {
		c.MaxBytesPerCycle = 2 * pltstore.MaxSnapshotBytes
	}
	return c
}

// maxQuarantine bounds the quarantine set; beyond it the oldest entries are
// evicted (at worst, an evicted bad object costs one more wasted fetch).
const maxQuarantine = 1024

// Gossiper is the PLT anti-entropy loop: each cycle it pulls every peer's
// snapshot index, diffs it against the local store, fetches addresses it is
// missing, and installs them only through pltstore.PutVerified — the full
// checksum + structural decode + LearnHash-identity + semantic-validation
// gauntlet. Bytes that fail any check are rejected, counted on
// fleet.gossip.rejected, and the (peer, address) pair is quarantined so the
// same bad object is never fetched from that peer again; the same address is
// still fetchable from a different peer holding a good copy. Fetch volume is
// rate-limited per cycle. The result: one node's learning warms the whole
// fleet, and a corrupt or incompatible table is never imported anywhere.
type Gossiper struct {
	cfg     GossipConfig
	store   *pltstore.Store
	clients []*server.Client
	peers   []string

	mu      sync.Mutex
	quar    map[string]bool // "peer|bench/hash"
	quarSeq []string        // FIFO eviction order

	mCycles     *trace.Counter
	mImported   *trace.Counter
	mRejected   *trace.Counter
	mPeerErrs   *trace.Counter
	mBytes      *trace.Counter
	gQuarantine *trace.Gauge
}

// NewGossiper builds the anti-entropy loop for a node whose warm store is
// store, registering fleet.gossip.* instruments on reg (nil = no-op).
func NewGossiper(cfg GossipConfig, store *pltstore.Store, reg *trace.Registry) (*Gossiper, error) {
	if store == nil {
		return nil, errors.New("fleet: gossip needs a snapshot store")
	}
	cfg = cfg.normalized()
	g := &Gossiper{
		cfg:         cfg,
		store:       store,
		quar:        make(map[string]bool),
		mCycles:     reg.Counter("fleet.gossip.cycles"),
		mImported:   reg.Counter("fleet.gossip.imported"),
		mRejected:   reg.Counter("fleet.gossip.rejected"),
		mPeerErrs:   reg.Counter("fleet.gossip.peer_errors"),
		mBytes:      reg.Counter("fleet.gossip.bytes"),
		gQuarantine: reg.Gauge("fleet.gossip.quarantined"),
	}
	for _, p := range cfg.Peers {
		if p == "" {
			continue
		}
		g.peers = append(g.peers, p)
		g.clients = append(g.clients, server.NewClient(p).WithRetry(cfg.Retry))
	}
	return g, nil
}

// Quarantined reports whether the (peer, address) pair has been quarantined
// (exposed for tests and status surfaces).
func (g *Gossiper) Quarantined(peer, addr string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quar[peer+"|"+addr]
}

// QuarantineLen returns the current quarantine population.
func (g *Gossiper) QuarantineLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.quar)
}

func (g *Gossiper) quarantine(peer, addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := peer + "|" + addr
	if g.quar[k] {
		return
	}
	if len(g.quarSeq) >= maxQuarantine {
		delete(g.quar, g.quarSeq[0])
		g.quarSeq = g.quarSeq[1:]
	}
	g.quar[k] = true
	g.quarSeq = append(g.quarSeq, k)
	g.gQuarantine.Set(int64(len(g.quar)))
}

// Cycle runs one anti-entropy round and returns how many snapshots it
// imported. Errors talking to a peer skip that peer (it may simply be down);
// errors verifying fetched bytes reject and quarantine the object.
func (g *Gossiper) Cycle(ctx context.Context) int {
	g.mCycles.Add(1)
	imported := 0
	fetched := 0
	var bytesIn int64
	for i, c := range g.clients {
		peer := g.peers[i]
		if ctx.Err() != nil {
			return imported
		}
		idx, err := c.PLTIndex(ctx)
		if err != nil {
			g.mPeerErrs.Add(1)
			continue
		}
		for _, e := range idx {
			if ctx.Err() != nil {
				return imported
			}
			if fetched >= g.cfg.MaxFetchPerCycle || bytesIn >= g.cfg.MaxBytesPerCycle {
				return imported // budget spent; next cycle continues
			}
			addr := e.Addr()
			if g.Quarantined(peer, addr) {
				continue
			}
			// A malformed or oversize advertisement is rejected before any
			// fetch: the index itself is untrusted input.
			h, perr := pltstore.ParseHash(e.LearnHash)
			if perr != nil || e.Benchmark == "" || e.Size <= 0 || e.Size > pltstore.MaxSnapshotBytes {
				g.mRejected.Add(1)
				g.quarantine(peer, addr)
				continue
			}
			if g.store.Has(e.Benchmark, h) {
				continue // already local (identity is content-derived; no versions to reconcile)
			}
			data, ferr := c.SnapshotAt(ctx, e.Benchmark, e.LearnHash)
			fetched++
			if ferr != nil {
				if errors.Is(ferr, server.ErrSnapshotOversize) {
					// The peer sent more bytes than it advertised: hostile or
					// broken either way.
					g.mRejected.Add(1)
					g.quarantine(peer, addr)
					continue
				}
				var ae *server.APIError
				if errors.As(ferr, &ae) && ae.StatusCode == http.StatusNotFound {
					// Advertised then lost (pruned, or the peer detected its
					// own corruption): not hostile, just stale. Skip.
					continue
				}
				g.mPeerErrs.Add(1)
				continue
			}
			bytesIn += int64(len(data))
			if _, verr := g.store.PutVerified(e.Benchmark, h, data); verr != nil {
				// Truncated, corrupt, mis-addressed or semantically invalid:
				// never installed, counted, and never fetched from this peer
				// again.
				g.mRejected.Add(1)
				g.quarantine(peer, addr)
				continue
			}
			g.mBytes.Add(int64(len(data)))
			g.mImported.Add(1)
			imported++
		}
	}
	return imported
}

// Run cycles until ctx is canceled, jittering the interval ±25% so a fleet's
// gossip rounds de-synchronize.
func (g *Gossiper) Run(ctx context.Context) {
	if len(g.clients) == 0 {
		return
	}
	for {
		g.Cycle(ctx)
		jitter := time.Duration((rand.Float64() - 0.5) * 0.5 * float64(g.cfg.Interval))
		select {
		case <-time.After(g.cfg.Interval + jitter):
		case <-ctx.Done():
			return
		}
	}
}
