package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fssim/internal/server"
	"fssim/internal/trace"
)

// realBackend is one actual fssimd serving stack behind an httptest
// listener, killable mid-test.
type realBackend struct {
	s  *server.Server
	hs *httptest.Server
}

func newRealBackend(t *testing.T, cfg server.Config) *realBackend {
	t.Helper()
	b := &realBackend{s: server.New(cfg)}
	b.hs = httptest.NewServer(b.s.Handler())
	t.Cleanup(func() { b.hs.Close() })
	return b
}

// kill simulates a SIGKILL: in-flight connections are torn down and the
// listener stops accepting, so the router sees resets and refused connects —
// no graceful drain, no goodbye.
func (b *realBackend) kill() {
	b.hs.CloseClientConnections()
	b.hs.Close()
}

func chaosRequests() []string {
	var out []string
	for seed := int64(1); seed <= 4; seed++ {
		for _, mode := range []string{"full", "app"} {
			out = append(out, fmt.Sprintf(
				`{"benchmark":"fleet-ok","mode":%q,"scale":0.1,"seed":%d}`, mode, seed))
		}
	}
	return out
}

// TestChaosKillOneOfThree is the acceptance scenario: three real backends
// behind the router, a mixed run set, one backend killed abruptly — and
// every request before and after the kill succeeds with a body
// byte-identical to a single-node reference.
func TestChaosKillOneOfThree(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real simulations")
	}
	cfg := server.Config{Scale: 1.0, Seed: 1, Workers: 2, Deadline: time.Minute}
	backends := []*realBackend{
		newRealBackend(t, cfg),
		newRealBackend(t, cfg),
		newRealBackend(t, cfg),
	}
	reference := newRealBackend(t, cfg)

	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.hs.URL
	}
	rt, err := NewRouter(RouterConfig{
		Backends: urls,
		Health:   HealthConfig{Probe: alwaysHealthy},
		Passes:   2,
	}, trace.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}

	reqs := chaosRequests()
	want := make([]string, len(reqs))
	ids := make([]string, len(reqs))
	for i, body := range reqs {
		resp, err := http.Post(reference.hs.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference run %d: HTTP %d: %s", i, resp.StatusCode, buf.String())
		}
		want[i] = buf.String()
		var rr server.RunResponse
		if err := json.Unmarshal(buf.Bytes(), &rr); err != nil {
			t.Fatal(err)
		}
		ids[i] = rr.ID
	}

	served := map[string]int{}
	submitAll := func(phase string) {
		t.Helper()
		for i, body := range reqs {
			rec := postRun(t, rt, body)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: run %d: HTTP %d: %s", phase, i, rec.Code, rec.Body.String())
			}
			if rec.Body.String() != want[i] {
				t.Fatalf("%s: run %d body diverged from the single-node reference:\n fleet: %s\n  ref: %s",
					phase, i, rec.Body.String(), want[i])
			}
			served[rec.Header().Get("X-Fssim-Backend")]++
		}
	}
	submitAll("before kill")
	if len(served) < 2 {
		t.Fatalf("run set landed on %d backends, want the ring to spread it (%v)", len(served), served)
	}

	// Kill the busiest backend without warning.
	victimURL, victimN := "", -1
	for u, n := range served {
		if n > victimN {
			victimURL, victimN = u, n
		}
	}
	for _, b := range backends {
		if b.hs.URL == victimURL {
			b.kill()
		}
	}

	submitAll("after kill")

	// The completed runs stay fetchable through the router, still
	// byte-identical, with the dead backend routed around.
	for i, id := range ids {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d: %s", id, rec.Code, rec.Body.String())
		}
		if rec.Body.String() != want[i] {
			t.Fatalf("GET %s body diverged from the reference", id)
		}
	}

	if rt.mMismatches.Value() != 0 {
		t.Errorf("byte-identity mismatches = %d, want 0", rt.mMismatches.Value())
	}
	if rt.mFailovers.Value() == 0 {
		t.Error("killing a backend should have produced failovers")
	}
	if rt.mDegraded.Value() != 0 {
		t.Error("one dead backend of three must not push the fleet below quorum")
	}
}

// TestFleetColdNodeWarmStartsViaGossip is the anti-entropy acceptance path:
// node A learns a PLT from a real accelerated run; a cold node B imports the
// snapshot via gossip alone and then replays the identical request warm —
// byte-identical body, zero learning, one warm hit.
func TestFleetColdNodeWarmStartsViaGossip(t *testing.T) {
	ctx := context.Background()
	cfg := func(dir string) server.Config {
		return server.Config{Scale: 0.1, Seed: 1, Workers: 2, Deadline: time.Minute, WarmDir: dir}
	}
	accelBody := `{"benchmark":"fleet-ok","mode":"accel","scale":0.1,"seed":1}`

	a := newRealBackend(t, cfg(t.TempDir()))
	respA, err := http.Post(a.hs.URL+"/v1/runs", "application/json", strings.NewReader(accelBody))
	if err != nil {
		t.Fatal(err)
	}
	var bodyA bytes.Buffer
	_, _ = bodyA.ReadFrom(respA.Body)
	respA.Body.Close()
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("node A accel run: HTTP %d: %s", respA.StatusCode, bodyA.String())
	}
	if st := a.s.Scheduler().Stats(); st.WarmSaves != 1 {
		t.Fatalf("node A saved %d snapshots, want 1", st.WarmSaves)
	}

	b := newRealBackend(t, cfg(t.TempDir()))
	g, err := NewGossiper(GossipConfig{Peers: []string{a.hs.URL}},
		b.s.Scheduler().WarmStore(), b.s.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Cycle(ctx); n != 1 {
		t.Fatalf("gossip imported %d snapshots, want 1", n)
	}

	respB, err := http.Post(b.hs.URL+"/v1/runs", "application/json", strings.NewReader(accelBody))
	if err != nil {
		t.Fatal(err)
	}
	var bodyB bytes.Buffer
	_, _ = bodyB.ReadFrom(respB.Body)
	respB.Body.Close()
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("node B accel run: HTTP %d: %s", respB.StatusCode, bodyB.String())
	}
	if !bytes.Equal(bodyA.Bytes(), bodyB.Bytes()) {
		t.Errorf("warm replay diverged from the original run:\n A: %s\n B: %s", bodyA.String(), bodyB.String())
	}
	st := b.s.Scheduler().Stats()
	if st.WarmHits != 1 || st.PLTLearned != 0 || st.WarmInvalid != 0 {
		t.Errorf("node B stats = %+v, want exactly one warm hit and zero learning", st)
	}
}
