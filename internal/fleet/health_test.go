package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fssim/internal/trace"
)

func TestHealthConsecutiveFailureEjection(t *testing.T) {
	reg := trace.NewRegistry()
	h := NewHealth(HealthConfig{}, reg, "a", "b")
	if !h.Healthy("a") || h.HealthyCount() != 2 {
		t.Fatal("backends should start healthy")
	}
	h.ReportFail("a")
	h.ReportFail("a")
	if !h.Healthy("a") {
		t.Fatal("two failures must not eject (threshold 3)")
	}
	h.ReportFail("a")
	if h.Healthy("a") {
		t.Fatal("three consecutive failures must eject")
	}
	if h.HealthyCount() != 1 || h.Healthy("b") != true {
		t.Errorf("only a should be ejected: count=%d", h.HealthyCount())
	}

	// One success is not enough to readmit; two are.
	h.ReportOK("a")
	if h.Healthy("a") {
		t.Fatal("one success must not readmit (threshold 2)")
	}
	h.ReportOK("a")
	if !h.Healthy("a") {
		t.Fatal("two consecutive successes must readmit")
	}
	// Readmission cleared the window: one stale failure must not re-eject.
	h.ReportFail("a")
	if !h.Healthy("a") {
		t.Fatal("single post-readmission failure re-ejected; window was not cleared")
	}
}

// TestHealthWindowedOutlierEjection: failures that never run 3-consecutive
// still eject once the windowed failure rate crosses EjectRate.
func TestHealthWindowedOutlierEjection(t *testing.T) {
	h := NewHealth(HealthConfig{Window: 10, EjectRate: 0.5}, nil, "a")
	for i := 0; i < 5; i++ {
		h.ReportFail("a")
		h.ReportOK("a")
		h.ReportOK("a") // resets consecFail; rate 1/3 < 0.5
	}
	if !h.Healthy("a") {
		t.Fatal("33% failure rate should not eject at EjectRate 0.5")
	}
	h2 := NewHealth(HealthConfig{Window: 10, EjectRate: 0.5}, nil, "b")
	// Alternate fail/ok: rate 50%, never 2 consecutive failures.
	for i := 0; i < 6; i++ {
		h2.ReportFail("b")
		h2.ReportOK("b")
	}
	if h2.Healthy("b") {
		t.Fatal("sustained 50% failure rate must eject as an outlier")
	}
}

func TestHealthIgnoresUnknownBackend(t *testing.T) {
	h := NewHealth(HealthConfig{}, nil, "a")
	h.ReportFail("ghost")
	h.ReportOK("ghost")
	if h.Healthy("ghost") {
		t.Error("unknown backend must not be healthy")
	}
	if h.HealthyCount() != 1 {
		t.Errorf("count = %d, want 1", h.HealthyCount())
	}
}

// TestHealthProbeLoop: active probes eject a failing backend and readmit it
// when the probe recovers — including while ejected (probes keep flowing).
func TestHealthProbeLoop(t *testing.T) {
	var down atomic.Bool
	h := NewHealth(HealthConfig{
		Probe: func(ctx context.Context, backend string) error {
			if backend == "bad" && down.Load() {
				return errors.New("probe: connection refused")
			}
			return nil
		},
		Interval: 10 * time.Millisecond,
	}, trace.NewRegistry(), "good", "bad")

	ctx := context.Background()
	down.Store(true)
	for i := 0; i < 3; i++ {
		h.ProbeAll(ctx)
	}
	if h.Healthy("bad") || !h.Healthy("good") {
		t.Fatalf("after 3 failed probes: bad=%v good=%v, want ejected/healthy",
			h.Healthy("bad"), h.Healthy("good"))
	}
	down.Store(false)
	h.ProbeAll(ctx)
	h.ProbeAll(ctx)
	if !h.Healthy("bad") {
		t.Fatal("recovered backend must be readmitted by the probe loop")
	}
	snap := h.Snapshot()
	if !snap["bad"] || !snap["good"] {
		t.Errorf("snapshot = %v", snap)
	}
}
