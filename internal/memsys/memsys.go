// Package memsys assembles the memory hierarchy of the simulated machine:
// split L1 instruction/data caches, a unified L2, a split-transaction memory
// bus, and DRAM. It provides latency-resolving access calls for the timing
// cores, with MSHR-style miss overlap and bus-bandwidth contention, and
// mirrors the configuration of the paper's evaluation platform (§5.1).
package memsys

import (
	"math/rand"

	"fssim/internal/cache"
)

// Config describes the hierarchy. The defaults (see DefaultConfig) match the
// paper: 16KB 2-way L1I, 16KB 4-way L1D (2-cycle), 1MB 8-way L2 (8-cycle),
// 64B blocks, LRU, write-back; 300-cycle memory latency; 8B-wide 800MHz
// split-transaction bus on a 4GHz core (6.4 GB/s peak).
type Config struct {
	L1I, L1D, L2 cache.Config
	MemLatency   int // DRAM access latency in core cycles
	BusOccupancy int // bus cycles (in core cycles) one 64B transfer occupies
	MSHRs        int // max outstanding misses to memory

	// TLBEntries enables TLB modeling when positive: separate
	// 4-way-associative instruction and data TLBs of that many 4KB-page
	// entries, with WalkLatency cycles charged per miss (a hardware
	// page-table walk). The paper's Simics configuration does not model
	// TLBs, so this is off by default; see Config.WithTLB.
	TLBEntries  int
	WalkLatency int

	// Prefetch enables a next-line prefetcher at the L2: every demand L2
	// miss also fetches the following line using spare bus slots. Off by
	// default (not part of the paper's platform); see Config.WithPrefetch.
	Prefetch bool
}

// WithTLB returns a copy of c with TLB modeling enabled (64-entry I/D TLBs,
// 30-cycle walks — Pentium-4-era parameters).
func (c Config) WithTLB() Config {
	c.TLBEntries = 64
	c.WalkLatency = 30
	return c
}

// WithPrefetch returns a copy of c with the L2 next-line prefetcher enabled.
func (c Config) WithPrefetch() Config {
	c.Prefetch = true
	return c
}

// DefaultConfig returns the paper's §5.1 memory-system parameters.
func DefaultConfig() Config {
	return Config{
		L1I:        cache.Config{Name: "L1I", Size: 16 << 10, Assoc: 2, BlockSize: 64, HitLatency: 1},
		L1D:        cache.Config{Name: "L1D", Size: 16 << 10, Assoc: 4, BlockSize: 64, HitLatency: 2},
		L2:         cache.Config{Name: "L2", Size: 1 << 20, Assoc: 8, BlockSize: 64, HitLatency: 8},
		MemLatency: 300,
		// 64B line over an 8B-wide bus at 800MHz = 8 bus cycles = 40 cycles
		// at the 4GHz core frequency.
		BusOccupancy: 40,
		MSHRs:        8,
	}
}

// WithL2Size returns a copy of c with the L2 capacity replaced — the knob the
// paper's cache-size studies (Figs 2, 10, 12) turn.
func (c Config) WithL2Size(bytes int) Config {
	c.L2.Size = bytes
	return c
}

// Hierarchy is the instantiated memory system.
type Hierarchy struct {
	cfg Config
	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache

	itlb *cache.Cache // nil unless TLB modeling is enabled
	dtlb *cache.Cache

	busFree    uint64 // cycle at which the memory bus is next idle
	inflight   []miss // outstanding line fills (MSHR + coalescing)
	dram       uint64 // DRAM accesses (fills + writebacks)
	prefetches uint64
}

type miss struct {
	line  uint64
	ready uint64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1i: cache.New(cfg.L1I),
		l1d: cache.New(cfg.L1D),
		l2:  cache.New(cfg.L2),
	}
	if cfg.TLBEntries > 0 {
		tlbCfg := func(name string) cache.Config {
			return cache.Config{
				Name: name, Size: cfg.TLBEntries * 4096,
				Assoc: 4, BlockSize: 4096,
			}
		}
		h.itlb = cache.New(tlbCfg("ITLB"))
		h.dtlb = cache.New(tlbCfg("DTLB"))
	}
	return h
}

// FlushTLB invalidates both TLBs — the kernel calls this on address-space
// switches. A no-op when TLB modeling is disabled.
func (h *Hierarchy) FlushTLB() {
	if h.itlb == nil {
		return
	}
	h.itlb.InvalidateAll()
	h.dtlb.InvalidateAll()
}

// FlushAll invalidates every cache level and both TLBs — the fault model's
// cache-state perturbation, modeling an external agent (competing context,
// DMA-heavy device) evicting the hierarchy wholesale. Subsequent accesses
// cold-miss their way back in, shifting every service's behavior points.
func (h *Hierarchy) FlushAll() {
	h.l1i.InvalidateAll()
	h.l1d.InvalidateAll()
	h.l2.InvalidateAll()
	h.FlushTLB()
}

// tlbLookup charges a page-walk latency on a TLB miss and returns the
// translated access start time.
func (h *Hierarchy) tlbLookup(tlb *cache.Cache, addr, now uint64, owner cache.Owner) uint64 {
	if tlb == nil {
		return now
	}
	if res := tlb.Access(addr, 1, false, owner); !res.Hit {
		return now + uint64(h.cfg.WalkLatency)
	}
	return now
}

// TLBStats returns (ITLB, DTLB) statistics; zero values when disabled.
func (h *Hierarchy) TLBStats() (itlb, dtlb cache.Stats) {
	if h.itlb == nil {
		return
	}
	return h.itlb.Stats(), h.dtlb.Stats()
}

// Prefetches returns the number of prefetch fills issued.
func (h *Hierarchy) Prefetches() uint64 { return h.prefetches }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1I, L1D, L2 expose the individual levels (stats, pollution injection).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }
func (h *Hierarchy) L2() *cache.Cache  { return h.l2 }

// DRAMAccesses returns the number of memory transactions performed.
func (h *Hierarchy) DRAMAccesses() uint64 { return h.dram }

// memFill models one line fill from DRAM starting no earlier than cycle now:
// MSHR admission, coalescing with an in-flight fill of the same line, bus
// arbitration, and DRAM latency. It returns the cycle the line is available.
func (h *Hierarchy) memFill(lineAddr, now uint64) uint64 {
	// Coalesce with an outstanding fill of the same line.
	h.reap(now)
	for _, m := range h.inflight {
		if m.line == lineAddr {
			return m.ready
		}
	}
	start := now
	// MSHR admission: if all MSHRs busy, wait for the earliest to retire.
	if len(h.inflight) >= h.cfg.MSHRs {
		earliest := h.inflight[0].ready
		for _, m := range h.inflight[1:] {
			if m.ready < earliest {
				earliest = m.ready
			}
		}
		if earliest > start {
			start = earliest
		}
		h.reap(start)
	}
	// Bus arbitration: split-transaction, so the bus is held only for the
	// transfer slot; latency overlaps with other fills.
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + uint64(h.cfg.BusOccupancy)
	ready := start + uint64(h.cfg.MemLatency)
	h.dram++
	h.inflight = append(h.inflight, miss{line: lineAddr, ready: ready})
	return ready
}

func (h *Hierarchy) reap(now uint64) {
	kept := h.inflight[:0]
	for _, m := range h.inflight {
		if m.ready > now {
			kept = append(kept, m)
		}
	}
	h.inflight = kept
}

// writebackToMem models a dirty L2 eviction: it consumes a bus slot but does
// not delay the requesting access (posted write).
func (h *Hierarchy) writebackToMem(now uint64) {
	start := now
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + uint64(h.cfg.BusOccupancy)
	h.dram++
}

// accessL2 performs an L2 lookup for one line, filling from memory on a miss,
// and returns the cycle at which the line is available to the L1.
func (h *Hierarchy) accessL2(lineAddr, now uint64, isWrite bool, owner cache.Owner) uint64 {
	res := h.l2.Access(lineAddr, 1, isWrite, owner)
	avail := now + uint64(h.cfg.L2.HitLatency)
	if !res.Hit {
		avail = h.memFill(lineAddr, now+uint64(h.cfg.L2.HitLatency))
		if res.Evicted && res.EvictedDirty {
			h.writebackToMem(now)
		}
		if h.cfg.Prefetch {
			// Next-line prefetch: bring in the following line if absent,
			// consuming a bus slot but delaying no one.
			next := lineAddr + uint64(h.cfg.L2.BlockSize)
			if !h.l2.Probe(next) {
				h.l2.Touch(next)
				h.memFill(next, now+uint64(h.cfg.L2.HitLatency))
				h.prefetches++
			}
		}
	}
	return avail
}

// Data performs a data access of any size at cycle now and returns the cycle
// the data is available. Accesses that straddle line boundaries touch each
// line. Writes are charged to the cache state (write-back, write-allocate)
// but report availability like reads so the store queue can track retirement.
func (h *Hierarchy) Data(addr uint64, size int, now uint64, isWrite bool, owner cache.Owner) uint64 {
	if size <= 0 {
		size = 1
	}
	now = h.tlbLookup(h.dtlb, addr, now, owner)
	bs := uint64(h.cfg.L1D.BlockSize)
	first := h.l1d.LineAddr(addr)
	last := h.l1d.LineAddr(addr + uint64(size) - 1)
	avail := now
	remaining := size
	off := int(addr - first)
	for line := first; ; line += bs {
		span := int(bs) - off
		if span > remaining {
			span = remaining
		}
		words := (span + 7) / 8
		a := h.dataLine(line, words, now, isWrite, owner)
		if a > avail {
			avail = a
		}
		remaining -= span
		off = 0
		if line == last {
			break
		}
	}
	return avail
}

func (h *Hierarchy) dataLine(lineAddr uint64, words int, now uint64, isWrite bool, owner cache.Owner) uint64 {
	res := h.l1d.Access(lineAddr, words, isWrite, owner)
	avail := now + uint64(h.cfg.L1D.HitLatency)
	if !res.Hit {
		avail = h.accessL2(lineAddr, now+uint64(h.cfg.L1D.HitLatency), false, owner)
		if res.Evicted && res.EvictedDirty {
			// L1 dirty victim written back into L2 (posted; state change only).
			h.l2.Access(res.EvictedAddr, 1, true, owner)
		}
	}
	return avail
}

// Fetch performs an instruction-fetch access for the line containing pc and
// returns the cycle the fetch group is available.
func (h *Hierarchy) Fetch(pc, now uint64, owner cache.Owner) uint64 {
	now = h.tlbLookup(h.itlb, pc, now, owner)
	line := h.l1i.LineAddr(pc)
	// One access per fetch group; a 64B line holds four 4-wide groups.
	res := h.l1i.Access(line, 4, false, owner)
	if res.Hit {
		return now + uint64(h.cfg.L1I.HitLatency)
	}
	return h.accessL2(line, now+uint64(h.cfg.L1I.HitLatency), false, owner)
}

// InjectBusTraffic models the memory-bus occupancy of a fast-forwarded OS
// service: n line transfers beginning no earlier than cycle from. If the
// implied transfer time extends past the current bus horizon, subsequent
// accesses queue behind it exactly as they would behind the real traffic.
func (h *Hierarchy) InjectBusTraffic(n int, from uint64) {
	if n <= 0 {
		return
	}
	if h.busFree < from {
		h.busFree = from
	}
	h.busFree += uint64(n) * uint64(h.cfg.BusOccupancy)
	h.dram += uint64(n)
}

// InjectPollution distributes predicted OS misses into the three levels
// (paper §4.5). The per-level counts come from the predictor's per-level miss
// predictions for the fast-forwarded service instance.
func (h *Hierarchy) InjectPollution(l1i, l1d, l2 int, rng *rand.Rand) {
	h.l1i.InjectPollution(l1i, rng)
	h.l1d.InjectPollution(l1d, rng)
	h.l2.InjectPollution(l2, rng)
}

// TouchPhantoms replays a fast-forwarded service's per-level working sets:
// `lines` line-granular touches starting at base into each level. The same
// base is reused across invocations of the same service, so the phantom
// working set stays resident when touched repeatedly and displaces other
// lines exactly once — the way the real service's recurring footprint
// behaves (refining paper §4.5's uniform-random eviction model, which
// over-displaces when the service reuses its own lines).
func (h *Hierarchy) TouchPhantoms(base uint64, l1i, l1d, l2 int) {
	for i := 0; i < l1i; i++ {
		h.l1i.Touch(base + uint64(i)*64)
	}
	for i := 0; i < l1d; i++ {
		h.l1d.Touch(base + uint64(i)*64)
	}
	for i := 0; i < l2; i++ {
		h.l2.Touch(base + uint64(i)*64)
	}
}

// Snapshot captures the stats of all three levels.
type Snapshot struct {
	L1I, L1D, L2 cache.Stats
}

// Stats returns a snapshot of all levels' counters.
func (h *Hierarchy) Stats() Snapshot {
	return Snapshot{L1I: h.l1i.Stats(), L1D: h.l1d.Stats(), L2: h.l2.Stats()}
}

// Sub returns s - o per level.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{L1I: s.L1I.Sub(o.L1I), L1D: s.L1D.Sub(o.L1D), L2: s.L2.Sub(o.L2)}
}
