package memsys

import (
	"testing"

	"fssim/internal/cache"
)

func TestHitLatencies(t *testing.T) {
	h := New(DefaultConfig())
	// Cold: L1D miss, L2 miss -> DRAM latency dominates.
	cold := h.Data(0x1000, 8, 100, false, cache.OwnerApp) - 100
	if cold < 300 {
		t.Errorf("cold access latency %d, want >= DRAM 300", cold)
	}
	// Warm L1D hit.
	warm := h.Data(0x1000, 8, 1000, false, cache.OwnerApp) - 1000
	if warm != uint64(DefaultConfig().L1D.HitLatency) {
		t.Errorf("L1D hit latency %d, want %d", warm, DefaultConfig().L1D.HitLatency)
	}
	// L2 hit after L1 eviction: displace the L1D set (4-way, 64 sets).
	for i := uint64(1); i <= 4; i++ {
		h.Data(0x1000+i*4096, 8, 2000, false, cache.OwnerApp)
	}
	l2hit := h.Data(0x1000, 8, 30000, false, cache.OwnerApp) - 30000
	want := uint64(DefaultConfig().L1D.HitLatency + DefaultConfig().L2.HitLatency)
	if l2hit != want {
		t.Errorf("L2 hit latency %d, want %d", l2hit, want)
	}
}

func TestMissOverlapBusBound(t *testing.T) {
	h := New(DefaultConfig())
	// 64 independent misses issued back to back: completion of the last
	// should reflect bus pipelining (~40 cycles apart), not serial 300s.
	var last uint64
	for i := uint64(0); i < 64; i++ {
		last = h.Data(0x100_0000+i*64, 8, i, false, cache.OwnerApp)
	}
	if last > 64*40+400 {
		t.Errorf("last completion %d: misses not overlapped", last)
	}
	if last < 300 {
		t.Errorf("last completion %d: missing DRAM latency", last)
	}
}

func TestCoalescing(t *testing.T) {
	h := New(DefaultConfig())
	a := h.Data(0x200_0000, 8, 10, false, cache.OwnerApp)
	// Second request to the same line while in flight coalesces: same
	// completion, no extra DRAM transaction.
	dram := h.DRAMAccesses()
	b := h.Data(0x200_0008, 8, 12, false, cache.OwnerApp)
	if h.DRAMAccesses() != dram {
		t.Error("coalesced access generated a DRAM transaction")
	}
	if b > a {
		t.Errorf("coalesced completion %d after original %d", b, a)
	}
}

func TestStraddlingAccess(t *testing.T) {
	h := New(DefaultConfig())
	h.Data(0x3000, 8, 0, false, cache.OwnerApp) // line 0x3000 resident
	st0 := h.Stats().L1D
	h.Data(0x303C, 8, 100, false, cache.OwnerApp) // straddles 0x3000/0x3040
	d := h.Stats().L1D.Sub(st0)
	if d.Misses != 1 {
		t.Errorf("straddling access misses = %d, want 1 (second line only)", d.Misses)
	}
}

func TestFetchPath(t *testing.T) {
	h := New(DefaultConfig())
	cold := h.Fetch(0x40_0000, 0, cache.OwnerOS)
	if cold < 300 {
		t.Errorf("cold fetch %d, want DRAM-latency bound", cold)
	}
	warm := h.Fetch(0x40_0000, 1000, cache.OwnerOS) - 1000
	if warm != uint64(DefaultConfig().L1I.HitLatency) {
		t.Errorf("warm fetch latency %d", warm)
	}
	if h.Stats().L1I.Misses != 1 {
		t.Errorf("L1I misses = %d", h.Stats().L1I.Misses)
	}
}

func TestInjectBusTraffic(t *testing.T) {
	h := New(DefaultConfig())
	h.InjectBusTraffic(100, 0) // 100 transfers from cycle 0: bus busy 4000
	start := h.Data(0x400_0000, 8, 10, false, cache.OwnerApp)
	// The fill queues behind the injected traffic: 4000 + ~300.
	if start < 4000 {
		t.Errorf("access at %d did not queue behind injected bus traffic", start)
	}
}

func TestTouchPhantomsStableFootprint(t *testing.T) {
	h := New(DefaultConfig())
	// Fill some app lines.
	for i := uint64(0); i < 512; i++ {
		h.Data(0x500_0000+i*64, 8, i, false, cache.OwnerApp)
	}
	base := uint64(0xF000_0000_0000_0000)
	h.TouchPhantoms(base, 0, 256, 256)
	ev1 := h.L1D().Stats().PollutionEv
	// Re-touching the same phantom set displaces (almost) nothing new.
	h.TouchPhantoms(base, 0, 256, 256)
	ev2 := h.L1D().Stats().PollutionEv
	if ev1 == 0 {
		t.Error("first phantom touch displaced nothing")
	}
	if ev2 != ev1 {
		t.Errorf("repeated phantom touch displaced %d more lines", ev2-ev1)
	}
}

func TestWithL2Size(t *testing.T) {
	cfg := DefaultConfig().WithL2Size(512 << 10)
	if cfg.L2.Size != 512<<10 {
		t.Fatalf("L2 size = %d", cfg.L2.Size)
	}
	if DefaultConfig().L2.Size != 1<<20 {
		t.Fatal("WithL2Size mutated the default")
	}
	h := New(cfg)
	if h.L2().Config().Size != 512<<10 {
		t.Fatal("hierarchy ignored L2 size")
	}
}

func TestWritebackTraffic(t *testing.T) {
	h := New(DefaultConfig())
	// Dirty a line, evict it from L1 and L2 by streaming writes.
	h.Data(0x6000, 64, 0, true, cache.OwnerApp)
	before := h.DRAMAccesses()
	for i := uint64(1); i < 40000; i++ {
		h.Data(0x600_0000+i*64, 64, i*50, true, cache.OwnerApp)
	}
	if h.DRAMAccesses() <= before+40000 {
		t.Errorf("no writeback traffic observed: %d DRAM accesses", h.DRAMAccesses())
	}
}

func TestTLBModeling(t *testing.T) {
	h := New(DefaultConfig().WithTLB())
	// First touch of a page: TLB miss adds the walk latency on top of the
	// memory access.
	cold := h.Data(0x70_0000, 8, 0, false, cache.OwnerApp)
	if cold < 330 {
		t.Errorf("cold access with TLB walk completed at %d, want >= 330", cold)
	}
	// Same page: TLB hit; same line: L1D hit.
	warm := h.Data(0x70_0008, 8, 1000, false, cache.OwnerApp) - 1000
	if warm != uint64(DefaultConfig().L1D.HitLatency) {
		t.Errorf("warm access latency %d", warm)
	}
	_, dtlb := h.TLBStats()
	if dtlb.Misses != 1 {
		t.Errorf("DTLB misses = %d", dtlb.Misses)
	}
	// Flush: next access misses the TLB again.
	h.FlushTLB()
	h.Data(0x70_0010, 8, 2000, false, cache.OwnerApp)
	_, dtlb = h.TLBStats()
	if dtlb.Misses != 2 {
		t.Errorf("post-flush DTLB misses = %d", dtlb.Misses)
	}
}

func TestTLBDisabledByDefault(t *testing.T) {
	h := New(DefaultConfig())
	h.FlushTLB() // must be a no-op, not a panic
	i, d := h.TLBStats()
	if i.Accesses != 0 || d.Accesses != 0 {
		t.Error("TLB active despite default config")
	}
}

func TestPrefetchNextLine(t *testing.T) {
	h := New(DefaultConfig().WithPrefetch())
	// A streaming scan: with next-line prefetch, line N+1 is L2-resident by
	// the time the demand access arrives.
	h.Data(0x80_0000, 8, 0, false, cache.OwnerApp)
	if h.Prefetches() == 0 {
		t.Fatal("no prefetch issued")
	}
	if !h.L2().Probe(0x80_0040) {
		t.Fatal("next line not prefetched into L2")
	}
	// Demand access to the prefetched line: L2 hit (no new DRAM fill needed
	// beyond the prefetch's own).
	st0 := h.Stats().L2
	h.Data(0x80_0040, 8, 5000, false, cache.OwnerApp)
	if d := h.Stats().L2.Sub(st0); d.Misses != 0 {
		t.Errorf("prefetched line still missed: %+v", d)
	}
}
