package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fssim/internal/pltstore"
)

func warmServerConfig(dir string) Config {
	return Config{Scale: 0.1, Seed: 1, Workers: 2, Deadline: time.Minute, WarmDir: dir}
}

func accelRequest() RunRequest {
	return RunRequest{Benchmark: "srv-ok", Mode: "accel", Scale: 0.1, Seed: 1}
}

// TestServerWarmRestart is the restart story the store exists for: a second
// server process pointed at the same warm directory serves the identical
// accelerated request byte-for-byte from the snapshot, without simulating or
// learning anything.
func TestServerWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, c1 := newTestServer(t, warmServerConfig(dir))
	cold, err := c1.Run(ctx, accelRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Scheduler().Stats(); st.WarmSaves != 1 {
		t.Fatalf("first server saved %d snapshots, want 1: %+v", st.WarmSaves, st)
	}

	s2, c2 := newTestServer(t, warmServerConfig(dir))
	warm, err := c2.Run(ctx, accelRequest())
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Scheduler().Stats()
	if st.WarmHits != 1 || st.WarmInvalid != 0 {
		t.Errorf("restarted server: warm hits %d invalid %d, want 1 hit", st.WarmHits, st.WarmInvalid)
	}
	if st.PLTLearned != 0 {
		t.Errorf("restarted server learned %d instances, want 0 (replayed, nothing simulated)", st.PLTLearned)
	}
	if !bytes.Equal(warm.Body, cold.Body) {
		t.Errorf("replayed response differs from the cold one:\n warm: %s\n cold: %s", warm.Body, cold.Body)
	}

	// A corrupt snapshot degrades the next restart to cold simulation — same
	// bytes, the file quarantined at startup, never an error to the client.
	paths, err := pltstore.Open(dir).List("srv-ok")
	if err != nil || len(paths) != 1 {
		t.Fatalf("List = (%v, %v), want one snapshot", paths, err)
	}
	if err := os.WriteFile(paths[0], []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, c3 := newTestServer(t, warmServerConfig(dir))
	fallback, err := c3.Run(ctx, accelRequest())
	if err != nil {
		t.Fatal(err)
	}
	// The startup recovery sweep quarantines the corrupt snapshot before the
	// request arrives, so the run is a plain cold miss, not an invalidation.
	if st := s3.Scheduler().Stats(); st.WarmRecoveredQuarantined != 1 || st.WarmInvalid != 0 || st.WarmHits != 0 {
		t.Errorf("corrupt store: recovered quarantined %d invalid %d hits %d, want 1 quarantined 0 invalid 0 hits",
			st.WarmRecoveredQuarantined, st.WarmInvalid, st.WarmHits)
	}
	if !bytes.Equal(fallback.Body, cold.Body) {
		t.Error("cold fallback after corrupt snapshot produced a different response body")
	}
}

// TestSnapshotEndpoint covers GET /v1/plt/{benchmark}: the raw snapshot bytes
// once an accelerated run persisted them, and 404s for every absence.
func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, c := newTestServer(t, warmServerConfig(dir))

	// Before any accelerated run: no snapshot yet.
	if _, err := c.Snapshot(ctx, "srv-ok"); !errors.As(err, new(*APIError)) {
		t.Fatalf("Snapshot before any run = %v, want *APIError (404)", err)
	}
	if _, err := c.Run(ctx, accelRequest()); err != nil {
		t.Fatal(err)
	}
	data, err := c.Snapshot(ctx, "srv-ok")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := pltstore.Decode(data)
	if err != nil {
		t.Fatalf("served snapshot does not decode: %v", err)
	}
	if snap.Benchmark != "srv-ok" {
		t.Errorf("served snapshot is for %q, want srv-ok", snap.Benchmark)
	}
	// The served bytes are exactly the on-disk file.
	paths, _ := pltstore.Open(dir).List("srv-ok")
	if len(paths) != 1 {
		t.Fatalf("want one snapshot on disk, have %v", paths)
	}
	disk, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, disk) {
		t.Error("served snapshot bytes differ from the on-disk file")
	}

	// Unknown benchmark and corrupt newest file both 404.
	if _, err := c.Snapshot(ctx, "no-such-bench"); !errors.As(err, new(*APIError)) {
		t.Errorf("Snapshot(no-such-bench) = %v, want *APIError", err)
	}
	if err := os.WriteFile(paths[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(ctx, "srv-ok"); !errors.As(err, new(*APIError)) {
		t.Errorf("Snapshot of corrupt file = %v, want *APIError (404, never garbage bytes)", err)
	}
	_ = s

	// A server without a warm dir 404s the whole endpoint.
	_, cNoWarm := newTestServer(t, Config{Scale: 0.1, Seed: 1, Workers: 2})
	var ae *APIError
	if _, err := cNoWarm.Snapshot(ctx, "srv-ok"); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Errorf("Snapshot without warm dir = %v, want 404", err)
	}
}

// TestDrainFlushesWarm: the drain-time artifact flush re-persists every
// completed accelerated run even if the per-run save was lost.
func TestDrainFlushesWarm(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, c := newTestServer(t, warmServerConfig(dir))
	if _, err := c.Run(ctx, accelRequest()); err != nil {
		t.Fatal(err)
	}
	store := pltstore.Open(dir)
	paths, err := store.List("")
	if err != nil || len(paths) != 1 {
		t.Fatalf("List = (%v, %v), want one snapshot", paths, err)
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	paths, err = store.List("")
	if err != nil || len(paths) != 1 {
		t.Errorf("after drain: List = (%v, %v), want the snapshot restored", paths, err)
	}
	if len(paths) == 1 {
		if _, err := os.Stat(filepath.Join(dir, filepath.Base(paths[0]))); err != nil {
			t.Errorf("restored snapshot not under the warm dir: %v", err)
		}
	}
}
