package server

import (
	"sync"
	"time"

	"fssim/internal/machine"
)

// BreakerConfig tunes the per-(benchmark, mode) circuit breakers.
type BreakerConfig struct {
	// Window is how many recent run outcomes each breaker remembers.
	Window int
	// FailureThreshold is the failure fraction over the window that opens
	// the breaker (given at least MinSamples outcomes).
	FailureThreshold float64
	// MinSamples is the minimum outcomes before the threshold applies, so a
	// single early failure cannot open a cold breaker.
	MinSamples int
	// Cooldown is how long an open breaker fast-fails before letting one
	// half-open probe through.
	Cooldown time.Duration
	// DegradeAsFailure counts a run whose divergence watchdog demoted
	// services (accelerator unhealthy) as a failure: predictions from that
	// (benchmark, mode) are currently untrustworthy even though the run
	// completed.
	DegradeAsFailure bool
}

// DefaultBreakerConfig is tuned for interactive serving: open after half of
// the last 8 runs failed (at least 3 observed), probe every 5 seconds.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           8,
		FailureThreshold: 0.5,
		MinSamples:       3,
		Cooldown:         5 * time.Second,
		DegradeAsFailure: true,
	}
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one (benchmark, mode)'s circuit: closed (normal), open
// (fast-fail 503s), half-open (one probe in flight deciding recovery).
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	now      func() time.Time // test seam
	state    breakerState
	ring     []bool // recent outcomes, true = failure
	n, idx   int    // outcomes recorded, next slot
	fails    int    // failures currently in the ring
	openedAt time.Time
	probeAt  time.Time // when the current half-open probe was admitted
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg, now: now, ring: make([]bool, cfg.Window)}
}

// allow reports whether a request may proceed, and whether the admitted
// request is the half-open probe. For a denied request it also returns how
// long the client should wait before retrying. An open breaker whose cooldown
// has elapsed transitions to half-open and admits exactly one probe; further
// requests keep fast-failing until the probe resolves. A probe that never
// resolves (its run outcome lost for any reason) goes stale after another
// Cooldown, and allow re-admits a fresh probe — a lost probe can delay
// recovery by one cooldown, never wedge the circuit.
func (b *breaker) allow() (ok, probe bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, 0
	case breakerHalfOpen:
		if wait := b.cfg.Cooldown - b.now().Sub(b.probeAt); wait > 0 {
			// A probe is already in flight; shed until it resolves.
			return false, false, wait
		}
		// The probe went stale without recording an outcome: re-admit.
		b.probeAt = b.now()
		return true, true, 0
	default: // open
		if wait := b.cfg.Cooldown - b.now().Sub(b.openedAt); wait > 0 {
			return false, false, wait
		}
		b.state = breakerHalfOpen
		b.probeAt = b.now()
		return true, true, 0
	}
}

// record feeds one run outcome into the breaker.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// The probe decides: success closes the circuit with a clean slate,
		// failure re-opens it for another cooldown.
		if failed {
			b.state = breakerOpen
			b.openedAt = b.now()
		} else {
			b.state = breakerClosed
			b.n, b.idx, b.fails = 0, 0, 0
		}
		return
	}
	if b.n == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.ring[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
	if b.state == breakerClosed && b.n >= b.cfg.MinSamples &&
		float64(b.fails)/float64(b.n) >= b.cfg.FailureThreshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// snapshot returns the breaker's current state for /readyz and metrics.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerKey scopes one circuit: failures in one (benchmark, mode) must not
// shed load for healthy ones.
type breakerKey struct {
	bench string
	mode  machine.SimMode
}

// breakerSet lazily builds one breaker per (benchmark, mode).
type breakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time
	m   map[breakerKey]*breaker
}

func newBreakerSet(cfg BreakerConfig, now func() time.Time) *breakerSet {
	return &breakerSet{cfg: cfg.normalized(), now: now, m: make(map[breakerKey]*breaker)}
}

func (s *breakerSet) get(key breakerKey) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = newBreaker(s.cfg, s.now)
		s.m[key] = b
	}
	return b
}

// openCount reports how many circuits are currently not closed.
func (s *breakerSet) openCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.m {
		if b.snapshot() != breakerClosed {
			n++
		}
	}
	return n
}
