package server

import (
	"strings"
	"testing"
	"time"
)

// FuzzRunRequestDecode hammers the request decoder with arbitrary bytes: it
// must never panic, and any request it accepts must survive validation,
// spec-building, and key derivation without panicking either — the full
// untrusted path a malicious POST body can reach.
func FuzzRunRequestDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"benchmark":"ab-rand"}`,
		`{"benchmark":"ab-rand","mode":"accel","strategy":"eager","l2":1048576,"scale":0.5,"seed":7,"faults":"storm","deadline_ms":250}`,
		`{"benchmark":"srv-ok","mode":"full","scale":1e308}`,
		`{"benchmark":"","seed":-9223372036854775808}`,
		`{"benchmark":"ab-rand","scale":null}`,
		`{"benchmark":"ab-rand"} trailing`,
		`[1,2,3]`,
		`"just a string"`,
		`{"benchmark":"ab-rand","bogus":true}`,
		strings.Repeat(`{"benchmark":`, 100),
		`{"benchmark":"ab-rand","scale":NaN}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeRunRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		// Accepted requests must produce a stable key and a sane deadline.
		spec, err := req.spec(1.0, 1)
		if err != nil {
			return
		}
		key := spec.Key()
		if key.String() == "" {
			t.Fatalf("valid request produced empty key: %q", body)
		}
		spec2, err := req.spec(1.0, 1)
		if err != nil || key != spec2.Key() {
			t.Fatalf("key derivation not deterministic for %q (err %v)", body, err)
		}
		if d := req.deadline(2 * time.Minute); d <= 0 || d > 2*time.Minute {
			t.Fatalf("deadline %v out of range for %q", d, body)
		}
	})
}
