package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Sentinel errors a Client maps well-known server responses onto, so callers
// can branch with errors.Is instead of parsing status codes.
var (
	// ErrOverloaded: the admission queue was full (HTTP 429). Retry after
	// the duration carried by the *APIError.
	ErrOverloaded = errors.New("server overloaded")
	// ErrUnavailable: the server is draining or a circuit breaker is open
	// for the requested (benchmark, mode) (HTTP 503).
	ErrUnavailable = errors.New("server unavailable")
	// ErrDeadline: the request's deadline expired before the run finished
	// (HTTP 504); the result may become available later under the same id.
	ErrDeadline = errors.New("run deadline exceeded")
)

// APIError is a non-200 server response.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration // from the Retry-After header, when present
	kind       error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.StatusCode, e.Message)
}

func (e *APIError) Unwrap() error { return e.kind }

// RunResult is a successful run submission: the decoded response plus the
// exact bytes (byte-identical across identical requests) and cache status.
type RunResult struct {
	Response RunResponse
	Body     []byte // raw response body, newline-terminated
	Cache    string // X-Fssim-Cache: "miss", "coalesced" or "hit"
}

// Client talks to a running fssimd.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://localhost:8080"). The client applies no timeout of its own —
// deadlines belong to the request context and the server's admission layer.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Run submits one run request and waits for its result.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/runs", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, body)
	}
	out := &RunResult{Body: body, Cache: resp.Header.Get("X-Fssim-Cache")}
	if err := json.Unmarshal(body, &out.Response); err != nil {
		return nil, fmt.Errorf("server: undecodable response: %w", err)
	}
	return out, nil
}

// Get fetches a previously submitted run by id. A run still executing
// returns (nil, nil): not failed, not finished.
func (c *Client) Get(ctx context.Context, id string) (*RunResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		out := &RunResult{Body: body, Cache: resp.Header.Get("X-Fssim-Cache")}
		if err := json.Unmarshal(body, &out.Response); err != nil {
			return nil, fmt.Errorf("server: undecodable response: %w", err)
		}
		return out, nil
	case http.StatusAccepted:
		return nil, nil
	default:
		return nil, apiError(resp, body)
	}
}

// Snapshot fetches the newest persisted PLT snapshot for a benchmark
// (GET /v1/plt/{benchmark}) as raw pltstore bytes — droppable into another
// process's warm directory to ship learned state between hosts.
func (c *Client) Snapshot(ctx context.Context, benchmark string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/plt/"+url.PathEscape(benchmark), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, body)
	}
	return body, nil
}

// Ready reports whether the server is accepting work (GET /readyz).
func (c *Client) Ready(ctx context.Context) bool {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// apiError decodes an error response into an *APIError with the matching
// sentinel kind.
func apiError(resp *http.Response, body []byte) error {
	var eb errBody
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	e := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		e.kind = ErrOverloaded
	case http.StatusServiceUnavailable:
		e.kind = ErrUnavailable
	case http.StatusGatewayTimeout:
		e.kind = ErrDeadline
	}
	return e
}
