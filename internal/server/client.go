package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fssim/internal/pltstore"
)

// Sentinel errors a Client maps well-known server responses onto, so callers
// can branch with errors.Is instead of parsing status codes.
var (
	// ErrOverloaded: the admission queue was full (HTTP 429). Retry after
	// the duration carried by the *APIError.
	ErrOverloaded = errors.New("server overloaded")
	// ErrUnavailable: the server is draining or a circuit breaker is open
	// for the requested (benchmark, mode) (HTTP 503).
	ErrUnavailable = errors.New("server unavailable")
	// ErrDeadline: the request's deadline expired before the run finished
	// (HTTP 504); the result may become available later under the same id.
	ErrDeadline = errors.New("run deadline exceeded")
	// ErrSnapshotOversize: a PLT snapshot response exceeded
	// pltstore.MaxSnapshotBytes; the body was abandoned, not buffered.
	ErrSnapshotOversize = errors.New("server: snapshot response exceeds size cap")
)

// APIError is a non-200 server response.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration // from the Retry-After header, when present
	kind       error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.StatusCode, e.Message)
}

func (e *APIError) Unwrap() error { return e.kind }

// RunResult is a successful run submission: the decoded response plus the
// exact bytes (byte-identical across identical requests) and cache status.
type RunResult struct {
	Response RunResponse
	Body     []byte // raw response body, newline-terminated
	Cache    string // X-Fssim-Cache: "miss", "coalesced" or "hit"
}

// RetryPolicy bounds a Client's retries. Backoff is full-jitter exponential:
// each sleep is uniform in (0, min(Cap, Base·2^attempt)], and a server
// Retry-After acts as a floor — the client never comes back sooner than the
// server asked. The zero policy is single-shot (no retries), preserving the
// pre-retry Client behavior.
type RetryPolicy struct {
	// Max is how many extra attempts follow a retryable failure (0 = none).
	Max int
	// Base scales the exponential backoff (default 100ms when Max > 0).
	Base time.Duration
	// Cap bounds any single sleep (default 5s).
	Cap time.Duration

	// rnd and sleep are test seams; nil means math/rand and a ctx-aware
	// time.Sleep.
	rnd   func() float64
	sleep func(context.Context, time.Duration) error
}

// DefaultRetryPolicy is the policy fleet components use: a few attempts,
// sub-second backoff, bounded sleeps.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, Base: 100 * time.Millisecond, Cap: 5 * time.Second}
}

// backoff returns the jittered sleep before retry number attempt (1-based),
// honoring retryAfter as a floor.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	max := base << uint(attempt-1)
	if max > cap || max <= 0 {
		max = cap
	}
	r := rand.Float64
	if p.rnd != nil {
		r = p.rnd
	}
	d := time.Duration(r() * float64(max))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func (p RetryPolicy) pause(ctx context.Context, d time.Duration) error {
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client talks to a running fssimd.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// NewClient builds a client for the server at base (e.g.
// "http://localhost:8080"). The client applies no timeout of its own —
// deadlines belong to the request context and the server's admission layer —
// and performs no retries; see WithRetry.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// WithRetry returns a copy of the client that retries per the given policy.
// Retry safety is method-aware:
//
//   - Idempotent GETs (Get, Snapshot, PLTIndex, Readyz) retry on transport
//     errors and on 429/502/503/504 responses.
//   - Run (a POST) retries only when the server provably did not execute the
//     submission: a refused connection (nothing reached the server) or a
//     429/503 shed (the server rejected it before admission). Once any other
//     response body has been read, the submit is never replayed.
//
// 429/503 responses carry Retry-After, which the backoff honors as a floor.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// retryable classifies one attempt's failure. resp is nil on transport
// errors. idempotent marks requests that are safe to replay unconditionally.
func retryable(resp *http.Response, err error, idempotent bool) bool {
	if err != nil {
		if idempotent {
			return true
		}
		// A refused connection means the request never reached a server, so
		// even a non-idempotent submit is safe to retry.
		return errors.Is(err, syscall.ECONNREFUSED)
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// The server sheds 429/503 before running anything; safe for all.
		return true
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return idempotent
	}
	return false
}

// do issues one request (rebuilt per attempt via build) with the client's
// retry policy, reading at most limit body bytes. handle consumes a response
// and reports the terminal result; it is only called for attempts that will
// not be retried.
func (c *Client) do(ctx context.Context, idempotent bool, limit int64, build func() (*http.Request, error), handle func(*http.Response, []byte) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		hreq, err := build()
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(hreq.WithContext(ctx))
		final := attempt >= c.retry.Max || !retryable(resp, err, idempotent)
		if err != nil {
			lastErr = err
			if final {
				return lastErr
			}
		} else {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, limit))
			resp.Body.Close()
			if rerr != nil {
				// The body read failed mid-stream: terminal for submits (the
				// run may have executed), retryable for idempotent requests.
				lastErr = rerr
				if !idempotent || attempt >= c.retry.Max {
					return lastErr
				}
			} else if final {
				return handle(resp, body)
			} else {
				lastErr = apiError(resp, body)
			}
		}
		var ra time.Duration
		var ae *APIError
		if errors.As(lastErr, &ae) {
			ra = ae.RetryAfter
		}
		if err := c.retry.pause(ctx, c.retry.backoff(attempt+1, ra)); err != nil {
			return errors.Join(err, lastErr)
		}
	}
}

// maxResponseBody bounds run/readyz/index response reads; these bodies are
// small JSON, so anything beyond this is garbage.
const maxResponseBody = 4 << 20

// Run submits one run request and waits for its result. With a retry policy,
// shed submissions (429/503) and refused connections are retried with
// full-jitter backoff honoring Retry-After; a submission whose response body
// was (even partially) read is never replayed.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out *RunResult
	err = c.do(ctx, false, maxResponseBody, func() (*http.Request, error) {
		hreq, err := http.NewRequest(http.MethodPost, c.base+"/v1/runs", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	}, func(resp *http.Response, body []byte) error {
		if resp.StatusCode != http.StatusOK {
			return apiError(resp, body)
		}
		out = &RunResult{Body: body, Cache: resp.Header.Get("X-Fssim-Cache")}
		if err := json.Unmarshal(body, &out.Response); err != nil {
			return fmt.Errorf("server: undecodable response: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Get fetches a previously submitted run by id. A run still executing
// returns (nil, nil): not failed, not finished. Idempotent, so transport
// errors and transient (429/5xx) responses are retried under the policy.
func (c *Client) Get(ctx context.Context, id string) (*RunResult, error) {
	var out *RunResult
	err := c.do(ctx, true, maxResponseBody, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/runs/"+id, nil)
	}, func(resp *http.Response, body []byte) error {
		switch resp.StatusCode {
		case http.StatusOK:
			out = &RunResult{Body: body, Cache: resp.Header.Get("X-Fssim-Cache")}
			if err := json.Unmarshal(body, &out.Response); err != nil {
				return fmt.Errorf("server: undecodable response: %w", err)
			}
			return nil
		case http.StatusAccepted:
			out = nil
			return nil
		default:
			return apiError(resp, body)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshot fetches the newest persisted PLT snapshot for a benchmark
// (GET /v1/plt/{benchmark}) as raw pltstore bytes — droppable into another
// process's warm directory to ship learned state between hosts. The body is
// read through a limit sized from pltstore's decode caps; an oversize
// response is rejected with ErrSnapshotOversize without buffering it.
func (c *Client) Snapshot(ctx context.Context, benchmark string) ([]byte, error) {
	return c.fetchSnapshot(ctx, "/v1/plt/"+url.PathEscape(benchmark))
}

// SnapshotAt fetches the exact snapshot a peer's index advertises
// (GET /v1/plt/{benchmark}/{learn-hash}) — the anti-entropy fetch path. The
// same size cap as Snapshot applies; the caller must still verify the bytes
// (pltstore.Store.PutVerified) before trusting them.
func (c *Client) SnapshotAt(ctx context.Context, benchmark, learnHash string) ([]byte, error) {
	return c.fetchSnapshot(ctx, "/v1/plt/"+url.PathEscape(benchmark)+"/"+url.PathEscape(learnHash))
}

func (c *Client) fetchSnapshot(ctx context.Context, path string) ([]byte, error) {
	var out []byte
	err := c.do(ctx, true, pltstore.MaxSnapshotBytes+1, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+path, nil)
	}, func(resp *http.Response, body []byte) error {
		if resp.StatusCode != http.StatusOK {
			return apiError(resp, body)
		}
		if int64(len(body)) > pltstore.MaxSnapshotBytes {
			return fmt.Errorf("%w (> %d bytes)", ErrSnapshotOversize, int64(pltstore.MaxSnapshotBytes))
		}
		out = body
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PLTIndex lists the snapshots a peer's store currently advertises
// (GET /v1/plt) — what an anti-entropy round diffs against the local store.
func (c *Client) PLTIndex(ctx context.Context) ([]pltstore.IndexEntry, error) {
	var out []pltstore.IndexEntry
	err := c.do(ctx, true, maxResponseBody, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/v1/plt", nil)
	}, func(resp *http.Response, body []byte) error {
		if resp.StatusCode != http.StatusOK {
			return apiError(resp, body)
		}
		var idx pltIndexBody
		if err := json.Unmarshal(body, &idx); err != nil {
			return fmt.Errorf("server: undecodable PLT index: %w", err)
		}
		out = idx.Snapshots
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadyState is the decoded GET /readyz body: whether the server is
// admitting work, and the load signals a router's ejection logic weighs.
type ReadyState struct {
	Status       string `json:"status"` // "ready" or "draining"
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	BreakersOpen int    `json:"breakers_open"`
}

// Readyz fetches and decodes the server's readiness state. The returned
// state is valid whenever err is nil — including a draining server, which
// responds 503 but still describes itself.
func (c *Client) Readyz(ctx context.Context) (ReadyState, error) {
	var st ReadyState
	err := c.do(ctx, true, maxResponseBody, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/readyz", nil)
	}, func(resp *http.Response, body []byte) error {
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			return apiError(resp, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("server: undecodable readyz body: %w", err)
		}
		return nil
	})
	return st, err
}

// Ready reports whether the server is accepting work (GET /readyz).
func (c *Client) Ready(ctx context.Context) bool {
	st, err := c.Readyz(ctx)
	return err == nil && !st.Draining && st.Status == "ready"
}

// apiError decodes an error response into an *APIError with the matching
// sentinel kind.
func apiError(resp *http.Response, body []byte) error {
	var eb errBody
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	e := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		e.kind = ErrOverloaded
	case http.StatusServiceUnavailable:
		e.kind = ErrUnavailable
	case http.StatusGatewayTimeout:
		e.kind = ErrDeadline
	}
	return e
}
