package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fssim/internal/pltstore"
)

// testPolicy is a deterministic retry policy: mid-range jitter, recorded
// sleeps, no real waiting.
func testPolicy(max int, sleeps *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		Max:  max,
		Base: 10 * time.Millisecond,
		Cap:  time.Second,
		rnd:  func() float64 { return 0.5 },
		sleep: func(ctx context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return nil
		},
	}
}

// flakyHandler fails the first n requests with the given status, then
// delegates to ok.
func flakyHandler(n int, status int, header http.Header, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	var attempts atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= int64(n) {
			for k, vs := range header {
				w.Header()[k] = vs
			}
			w.WriteHeader(status)
			fmt.Fprintln(w, `{"error":"scripted failure"}`)
			return
		}
		ok(w, r)
	}, &attempts
}

func okRunHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"id":"r1","key":"k","benchmark":"srv-ok","mode":"full","cycles":10,"instructions":5,"ipc":0.5,"l2_misses":1}`)
}

// TestRunRetriesShedSubmits: 429-shed submissions are retried (the server
// provably did not run them) and the Retry-After floor is honored.
func TestRunRetriesShedSubmits(t *testing.T) {
	h, attempts := flakyHandler(2, http.StatusTooManyRequests,
		http.Header{"Retry-After": []string{"1"}}, okRunHandler)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL).WithRetry(testPolicy(3, &sleeps))
	res, err := c.Run(context.Background(), RunRequest{Benchmark: "srv-ok"})
	if err != nil {
		t.Fatalf("Run after shed retries: %v", err)
	}
	if res.Response.ID != "r1" {
		t.Errorf("response = %+v", res.Response)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (2 shed + 1 success)", got)
	}
	for i, d := range sleeps {
		if d < time.Second {
			t.Errorf("sleep %d = %v, shorter than the Retry-After floor of 1s", i, d)
		}
	}
}

// TestRunNeverRetriesAfterBodyRead: a 500 response means the submit may have
// executed; it must not be replayed even under a generous policy.
func TestRunNeverRetriesAfterBodyRead(t *testing.T) {
	h, attempts := flakyHandler(1, http.StatusInternalServerError, nil, okRunHandler)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL).WithRetry(testPolicy(5, &sleeps))
	_, err := c.Run(context.Background(), RunRequest{Benchmark: "srv-ok"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want the 500 APIError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want exactly 1 (no replay after a read body)", got)
	}
	if len(sleeps) != 0 {
		t.Errorf("client slept %v before a terminal failure", sleeps)
	}
}

// TestRunRetriesRefusedConnection: ECONNREFUSED means the submit never
// reached a server, so even a POST retries — and gives up after Max.
func TestRunRetriesRefusedConnection(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // port now refuses connections

	var sleeps []time.Duration
	c := NewClient(url).WithRetry(testPolicy(2, &sleeps))
	_, err := c.Run(context.Background(), RunRequest{Benchmark: "srv-ok"})
	if err == nil {
		t.Fatal("Run against a dead port succeeded")
	}
	if len(sleeps) != 2 {
		t.Errorf("client made %d backoffs, want 2 (Max)", len(sleeps))
	}
}

// TestGetRetriesTransientStatuses: idempotent GETs retry 502s.
func TestGetRetriesTransientStatuses(t *testing.T) {
	h, attempts := flakyHandler(1, http.StatusBadGateway, nil, okRunHandler)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL).WithRetry(testPolicy(3, &sleeps))
	res, err := c.Get(context.Background(), "r1")
	if err != nil || res == nil || res.Response.ID != "r1" {
		t.Fatalf("Get = (%+v, %v), want the retried success", res, err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestZeroPolicyIsSingleShot: without WithRetry, one failure is final — the
// pre-retry contract.
func TestZeroPolicyIsSingleShot(t *testing.T) {
	h, attempts := flakyHandler(1, http.StatusTooManyRequests, nil, okRunHandler)
	srv := httptest.NewServer(h)
	defer srv.Close()

	_, err := NewClient(srv.URL).Run(context.Background(), RunRequest{Benchmark: "srv-ok"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("zero policy made %d attempts, want 1", got)
	}
}

// TestSnapshotOversizeRejected: a snapshot body beyond pltstore's cap is
// refused with the typed error instead of being buffered whole.
func TestSnapshotOversizeRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		chunk := make([]byte, 1<<20)
		for written := int64(0); written <= pltstore.MaxSnapshotBytes; written += int64(len(chunk)) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL).Snapshot(context.Background(), "srv-ok")
	if !errors.Is(err, ErrSnapshotOversize) {
		t.Fatalf("err = %v, want ErrSnapshotOversize", err)
	}
}

// TestReadyzBody: /readyz describes the server in JSON — ready and draining
// alike — while keeping the status-code contract (200 ready, 503 draining).
func TestReadyzBody(t *testing.T) {
	s, c := newTestServer(t, Config{Queue: 7})
	ctx := context.Background()

	st, err := c.Readyz(ctx)
	if err != nil {
		t.Fatalf("Readyz: %v", err)
	}
	if st.Status != "ready" || st.Draining || st.QueueCap != 7 || st.BreakersOpen != 0 {
		t.Errorf("ready state = %+v", st)
	}

	done := make(chan error, 1)
	go func() { done <- s.Drain(ctx) }()
	waitFor(t, func() bool {
		st, err := c.Readyz(ctx)
		return err == nil && st.Draining
	})
	st, err = c.Readyz(ctx)
	if err != nil {
		t.Fatalf("Readyz while draining: %v", err)
	}
	if st.Status != "draining" || !st.Draining {
		t.Errorf("draining state = %+v", st)
	}
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestBackoffFullJitterBounds: backoff stays within (0, min(Cap, Base·2^n)]
// and respects the Retry-After floor.
func TestBackoffFullJitterBounds(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 100 * time.Millisecond, Cap: time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := p.backoff(attempt, 0)
			max := p.Base << uint(attempt-1)
			if max > p.Cap || max <= 0 {
				max = p.Cap
			}
			if d <= 0 || d > max {
				t.Fatalf("backoff(%d) = %v, outside (0, %v]", attempt, d, max)
			}
		}
	}
	if d := p.backoff(1, 3*time.Second); d < 3*time.Second {
		t.Errorf("backoff with Retry-After 3s = %v, floor violated", d)
	}
}
