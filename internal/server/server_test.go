package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fssim/internal/experiments"
	"fssim/internal/kernel"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

// Misbehaving benchmarks the serving tests drive. Hidden keeps them out of
// workload.Names() (and therefore out of every real experiment).
var (
	flakyFail atomic.Bool           // srv-flaky panics while set
	gateMu    sync.Mutex            // guards gate
	gate      = make(chan struct{}) // srv-gate blocks until the current gate closes
)

func currentGate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	return gate
}

func resetGate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	gate = make(chan struct{})
	return gate
}

func closeGate() {
	gateMu.Lock()
	defer gateMu.Unlock()
	select {
	case <-gate:
	default:
		close(gate)
	}
}

func init() {
	workload.Register(workload.Benchmark{
		Name: "srv-ok", Hidden: true,
		Description: "small well-behaved serving-test workload",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("ok", func(p *kernel.Proc) { p.U.Mix(50_000) })
	})
	workload.Register(workload.Benchmark{
		Name: "srv-spin", Hidden: true,
		Description: "spins forever; only cancellation ends it",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("spin", func(p *kernel.Proc) {
			for {
				p.U.Mix(10_000)
			}
		})
	})
	workload.Register(workload.Benchmark{
		Name: "srv-flaky", Hidden: true,
		Description: "panics while flakyFail is set, succeeds otherwise",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("flaky", func(p *kernel.Proc) {
			if flakyFail.Load() {
				panic("deliberate flaky failure")
			}
			p.U.Mix(20_000)
		})
	})
	workload.Register(workload.Benchmark{
		Name: "srv-gate", Hidden: true,
		Description: "blocks until the test releases the gate",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("gate", func(p *kernel.Proc) {
			<-currentGate()
			p.U.Mix(1_000)
		})
	})
	workload.Register(workload.Benchmark{
		Name: "srv-gate-fail", Hidden: true,
		Description: "blocks until the gate releases, then panics",
	}, func(k *kernel.Kernel, scale float64) {
		k.Spawn("gatefail", func(p *kernel.Proc) {
			<-currentGate()
			panic("deliberate post-gate failure")
		})
	})
}

// newTestServer builds a Server plus an httptest front and a Client, and
// wires teardown: gates released, detached runs canceled.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		closeGate()
		s.cancelRuns()
		hs.Close()
	})
	return s, NewClient(hs.URL)
}

func okRequest(seed int64) RunRequest {
	return RunRequest{Benchmark: "srv-ok", Mode: "full", Scale: 0.1, Seed: seed}
}

// TestSubmitRepeatByteIdentical: the determinism contract — an identical
// repeat request is served from the memo cache with a byte-identical body,
// and GET /v1/runs/{id} returns those same bytes.
func TestSubmitRepeatByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	first, err := c.Run(ctx, okRequest(1))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.Cache != "miss" {
		t.Errorf("first request cache status = %q, want miss", first.Cache)
	}
	if first.Response.Cycles == 0 || first.Response.ID == "" {
		t.Errorf("implausible response: %+v", first.Response)
	}

	second, err := c.Run(ctx, okRequest(1))
	if err != nil {
		t.Fatalf("repeat run: %v", err)
	}
	if second.Cache != "hit" {
		t.Errorf("repeat request cache status = %q, want hit", second.Cache)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Errorf("repeat response not byte-identical:\n%s\n%s", first.Body, second.Body)
	}

	got, err := c.Get(ctx, first.Response.ID)
	if err != nil {
		t.Fatalf("GET by id: %v", err)
	}
	if !bytes.Equal(got.Body, first.Body) {
		t.Errorf("GET /v1/runs/{id} body differs from POST body")
	}
}

// TestAdmissionBound is robustness clause (a): requests beyond the queue
// capacity are shed with 429 + Retry-After, and shedding allocates nothing —
// the server's goroutine count stays bounded through the storm.
func TestAdmissionBound(t *testing.T) {
	resetGate()
	s, c := newTestServer(t, Config{Queue: 2, Workers: 1, Deadline: 30 * time.Second})
	ctx := context.Background()

	// Fill the queue: one gated run occupying the worker, one queued behind.
	results := make(chan error, 2)
	for i := int64(1); i <= 2; i++ {
		req := RunRequest{Benchmark: "srv-gate", Scale: 0.1, Seed: i}
		go func() {
			_, err := c.Run(ctx, req)
			results <- err
		}()
	}
	waitFor(t, func() bool { return len(s.queueSlots) == 2 })

	g0 := runtime.NumGoroutine()
	const storm = 25
	codes := make(chan error, storm)
	for i := 0; i < storm; i++ {
		req := RunRequest{Benchmark: "srv-ok", Scale: 0.1, Seed: int64(100 + i)}
		go func() {
			_, err := c.Run(ctx, req)
			codes <- err
		}()
	}
	for i := 0; i < storm; i++ {
		err := <-codes
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("storm request %d: got %v, want ErrOverloaded (429)", i, err)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
			t.Errorf("shed response missing Retry-After: %v", err)
		}
	}
	// Shed requests left nothing behind: goroutines return to (about) the
	// pre-storm level — no per-request fan-out survives.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= g0+8 })

	if shed := s.mShed.Value(); shed != storm {
		t.Errorf("shed counter = %d, want %d", shed, storm)
	}
	closeGate()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed after gate release: %v", err)
		}
	}
}

// TestWedgedRunDeadline is robustness clause (b): a wedged simulation returns
// a deadline error to its client without blocking other clients.
func TestWedgedRunDeadline(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, RunTimeout: 5 * time.Second})
	ctx := context.Background()

	wedged := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, RunRequest{
			Benchmark: "srv-spin", Faults: "storm", Scale: 0.1, DeadlineMS: 150,
		})
		wedged <- err
	}()

	// A healthy client on the same server is unaffected.
	if _, err := c.Run(ctx, okRequest(1)); err != nil {
		t.Fatalf("healthy request blocked by wedged run: %v", err)
	}

	select {
	case err := <-wedged:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("wedged run returned %v, want ErrDeadline (504)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged request did not resolve at its deadline")
	}
}

// TestBreakerOpensAndRecovers is robustness clause (c): a failure storm on
// one (benchmark, mode) opens its breaker — new requests fast-fail 503 — and
// a half-open probe closes it again once the benchmark recovers.
func TestBreakerOpensAndRecovers(t *testing.T) {
	flakyFail.Store(true)
	defer flakyFail.Store(false)
	_, c := newTestServer(t, Config{
		Workers: 2,
		Breaker: BreakerConfig{Window: 4, FailureThreshold: 0.5, MinSamples: 2, Cooldown: 100 * time.Millisecond},
	})
	ctx := context.Background()
	req := RunRequest{Benchmark: "srv-flaky", Scale: 0.1}

	// Two failures reach MinSamples at 100% failure rate: breaker opens.
	for i := 0; i < 2; i++ {
		if _, err := c.Run(ctx, req); err == nil {
			t.Fatalf("flaky run %d unexpectedly succeeded", i)
		}
	}
	_, err := c.Run(ctx, req)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("breaker did not fast-fail: %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Errorf("breaker 503 missing Retry-After: %v", err)
	}

	// An unrelated benchmark is unaffected: breakers are per-(bench, mode).
	if _, err := c.Run(ctx, okRequest(1)); err != nil {
		t.Fatalf("breaker for srv-flaky leaked into srv-ok: %v", err)
	}

	// After the cooldown the half-open probe runs for real — and succeeds
	// now that the benchmark has recovered, closing the breaker.
	flakyFail.Store(false)
	time.Sleep(120 * time.Millisecond)
	probe, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if probe.Response.Cycles == 0 {
		t.Error("probe response implausible")
	}
	if _, err := c.Run(ctx, req); err != nil {
		t.Fatalf("breaker did not close after successful probe: %v", err)
	}
}

// TestAbandonedProbeDoesNotWedgeBreaker: the half-open probe's waiter giving
// up (here: a 1ms deadline) must not strand the circuit in half-open — the
// detached run's completion resolves the breaker even with no waiter left.
func TestAbandonedProbeDoesNotWedgeBreaker(t *testing.T) {
	flakyFail.Store(true)
	defer flakyFail.Store(false)
	s, c := newTestServer(t, Config{
		Workers: 2,
		Breaker: BreakerConfig{Window: 4, FailureThreshold: 0.5, MinSamples: 2, Cooldown: 100 * time.Millisecond},
	})
	ctx := context.Background()

	// Two failed runs (distinct keys) open the breaker.
	for i := int64(1); i <= 2; i++ {
		if _, err := c.Run(ctx, RunRequest{Benchmark: "srv-flaky", Scale: 0.1, Seed: i}); err == nil {
			t.Fatalf("flaky run %d unexpectedly succeeded", i)
		}
	}
	br := s.breakers.get(breakerKey{bench: "srv-flaky", mode: machine.FullSystem})
	waitFor(t, func() bool { return br.snapshot() == breakerOpen })

	// The benchmark recovers. After the cooldown, a probe whose client waits
	// only 1ms abandons the run almost surely before it completes.
	flakyFail.Store(false)
	time.Sleep(120 * time.Millisecond)
	_, _ = c.Run(ctx, RunRequest{Benchmark: "srv-flaky", Scale: 0.1, Seed: 3, DeadlineMS: 1})

	// The detached completion must close the circuit; follow-up requests are
	// served, not fast-failed.
	waitFor(t, func() bool { return br.snapshot() == breakerClosed })
	if _, err := c.Run(ctx, RunRequest{Benchmark: "srv-flaky", Scale: 0.1, Seed: 4}); err != nil {
		t.Fatalf("breaker wedged after abandoned probe: %v", err)
	}
}

// TestAbandonedRunStillResolvesRecord: when every waiter gives up before the
// run completes, the detached completion still settles the run record, so
// GET /v1/runs/{id} serves the documented "result may become available later
// under the same id" contract instead of reporting 202 forever.
func TestAbandonedRunStillResolvesRecord(t *testing.T) {
	resetGate()
	_, c := newTestServer(t, Config{Workers: 2, Deadline: 30 * time.Second})
	ctx := context.Background()
	req := RunRequest{Benchmark: "srv-gate", Scale: 0.1, Seed: 11, DeadlineMS: 50}

	_, err := c.Run(ctx, req)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("gated run with 50ms deadline returned %v, want ErrDeadline", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("504 without APIError: %v", err)
	}
	id := strings.TrimPrefix(ae.Message, "deadline exceeded waiting for run ")
	if id == ae.Message || id == "" {
		t.Fatalf("504 body does not name the run id: %q", ae.Message)
	}

	// Still gated: the record reports running (202).
	if res, err := c.Get(ctx, id); err != nil || res != nil {
		t.Fatalf("Get before completion = (%v, %v), want 202 (nil, nil)", res, err)
	}

	// Release the run with no waiter attached; the detached completion must
	// settle the record.
	closeGate()
	var got *RunResult
	waitFor(t, func() bool {
		res, err := c.Get(ctx, id)
		got = res
		return err == nil && res != nil
	})
	if got.Response.ID != id || got.Response.Cycles == 0 {
		t.Errorf("implausible settled record: %+v", got.Response)
	}

	// The settled body is byte-identical to what a fresh POST now serves.
	req.DeadlineMS = 0
	fresh, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("post-release run failed: %v", err)
	}
	if !bytes.Equal(fresh.Body, got.Body) {
		t.Errorf("settled record body differs from POST body:\n%s\n%s", got.Body, fresh.Body)
	}
}

// TestCoalescedFailureFeedsBreakerOnce: one failed execution shared by three
// coalesced waiters counts as one breaker outcome, not three — otherwise a
// single popular failing run could open the circuit by itself.
func TestCoalescedFailureFeedsBreakerOnce(t *testing.T) {
	resetGate()
	s, c := newTestServer(t, Config{Workers: 2, Deadline: 30 * time.Second,
		Breaker: BreakerConfig{Window: 8, FailureThreshold: 0.5, MinSamples: 3, Cooldown: time.Second}})
	ctx := context.Background()
	req := RunRequest{Benchmark: "srv-gate-fail", Scale: 0.1, Seed: 5}

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := c.Run(ctx, req)
			errs <- err
		}()
	}
	// All three are attached to the single in-flight run (1 miss + 2 joins)
	// before the gate releases it into its panic.
	waitFor(t, func() bool {
		st := s.sched.Stats()
		return st.Misses == 1 && st.Hits == 2
	})
	closeGate()
	for i := 0; i < 3; i++ {
		if err := <-errs; err == nil {
			t.Fatal("coalesced run on a panicking benchmark succeeded")
		}
	}

	br := s.breakers.get(breakerKey{bench: "srv-gate-fail", mode: machine.FullSystem})
	waitFor(t, func() bool {
		br.mu.Lock()
		defer br.mu.Unlock()
		return br.n == 1
	})
	br.mu.Lock()
	n, fails, state := br.n, br.fails, br.state
	br.mu.Unlock()
	if n != 1 || fails != 1 {
		t.Errorf("breaker ring = %d outcomes / %d failures for one shared run, want 1/1", n, fails)
	}
	if state != breakerClosed {
		t.Errorf("breaker state = %v after a single failure below MinSamples, want closed", state)
	}
}

// TestRunRecordsBounded: the per-id record map must not grow without bound —
// past MaxRecords the oldest resolved records are evicted (404), while the
// newest stay addressable.
func TestRunRecordsBounded(t *testing.T) {
	s, c := newTestServer(t, Config{MaxRecords: 2})
	ctx := context.Background()
	var first, last *RunResult
	for i := int64(1); i <= 5; i++ {
		res, err := c.Run(ctx, okRequest(i))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if first == nil {
			first = res
		}
		last = res
	}
	s.mu.Lock()
	n := len(s.records)
	s.mu.Unlock()
	if n > 2 {
		t.Errorf("records map holds %d entries, want <= MaxRecords=2", n)
	}
	if res, err := c.Get(ctx, last.Response.ID); err != nil || res == nil {
		t.Errorf("newest record unavailable: (%v, %v)", res, err)
	}
	_, err := c.Get(ctx, first.Response.ID)
	if err == nil {
		t.Error("oldest record still addressable past the bound")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
			t.Errorf("evicted record error = %v, want 404", err)
		}
	}
}

// TestDedupSingleflight is robustness clause (e): two concurrent identical
// requests share one simulation and produce byte-identical bodies.
func TestDedupSingleflight(t *testing.T) {
	resetGate()
	s, c := newTestServer(t, Config{Workers: 2, Deadline: 30 * time.Second})
	ctx := context.Background()
	req := RunRequest{Benchmark: "srv-gate", Scale: 0.1, Seed: 7}

	type reply struct {
		res *RunResult
		err error
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := c.Run(ctx, req)
			replies <- reply{res, err}
		}()
	}
	// Both requests are in the building before the run can finish.
	waitFor(t, func() bool { return len(s.queueSlots) == 2 })
	closeGate()

	a, b := <-replies, <-replies
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent identical requests failed: %v / %v", a.err, b.err)
	}
	if !bytes.Equal(a.res.Body, b.res.Body) {
		t.Errorf("concurrent identical requests differ:\n%s\n%s", a.res.Body, b.res.Body)
	}
	statuses := []string{a.res.Cache, b.res.Cache}
	miss := 0
	for _, st := range statuses {
		if st == "miss" {
			miss++
		} else if st != "coalesced" && st != "hit" {
			t.Errorf("unexpected cache status %q", st)
		}
	}
	if miss != 1 {
		t.Errorf("cache statuses = %v, want exactly one miss", statuses)
	}
	if st := s.sched.Stats(); st.Misses != 1 {
		t.Errorf("scheduler executed %d simulations for 2 identical requests, want 1", st.Misses)
	}
	if s.mDedup.Value() != 1 {
		t.Errorf("dedup counter = %d, want 1", s.mDedup.Value())
	}
}

// TestDrain is robustness clause (d): draining stops admission, resolves
// in-flight runs (canceling them at the drain deadline), and flushes trace
// and metrics artifacts — including the aborted runs' partial traces.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	s, c := newTestServer(t, Config{
		Workers: 2, Deadline: 30 * time.Second, RunTimeout: -1,
		TracePath: tracePath, MetricsPath: metricsPath,
	})
	ctx := context.Background()

	// A run that will still be in flight when the drain starts.
	spinErr := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, RunRequest{Benchmark: "srv-spin", Scale: 0.1})
		spinErr <- err
	}()
	// And one completed run whose trace must survive into the artifacts.
	if _, err := c.Run(ctx, okRequest(1)); err != nil {
		t.Fatalf("setup run failed: %v", err)
	}
	waitFor(t, func() bool { return len(s.queueSlots) == 1 })

	dctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(dctx) }()

	// While draining: no new admissions, readyz reports not-ready.
	waitFor(t, func() bool { return s.draining.Load() })
	if _, err := c.Run(ctx, okRequest(99)); !errors.Is(err, ErrUnavailable) {
		t.Errorf("draining server admitted a request: %v", err)
	}
	if c.Ready(ctx) {
		t.Error("draining server reports ready")
	}

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	// The in-flight spin run was resolved (canceled), not abandoned.
	select {
	case err := <-spinErr:
		if err == nil {
			t.Error("endless run reported success after drain cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request still unresolved after drain")
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace artifact not flushed: %v", err)
	}
	if !strings.Contains(string(trace), `"traceEvents"`) {
		t.Error("trace artifact malformed")
	}
	if !strings.Contains(string(trace), "!aborted") {
		t.Error("canceled run's partial trace missing from the drain artifact")
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics artifact not flushed: %v", err)
	}
	for _, want := range []string{"# run ", "sched.distinct"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics artifact missing %q", want)
		}
	}
}

// TestServeDrainExitsClean drives the full Serve lifecycle: listen, serve a
// request, cancel the context, and return nil after a clean drain (the
// exit-0 contract fssimd relies on for SIGTERM).
func TestServeDrainExitsClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{Addr: "127.0.0.1:0", DrainTimeout: 2 * time.Second})
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()
	c := NewClient("http://" + s.Addr())

	if _, err := c.Run(context.Background(), okRequest(1)); err != nil {
		t.Fatalf("run against Serve: %v", err)
	}
	if !c.Ready(context.Background()) {
		t.Error("serving server not ready")
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve did not drain cleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
}

// TestBadRequests: malformed submissions fail fast with 400 and never reach
// the scheduler.
func TestBadRequests(t *testing.T) {
	s, c := newTestServer(t, Config{})
	hc := &http.Client{}
	post := func(body string) int {
		t.Helper()
		resp, err := hc.Post(c.base+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]string{
		"empty":            ``,
		"not json":         `}{`,
		"unknown field":    `{"benchmark":"srv-ok","bogus":1}`,
		"unknown bench":    `{"benchmark":"no-such-bench"}`,
		"unknown mode":     `{"benchmark":"srv-ok","mode":"warp"}`,
		"unknown strategy": `{"benchmark":"srv-ok","mode":"accel","strategy":"vibes"}`,
		"unknown faults":   `{"benchmark":"srv-ok","faults":"apocalypse"}`,
		"bad sample spec":  `{"benchmark":"srv-ok","sample":"budget=0"}`,
		"bad transfer":     `{"benchmark":"srv-ok","mode":"accel","transfer":"l2=nope"}`,
		"transfer nonacc":  `{"benchmark":"srv-ok","mode":"full","transfer":"store"}`,
		"huge scale":       `{"benchmark":"srv-ok","scale":1000}`,
		"negative seed":    `{"benchmark":"srv-ok","seed":-1}`,
		"trailing":         `{"benchmark":"srv-ok"} garbage`,
	}
	for name, body := range cases {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if st := s.sched.Stats(); st.Hits+st.Misses != 0 {
		t.Errorf("bad requests reached the scheduler: %+v", st)
	}
}

// TestTraceEndpoint: traced servers serve per-run Chrome traces; untraced
// servers say so.
func TestTraceEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Trace: true})
	ctx := context.Background()
	res, err := c.Run(ctx, okRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.base + "/v1/runs/" + res.Response.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("trace endpoint returned no events (err %v)", err)
	}
	if resp, err := http.Get(c.base + "/v1/runs/nope/trace"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id trace: status %d, want 404", resp.StatusCode)
		}
	}

	_, untraced := newTestServer(t, Config{})
	if res2, err := untraced.Run(ctx, okRequest(1)); err == nil {
		if resp, err := http.Get(untraced.base + "/v1/runs/" + res2.Response.ID + "/trace"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("untraced server trace: status %d, want 404", resp.StatusCode)
			}
		}
	}
}

// TestMetricsEndpoint: the serving-path instruments are exported in the PR 3
// plaintext format alongside the scheduler's counters.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if _, err := c.Run(context.Background(), okRequest(1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"server.requests.admitted 1",
		"server.queue.depth",
		"server.request_latency_us",
		"sched.distinct",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestDeterministicRunID: ids are a pure function of the request, and
// distinct requests get distinct ids.
// TestSampledRun: a request with a sampling spec is a distinct cache entry
// from its unsampled twin, reports the estimator's split and CI in the
// response, and every spelling of one policy shares a run id (and therefore
// a memo entry and a fleet ring position).
func TestSampledRun(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	req := RunRequest{Benchmark: "ab-rand", Mode: "full", Scale: 0.25, Seed: 1}
	plain, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Response.Sample != nil {
		t.Error("unsampled response carries sample info")
	}
	req.Sample = "default"
	sampled, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Response.ID == plain.Response.ID {
		t.Error("sampled and unsampled runs share an id")
	}
	if sampled.Response.Sample == nil {
		t.Fatal("sampled response missing sample info")
	}
	if sampled.Response.Sample.Detailed <= 0 || sampled.Response.Sample.Extrapolated <= 0 {
		t.Errorf("degenerate sampled split: %+v", sampled.Response.Sample)
	}
	if sampled.Response.Sample.Reduction <= 1 {
		t.Errorf("reduction %.2f, want > 1", sampled.Response.Sample.Reduction)
	}
	req.Sample = "budget=8,min=2,pilot=64,range=0.05,refresh=64" // "default", spelled out
	spelled, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if spelled.Response.ID != sampled.Response.ID {
		t.Error("spellings of one sampling policy produced distinct run ids")
	}
}

// TestTransferRun: an accel request with a "l2=" transfer directive imports
// the sibling donor and reports provenance; a "store" directive on a server
// with no warm store is rejected — counted, cold, and provenance-free.
func TestTransferRun(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	base := RunRequest{Benchmark: "ab-rand", Mode: "accel", Scale: 0.25, Seed: 1}
	cold, err := c.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Response.Transfer != nil {
		t.Error("cold response carries transfer info")
	}

	req := base
	req.Transfer = "l2=524288"
	xfer, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Response.ID == cold.Response.ID {
		t.Error("transferred and cold runs share an id")
	}
	ti := xfer.Response.Transfer
	if ti == nil {
		t.Fatal("transferred response missing transfer info")
	}
	if ti.DonorBenchmark != "ab-rand" || ti.Distance != 1.0 {
		t.Errorf("provenance %+v, want the ab-rand sibling at distance 1.0", ti)
	}
	if ti.Scale <= 0 || ti.DonorAddr == "" {
		t.Errorf("degenerate provenance %+v", ti)
	}

	req.Transfer = "store"
	rej, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rej.Response.Transfer != nil {
		t.Errorf("rejected store directive still reports transfer info %+v", rej.Response.Transfer)
	}
	if rej.Response.Cycles != cold.Response.Cycles {
		t.Errorf("rejected transfer's cycles %d differ from cold %d", rej.Response.Cycles, cold.Response.Cycles)
	}
	if st := s.sched.Stats(); st.TransferHits != 1 || st.TransferRejected != 1 {
		t.Errorf("transfer hits %d rejected %d, want 1 and 1", st.TransferHits, st.TransferRejected)
	}
}

func TestDeterministicRunID(t *testing.T) {
	k1 := experiments.RunSpec{Bench: "srv-ok", Scale: 0.1, Seed: 1}.Key()
	k2 := experiments.RunSpec{Bench: "srv-ok", Scale: 0.1, Seed: 1}.Key()
	k3 := experiments.RunSpec{Bench: "srv-ok", Scale: 0.1, Seed: 2}.Key()
	if runID(k1) != runID(k2) {
		t.Error("identical specs produced different ids")
	}
	if runID(k1) == runID(k3) {
		t.Error("different seeds share an id")
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
