package server

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWriteFileFailureLeavesNoPartial pins the atomic artifact contract: a
// failed export never tears the destination. An existing artifact survives
// byte-exact, a fresh path stays absent, and no temp files are left behind.
func TestWriteFileFailureLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	const prev = "previous good artifact"
	if err := os.WriteFile(path, []byte(prev), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("export failed midway")
	err := writeFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "half an artifact"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeFile = %v, want the export error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != prev {
		t.Fatalf("previous artifact = (%q, %v), want it untouched", got, err)
	}

	fresh := filepath.Join(dir, "trace.json")
	if err := writeFile(fresh, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writeFile fresh = %v, want the export error", err)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatal("failed export left a partial file at a fresh path")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "metrics.txt" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("stray files after failed exports: %v", names)
	}
}

// TestDrainBoundedWithHungRun: a run that ignores cancellation cannot wedge
// the drain. The flush skips it at its grace deadline, the artifacts are
// still written, and Drain returns within a bound.
func TestDrainBoundedWithHungRun(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	s, c := newTestServer(t, Config{
		Workers:      2,
		Deadline:     30 * time.Second,
		RunTimeout:   -1, // the run outlives every timeout: the wedge scenario
		DrainTimeout: 300 * time.Millisecond,
		TracePath:    tracePath,
	})

	// Start a gated run whose waiter gives up; the detached simulation stays
	// blocked on the gate through the whole drain. An earlier test may have
	// left the shared gate closed, so arm a fresh one first.
	resetGate()
	req := RunRequest{Benchmark: "srv-gate", Scale: 0.1, Seed: 77, DeadlineMS: 50}
	if _, err := c.Run(context.Background(), req); !errors.Is(err, ErrDeadline) {
		t.Fatalf("gated run = %v, want ErrDeadline", err)
	}

	// Drain with an already-expired context: the worst case, where the flush
	// must grant itself a bounded grace budget rather than waiting forever or
	// not at all.
	dctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := s.Drain(dctx)
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("Drain took %v with a hung run; shutdown is not bounded", elapsed)
	}
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Errorf("trace artifact not written on bounded drain: %v", err)
	}
}
