package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"

	"fssim/internal/core"
	"fssim/internal/experiments"
	"fssim/internal/faults"
	"fssim/internal/machine"
	"fssim/internal/sample"
	"fssim/internal/transfer"
	"fssim/internal/workload"
)

// maxRequestBody bounds POST /v1/runs bodies; a run request is a handful of
// scalars, so anything larger is garbage (or abuse) and is rejected early.
const maxRequestBody = 1 << 16

// maxScale bounds request-supplied workload scaling so a single client
// cannot ask the server for an arbitrarily large simulation.
const maxScale = 4.0

// RunRequest is the JSON body of POST /v1/runs. Zero-valued optional fields
// take the server's defaults; the full request (after applying defaults)
// determines the run's cache key, so identical requests share one simulation
// and one byte-identical response body.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	// Mode is "full" (App+OS, default), "app" (App Only) or "accel"
	// (App+OS Pred).
	Mode string `json:"mode,omitempty"`
	// Strategy selects the re-learning policy for accel runs: "statistical"
	// (default), "best-match", "eager" or "delayed".
	Strategy string `json:"strategy,omitempty"`
	// L2 overrides the L2 capacity in bytes (0 = platform default).
	L2 int `json:"l2,omitempty"`
	// Scale multiplies workload sizes (0 = server default; capped at 4).
	Scale float64 `json:"scale,omitempty"`
	// Seed fixes the simulation's base seed (0 = server default).
	Seed int64 `json:"seed,omitempty"`
	// Faults names a fault plan injected into the run ("" = none).
	Faults string `json:"faults,omitempty"`
	// Sample attaches an application-interval stratified sampler: a preset
	// ("default", "fast", "precise") or a key=value spec ("" = no sampling).
	// The spec is canonicalized before keying, so any spelling of one policy
	// shares one simulation and one byte-identical response.
	Sample string `json:"sample,omitempty"`
	// Transfer warm-starts the run's PLT from a neighbor configuration:
	// "store" (nearest eligible donor in the server's warm store) or
	// "l2=<bytes>" (the sibling run at that L2 capacity). Accel mode only;
	// "" = cold start. An ineligible or missing donor is rejected and the run
	// proceeds cold — the response's transfer field reports what happened.
	Transfer string `json:"transfer,omitempty"`
	// DeadlineMS caps how long this request waits for its result, in
	// milliseconds (0 = server default; capped at the server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// DecodeRunRequest parses one JSON run request strictly: unknown fields and
// trailing garbage are errors, so malformed clients fail loudly instead of
// silently running a default simulation.
func DecodeRunRequest(r io.Reader) (RunRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBody))
	dec.DisallowUnknownFields()
	var q RunRequest
	if err := dec.Decode(&q); err != nil {
		return RunRequest{}, fmt.Errorf("invalid run request: %w", err)
	}
	if dec.More() {
		return RunRequest{}, fmt.Errorf("invalid run request: trailing data after JSON object")
	}
	return q, nil
}

// mode resolves the request's mode string.
func (q RunRequest) mode() (machine.SimMode, error) {
	switch strings.ToLower(strings.TrimSpace(q.Mode)) {
	case "", "full", "fullsystem", "full-system", "app+os":
		return machine.FullSystem, nil
	case "app", "apponly", "app-only", "app only":
		return machine.AppOnly, nil
	case "accel", "accelerated", "pred", "app+os pred":
		return machine.Accelerated, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want full, app or accel)", q.Mode)
}

// strategy resolves the request's re-learning strategy string.
func (q RunRequest) strategy() (core.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(q.Strategy)) {
	case "", "statistical":
		return core.Statistical, nil
	case "best-match", "bestmatch":
		return core.BestMatch, nil
	case "eager":
		return core.Eager, nil
	case "delayed":
		return core.Delayed, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want statistical, best-match, eager or delayed)", q.Strategy)
}

// Validate rejects requests no simulation can serve. The returned error is
// client-facing (a 400 body), so it names the offending field.
func (q RunRequest) Validate() error {
	if strings.TrimSpace(q.Benchmark) == "" {
		return fmt.Errorf("benchmark is required (have %s)", strings.Join(workload.Names(), ", "))
	}
	if _, err := workload.Lookup(q.Benchmark); err != nil {
		return err
	}
	if _, err := q.mode(); err != nil {
		return err
	}
	if _, err := q.strategy(); err != nil {
		return err
	}
	if q.L2 < 0 {
		return fmt.Errorf("l2 must be non-negative bytes, got %d", q.L2)
	}
	if q.Scale < 0 || q.Scale > maxScale {
		return fmt.Errorf("scale must be in (0, %g] (0 = server default), got %g", maxScale, q.Scale)
	}
	if q.Seed < 0 {
		return fmt.Errorf("seed must be non-negative, got %d", q.Seed)
	}
	if q.Faults != "" {
		if _, err := faults.Named(q.Faults); err != nil {
			return err
		}
	}
	if q.Sample != "" {
		if _, err := sample.Canonical(q.Sample); err != nil {
			return err
		}
	}
	if q.Transfer != "" {
		if _, err := transfer.ParseSpec(q.Transfer); err != nil {
			return err
		}
		if mode, err := q.mode(); err == nil && mode != machine.Accelerated {
			return fmt.Errorf("transfer requires accel mode, got %q", q.Mode)
		}
	}
	if q.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be non-negative, got %d", q.DeadlineMS)
	}
	return nil
}

// spec maps the validated request onto a scheduler RunSpec, applying the
// server's defaults for unset fields. Accelerated runs always arm the
// divergence watchdog so the breaker sees degradation signals.
func (q RunRequest) spec(defaultScale float64, defaultSeed int64) (experiments.RunSpec, error) {
	mode, err := q.mode()
	if err != nil {
		return experiments.RunSpec{}, err
	}
	strat, err := q.strategy()
	if err != nil {
		return experiments.RunSpec{}, err
	}
	smp := ""
	if q.Sample != "" {
		smp, err = sample.Canonical(q.Sample)
		if err != nil {
			return experiments.RunSpec{}, err
		}
	}
	xfer := ""
	if q.Transfer != "" {
		// Canonicalize through the parsed form so every spelling of one
		// directive shares a cache key.
		ts, err := transfer.ParseSpec(q.Transfer)
		if err != nil {
			return experiments.RunSpec{}, err
		}
		xfer = ts.String()
	}
	sp := experiments.RunSpec{
		Bench:    q.Benchmark,
		Mode:     mode,
		L2:       q.L2,
		Scale:    q.Scale,
		Seed:     q.Seed,
		Faults:   q.Faults,
		Sample:   smp,
		Transfer: xfer,
		Strategy: strat,
		Watchdog: mode == machine.Accelerated,
	}
	if sp.Scale <= 0 {
		sp.Scale = defaultScale
	}
	if sp.Seed == 0 {
		sp.Seed = defaultSeed
	}
	return sp, nil
}

// deadline resolves the request's wait deadline against the server default,
// which is also the cap: clients may ask for less time, never more.
func (q RunRequest) deadline(def time.Duration) time.Duration {
	if q.DeadlineMS <= 0 {
		return def
	}
	d := time.Duration(q.DeadlineMS) * time.Millisecond
	if d > def {
		return def
	}
	return d
}

// RunResponse is the JSON body of a completed run. Every field is a pure
// function of the run's cache key (host wall-clock never appears), so
// identical requests produce byte-identical bodies — the property that makes
// responses shareable and cacheable.
type RunResponse struct {
	ID        string  `json:"id"`
	Key       string  `json:"key"`
	Benchmark string  `json:"benchmark"`
	Mode      string  `json:"mode"`
	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"instructions"`
	IPC       float64 `json:"ipc"`
	L2Misses  uint64  `json:"l2_misses"`
	// Coverage is the fraction of OS service invocations fast-forwarded
	// (accel runs only).
	Coverage float64 `json:"coverage,omitempty"`
	// Degraded reports that the divergence watchdog demoted at least one
	// service to detailed simulation during the run (accel runs only).
	Degraded bool `json:"degraded,omitempty"`
	// Sample summarizes the stratified-sampling estimator (sampled runs only).
	Sample *SampleInfo `json:"sample,omitempty"`
	// Transfer reports the provenance of imported PLT priors (present only
	// when the run's transfer directive resolved and imported a donor; a
	// rejected directive leaves it absent — the run was cold).
	Transfer *TransferInfo `json:"transfer,omitempty"`
}

// TransferInfo is the response view of an applied cross-config transfer: the
// donor the priors came from, its parameter distance, and the headline L2
// miss-scale factor applied during the import.
type TransferInfo struct {
	DonorBenchmark string  `json:"donor_benchmark"`
	DonorAddr      string  `json:"donor_addr"` // "familyhash/learnhash" hex
	Distance       float64 `json:"distance"`
	Scale          float64 `json:"scale"`
}

// SampleInfo is the response view of a sampled run's estimator report: the
// detailed/extrapolated split, the app-side reduction factor, and the 95%
// confidence half-width on total cycles — every field a pure function of the
// run's cache key.
type SampleInfo struct {
	Strata       int     `json:"strata"`
	Detailed     int64   `json:"detailed"`
	Extrapolated int64   `json:"extrapolated"`
	Reduction    float64 `json:"reduction"`
	CIRel        float64 `json:"ci_rel"` // CI half-width / total cycles
}

// RunID derives the deterministic public id of a cache key: identical
// requests — from any client, at any time — map to the same id. It is
// exported for the fleet router, which shards by it: because the id is a
// pure function of the normalized key, POST /v1/runs and the later
// GET /v1/runs/{id} land on the same ring node.
func RunID(key experiments.RunKey) string { return runID(key) }

// Spec maps a validated request onto a scheduler RunSpec using the given
// defaults — the same normalization handleSubmit applies, exported so a
// routing tier computes the identical cache key (and therefore the identical
// ring placement and run id) as the backend that will serve the request.
func (q RunRequest) Spec(defaultScale float64, defaultSeed int64) (experiments.RunSpec, error) {
	return q.spec(defaultScale, defaultSeed)
}

// runID derives the deterministic public id of a cache key: identical
// requests — from any client, at any time — map to the same id.
func runID(key experiments.RunKey) string {
	h := fnv.New64a()
	io.WriteString(h, key.String())
	fmt.Fprintf(h, "|seed=%d", key.Seed)
	return fmt.Sprintf("r%016x", h.Sum64())
}
