package server

import (
	"testing"
	"time"

	"fssim/internal/machine"
)

// fakeClock drives the breaker's now() seam so cooldown transitions are
// deterministic and instant.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	return newBreaker(cfg.normalized(), clk.now), clk
}

func cfg4() BreakerConfig {
	return BreakerConfig{Window: 4, FailureThreshold: 0.5, MinSamples: 2, Cooldown: time.Second}
}

func TestBreakerStaysClosedBelowThreshold(t *testing.T) {
	b, _ := newTestBreaker(cfg4())
	// 1 failure in 4: 25% < 50% threshold. The successes come first so no
	// intermediate prefix crosses the threshold either.
	for _, failed := range []bool{false, false, false, true} {
		b.record(failed)
		if ok, _, _ := b.allow(); !ok {
			t.Fatalf("breaker opened below threshold after record(%v)", failed)
		}
	}
}

func TestBreakerMinSamplesGuard(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 8, FailureThreshold: 0.5, MinSamples: 3, Cooldown: time.Second})
	// One failure is 100% failure rate, but below MinSamples: stay closed.
	b.record(true)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker opened on a single sample with MinSamples=3")
	}
	b.record(true)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker opened at 2 samples with MinSamples=3")
	}
	b.record(true)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker still closed at MinSamples with 100% failures")
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(cfg4())
	b.record(true)
	b.record(true)
	ok, _, retry := b.allow()
	if ok {
		t.Fatal("breaker closed at 100% failure rate over MinSamples")
	}
	if retry <= 0 {
		t.Errorf("open breaker suggested retry %v, want positive", retry)
	}
}

func TestBreakerWindowRollsOff(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 4, FailureThreshold: 0.75, MinSamples: 4, Cooldown: time.Second})
	// Fill the window with alternating outcomes: 2/4 failures < 75%.
	for _, f := range []bool{true, true, false, false} {
		b.record(f)
	}
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker opened at 50% with 75% threshold")
	}
	// Two more successes evict the old failures: 0/4.
	b.record(false)
	b.record(false)
	// Now three fresh failures: 3/4 = 75% >= threshold.
	for i := 0; i < 3; i++ {
		b.record(true)
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("rolling window failed to open at 3/4 failures")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(cfg4())
	b.record(true)
	b.record(true)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker not open")
	}
	// Before cooldown: still open.
	clk.advance(500 * time.Millisecond)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker admitted before cooldown elapsed")
	}
	// After cooldown: exactly one probe passes; the next caller waits.
	clk.advance(600 * time.Millisecond)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if ok, _, retry := b.allow(); ok {
		t.Fatal("breaker admitted a second concurrent probe")
	} else if retry <= 0 {
		t.Errorf("half-open rejection suggested retry %v, want positive", retry)
	}
}

func TestBreakerProbeSuccessCloses(t *testing.T) {
	b, clk := newTestBreaker(cfg4())
	b.record(true)
	b.record(true)
	clk.advance(2 * time.Second)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("probe refused")
	}
	b.record(false) // probe succeeds
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker not closed after successful probe")
	}
	// The window was reset: one new failure is below MinSamples and the old
	// pre-open failures must not count against it.
	b.record(true)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker reopened on a single failure after reset (stale window)")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(cfg4())
	b.record(true)
	b.record(true)
	clk.advance(2 * time.Second)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("probe refused")
	}
	b.record(true) // probe fails
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker closed after failed probe")
	}
	// A full new cooldown is required before the next probe.
	clk.advance(500 * time.Millisecond)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker probed again before the new cooldown elapsed")
	}
	clk.advance(600 * time.Millisecond)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker refused the second probe after its cooldown")
	}
}

// TestBreakerStaleProbeReadmitted: a half-open probe whose outcome is never
// recorded (waiter abandoned, result lost) must not wedge the circuit — after
// another cooldown the breaker re-admits a fresh probe, and a recorded
// success still closes it.
func TestBreakerStaleProbeReadmitted(t *testing.T) {
	b, clk := newTestBreaker(cfg4())
	b.record(true)
	b.record(true)
	clk.advance(2 * time.Second)
	ok, probe, _ := b.allow()
	if !ok || !probe {
		t.Fatalf("allow() = (%v, %v), want admitted probe", ok, probe)
	}
	// The probe never records. Within the cooldown: everyone sheds.
	clk.advance(500 * time.Millisecond)
	if ok, _, retry := b.allow(); ok {
		t.Fatal("second probe admitted while the first is still fresh")
	} else if retry <= 0 {
		t.Errorf("half-open rejection suggested retry %v, want positive", retry)
	}
	// After the cooldown the lost probe goes stale: a new probe is admitted.
	clk.advance(600 * time.Millisecond)
	ok, probe, _ = b.allow()
	if !ok || !probe {
		t.Fatalf("stale probe not re-admitted: allow() = (%v, %v)", ok, probe)
	}
	b.record(false)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker not closed after the re-admitted probe succeeded")
	}
}

func TestBreakerSetIsolation(t *testing.T) {
	set := newBreakerSet(cfg4(), nil)
	a := set.get(breakerKey{bench: "x", mode: machine.FullSystem})
	bKey := set.get(breakerKey{bench: "y", mode: machine.FullSystem})
	a.record(true)
	a.record(true)
	if ok, _, _ := a.allow(); ok {
		t.Fatal("breaker x not open")
	}
	if ok, _, _ := bKey.allow(); !ok {
		t.Fatal("breaker y opened by x's failures")
	}
	if n := set.openCount(); n != 1 {
		t.Errorf("openCount = %d, want 1", n)
	}
	// get() is stable: the same key returns the same breaker.
	if set.get(breakerKey{bench: "x", mode: machine.FullSystem}) != a {
		t.Error("breakerSet.get returned a new breaker for an existing key")
	}
}
