package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"fssim/internal/experiments"
)

// WriteArtifacts is the shared drain path for trace/metrics artifacts: it is
// what the server flushes on graceful shutdown and what fsbench flushes after
// a run — including an interrupted (SIGINT-canceled) one, whose aborted runs
// still export their partial traces. Empty paths are skipped; a failure on
// one artifact does not stop the other, and all failures are joined.
//
// tracePath ending in .jsonl gets compact JSON lines; any other trace path
// gets the Chrome trace-event document Perfetto loads. metricsPath gets the
// deterministic per-run metrics registries followed by the host-dependent
// harness counters; "-" writes them to stdout.
//
// When the scheduler has a warm store, every completed accelerated run's PLT
// snapshot is also swept to disk here — the authoritative save that backs up
// the per-run best-effort writes, so a drained process always leaves its
// learned state behind.
func WriteArtifacts(sched *experiments.Scheduler, tracePath, metricsPath string) error {
	var errs []error
	if _, err := sched.FlushWarm(); err != nil {
		errs = append(errs, fmt.Errorf("plt snapshot flush: %w", err))
	}
	if tracePath != "" {
		if err := writeFile(tracePath, func(w io.Writer) error {
			if strings.HasSuffix(tracePath, ".jsonl") {
				return sched.WriteJSONLTrace(w)
			}
			return sched.WriteChromeTrace(w)
		}); err != nil {
			errs = append(errs, fmt.Errorf("trace export: %w", err))
		}
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(w io.Writer) error {
			if err := sched.WriteRunMetrics(w); err != nil {
				return err
			}
			return sched.WriteHarnessMetrics(w)
		}); err != nil {
			errs = append(errs, fmt.Errorf("metrics export: %w", err))
		}
	}
	return errors.Join(errs...)
}

// writeFile writes one artifact to path ("-" = stdout), reporting close
// failures too so a full disk is not silently ignored.
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
