package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"fssim/internal/durable"
	"fssim/internal/experiments"
)

// WriteArtifacts is the shared drain path for trace/metrics artifacts: it is
// what the server flushes on graceful shutdown and what fsbench flushes after
// a run — including an interrupted (SIGINT-canceled) one, whose aborted runs
// still export their partial traces. Empty paths are skipped; a failure on
// one artifact does not stop the other, and all failures are joined.
//
// tracePath ending in .jsonl gets compact JSON lines; any other trace path
// gets the Chrome trace-event document Perfetto loads. metricsPath gets the
// deterministic per-run metrics registries followed by the host-dependent
// harness counters; "-" writes them to stdout.
//
// When the scheduler has a warm store, every completed accelerated run's PLT
// snapshot is also swept to disk here — the authoritative save that backs up
// the per-run best-effort writes, so a drained process always leaves its
// learned state behind.
func WriteArtifacts(sched *experiments.Scheduler, tracePath, metricsPath string) error {
	return WriteArtifactsCtx(context.Background(), sched, tracePath, metricsPath)
}

// WriteArtifactsCtx is WriteArtifacts bounded by ctx: completed runs always
// flush, but waits on still-executing runs end at the deadline — their
// snapshots and traces are skipped (and reported) rather than wedging a
// shutdown forever. Partial progress is kept: everything flushed before the
// deadline stays flushed.
func WriteArtifactsCtx(ctx context.Context, sched *experiments.Scheduler, tracePath, metricsPath string) error {
	var errs []error
	if _, err := sched.FlushWarmCtx(ctx); err != nil {
		errs = append(errs, fmt.Errorf("plt snapshot flush: %w", err))
	}
	if tracePath != "" {
		if err := writeFile(tracePath, func(w io.Writer) error {
			if strings.HasSuffix(tracePath, ".jsonl") {
				return sched.WriteJSONLTraceCtx(ctx, w)
			}
			return sched.WriteChromeTraceCtx(ctx, w)
		}); err != nil {
			errs = append(errs, fmt.Errorf("trace export: %w", err))
		}
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, func(w io.Writer) error {
			if err := sched.WriteRunMetricsCtx(ctx, w); err != nil {
				return err
			}
			return sched.WriteHarnessMetrics(w)
		}); err != nil {
			errs = append(errs, fmt.Errorf("metrics export: %w", err))
		}
	}
	return errors.Join(errs...)
}

// writeFile writes one artifact to path ("-" = stdout) through the durable
// temp-fsync-rename discipline, so a failed or interrupted export never
// leaves a torn artifact at the destination: readers observe the old file or
// the complete new one, nothing in between.
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	return durable.AtomicWriteFile(durable.OS(), path, write)
}
