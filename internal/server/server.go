// Package server is the resilient HTTP/JSON serving front-end over the
// experiment scheduler: the long-lived process that lets many concurrent
// clients submit (benchmark, mode, L2, scale, seed, faults) simulation
// requests and share the deterministic, RunKey-memoized results.
//
// Robustness is the design center:
//
//   - Bounded admission: at most Queue requests are in the building (waiting
//     or running); everything beyond that is shed with 429 + Retry-After.
//     The server never fans out an unbounded goroutine per request.
//   - Deadlines: every request waits at most its deadline (server default,
//     client-reducible) for a result; the simulation itself is bounded by
//     the scheduler's per-run timeout, so a wedged run cannot hold a worker
//     forever or block other clients.
//   - Singleflight dedup: identical in-flight requests join one simulation;
//     identical repeat requests are served from the memo cache. Cache status
//     is reported in the X-Fssim-Cache header; response bodies are a pure
//     function of the request, hence byte-identical and cacheable.
//   - Circuit breaking: per-(benchmark, mode) breakers open under failure
//     storms (run failures, timeouts, or watchdog-degraded predictions) and
//     fast-fail with 503 until a half-open probe proves recovery.
//   - Graceful drain: on shutdown the server stops admitting, lets in-flight
//     runs finish (or cancels them at the drain deadline), and flushes trace
//     and metrics artifacts before exiting.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fssim/internal/experiments"
	"fssim/internal/pltstore"
	"fssim/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Addr is the listen address for Serve (e.g. ":8080"; ":0" picks a port).
	Addr string
	// Queue bounds how many requests may be admitted at once, waiting plus
	// running; requests beyond it get 429. Default 64.
	Queue int
	// Workers bounds how many simulations run concurrently (the scheduler's
	// worker-pool width). Default GOMAXPROCS.
	Workers int
	// Deadline is the default and maximum time one request waits for its
	// result. Default 2m.
	Deadline time.Duration
	// DrainTimeout is how long a drain waits for in-flight runs before
	// canceling them; it also bounds the artifact flush when the drain
	// context arrives already expired. Default 30s.
	DrainTimeout time.Duration
	// RunTimeout bounds each simulation's wall-clock time. 0 defaults to
	// Deadline (a run no client can wait for should not pin a worker);
	// negative disables the per-run timeout entirely.
	RunTimeout time.Duration
	// Retries is how many extra attempts a failed run gets.
	Retries int
	// Scale and Seed are the defaults applied to requests that leave them
	// unset. Defaults 1.0 and 1.
	Scale float64
	Seed  int64
	// Trace records every simulation, enabling GET /v1/runs/{id}/trace and
	// the drain-time artifact flush. Implied by TracePath/MetricsPath.
	Trace bool
	// TracePath and MetricsPath, when set, are written on drain (Chrome
	// trace-event JSON — or JSON lines for a .jsonl path — and a plaintext
	// metrics dump, the PR 3 exporter formats).
	TracePath   string
	MetricsPath string
	// MaxRecords bounds how many distinct run records GET /v1/runs/{id} can
	// address: beyond it the oldest resolved records are evicted, so a
	// long-lived server's memory stays bounded under arbitrarily many
	// distinct requests. Default 4096.
	MaxRecords int
	// WarmDir roots a PLT snapshot store (internal/pltstore): accelerated
	// runs' learned tables are persisted there, identical repeat requests are
	// replayed from disk across server restarts, and GET /v1/plt/{benchmark}
	// serves the newest snapshot. Stale or corrupt snapshots degrade to cold
	// simulation. Empty disables persistence.
	WarmDir string
	// Transfer enables cross-config PLT transfer for accelerated requests
	// carrying a "store" directive: the warm store's nearest eligible donor
	// snapshot is rescaled and imported as priors. Requires WarmDir; an
	// ineligible donor is rejected (counted) and the run proceeds cold.
	Transfer bool
	// Breaker tunes the per-(benchmark, mode) circuit breakers.
	Breaker BreakerConfig

	// now is the test seam for breaker and Retry-After clocks.
	now func() time.Time
}

func (c Config) normalized() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = c.Deadline
	}
	if c.RunTimeout < 0 {
		c.RunTimeout = 0 // explicit "no per-run timeout"
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TracePath != "" || c.MetricsPath != "" {
		c.Trace = true
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 4096
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// runRecord is the server's view of one distinct run id, shared by every
// request that maps to it.
type runRecord struct {
	id  string
	key experiments.RunKey

	mu     sync.Mutex
	status string // "running", "done" or "failed"
	body   []byte // the deterministic 200 body, once done
	errMsg string
}

// settle records a run's resolution. Settling twice is harmless: the body is
// deterministic, and a record re-run after a failure eviction may legally
// move from "failed" to "done".
func (r *runRecord) settle(status string, body []byte, errMsg string) {
	r.mu.Lock()
	r.status, r.body, r.errMsg = status, body, errMsg
	r.mu.Unlock()
}

// Server is the serving front-end. Build with New, mount Handler on any
// http.Server (or call Serve), and Drain before exit.
type Server struct {
	cfg   Config
	sched *experiments.Scheduler

	baseCtx    context.Context // lifetime of detached simulations
	cancelRuns context.CancelFunc

	queueSlots chan struct{}
	draining   atomic.Bool
	// drainMu serializes admission (the draining check plus inflight.Add)
	// against Drain's flag flip, so no request can Add after Drain observed
	// the flag set and started inflight.Wait — the documented WaitGroup
	// Add/Wait race.
	drainMu  sync.Mutex
	inflight sync.WaitGroup
	breakers *breakerSet

	mu       sync.Mutex
	records  map[string]*runRecord
	recOrder []string // record ids in creation order, for bounded eviction

	latencyEWMA atomic.Int64 // microseconds; feeds Retry-After estimates
	latMu       sync.Mutex   // trace.Histogram is single-writer; handlers are not

	addr    atomic.Value // string; set once Serve has a listener
	started chan struct{}

	// Serving-path instruments, exported via GET /metrics and the drain-time
	// metrics artifact.
	reg        *trace.Registry
	mQueue     *trace.Gauge
	mAdmitted  *trace.Counter
	mShed      *trace.Counter
	mBreaker   *trace.Counter
	mDedup     *trace.Counter
	mCompleted *trace.Counter
	mFailed    *trace.Counter
	mLatency   *trace.Histogram
}

// New builds a Server (without listening; see Serve and Handler).
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	baseCtx, cancel := context.WithCancel(context.Background())
	sched := experiments.NewScheduler(experiments.Config{
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Parallelism: cfg.Workers,
		Timeout:     cfg.RunTimeout,
		Retries:     cfg.Retries,
		Trace:       cfg.Trace,
		WarmDir:     cfg.WarmDir,
		Transfer:    cfg.Transfer,
	}.WithContext(baseCtx))
	reg := trace.NewRegistry()
	s := &Server{
		cfg:        cfg,
		sched:      sched,
		baseCtx:    baseCtx,
		cancelRuns: cancel,
		queueSlots: make(chan struct{}, cfg.Queue),
		breakers:   newBreakerSet(cfg.Breaker, cfg.now),
		records:    make(map[string]*runRecord),
		started:    make(chan struct{}),
		reg:        reg,
		mQueue:     reg.Gauge("server.queue.depth"),
		mAdmitted:  reg.Counter("server.requests.admitted"),
		mShed:      reg.Counter("server.requests.shed"),
		mBreaker:   reg.Counter("server.requests.breaker_fastfail"),
		mDedup:     reg.Counter("server.requests.deduped"),
		mCompleted: reg.Counter("server.requests.completed"),
		mFailed:    reg.Counter("server.requests.failed"),
		mLatency:   reg.Histogram("server.request_latency_us"),
	}
	s.latencyEWMA.Store(int64(time.Second / time.Microsecond))
	return s
}

// Scheduler exposes the underlying memo-cache scheduler (artifact flushing,
// stats).
func (s *Server) Scheduler() *experiments.Scheduler { return s.sched }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/plt", s.handlePLTIndex)
	mux.HandleFunc("GET /v1/plt/{benchmark}", s.handleSnapshot)
	mux.HandleFunc("GET /v1/plt/{benchmark}/{hash}", s.handleSnapshotAt)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes one JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errBody struct {
	Error string `json:"error"`
}

// retryAfterSeconds estimates how long a shed client should back off: the
// expected time for the queue to make room, from the latency EWMA and the
// worker width, clamped to [1s, 30s].
func (s *Server) retryAfterSeconds() int {
	lat := time.Duration(s.latencyEWMA.Load()) * time.Microsecond
	est := lat * time.Duration(len(s.queueSlots)+1) / time.Duration(s.cfg.Workers)
	sec := int(math.Ceil(est.Seconds()))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// observeLatency feeds one completed request's wall time into the EWMA
// (alpha 1/4) and the latency histogram.
func (s *Server) observeLatency(d time.Duration) {
	us := d.Microseconds()
	s.latMu.Lock()
	s.mLatency.Observe(float64(us))
	s.latMu.Unlock()
	for {
		old := s.latencyEWMA.Load()
		next := old + (us-old)/4
		if next <= 0 {
			next = 1
		}
		if s.latencyEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// record returns the shared record for id, creating it in "running" state.
// Creation may evict the oldest resolved records to keep the map bounded.
func (s *Server) record(id string, key experiments.RunKey) *runRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[id]
	if !ok {
		rec = &runRecord{id: id, key: key, status: "running"}
		s.records[id] = rec
		s.recOrder = append(s.recOrder, id)
		s.evictRecordsLocked()
	}
	return rec
}

// evictRecordsLocked drops the oldest resolved records until the map is back
// under MaxRecords. Records still "running" are kept — their detached run
// will resolve them, and their count is bounded by the runs in flight — so
// the map can transiently exceed the cap by at most that amount.
func (s *Server) evictRecordsLocked() {
	if len(s.records) <= s.cfg.MaxRecords {
		return
	}
	kept := s.recOrder[:0]
	for i, id := range s.recOrder {
		if len(s.records) <= s.cfg.MaxRecords {
			kept = append(kept, s.recOrder[i:]...)
			break
		}
		rec := s.records[id]
		rec.mu.Lock()
		running := rec.status == "running"
		rec.mu.Unlock()
		if running {
			kept = append(kept, id)
			continue
		}
		delete(s.records, id)
	}
	s.recOrder = kept
}

func (s *Server) lookupRecord(id string) (*runRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[id]
	return rec, ok
}

// handleSubmit is POST /v1/runs: admission, breaker, deadline, run, respond.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errBody{"server is draining"})
		return
	}
	req, err := DecodeRunRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	if err := req.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	spec, err := req.spec(s.cfg.Scale, s.cfg.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	key := spec.Key()

	// Bounded admission: a full queue sheds immediately — the request never
	// allocates a goroutine, a scheduler entry, or a worker.
	select {
	case s.queueSlots <- struct{}{}:
	default:
		s.mShed.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errBody{"admission queue full"})
		return
	}
	// Re-check draining under drainMu before joining the inflight group: a
	// request that raced past the fast-path check above must not Add after
	// Drain flipped the flag and began inflight.Wait.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		<-s.queueSlots
		s.mQueue.Set(int64(len(s.queueSlots)))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errBody{"server is draining"})
		return
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	s.mQueue.Set(int64(len(s.queueSlots)))
	defer func() {
		<-s.queueSlots
		s.mQueue.Set(int64(len(s.queueSlots)))
		s.inflight.Done()
	}()
	s.mAdmitted.Add(1)

	// Circuit breaker, scoped to this (benchmark, mode). Checked after
	// admission so a half-open probe that is admitted always resolves.
	bk := breakerKey{bench: spec.Bench, mode: spec.Mode}
	br := s.breakers.get(bk)
	ok, probe, retry := br.allow()
	if !ok {
		s.mBreaker.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(int(math.Ceil(retry.Seconds()))))
		w.Header().Set("X-Fssim-Breaker", "open")
		writeJSON(w, http.StatusServiceUnavailable,
			errBody{fmt.Sprintf("circuit open for %s/%s: recent runs failing", spec.Bench, spec.Mode)})
		return
	}

	id := runID(key)
	rec := s.record(id, key)

	// The request waits at most its deadline; the simulation itself runs
	// detached under the server lifetime + per-run timeout, so an abandoned
	// wait leaves the shared run for coalesced clients and the memo cache.
	ctx, cancel := context.WithTimeout(r.Context(), req.deadline(s.cfg.Deadline))
	defer cancel()

	// The breaker and the run record are resolved from the detached run's
	// actual outcome, exactly once per distinct execution — not from this
	// waiter. A probe whose client gives up therefore still closes or
	// re-opens the circuit when its run finishes, and an abandoned run's
	// record still flips to done/failed for later GETs.
	start := s.cfg.now()
	out, status, err := s.sched.LookupNotify(ctx, key, func(out experiments.Outcome, err error) {
		s.completeRun(rec, br, out, err)
	})
	s.observeLatency(s.cfg.now().Sub(start))
	if status != experiments.LookupMiss {
		s.mDedup.Add(1)
	}
	if probe && status == experiments.LookupHit {
		// The probe was served from the memo cache: no fresh execution will
		// report an outcome, so resolve the half-open state from the cached
		// one here (failed entries are evicted, so a hit is a success unless
		// it carries a degraded accelerator).
		br.record(err != nil || (s.degraded(out) && s.breakers.cfg.DegradeAsFailure))
	}
	w.Header().Set("X-Fssim-Cache", status.String())
	w.Header().Set("X-Fssim-Run-Id", id)

	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// This waiter gave up (deadline or disconnect); the run itself
			// may still complete for others and settles the breaker and the
			// record via the completion hook.
			s.mFailed.Add(1)
			if errors.Is(err, context.DeadlineExceeded) {
				writeJSON(w, http.StatusGatewayTimeout, errBody{"deadline exceeded waiting for run " + id})
			} else {
				writeJSON(w, http.StatusServiceUnavailable, errBody{"request canceled"})
			}
			return
		}
		// The run itself failed (panic, per-run timeout, storm of faults, or
		// drain cancellation).
		s.mFailed.Add(1)
		var re *experiments.RunError
		code := http.StatusInternalServerError
		if errors.As(err, &re) && re.Timeout {
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, errBody{err.Error()})
		return
	}

	s.mCompleted.Add(1)
	body, degraded, merr := s.responseBody(id, key, out)
	if merr != nil {
		writeJSON(w, http.StatusInternalServerError, errBody{merr.Error()})
		return
	}
	// Also settle the record here (not only in the completion hook) so a GET
	// issued right after this response never observes a stale "running". The
	// body is a pure function of (id, key, out), so the double write is
	// byte-identical.
	rec.settle("done", body, "")
	if degraded {
		w.Header().Set("X-Fssim-Degraded", "true")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// degraded reports whether a completed run's accelerator ended unhealthy (the
// watchdog demoted its predictions).
func (s *Server) degraded(out experiments.Outcome) bool {
	return out.Accel != nil && !out.Accel.Health().Healthy()
}

// responseBody builds the deterministic 200 body for a completed run: a pure
// function of (id, key, outcome), so every path that renders it — the waiter,
// the detached completion hook, GET /v1/runs/{id} — produces identical bytes.
func (s *Server) responseBody(id string, key experiments.RunKey, out experiments.Outcome) (body []byte, degraded bool, err error) {
	degraded = s.degraded(out)
	resp := RunResponse{
		ID:        id,
		Key:       key.String(),
		Benchmark: key.Bench,
		Mode:      key.Mode.String(),
		Cycles:    out.Result.Stats.Cycles,
		Insts:     out.Result.Stats.Insts,
		IPC:       out.Result.Stats.IPC(),
		L2Misses:  out.Result.Stats.Mem.L2.Misses,
		Coverage:  out.Result.Stats.Coverage(),
		Degraded:  degraded,
	}
	if rep := out.Sample; rep != nil {
		resp.Sample = &SampleInfo{
			Strata:       rep.Strata,
			Detailed:     rep.Detailed,
			Extrapolated: rep.Extrapolated,
			Reduction:    rep.Reduction(),
			CIRel:        rep.RelCI(out.Result.Stats.Cycles),
		}
	}
	if p := out.Transfer; p != nil {
		resp.Transfer = &TransferInfo{
			DonorBenchmark: p.DonorBench,
			DonorAddr:      p.DonorAddr,
			Distance:       p.Distance,
			Scale:          p.Scale,
		}
	}
	body, err = json.Marshal(resp)
	if err != nil {
		return nil, degraded, err
	}
	return append(body, '\n'), degraded, nil
}

// completeRun is the detached-execution completion hook: invoked exactly once
// per distinct run (even if every waiter abandoned it), it feeds the run's
// final outcome to the circuit breaker and settles the shared record.
func (s *Server) completeRun(rec *runRecord, br *breaker, out experiments.Outcome, err error) {
	if err != nil {
		br.record(true)
		rec.settle("failed", nil, err.Error())
		return
	}
	degraded := s.degraded(out)
	br.record(degraded && s.breakers.cfg.DegradeAsFailure)
	body, _, merr := s.responseBody(rec.id, rec.key, out)
	if merr != nil {
		rec.settle("failed", nil, merr.Error())
		return
	}
	rec.settle("done", body, "")
}

// handleGet is GET /v1/runs/{id}: the stored (byte-identical) result body of
// a completed run, or its current status.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.lookupRecord(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{"unknown run id"})
		return
	}
	rec.mu.Lock()
	status, body, errMsg := rec.status, rec.body, rec.errMsg
	rec.mu.Unlock()
	switch status {
	case "done":
		w.Header().Set("X-Fssim-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case "failed":
		writeJSON(w, http.StatusInternalServerError, errBody{errMsg})
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "running"})
	}
}

// handleTrace is GET /v1/runs/{id}/trace: the completed run's Chrome
// trace-event JSON (requires Config.Trace).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Trace {
		writeJSON(w, http.StatusNotFound, errBody{"tracing disabled (start the server with tracing enabled)"})
		return
	}
	id := r.PathValue("id")
	rec, ok := s.lookupRecord(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{"unknown run id"})
		return
	}
	tr, ok := s.sched.TraceOf(rec.key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{"no trace for run (not finished, or evicted)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChrome(w, rec.key.String(), tr); err != nil {
		// Headers are gone; all we can do is abort the body.
		return
	}
}

// handleSnapshot is GET /v1/plt/{benchmark}: the newest persisted PLT
// snapshot for the benchmark, as the raw pltstore bytes. A client can drop
// the body into another process's warm dir to ship learned state between
// hosts. 404 when persistence is disabled, the benchmark has no snapshot, or
// the newest file no longer decodes — a corrupt store never serves garbage.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.sched.WarmDir() == "" {
		writeJSON(w, http.StatusNotFound, errBody{"PLT persistence disabled (start the server with a warm dir)"})
		return
	}
	bench := r.PathValue("benchmark")
	path, ok := s.sched.WarmSnapshotPath(bench)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody{"no PLT snapshot for benchmark " + bench})
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errBody{"snapshot unreadable: " + err.Error()})
		return
	}
	snap, err := pltstore.Decode(data)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errBody{"snapshot corrupt: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fssim-Plt-Format-Version", strconv.Itoa(pltstore.FormatVersion))
	w.Header().Set("X-Fssim-Plt-Key", snap.Key)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// pltIndexBody is the JSON body of GET /v1/plt: the snapshots this node's
// warm store currently advertises to peers.
type pltIndexBody struct {
	Snapshots []pltstore.IndexEntry `json:"snapshots"`
}

// handlePLTIndex is GET /v1/plt: the store's snapshot index, the anchor of
// the anti-entropy protocol — peers diff it against their own store and
// fetch what they are missing. Only decodable, validated snapshots are
// advertised. An empty store (or disabled persistence) is an empty index,
// not an error: "I have nothing for you" is a valid anti-entropy answer.
func (s *Server) handlePLTIndex(w http.ResponseWriter, r *http.Request) {
	body := pltIndexBody{Snapshots: []pltstore.IndexEntry{}}
	if store := s.sched.WarmStore(); store != nil {
		if idx, err := store.Index(); err == nil && idx != nil {
			body.Snapshots = idx
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSnapshotAt is GET /v1/plt/{benchmark}/{hash}: the exact snapshot a
// peer's index advertised, as raw pltstore bytes. Unlike the newest-wins
// /v1/plt/{benchmark}, the address is explicit, so a gossiping peer fetches
// precisely what it diffed. The file is re-decoded before serving — a store
// that rotted since indexing serves 404, never garbage.
func (s *Server) handleSnapshotAt(w http.ResponseWriter, r *http.Request) {
	store := s.sched.WarmStore()
	if store == nil {
		writeJSON(w, http.StatusNotFound, errBody{"PLT persistence disabled (start the server with a warm dir)"})
		return
	}
	bench := r.PathValue("benchmark")
	hash, err := pltstore.ParseHash(r.PathValue("hash"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{err.Error()})
		return
	}
	path := store.Path(bench, hash)
	data, err := os.ReadFile(path)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errBody{"no snapshot at " + bench + "/" + pltstore.FormatHash(hash)})
		return
	}
	snap, err := pltstore.Decode(data)
	if err != nil || snap.Benchmark != bench || snap.LearnHash != hash {
		writeJSON(w, http.StatusNotFound, errBody{"snapshot at " + bench + "/" + pltstore.FormatHash(hash) + " is corrupt or transplanted"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fssim-Plt-Format-Version", strconv.Itoa(pltstore.FormatVersion))
	w.Header().Set("X-Fssim-Plt-Key", snap.Key)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// handleHealthz reports liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyBody is the GET /readyz JSON in both branches: the status-code
// semantics (200 ready / 503 draining) are unchanged, but the body now
// always carries the drain flag and the load signals a fleet router's
// ejection logic weighs — a bare 200/503 is not enough to rank backends.
type readyBody struct {
	Status       string `json:"status"`
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	BreakersOpen int    `json:"breakers_open"`
}

// handleReadyz reports readiness: draining (or drained) servers are not
// ready, so load balancers stop routing before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyBody{
		Status:       "ready",
		Draining:     s.draining.Load(),
		QueueDepth:   len(s.queueSlots),
		QueueCap:     cap(s.queueSlots),
		BreakersOpen: s.breakers.openCount(),
	}
	status := http.StatusOK
	if body.Draining {
		body.Status, status = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// Registry exposes the server's serving-path metrics registry so sibling
// subsystems sharing the process (the PLT gossiper, notably) can register
// their instruments next to the server's own and appear in GET /metrics.
// Histograms registered here are written under the server's latency mutex;
// external writers must be single-writer per histogram, like trace requires.
func (s *Server) Registry() *trace.Registry { return s.reg }

// handleMetrics dumps the serving-path instruments followed by the
// scheduler's cache/worker counters, in the PR 3 plaintext format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.latMu.Lock()
	err := s.reg.WriteText(w)
	s.latMu.Unlock()
	if err != nil {
		return
	}
	_ = s.sched.WriteHarnessMetrics(w)
}

// Drain performs the graceful-shutdown sequence: stop admitting, wait for
// in-flight requests until ctx expires, then cancel the remaining runs and
// wait for them to unwind, and finally flush trace/metrics artifacts. Safe
// to call once; Serve calls it on context cancellation.
func (s *Server) Drain(ctx context.Context) error {
	// The drainMu handshake with handleSubmit guarantees no admission can
	// inflight.Add after the flag flip is visible here.
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline: abort in-flight simulations cooperatively. Their
		// waiters resolve as the runs unwind.
		s.cancelRuns()
		<-done
	}
	// Stop the detached simulations that have no waiter left, too.
	s.cancelRuns()
	// The flush gets its own bounded grace budget. Runs canceled above are
	// unwinding; their entries resolve quickly, and whatever did complete must
	// still be persisted — but if ctx already expired we must not flush with a
	// dead context (every wait would be skipped), nor unboundedly (a wedged
	// run would hang shutdown forever).
	fctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
	}
	return s.FlushArtifactsCtx(fctx)
}

// FlushArtifacts writes the configured trace and metrics artifacts (no-op
// when neither path is set). Aborted runs' partial traces are included, so
// an interrupted server still leaves usable diagnostics.
func (s *Server) FlushArtifacts() error {
	return s.FlushArtifactsCtx(context.Background())
}

// FlushArtifactsCtx is FlushArtifacts bounded by ctx: runs still executing
// at the deadline are skipped (and reported) instead of wedging the flush;
// everything already completed is persisted regardless.
func (s *Server) FlushArtifactsCtx(ctx context.Context) error {
	return WriteArtifactsCtx(ctx, s.sched, s.cfg.TracePath, s.cfg.MetricsPath)
}

// Addr returns the bound listen address once Serve is up (useful with ":0").
func (s *Server) Addr() string {
	<-s.started
	v, _ := s.addr.Load().(string)
	return v
}

// Serve listens on cfg.Addr and serves until ctx is canceled, then drains
// gracefully (bounded by DrainTimeout) and flushes artifacts. It returns nil
// after a clean drain — the exit-0 contract fssimd relies on.
func (s *Server) Serve(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr().String())
	close(s.started)
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.cancelRuns()
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	derr := s.Drain(dctx)
	hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
	defer hcancel()
	herr := hs.Shutdown(hctx)
	return errors.Join(derr, herr)
}
