package durable

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrInjectedCrash is returned by CrashFS mutating operations once a
// FailAfter budget is exhausted, simulating the writing process dying
// mid-operation.
var ErrInjectedCrash = errors.New("durable: injected crash")

// opKind enumerates the durable operations CrashFS records. Only operations
// that change what a crash could leave on disk are logged; reads are not.
type opKind uint8

const (
	opCreate opKind = iota
	opWrite
	opSync
	opClose
	opRename
	opRemove
	opMkdir
	opSyncDir
)

var opNames = [...]string{"create", "write", "sync", "close", "rename", "remove", "mkdir", "syncdir"}

type op struct {
	kind opKind
	path string // file path (or dir for mkdir/syncdir); rename source
	to   string // rename destination
	data []byte // write payload
}

func (o op) String() string {
	if o.kind == opRename {
		return fmt.Sprintf("rename(%s → %s)", o.path, o.to)
	}
	return fmt.Sprintf("%s(%s)", opNames[o.kind], o.path)
}

// CrashFS is a deterministic in-memory FS that records every durable
// operation. Replay (CrashStates / Explore) rebuilds the on-disk state a
// real crash could leave after any prefix of the log, distinguishing bytes
// that were fsynced (durable) from bytes that only reached the page cache
// (lost, torn, or corrupted by the crash).
//
// All methods are safe for concurrent use; concurrent writers interleave in
// the log exactly as their operations interleaved in time.
type CrashFS struct {
	mu     sync.Mutex
	ops    []op
	live   map[string][]byte // current (pre-crash) content by path
	dirs   map[string]bool
	seq    int // CreateTemp uniquifier
	budget int // remaining mutating ops before injected crash; -1 = unlimited
}

// NewCrashFS returns an empty crash-recording FS.
func NewCrashFS() *CrashFS {
	return &CrashFS{live: map[string][]byte{}, dirs: map[string]bool{}, budget: -1}
}

// FailAfter arms crash injection: the next n mutating operations succeed and
// every one after that returns ErrInjectedCrash. Pass a negative n to disarm.
func (c *CrashFS) FailAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
}

// OpsLen returns the number of durable operations recorded so far. Use it to
// mark the start of the window a crash-exploration should cover.
func (c *CrashFS) OpsLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// charge consumes one unit of FailAfter budget; callers hold c.mu.
func (c *CrashFS) charge() error {
	if c.budget < 0 {
		return nil
	}
	if c.budget == 0 {
		return ErrInjectedCrash
	}
	c.budget--
	return nil
}

func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.charge(); err != nil {
		return err
	}
	c.dirs[path.Clean(dir)] = true
	c.ops = append(c.ops, op{kind: opMkdir, path: path.Clean(dir)})
	return nil
}

func (c *CrashFS) CreateTemp(dir, pattern string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.charge(); err != nil {
		return nil, err
	}
	c.seq++
	name := strings.Replace(pattern, "*", fmt.Sprintf("%06d", c.seq), 1)
	if !strings.Contains(pattern, "*") {
		name = pattern + fmt.Sprintf("%06d", c.seq)
	}
	p := path.Join(dir, name)
	c.live[p] = nil
	c.ops = append(c.ops, op{kind: opCreate, path: p})
	return &crashFile{fs: c, path: p}, nil
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.charge(); err != nil {
		return err
	}
	oldpath, newpath = path.Clean(oldpath), path.Clean(newpath)
	data, ok := c.live[oldpath]
	if !ok {
		return &iofs.PathError{Op: "rename", Path: oldpath, Err: iofs.ErrNotExist}
	}
	delete(c.live, oldpath)
	c.live[newpath] = data
	c.ops = append(c.ops, op{kind: opRename, path: oldpath, to: newpath})
	return nil
}

func (c *CrashFS) Remove(p string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.charge(); err != nil {
		return err
	}
	p = path.Clean(p)
	if _, ok := c.live[p]; !ok {
		return &iofs.PathError{Op: "remove", Path: p, Err: iofs.ErrNotExist}
	}
	delete(c.live, p)
	c.ops = append(c.ops, op{kind: opRemove, path: p})
	return nil
}

func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.charge(); err != nil {
		return err
	}
	c.ops = append(c.ops, op{kind: opSyncDir, path: path.Clean(dir)})
	return nil
}

func (c *CrashFS) ReadFile(p string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.live[path.Clean(p)]
	if !ok {
		return nil, &iofs.PathError{Op: "open", Path: p, Err: iofs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

func (c *CrashFS) ReadDir(dir string) ([]DirEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = path.Clean(dir)
	if !c.dirs[dir] {
		// A dir exists implicitly if any live file or subdir sits under it.
		found := false
		for p := range c.live {
			if path.Dir(p) == dir || strings.HasPrefix(p, dir+"/") {
				found = true
				break
			}
		}
		for d := range c.dirs {
			if strings.HasPrefix(d, dir+"/") {
				found = true
				break
			}
		}
		if !found {
			return nil, &iofs.PathError{Op: "readdir", Path: dir, Err: iofs.ErrNotExist}
		}
	}
	seen := map[string]DirEntry{}
	for p, data := range c.live {
		if path.Dir(p) == dir {
			seen[path.Base(p)] = DirEntry{Name: path.Base(p), Size: int64(len(data))}
		} else if strings.HasPrefix(p, dir+"/") {
			rest := strings.TrimPrefix(p, dir+"/")
			sub := strings.SplitN(rest, "/", 2)[0]
			seen[sub] = DirEntry{Name: sub, Dir: true}
		}
	}
	for d := range c.dirs {
		if path.Dir(d) == dir {
			seen[path.Base(d)] = DirEntry{Name: path.Base(d), Dir: true}
		}
	}
	out := make([]DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (c *CrashFS) Stat(p string) (DirEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p = path.Clean(p)
	if data, ok := c.live[p]; ok {
		return DirEntry{Name: path.Base(p), Size: int64(len(data))}, nil
	}
	if c.dirs[p] {
		return DirEntry{Name: path.Base(p), Dir: true}, nil
	}
	return DirEntry{}, &iofs.PathError{Op: "stat", Path: p, Err: iofs.ErrNotExist}
}

type crashFile struct {
	fs     *CrashFS
	path   string
	closed bool
}

func (f *crashFile) Name() string { return f.path }

func (f *crashFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.charge(); err != nil {
		return 0, err
	}
	if f.closed {
		return 0, &iofs.PathError{Op: "write", Path: f.path, Err: iofs.ErrClosed}
	}
	data, ok := f.fs.live[f.path]
	if !ok {
		// Removed while open (orphan sweep racing a writer): writes go
		// nowhere durable, matching POSIX unlinked-file semantics closely
		// enough for this model.
		return len(p), nil
	}
	f.fs.live[f.path] = append(data, p...)
	f.fs.ops = append(f.fs.ops, op{kind: opWrite, path: f.path, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.charge(); err != nil {
		return err
	}
	if f.closed {
		return &iofs.PathError{Op: "sync", Path: f.path, Err: iofs.ErrClosed}
	}
	f.fs.ops = append(f.fs.ops, op{kind: opSync, path: f.path})
	return nil
}

func (f *crashFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.fs.ops = append(f.fs.ops, op{kind: opClose, path: f.path})
	return nil
}
