// Package durable is the repo's single blessed path for crash-consistent
// writes. Every durable artifact — PLT snapshots, the store index, trace and
// metrics exports — goes through AtomicWrite/AtomicWriteFile, which implement
// the full discipline:
//
//	write temp → fsync(temp) → rename(temp, final) → fsync(dir)
//
// The file fsync makes the bytes durable before the name exists; the rename
// makes the name appear atomically; the directory fsync makes the rename
// itself durable. A crash at any point leaves either the old file (bit-exact)
// or the new file (bit-exact) at the final name, plus possibly an orphan temp
// that a recovery sweep can delete by prefix.
//
// The FS interface is the injection seam: production code uses OS(), tests
// use CrashFS, which records every durable operation and can replay any
// prefix of them — with the last unsynced write dropped, torn, or bit-flipped
// — to exhaustively enumerate what a real crash could leave on disk.
package durable

import (
	"fmt"
	"io"
	"path/filepath"
)

// TempPrefix is the name prefix for in-flight temp files created by
// AtomicWrite. Recovery sweeps delete files with this prefix; it matches the
// historical pltstore temp prefix so sweeps also clean orphans left behind by
// older builds.
const TempPrefix = ".plt-tmp-"

// File is the writable handle returned by FS.CreateTemp. Sync must not
// return until the written bytes are durable (for the OS implementation,
// fsync).
type File interface {
	io.Writer
	// Name returns the full path of the file.
	Name() string
	Sync() error
	Close() error
}

// DirEntry is a minimal directory listing entry.
type DirEntry struct {
	Name string // base name
	Dir  bool
	Size int64
}

// FS is the narrow filesystem surface the durable write path and the
// recovery sweep need. Implementations: OS() (real syscalls, real fsync) and
// NewCrashFS() (deterministic in-memory recorder for crash exploration).
type FS interface {
	MkdirAll(dir string) error
	// CreateTemp creates a new unique file in dir; pattern follows
	// os.CreateTemp semantics (a trailing or embedded "*" is replaced).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir makes a previous rename in dir durable. Implementations must
	// tolerate filesystems that cannot fsync directories.
	SyncDir(dir string) error
	ReadFile(path string) ([]byte, error)
	// ReadDir lists dir sorted by name. A missing dir returns fs.ErrNotExist.
	ReadDir(dir string) ([]DirEntry, error)
	Stat(path string) (DirEntry, error)
}

// AtomicWrite durably writes data to dir/name: temp file, fsync, rename,
// directory fsync. On any error the temp file is removed; the final name is
// never observable in a partial state.
func AtomicWrite(fsys FS, dir, name string, data []byte) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	f, err := fsys.CreateTemp(dir, TempPrefix+"*")
	if err != nil {
		return fmt.Errorf("durable: creating temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	fail := func(stage string, err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: %s for %s: %w", stage, filepath.Join(dir, name), err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("writing temp", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing temp", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: closing temp for %s: %w", filepath.Join(dir, name), err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: publishing %s: %w", filepath.Join(dir, name), err)
	}
	return fsys.SyncDir(dir)
}

// AtomicWriteFile streams write into path with the same discipline as
// AtomicWrite. If write returns an error, the target path is untouched and
// the temp file is removed — a failed export never leaves a partial file
// that looks complete.
func AtomicWriteFile(fsys FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	f, err := fsys.CreateTemp(dir, TempPrefix+"*")
	if err != nil {
		return fmt.Errorf("durable: creating temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	fail := func(stage string, err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: %s for %s: %w", stage, path, err)
	}
	if err := write(f); err != nil {
		return fail("writing", err)
	}
	if err := f.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: closing temp for %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: publishing %s: %w", path, err)
	}
	return fsys.SyncDir(dir)
}
