package durable

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// CrashPoint identifies one simulated crash: the recorded operation log is
// cut after N ops and the Variant describes what the kernel had flushed at
// that instant.
type CrashPoint struct {
	N       int    // ops applied before the crash
	Variant string // flush-all | drop-unsynced | torn-half | torn-bitflip | rename-undone
	Op      string // the last applied op, for diagnostics ("" at N=0)
}

func (p CrashPoint) String() string {
	return fmt.Sprintf("crash after op %d (%s) variant=%s", p.N, p.Op, p.Variant)
}

// inode tracks one file's durable bytes (reached stable storage) versus its
// cached bytes (would be lost or torn by a crash). Writes only append in
// this model, so durable is always a prefix of cache.
type inode struct {
	durable []byte
	cache   []byte
}

type renameRec struct {
	from, to string
	prev     []byte // destination content overwritten by the rename
	hadPrev  bool
	synced   bool // a SyncDir on the destination dir happened after
}

// crashStates replays ops[0:n] and returns every on-disk state (path →
// content) a crash at that instant could leave, one per variant:
//
//   - flush-all: the kernel flushed everything before dying — full cache.
//   - drop-unsynced: every unsynced write is lost; files created but never
//     fsynced survive as empty (metadata journaled, data lost).
//   - torn-half: the file with the most recent unsynced write keeps only half
//     of its unsynced suffix.
//   - torn-bitflip: torn-half plus a flipped bit in the last surviving byte
//     (media-level corruption the checksum must catch).
//   - rename-undone: the most recent rename whose directory was never
//     fsynced is rolled back — the old destination reappears and the temp
//     file returns, exactly what a journal replay can do.
func (c *CrashFS) crashStates(n int) []struct {
	Point CrashPoint
	Files map[string][]byte
} {
	c.mu.Lock()
	ops := append([]op(nil), c.ops[:n]...)
	c.mu.Unlock()

	ns := map[string]*inode{}
	lastDirty := ""
	var lastRen *renameRec
	lastOp := ""
	for _, o := range ops {
		lastOp = o.String()
		switch o.kind {
		case opCreate:
			ns[o.path] = &inode{}
			lastDirty = o.path
		case opWrite:
			if ino := ns[o.path]; ino != nil {
				ino.cache = append(ino.cache, o.data...)
				lastDirty = o.path
			}
		case opSync:
			if ino := ns[o.path]; ino != nil {
				ino.durable = append([]byte(nil), ino.cache...)
				if lastDirty == o.path {
					lastDirty = ""
				}
			}
		case opRename:
			ino := ns[o.path]
			rec := &renameRec{from: o.path, to: o.to}
			if prev, ok := ns[o.to]; ok {
				rec.prev, rec.hadPrev = append([]byte(nil), prev.cache...), true
			}
			delete(ns, o.path)
			ns[o.to] = ino
			lastRen = rec
			if lastDirty == o.path {
				lastDirty = o.to
			}
		case opRemove:
			delete(ns, o.path)
			if lastDirty == o.path {
				lastDirty = ""
			}
			if lastRen != nil && lastRen.to == o.path {
				lastRen = nil
			}
		case opSyncDir:
			if lastRen != nil && path.Dir(lastRen.to) == o.path {
				lastRen.synced = true
			}
		}
	}

	clone := func(m map[string][]byte) map[string][]byte {
		out := make(map[string][]byte, len(m))
		for k, v := range m {
			out[k] = append([]byte(nil), v...)
		}
		return out
	}

	flushAll := map[string][]byte{}
	drop := map[string][]byte{}
	for name, ino := range ns {
		flushAll[name] = append([]byte(nil), ino.cache...)
		drop[name] = append([]byte(nil), ino.durable...)
	}

	mk := func(variant string, files map[string][]byte) struct {
		Point CrashPoint
		Files map[string][]byte
	} {
		return struct {
			Point CrashPoint
			Files map[string][]byte
		}{CrashPoint{N: n, Variant: variant, Op: lastOp}, files}
	}

	states := []struct {
		Point CrashPoint
		Files map[string][]byte
	}{mk("flush-all", flushAll), mk("drop-unsynced", drop)}

	if ino := ns[lastDirty]; lastDirty != "" && ino != nil && len(ino.cache) > len(ino.durable) {
		tail := ino.cache[len(ino.durable):]
		torn := clone(flushAll)
		torn[lastDirty] = append(append([]byte(nil), ino.durable...), tail[:len(tail)/2]...)
		states = append(states, mk("torn-half", torn))
		if len(torn[lastDirty]) > 0 {
			flip := clone(torn)
			b := append([]byte(nil), torn[lastDirty]...)
			b[len(b)-1] ^= 0x40
			flip[lastDirty] = b
			states = append(states, mk("torn-bitflip", flip))
		}
	}

	if lastRen != nil && !lastRen.synced {
		if moved, ok := flushAll[lastRen.to]; ok {
			undo := clone(flushAll)
			if lastRen.hadPrev {
				undo[lastRen.to] = append([]byte(nil), lastRen.prev...)
			} else {
				delete(undo, lastRen.to)
			}
			undo[lastRen.from] = append([]byte(nil), moved...)
			states = append(states, mk("rename-undone", undo))
		}
	}
	return states
}

// Materialize writes a crash state into dst on the real filesystem. Paths
// are interpreted relative to root; anything outside root is ignored.
func Materialize(dst, root string, files map[string][]byte) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	root = path.Clean(root)
	for p, data := range files {
		p = path.Clean(p)
		var rel string
		if p == root {
			continue
		} else if strings.HasPrefix(p, root+"/") {
			rel = strings.TrimPrefix(p, root+"/")
		} else {
			continue
		}
		full := filepath.Join(dst, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Explore enumerates every crash point in the recorded log from op index
// `from` through the end — every op boundary × every flush variant — and
// materializes each resulting on-disk state (relative to root) into a fresh
// subdirectory of scratch, then calls check with it. It returns the number
// of crash states checked and the first check failure, wrapped with the
// crash point that produced it.
func (c *CrashFS) Explore(from int, root, scratch string, check func(CrashPoint, string) error) (int, error) {
	end := c.OpsLen()
	if from < 0 {
		from = 0
	}
	count := 0
	for n := from; n <= end; n++ {
		for _, st := range c.crashStates(n) {
			dir := filepath.Join(scratch, fmt.Sprintf("p%04d-%s", n, st.Point.Variant))
			if err := os.RemoveAll(dir); err != nil {
				return count, err
			}
			if err := Materialize(dir, root, st.Files); err != nil {
				return count, fmt.Errorf("materializing %s: %w", st.Point, err)
			}
			count++
			if err := check(st.Point, dir); err != nil {
				return count, fmt.Errorf("%s: %w", st.Point, err)
			}
		}
	}
	return count, nil
}
