package durable

import (
	"errors"
	"os"
	"runtime"
	"syscall"
)

// OS returns the production FS: real files, real fsync.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

// SyncDir fsyncs the directory so a preceding rename survives a crash. Some
// filesystems (and all of Windows) cannot fsync a directory; those errors are
// swallowed — the rename is still atomic, we just lose the stronger
// "name durable before return" guarantee where the platform cannot give it.
func (osFS) SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(dir string) ([]DirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(ents))
	for _, e := range ents {
		de := DirEntry{Name: e.Name(), Dir: e.IsDir()}
		if !e.IsDir() {
			if info, err := e.Info(); err == nil {
				de.Size = info.Size()
			}
		}
		out = append(out, de)
	}
	return out, nil
}

func (osFS) Stat(path string) (DirEntry, error) {
	info, err := os.Stat(path)
	if err != nil {
		return DirEntry{}, err
	}
	return DirEntry{Name: info.Name(), Dir: info.IsDir(), Size: info.Size()}, nil
}
