package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteOS(t *testing.T) {
	dir := t.TempDir()
	if err := AtomicWrite(OS(), dir, "a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "a.txt"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too.
	if err := AtomicWrite(OS(), dir, "a.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(filepath.Join(dir, "a.txt"))
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestAtomicWriteFileErrorLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "out.json")
	boom := errors.New("boom")
	err := AtomicWriteFile(OS(), target, func(w io.Writer) error {
		io.WriteString(w, "partial bytes that must never be visible")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err := os.Stat(target); !os.IsNotExist(err) {
		t.Fatalf("target exists after failed export: %v", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("debris left after failed export: %v", ents)
	}
}

func TestAtomicWriteFilePreservesOldOnError(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "out.json")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := AtomicWriteFile(OS(), target, func(w io.Writer) error {
		io.WriteString(w, "new")
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	got, _ := os.ReadFile(target)
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
}

// TestCrashFSModel pins the replay semantics the explorer depends on:
// unsynced writes can be dropped or torn, synced writes cannot, and a rename
// without a directory fsync can be rolled back.
func TestCrashFSModel(t *testing.T) {
	c := NewCrashFS()
	f, err := c.CreateTemp("d", TempPrefix+"*")
	if err != nil {
		t.Fatal(err)
	}
	tmp := f.Name()
	f.Write([]byte("abcdefgh"))
	f.Sync()
	f.Write([]byte("IJKL")) // unsynced tail
	f.Close()

	states := c.crashStates(c.OpsLen())
	byVariant := map[string]map[string][]byte{}
	for _, st := range states {
		byVariant[st.Point.Variant] = st.Files
	}
	if got := string(byVariant["flush-all"][tmp]); got != "abcdefghIJKL" {
		t.Fatalf("flush-all: %q", got)
	}
	if got := string(byVariant["drop-unsynced"][tmp]); got != "abcdefgh" {
		t.Fatalf("drop-unsynced must keep synced prefix only: %q", got)
	}
	if got := string(byVariant["torn-half"][tmp]); got != "abcdefghIJ" {
		t.Fatalf("torn-half: %q", got)
	}
	if got := string(byVariant["torn-bitflip"][tmp]); got == "abcdefghIJ" || len(got) != 10 {
		t.Fatalf("torn-bitflip must corrupt a byte: %q", got)
	}

	// Rename without SyncDir: the undone variant restores the temp name.
	if err := c.Rename(tmp, "d/final"); err != nil {
		t.Fatal(err)
	}
	states = c.crashStates(c.OpsLen())
	undone := false
	for _, st := range states {
		if st.Point.Variant == "rename-undone" {
			undone = true
			if _, ok := st.Files["d/final"]; ok {
				t.Fatal("rename-undone kept the final name")
			}
			if got := string(st.Files[tmp]); got != "abcdefghIJKL" {
				t.Fatalf("rename-undone lost temp content: %q", got)
			}
		}
	}
	if !undone {
		t.Fatal("no rename-undone variant before SyncDir")
	}

	// After SyncDir the rename is durable: no undone variant remains.
	if err := c.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.crashStates(c.OpsLen()) {
		if st.Point.Variant == "rename-undone" {
			t.Fatal("rename-undone variant survived a SyncDir")
		}
	}
}

func TestCrashFSFailAfter(t *testing.T) {
	c := NewCrashFS()
	c.FailAfter(2) // allow mkdir + create, crash at first write
	err := AtomicWrite(c, "d", "f", []byte("data"))
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	if _, err := c.ReadFile("d/f"); err == nil {
		t.Fatal("final name must not exist after injected crash")
	}
}

// TestExplorerCatchesMissingSync proves the explorer has teeth: a write path
// that renames without fsync admits a crash state where the final name holds
// torn content.
func TestExplorerCatchesMissingSync(t *testing.T) {
	sloppy := func(fsys FS, dir, name string, data []byte) error {
		fsys.MkdirAll(dir)
		f, err := fsys.CreateTemp(dir, TempPrefix+"*")
		if err != nil {
			return err
		}
		f.Write(data)
		f.Close() // no Sync
		return fsys.Rename(f.Name(), dir+"/"+name)
	}

	check := func(c *CrashFS) (sawTorn bool, states int) {
		for n := 0; n <= c.OpsLen(); n++ {
			for _, st := range c.crashStates(n) {
				states++
				if got, ok := st.Files["d/f"]; ok && len(got) > 0 && string(got) != "full-payload" {
					sawTorn = true
				}
			}
		}
		return
	}

	c := NewCrashFS()
	if err := sloppy(c, "d", "f", []byte("full-payload")); err != nil {
		t.Fatal(err)
	}
	torn, n := check(c)
	if !torn {
		t.Fatalf("sloppy writer admitted no torn final state across %d states", n)
	}

	c = NewCrashFS()
	if err := AtomicWrite(c, "d", "f", []byte("full-payload")); err != nil {
		t.Fatal(err)
	}
	torn, n = check(c)
	if torn {
		t.Fatalf("AtomicWrite admitted a torn final state (%d states)", n)
	}
	if n == 0 {
		t.Fatal("no states explored")
	}
}
