package guest

import (
	"fmt"
	"math/rand"

	"fssim/internal/kernel"
	"fssim/internal/machine"
)

// TreeConfig describes the synthetic /usr tree the Unix-tool benchmarks walk.
type TreeConfig struct {
	Root        string
	TopDirs     int
	SubdirsPer  int
	FilesPerDir int
	MinFileSize int64
	MaxFileSize int64
	Seed        int64
}

// DefaultTreeConfig returns a ~1000-file tree under /usr.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{
		Root: "/usr", TopDirs: 10, SubdirsPer: 6, FilesPerDir: 24,
		MinFileSize: 512, MaxFileSize: 12 << 10, Seed: 11,
	}
}

// BuildTree populates the filesystem with the synthetic tree and returns the
// number of regular files created (setup-time host operation).
func BuildTree(k *kernel.Kernel, cfg TreeConfig) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	files := 0
	span := cfg.MaxFileSize - cfg.MinFileSize
	for d := 0; d < cfg.TopDirs; d++ {
		for s := 0; s < cfg.SubdirsPer; s++ {
			dir := fmt.Sprintf("%s/dir%02d/sub%02d", cfg.Root, d, s)
			k.FS().MustMkdir(dir)
			for f := 0; f < cfg.FilesPerDir; f++ {
				size := cfg.MinFileSize + rng.Int63n(span+1)
				k.FS().MustCreate(fmt.Sprintf("%s/file%03d", dir, f), size)
				files++
			}
		}
	}
	return files
}

// SetupDu installs the du benchmark: a single thread summarizing disk usage
// of the tree with the fts-style chdir walk real du performs — open(.),
// fstat64, getdents64 in chunks, lstat64 per entry, and one formatted write
// per directory.
func SetupDu(k *kernel.Kernel, tree TreeConfig) {
	k.FS().MustDevNull("/dev/null")
	code := machine.NewCodeMap(machine.UserCodeBase + 0x80000)
	pcWalk := code.Fn(1536)
	pcFormat := code.Fn(512)
	t := k.Spawn("du", func(p *kernel.Proc) {
		out := p.Open("/dev/null")
		duWalk(p, tree.Root, pcWalk, pcFormat, out)
		p.Close(out)
	})
	t.SetEntry(code.Fn(256))
}

func duWalk(p *kernel.Proc, dir string, pcWalk, pcFormat uint64, out int) int64 {
	p.U.Call(pcWalk)
	defer p.U.Ret()
	if !p.Chdir(dir) {
		return 0
	}
	fd := p.Open(".")
	p.Fstat64(fd)
	var total int64
	buf := p.Scratch()
	for {
		ents := p.Getdents64(fd, buf, 32)
		if len(ents) == 0 {
			break
		}
		for _, ent := range ents {
			p.U.Mix(24) // fts entry bookkeeping
			if ent.IsDir {
				total += duWalk(p, ent.Name, pcWalk, pcFormat, out)
			} else {
				p.Lstat64(ent.Name)
				p.U.Mix(18)
				total += ent.Size
			}
		}
	}
	p.Close(fd)
	// "du -h" prints one line per directory.
	p.U.Call(pcFormat)
	p.U.Mix(70)
	p.U.Ret()
	p.Write(out, buf, 48)
	p.Chdir("..")
	return total
}

// FindOdConfig parameterizes the find|od benchmark.
type FindOdConfig struct {
	Tree     TreeConfig
	TopDirs  int // restrict the walk to the first N top-level dirs
	OdBinary string
}

// DefaultFindOdConfig walks a 6-top-dir subtree (~860 files), spawning an od
// process per file like `find /usr -type f -exec od {} \;`.
func DefaultFindOdConfig() FindOdConfig {
	return FindOdConfig{Tree: DefaultTreeConfig(), TopDirs: 6, OdBinary: "/usr/bin/od"}
}

// SetupFindOd installs the find|od benchmark.
func SetupFindOd(k *kernel.Kernel, cfg FindOdConfig) {
	k.FS().MustDevNull("/dev/null")
	k.FS().MustCreate(cfg.OdBinary, 24<<10)
	code := machine.NewCodeMap(machine.UserCodeBase + 0xC0000)
	pcFind := code.Fn(1536)
	odPCs := odCode()
	t := k.Spawn("find", func(p *kernel.Proc) {
		for d := 0; d < cfg.TopDirs && d < cfg.Tree.TopDirs; d++ {
			findWalk(p, fmt.Sprintf("%s/dir%02d", cfg.Tree.Root, d), pcFind, cfg.OdBinary, odPCs)
		}
	})
	t.SetEntry(code.Fn(256))
}

func findWalk(p *kernel.Proc, dir string, pcFind uint64, odBin string, od odText) {
	p.U.Call(pcFind)
	defer p.U.Ret()
	if !p.Chdir(dir) {
		return
	}
	fd := p.Open(".")
	buf := p.Scratch()
	var subdirs, files []string
	for {
		ents := p.Getdents64(fd, buf, 32)
		if len(ents) == 0 {
			break
		}
		for _, ent := range ents {
			p.U.Mix(30) // predicate evaluation (-type f)
			if ent.IsDir {
				subdirs = append(subdirs, ent.Name)
			} else {
				files = append(files, ent.Name)
			}
		}
	}
	p.Close(fd)
	cwd := p.Cwd()
	for _, name := range files {
		p.Lstat64(name)
		full := cwd + "/" + name
		// fork + exec od <file>, then reap it.
		child := p.Clone("od", func(cp *kernel.Proc) {
			odBody(cp, odBin, full, od)
		})
		child.SetEntry(od.main) // all od processes share the same text
		p.Waitpid(child)
	}
	for _, name := range subdirs {
		findWalk(p, name, pcFind, odBin, od)
	}
	p.Chdir("..")
}

// odText holds od's shared user-code addresses (all od processes run the
// same binary).
type odText struct {
	main, format uint64
}

func odCode() odText {
	code := machine.NewCodeMap(machine.UserCodeBase + 0x100000)
	return odText{main: code.Fn(1024), format: code.Fn(1024)}
}

// odBody is one od process: exec the binary, read the file in 4KB chunks,
// format each chunk in octal, and write the dump to /dev/null.
func odBody(p *kernel.Proc, bin, path string, od odText) {
	p.Execve(bin)
	out := p.Open("/dev/null")
	fd := p.Open(path)
	if fd < 0 {
		p.ExitGroup()
	}
	p.Fstat64(fd)
	buf := p.Scratch()
	for {
		got := p.Read(fd, buf, 4096)
		if got <= 0 {
			break
		}
		p.U.Call(od.format)
		p.U.ScanLines(buf, (got+63)/64, 64)
		p.U.Mix(got / 4) // octal formatting
		p.U.Ret()
		p.Write(out, buf, got*2)
	}
	p.Close(fd)
	p.Close(out)
	p.ExitGroup()
}
