package guest

import (
	"strings"
	"testing"

	"fssim/internal/isa"
	"fssim/internal/kernel"
	"fssim/internal/machine"
)

func runKernel(t *testing.T, setup func(*kernel.Kernel)) (*machine.Machine, *kernel.Kernel, map[isa.ServiceID]int) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	services := map[isa.ServiceID]int{}
	m.SetObserver(func(r machine.IntervalRecord) { services[r.Service]++ })
	k := kernel.New(m, kernel.DefaultTunables())
	setup(k)
	k.Run()
	return m, k, services
}

// TestWebServerServiceMix checks the web workload invokes the paper's Fig 3
// service set: read, writev, open, close, stat64, fcntl64, gettimeofday,
// poll, socketcall, ipc, write, plus NIC interrupts.
func TestWebServerServiceMix(t *testing.T) {
	cfg := DefaultWebConfig(false, 40)
	cfg.Warmup = 8
	_, k, services := runKernel(t, func(k *kernel.Kernel) { SetupWebServer(k, cfg) })
	want := []uint16{
		isa.SysRead, isa.SysWritev, isa.SysOpen, isa.SysClose, isa.SysStat64,
		isa.SysFstat64, isa.SysFcntl64, isa.SysGettimeofday, isa.SysPoll,
		isa.SysSocketcall, isa.SysIpc, isa.SysWrite,
	}
	for _, nr := range want {
		if services[isa.Sys(nr)] == 0 {
			t.Errorf("service %v never invoked", isa.Sys(nr))
		}
	}
	if services[isa.Irq(isa.IrqNIC)] == 0 {
		t.Error("no NIC interrupts")
	}
	if got := k.Net().BytesTx; got < 40*13<<10 {
		t.Errorf("server transmitted only %d bytes", got)
	}
}

// TestAbSeqOrdering checks ab-seq's size-sorted request order.
func TestAbSeqOrdering(t *testing.T) {
	cfg := DefaultWebConfig(true, 16)
	cfg.Warmup = 0
	ab := &abClient{cfg: cfg, paths: []string{"a", "b", "c", "d", "e", "f", "g", "h"}}
	ab.buildOrder()
	prev := -1
	for _, idx := range ab.order {
		if idx < prev {
			t.Fatalf("ab-seq order not monotonically increasing: %v", ab.order)
		}
		prev = idx
	}
}

func TestDuWalksWholeTree(t *testing.T) {
	tree := DefaultTreeConfig()
	tree.TopDirs, tree.SubdirsPer, tree.FilesPerDir = 3, 2, 4
	var files int
	_, _, services := runKernel(t, func(k *kernel.Kernel) {
		files = BuildTree(k, tree)
		SetupDu(k, tree)
	})
	if files != 3*2*4 {
		t.Fatalf("tree built %d files", files)
	}
	if services[isa.Sys(isa.SysLstat64)] < files {
		t.Errorf("lstat64 invoked %d times for %d files",
			services[isa.Sys(isa.SysLstat64)], files)
	}
	if services[isa.Sys(isa.SysGetdents64)] == 0 ||
		services[isa.Sys(isa.SysChdir)] == 0 {
		t.Error("du missing directory-walk services")
	}
}

func TestFindOdSpawnsChildren(t *testing.T) {
	cfg := DefaultFindOdConfig()
	cfg.Tree.TopDirs, cfg.Tree.SubdirsPer, cfg.Tree.FilesPerDir = 2, 2, 3
	cfg.TopDirs = 2
	_, k, services := runKernel(t, func(k *kernel.Kernel) {
		BuildTree(k, cfg.Tree)
		SetupFindOd(k, cfg)
	})
	wantFiles := 2 * 2 * 3
	// Blocking services (waitpid, execve's binary read) split across context
	// switches into multiple intervals, so counts are >= the syscall count.
	for _, nr := range []uint16{isa.SysClone, isa.SysExecve, isa.SysWaitpid, isa.SysExitGroup} {
		if services[isa.Sys(nr)] < wantFiles {
			t.Errorf("%v produced %d intervals, want >= %d",
				isa.Sys(nr), services[isa.Sys(nr)], wantFiles)
		}
	}
	if services[isa.Sys(isa.SysClone)] != wantFiles {
		t.Errorf("clone produced %d intervals, want exactly %d",
			services[isa.Sys(isa.SysClone)], wantFiles)
	}
	if k.ContextSwitches() == 0 {
		t.Error("fork/exec workload produced no context switches")
	}
}

func TestIperfTransfersAll(t *testing.T) {
	cfg := IperfConfig{Writes: 64, Warmup: 8, WriteSize: 8 << 10}
	var st *IperfStats
	_, k, services := runKernel(t, func(k *kernel.Kernel) { st = SetupIperf(k, cfg) })
	want := (cfg.Writes + cfg.Warmup) * cfg.WriteSize
	// The last few deliveries may still be in flight when the client exits.
	if st.BytesReceived < want*9/10 {
		t.Errorf("sink received %d of %d bytes", st.BytesReceived, want)
	}
	if services[isa.Sys(isa.SysSocketcall)] < cfg.Writes {
		t.Errorf("socketcall invoked %d times", services[isa.Sys(isa.SysSocketcall)])
	}
	_ = k
}

// TestSpecKernelsAreUserDominated checks the SPEC-like controls stay
// overwhelmingly in user mode after warm-up faults.
func TestSpecKernelsAreUserDominated(t *testing.T) {
	for _, name := range []string{"gzip", "vpr", "art", "swim"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m, _, services := runKernel(t, func(k *kernel.Kernel) {
				SetupSpec(k, name, SpecConfig{WorkScale: 0.2})
			})
			st := m.Stats()
			frac := float64(st.OSInsts) / float64(st.Insts)
			if frac > 0.35 {
				t.Errorf("%s ran %.0f%% OS instructions", name, 100*frac)
			}
			if services[isa.Exc(isa.ExcPageFault)] == 0 {
				t.Errorf("%s took no demand-paging faults", name)
			}
		})
	}
}

func TestSpecUnknownPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "unknown") {
			t.Error("unknown SPEC kernel should panic")
		}
	}()
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	k := kernel.New(m, kernel.DefaultTunables())
	SetupSpec(k, "nosuch", SpecConfig{})
}

// TestWarmupFiresOnWeb checks the warm point resets the measured baseline.
func TestWarmupFiresOnWeb(t *testing.T) {
	cfg := DefaultWebConfig(false, 24)
	cfg.Warmup = 8
	m, _, _ := runKernel(t, func(k *kernel.Kernel) { SetupWebServer(k, cfg) })
	if !m.Warmed() {
		t.Fatal("web workload never reached its warm point")
	}
}
