// Package guest implements the simulated application programs of the
// evaluation suite: an Apache-like web server driven by the paper's ab-rand
// and ab-seq client workloads, the Unix tools du and find|od, the iperf
// network benchmark, and four SPEC2000-like compute kernels. All of them run
// as guest threads over the simulated kernel and emit user-mode instruction
// streams through the Proc API.
package guest

import (
	"fmt"
	"math/rand"

	"fssim/internal/kernel"
	"fssim/internal/machine"
)

// WebConfig parameterizes the web-server benchmark.
type WebConfig struct {
	Workers     int   // server worker threads sharing an accept mutex
	Requests    int   // measured HTTP requests the client issues
	Warmup      int   // skipped warm-up requests before measurement begins
	Concurrency int   // concurrent client connections (paper: 8)
	Sequential  bool  // false = ab-rand, true = ab-seq
	Seed        int64 // client randomness
	FileSizes   []int64
}

// DefaultWebConfig mirrors the paper's setup scaled 8x down: eight servable
// files spanning 13KB..176KB (paper: 104KB..1.4MB), eight concurrent client
// connections. Together with the skb slab pool the document set keeps the
// server's working set straddling the 512KB/1MB L2 capacities under study.
func DefaultWebConfig(sequential bool, requests int) WebConfig {
	warm := requests / 4
	if warm > 120 {
		warm = 120
	}
	return WebConfig{
		Workers:     4,
		Requests:    requests,
		Warmup:      warm,
		Concurrency: 8,
		Sequential:  sequential,
		Seed:        7,
		FileSizes: []int64{
			13 << 10, 26 << 10, 45 << 10, 64 << 10,
			90 << 10, 115 << 10, 145 << 10, 176 << 10,
		},
	}
}

// SingleWebConfig models the unmodified ab workload the paper starts from
// (§5.2): every request hits the same single page, so the request stream
// "lacks diversity" — the baseline against which ab-rand and ab-seq add it.
func SingleWebConfig(requests int) WebConfig {
	cfg := DefaultWebConfig(false, requests)
	cfg.FileSizes = []int64{90 << 10}
	return cfg
}

// poison is the request metadata that tells a worker to shut down.
const poison = "__QUIT__"

// SetupWebServer installs the document tree, the access log, the listener,
// the server worker threads, and the ab traffic generator on k. Call before
// k.Run().
func SetupWebServer(k *kernel.Kernel, cfg WebConfig) {
	fs := k.FS()
	paths := make([]string, len(cfg.FileSizes))
	for i, sz := range cfg.FileSizes {
		paths[i] = fmt.Sprintf("/var/www/html/page%d.html", i)
		d := fs.MustCreate(paths[i], sz)
		// The paper measures after skipping the first 300 requests, by which
		// point the document set is page-cache resident; model that skipped
		// warm-up by pre-populating the cache.
		fs.WarmFile(d)
	}
	logDentry := fs.MustCreate("/var/log/httpd/access_log", 0)
	logDentry.Inode() // keep: created cold is fine; appends allocate pages
	listener := k.Net().NewListener()

	srv := &webServer{k: k, cfg: cfg, listener: listener, mutex: k.NewSemaphore()}
	code := machine.NewCodeMap(machine.UserCodeBase + 0x40000)
	srv.pcMain = code.Fn(2048)
	srv.pcParse = code.Fn(1024)
	srv.pcRespond = code.Fn(1536)

	for w := 0; w < cfg.Workers; w++ {
		t := k.Spawn(fmt.Sprintf("httpd-%d", w), srv.worker)
		t.SetEntry(srv.pcMain)
	}

	ab := &abClient{k: k, cfg: cfg, listener: listener, paths: paths,
		rng: rand.New(rand.NewSource(cfg.Seed)), workers: cfg.Workers}
	ab.buildOrder()
	if cfg.Warmup > 0 {
		// The paper skips the first requests so that measurement (and the
		// acceleration scheme's learning) covers the warmed steady state.
		k.Machine().DeclareWarmup()
	}
	// Kick the client once the machine starts running.
	k.Machine().Schedule(1, ab.start)
}

// webServer is the Apache-prefork-like server: workers serialize on a SysV
// accept mutex (sys_ipc), accept a connection, and serve one request per
// connection (the ab workloads are non-keepalive).
type webServer struct {
	k         *kernel.Kernel
	cfg       WebConfig
	listener  *kernel.Socket
	mutex     *kernel.Semaphore
	pcMain    uint64
	pcParse   uint64
	pcRespond uint64
}

func (s *webServer) worker(p *kernel.Proc) {
	lfd := p.InstallSocket(s.listener)
	logFd := p.Open("/var/log/httpd/access_log")
	buf := p.Scratch()
	for {
		// Each request replays the same handler text (I-cache locality).
		p.U.Call(s.pcMain)
		// Accept serialized by the SysV semaphore, like Apache prefork.
		p.Semop(s.mutex, true)
		cfd := p.Accept(lfd)
		p.Semop(s.mutex, false)

		conn := p.FileSock(cfd)
		p.Fcntl64(cfd) // O_NONBLOCK
		p.Gettimeofday()

		p.Poll(cfd)
		n := p.Read(cfd, buf, 4096)
		path, _ := conn.Meta.(string)
		if n == 0 || path == poison {
			p.Close(cfd)
			p.Close(logFd)
			p.U.Ret()
			return
		}

		// Parse the request line and headers.
		p.U.Call(s.pcParse)
		p.U.ScanLines(buf, (n+63)/64, 64)
		p.U.Mix(360)
		p.U.Ret()

		p.U.Call(s.pcRespond)
		if !p.Stat64(path) {
			// 404: short error response.
			p.U.Mix(120)
			p.Writev(cfd, buf, 512, 2)
		} else {
			ffd := p.Open(path)
			p.Fstat64(ffd)
			p.U.Mix(220) // build response headers
			first := true
			for {
				got := p.Read(ffd, buf, 32<<10)
				if got <= 0 {
					break
				}
				iov := 2
				if first {
					iov = 4 // headers + body brigade
					first = false
				}
				p.Writev(cfd, buf, got, iov)
			}
			p.Close(ffd)
		}
		p.U.Ret()

		// Access log line + timing.
		p.U.Mix(140)
		p.Gettimeofday()
		p.Write(logFd, buf, 96)
		p.Close(cfd)
		p.U.Ret()
	}
}

// abClient is the traffic generator modeling the paper's modified ab: it
// keeps cfg.Concurrency connections in flight; each connection issues one
// request and is closed by the server after the response. ab-rand picks a
// page uniformly at random per request; ab-seq walks the pages in increasing
// size order, sending an equal share of requests to each.
type abClient struct {
	k        *kernel.Kernel
	cfg      WebConfig
	listener *kernel.Socket
	paths    []string
	rng      *rand.Rand
	order    []int
	issued   int
	done     int
	workers  int
	poisoned bool
}

func (ab *abClient) buildOrder() {
	n := ab.cfg.Requests
	measured := make([]int, n)
	if ab.cfg.Sequential {
		// Equal shares per page, pages sorted by increasing size.
		share := (n + len(ab.paths) - 1) / len(ab.paths)
		for i := range measured {
			idx := i / share
			if idx >= len(ab.paths) {
				idx = len(ab.paths) - 1
			}
			measured[i] = idx
		}
	} else {
		for i := range measured {
			measured[i] = ab.rng.Intn(len(ab.paths))
		}
	}
	// Warm-up requests draw from the same distribution shape: random pages
	// for ab-rand; the smallest page for ab-seq, which is where its
	// ascending sequence starts anyway.
	warm := make([]int, ab.cfg.Warmup)
	for i := range warm {
		if !ab.cfg.Sequential {
			warm[i] = ab.rng.Intn(len(ab.paths))
		}
	}
	ab.order = append(warm, measured...)
}

func (ab *abClient) start() {
	for c := 0; c < ab.cfg.Concurrency; c++ {
		ab.connectNext(uint64(c) * 900)
	}
}

// connectNext opens the next connection after delay cycles of think time.
func (ab *abClient) connectNext(delay uint64) {
	if ab.issued >= len(ab.order) {
		ab.maybePoison()
		return
	}
	idx := ab.order[ab.issued]
	ab.issued++
	ab.k.Machine().ScheduleAfter(delay+1, func() {
		conn := ab.k.Net().InjectConnect(ab.listener, nil, func() {
			// Server closed the connection: response complete.
			ab.done++
			if ab.done == ab.cfg.Warmup {
				ab.k.Machine().Warm()
			}
			ab.connectNext(ab.thinkTime())
		})
		conn.Meta = ab.paths[idx]
		// The HTTP request arrives shortly after the connection.
		ab.k.Machine().ScheduleAfter(ab.k.Tunables().NetRTT/2, func() {
			ab.k.Net().InjectData(conn, 230)
		})
	})
}

func (ab *abClient) thinkTime() uint64 {
	return uint64(ab.rng.Intn(2000)) + 200
}

// maybePoison shuts the workers down once every response has arrived.
func (ab *abClient) maybePoison() {
	if ab.poisoned || ab.done < len(ab.order) {
		return
	}
	ab.poisoned = true
	for w := 0; w < ab.workers; w++ {
		ab.k.Machine().ScheduleAfter(uint64(w)*500+1, func() {
			conn := ab.k.Net().InjectConnect(ab.listener, nil, nil)
			conn.Meta = poison
			ab.k.Machine().ScheduleAfter(200, func() {
				ab.k.Net().InjectData(conn, 16)
			})
		})
	}
}
