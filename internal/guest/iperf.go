package guest

import (
	"fssim/internal/kernel"
	"fssim/internal/machine"
)

// IperfConfig parameterizes the network-bandwidth benchmark: the client side
// of iperf performing back-to-back socket writes to an external sink (the
// paper instruments the number of client socket writes, skipping the first
// 4096 before measuring).
type IperfConfig struct {
	Writes    int // measured socket writes
	Warmup    int // skipped warm-up writes
	WriteSize int // bytes per write
}

// DefaultIperfConfig returns 2048 x 8KB measured writes (16MB transferred)
// after 192 warm-up writes.
func DefaultIperfConfig() IperfConfig {
	return IperfConfig{Writes: 2048, Warmup: 192, WriteSize: 8 << 10}
}

// IperfStats exposes the sink's view for verification.
type IperfStats struct {
	BytesReceived int
}

// SetupIperf installs the iperf client thread and its external sink; the
// returned stats are filled in as the run progresses.
func SetupIperf(k *kernel.Kernel, cfg IperfConfig) *IperfStats {
	st := &IperfStats{}
	sock := k.Net().NewExternalConn(func(n int) { st.BytesReceived += n })
	code := machine.NewCodeMap(machine.UserCodeBase + 0x140000)
	pcMain := code.Fn(1024)
	pcIter := code.Fn(1024)
	if cfg.Warmup > 0 {
		k.Machine().DeclareWarmup()
	}
	t := k.Spawn("iperf", func(p *kernel.Proc) {
		fd := p.Connect(sock)
		buf := p.Scratch()
		p.U.Loop(cfg.Warmup+cfg.Writes, func(i int) {
			if i == cfg.Warmup {
				k.Machine().Warm()
			}
			p.U.Call(pcIter)
			// iperf refreshes its payload pattern and timestamps
			// periodically between writes.
			p.U.Mix(40)
			if i%8 == 7 {
				p.Gettimeofday()
			}
			p.Send(fd, buf, cfg.WriteSize)
			p.U.Ret()
		})
		p.Gettimeofday()
		p.Close(fd)
	})
	t.SetEntry(pcMain)
	return st
}
