package guest

import (
	"fssim/internal/kernel"
	"fssim/internal/machine"
)

// The four SPEC2000-like compute kernels: overwhelmingly user-mode programs
// whose OS activity is limited to startup demand paging and rare timing
// calls — the control group of the paper's Figures 1 and 2. Each models the
// memory-access shape of its namesake: gzip's hash-table compression, vpr's
// random placement moves, art's neural-network array scans, and swim's
// grid stencils.

// SpecConfig scales a kernel's outer iteration count: Work overrides the
// default absolute count; otherwise WorkScale multiplies it (0 = 1.0).
type SpecConfig struct {
	Work      int
	WorkScale float64
}

// SetupSpec installs the named SPEC-like workload ("gzip", "vpr", "art",
// "swim") with the given work factor (0 = default).
func SetupSpec(k *kernel.Kernel, name string, cfg SpecConfig) {
	code := machine.NewCodeMap(machine.UserCodeBase + 0x180000)
	entry := code.Fn(4096)
	// Every kernel runs its inner iteration at a fixed code address so the
	// hot loop replays the same I-cache lines, like compiled loop bodies do.
	iterPC := code.Fn(2048)
	var body func(*kernel.Proc)
	switch name {
	case "gzip":
		body = func(p *kernel.Proc) { gzipBody(p, cfg.scaledWork(8000), iterPC) }
	case "vpr":
		body = func(p *kernel.Proc) { vprBody(p, cfg.scaledWork(36000), iterPC) }
	case "art":
		body = func(p *kernel.Proc) { artBody(p, cfg.scaledWork(1500), iterPC) }
	case "swim":
		body = func(p *kernel.Proc) { swimBody(p, cfg.scaledWork(340), iterPC) }
	default:
		panic("guest: unknown SPEC kernel " + name)
	}
	t := k.Spawn(name, body)
	t.SetEntry(entry)
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// scaledWork applies cfg to the kernel's default iteration count.
func (cfg SpecConfig) scaledWork(def int) int {
	if cfg.Work > 0 {
		return cfg.Work
	}
	s := cfg.WorkScale
	if s <= 0 {
		s = 1.0
	}
	n := int(float64(def) * s)
	if n < 1 {
		n = 1
	}
	return n
}

// lcg is a deterministic address scrambler for the table-lookup kernels.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = lcg(uint64(*l)*6364136223846793005 + 1442695040888963407)
	return uint64(*l >> 16)
}

// gzipBody models deflate: stream input blocks through a hash-chain match
// search over a 64KB table with a 256KB input window and 128KB output.
func gzipBody(p *kernel.Proc, work int, iterPC uint64) {
	const (
		inSize    = 256 << 10
		tableSize = 64 << 10
		outSize   = 128 << 10
	)
	in := p.Brk(inSize)
	table := p.Brk(tableSize)
	out := p.Brk(outSize)
	warmPages(p, in, inSize)
	warmPages(p, table, tableSize)
	warmPages(p, out, outSize)
	rng := lcg(12345)
	var inOff, outOff uint64
	p.U.Loop(work, func(blk int) {
		p.U.Call(iterPC)
		p.U.Loop(16, func(i int) {
			p.U.Load(in+inOff, 8, 1) // next input bytes
			p.U.Chain(3)             // rolling hash
			h := rng.next() % (tableSize - 8)
			p.U.Load(table+h&^7, 8, 1) // hash-chain head probe
			p.U.Ops(3)                 // match-length compare
			p.U.Store(table+h&^7, 8)   // chain update
			p.U.Store(out+outOff, 8)   // emit token
			inOff = (inOff + 64) % inSize
			outOff = (outOff + 32) % outSize
		})
		p.U.Mix(24) // block bookkeeping
		p.U.Ret()
		if blk%1024 == 1023 {
			p.Gettimeofday()
		}
	})
}

// vprBody models simulated-annealing placement: random pairwise swaps over a
// 1.5MB netlist with short dependent walks and cost arithmetic.
func vprBody(p *kernel.Proc, work int, iterPC uint64) {
	const nodes = 1536 << 10
	arr := p.Brk(nodes)
	warmPages(p, arr, nodes)
	rng := lcg(999)
	p.U.Loop(work, func(i int) {
		a := arr + rng.next()%(nodes-128)&^63
		b := arr + rng.next()%(nodes-128)&^63
		p.U.Call(iterPC)
		// One dependent fanout walk, one independent fetch: moderate MLP.
		p.U.ChaseList([]uint64{a, a + 64})
		p.U.Load(b, 8, 0)
		p.U.Load(b+64, 8, 0)
		p.U.Mix(26) // delta-cost computation
		p.U.Store(a, 8)
		p.U.Store(b, 8)
		p.U.Ret()
		if i%8192 == 8191 {
			p.Gettimeofday()
		}
	})
}

// artBody models the ART neural net: repeated full scans of the feature and
// weight arrays (about 2.5MB combined — larger than a 1MB L2) with
// floating-point accumulation.
func artBody(p *kernel.Proc, work int, iterPC uint64) {
	const (
		f1Size = 1536 << 10
		wSize  = 1024 << 10
		chunk  = 16 << 10
	)
	f1 := p.Brk(f1Size)
	w := p.Brk(wSize)
	warmPages(p, f1, f1Size)
	warmPages(p, w, wSize)
	var off1, off2 uint64
	p.U.Loop(work, func(i int) {
		p.U.Call(iterPC)
		p.U.ScanLines(f1+off1, chunk/64, 64)
		p.U.ScanLines(w+off2, chunk/128, 64)
		p.U.FOps(96)
		p.U.FDiv()
		p.U.Ret()
		off1 = (off1 + chunk) % (f1Size - chunk)
		off2 = (off2 + chunk/2) % (wSize - chunk)
		if i%2048 == 2047 {
			p.Gettimeofday()
		}
	})
}

// swimBody models the shallow-water stencil: streaming sweeps over three
// large grids with writes to a fourth — memory-bandwidth bound at any
// reasonable L2 size.
func swimBody(p *kernel.Proc, work int, iterPC uint64) {
	const (
		gridSize = 1024 << 10
		row      = 32 << 10
	)
	u := p.Brk(gridSize)
	v := p.Brk(gridSize)
	z := p.Brk(gridSize)
	h := p.Brk(gridSize)
	warmPages(p, u, gridSize)
	warmPages(p, v, gridSize)
	warmPages(p, z, gridSize)
	warmPages(p, h, gridSize)
	var off uint64
	p.U.Loop(work, func(i int) {
		p.U.Call(iterPC)
		p.U.ScanLines(u+off, row/64, 64)
		p.U.ScanLines(v+off, row/64, 64)
		p.U.ScanLines(z+off, row/64, 64)
		p.U.FOps(128)
		p.U.WriteLines(h+off, row/64, 64)
		p.U.Ret()
		off = (off + row) % (gridSize - row)
		if i%512 == 511 {
			p.Gettimeofday()
		}
	})
}

// warmPages touches each page of a fresh allocation once, taking the
// demand-paging faults during initialization the way real programs do.
func warmPages(p *kernel.Proc, base uint64, size uint64) {
	p.U.Loop(int(size/4096), func(i int) {
		p.U.Store(base+uint64(i)*4096, 8)
	})
}
