package machine

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapOrder pins the typed heap's comparator directly: events pop
// in (at, seq) order no matter the insertion order. The tie-break matters
// for determinism — simultaneous events (a timer tick and a disk completion
// due the same cycle) must fire in scheduling order on every run.
func TestEventHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var evs []event
	var seq uint64
	for _, at := range []uint64{40, 10, 10, 25, 40, 10, 0, 25} {
		seq++
		evs = append(evs, event{at: at, seq: seq, op: 0, a: seq})
	}
	for trial := 0; trial < 50; trial++ {
		rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		var q eventQueue
		for _, e := range evs {
			q.push(e)
		}
		want := append([]event(nil), evs...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		for i := range want {
			got := q.pop()
			if got.at != want[i].at || got.seq != want[i].seq {
				t.Fatalf("trial %d pop %d: got (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, got.at, got.seq, want[i].at, want[i].seq)
			}
		}
		if len(q) != 0 {
			t.Fatalf("queue not drained: %d left", len(q))
		}
	}
}

// TestScheduleTieBreakFIFO asserts the machine-level contract built on the
// heap comparator: closure events and op events scheduled for the same cycle
// interleave in exact scheduling order, because both draw from the one
// per-machine sequence counter.
func TestScheduleTieBreakFIFO(t *testing.T) {
	m := New(DefaultConfig())
	var order []int
	op := m.RegisterOp(func(a, _ uint64) { order = append(order, int(a)) })
	const at = 100
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			i := i
			m.Schedule(at, func() { order = append(order, i) })
		} else {
			m.ScheduleOp(at, op, uint64(i), 0)
		}
	}
	if !m.AdvanceIdle() {
		t.Fatal("AdvanceIdle found nothing to fire")
	}
	if len(order) != 12 {
		t.Fatalf("fired %d events, want 12", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("fire order %v: position %d is event %d", order, i, id)
		}
	}
}

// pendingEv mirrors one scheduled event in the fuzz oracle.
type pendingEv struct {
	at, seq uint64
	id      int
}

// FuzzEventQueue interleaves closure scheduling, op scheduling (including
// deliberate same-cycle ties and past due-times) with idle advances, against
// a reference model: every event must fire exactly once — never dropped,
// never twice — and the global fire sequence must follow (at, seq) order.
// Half the corpus runs with PoisonPools set, so vacated heap slots are
// scrubbed with loud garbage: a pop that reads a recycled slot would fire a
// poisoned event and break the oracle.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 5, 1, 3, 4, 0, 2, 1, 3, 7, 4, 0}, false)
	f.Add([]byte{2, 0, 2, 0, 4, 0, 0, 255, 4, 0, 4, 0}, true)
	f.Add([]byte{3, 0, 3, 200, 1, 1, 4, 9, 0, 0, 4, 4}, true)
	f.Fuzz(func(t *testing.T, data []byte, poison bool) {
		old := PoisonPools
		PoisonPools = poison
		defer func() { PoisonPools = old }()

		m := New(DefaultConfig())
		var fired []pendingEv
		var expect []pendingEv
		ids := 0
		op := m.RegisterOp(func(a, b uint64) {
			fired = append(fired, pendingEv{at: b, id: int(a)})
		})
		add := func(at uint64, closure bool) {
			id := ids
			ids++
			if closure {
				at := at
				m.Schedule(at, func() {
					fired = append(fired, pendingEv{at: at, id: id})
				})
			} else {
				m.ScheduleOp(at, op, uint64(id), at)
			}
			expect = append(expect, pendingEv{at: at, seq: m.eventSeq, id: id})
		}
		// checkAdvance mirrors one AdvanceIdle against the oracle: time jumps
		// to the earliest pending event and everything due by then fires in
		// (at, seq) order.
		checkAdvance := func() {
			before := len(fired)
			if len(expect) == 0 {
				if m.AdvanceIdle() {
					t.Fatal("AdvanceIdle fired with no events scheduled")
				}
				return
			}
			if !m.AdvanceIdle() {
				t.Fatalf("AdvanceIdle reported idle with %d events pending", len(expect))
			}
			now := m.Now()
			var due, later []pendingEv
			for _, p := range expect {
				if p.at <= now {
					due = append(due, p)
				} else {
					later = append(later, p)
				}
			}
			sort.Slice(due, func(i, j int) bool {
				if due[i].at != due[j].at {
					return due[i].at < due[j].at
				}
				return due[i].seq < due[j].seq
			})
			got := fired[before:]
			if len(got) != len(due) {
				t.Fatalf("advance fired %d events, oracle expected %d (now=%d)",
					len(got), len(due), now)
			}
			for i := range due {
				if got[i].id != due[i].id {
					t.Fatalf("fire %d: got event %d (at=%d), oracle expected %d (at=%d seq=%d)",
						before+i, got[i].id, got[i].at, due[i].id, due[i].at, due[i].seq)
				}
			}
			expect = later
			if m.PendingEvents() != len(expect) {
				t.Fatalf("PendingEvents = %d, oracle has %d", m.PendingEvents(), len(expect))
			}
		}

		for i := 0; i+1 < len(data) && ids < 4096; i += 2 {
			cmd, arg := data[i], uint64(data[i+1])
			switch cmd % 5 {
			case 0: // op event in the near future
				add(m.Now()+arg, false)
			case 1: // closure event, tighter spread to force collisions
				add(m.Now()+arg%32, true)
			case 2: // three same-cycle ties
				at := m.Now() + arg%4
				add(at, false)
				add(at, true)
				add(at, false)
			case 3: // absolute time: possibly already past due
				add(arg, false)
			case 4:
				checkAdvance()
			}
		}
		for len(expect) > 0 {
			checkAdvance()
		}
		if m.AdvanceIdle() {
			t.Fatal("drained queue still fired")
		}
		if len(fired) != ids {
			t.Fatalf("%d events scheduled, %d fired", ids, len(fired))
		}
		seen := make(map[int]bool, len(fired))
		for _, p := range fired {
			if seen[p.id] {
				t.Fatalf("event %d fired twice", p.id)
			}
			seen[p.id] = true
		}
	})
}
