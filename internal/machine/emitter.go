package machine

import (
	"fssim/internal/isa"
	"fssim/internal/memsim"
)

// Cursor tracks the program counter of the current execution stream,
// including a return-address stack for Call/Ret. Each simulated thread owns a
// Cursor; the kernel swaps them on context switches so that instruction
// addresses — and therefore I-cache behavior — stay coherent per thread.
type Cursor struct {
	PC    uint64
	stack []uint64
}

// SwapCursor installs c as the active cursor and returns the previous one.
func (m *Machine) SwapCursor(c Cursor) Cursor {
	old := m.cursor
	m.cursor = c
	return old
}

// Cursor returns the active cursor (by value; useful for saving).
func (m *Machine) CursorState() Cursor { return m.cursor }

// CodeMap assigns stable simulated addresses to named functions, so that
// repeated executions of the same kernel or guest routine replay the same
// instruction addresses (I-cache locality) while distinct routines occupy
// distinct lines.
type CodeMap struct {
	next uint64
}

// NewCodeMap returns a code map allocating from base.
func NewCodeMap(base uint64) *CodeMap { return &CodeMap{next: base} }

// Fn reserves size bytes of code space and returns the entry address.
func (cm *CodeMap) Fn(size uint64) uint64 {
	pc := cm.next
	cm.next += (size + 63) &^ 63 // line-align entries
	return pc
}

// UserCodeBase and related constants place guest code at the classic i386
// text base, away from kernel text.
const (
	UserCodeBase   = memsim.UserTextBase
	KernelCodeBase = memsim.KernelText
)

// Emitter is the instruction-emission API used by kernel and guest code. All
// methods feed dynamic instructions to the machine with automatically
// maintained PCs.
type Emitter struct {
	m *Machine
}

// Emitter returns an emitter bound to the machine.
func (m *Machine) Emitter() Emitter { return Emitter{m: m} }

// Machine returns the underlying machine.
func (e Emitter) Machine() *Machine { return e.m }

// emit stages the instruction in the machine's scratch slot and executes
// it. Staging matters: Exec takes a pointer that flows into the cpu.Core
// interface, so a stack-local instruction would escape — one heap
// allocation per emitted instruction, which profiling showed was ~95% of
// all allocation in a detailed run. The machine consumes the instruction
// synchronously (reentrant emissions from device events rewrite the slot
// only after the outer Exec is done reading it), so the single scratch is
// safe.
// emit is cheap enough to inline into every helper, so the instruction
// literal is built directly in the scratch slot with no stack intermediate.
func (e Emitter) emit(in isa.Inst) {
	e.m.inst = in
	e.m.execStaged()
}

// Ops emits n independent single-cycle integer operations.
func (e Emitter) Ops(n int) {
	for i := 0; i < n; i++ {
		e.emit(isa.Inst{Op: isa.ALU})
	}
}

// Chain emits n serially dependent integer operations (a dependence chain,
// e.g. an address calculation or reduction).
func (e Emitter) Chain(n int) {
	for i := 0; i < n; i++ {
		e.emit(isa.Inst{Op: isa.ALU, Dep: 1})
	}
}

// Mix emits n instructions with a typical integer-code shape: mostly ALU with
// scattered short dependence chains and an occasional multiply — the filler
// between the memory operations that dominate timing.
func (e Emitter) Mix(n int) {
	for i := 0; i < n; i++ {
		switch i & 7 {
		case 3:
			e.emit(isa.Inst{Op: isa.ALU, Dep: 1})
		case 5:
			e.emit(isa.Inst{Op: isa.ALU, Dep: 2})
		case 7:
			e.emit(isa.Inst{Op: isa.MUL})
		default:
			e.emit(isa.Inst{Op: isa.ALU})
		}
	}
}

// FOps emits n floating-point operations with moderate dependence.
func (e Emitter) FOps(n int) {
	for i := 0; i < n; i++ {
		if i&3 == 3 {
			e.emit(isa.Inst{Op: isa.FPU, Dep: 1})
		} else {
			e.emit(isa.Inst{Op: isa.FPU})
		}
	}
}

// Div emits one integer divide.
func (e Emitter) Div() { e.emit(isa.Inst{Op: isa.DIV, Dep: 1}) }

// FDiv emits one floating-point divide.
func (e Emitter) FDiv() { e.emit(isa.Inst{Op: isa.FDIV, Dep: 1}) }

// Load emits a load of size bytes from addr. dep gives the dependence
// distance of the address computation (0 = address ready immediately).
func (e Emitter) Load(addr uint64, size int, dep uint8) {
	e.emit(isa.Inst{Op: isa.LOAD, Addr: addr, Size: uint8(size), Dep: dep})
}

// Store emits a store of size bytes to addr.
func (e Emitter) Store(addr uint64, size int) {
	e.emit(isa.Inst{Op: isa.STORE, Addr: addr, Size: uint8(size)})
}

// Branch emits a conditional branch with the given actual outcome; target is
// the actual destination when taken.
func (e Emitter) Branch(taken bool, target uint64) {
	e.emit(isa.Inst{Op: isa.BRANCH, Taken: taken, Target: target})
	if taken {
		e.m.cursor.PC = target
	}
}

// Syscall emits the trapping instruction that begins a system call (executed
// in user mode; the kernel's dispatcher then calls KEnter).
func (e Emitter) Syscall() { e.emit(isa.Inst{Op: isa.SYSCALL}) }

// Iret emits the return-from-kernel instruction (executed in kernel mode as
// the final instruction of a service interval).
func (e Emitter) Iret() { e.emit(isa.Inst{Op: isa.IRET}) }

// Call transfers control to the function at pc, pushing the return address.
func (e Emitter) Call(pc uint64) {
	e.m.cursor.stack = append(e.m.cursor.stack, e.m.cursor.PC+4)
	e.emit(isa.Inst{Op: isa.BRANCH, Taken: true, Target: pc})
	e.m.cursor.PC = pc
}

// Ret returns from the most recent Call.
func (e Emitter) Ret() {
	st := e.m.cursor.stack
	if len(st) == 0 {
		e.emit(isa.Inst{Op: isa.BRANCH, Taken: true, Target: e.m.cursor.PC})
		return
	}
	target := st[len(st)-1]
	e.m.cursor.stack = st[:len(st)-1]
	e.emit(isa.Inst{Op: isa.BRANCH, Taken: true, Target: target})
	e.m.cursor.PC = target
}

// Loop runs body iters times with a backward branch per iteration, replaying
// the same instruction addresses each time (so the body enjoys I-cache
// locality like a real loop).
func (e Emitter) Loop(iters int, body func(i int)) {
	if iters <= 0 {
		return
	}
	start := e.m.cursor.PC
	for i := 0; i < iters; i++ {
		e.m.cursor.PC = start
		body(i)
		e.Branch(i < iters-1, start)
		if i < iters-1 {
			// Branch() moved the cursor back to start; the loop resets it
			// anyway. Restore fallthrough PC bookkeeping for the final exit.
			e.m.cursor.PC = start
		}
	}
}

// CopyLines models a memcpy of n cache lines from src to dst: per line, an
// induction update, a load, a store, and the loop branch. Successive lines
// are independent (addresses come from the induction variable), so the
// out-of-order core overlaps their misses the way real memcpy does.
func (e Emitter) CopyLines(dst, src uint64, n int) {
	e.Loop(n, func(i int) {
		off := uint64(i) * 64
		e.emit(isa.Inst{Op: isa.ALU, Dep: 4})
		e.Load(src+off, 64, 1)
		e.Store(dst+off, 64)
	})
}

// ScanLines models a read sweep over n lines starting at addr with the given
// stride: per line, an index update, an independent load, a consuming op,
// and the branch.
func (e Emitter) ScanLines(addr uint64, n int, stride uint64) {
	if stride == 0 {
		stride = 64
	}
	e.Loop(n, func(i int) {
		e.emit(isa.Inst{Op: isa.ALU, Dep: 4})
		e.Load(addr+uint64(i)*stride, 8, 1)
		e.emit(isa.Inst{Op: isa.ALU, Dep: 1})
	})
}

// WriteLines models a write sweep (e.g. zeroing a page) over n lines.
func (e Emitter) WriteLines(addr uint64, n int, stride uint64) {
	if stride == 0 {
		stride = 64
	}
	e.Loop(n, func(i int) {
		e.emit(isa.Inst{Op: isa.ALU, Dep: 3})
		e.Store(addr+uint64(i)*stride, 64)
	})
}

// ChaseList models dependent pointer chasing through the given node
// addresses (hash-chain walks, dentry lookups, run-queue scans): each load's
// address depends on the previous load's result, so the walk serializes at
// the memory latency. Each iteration emits [LOAD, ALU, BRANCH]; the next
// iteration's load therefore names the producer three instructions back.
func (e Emitter) ChaseList(nodes []uint64) {
	start := e.m.cursor.PC
	for i, a := range nodes {
		e.m.cursor.PC = start
		dep := uint8(3) // the previous iteration's load
		if i == 0 {
			dep = 0 // head pointer is already in a register
		}
		e.Load(a, 8, dep)
		e.emit(isa.Inst{Op: isa.ALU, Dep: 1})
		e.Branch(i < len(nodes)-1, start)
		e.m.cursor.PC = start
	}
	if len(nodes) > 0 {
		e.m.cursor.PC = start + 12
	}
}
