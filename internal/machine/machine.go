// Package machine ties the simulated system together: it owns the processor
// timing core and memory hierarchy, the device event queue, the user/kernel
// mode bookkeeping that delimits OS service intervals (paper §3), and the
// dynamic switch between detailed simulation and fast emulation that the
// acceleration scheme drives (paper §4).
//
// The machine is execution-driven: kernel and guest code emit dynamic
// instructions through an Emitter; the machine attributes them to the
// application or to the current OS service interval, feeds them to the active
// backend, and delivers device interrupts at instruction boundaries.
package machine

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"fssim/internal/cache"
	"fssim/internal/cpu"
	"fssim/internal/isa"
	"fssim/internal/memsim"
	"fssim/internal/memsys"
	"fssim/internal/trace"
)

// SimMode selects what the simulation covers.
type SimMode int

const (
	// FullSystem simulates application and OS in the detailed timing model.
	FullSystem SimMode = iota
	// AppOnly simulates only application instructions; OS services execute
	// functionally but cost nothing (the paper's "App Only" baseline).
	AppOnly
	// Accelerated runs the paper's scheme: application code is always
	// detailed; OS services are detailed during learning periods and
	// fast-forwarded in emulation mode during prediction periods, with the
	// attached IntervalSink deciding and predicting.
	Accelerated
)

func (m SimMode) String() string {
	switch m {
	case FullSystem:
		return "App+OS"
	case AppOnly:
		return "App Only"
	default:
		return "App+OS Pred"
	}
}

// CoreKind selects the processor timing model (Table 1's mode axis).
type CoreKind int

const (
	CoreOOO CoreKind = iota
	CoreInOrder
)

// Config assembles a machine.
type Config struct {
	Mode       SimMode
	Core       CoreKind
	WithCaches bool // false = ideal memory (the "nocache" Table 1 modes)
	CPU        cpu.Config
	Mem        memsys.Config
	Seed       int64

	// Ablation switches for the acceleration scheme's side-effect models
	// (both default to enabled; see DESIGN.md §7).
	NoPollution    bool // disable cache pollution injection (paper §4.5)
	NoBusInjection bool // disable predicted bus-occupancy injection
}

// DefaultConfig returns the paper's §5.1 platform in full-system mode.
func DefaultConfig() Config {
	return Config{
		Mode:       FullSystem,
		Core:       CoreOOO,
		WithCaches: true,
		CPU:        cpu.DefaultConfig(),
		Mem:        memsys.DefaultConfig(),
		Seed:       1,
	}
}

// Signature carries the observables of one OS service interval that are
// obtainable in fast emulation mode — without any timing model. The paper
// builds its signature from Insts alone and names the instruction mix as
// future work (§3); the Loads/Stores/Branches counters enable that extended
// signature (core.Params.MixSignature).
type Signature struct {
	Insts    uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
}

// Measurement captures the performance characteristics of one OS service
// interval obtained by detailed simulation — the quantities the PLT records
// (paper §4.3): instruction count, cycles, and per-level cache activity.
type Measurement struct {
	Insts  uint64
	Cycles uint64
	L1I    cache.Stats
	L1D    cache.Stats
	L2     cache.Stats
}

// IPC returns instructions per cycle for the interval.
func (ms Measurement) IPC() float64 {
	if ms.Cycles == 0 {
		return 0
	}
	return float64(ms.Insts) / float64(ms.Cycles)
}

// Prediction is what the sink returns for an emulated interval.
type Prediction struct {
	Cycles                   uint64
	L1IMisses, L1DMisses     uint64
	L2Misses                 uint64
	L1IAccesses, L1DAccesses uint64
	L2Accesses               uint64
	L2Writebacks             uint64
}

// IntervalSink is the acceleration engine's hook into the machine.
// OnServiceStart is called at each user→kernel transition and decides the
// simulation mode for the interval; for emulated intervals it also supplies
// the service's estimated CPI, which the machine uses to advance a virtual
// clock while fast-forwarding so that device events scheduled inside the
// interval carry approximately correct timestamps. OnServiceEnd is called at
// the matching kernel→user transition with either the detailed measurement
// (learning) or the instruction-count signature (prediction), and must
// return a Prediction in the latter case.
//
// Memory contract: the *Measurement passed to OnServiceEnd points into a
// per-machine scratch buffer that is rewritten at the next detailed
// interval, and the returned *Prediction is consumed (copied field-wise)
// before OnServiceEnd is called again — both sides may reuse their records
// and neither may retain the other's pointer past the call.
type IntervalSink interface {
	OnServiceStart(svc isa.ServiceID) (detailed bool, estCPI float64)
	OnServiceEnd(svc isa.ServiceID, sig Signature, meas *Measurement) *Prediction
}

// AppSink is the stratified-sampling subsystem's hook into the machine — the
// application-side mirror of IntervalSink. An application interval is one
// user-mode execution stretch (kernel depth 0) between OS service intervals.
// OnAppStart is called when such a stretch begins and decides whether it is
// simulated in detail or fast-forwarded; for fast-forwarded intervals it also
// supplies the estimated CPI driving the virtual clock, exactly as the OS
// path does. OnAppEnd is called when the stretch ends (an OS service opens,
// or the run finishes): with the detailed measurement when the interval was
// simulated, or with meas == nil when it was fast-forwarded — in which case
// it must return the extrapolated Prediction (nil falls back to IPC 1).
//
// Memory contract: identical to IntervalSink — the *Measurement points into
// the per-machine scratch buffer and the returned *Prediction is consumed
// before OnAppEnd is called again; neither side may retain the other's
// pointer past the call, and implementations must not allocate per interval.
type AppSink interface {
	OnAppStart() (detailed bool, estCPI float64)
	OnAppEnd(sig Signature, meas *Measurement) *Prediction
}

// IntervalRecord is the characterization view of one completed interval,
// delivered to an optional observer (Figs 3–6 are built from these). The
// Predicted and Meas pointers reference per-machine/per-learner scratch
// records valid only for the duration of the observer call; observers that
// need the data later must copy the values out.
type IntervalRecord struct {
	Service   isa.ServiceID
	Insts     uint64
	Sig       Signature
	Cycles    uint64
	Emulated  bool
	Predicted *Prediction // non-nil when Emulated
	Meas      *Measurement
}

// Machine is one simulated system.
type Machine struct {
	cfg  Config
	core cpu.Core
	mem  *memsys.Hierarchy // nil when WithCaches is false
	rng  *rand.Rand
	Lay  *memsim.Layout

	events   eventQueue
	eventSeq uint64              // per-machine tie-break counter for simultaneous events
	next     uint64              // cycle of earliest pending event (cache of heap head)
	ops      []func(a, b uint64) // event dispatch table (RegisterOp / ScheduleOp)

	// inst is the emitter's scratch instruction: Emitter.emit stages each
	// dynamic instruction here and passes its address to Exec, so the
	// instruction never escapes to the heap (the cpu.Core interface call
	// would otherwise force one allocation per emitted instruction — the
	// dominant allocation of the entire simulator before this scratch).
	// Exec and the timing cores consume the instruction synchronously and
	// never retain the pointer, so reuse across (possibly reentrant)
	// emissions is safe.
	inst isa.Inst

	// measScratch and predScratch are the per-machine interval buffers:
	// closeInterval publishes each detailed measurement and each degenerate
	// fallback prediction through these instead of allocating per interval.
	// IntervalSink and observer callbacks receive pointers into them and
	// must not retain them past the call (both contracts are documented on
	// the interfaces); everything is fully rewritten before the next use.
	measScratch Measurement
	predScratch Prediction

	depth      int // current context's kernel nesting depth
	inInterval bool
	curSvc     isa.ServiceID
	curSig     Signature // emulation-observable counters of the open interval
	curCause   trace.Cause
	emulating  bool
	delivering bool

	sink     IntervalSink
	appSink  AppSink
	observer func(IntervalRecord)
	rec      *trace.Recorder     // nil unless tracing is enabled for the run
	irq      func(vector uint16) // kernel's interrupt entry

	startInsts  uint64
	startCycles uint64
	startMem    memsys.Snapshot

	// Application-interval state (stratified sampling). An app interval opens
	// lazily at the first user-mode instruction after the previous OS interval
	// closed — never eagerly — so idle stretches with no user work produce no
	// zero-instruction intervals.
	appOpen        bool
	appEmulating   bool
	appSig         Signature
	appStartInsts  uint64
	appStartCycles uint64
	appStartMem    memsys.Snapshot
	appEmuInsts    uint64 // current app interval's fast-forwarded instructions
	appEmuTotal    uint64 // total app instructions fast-forwarded
	appIntervals   uint64
	appEmulated    uint64

	// Virtual-clock state for emulated intervals: estimated cycles per
	// instruction and the fractional accumulator applied in chunks.
	virtCPI  float64
	virtFrac float64

	// Per-service phantom working-set bases for pollution injection: each
	// OS service's fast-forwarded cache footprint is replayed at a stable
	// address range, so repeated invocations refresh rather than re-displace.
	phantoms    map[isa.ServiceID]uint64
	phantomNext uint64

	// Measurement warm-up (paper §5.2: the first 300 HTTP requests / 4096
	// socket writes are skipped before measuring). A workload that supports
	// warm-up declares it at setup and calls Warm() at the skip boundary;
	// the machine then snapshots a statistics baseline so Stats() reports
	// the measured period only.
	warmDeclared bool
	warmed       bool
	warmCb       func()
	base         *Stats

	cursor Cursor

	// cancel, once set, asynchronously aborts the run: Exec (and the kernel
	// scheduler's thread handoffs) panic with *AbortError so every guest
	// goroutine unwinds cooperatively instead of leaking. Written from watcher
	// goroutines, read from the simulation goroutines — hence atomic.
	cancel atomic.Pointer[cancelReason]

	// Aggregate statistics.
	totalInsts uint64
	userInsts  uint64
	osInsts    uint64
	emuInsts   uint64 // current interval's emulated instruction count
	emuTotal   uint64 // total instructions fast-forwarded in emulation mode
	predCycles uint64 // total cycles added by prediction
	pred       Prediction
	intervals  uint64
	emulated   uint64
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		Lay: memsim.NewLayout(),
	}
	if cfg.WithCaches {
		m.mem = memsys.New(cfg.Mem)
	}
	switch cfg.Core {
	case CoreInOrder:
		m.core = cpu.NewInOrder(cfg.CPU, m.mem)
	default:
		m.core = cpu.NewOOO(cfg.CPU, m.mem)
	}
	m.next = ^uint64(0)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mode returns the simulation mode.
func (m *Machine) Mode() SimMode { return m.cfg.Mode }

// RNG returns the machine's deterministic random source.
func (m *Machine) RNG() *rand.Rand { return m.rng }

// Mem returns the memory hierarchy (nil in nocache configurations).
func (m *Machine) Mem() *memsys.Hierarchy { return m.mem }

// Core returns the timing core.
func (m *Machine) Core() cpu.Core { return m.core }

// SetSink attaches the acceleration engine (used with Mode == Accelerated).
func (m *Machine) SetSink(s IntervalSink) { m.sink = s }

// SetAppSink attaches the application-interval sampling sink. Unlike the OS
// sink it is honored in every simulation mode: sampling the application side
// is orthogonal to how the OS side is simulated.
func (m *Machine) SetAppSink(s AppSink) { m.appSink = s }

// SetObserver attaches a characterization observer receiving every completed
// OS service interval.
func (m *Machine) SetObserver(f func(IntervalRecord)) { m.observer = f }

// SetIRQHandler registers the kernel's interrupt entry point.
func (m *Machine) SetIRQHandler(f func(vector uint16)) { m.irq = f }

// SetTrace attaches an interval recorder (nil disables tracing; every
// instrumentation site is a guarded no-op in that case). The machine installs
// itself as the recorder's clock so instants carry simulated cycles.
func (m *Machine) SetTrace(r *trace.Recorder) {
	m.rec = r
	r.SetClock(m.Now)
}

// Trace returns the attached recorder (nil when tracing is off; the nil
// recorder's methods — including Metrics() — are themselves no-ops).
func (m *Machine) Trace() *trace.Recorder { return m.rec }

// Now returns the global cycle counter (committed time plus predicted
// fast-forward time already applied).
func (m *Machine) Now() uint64 { return m.core.Now() }

// InKernel reports whether the machine is in privileged mode.
func (m *Machine) InKernel() bool { return m.depth > 0 }

// Depth returns the current kernel nesting depth.
func (m *Machine) Depth() int { return m.depth }

// Emulating reports whether the current interval is being fast-forwarded.
func (m *Machine) Emulating() bool { return m.emulating }

// skipTiming reports whether the current instruction bypasses the timing
// models: fast-forwarded OS intervals, and all kernel-mode work in App-Only
// simulation.
func (m *Machine) skipTiming() bool {
	if m.emulating && m.inInterval {
		return true
	}
	if m.appEmulating && m.depth == 0 {
		return true
	}
	return m.cfg.Mode == AppOnly && m.depth > 0
}

// cancelReason wraps the cancellation cause behind one pointer so the hot
// path needs a single atomic load to test for it.
type cancelReason struct{ err error }

// ErrCanceled is the default cancellation cause.
var ErrCanceled = errors.New("machine: run canceled")

// AbortError is the panic value a canceled machine raises from Exec (and the
// kernel scheduler from its handoff points): the kernel's thread wrappers
// recognize it and unwind their goroutines cleanly instead of treating it as
// a guest crash.
type AbortError struct{ Cause error }

func (e *AbortError) Error() string { return "machine: run aborted: " + e.Cause.Error() }
func (e *AbortError) Unwrap() error { return e.Cause }

// Cancel requests an asynchronous abort of the run with the given cause
// (ErrCanceled when nil). Safe to call from any goroutine; the first cause
// wins. The simulation goroutines observe it at the next instruction-boundary
// check and unwind via *AbortError panics.
func (m *Machine) Cancel(cause error) {
	if cause == nil {
		cause = ErrCanceled
	}
	m.cancel.CompareAndSwap(nil, &cancelReason{err: cause})
}

// Canceled returns the cancellation cause, or nil while the run is live.
func (m *Machine) Canceled() error {
	if r := m.cancel.Load(); r != nil {
		return r.err
	}
	return nil
}

// AbortIfCanceled panics with *AbortError if the machine was canceled. The
// kernel scheduler calls it at thread-handoff points so parked threads die
// promptly during teardown.
func (m *Machine) AbortIfCanceled() {
	if r := m.cancel.Load(); r != nil {
		panic(&AbortError{Cause: r.err})
	}
}

// execStaged stamps the staged scratch instruction with the cursor PC,
// advances the cursor, and executes it — the deliberately out-of-line half
// of Emitter.emit. The noinline keeps execStaged from folding back into
// emit and pushing it over the inlining budget: emit must inline into every
// helper so each instruction literal is built directly in the scratch slot
// (no stack intermediate, no argument copy — the copies were ~20% of a
// detailed run's CPU time).
//
//go:noinline
func (m *Machine) execStaged() {
	m.inst.PC = m.cursor.PC
	m.cursor.PC += 4
	m.Exec(&m.inst)
}

// Exec runs one dynamic instruction through the active backend. Kernel and
// guest code normally call this through an Emitter, which manages the PC
// cursor.
func (m *Machine) Exec(in *isa.Inst) {
	// Cancellation is polled every 256 instructions: cheap enough for the hot
	// path, tight enough that even a pure-compute guest loop aborts promptly.
	if m.totalInsts&255 == 0 {
		m.AbortIfCanceled()
	}
	m.totalInsts++
	owner := cache.OwnerApp
	if m.depth > 0 {
		m.osInsts++
		owner = cache.OwnerOS
	} else {
		m.userInsts++
		if m.appSink != nil && !m.appOpen {
			m.openAppInterval()
		}
	}
	if m.inInterval {
		m.curSig.Insts++
		switch in.Op {
		case isa.LOAD:
			m.curSig.Loads++
		case isa.STORE:
			m.curSig.Stores++
		case isa.BRANCH:
			m.curSig.Branches++
		}
	} else if m.appOpen && m.depth == 0 {
		m.appSig.Insts++
		switch in.Op {
		case isa.LOAD:
			m.appSig.Loads++
		case isa.STORE:
			m.appSig.Stores++
		case isa.BRANCH:
			m.appSig.Branches++
		}
	}
	if m.skipTiming() {
		if m.emulating {
			m.emuInsts++
			m.emuTotal++
			// Advance the virtual clock so events scheduled inside the
			// fast-forwarded interval see approximately correct time. The
			// estimate is deliberately conservative (90% of the service's
			// mean CPI): the cluster prediction tops up the remainder at
			// interval close, whereas an overshoot could not be taken back.
			m.advanceVirtual()
		} else if m.appEmulating && m.depth == 0 {
			m.appEmuInsts++
			m.appEmuTotal++
			// Same conservative virtual clock as OS emulation: the sampler's
			// prediction tops up the remainder when the app interval closes.
			m.advanceVirtual()
		}
	} else {
		m.core.Exec(in, owner)
	}
	if m.core.Now() >= m.next {
		m.pollEvents()
	}
}

// advanceVirtual applies one instruction's worth of estimated CPI to the
// virtual clock, flushing whole-cycle chunks into the core so events
// scheduled inside a fast-forwarded interval see approximately correct time.
func (m *Machine) advanceVirtual() {
	m.virtFrac += m.virtCPI
	if m.virtFrac >= 512 {
		chunk := uint64(m.virtFrac)
		m.virtFrac -= float64(chunk)
		m.core.SkipTo(m.core.Now() + chunk)
	}
}

// KEnter records entry into kernel mode for service svc. The first-level
// entry (depth 0→1) opens an OS service interval; nested entries (interrupts
// during a service, services invoked by services) fold into the initial one,
// per the paper's interval definition.
func (m *Machine) KEnter(svc isa.ServiceID) {
	m.depth++
	if m.depth == 1 && !m.inInterval {
		m.openInterval(svc, trace.CauseOf(svc))
	}
}

// KExit records a return toward user mode. The last exit (depth 1→0) closes
// the current interval.
func (m *Machine) KExit() {
	if m.depth == 0 {
		panic("machine: KExit without matching KEnter")
	}
	m.depth--
	if m.depth == 0 && m.inInterval {
		m.closeInterval()
	}
}

// SetDepth reconciles the machine's mode with a newly scheduled context's
// saved kernel depth. Context switches normally occur inside the kernel, so
// both the old and new depths are positive and the open interval continues
// across the switch (the paper's "extension of the initial OS service"). Two
// edge transitions are handled explicitly: dispatching a user-mode context
// while the kernel interval is open closes it, and dispatching a
// kernel-blocked context from the idle loop re-enters privileged mode,
// opening a fresh interval typed by the service the context was executing.
func (m *Machine) SetDepth(d int, svc isa.ServiceID) {
	if m.depth > 0 && d == 0 && m.inInterval {
		m.closeInterval()
	}
	if m.depth == 0 && d > 0 && !m.inInterval {
		m.openInterval(svc, trace.CauseResume)
	}
	m.depth = d
}

func (m *Machine) openInterval(svc isa.ServiceID, cause trace.Cause) {
	// An opening OS service interval ends the current application interval:
	// the two never overlap, and the app prediction's SkipTo lands before the
	// OS interval snapshots its start cycle.
	if m.appOpen {
		m.closeAppInterval()
	}
	m.inInterval = true
	m.curSvc = svc
	m.curCause = cause
	m.intervals++
	m.startInsts = m.totalInsts
	m.startCycles = m.core.Now()
	if m.mem != nil {
		m.startMem = m.mem.Stats()
	}
	m.emuInsts = 0
	m.emulating = false
	m.virtFrac = 0
	m.curSig = Signature{}
	if m.cfg.Mode == Accelerated && m.sink != nil {
		detailed, cpi := m.sink.OnServiceStart(svc)
		m.emulating = !detailed
		if m.emulating {
			m.emulated++
			if cpi <= 0 {
				cpi = 1
			}
			m.virtCPI = cpi * 0.9
		}
	}
}

func (m *Machine) closeInterval() {
	m.inInterval = false
	rec := IntervalRecord{Service: m.curSvc, Emulated: m.emulating, Sig: m.curSig}
	if m.emulating {
		insts := m.emuInsts
		rec.Insts = insts
		var pred *Prediction
		if m.sink != nil {
			pred = m.sink.OnServiceEnd(m.curSvc, m.curSig, nil)
		}
		if pred == nil {
			// Degenerate fallback (IPC 1), staged in the machine's scratch
			// so the no-sink path allocates nothing per interval.
			m.predScratch = Prediction{Cycles: insts}
			pred = &m.predScratch
		}
		// The cluster's recorded cycles include any I/O or idle wait the
		// service experienced. Simulated time may already have advanced
		// during the fast-forwarded interval (device waits execute at real
		// event times even in emulation), so only the remainder of the
		// predicted duration is applied.
		elapsed := m.core.Now() - m.startCycles
		add := uint64(0)
		if pred.Cycles > elapsed {
			add = pred.Cycles - elapsed
		}
		m.core.SkipTo(m.core.Now() + add)
		m.predCycles += add
		m.pred.Cycles += pred.Cycles
		m.pred.L1IMisses += pred.L1IMisses
		m.pred.L1DMisses += pred.L1DMisses
		m.pred.L2Misses += pred.L2Misses
		m.pred.L1IAccesses += pred.L1IAccesses
		m.pred.L1DAccesses += pred.L1DAccesses
		m.pred.L2Accesses += pred.L2Accesses
		if m.mem != nil {
			if !m.cfg.NoPollution {
				m.mem.TouchPhantoms(m.phantomBase(m.curSvc),
					int(pred.L1IMisses), int(pred.L1DMisses), int(pred.L2Misses))
			}
			if !m.cfg.NoBusInjection {
				// The service's DRAM traffic also occupied the memory bus;
				// replay that occupancy so subsequent detailed accesses see
				// the contention the skipped service would have caused.
				m.mem.InjectBusTraffic(int(pred.L2Misses+pred.L2Writebacks), m.startCycles)
			}
		}
		rec.Cycles = pred.Cycles
		rec.Predicted = pred
	} else {
		// The measurement lives in the machine's scratch buffer: sink and
		// observer consume it synchronously, so no per-interval allocation.
		m.measScratch = m.measureInterval()
		rec.Insts = m.measScratch.Insts
		rec.Cycles = m.measScratch.Cycles
		rec.Meas = &m.measScratch
		if m.cfg.Mode == Accelerated && m.sink != nil {
			m.sink.OnServiceEnd(m.curSvc, m.curSig, &m.measScratch)
		}
	}
	m.emulating = false
	if m.rec != nil {
		// The sink's OnServiceEnd (above) may have staged a cluster
		// annotation via Annotate; Interval consumes it here. For emulated
		// intervals the span duration is the predicted cycles — the machine
		// advanced Now to at most start+pred.Cycles, so spans never overlap.
		m.rec.Interval(m.curSvc, m.curCause, m.startCycles, rec.Cycles, rec.Insts, rec.Emulated)
	}
	if m.observer != nil {
		m.observer(rec)
	}
	if PoisonPools {
		// Scrub the interval scratch so a consumer that wrongly retained a
		// pointer past the callback reads loud garbage in the poison suites.
		m.measScratch = Measurement{Insts: PoisonPattern, Cycles: PoisonPattern}
		m.predScratch = Prediction{Cycles: PoisonPattern, L2Misses: PoisonPattern}
	}
	// Events that came due while the interval was fast-forwarded fire now.
	if m.core.Now() >= m.next {
		m.pollEvents()
	}
}

// openAppInterval starts an application interval at the current user-mode
// instruction and asks the sampling sink whether to simulate it in detail or
// fast-forward it under the virtual clock.
func (m *Machine) openAppInterval() {
	m.appOpen = true
	m.appIntervals++
	m.appSig = Signature{}
	m.appEmuInsts = 0
	// Exec has already counted the opening instruction (totalInsts++ happens
	// before the lazy open), and the interval owns it — hence the -1.
	m.appStartInsts = m.totalInsts - 1
	m.appStartCycles = m.core.Now()
	if m.mem != nil {
		m.appStartMem = m.mem.Stats()
	}
	detailed, cpi := m.appSink.OnAppStart()
	m.appEmulating = !detailed
	if m.appEmulating {
		m.appEmulated++
		if cpi <= 0 {
			cpi = 1
		}
		m.virtCPI = cpi * 0.9
		m.virtFrac = 0
	}
}

// closeAppInterval ends the open application interval: a fast-forwarded
// interval receives the sampler's extrapolated prediction (remaining cycles
// applied via SkipTo, cache pollution + bus occupancy replayed exactly like
// an emulated OS service); a detailed one is measured and fed back as a
// stratum representative. Events that came due during the skip are NOT
// polled here: the common call site is openInterval (an OS service is about
// to start), and delivering an interrupt from under a half-opened interval
// would nest mode switches incorrectly. The next Exec polls them within a
// few instructions, deterministically.
func (m *Machine) closeAppInterval() {
	if !m.appOpen {
		return
	}
	m.appOpen = false
	emulated := m.appEmulating
	m.appEmulating = false
	if emulated {
		insts := m.appEmuInsts
		var pred *Prediction
		if m.appSink != nil {
			pred = m.appSink.OnAppEnd(m.appSig, nil)
		}
		if pred == nil {
			// Degenerate fallback (IPC 1), staged in the machine's scratch.
			m.predScratch = Prediction{Cycles: insts}
			pred = &m.predScratch
		}
		// As with OS emulation, simulated time may already have advanced
		// during the fast-forward (device events fire at real times), so only
		// the remainder of the predicted duration is applied.
		elapsed := m.core.Now() - m.appStartCycles
		add := uint64(0)
		if pred.Cycles > elapsed {
			add = pred.Cycles - elapsed
		}
		m.core.SkipTo(m.core.Now() + add)
		m.predCycles += add
		m.pred.Cycles += pred.Cycles
		m.pred.L1IMisses += pred.L1IMisses
		m.pred.L1DMisses += pred.L1DMisses
		m.pred.L2Misses += pred.L2Misses
		m.pred.L1IAccesses += pred.L1IAccesses
		m.pred.L1DAccesses += pred.L1DAccesses
		m.pred.L2Accesses += pred.L2Accesses
		if m.mem != nil {
			if !m.cfg.NoPollution {
				m.mem.TouchPhantoms(m.phantomBase(isa.App()),
					int(pred.L1IMisses), int(pred.L1DMisses), int(pred.L2Misses))
			}
			if !m.cfg.NoBusInjection {
				m.mem.InjectBusTraffic(int(pred.L2Misses+pred.L2Writebacks), m.appStartCycles)
			}
		}
		if m.rec != nil {
			m.rec.Interval(isa.App(), trace.CauseApp, m.appStartCycles, pred.Cycles, insts, true)
		}
	} else {
		m.measScratch = Measurement{
			Insts:  m.totalInsts - m.appStartInsts,
			Cycles: m.core.Now() - m.appStartCycles,
		}
		if m.mem != nil {
			d := m.mem.Stats().Sub(m.appStartMem)
			m.measScratch.L1I, m.measScratch.L1D, m.measScratch.L2 = d.L1I, d.L1D, d.L2
		}
		if m.appSink != nil {
			m.appSink.OnAppEnd(m.appSig, &m.measScratch)
		}
		if m.rec != nil {
			m.rec.Interval(isa.App(), trace.CauseApp, m.appStartCycles,
				m.measScratch.Cycles, m.measScratch.Insts, false)
		}
	}
	if PoisonPools {
		// Same scrub as closeInterval: retained scratch pointers read loud
		// garbage in the poison suites.
		m.measScratch = Measurement{Insts: PoisonPattern, Cycles: PoisonPattern}
		m.predScratch = Prediction{Cycles: PoisonPattern, L2Misses: PoisonPattern}
	}
}

// FinishApp closes any open application interval. The workload runner calls
// it once after the kernel exits so the final user-mode stretch is measured
// or extrapolated like any other; without an attached AppSink it is a no-op.
func (m *Machine) FinishApp() { m.closeAppInterval() }

// AppIntervalStats reports the application-interval counters: total app
// intervals opened, how many were fast-forwarded, and the total instructions
// fast-forwarded on the application side.
func (m *Machine) AppIntervalStats() (intervals, emulated, emuInsts uint64) {
	return m.appIntervals, m.appEmulated, m.appEmuTotal
}

// phantomBase returns the service's stable phantom working-set base,
// reserving generously-spaced address ranges far above any allocated region.
func (m *Machine) phantomBase(svc isa.ServiceID) uint64 {
	if m.phantoms == nil {
		m.phantoms = make(map[isa.ServiceID]uint64)
		m.phantomNext = 0xF000_0000_0000_0000
	}
	base, ok := m.phantoms[svc]
	if !ok {
		base = m.phantomNext
		m.phantomNext += 1 << 32 // room for any footprint
		m.phantoms[svc] = base
	}
	return base
}

func (m *Machine) measureInterval() Measurement {
	meas := Measurement{
		Insts:  m.totalInsts - m.startInsts,
		Cycles: m.core.Now() - m.startCycles,
	}
	if m.mem != nil {
		d := m.mem.Stats().Sub(m.startMem)
		meas.L1I, meas.L1D, meas.L2 = d.L1I, d.L1D, d.L2
	}
	return meas
}

// Stats is the machine-level aggregate view used by the experiment harness.
type Stats struct {
	Cycles     uint64
	Insts      uint64
	UserInsts  uint64
	OSInsts    uint64
	Intervals  uint64
	Emulated   uint64
	EmuInsts   uint64 // instructions fast-forwarded in emulation mode
	PredCycles uint64
	Pred       Prediction // accumulated predicted cache activity
	Mem        memsys.Snapshot
	DRAM       uint64
	BrLookups  uint64
	BrMispreds uint64
}

// IPC returns overall instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// Coverage returns the fraction of OS service invocations that were
// fast-forwarded (the paper's prediction coverage).
func (s Stats) Coverage() float64 {
	if s.Intervals == 0 {
		return 0
	}
	return float64(s.Emulated) / float64(s.Intervals)
}

// DeclareWarmup marks that this workload will call Warm() at its skip
// boundary (called during setup).
func (m *Machine) DeclareWarmup() { m.warmDeclared = true }

// HasWarmup reports whether the workload declared a warm-up phase.
func (m *Machine) HasWarmup() bool { return m.warmDeclared }

// SetWarmCallback registers the hook invoked once at the warm point.
func (m *Machine) SetWarmCallback(fn func()) { m.warmCb = fn }

// Warm marks the end of the skipped warm-up period: the statistics baseline
// is captured and the registered callback (typically arming the
// acceleration engine) fires. Subsequent Stats() calls report only the
// measured period. Idempotent.
func (m *Machine) Warm() {
	if m.warmed {
		return
	}
	m.warmed = true
	s := m.statsRaw()
	m.base = &s
	if m.warmCb != nil {
		m.warmCb()
	}
}

// Warmed reports whether the warm point has passed.
func (m *Machine) Warmed() bool { return m.warmed }

// Stats returns the aggregate statistics for the measured period (the whole
// run when no warm-up was declared or reached).
func (m *Machine) Stats() Stats {
	st := m.statsRaw()
	if m.base != nil {
		st = st.sub(*m.base)
	}
	return st
}

func (m *Machine) statsRaw() Stats {
	st := Stats{
		Cycles:     m.core.Now(),
		Insts:      m.totalInsts,
		UserInsts:  m.userInsts,
		OSInsts:    m.osInsts,
		Intervals:  m.intervals,
		Emulated:   m.emulated,
		EmuInsts:   m.emuTotal,
		PredCycles: m.predCycles,
		Pred:       m.pred,
	}
	if m.mem != nil {
		st.Mem = m.mem.Stats()
		st.DRAM = m.mem.DRAMAccesses()
	}
	st.BrLookups, st.BrMispreds = m.core.Predictor().Stats()
	return st
}

// sub returns s minus a baseline, component-wise.
func (s Stats) sub(b Stats) Stats {
	return Stats{
		Cycles:     s.Cycles - b.Cycles,
		Insts:      s.Insts - b.Insts,
		UserInsts:  s.UserInsts - b.UserInsts,
		OSInsts:    s.OSInsts - b.OSInsts,
		Intervals:  s.Intervals - b.Intervals,
		Emulated:   s.Emulated - b.Emulated,
		EmuInsts:   s.EmuInsts - b.EmuInsts,
		PredCycles: s.PredCycles - b.PredCycles,
		Pred: Prediction{
			Cycles:       s.Pred.Cycles - b.Pred.Cycles,
			L1IMisses:    s.Pred.L1IMisses - b.Pred.L1IMisses,
			L1DMisses:    s.Pred.L1DMisses - b.Pred.L1DMisses,
			L2Misses:     s.Pred.L2Misses - b.Pred.L2Misses,
			L1IAccesses:  s.Pred.L1IAccesses - b.Pred.L1IAccesses,
			L1DAccesses:  s.Pred.L1DAccesses - b.Pred.L1DAccesses,
			L2Accesses:   s.Pred.L2Accesses - b.Pred.L2Accesses,
			L2Writebacks: s.Pred.L2Writebacks - b.Pred.L2Writebacks,
		},
		Mem:        s.Mem.Sub(b.Mem),
		DRAM:       s.DRAM - b.DRAM,
		BrLookups:  s.BrLookups - b.BrLookups,
		BrMispreds: s.BrMispreds - b.BrMispreds,
	}
}

// MissRates returns effective (simulated + predicted) L1I/L1D/L2 miss rates,
// combining detailed-period measurements with prediction-period estimates —
// the quantities Fig 9 compares.
func (s Stats) MissRates() (l1i, l1d, l2 float64) {
	rate := func(miss, acc uint64, pm, pa uint64) float64 {
		a := acc + pa
		if a == 0 {
			return 0
		}
		return float64(miss+pm) / float64(a)
	}
	l1i = rate(s.Mem.L1I.Misses, s.Mem.L1I.Accesses, s.Pred.L1IMisses, s.Pred.L1IAccesses)
	l1d = rate(s.Mem.L1D.Misses, s.Mem.L1D.Accesses, s.Pred.L1DMisses, s.Pred.L1DAccesses)
	l2 = rate(s.Mem.L2.Misses, s.Mem.L2.Accesses, s.Pred.L2Misses, s.Pred.L2Accesses)
	return
}
