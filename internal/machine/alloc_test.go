package machine

import (
	"fmt"
	"testing"

	"fssim/internal/isa"
	"fssim/internal/trace"
)

// intervalAllocBudget pins the steady-state heap-allocation cost of one
// simulated OS-service interval driven through the machine hot path — the
// emitter's scratch instruction, the typed event heap, op-dispatched device
// events, and the per-machine interval scratch buffers. The budget is zero:
// after warm-up (slice high-water marks reached, phantom map populated,
// trace ring wrapped) an interval must not touch the heap at all, whichever
// core model is active, whether the interval is simulated in detail or
// fast-forwarded, whether tracing records it, and whether device events
// fire inside it. Any regression here reintroduces a per-interval (or worse,
// per-instruction) allocation that the whole-run benchmarks would only show
// as a diffuse slowdown.
const intervalAllocBudget = 0

// budgetSink is a minimal acceleration engine: it forces every interval into
// emulation and predicts through a reusable record, like core.Learner does.
type budgetSink struct {
	pred Prediction
}

func (s *budgetSink) OnServiceStart(svc isa.ServiceID) (bool, float64) { return false, 1.3 }

func (s *budgetSink) OnServiceEnd(svc isa.ServiceID, sig Signature, meas *Measurement) *Prediction {
	if meas != nil {
		return nil
	}
	s.pred = Prediction{
		Cycles:      sig.Insts * 2,
		L1IMisses:   2,
		L1DMisses:   3,
		L2Misses:    1,
		L1IAccesses: sig.Insts,
		L1DAccesses: sig.Insts / 2,
		L2Accesses:  5,
	}
	return &s.pred
}

// driveInterval emits one user→kernel→user round trip shaped like a real
// service: user code, a syscall-style entry, a called kernel routine with a
// memory-access mix, a device event scheduled and firing mid-service (the
// path every disk completion, packet arrival and timer tick takes), and the
// return to user mode.
func driveInterval(m *Machine, e Emitter, op EventOp, events bool) {
	e.Ops(8) // user code
	m.KEnter(isa.Sys(isa.SysRead))
	e.Call(KernelCodeBase + 0x400)
	e.Mix(40)
	e.Load(0x1000, 8, 0)
	e.Store(0x1040, 8)
	if events {
		m.ScheduleOpAfter(5, op, 7, 9) // fires inside the service
	}
	e.Mix(30)
	e.Branch(true, KernelCodeBase+0x800)
	e.Ops(6)
	e.Ret()
	e.Iret()
	m.KExit()
	e.Ops(4) // user code
}

// TestIntervalAllocBudget measures AllocsPerRun over the full cross product
// of core model × simulation mode × tracing × device events, pinning each
// combination to intervalAllocBudget.
func TestIntervalAllocBudget(t *testing.T) {
	cores := []struct {
		name string
		kind CoreKind
	}{{"ooo", CoreOOO}, {"inorder", CoreInOrder}}
	modes := []struct {
		name string
		mode SimMode
	}{{"detailed", FullSystem}, {"emulated", Accelerated}}

	for _, core := range cores {
		for _, mode := range modes {
			for _, traced := range []bool{false, true} {
				for _, events := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/traced=%v/events=%v",
						core.name, mode.name, traced, events)
					t.Run(name, func(t *testing.T) {
						cfg := DefaultConfig()
						cfg.Core = core.kind
						cfg.Mode = mode.mode
						m := New(cfg)
						if mode.mode == Accelerated {
							m.SetSink(&budgetSink{})
						}
						if traced {
							// A small ring so the measured intervals wrap it:
							// eviction-path recording must be free too.
							m.SetTrace(trace.NewRecorder(trace.Config{SpanCap: 32, InstantCap: 8}))
						}
						// Observer consuming the scratch records the way the
						// characterization harness does (copy, don't retain).
						var sum uint64
						m.SetObserver(func(r IntervalRecord) {
							if r.Meas != nil {
								sum += r.Meas.Cycles
							}
							if r.Predicted != nil {
								sum += r.Predicted.Cycles
							}
						})
						var fired uint64
						op := m.RegisterOp(func(a, b uint64) { fired += a + b })
						e := m.Emitter()
						// Warm-up: reach every slice's high-water mark, create
						// the phantom map, wrap the trace ring.
						for i := 0; i < 64; i++ {
							driveInterval(m, e, op, events)
						}
						avg := testing.AllocsPerRun(100, func() {
							driveInterval(m, e, op, events)
						})
						if avg > intervalAllocBudget {
							t.Errorf("%.2f allocs per interval, budget %d", avg, intervalAllocBudget)
						}
						if events && fired == 0 {
							t.Fatal("op events never fired; the measured loop missed the event path")
						}
						if sum == 0 {
							t.Fatal("observer saw no cycles; the measured loop closed no intervals")
						}
					})
				}
			}
		}
	}
}

// TestScheduleOpAllocFree pins the raw event-queue hot path on its own:
// scheduling and firing an op event allocates nothing once the heap's
// backing array has reached its high-water mark.
func TestScheduleOpAllocFree(t *testing.T) {
	m := New(DefaultConfig())
	var fired uint64
	op := m.RegisterOp(func(a, b uint64) { fired++ })
	// High-water the queue.
	for i := 0; i < 256; i++ {
		m.ScheduleOp(uint64(i), op, 0, 0)
	}
	for m.AdvanceIdle() {
	}
	avg := testing.AllocsPerRun(200, func() {
		at := m.Now() + 3
		m.ScheduleOp(at, op, 1, 2)
		m.ScheduleOp(at, op, 3, 4)
		m.ScheduleOp(at+1, op, 5, 6)
		for m.AdvanceIdle() {
		}
	})
	if avg > 0 {
		t.Errorf("schedule+fire allocates %.2f per run, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}
