package machine

import (
	"testing"

	"fssim/internal/isa"
)

func newTestMachine(mode SimMode) *Machine {
	cfg := DefaultConfig()
	cfg.Mode = mode
	return New(cfg)
}

func TestIntervalBoundaries(t *testing.T) {
	m := newTestMachine(FullSystem)
	var recs []IntervalRecord
	m.SetObserver(func(r IntervalRecord) { recs = append(recs, r) })
	e := m.Emitter()

	e.Ops(10) // user
	m.KEnter(isa.Sys(isa.SysRead))
	e.Ops(100)
	m.KEnter(isa.Irq(isa.IrqTimer)) // nested: folds into sys_read
	e.Ops(50)
	m.KExit()
	e.Ops(25)
	e.Iret()
	m.KExit()
	e.Ops(5) // user

	if len(recs) != 1 {
		t.Fatalf("intervals = %d, want 1 (nested folds)", len(recs))
	}
	r := recs[0]
	if r.Service != isa.Sys(isa.SysRead) {
		t.Errorf("interval typed %v", r.Service)
	}
	if r.Insts != 176 {
		t.Errorf("interval insts = %d, want 176", r.Insts)
	}
	if r.Cycles == 0 || r.Meas == nil {
		t.Errorf("interval not measured: %+v", r)
	}
	st := m.Stats()
	if st.OSInsts != 176 || st.UserInsts != 15 {
		t.Errorf("attribution: OS %d user %d", st.OSInsts, st.UserInsts)
	}
}

func TestSetDepthClosesAndReopens(t *testing.T) {
	m := newTestMachine(FullSystem)
	var recs []IntervalRecord
	m.SetObserver(func(r IntervalRecord) { recs = append(recs, r) })
	e := m.Emitter()

	m.KEnter(isa.Sys(isa.SysPoll))
	e.Ops(40)
	// Context switch to a user-mode context: interval closes.
	m.SetDepth(0, isa.ServiceID{})
	if len(recs) != 1 {
		t.Fatalf("switch to user did not close interval")
	}
	e.Ops(10)
	// Dispatch a kernel-blocked context: interval reopens typed by its service.
	m.SetDepth(1, isa.Sys(isa.SysPoll))
	e.Ops(30)
	e.Iret()
	m.KExit()
	if len(recs) != 2 {
		t.Fatalf("reopened interval did not close, have %d", len(recs))
	}
	if recs[1].Service != isa.Sys(isa.SysPoll) {
		t.Errorf("reopened interval typed %v", recs[1].Service)
	}
}

// fixedSink predicts constant values and records calls.
type fixedSink struct {
	detailed bool
	pred     Prediction
	starts   int
	ends     int
	measured int
	lastSig  Signature
}

func (s *fixedSink) OnServiceStart(svc isa.ServiceID) (bool, float64) {
	s.starts++
	return s.detailed, 1
}

func (s *fixedSink) OnServiceEnd(svc isa.ServiceID, sig Signature, meas *Measurement) *Prediction {
	s.ends++
	s.lastSig = sig
	if meas != nil {
		s.measured++
		return nil
	}
	p := s.pred
	return &p
}

func TestAcceleratedEmulation(t *testing.T) {
	m := newTestMachine(Accelerated)
	sink := &fixedSink{detailed: false, pred: Prediction{Cycles: 5000, L2Misses: 10}}
	m.SetSink(sink)
	e := m.Emitter()

	e.Ops(10)
	before := m.Now()
	m.KEnter(isa.Sys(isa.SysRead))
	e.Ops(1000) // emulated: no timing
	e.Iret()
	m.KExit()
	after := m.Now()

	if sink.starts != 1 || sink.ends != 1 || sink.measured != 0 {
		t.Fatalf("sink calls: %+v", sink)
	}
	if d := after - before; d < 4900 || d > 5200 {
		t.Errorf("predicted advance = %d, want ~5000", d)
	}
	st := m.Stats()
	if st.Emulated != 1 || st.EmuInsts != 1001 {
		t.Errorf("emulation stats: %+v", st)
	}
	if st.Coverage() != 1 {
		t.Errorf("coverage = %v", st.Coverage())
	}
	if sink.lastSig.Insts != 1001 {
		t.Errorf("signature insts = %d", sink.lastSig.Insts)
	}
}

// TestSignatureMixCounting checks the emulation-observable mix counters.
func TestSignatureMixCounting(t *testing.T) {
	m := newTestMachine(Accelerated)
	sink := &fixedSink{detailed: false, pred: Prediction{Cycles: 100}}
	m.SetSink(sink)
	e := m.Emitter()
	m.KEnter(isa.Sys(isa.SysWrite))
	e.Ops(10)
	e.Load(0x1000, 8, 0)
	e.Load(0x2000, 8, 0)
	e.Store(0x3000, 8)
	e.Branch(false, 0)
	e.Iret()
	m.KExit()
	sig := sink.lastSig
	if sig.Loads != 2 || sig.Stores != 1 || sig.Branches != 1 {
		t.Fatalf("mix = %+v", sig)
	}
	if sig.Insts != 15 {
		t.Fatalf("insts = %d", sig.Insts)
	}
}

func TestAcceleratedDetailedLearning(t *testing.T) {
	m := newTestMachine(Accelerated)
	sink := &fixedSink{detailed: true}
	m.SetSink(sink)
	e := m.Emitter()
	m.KEnter(isa.Sys(isa.SysRead))
	e.Ops(100)
	e.Iret()
	m.KExit()
	if sink.measured != 1 {
		t.Fatalf("learning interval not measured")
	}
	if m.Stats().Emulated != 0 {
		t.Error("detailed interval counted as emulated")
	}
}

func TestAppOnlySkipsKernelTiming(t *testing.T) {
	m := newTestMachine(AppOnly)
	e := m.Emitter()
	e.Ops(100)
	user := m.Now()
	m.KEnter(isa.Sys(isa.SysWrite))
	e.Ops(100000)
	m.KExit()
	if m.Now() != user {
		t.Errorf("kernel instructions advanced the clock in App-Only mode")
	}
	st := m.Stats()
	if st.OSInsts != 100000 {
		t.Errorf("kernel instructions not counted functionally: %d", st.OSInsts)
	}
}

func TestEventsFireInOrder(t *testing.T) {
	m := newTestMachine(FullSystem)
	var fired []int
	m.Schedule(500, func() { fired = append(fired, 2) })
	m.Schedule(100, func() { fired = append(fired, 1) })
	m.Schedule(900, func() { fired = append(fired, 3) })
	e := m.Emitter()
	for m.Now() < 2000 {
		e.Ops(64)
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("events fired %v", fired)
	}
}

func TestAdvanceIdle(t *testing.T) {
	m := newTestMachine(FullSystem)
	hit := false
	m.Schedule(10000, func() { hit = true })
	if !m.AdvanceIdle() {
		t.Fatal("AdvanceIdle found no event")
	}
	if !hit || m.Now() < 10000 {
		t.Fatalf("idle advance: hit=%v now=%d", hit, m.Now())
	}
	if m.AdvanceIdle() {
		t.Fatal("AdvanceIdle with empty queue should report false")
	}
}

func TestWarmBaseline(t *testing.T) {
	m := newTestMachine(FullSystem)
	m.DeclareWarmup()
	armed := false
	m.SetWarmCallback(func() { armed = true })
	e := m.Emitter()
	e.Ops(5000)
	m.Warm()
	if !armed {
		t.Fatal("warm callback not invoked")
	}
	warmInsts := m.Stats().Insts
	if warmInsts != 0 {
		t.Fatalf("baseline not reset: %d insts", warmInsts)
	}
	e.Ops(123)
	if got := m.Stats().Insts; got != 123 {
		t.Fatalf("post-warm insts = %d", got)
	}
	m.Warm() // idempotent
	if got := m.Stats().Insts; got != 123 {
		t.Fatalf("second Warm reset the baseline")
	}
}

func TestCursorCallRet(t *testing.T) {
	m := newTestMachine(FullSystem)
	e := m.Emitter()
	start := m.CursorState().PC
	e.Call(0x5000)
	if m.CursorState().PC != 0x5000 {
		t.Fatalf("call did not move PC")
	}
	e.Ops(3)
	e.Ret()
	// The return address is the instruction after the call.
	if got := m.CursorState().PC; got != start+4 {
		t.Fatalf("ret PC = %#x, want %#x", got, start+4)
	}
}

func TestLoopReplaysPCs(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	e := m.Emitter()
	e.Loop(100, func(i int) { e.Ops(4) })
	st := m.Stats()
	// 100 iterations x 5 insts over the same line(s): at most a few I-lines.
	if st.Mem.L1I.Misses > 4 {
		t.Errorf("loop body did not replay PCs: %d I-misses", st.Mem.L1I.Misses)
	}
}

func TestModeString(t *testing.T) {
	if FullSystem.String() != "App+OS" || AppOnly.String() != "App Only" ||
		Accelerated.String() != "App+OS Pred" {
		t.Error("mode names diverge from the paper's labels")
	}
}
