package machine

import (
	"testing"

	"fssim/internal/isa"
)

func TestEmitterOpcodeCounts(t *testing.T) {
	m := New(DefaultConfig())
	var ops []isa.Opcode
	// Count via the interval signature: open a pseudo-interval.
	m.KEnter(isa.Sys(isa.SysWrite))
	e := m.Emitter()
	e.Ops(3)
	e.Chain(2)
	e.Mix(8)
	e.FOps(4)
	e.Div()
	e.FDiv()
	e.Load(0x100, 8, 0)
	e.Store(0x200, 8)
	e.Branch(true, 0x1000)
	want := uint64(3 + 2 + 8 + 4 + 1 + 1 + 1 + 1 + 1)
	if m.curSig.Insts != want {
		t.Fatalf("emitted %d instructions, want %d", m.curSig.Insts, want)
	}
	if m.curSig.Loads != 1 || m.curSig.Stores != 1 || m.curSig.Branches != 1 {
		t.Fatalf("mix %+v", m.curSig)
	}
	e.Iret()
	m.KExit()
	_ = ops
}

func TestCopyLinesTouchesBothRanges(t *testing.T) {
	m := New(DefaultConfig())
	e := m.Emitter()
	e.CopyLines(0x20_0000, 0x30_0000, 16)
	st := m.Stats()
	// 16 loads + 16 stores = 32 line touches; both ranges cold.
	if st.Mem.L1D.Misses != 32 {
		t.Fatalf("copy misses = %d, want 32", st.Mem.L1D.Misses)
	}
}

func TestScanAndWriteLines(t *testing.T) {
	m := New(DefaultConfig())
	e := m.Emitter()
	e.ScanLines(0x40_0000, 8, 64)
	e.WriteLines(0x50_0000, 8, 64)
	st := m.Stats()
	if st.Mem.L1D.Misses != 16 {
		t.Fatalf("misses = %d, want 16", st.Mem.L1D.Misses)
	}
	if st.Insts < 8*3*2 {
		t.Fatalf("too few instructions emitted: %d", st.Insts)
	}
}

func TestChaseListSerializes(t *testing.T) {
	// Pointer chasing over cold lines must cost roughly a full memory
	// latency per node (dependent loads), unlike an independent scan.
	mScan := New(DefaultConfig())
	mScan.Emitter().ScanLines(0x60_0000, 32, 64)
	mChase := New(DefaultConfig())
	nodes := make([]uint64, 32)
	for i := range nodes {
		nodes[i] = 0x70_0000 + uint64(i)*64
	}
	mChase.Emitter().ChaseList(nodes)
	if mChase.Now() < mScan.Now()*2 {
		t.Fatalf("chase (%d cycles) should be much slower than scan (%d)",
			mChase.Now(), mScan.Now())
	}
}

func TestCodeMapAllocations(t *testing.T) {
	cm := NewCodeMap(0x1000)
	a := cm.Fn(100)
	b := cm.Fn(100)
	if a != 0x1000 {
		t.Fatalf("first fn at %#x", a)
	}
	if b <= a || b%64 != 0 {
		t.Fatalf("second fn at %#x", b)
	}
}

func TestSchedulePastEventFiresImmediately(t *testing.T) {
	m := New(DefaultConfig())
	e := m.Emitter()
	e.Ops(1000)
	fired := false
	m.Schedule(1, func() { fired = true }) // already past
	e.Ops(8)
	if !fired {
		t.Fatal("past-due event did not fire at the next boundary")
	}
}

func TestPendingEvents(t *testing.T) {
	m := New(DefaultConfig())
	m.Schedule(1_000_000, func() {})
	m.Schedule(2_000_000, func() {})
	if m.PendingEvents() != 2 {
		t.Fatalf("pending = %d", m.PendingEvents())
	}
}
