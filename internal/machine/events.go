package machine

// The event queue is the hot heart of the device model: every disk
// completion, packet arrival, timer tick and sleep wakeup passes through it,
// interleaved with the instruction stream at a rate of thousands of events
// per simulated second. Two properties keep it allocation-free in steady
// state:
//
//   - Events are plain values in a typed binary heap. There is no
//     container/heap interface{} boxing, so pushing and popping never
//     allocates (beyond amortized slice growth, which stops once the queue
//     has reached its high-water mark).
//
//   - Hot schedulers use op-dispatched events: a typed op code naming a
//     handler in the machine's per-machine jump table plus two payload
//     words, instead of a fresh closure per event. The handler closure is
//     allocated once at registration; per-event state rides in the payload.
//     The closure form (Schedule with a func()) remains available for cold
//     paths — setup, fault plans, guest-level callbacks — where a capture
//     allocation per event is irrelevant.
//
// Determinism: events fire in (at, seq) order, seq being a per-machine
// counter, so each machine's event order is a pure function of its own
// scheduling history regardless of heap internals or parallelism.

// EventOp names a handler registered in the machine's dispatch table.
type EventOp int32

// opFunc marks a closure-carrying event (Schedule); payload words unused.
const opFunc EventOp = -1

// event is a scheduled device callback: either a registered op with two
// payload words, or a closure.
type event struct {
	at  uint64
	seq uint64 // tie-break for determinism
	op  EventOp
	a   uint64
	b   uint64
	fn  func()
}

// eventQueue is a typed binary min-heap over value events ordered by
// (at, seq). It replaces container/heap to avoid the interface{} boxing
// allocation on every Push/Pop.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	if PoisonPools {
		// Scrub the vacated slot so any read of recycled heap backing is
		// loud garbage rather than a plausible stale event.
		h[n] = event{at: ^uint64(0), seq: ^uint64(0), op: -2,
			a: 0xDEADDEADDEADDEAD, b: 0xDEADDEADDEADDEAD}
	} else {
		h[n] = event{} // drop the closure reference for the GC
	}
	h = h[:n]
	*q = h
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && h.less(r, l) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// PoisonPools, when set (tests only), makes every pooled or free-listed
// record in the simulator — vacated event-heap slots, recycled kernel
// scratch, per-machine measurement/prediction buffers — get overwritten
// with loud garbage at release time. The determinism suites run with this
// enabled to prove that record reuse never leaks state across intervals,
// runs, or machines: if any consumer reads a recycled record before its
// producer fully rewrites it, the poison changes the simulation's output
// and the byte-identity tests fail.
var PoisonPools bool

// PoisonPattern is the word pooled records are scrubbed with.
const PoisonPattern uint64 = 0xDEADDEADDEADDEAD

// RegisterOp adds a handler to the machine's event dispatch table and
// returns its op code for ScheduleOp. Handlers receive the two payload
// words the event was scheduled with. Registration happens at setup time
// (kernel construction, device attach); the returned op is stable for the
// machine's lifetime.
func (m *Machine) RegisterOp(h func(a, b uint64)) EventOp {
	m.ops = append(m.ops, h)
	return EventOp(len(m.ops) - 1)
}

// Schedule runs fn when the global cycle counter reaches cycle `at`
// (immediately at the next instruction boundary if `at` is already past).
// Device models use this for disk completions, packet arrivals and timer
// ticks; callbacks typically raise an interrupt via the kernel.
// The tie-break sequence is per-machine so that concurrently running
// machines stay race-free and each machine's event order is a pure
// function of its own history.
//
// Schedule carries a closure and is the cold-path form; steady-state
// device scheduling should use ScheduleOp, which allocates nothing.
func (m *Machine) Schedule(at uint64, fn func()) {
	m.eventSeq++
	m.events.push(event{at: at, seq: m.eventSeq, op: opFunc, fn: fn})
	if at < m.next {
		m.next = at
	}
}

// ScheduleAfter runs fn delay cycles from now.
func (m *Machine) ScheduleAfter(delay uint64, fn func()) {
	m.Schedule(m.core.Now()+delay, fn)
}

// ScheduleOp schedules a registered handler with two payload words. The
// event is a plain value — no closure, no boxing — so steady-state device
// scheduling through this path performs zero heap allocations.
func (m *Machine) ScheduleOp(at uint64, op EventOp, a, b uint64) {
	m.eventSeq++
	m.events.push(event{at: at, seq: m.eventSeq, op: op, a: a, b: b})
	if at < m.next {
		m.next = at
	}
}

// ScheduleOpAfter schedules a registered handler delay cycles from now.
func (m *Machine) ScheduleOpAfter(delay uint64, op EventOp, a, b uint64) {
	m.ScheduleOp(m.core.Now()+delay, op, a, b)
}

// pollEvents fires all due events (unless a delivery is already on the
// stack). Events fire even while an interval is being fast-forwarded: the
// functional side of device completions — pages becoming uptodate, packets
// arriving, threads waking — must proceed for emulated services exactly as
// for detailed ones; only their handler instructions bypass the timing
// models.
func (m *Machine) pollEvents() {
	if m.delivering {
		return
	}
	m.delivering = true
	for len(m.events) > 0 && m.events[0].at <= m.core.Now() {
		e := m.events.pop()
		if e.op >= 0 {
			m.ops[e.op](e.a, e.b)
		} else {
			e.fn()
		}
	}
	if len(m.events) > 0 {
		m.next = m.events[0].at
	} else {
		m.next = ^uint64(0)
	}
	m.delivering = false
}

// DeliverIRQ invokes the kernel's registered interrupt entry for vector.
// Device event callbacks use this; the kernel entry performs KEnter/KExit
// and emits the handler's instructions.
func (m *Machine) DeliverIRQ(vector uint16) {
	if m.irq != nil {
		m.irq(vector)
	}
}

// PendingEvents reports the number of scheduled events.
func (m *Machine) PendingEvents() int { return len(m.events) }

// AdvanceIdle is called by the scheduler when no context is runnable: it
// skips the clock forward to the next pending event and fires it. It reports
// false if there is nothing to wait for (which would be a workload hang).
func (m *Machine) AdvanceIdle() bool {
	if len(m.events) == 0 {
		return false
	}
	// An idle gap ends any open application interval: the CPU is waiting, not
	// executing user code, and idle time depends on global machine state — if
	// it leaked into app intervals, their cycle counts would be dominated by
	// wait time no per-instruction estimator could predict. App intervals are
	// therefore maximal user-mode stretches *between* idle gaps; a new one
	// opens at the next user-mode instruction.
	if m.appOpen {
		m.closeAppInterval()
	}
	at := m.events[0].at
	if at > m.core.Now() {
		m.core.SkipTo(at)
	}
	m.pollEvents()
	return true
}
