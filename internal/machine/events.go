package machine

import "container/heap"

// event is a scheduled device callback.
type event struct {
	at  uint64
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Schedule runs fn when the global cycle counter reaches cycle `at`
// (immediately at the next instruction boundary if `at` is already past).
// Device models use this for disk completions, packet arrivals and timer
// ticks; callbacks typically raise an interrupt via the kernel.
// The tie-break sequence is per-machine so that concurrently running
// machines stay race-free and each machine's event order is a pure
// function of its own history.
func (m *Machine) Schedule(at uint64, fn func()) {
	m.eventSeq++
	heap.Push(&m.events, event{at: at, seq: m.eventSeq, fn: fn})
	if at < m.next {
		m.next = at
	}
}

// ScheduleAfter runs fn delay cycles from now.
func (m *Machine) ScheduleAfter(delay uint64, fn func()) {
	m.Schedule(m.core.Now()+delay, fn)
}

// pollEvents fires all due events (unless a delivery is already on the
// stack). Events fire even while an interval is being fast-forwarded: the
// functional side of device completions — pages becoming uptodate, packets
// arriving, threads waking — must proceed for emulated services exactly as
// for detailed ones; only their handler instructions bypass the timing
// models.
func (m *Machine) pollEvents() {
	if m.delivering {
		return
	}
	m.delivering = true
	for len(m.events) > 0 && m.events[0].at <= m.core.Now() {
		e := heap.Pop(&m.events).(event)
		e.fn()
	}
	if len(m.events) > 0 {
		m.next = m.events[0].at
	} else {
		m.next = ^uint64(0)
	}
	m.delivering = false
}

// DeliverIRQ invokes the kernel's registered interrupt entry for vector.
// Device event callbacks use this; the kernel entry performs KEnter/KExit
// and emits the handler's instructions.
func (m *Machine) DeliverIRQ(vector uint16) {
	if m.irq != nil {
		m.irq(vector)
	}
}

// PendingEvents reports the number of scheduled events.
func (m *Machine) PendingEvents() int { return len(m.events) }

// AdvanceIdle is called by the scheduler when no context is runnable: it
// skips the clock forward to the next pending event and fires it. It reports
// false if there is nothing to wait for (which would be a workload hang).
func (m *Machine) AdvanceIdle() bool {
	if len(m.events) == 0 {
		return false
	}
	at := m.events[0].at
	if at > m.core.Now() {
		m.core.SkipTo(at)
	}
	m.pollEvents()
	return true
}
