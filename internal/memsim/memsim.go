// Package memsim models the simulated machine's address space. The simulator
// is timing-oriented: no data bytes are stored, but every kernel and guest
// data structure occupies real, stable simulated addresses so that the cache
// models see genuine locality, reuse, and OS/application interference.
package memsim

import "fmt"

// Address-space layout of the simulated machine. User regions follow the
// classic i386 Linux layout; kernel regions live above 3GB.
const (
	UserTextBase  = 0x0804_8000
	UserHeapBase  = 0x0900_0000
	UserStackBase = 0x8000_0000
	UserStackSize = 0x3000_0000
	KernelBase    = 0xc000_0000
	KernelText    = 0xc010_0000
	KernelHeap    = 0xc800_0000
	PageCacheBase = 0xd000_0000
	PageSize      = 4096
)

// Arena hands out consecutive simulated addresses from a region. It is the
// allocator behind kernel slabs, page-cache pages, and guest heaps.
type Arena struct {
	name  string
	base  uint64
	limit uint64
	next  uint64
}

// NewArena returns an arena over [base, base+size).
func NewArena(name string, base, size uint64) *Arena {
	return &Arena{name: name, base: base, limit: base + size, next: base}
}

// Alloc reserves n bytes and returns the base address of the block.
// It panics if the region is exhausted — simulated layouts are sized
// generously, so exhaustion indicates a workload-configuration bug.
func (a *Arena) Alloc(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	p := a.next
	if p+n > a.limit {
		panic(fmt.Sprintf("memsim: arena %q exhausted (%d bytes requested, %d free)",
			a.name, n, a.limit-p))
	}
	a.next = p + n
	return p
}

// AllocAligned reserves n bytes aligned to align (a power of two).
func (a *Arena) AllocAligned(n, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	a.next = (a.next + align - 1) &^ (align - 1)
	return a.Alloc(n)
}

// AllocPage reserves one page-aligned page.
func (a *Arena) AllocPage() uint64 { return a.AllocAligned(PageSize, PageSize) }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() uint64 { return a.next - a.base }

// Base returns the arena's base address.
func (a *Arena) Base() uint64 { return a.base }

// Layout groups the arenas of one simulated machine.
type Layout struct {
	KernelHeap *Arena // slabs: dentries, inodes, sk_buffs, task structs, ...
	PageCache  *Arena // 4KB page frames backing file data
	UserHeap   *Arena // guest application heaps
	UserStack  *Arena // guest thread stacks (allocated downward region)
}

// NewLayout returns a fresh address-space layout.
func NewLayout() *Layout {
	return &Layout{
		KernelHeap: NewArena("kernel-heap", KernelHeap, 0x0800_0000),
		PageCache:  NewArena("page-cache", PageCacheBase, 0x2000_0000),
		UserHeap:   NewArena("user-heap", UserHeapBase, 0x4000_0000),
		UserStack:  NewArena("user-stack", UserStackBase, UserStackSize),
	}
}

// PageOf returns the page base address containing addr.
func PageOf(addr uint64) uint64 { return addr &^ (PageSize - 1) }
