package memsim

import (
	"testing"
	"testing/quick"
)

func TestArenaSequential(t *testing.T) {
	a := NewArena("t", 0x1000, 0x1000)
	p1 := a.Alloc(100)
	p2 := a.Alloc(100)
	if p1 != 0x1000 || p2 != 0x1064 {
		t.Fatalf("allocs at %#x, %#x", p1, p2)
	}
	if a.Used() != 200 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena("t", 0x1001, 0x10000)
	p := a.AllocAligned(64, 64)
	if p%64 != 0 {
		t.Fatalf("aligned alloc at %#x", p)
	}
	pg := a.AllocPage()
	if pg%PageSize != 0 {
		t.Fatalf("page alloc at %#x", pg)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena("t", 0, 64)
	defer func() {
		if recover() == nil {
			t.Error("exhausted arena should panic")
		}
	}()
	a.Alloc(65)
}

// TestArenaNoOverlap property-checks that allocations never overlap and stay
// in bounds.
func TestArenaNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena("t", 0x4000, 1<<20)
		var prevEnd uint64 = 0x4000
		total := uint64(0)
		for _, s := range sizes {
			n := uint64(s%2048) + 1
			if total+n+64 > 1<<20 {
				break
			}
			p := a.AllocAligned(n, 8)
			if p < prevEnd {
				return false
			}
			prevEnd = p + n
			total += n + 8
		}
		return prevEnd <= 0x4000+1<<20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutDisjoint(t *testing.T) {
	l := NewLayout()
	type region struct {
		name string
		a    *Arena
	}
	regions := []region{
		{"kernel-heap", l.KernelHeap}, {"page-cache", l.PageCache},
		{"user-heap", l.UserHeap}, {"user-stack", l.UserStack},
	}
	// Allocate from each and verify no cross-region interleaving is possible
	// by bounds: base addresses must be distinct and ordered ranges disjoint.
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i].a, regions[j].a
			if a.Base() == b.Base() {
				t.Errorf("%s and %s share a base", regions[i].name, regions[j].name)
			}
		}
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0x1234) != 0x1000 {
		t.Errorf("PageOf(0x1234) = %#x", PageOf(0x1234))
	}
	if PageOf(0x1000) != 0x1000 {
		t.Errorf("PageOf(0x1000) = %#x", PageOf(0x1000))
	}
}
