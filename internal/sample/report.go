package sample

import (
	"fmt"
	"math"

	"fssim/internal/stats"
)

// StratumReport is the per-stratum view of a finished sampled run.
type StratumReport struct {
	Centroid     float64 // mean interval instruction count
	Detailed     int64   // representatives simulated in detail
	MeanCPI      float64 // mean representative CPI
	ExtraInsts   float64 // instructions extrapolated
	ExtraCycles  float64 // cycles extrapolated
	CIHalfCycles float64 // 95% half-width this stratum contributes
	Pooled       bool    // extrapolated from the pooled CPI (below MinPerStratum)
}

// Report is the aggregate estimator output of one sampled run. CIHalf is the
// two-sided 95% confidence half-width on the total extrapolated cycles:
// per-stratum, the CPI mean's Student-t half-width (stats.Moments.CI95Half)
// scales by the stratum's extrapolated instructions; strata combine in
// quadrature (independent estimates). Strata below MinPerStratum substitute
// the pooled CPI variance over their own sample count — conservative, and
// never NaN: zero-variance and single-representative strata contribute 0.
type Report struct {
	Strata       int
	Intervals    int64 // post-warm-up app intervals (Detailed + Extrapolated)
	Detailed     int64
	Extrapolated int64
	Outliers     int64
	UnderMin     int64
	DetInsts     uint64
	DetCycles    uint64
	ExtraInsts   float64
	ExtraCycles  float64
	CIHalf       float64 // 95% half-width on ExtraCycles, in cycles

	PerStratum []StratumReport
}

// Report computes the estimator output from the sampler's current state.
func (s *Sampler) Report() Report {
	r := Report{
		Strata:       len(s.table.Clusters),
		Detailed:     s.detailed,
		Extrapolated: s.extrapolated,
		Outliers:     s.outliers,
		UnderMin:     s.underMin,
		DetInsts:     s.detInsts,
		DetCycles:    s.detCycles,
	}
	r.Intervals = r.Detailed + r.Extrapolated
	pooledM := s.pooled.Moments()
	for i, c := range s.table.Clusters {
		if i >= len(s.det) {
			break
		}
		m := s.winMoments(i)
		sr := StratumReport{
			Centroid:    c.Centroid,
			Detailed:    s.det[i],
			MeanCPI:     m.Mean,
			ExtraInsts:  s.extraInsts[i],
			ExtraCycles: s.extraCycles[i],
		}
		if sr.ExtraInsts > 0 {
			if m.N < int64(s.spec.MinPerStratum) || m.N < 2 {
				// Thin stratum: pooled CPI variance over this stratum's own
				// sample count (at least 1) — wide on purpose.
				sr.Pooled = true
				n := float64(m.N)
				if n < 1 {
					n = 1
				}
				if pooledM.N >= 2 && pooledM.Var() > 0 {
					half := stats.TTwoSided95(int(pooledM.N-1)) * math.Sqrt(pooledM.Var()/n)
					sr.CIHalfCycles = half * sr.ExtraInsts
				}
			} else {
				sr.CIHalfCycles = m.CI95Half() * sr.ExtraInsts
			}
		}
		r.ExtraInsts += sr.ExtraInsts
		r.ExtraCycles += sr.ExtraCycles
		r.CIHalf += sr.CIHalfCycles * sr.CIHalfCycles // quadrature
		r.PerStratum = append(r.PerStratum, sr)
	}
	r.CIHalf = math.Sqrt(r.CIHalf)
	return r
}

// Reduction returns the app-side detailed-interval reduction factor: how
// many times fewer intervals were simulated in detail than exist. 1 when
// nothing was extrapolated.
func (r Report) Reduction() float64 {
	if r.Detailed == 0 {
		if r.Intervals == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(r.Intervals) / float64(r.Detailed)
}

// Coverage returns the fraction of app intervals fast-forwarded.
func (r Report) Coverage() float64 {
	if r.Intervals == 0 {
		return 0
	}
	return float64(r.Extrapolated) / float64(r.Intervals)
}

// RelCI returns the 95% half-width relative to the given total cycle count
// (typically the run's total cycles): the "±x%" attached to sampled figures.
func (r Report) RelCI(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return r.CIHalf / float64(totalCycles)
}

// Summary renders the one-line form used by CLI output:
// "12 strata, 96 detailed + 1882 extrapolated (20.6x), ci ±0.41%".
func (r Report) Summary(totalCycles uint64) string {
	return fmt.Sprintf("%d strata, %d detailed + %d extrapolated (%.1fx), ci ±%.2f%%",
		r.Strata, r.Detailed, r.Extrapolated, r.Reduction(), 100*r.RelCI(totalCycles))
}
