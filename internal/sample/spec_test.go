package sample

import (
	"strings"
	"testing"
)

func TestParseSpecPresets(t *testing.T) {
	for _, name := range PresetNames() {
		sp, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("preset %q rejected: %v", name, err)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if sp, err := ParseSpec("default"); err != nil || sp != DefaultSpec() {
		t.Errorf("ParseSpec(default) = %+v, %v; want DefaultSpec", sp, err)
	}
	// Presets are case-insensitive; key=value lists override preset fields.
	sp, err := ParseSpec("Fast,budget=6")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Budget != 6 || sp.Pilot != presets["fast"].Pilot {
		t.Errorf("preset+override = %+v, want fast with budget 6", sp)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                // empty: "no sampling" is the absence of a spec
		"nosuchpreset",    // unknown preset
		"budget=4,fast",   // preset after overrides
		"budget=4,,min=2", // empty element
		"budget=x",        // unparsable value
		"budget=0",        // budget >= 1
		"min=0",           // min >= 1
		"budget=4,min=5",  // min <= budget
		"pilot=0",         // pilot >= 1
		"range=0",         // range in (0, 0.5]
		"range=0.6",       //
		"refresh=-1",      // refresh >= 0
		"color=red",       // unknown key
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// TestCanonicalStable pins the cache-key contract: every spelling of one
// policy canonicalizes to the same string, and canonicalization is a fixed
// point (Canonical of a canonical string returns it unchanged).
func TestCanonicalStable(t *testing.T) {
	def, err := Canonical("default")
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := Canonical(" budget=8, min=2 ,pilot=64,range=0.05,refresh=64 ")
	if err != nil {
		t.Fatal(err)
	}
	if def != spelled {
		t.Errorf("default %q != spelled-out %q", def, spelled)
	}
	again, err := Canonical(def)
	if err != nil {
		t.Fatal(err)
	}
	if again != def {
		t.Errorf("Canonical not a fixed point: %q -> %q", def, again)
	}
	if strings.Contains(def, "mix") {
		t.Errorf("mix=false must not render: %q", def)
	}
	withMix, err := Canonical("default,mix=true")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(withMix, ",mix=true") {
		t.Errorf("mix=true missing from canonical form: %q", withMix)
	}
}
