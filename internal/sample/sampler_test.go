package sample

import (
	"math"
	"testing"

	"fssim/internal/machine"
)

// measFor builds a detailed measurement with the given instruction count and
// CPI.
func measFor(insts uint64, cpi float64) machine.Measurement {
	return machine.Measurement{Insts: insts, Cycles: uint64(float64(insts) * cpi)}
}

// feed drives one synthetic app interval through the sampler's full
// start/end protocol, honoring its detailed/emulated decision, and reports
// which path was taken.
func feed(s *Sampler, insts uint64, cpi float64) (detailed bool) {
	sig := machine.Signature{Insts: insts}
	det, _ := s.OnAppStart()
	if det {
		m := measFor(insts, cpi)
		s.OnAppEnd(sig, &m)
		return true
	}
	s.OnAppEnd(sig, nil)
	return false
}

// synthetic emits the interval stream the sampler is designed for: a
// deterministic rotation of big user-mode stretches separated by short runs
// of one-instruction boundary stretches of varying length.
func synthetic(n int) []struct {
	insts uint64
	cpi   float64
} {
	out := make([]struct {
		insts uint64
		cpi   float64
	}, 0, n)
	bigs := []struct {
		insts uint64
		cpi   float64
	}{{400, 2.0}, {150, 3.0}, {90, 2.5}}
	gap := 0
	for len(out) < n {
		b := bigs[gap%len(bigs)]
		out = append(out, b)
		for i := 0; i < 3+gap%3 && len(out) < n; i++ {
			out = append(out, struct {
				insts uint64
				cpi   float64
			}{1, 40})
		}
		gap++
	}
	return out
}

func TestPilotPhaseAllDetailed(t *testing.T) {
	spec := DefaultSpec()
	spec.Pilot = 8
	s := New(spec, 1)
	for i := 0; i < spec.Pilot; i++ {
		if det, _ := s.OnAppStart(); !det {
			t.Fatalf("interval %d inside the pilot phase was not detailed", i)
		}
		m := measFor(100, 2)
		s.OnAppEnd(machine.Signature{Insts: 100}, &m)
	}
	if r := s.Report(); r.Detailed != int64(spec.Pilot) || r.Extrapolated != 0 {
		t.Errorf("after pilot: %d detailed + %d extrapolated, want %d + 0",
			r.Detailed, r.Extrapolated, spec.Pilot)
	}
}

func TestDeferredObservesNothing(t *testing.T) {
	s := New(DefaultSpec(), 1)
	s.Defer()
	for i := 0; i < 50; i++ {
		if det, _ := s.OnAppStart(); !det {
			t.Fatal("deferred sampler emulated an interval")
		}
		m := measFor(100, 2)
		if p := s.OnAppEnd(machine.Signature{Insts: 100}, &m); p != nil {
			t.Fatal("deferred sampler returned a prediction")
		}
	}
	if r := s.Report(); r.Intervals != 0 || r.Strata != 0 {
		t.Errorf("deferred sampler recorded state: %+v", r)
	}
	s.Arm()
	feed(s, 100, 2)
	if r := s.Report(); r.Detailed != 1 {
		t.Errorf("armed sampler did not observe: %+v", r)
	}
}

// TestWindowRing pins the windowed estimator: a stratum's moments cover only
// the last Budget representatives, so a drifted stratum forgets its
// cold-start samples once the ring wraps.
func TestWindowRing(t *testing.T) {
	spec := DefaultSpec()
	spec.Budget = 2
	s := New(spec, 1)
	s.ensure(0)
	for _, v := range []float64{100, 100, 2, 4} {
		s.winPush(0, v)
	}
	m := s.winMoments(0)
	if m.N != 2 {
		t.Fatalf("window N = %d, want 2 (budget)", m.N)
	}
	if m.Mean != 3 {
		t.Errorf("window mean = %v, want 3 (last two samples), not the cold-start 100s", m.Mean)
	}
	if s.winN[0] != 4 {
		t.Errorf("winN = %d, want 4 (all-time count)", s.winN[0])
	}
}

// TestSampledFlow runs the synthetic stream end to end: the sampler must
// extrapolate most intervals after the pilot, account every interval exactly
// once, and produce a finite confidence interval.
func TestSampledFlow(t *testing.T) {
	spec := DefaultSpec()
	spec.Pilot = 32
	spec.Budget = 4
	spec.Refresh = 32
	s := New(spec, 7)
	stream := synthetic(800)
	for _, iv := range stream {
		feed(s, iv.insts, iv.cpi)
	}
	r := s.Report()
	if r.Intervals != int64(len(stream)) {
		t.Fatalf("accounted %d intervals, want %d", r.Intervals, len(stream))
	}
	if r.Extrapolated == 0 {
		t.Fatal("nothing extrapolated")
	}
	if red := r.Reduction(); red < 2 {
		t.Errorf("reduction %.2fx on the designed-for stream, want >= 2x", red)
	}
	if math.IsNaN(r.CIHalf) || math.IsInf(r.CIHalf, 0) || r.CIHalf < 0 {
		t.Errorf("CIHalf = %v, want finite >= 0", r.CIHalf)
	}
	if r.ExtraCycles <= 0 {
		t.Errorf("ExtraCycles = %v, want > 0", r.ExtraCycles)
	}
	var det, extra int64
	for _, sr := range r.PerStratum {
		det += sr.Detailed
		if sr.MeanCPI < 0 {
			t.Errorf("stratum %+v: negative mean CPI", sr)
		}
		_ = extra
	}
	if det != r.Detailed {
		t.Errorf("per-stratum detailed sums to %d, total says %d", det, r.Detailed)
	}
}

// TestSamplerDeterminism runs the identical stream through two fresh samplers
// with the same seed: every per-interval decision and the final report must
// match — the unit-level form of the suite's j1-vs-j8 byte-identity contract.
// A third sampler with a different seed must still account every interval.
func TestSamplerDeterminism(t *testing.T) {
	run := func(seed int64) ([]bool, Report) {
		spec := DefaultSpec()
		spec.Pilot = 32
		s := New(spec, seed)
		var decisions []bool
		for _, iv := range synthetic(600) {
			decisions = append(decisions, feed(s, iv.insts, iv.cpi))
		}
		return decisions, s.Report()
	}
	d1, r1 := run(42)
	d2, r2 := run(42)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("interval %d decided differently across identical runs", i)
		}
	}
	if r1.Detailed != r2.Detailed || r1.Extrapolated != r2.Extrapolated ||
		r1.ExtraCycles != r2.ExtraCycles || r1.CIHalf != r2.CIHalf {
		t.Errorf("reports differ across identical runs:\n%+v\n%+v", r1, r2)
	}
	_, r3 := run(43)
	if r3.Intervals != r1.Intervals {
		t.Errorf("seed change lost intervals: %d vs %d", r3.Intervals, r1.Intervals)
	}
}

// TestEstCPIUsesMinimumTrustedStratum pins the conservative pacing rule: the
// virtual-clock CPI for a fast-forwarded interval is the smallest trusted
// window mean, because an overshot virtual clock can never be wound back
// while an undershoot is topped up by the close-time prediction.
func TestEstCPIUsesMinimumTrustedStratum(t *testing.T) {
	s := New(DefaultSpec(), 1)
	for i := 0; i < 3; i++ {
		m := measFor(100, 2)
		s.OnAppEnd(machine.Signature{Insts: 100}, &m)
		m2 := measFor(1000, 5)
		s.OnAppEnd(machine.Signature{Insts: 1000}, &m2)
	}
	if got := s.estCPI(); got != 2 {
		t.Errorf("estCPI = %v, want 2 (minimum trusted stratum mean)", got)
	}
}

func TestPickDetailedPureAndRated(t *testing.T) {
	if PickDetailed(1, 5, 0) {
		t.Error("every=0 must disable refresh picks")
	}
	if !PickDetailed(1, 5, 1) {
		t.Error("every=1 must pick everything")
	}
	const every = 64
	n := 0
	for idx := uint64(0); idx < 100_000; idx++ {
		a := PickDetailed(12345, idx, every)
		if b := PickDetailed(12345, idx, every); a != b {
			t.Fatalf("PickDetailed not pure at idx %d", idx)
		}
		if a {
			n++
		}
	}
	want := 100_000 / every
	if n < want/2 || n > want*2 {
		t.Errorf("refresh rate %d picks per 100k, want about %d", n, want)
	}
	// Different seeds pick different sets (the property that makes the choice
	// a function of the seed, not of the index alone).
	same := 0
	for idx := uint64(0); idx < 10_000; idx++ {
		if PickDetailed(1, idx, every) == PickDetailed(2, idx, every) {
			same++
		}
	}
	if same == 10_000 {
		t.Error("seed does not influence the refresh pick")
	}
}

// FuzzStratumAssign fuzzes the stratification invariants: after any
// observation history, every signature lands in exactly one stratum (a valid
// index when any stratum exists, -1 only on an empty table), assignment is a
// pure read (no mutation, same answer twice), and the representative choice
// is a pure function of the seed.
func FuzzStratumAssign(f *testing.F) {
	f.Add(int64(1), uint64(100), uint64(10), uint64(5), uint64(3))
	f.Add(int64(42), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(int64(-7), uint64(1<<40), uint64(1<<20), uint64(1<<20), uint64(1<<10))
	f.Fuzz(func(t *testing.T, seed int64, insts, loads, stores, branches uint64) {
		spec := DefaultSpec()
		spec.Pilot = 4
		s := New(spec, seed)
		// Observation history derived from the fuzz inputs: a spread of
		// interval lengths plus the fuzzed signature itself.
		for i, base := range []uint64{1, 16, 400, insts%100_000 + 1} {
			m := measFor(base, float64(i+2))
			s.OnAppEnd(machine.Signature{Insts: base}, &m)
		}
		sig := machine.Signature{Insts: insts, Loads: loads, Stores: stores, Branches: branches}
		i1 := s.Assign(sig)
		i2 := s.Assign(sig)
		if i1 != i2 {
			t.Fatalf("Assign not pure: %d then %d", i1, i2)
		}
		n := s.Strata()
		if n > 0 && (i1 < 0 || i1 >= n) {
			t.Fatalf("Assign = %d outside [0, %d): interval not in exactly one stratum", i1, n)
		}
		if n == 0 && i1 != -1 {
			t.Fatalf("Assign = %d on an empty table, want -1", i1)
		}
		for idx := uint64(0); idx < 64; idx++ {
			if PickDetailed(seed, idx, spec.Refresh) != PickDetailed(seed, idx, spec.Refresh) {
				t.Fatalf("representative choice not a pure function of seed at idx %d", idx)
			}
		}
	})
}
