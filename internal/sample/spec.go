// Package sample implements the stratified-sampling fast path for
// application intervals: the user-mode execution stretches between OS
// services are clustered by behavior signature (reusing the PLT's scaled
// clusters over instruction counts), a budgeted number of representatives
// per stratum is simulated in detail, and the rest are fast-forwarded in
// emulation mode with per-stratum CPI extrapolation and a variance-derived
// 95% confidence interval on every extrapolated figure.
//
// The paper's PLT machinery accelerates only the OS side of a run; this
// package multiplies that by an application-side speedup, following the
// two-phase stratified-sampling and cache-representativeness exemplars in
// PAPERS.md: cluster first, then sample within strata with error bars.
//
// Determinism: a Sampler is driven from exactly one machine's simulation
// goroutine, every decision is a pure function of (spec, seed, observation
// history), and the seed-derived refresh pick uses a stateless hash — so
// sampled runs are byte-identical at any scheduler parallelism, the same
// property every other subsystem guarantees.
package sample

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec configures one sampling policy. The zero value is invalid; use
// DefaultSpec or ParseSpec. The canonical String() form of a Spec is part of
// the run's cache key (experiments.RunKey.Sample), so two textual spellings
// of the same policy share one simulation and one byte-identical table.
type Spec struct {
	// Budget is how many representatives per stratum are simulated in detail
	// before the stratum's remaining members are extrapolated.
	Budget int
	// MinPerStratum is the minimum detailed members a stratum needs before
	// its own CPI moments are trusted; thinner strata extrapolate from the
	// pooled (all-strata) CPI and are reported as under-min.
	MinPerStratum int
	// Pilot is the number of initial application intervals always simulated
	// in detail — the pilot phase that seeds the strata, mirroring the PLT's
	// initial learning window.
	Pilot int
	// RangeFrac is the stratum half-width as a fraction of the centroid
	// (the PLT's scaled-cluster range, paper §4.2).
	RangeFrac float64
	// Refresh sets the steady-state refresh rate: roughly one seed-chosen
	// detailed representative per Refresh intervals guards against phase
	// drift. 0 disables refreshes.
	Refresh int
	// Mix extends the stratum signature with the instruction mix
	// (loads/stores/branches), trading coverage for tighter strata.
	Mix bool
}

// DefaultSpec returns the "default" preset.
func DefaultSpec() Spec {
	return Spec{Budget: 8, MinPerStratum: 2, Pilot: 64, RangeFrac: 0.05, Refresh: 64}
}

// presets are the named starting points; every field remains overridable via
// the key=value form.
var presets = map[string]Spec{
	"default": DefaultSpec(),
	"fast":    {Budget: 4, MinPerStratum: 2, Pilot: 32, RangeFrac: 0.08, Refresh: 128},
	"precise": {Budget: 16, MinPerStratum: 4, Pilot: 128, RangeFrac: 0.04, Refresh: 32},
}

// PresetNames returns the preset names in sorted order.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses a sampling spec: a preset name ("default", "fast",
// "precise"), a comma-separated key=value list (budget, min, pilot, range,
// refresh, mix), or a preset followed by overrides ("fast,budget=6"). The
// empty string is rejected — callers represent "no sampling" by not calling
// ParseSpec at all.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("sample: empty spec (want a preset %s or key=value list)",
			strings.Join(PresetNames(), "/"))
	}
	sp := DefaultSpec()
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Spec{}, fmt.Errorf("sample: empty element in spec %q", s)
		}
		if !strings.Contains(part, "=") {
			p, ok := presets[strings.ToLower(part)]
			if !ok {
				return Spec{}, fmt.Errorf("sample: unknown preset %q (want %s)",
					part, strings.Join(PresetNames(), ", "))
			}
			if i != 0 {
				return Spec{}, fmt.Errorf("sample: preset %q must come first in %q", part, s)
			}
			sp = p
			continue
		}
		k, v, _ := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch strings.ToLower(k) {
		case "budget":
			sp.Budget, err = strconv.Atoi(v)
		case "min":
			sp.MinPerStratum, err = strconv.Atoi(v)
		case "pilot":
			sp.Pilot, err = strconv.Atoi(v)
		case "range":
			sp.RangeFrac, err = strconv.ParseFloat(v, 64)
		case "refresh":
			sp.Refresh, err = strconv.Atoi(v)
		case "mix":
			sp.Mix, err = strconv.ParseBool(v)
		default:
			return Spec{}, fmt.Errorf("sample: unknown key %q in spec %q (want budget, min, pilot, range, refresh or mix)", k, s)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("sample: bad value for %s in spec %q: %v", k, s, err)
		}
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Validate rejects specs no sampler can run.
func (s Spec) Validate() error {
	if s.Budget < 1 {
		return fmt.Errorf("sample: budget must be >= 1, got %d", s.Budget)
	}
	if s.MinPerStratum < 1 || s.MinPerStratum > s.Budget {
		return fmt.Errorf("sample: min must be in [1, budget=%d], got %d", s.Budget, s.MinPerStratum)
	}
	if s.Pilot < 1 {
		return fmt.Errorf("sample: pilot must be >= 1, got %d", s.Pilot)
	}
	if s.RangeFrac <= 0 || s.RangeFrac > 0.5 {
		return fmt.Errorf("sample: range must be in (0, 0.5], got %g", s.RangeFrac)
	}
	if s.Refresh < 0 {
		return fmt.Errorf("sample: refresh must be >= 0, got %d", s.Refresh)
	}
	return nil
}

// String renders the spec in canonical form: all fields, fixed order, so any
// two spellings of one policy produce identical cache keys, run ids and
// derived seeds.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "budget=%d,min=%d,pilot=%d,range=%s,refresh=%d",
		s.Budget, s.MinPerStratum, s.Pilot,
		strconv.FormatFloat(s.RangeFrac, 'g', -1, 64), s.Refresh)
	if s.Mix {
		b.WriteString(",mix=true")
	}
	return b.String()
}

// Canonical normalizes a user-supplied spec string to its canonical form.
func Canonical(s string) (string, error) {
	sp, err := ParseSpec(s)
	if err != nil {
		return "", err
	}
	return sp.String(), nil
}
