package sample

import (
	"math"

	"fssim/internal/core"
	"fssim/internal/machine"
	"fssim/internal/stats"
	"fssim/internal/trace"
)

// Sampler implements machine.AppSink: it decides at each application
// interval's start whether to simulate it in detail (stratum representative)
// or fast-forward it, and at the interval's end either folds the detailed
// measurement into its stratum or extrapolates the interval from the
// stratum's recorded representatives.
//
// Strata are core.PLT scaled clusters over the interval signature; they are
// created ONLY by detailed observations (PLT.Learn is never called for
// emulated intervals), so every stratum has at least one measured
// representative, and every emulated interval lands in exactly one stratum:
// its Match, or — as an outlier — the Nearest centroid.
type Sampler struct {
	spec Spec
	seed int64

	table core.PLT
	// Per-stratum parallel state, indexed like table.Clusters.
	det         []int64     // detailed representatives recorded (all-time)
	win         [][]float64 // ring of the last Budget representative CPIs
	winN        []int64     // total CPI samples ever pushed into the ring
	extraInsts  []float64   // instructions extrapolated in the stratum
	extraCycles []float64   // cycles extrapolated in the stratum
	visits      []int64     // total intervals that landed in the stratum
	nextCap     []uint64    // interval index at which the stratum is due a recapture

	pooled stats.Welford // all detailed CPI samples (thin-stratum CI fallback)

	idx         uint64 // application intervals decided so far (drives the refresh pick)
	last        int    // stratum of the previously closed interval (-1 before any)
	lastOutlier bool   // previous emulated interval matched no stratum range

	// succ is the second-order Markov successor table: succ[key(a,b)][j]
	// counts how often the stratum pair (a, b) — the two most recently closed
	// intervals — was followed by an interval in stratum j. App interval
	// sequences are strongly periodic (request loops interleave the same
	// user-mode stretches in the same order), so the pair context pins the
	// position inside the loop and predicts the coming interval's stratum
	// before its signature exists — the information the detailed/emulated
	// decision needs. A single-stratum context is not enough: the
	// one-instruction boundary stretches between back-to-back syscalls form a
	// hub stratum that dilutes every first-order transition.
	succ map[int][]int64
	c1   int // second-to-last closed stratum (-1 before any)
	c2   int // last closed stratum (-1 before any)

	// bigSucc is a first-order Markov successor table over *big* strata only
	// (intervals of at least bigMin instructions): bigSucc[i][j] counts how
	// often the big interval in stratum i was eventually followed by a big
	// interval in stratum j, with the one-or-two-instruction boundary
	// stretches between back-to-back syscalls skipped. App interval sequences
	// interleave a deterministic rotation of big user-mode stretches with
	// variable-length runs of those boundary stretches — so *which* big
	// stratum comes next is almost perfectly predictable from the last one,
	// even though *when* it arrives is not. Capture episodes exploit exactly
	// that split.
	bigSucc [][]int64
	ctxBig  int // last big stratum closed (-1 before any)

	// Capture episodes: when the predicted next big stratum is due a fresh
	// representative (nextCap deadline passed, or no sample yet), the sampler
	// forces every interval detailed until a big interval closes — paying a
	// few boundary intervals to guarantee the representative lands where it
	// is needed. capFor is the stratum that opened the episode; capLen bounds
	// a degenerate episode (prediction stops coming true) at captureAbort.
	capturing bool
	capFor    int
	capLen    int

	deferred bool // warm-up: observe nothing, simulate everything in detail

	detailed     int64 // post-arm detailed intervals
	extrapolated int64 // post-arm extrapolated intervals
	outliers     int64 // extrapolated via Nearest (out of every stratum's range)
	underMin     int64 // extrapolated from the pooled CPI (stratum below MinPerStratum)
	detInsts     uint64
	detCycles    uint64

	predScratch machine.Prediction // reused across OnAppEnd calls (AppSink contract)
	trc         *sampleHooks
}

// New builds a sampler for one run. The seed is the run's derived seed
// (experiments.RunKey.DeriveSeed), making every sampling decision a pure
// function of the run's cache key.
func New(spec Spec, seed int64) *Sampler {
	return &Sampler{spec: spec, seed: seed, last: -1, c1: -1, c2: -1,
		succ: make(map[int][]int64), ctxBig: -1, capFor: -1}
}

// bigMin is the instruction count below which an interval is a boundary
// artifact (a couple of user instructions between back-to-back services)
// rather than a phase of its own: such intervals never form capture targets
// or big-Markov contexts.
const bigMin = 8

// captureAbort bounds a capture episode: if no big interval closes within
// this many decisions, the episode is abandoned and the target's recapture
// deadline pushed back, so a mispredicting chain cannot force the whole run
// detailed.
const captureAbort = 64

// Spec returns the sampler's policy.
func (s *Sampler) Spec() Spec { return s.spec }

// Defer suspends sampling during the workload's declared warm-up: every app
// interval simulates in detail and nothing is observed, exactly like the
// Accelerator's deferred learning. Arm re-enables it at the warm point.
func (s *Sampler) Defer() { s.deferred = true }

// Arm starts sampling (the machine's warm callback).
func (s *Sampler) Arm() { s.deferred = false }

// OnAppStart decides the simulation mode of the opening application
// interval. The signature is not yet known (it is the product of executing
// the interval), so the decision leans on two predictions: the pair-context
// Markov argmax for the coming interval's CPI estimate, and the big-stratum
// Markov successor for capture scheduling. Detailed when any of:
//   - the pilot phase is still running (first Pilot intervals),
//   - the previous interval was an outlier (a new behavior may be starting
//     — the detailed follow-up can found its stratum),
//   - a capture episode is running or starting (the predicted next big
//     stratum is due a fresh representative),
//   - the seed-derived refresh hash picks this interval index.
func (s *Sampler) OnAppStart() (detailed bool, estCPI float64) {
	if s.deferred {
		return true, 1
	}
	idx := s.idx
	s.idx++
	if idx < uint64(s.spec.Pilot) || s.lastOutlier {
		return true, 1
	}
	if s.capturing {
		s.capLen++
		if s.capLen <= captureAbort {
			return true, 1
		}
		// The predicted big stratum never arrived: give up, try again later.
		if s.capFor >= 0 && s.capFor < len(s.nextCap) {
			s.nextCap[s.capFor] = idx + s.capturePeriod(s.capFor)
		}
		s.capturing, s.capFor, s.capLen = false, -1, 0
	}
	if b := s.predictNextBig(); b < 0 {
		return true, 1
	} else if b < len(s.winN) && (s.winN[b] == 0 || idx >= s.nextCap[b]) {
		s.capturing, s.capFor, s.capLen = true, b, 0
		return true, 1
	}
	if PickDetailed(s.seed, idx, s.spec.Refresh) {
		return true, 1
	}
	return false, s.estCPI()
}

// ctxKey packs the (second-to-last, last) stratum pair into one successor
// table key. Stratum indices are small (tens at most); 1<<16 keeps pairs
// collision-free far beyond any real table.
func ctxKey(a, b int) int { return a<<16 | b }

// capturePeriod returns how many intervals stratum i's representative window
// stays fresh: the spec refresh period, stretched for strata whose recent
// representatives agree (nothing to learn from re-measuring a flat stratum)
// and compressed for drifting or noisy ones — Neyman allocation moved into
// the time domain. Clamped to [Refresh/4, 4×Refresh].
func (s *Sampler) capturePeriod(i int) uint64 {
	base := s.spec.Refresh
	if base <= 0 {
		// Refresh 0 disables recapturing: one representative window per
		// stratum, never refreshed (the deadline is pushed past any run).
		return 1 << 62
	}
	m := s.winMoments(i)
	cv := 0.0
	if mean := m.Mean; m.N >= 2 && mean > 0 {
		cv = math.Sqrt(m.Var()) / mean
	}
	p := float64(base) * 4 / (1 + (cv/0.15)*(cv/0.15))
	if min := float64(base) / 4; p < min {
		p = min
	}
	if p < 1 {
		p = 1
	}
	return uint64(p)
}

// predictNext returns the most likely stratum of the coming interval — the
// argmax successor of the current pair context (lowest index on ties, so
// prediction is deterministic) — or -1 when the context is unseen.
func (s *Sampler) predictNext() int {
	best, bestN := -1, int64(0)
	for j, n := range s.succ[ctxKey(s.c1, s.c2)] {
		if n > bestN {
			best, bestN = j, n
		}
	}
	return best
}

// predictNextBig returns the most likely *next big* stratum — the argmax of
// the big-Markov successor row of the last big interval — or -1 without
// history. On the periodic interval sequences this subsystem targets, this
// prediction is near-exact: the big stretches rotate deterministically.
func (s *Sampler) predictNextBig() int {
	if s.ctxBig < 0 || s.ctxBig >= len(s.bigSucc) {
		return -1
	}
	best, bestN := -1, int64(0)
	for j, n := range s.bigSucc[s.ctxBig] {
		if n > bestN {
			best, bestN = j, n
		}
	}
	return best
}

// noteClose records the transition (c1, c2) → i in the pair successor table,
// shifts the pair context forward, and — for big intervals — does the same
// for the big-stratum Markov chain.
func (s *Sampler) noteClose(i int, sig machine.Signature) {
	if i < 0 {
		return
	}
	if s.c2 >= 0 {
		k := ctxKey(s.c1, s.c2)
		row := s.succ[k]
		for len(row) <= i {
			row = append(row, 0)
		}
		row[i]++
		s.succ[k] = row
	}
	s.c1, s.c2 = s.c2, i
	if sig.Insts < bigMin {
		return
	}
	if s.ctxBig >= 0 {
		for len(s.bigSucc) <= s.ctxBig {
			s.bigSucc = append(s.bigSucc, nil)
		}
		row := s.bigSucc[s.ctxBig]
		for len(row) <= i {
			row = append(row, 0)
		}
		row[i]++
		s.bigSucc[s.ctxBig] = row
	}
	s.ctxBig = i
}

// winPush adds a representative CPI to stratum i's ring of the last Budget
// samples. A bounded window rather than an all-time accumulator: early
// representatives of a stratum measure cold caches and page tables, and on a
// drifting stratum a cumulative mean would stay anchored to them forever.
func (s *Sampler) winPush(i int, v float64) {
	w := s.win[i]
	if len(w) < s.spec.Budget {
		s.win[i] = append(w, v)
	} else {
		w[s.winN[i]%int64(s.spec.Budget)] = v
	}
	s.winN[i]++
}

// winMoments returns the moments of stratum i's representative window.
func (s *Sampler) winMoments(i int) stats.Moments {
	var w stats.Welford
	for _, v := range s.win[i] {
		w.Add(v)
	}
	return w.Moments()
}

// estCPI returns the virtual-clock pacing CPI for a fast-forwarded interval:
// the smallest trusted stratum mean — deliberately the floor, like
// core.Learner.MinClusterCPI. The opening interval's stratum is unknown (the
// boundary-stretch hub dominates every context, so a "predicted" CPI would
// be the hub's, overshooting any big interval by orders of magnitude), and
// an overshoot can never be taken back: the accurate Match-based prediction
// at close tops up the remainder, so pacing low costs nothing but event
// granularity while pacing high corrupts the clock.
func (s *Sampler) estCPI() float64 {
	est := math.Inf(1)
	for i := range s.win {
		if m := s.winMoments(i); m.N >= int64(s.spec.MinPerStratum) && m.Mean > 0 && m.Mean < est {
			est = m.Mean
		}
	}
	if math.IsInf(est, 1) {
		if p := s.pooled.Mean(); p > 0 {
			return p
		}
		return 1
	}
	return est
}

// OnAppEnd closes the interval: detailed measurements become stratum
// representatives; emulated intervals are extrapolated from their stratum.
func (s *Sampler) OnAppEnd(sig machine.Signature, meas *machine.Measurement) *machine.Prediction {
	if s.deferred {
		return nil
	}
	if meas != nil {
		s.observe(sig, meas)
		return nil
	}
	return s.extrapolate(sig)
}

// observe folds a detailed representative into its stratum (creating the
// stratum when the signature matches none — the only way strata are born).
func (s *Sampler) observe(sig machine.Signature, meas *machine.Measurement) {
	c := s.table.Learn(sig, meas, s.spec.RangeFrac, 0, s.spec.Mix)
	i := s.table.Index(c)
	s.ensure(i)
	s.det[i]++
	s.visits[i]++
	if meas.Insts > 0 {
		v := float64(meas.Cycles) / float64(meas.Insts)
		s.winPush(i, v)
		s.pooled.Add(v)
	}
	s.detailed++
	s.detInsts += meas.Insts
	s.detCycles += meas.Cycles
	if sig.Insts >= bigMin {
		// A big representative landed: its window is fresh, and any running
		// capture episode got what it was waiting for (whichever big stratum
		// actually arrived — a misprediction still measured something useful;
		// a still-due target reopens an episode at its next prediction).
		s.nextCap[i] = s.idx + s.capturePeriod(i)
		if s.capturing {
			s.capturing, s.capFor, s.capLen = false, -1, 0
		}
	}
	s.noteClose(i, sig)
	s.last, s.lastOutlier = i, false
	s.trc.observed(i, len(s.table.Clusters))
}

// extrapolate predicts a fast-forwarded interval from its stratum: cycles
// scale as stratumCPI × interval instructions (the ratio estimator), cache
// activity as the stratum's per-interval means scaled by the same length
// ratio — mirroring how the PLT's scaled clusters extrapolate within range.
func (s *Sampler) extrapolate(sig machine.Signature) *machine.Prediction {
	s.extrapolated++
	c := s.table.Match(sig, s.spec.RangeFrac, 0, s.spec.Mix)
	outlier := c == nil
	if outlier {
		c = s.table.Nearest(sig)
		s.outliers++
	}
	if c == nil {
		// Pathological: no stratum exists at all (possible only if the pilot
		// phase observed zero app intervals). Fall back to IPC 1.
		s.last, s.lastOutlier = -1, true
		s.predScratch = machine.Prediction{Cycles: sig.Insts}
		s.trc.extrapolatedHook(-1, true)
		return &s.predScratch
	}
	i := s.table.Index(c)
	s.ensure(i)
	s.visits[i]++
	m := s.winMoments(i)
	cpi := m.Mean
	if m.N < int64(s.spec.MinPerStratum) || cpi <= 0 {
		s.underMin++
		cpi = s.fallbackCPI(float64(sig.Insts))
	}
	insts := float64(sig.Insts)
	cycles := cpi * insts
	// Length-ratio scaling for cache activity: in-range members are within
	// ±RangeFrac of the centroid so the ratio is ~1; outliers extrapolate
	// linearly from the nearest stratum.
	scale := 1.0
	if c.Centroid > 0 {
		scale = insts / c.Centroid
	}
	p := &c.Perf
	s.predScratch = machine.Prediction{
		Cycles:       uint64(math.Round(cycles)),
		L1IMisses:    uint64(math.Round(p.L1IM.Mean() * scale)),
		L1DMisses:    uint64(math.Round(p.L1DM.Mean() * scale)),
		L2Misses:     uint64(math.Round(p.L2M.Mean() * scale)),
		L1IAccesses:  uint64(math.Round(p.L1IA.Mean() * scale)),
		L1DAccesses:  uint64(math.Round(p.L1DA.Mean() * scale)),
		L2Accesses:   uint64(math.Round(p.L2A.Mean() * scale)),
		L2Writebacks: uint64(math.Round(p.L2WB.Mean() * scale)),
	}
	s.extraInsts[i] += insts
	s.extraCycles[i] += cycles
	s.noteClose(i, sig)
	s.last, s.lastOutlier = i, outlier
	s.trc.extrapolatedHook(i, outlier)
	return &s.predScratch
}

// fallbackCPI estimates the CPI of an interval of the given length when its
// own stratum is too thin to trust: the mean of the *trusted stratum with the
// nearest centroid* on a log scale. Length is the dominant CPI predictor here
// (one-instruction boundary stretches carry the whole mode-switch cost, long
// stretches amortize it), so an unweighted pooled mean — dominated by
// whichever length class is most frequent — would be wildly wrong for every
// other class. Falls back to the instruction-weighted detailed CPI, then 1.
func (s *Sampler) fallbackCPI(insts float64) float64 {
	best, bestD, bestCPI := -1, math.Inf(1), 0.0
	for i, c := range s.table.Clusters {
		if i >= len(s.win) {
			continue
		}
		m := s.winMoments(i)
		if m.N < int64(s.spec.MinPerStratum) || m.Mean <= 0 {
			continue
		}
		d := math.Abs(math.Log((c.Centroid + 1) / (insts + 1)))
		if d < bestD {
			best, bestD, bestCPI = i, d, m.Mean
		}
	}
	if best >= 0 {
		return bestCPI
	}
	if s.detInsts > 0 {
		return float64(s.detCycles) / float64(s.detInsts)
	}
	return 1
}

// ensure grows the per-stratum parallel slices to cover index i.
func (s *Sampler) ensure(i int) {
	for len(s.det) <= i {
		s.det = append(s.det, 0)
		s.win = append(s.win, nil)
		s.winN = append(s.winN, 0)
		s.extraInsts = append(s.extraInsts, 0)
		s.extraCycles = append(s.extraCycles, 0)
		s.visits = append(s.visits, 0)
		s.nextCap = append(s.nextCap, 0)
	}
}

// Assign returns the stratum index sig would land in right now: its in-range
// Match, else the Nearest stratum, else -1 on an empty table. Every signature
// maps to exactly one stratum — the invariant FuzzStratumAssign pins.
func (s *Sampler) Assign(sig machine.Signature) int {
	c := s.table.Match(sig, s.spec.RangeFrac, 0, s.spec.Mix)
	if c == nil {
		c = s.table.Nearest(sig)
	}
	if c == nil {
		return -1
	}
	return s.table.Index(c)
}

// Strata returns the current stratum count.
func (s *Sampler) Strata() int { return len(s.table.Clusters) }

// PickDetailed reports whether interval index idx is a seed-chosen detailed
// refresh at rate ~1/every. It is a pure, stateless function of
// (seed, idx, every) — the property that keeps sampled runs byte-identical
// at any scheduler parallelism and lets the fuzzer pin representative choice
// to the seed alone.
func PickDetailed(seed int64, idx uint64, every int) bool {
	if every <= 0 {
		return false
	}
	if every == 1 {
		return true
	}
	return mix64(uint64(seed)^mix64(idx))%uint64(every) == 0
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed stateless
// hash for the refresh pick.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// sampleHooks fans the run's trace recorder and pre-resolved sample.*
// instruments into the sampler; every hook is a no-op on a nil receiver so
// the untraced hot path pays one nil check (the accelerator's pattern).
type sampleHooks struct {
	rec          *trace.Recorder
	detailedC    *trace.Counter
	extrapolated *trace.Counter
	outliers     *trace.Counter
	strata       *trace.Gauge
}

func (h *sampleHooks) observed(stratum, total int) {
	if h == nil {
		return
	}
	h.detailedC.Inc()
	h.strata.Set(int64(total))
	h.rec.Annotate(stratum, false)
}

func (h *sampleHooks) extrapolatedHook(stratum int, outlier bool) {
	if h == nil {
		return
	}
	h.extrapolated.Inc()
	if outlier {
		h.outliers.Inc()
	}
	h.rec.Annotate(stratum, outlier)
}

// SetRecorder attaches the run's trace recorder: sampling outcomes annotate
// app-interval spans with their stratum index, and the sample.* counters
// land in the recorder's metrics registry. Nil detaches.
func (s *Sampler) SetRecorder(r *trace.Recorder) {
	if r == nil {
		s.trc = nil
		return
	}
	reg := r.Metrics()
	s.trc = &sampleHooks{
		rec:          r,
		detailedC:    reg.Counter("sample.detailed"),
		extrapolated: reg.Counter("sample.extrapolated"),
		outliers:     reg.Counter("sample.outliers"),
		strata:       reg.Gauge("sample.strata"),
	}
}
