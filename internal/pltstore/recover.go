package pltstore

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"strings"

	"fssim/internal/durable"
)

// QuarantineDir is the subdirectory (under the store root) that Recover
// moves corrupt, torn, or transplanted snapshot files into. Quarantined
// files are out of every load/advertise path but preserved for forensics;
// nothing in the store ever reads them back.
const QuarantineDir = "quarantine"

// RecoveryReport summarizes what a startup Recover sweep found and fixed.
type RecoveryReport struct {
	// Orphans is the number of stale temp files deleted — in-flight writes
	// whose process died before the rename.
	Orphans int
	// Quarantined is the number of snapshot files moved to QuarantineDir
	// because they failed the recovery oracle: checksum-first decode,
	// filename-vs-header identity, and semantic state validation.
	Quarantined int
}

// isSnapshotName reports whether a directory entry name is a snapshot file.
func isSnapshotName(name string) bool { return strings.HasSuffix(name, ".plt") }

// Recover sweeps the store directory after a potential crash: orphan temp
// files are deleted, and every snapshot file is re-verified with the same
// oracle Load uses — the trailing checksum (verified before any field is
// parsed), the structural decode, the filename-vs-header identity check, and
// core's semantic validator. Files that fail are moved into QuarantineDir,
// never deleted and never importable; files that pass are untouched,
// bit-exact. The cached INDEX is rebuilt from the verified scan.
//
// Recover is idempotent and safe to call on a store that was shut down
// cleanly (it finds nothing to do). Callers that skip it still get the
// orphan sweep lazily on first save and per-file verification on every load;
// Recover adds the eager quarantine and the recovered.* counts.
func (s *Store) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	s.swept.Store(true) // the first-save lazy sweep is now redundant
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return rep, nil
		}
		return rep, err
	}
	var valid []IndexEntry
	for _, e := range entries {
		if e.Dir {
			continue
		}
		p := filepath.Join(s.dir, e.Name)
		if strings.HasPrefix(e.Name, durable.TempPrefix) {
			if s.isLive(p) {
				continue
			}
			if s.fsys.Remove(p) == nil {
				rep.Orphans++
			}
			continue
		}
		if !isSnapshotName(e.Name) {
			continue // INDEX (rebuilt below) and foreign files are left alone
		}
		data, rerr := s.fsys.ReadFile(p)
		ok := rerr == nil && int64(len(data)) <= MaxSnapshotBytes
		var snap *Snapshot
		if ok {
			var derr error
			snap, derr = Decode(data)
			ok = derr == nil && snap.Validate() == nil && s.Path(snap.Benchmark, snap.LearnHash) == p
		}
		if ok {
			valid = append(valid, IndexEntry{
				Benchmark: snap.Benchmark,
				LearnHash: FormatHash(snap.LearnHash),
				Size:      int64(len(data)),
			})
			continue
		}
		if s.quarantine(e.Name) {
			rep.Quarantined++
		}
	}
	s.idxMu.Lock()
	s.maybeWriteIndexCache(valid)
	s.idxMu.Unlock()
	return rep, nil
}

// quarantine moves one failed snapshot file out of the load path. Falls back
// to deletion if the move itself fails — a file that can be neither moved
// nor removed stays put and keeps failing Load's verification, which is safe
// (never imported), just unreported.
func (s *Store) quarantine(name string) bool {
	src := filepath.Join(s.dir, name)
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := s.fsys.MkdirAll(qdir); err == nil {
		if s.fsys.Rename(src, filepath.Join(qdir, name)) == nil {
			return true
		}
	}
	return s.fsys.Remove(src) == nil
}
