package pltstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fssim/internal/durable"
	"fssim/internal/machine"
)

// snapFor builds a deterministic rich snapshot addressed to bench.
func snapFor(bench string, bump uint64) *Snapshot {
	st := richAccelState()
	lh := LearnHash(bench, machine.Config{}, st.Params, 0.1, "")
	return &Snapshot{
		LearnHash:  lh,
		ReplayHash: ReplayHash(lh, bench+"/accel", 42) + bump,
		Benchmark:  bench,
		Key:        bench + "/accel",
		Stats:      richSnapshot().Stats,
		State:      st,
	}
}

// allowedContent lists what a store address may hold after crash recovery:
// any of the byte strings, or absent when absentOK.
type allowedContent struct {
	bench    string
	hash     uint64
	variants [][]byte
	absentOK bool
}

// checkRecovered opens a materialized crash state with the real filesystem,
// runs the recovery sweep, and asserts the invariant: every address holds
// one of its allowed contents bit-exact (or is absent where allowed), no
// temp files survive, and the index advertises exactly the valid residents.
func checkRecovered(p durable.CrashPoint, dir string, allowed []allowedContent) error {
	rs := Open(dir)
	if _, err := rs.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	valid := 0
	for _, a := range allowed {
		path := rs.Path(a.bench, a.hash)
		got, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) && a.absentOK {
				continue
			}
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		match := false
		for _, want := range a.variants {
			if bytes.Equal(got, want) {
				match = true
				break
			}
		}
		if !match {
			return fmt.Errorf("%s holds %d bytes matching no allowed variant", filepath.Base(path), len(got))
		}
		if _, err := rs.Load(a.bench, a.hash); err != nil {
			return fmt.Errorf("%s survived recovery but fails load: %w", filepath.Base(path), err)
		}
		valid++
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	plt := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), durable.TempPrefix) {
			return fmt.Errorf("temp %s survived recovery", e.Name())
		}
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".plt") {
			plt++
		}
	}
	if plt != valid {
		return fmt.Errorf("%d .plt files on disk but %d allowed addresses valid", plt, valid)
	}
	idx, err := rs.Index()
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if len(idx) != valid {
		return fmt.Errorf("index advertises %d snapshots, %d are valid", len(idx), valid)
	}
	return nil
}

// TestCrashExplorerSave enumerates every crash point while a snapshot is
// overwritten in place and proves the address always recovers to the old or
// the new bytes, never anything else.
func TestCrashExplorerSave(t *testing.T) {
	cfs := durable.NewCrashFS()
	s := OpenFS("warm", cfs)
	oldSnap := snapFor("crash-save", 0)
	newSnap := snapFor("crash-save", 1)
	if err := s.Save(oldSnap); err != nil {
		t.Fatal(err)
	}
	mark := cfs.OpsLen()
	if err := s.Save(newSnap); err != nil {
		t.Fatal(err)
	}
	allowed := []allowedContent{{
		bench:    oldSnap.Benchmark,
		hash:     oldSnap.LearnHash,
		variants: [][]byte{Encode(oldSnap), Encode(newSnap)},
		// The old snapshot was durably published; no crash during the
		// overwrite may lose the address entirely.
		absentOK: false,
	}}
	n, err := cfs.Explore(mark, "warm", t.TempDir(), func(p durable.CrashPoint, dir string) error {
		return checkRecovered(p, dir, allowed)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d crash states", n)
	if n < 20 {
		t.Fatalf("only %d crash states explored; explorer is not exhaustive", n)
	}
}

// TestCrashExplorerIndexRewrite crashes at every point across a second
// save — snapshot publication plus the INDEX read-modify-write — and proves
// the first snapshot stays intact, the second is absent-or-exact, and the
// index never advertises anything invalid, no matter which half of the
// (snapshot, index) pair the crash fell between.
func TestCrashExplorerIndexRewrite(t *testing.T) {
	cfs := durable.NewCrashFS()
	s := OpenFS("warm", cfs)
	snapA := snapFor("crash-idx-a", 0)
	snapB := snapFor("crash-idx-b", 0)
	if err := s.Save(snapA); err != nil {
		t.Fatal(err)
	}
	mark := cfs.OpsLen()
	if err := s.Save(snapB); err != nil {
		t.Fatal(err)
	}
	allowed := []allowedContent{
		{bench: snapA.Benchmark, hash: snapA.LearnHash, variants: [][]byte{Encode(snapA)}},
		{bench: snapB.Benchmark, hash: snapB.LearnHash, variants: [][]byte{Encode(snapB)}, absentOK: true},
	}
	n, err := cfs.Explore(mark, "warm", t.TempDir(), func(p durable.CrashPoint, dir string) error {
		return checkRecovered(p, dir, allowed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 20 {
		t.Fatalf("only %d crash states explored", n)
	}
}

// TestCrashExplorerConcurrentSaves interleaves three concurrent writers —
// the FlushWarm shape — and explores every crash point of the interleaved
// op log: each address independently recovers to absent-or-exact.
func TestCrashExplorerConcurrentSaves(t *testing.T) {
	cfs := durable.NewCrashFS()
	s := OpenFS("warm", cfs)
	benches := []string{"crash-cc-a", "crash-cc-b", "crash-cc-c"}
	snaps := make([]*Snapshot, len(benches))
	for i, b := range benches {
		snaps[i] = snapFor(b, 0)
	}
	var wg sync.WaitGroup
	for _, sn := range snaps {
		wg.Add(1)
		go func(sn *Snapshot) {
			defer wg.Done()
			if err := s.Save(sn); err != nil {
				t.Errorf("save %s: %v", sn.Benchmark, err)
			}
		}(sn)
	}
	wg.Wait()
	var allowed []allowedContent
	for _, sn := range snaps {
		allowed = append(allowed, allowedContent{
			bench: sn.Benchmark, hash: sn.LearnHash,
			variants: [][]byte{Encode(sn)}, absentOK: true,
		})
	}
	n, err := cfs.Explore(0, "warm", t.TempDir(), func(p durable.CrashPoint, dir string) error {
		return checkRecovered(p, dir, allowed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 40 {
		t.Fatalf("only %d crash states explored", n)
	}
}
