// Package pltstore persists learned Performance Lookup Tables across runs:
// a versioned, self-describing on-disk store that snapshots an accelerated
// run's complete learner state (clusters with full moments, phases, outlier
// and watchdog bookkeeping) plus its deterministic machine statistics, and
// warm-starts later runs from it so the learning window is paid once per
// workload configuration instead of once per process.
//
// The store is config-addressed. Two FNV-1a hashes gate reuse:
//
//   - LearnHash fingerprints everything the learned state depends on —
//     benchmark, machine configuration (seed excluded), acceleration
//     parameters, workload scale, fault plan, and the format version. It is
//     the filename discriminator and the compatibility gate: a snapshot only
//     ever loads into the configuration that produced it. A mismatch is a
//     cold start with a counted metric, never a wrong prediction.
//   - ReplayHash additionally binds the exact run identity (the full RunKey
//     string and the derived machine seed). When it matches, the snapshot's
//     recorded machine.Stats are the byte-identical result of re-running the
//     simulation, so the scheduler can reconstruct the outcome without
//     simulating at all; when only LearnHash matches, callers may still
//     warm-start the learners and simulate.
//
// Loading is strictly validated: the binary codec (codec.go) rejects
// malformed bytes with a typed *FormatError, and the decoded learner state
// passes core.AccelState.Validate before it can reach an accelerator.
// Corrupt, truncated, or stale files therefore degrade to cold starts.
package pltstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fssim/internal/core"
	"fssim/internal/machine"
)

// FormatVersion is the snapshot format generation. It participates in
// LearnHash, so a format change invalidates every existing snapshot rather
// than misreading it.
const FormatVersion = 1

// ErrNotFound reports that no snapshot exists for the requested
// (benchmark, learn-hash) address.
var ErrNotFound = errors.New("pltstore: no snapshot for this configuration")

// ErrMismatch reports that a snapshot file's self-described identity does
// not match the address it was loaded under (a renamed or transplanted
// file). Callers treat it like corruption: cold start.
var ErrMismatch = errors.New("pltstore: snapshot does not match requested configuration")

// Snapshot is one persisted run: identity hashes, the run's deterministic
// aggregate statistics (for exact replay), and the full learner state (for
// warm-starting).
type Snapshot struct {
	LearnHash  uint64
	ReplayHash uint64
	Benchmark  string
	Key        string // the producing RunKey, for diagnostics
	Stats      machine.Stats
	State      *core.AccelState
}

// Validate checks the snapshot beyond codec well-formedness: a benchmark
// name, a learner state that passes core's strict validation (finite
// non-negative centroids, bounded cluster counts, consistent rings), and
// non-degenerate statistics. Failures wrap core.ErrBadState or ErrMismatch
// so callers can count them as invalidations.
func (s *Snapshot) Validate() error {
	if s.Benchmark == "" {
		return fmt.Errorf("%w: empty benchmark", core.ErrBadState)
	}
	if s.State == nil {
		return fmt.Errorf("%w: missing learner state", core.ErrBadState)
	}
	if err := s.State.Validate(); err != nil {
		return err
	}
	if s.Stats.Insts == 0 || s.Stats.Cycles == 0 {
		return fmt.Errorf("%w: degenerate run statistics", core.ErrBadState)
	}
	return nil
}

// LearnHash fingerprints the configuration a learned PLT depends on. The
// machine seed is deliberately zeroed: learned behavior clusters transfer
// across seeds of the same configuration (that is the point of
// warm-starting), while exact result replay is separately gated by
// ReplayHash, which does bind the seed.
func LearnHash(bench string, mcfg machine.Config, p core.Params, scale float64, faultPlan string) uint64 {
	mcfg.Seed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-plt|v%d|bench=%s|scale=%x|faults=%s|machine=%+v|params=%+v",
		FormatVersion, bench, math.Float64bits(scale), faultPlan, mcfg, p)
	return h.Sum64()
}

// ReplayHash binds a snapshot to one exact run: the learn-compatibility
// hash, the full run-key string, and the derived machine seed. Two runs with
// equal ReplayHash are the same deterministic simulation, so the stored
// Stats are byte-identical to what re-running would produce.
func ReplayHash(learnHash uint64, key string, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-replay|%016x|%s|seed=%d", learnHash, key, seed)
	return h.Sum64()
}

// Store is a directory of snapshot files, one per (benchmark, learn-hash)
// address. The zero Store is unusable; build with Open. A Store is safe for
// concurrent use: writes are atomic (temp file + rename) and reads see
// either the old or the new complete snapshot.
type Store struct {
	dir string
}

// Open returns a store rooted at dir. The directory is created lazily on
// first save, so opening a store never touches the filesystem.
func Open(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the snapshot file path for the given address.
func (s *Store) Path(bench string, learnHash uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x.plt", sanitize(bench), learnHash))
}

// sanitize maps a benchmark name onto the filename-safe alphabet; the
// snapshot header, not the filename, is the authoritative identity.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// Save writes the snapshot atomically: encoded to a temp file in the store
// directory, fsync'd semantics aside, then renamed into place. A concurrent
// reader never observes a partial file, and a crash mid-save leaves the
// previous snapshot intact.
func (s *Store) Save(snap *Snapshot) error {
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("pltstore: refusing to save: %w", err)
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("pltstore: %w", err)
	}
	path := s.Path(snap.Benchmark, snap.LearnHash)
	tmp, err := os.CreateTemp(s.dir, ".plt-tmp-*")
	if err != nil {
		return fmt.Errorf("pltstore: %w", err)
	}
	data := Encode(snap)
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pltstore: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pltstore: %w", err)
	}
	return nil
}

// Load reads and fully validates the snapshot at the given address. It
// returns ErrNotFound when no file exists, a *FormatError for malformed or
// corrupt bytes, ErrMismatch for a file whose header identity disagrees with
// the address, and core.ErrBadState-wrapped errors for semantically invalid
// learner state. Only a nil error means the snapshot is safe to import.
func (s *Store) Load(bench string, learnHash uint64) (*Snapshot, error) {
	path := s.Path(bench, learnHash)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if snap.Benchmark != bench || snap.LearnHash != learnHash {
		return nil, fmt.Errorf("%w: file %s describes %s/%016x",
			ErrMismatch, filepath.Base(path), snap.Benchmark, snap.LearnHash)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// List returns the snapshot file paths currently stored for bench (every
// benchmark when bench is empty), sorted by name for determinism. A missing
// store directory is an empty store, not an error.
func (s *Store) List(bench string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	prefix := ""
	if bench != "" {
		prefix = sanitize(bench) + "-"
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".plt") {
			continue
		}
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		out = append(out, filepath.Join(s.dir, name))
	}
	sort.Strings(out)
	return out, nil
}
