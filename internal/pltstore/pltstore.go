// Package pltstore persists learned Performance Lookup Tables across runs:
// a versioned, self-describing on-disk store that snapshots an accelerated
// run's complete learner state (clusters with full moments, phases, outlier
// and watchdog bookkeeping) plus its deterministic machine statistics, and
// warm-starts later runs from it so the learning window is paid once per
// workload configuration instead of once per process.
//
// The store is config-addressed. Two FNV-1a hashes gate reuse:
//
//   - LearnHash fingerprints everything the learned state depends on —
//     benchmark, machine configuration (seed excluded), acceleration
//     parameters, workload scale, fault plan, and the format version. It is
//     the filename discriminator and the compatibility gate: a snapshot only
//     ever loads into the configuration that produced it. A mismatch is a
//     cold start with a counted metric, never a wrong prediction.
//   - ReplayHash additionally binds the exact run identity (the full RunKey
//     string and the derived machine seed). When it matches, the snapshot's
//     recorded machine.Stats are the byte-identical result of re-running the
//     simulation, so the scheduler can reconstruct the outcome without
//     simulating at all; when only LearnHash matches, callers may still
//     warm-start the learners and simulate.
//
// Loading is strictly validated: the binary codec (codec.go) rejects
// malformed bytes with a typed *FormatError, and the decoded learner state
// passes core.AccelState.Validate before it can reach an accelerator.
// Corrupt, truncated, or stale files therefore degrade to cold starts.
//
// Writes are crash-consistent: every file the store publishes goes through
// internal/durable's blessed path (temp → fsync → rename → dir fsync), so a
// crash at any instant leaves each address holding the old snapshot or the
// new one, bit-exact — never a torn file under a final name. What a crash
// can leave behind is an orphan temp or (on pathological storage) a torn or
// flipped file; Recover sweeps both at startup, deleting orphans and
// quarantining anything that fails the checksum/identity/validation oracle
// so it is never silently imported.
package pltstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fssim/internal/core"
	"fssim/internal/durable"
	"fssim/internal/machine"
	"fssim/internal/transfer"
)

// FormatVersion is the snapshot format generation. It participates in
// LearnHash, so a format change invalidates every existing snapshot rather
// than misreading it. Version 2 added the transfer family/provenance trailer
// (Family, TransferHash, Coords) for cross-config warm starts.
const FormatVersion = 2

// ErrNotFound reports that no snapshot exists for the requested
// (benchmark, learn-hash) address.
var ErrNotFound = errors.New("pltstore: no snapshot for this configuration")

// ErrMismatch reports that a snapshot file's self-described identity does
// not match the address it was loaded under (a renamed or transplanted
// file). Callers treat it like corruption: cold start.
var ErrMismatch = errors.New("pltstore: snapshot does not match requested configuration")

// Snapshot is one persisted run: identity hashes, the run's deterministic
// aggregate statistics (for exact replay), and the full learner state (for
// warm-starting).
type Snapshot struct {
	LearnHash  uint64
	ReplayHash uint64

	// Family and Coords support cross-config transfer (internal/transfer):
	// Family addresses the sweep family (LearnHash minus the swept machine
	// parameters) and Coords are the swept coordinates themselves, so a
	// recipient config can find and rank eligible donors without decoding
	// machine configs. TransferHash is the provenance trailer: 0 for a
	// cold-learned snapshot, otherwise the hash of the donor and scaling
	// model this snapshot's run imported — transferred snapshots are never
	// donors themselves (no transfer chains).
	Family       uint64
	TransferHash uint64
	Coords       transfer.Coords

	Benchmark string
	Key       string // the producing RunKey, for diagnostics
	Stats     machine.Stats
	State     *core.AccelState
}

// Validate checks the snapshot beyond codec well-formedness: a benchmark
// name, a learner state that passes core's strict validation (finite
// non-negative centroids, bounded cluster counts, consistent rings), and
// non-degenerate statistics. Failures wrap core.ErrBadState or ErrMismatch
// so callers can count them as invalidations.
func (s *Snapshot) Validate() error {
	if s.Benchmark == "" {
		return fmt.Errorf("%w: empty benchmark", core.ErrBadState)
	}
	if s.State == nil {
		return fmt.Errorf("%w: missing learner state", core.ErrBadState)
	}
	if err := s.State.Validate(); err != nil {
		return err
	}
	if s.Stats.Insts == 0 || s.Stats.Cycles == 0 {
		return fmt.Errorf("%w: degenerate run statistics", core.ErrBadState)
	}
	c := s.Coords
	for _, v := range []int{
		c.L1ISize, c.L1IAssoc, c.L1DSize, c.L1DAssoc, c.L2Size, c.L2Assoc,
		c.FetchWidth, c.IssueWidth, c.RetireWidth, c.ROBSize,
		c.MemLatency, c.BusOccupancy,
	} {
		if v < 0 {
			return fmt.Errorf("%w: negative sweep coordinate %d", core.ErrBadState, v)
		}
	}
	return nil
}

// LearnHash fingerprints the configuration a learned PLT depends on. The
// machine seed is deliberately zeroed: learned behavior clusters transfer
// across seeds of the same configuration (that is the point of
// warm-starting), while exact result replay is separately gated by
// ReplayHash, which does bind the seed.
func LearnHash(bench string, mcfg machine.Config, p core.Params, scale float64, faultPlan string) uint64 {
	mcfg.Seed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-plt|v%d|bench=%s|scale=%x|faults=%s|machine=%+v|params=%+v",
		FormatVersion, bench, math.Float64bits(scale), faultPlan, mcfg, p)
	return h.Sum64()
}

// LearnHashWith is LearnHash extended with the run's transfer directive. A
// run without a directive keeps its plain LearnHash address; a transferred
// run gets a distinct address, so a transferred table can never be mistaken
// for (or overwrite) the cold-learned table of the identical configuration —
// the donor's priors shape what is learned, and the two must not share an
// address.
func LearnHashWith(bench string, mcfg machine.Config, p core.Params, scale float64, faultPlan, transferSpec string) uint64 {
	base := LearnHash(bench, mcfg, p, scale, faultPlan)
	if transferSpec == "" {
		return base
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-plt-transfer|%016x|%s", base, transferSpec)
	return h.Sum64()
}

// ReplayHash binds a snapshot to one exact run: the learn-compatibility
// hash, the full run-key string, and the derived machine seed. Two runs with
// equal ReplayHash are the same deterministic simulation, so the stored
// Stats are byte-identical to what re-running would produce.
func ReplayHash(learnHash uint64, key string, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-replay|%016x|%s|seed=%d", learnHash, key, seed)
	return h.Sum64()
}

// TransferReplayHash is ReplayHash for a transferred run: it additionally
// binds the TransferHash — the exact donor and scaling model imported. The
// "store" directive resolves to whatever donor the warm directory holds at
// run time, so the directive alone does not pin the run's inputs; binding
// the provenance hash means a snapshot recorded under one donor can never
// replay for an invocation that would have resolved a different one — that
// mismatch is a counted invalidation and a fresh simulation.
func TransferReplayHash(learnHash uint64, key string, seed int64, transferHash uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fssim-replay|%016x|%s|seed=%d|transfer=%016x", learnHash, key, seed, transferHash)
	return h.Sum64()
}

// Store is a directory of snapshot files, one per (benchmark, learn-hash)
// address. The zero Store is unusable; build with Open (or OpenFS to inject
// a filesystem — tests use durable.CrashFS to explore crash states). A
// Store is safe for concurrent use: writes go through the durable atomic
// path and reads see either the old or the new complete snapshot.
type Store struct {
	dir  string
	fsys durable.FS

	// live tracks temp files owned by in-flight writers in this process so
	// the orphan sweep never deletes a temp that is about to be renamed.
	mu    sync.Mutex
	live  map[string]bool
	swept atomic.Bool // first-save orphan sweep has run (or Recover did)

	// idxMu serializes read-modify-write cycles on the cached INDEX file.
	// Separate from mu: the index rewrite goes through the durable write
	// path, which takes mu to track its temp file.
	idxMu sync.Mutex
}

// Open returns a store rooted at dir, backed by the real filesystem. The
// directory is created lazily on first save, so opening a store never
// touches the filesystem; call Recover to run the startup sweep eagerly.
func Open(dir string) *Store { return OpenFS(dir, durable.OS()) }

// OpenFS returns a store rooted at dir on the given filesystem. Production
// callers use Open; tests inject a durable.CrashFS to enumerate what crashes
// can leave behind.
func OpenFS(dir string, fsys durable.FS) *Store {
	return &Store{dir: dir, fsys: fsys, live: map[string]bool{}}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the snapshot file path for the given address.
func (s *Store) Path(bench string, learnHash uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x.plt", sanitize(bench), learnHash))
}

// sanitize maps a benchmark name onto the filename-safe alphabet; the
// snapshot header, not the filename, is the authoritative identity.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// markLive records (or clears) in-process ownership of a temp file path.
func (s *Store) markLive(path string, live bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if live {
		s.live[path] = true
	} else {
		delete(s.live, path)
	}
}

func (s *Store) isLive(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[path]
}

// trackFS wraps the store's filesystem so temp files created by the durable
// write path are registered in the live set for exactly the window between
// creation and publication (or cleanup).
type trackFS struct {
	durable.FS
	s *Store
}

func (t trackFS) CreateTemp(dir, pattern string) (durable.File, error) {
	f, err := t.FS.CreateTemp(dir, pattern)
	if err == nil {
		t.s.markLive(f.Name(), true)
	}
	return f, err
}

func (t trackFS) Rename(oldpath, newpath string) error {
	err := t.FS.Rename(oldpath, newpath)
	if err == nil {
		t.s.markLive(oldpath, false)
	}
	return err
}

func (t trackFS) Remove(path string) error {
	err := t.FS.Remove(path)
	t.s.markLive(path, false)
	return err
}

func (s *Store) writeFS() durable.FS { return trackFS{FS: s.fsys, s: s} }

// sweepOrphans deletes stale temp files left by crashed writers. Temps owned
// by in-flight writers in this process are skipped; a temp owned by a writer
// in *another* process sharing the directory could be swept, in which case
// that writer's rename fails cleanly (save error, no corruption) — the store
// is concurrency-safe within a process and crash-safe across them.
func (s *Store) sweepOrphans() int {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if e.Dir || !strings.HasPrefix(e.Name, durable.TempPrefix) {
			continue
		}
		p := filepath.Join(s.dir, e.Name)
		if s.isLive(p) {
			continue
		}
		if s.fsys.Remove(p) == nil {
			removed++
		}
	}
	return removed
}

// Save writes the snapshot crash-consistently through the durable path:
// encoded to a temp file, fsync'd, renamed into place, directory fsync'd. A
// concurrent reader never observes a partial file, and a crash at any point
// leaves the address holding the previous snapshot or the new one bit-exact
// (plus at worst an orphan temp for the next sweep). The first save also
// sweeps orphan temps left by earlier crashed processes.
func (s *Store) Save(snap *Snapshot) error {
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("pltstore: refusing to save: %w", err)
	}
	if s.swept.CompareAndSwap(false, true) {
		s.sweepOrphans()
	}
	path := s.Path(snap.Benchmark, snap.LearnHash)
	data := Encode(snap)
	if err := durable.AtomicWrite(s.writeFS(), s.dir, filepath.Base(path), data); err != nil {
		return fmt.Errorf("pltstore: %w", err)
	}
	s.updateIndex(IndexEntry{
		Benchmark: snap.Benchmark,
		LearnHash: FormatHash(snap.LearnHash),
		Family:    FormatHash(snap.Family),
		Size:      int64(len(data)),
	})
	return nil
}

// Load reads and fully validates the snapshot at the given address. It
// returns ErrNotFound when no file exists, a *FormatError for malformed or
// corrupt bytes, ErrMismatch for a file whose header identity disagrees with
// the address, and core.ErrBadState-wrapped errors for semantically invalid
// learner state. Only a nil error means the snapshot is safe to import.
func (s *Store) Load(bench string, learnHash uint64) (*Snapshot, error) {
	path := s.Path(bench, learnHash)
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if snap.Benchmark != bench || snap.LearnHash != learnHash {
		return nil, fmt.Errorf("%w: file %s describes %s/%016x",
			ErrMismatch, filepath.Base(path), snap.Benchmark, snap.LearnHash)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Nearest returns the closest transfer-eligible donor snapshot in the given
// sweep family: among fully validated snapshots whose Family matches, whose
// provenance is cold-learned (TransferHash 0 — transferred tables never
// donate, so priors cannot chain and compound model error), and whose
// coordinate distance to recip is within transfer.MaxDistance, it picks the
// minimum-distance one. Ties are broken by snapshot path (List order is
// lexicographic), so the choice is deterministic whatever order the files
// were written in. Returns ErrNotFound when no eligible donor exists —
// callers count that as a rejected/unavailable transfer and start cold.
func (s *Store) Nearest(family uint64, recip transfer.Coords) (*Snapshot, float64, error) {
	paths, err := s.List("")
	if err != nil {
		return nil, 0, err
	}
	var (
		best     *Snapshot
		bestDist float64
	)
	for _, p := range paths {
		snap, err := s.LoadPath(p)
		if err != nil {
			continue
		}
		if snap.Family != family || snap.TransferHash != 0 {
			continue
		}
		d := transfer.Distance(snap.Coords, recip)
		if !transfer.Eligible(d) {
			continue
		}
		if best == nil || d < bestDist {
			best, bestDist = snap, d
		}
	}
	if best == nil {
		return nil, 0, ErrNotFound
	}
	return best, bestDist, nil
}

// LoadPath reads and fully validates the snapshot at an explicit store path
// (as returned by List), with the same guarantees as Load: size cap,
// checksum-first structural decode, semantic validation, and the transplant
// check that the filename agrees with the self-described identity. Only a
// nil error means the snapshot is safe to import.
func (s *Store) LoadPath(path string) (*Snapshot, error) {
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	if int64(len(data)) > MaxSnapshotBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrOversize, len(data), MaxSnapshotBytes)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if s.Path(snap.Benchmark, snap.LearnHash) != path {
		return nil, fmt.Errorf("%w: file %s describes %s/%016x",
			ErrMismatch, filepath.Base(path), snap.Benchmark, snap.LearnHash)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// List returns the snapshot file paths currently stored for bench (every
// benchmark when bench is empty), sorted by name for determinism. A missing
// store directory is an empty store, not an error.
func (s *Store) List(bench string) ([]string, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	prefix := ""
	if bench != "" {
		prefix = sanitize(bench) + "-"
	}
	var out []string
	for _, e := range entries {
		name := e.Name
		if e.Dir || !strings.HasSuffix(name, ".plt") {
			continue
		}
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		out = append(out, filepath.Join(s.dir, name))
	}
	sort.Strings(out)
	return out, nil
}
