package pltstore

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"

	"fssim/internal/durable"
)

// MaxSnapshotBytes caps how large a snapshot may be to travel between
// processes (peer gossip, client fetches). It is derived from the decoder's
// own structural caps: a snapshot near the learner/cluster/EPO limits is a
// few MB, so anything beyond this bound cannot be a snapshot the decoder
// would accept — it is rejected before buffering, not after.
const MaxSnapshotBytes = 16 << 20

// IndexFileName is the cached on-disk index the store maintains next to its
// snapshots. It is advisory: Index trusts it only when it exactly describes
// the .plt files on disk (name and size), and otherwise falls back to a full
// verified rescan. It is rewritten through the same durable path as
// snapshots, so a crash mid-rewrite leaves the old or new index, never a
// torn one — and even a stale index is safe, because every serve and fetch
// path re-verifies snapshot bytes before using them.
const IndexFileName = "INDEX"

// ErrOversize reports snapshot bytes beyond MaxSnapshotBytes: rejected
// before decoding (and, on the fetch path, before fully reading the body).
var ErrOversize = errors.New("pltstore: snapshot exceeds size cap")

// IndexEntry describes one stored snapshot for peer exchange: the address a
// peer can fetch it under, plus the on-disk size so a fetcher can refuse
// oversize transfers before issuing them. LearnHash travels as a %016x
// string — a uint64 does not survive JSON number round-trips intact.
type IndexEntry struct {
	Benchmark string `json:"benchmark"`
	LearnHash string `json:"learn_hash"`
	// Family is the sweep-family address (%016x), so a peer scanning the
	// index can spot transfer-eligible snapshots without fetching them.
	// Advisory like the rest of the entry: transfer eligibility is
	// re-verified against the fetched snapshot's own header.
	Family string `json:"family,omitempty"`
	Size   int64  `json:"size"`
}

// Addr renders the entry's store address compactly for logs and quarantine
// bookkeeping.
func (e IndexEntry) Addr() string { return e.Benchmark + "/" + e.LearnHash }

// FormatHash renders a learn hash the way IndexEntry carries it.
func FormatHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// ParseHash parses a %016x learn hash (as carried by IndexEntry and peer
// fetch URLs).
func ParseHash(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("pltstore: learn hash %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("pltstore: bad learn hash %q: %w", s, err)
	}
	return v, nil
}

// indexFile is the on-disk INDEX cache format.
type indexFile struct {
	Version   int          `json:"version"`
	Snapshots []IndexEntry `json:"snapshots"`
}

// loadIndexCache parses the INDEX file; nil means absent or unusable (the
// caller falls back to a full scan — the cache is never trusted blindly).
func (s *Store) loadIndexCache() []IndexEntry {
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, IndexFileName))
	if err != nil {
		return nil
	}
	var f indexFile
	if json.Unmarshal(data, &f) != nil || f.Version != 1 {
		return nil
	}
	return f.Snapshots
}

// writeIndexCache rewrites the INDEX through the durable atomic path.
// Best-effort: the cache is advisory, so an error only costs a rescan later.
func (s *Store) writeIndexCache(entries []IndexEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Addr() < entries[j].Addr() })
	data, err := json.Marshal(indexFile{Version: 1, Snapshots: entries})
	if err != nil {
		return
	}
	durable.AtomicWrite(s.writeFS(), s.dir, IndexFileName, data)
}

// maybeWriteIndexCache rewrites the cache, except that an empty entry list
// never *creates* an INDEX file — an empty store stays an empty directory.
// Callers hold idxMu.
func (s *Store) maybeWriteIndexCache(entries []IndexEntry) {
	if len(entries) == 0 {
		if _, err := s.fsys.Stat(filepath.Join(s.dir, IndexFileName)); err != nil {
			return
		}
	}
	s.writeIndexCache(entries)
}

// updateIndex upserts one entry into the cached INDEX (serialized across
// in-process writers). Best-effort and advisory: if the cache drifts from
// disk — a crash between snapshot and index writes, an out-of-band deletion
// — Index detects the mismatch and rescans.
func (s *Store) updateIndex(entry IndexEntry) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	entries := s.loadIndexCache()
	replaced := false
	for i := range entries {
		if entries[i].Addr() == entry.Addr() {
			entries[i], replaced = entry, true
			break
		}
	}
	if !replaced {
		entries = append(entries, entry)
	}
	s.writeIndexCache(entries)
}

// indexMatchesDisk reports whether cached entries describe exactly the .plt
// files on disk: every entry's derived filename present with the recorded
// size, no disk file unaccounted for, no duplicate or unparseable entries.
func (s *Store) indexMatchesDisk(entries []IndexEntry, disk map[string]int64) bool {
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		h, err := ParseHash(e.LearnHash)
		if err != nil {
			return false
		}
		name := filepath.Base(s.Path(e.Benchmark, h))
		if seen[name] {
			return false
		}
		sz, ok := disk[name]
		if !ok || sz != e.Size {
			return false
		}
		seen[name] = true
	}
	return len(seen) == len(disk)
}

// Index enumerates the store's snapshots as advertised to peers. Only files
// that decode and validate are listed — a corrupt or truncated file is never
// advertised, so a peer cannot be tricked into fetching garbage this node
// already knows is bad. Entries are sorted by address for determinism.
//
// When the cached INDEX exactly matches the on-disk file set (name + size),
// it is returned without re-reading every snapshot; any discrepancy — a
// crashed index rewrite, an out-of-band edit — falls back to the full
// verified rescan and rewrites the cache. Staleness is harmless beyond the
// rescan cost: serving and fetching both re-verify bytes end to end.
func (s *Store) Index() ([]IndexEntry, error) {
	dirents, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	disk := map[string]int64{}
	for _, e := range dirents {
		if e.Dir || !isSnapshotName(e.Name) {
			continue
		}
		disk[e.Name] = e.Size
	}
	if cached := s.loadIndexCache(); cached != nil && s.indexMatchesDisk(cached, disk) {
		sort.Slice(cached, func(i, j int) bool { return cached[i].Addr() < cached[j].Addr() })
		return cached, nil
	}

	names := make([]string, 0, len(disk))
	for name := range disk {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []IndexEntry
	for _, name := range names {
		p := filepath.Join(s.dir, name)
		data, err := s.fsys.ReadFile(p)
		if err != nil || int64(len(data)) > MaxSnapshotBytes {
			continue
		}
		snap, err := Decode(data)
		if err != nil || snap.Validate() != nil {
			continue
		}
		// The filename must agree with the self-described identity, exactly
		// as Load enforces; a transplanted file is not advertised.
		if s.Path(snap.Benchmark, snap.LearnHash) != p {
			continue
		}
		out = append(out, IndexEntry{
			Benchmark: snap.Benchmark,
			LearnHash: FormatHash(snap.LearnHash),
			Family:    FormatHash(snap.Family),
			Size:      int64(len(data)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr() < out[j].Addr() })
	s.idxMu.Lock()
	s.maybeWriteIndexCache(append([]IndexEntry(nil), out...))
	s.idxMu.Unlock()
	return out, nil
}

// PutVerified installs snapshot bytes fetched from an untrusted peer, but
// only after full verification: the size cap, the checksum-first structural
// decode, the semantic validator, and an exact match between the
// self-described identity and the (bench, learnHash) address the caller is
// entitled to store it under. Any failure leaves the store untouched and
// returns a typed error (ErrOversize, *FormatError, ErrMismatch, or a
// core.ErrBadState wrap); only a nil error means the bytes are now a
// loadable local snapshot. The verified bytes are written verbatim through
// the durable atomic path (temp → fsync → rename → dir fsync), so what
// lands on disk is exactly what was checked, even across a crash.
func (s *Store) PutVerified(bench string, learnHash uint64, data []byte) (*Snapshot, error) {
	if int64(len(data)) > MaxSnapshotBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrOversize, len(data), MaxSnapshotBytes)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if snap.Benchmark != bench || snap.LearnHash != learnHash {
		return nil, fmt.Errorf("%w: fetched bytes describe %s/%s, wanted %s/%s",
			ErrMismatch, snap.Benchmark, FormatHash(snap.LearnHash), bench, FormatHash(learnHash))
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if s.swept.CompareAndSwap(false, true) {
		s.sweepOrphans()
	}
	path := s.Path(bench, learnHash)
	if err := durable.AtomicWrite(s.writeFS(), s.dir, filepath.Base(path), data); err != nil {
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	s.updateIndex(IndexEntry{
		Benchmark: bench,
		LearnHash: FormatHash(learnHash),
		Family:    FormatHash(snap.Family),
		Size:      int64(len(data)),
	})
	return snap, nil
}

// Has reports whether a snapshot file exists at the given address (without
// reading or validating it — the cheap anti-entropy "do I need this?" check).
func (s *Store) Has(bench string, learnHash uint64) bool {
	_, err := s.fsys.Stat(s.Path(bench, learnHash))
	return err == nil
}
