package pltstore

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// MaxSnapshotBytes caps how large a snapshot may be to travel between
// processes (peer gossip, client fetches). It is derived from the decoder's
// own structural caps: a snapshot near the learner/cluster/EPO limits is a
// few MB, so anything beyond this bound cannot be a snapshot the decoder
// would accept — it is rejected before buffering, not after.
const MaxSnapshotBytes = 16 << 20

// ErrOversize reports snapshot bytes beyond MaxSnapshotBytes: rejected
// before decoding (and, on the fetch path, before fully reading the body).
var ErrOversize = errors.New("pltstore: snapshot exceeds size cap")

// IndexEntry describes one stored snapshot for peer exchange: the address a
// peer can fetch it under, plus the on-disk size so a fetcher can refuse
// oversize transfers before issuing them. LearnHash travels as a %016x
// string — a uint64 does not survive JSON number round-trips intact.
type IndexEntry struct {
	Benchmark string `json:"benchmark"`
	LearnHash string `json:"learn_hash"`
	Size      int64  `json:"size"`
}

// Addr renders the entry's store address compactly for logs and quarantine
// bookkeeping.
func (e IndexEntry) Addr() string { return e.Benchmark + "/" + e.LearnHash }

// FormatHash renders a learn hash the way IndexEntry carries it.
func FormatHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// ParseHash parses a %016x learn hash (as carried by IndexEntry and peer
// fetch URLs).
func ParseHash(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("pltstore: learn hash %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("pltstore: bad learn hash %q: %w", s, err)
	}
	return v, nil
}

// Index enumerates the store's snapshots as advertised to peers. Only files
// that decode and validate are listed — a corrupt or truncated file is never
// advertised, so a peer cannot be tricked into fetching garbage this node
// already knows is bad. Entries are sorted by address for determinism.
func (s *Store) Index() ([]IndexEntry, error) {
	paths, err := s.List("")
	if err != nil {
		return nil, err
	}
	var out []IndexEntry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil || int64(len(data)) > MaxSnapshotBytes {
			continue
		}
		snap, err := Decode(data)
		if err != nil || snap.Validate() != nil {
			continue
		}
		// The filename must agree with the self-described identity, exactly
		// as Load enforces; a transplanted file is not advertised.
		if s.Path(snap.Benchmark, snap.LearnHash) != p {
			continue
		}
		out = append(out, IndexEntry{
			Benchmark: snap.Benchmark,
			LearnHash: FormatHash(snap.LearnHash),
			Size:      int64(len(data)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr() < out[j].Addr() })
	return out, nil
}

// PutVerified installs snapshot bytes fetched from an untrusted peer, but
// only after full verification: the size cap, the checksum-first structural
// decode, the semantic validator, and an exact match between the
// self-described identity and the (bench, learnHash) address the caller is
// entitled to store it under. Any failure leaves the store untouched and
// returns a typed error (ErrOversize, *FormatError, ErrMismatch, or a
// core.ErrBadState wrap); only a nil error means the bytes are now a
// loadable local snapshot. The verified bytes are written verbatim (atomic
// temp-file + rename), so what lands on disk is exactly what was checked.
func (s *Store) PutVerified(bench string, learnHash uint64, data []byte) (*Snapshot, error) {
	if int64(len(data)) > MaxSnapshotBytes {
		return nil, fmt.Errorf("%w: %d bytes > %d", ErrOversize, len(data), MaxSnapshotBytes)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if snap.Benchmark != bench || snap.LearnHash != learnHash {
		return nil, fmt.Errorf("%w: fetched bytes describe %s/%s, wanted %s/%s",
			ErrMismatch, snap.Benchmark, FormatHash(snap.LearnHash), bench, FormatHash(learnHash))
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".plt-tmp-*")
	if err != nil {
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	path := s.Path(bench, learnHash)
	if werr != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("pltstore: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("pltstore: %w", err)
	}
	return snap, nil
}

// Has reports whether a snapshot file exists at the given address (without
// reading or validating it — the cheap anti-entropy "do I need this?" check).
func (s *Store) Has(bench string, learnHash uint64) bool {
	_, err := os.Stat(s.Path(bench, learnHash))
	return err == nil
}
