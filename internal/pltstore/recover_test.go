package pltstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fssim/internal/durable"
)

// TestRecoverSweepsOrphansAndQuarantines covers the startup sweep end to
// end: orphan temps deleted, torn and transplanted snapshots quarantined
// (moved, not deleted), valid snapshots untouched bit-exact, INDEX rebuilt.
func TestRecoverSweepsOrphansAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	goodPath := s.Path(snap.Benchmark, snap.LearnHash)
	goodBytes, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed writer's temp, a torn snapshot, and a transplanted one.
	if err := os.WriteFile(filepath.Join(dir, durable.TempPrefix+"000042"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tornPath := s.Path(snap.Benchmark, snap.LearnHash+1)
	if err := os.WriteFile(tornPath, goodBytes[:len(goodBytes)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	transPath := s.Path("other-bench", snap.LearnHash)
	if err := os.WriteFile(transPath, goodBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := Open(dir)
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Orphans != 1 || rep.Quarantined != 2 {
		t.Fatalf("report = %+v, want 1 orphan / 2 quarantined", rep)
	}
	if got, _ := os.ReadFile(goodPath); !bytes.Equal(got, goodBytes) {
		t.Fatal("valid snapshot was not preserved bit-exact")
	}
	if _, err := s2.Load(snap.Benchmark, snap.LearnHash); err != nil {
		t.Fatalf("valid snapshot unloadable after recover: %v", err)
	}
	if _, err := s2.Load(snap.Benchmark, snap.LearnHash+1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn snapshot still loadable-ish: %v", err)
	}
	qents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil || len(qents) != 2 {
		t.Fatalf("quarantine dir = %v entries, err %v; want 2", len(qents), err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), durable.TempPrefix) {
			t.Fatalf("orphan temp %s survived recover", e.Name())
		}
	}
	idx, err := s2.Index()
	if err != nil || len(idx) != 1 || idx[0].Benchmark != snap.Benchmark {
		t.Fatalf("index after recover = %v, %v; want exactly the valid snapshot", idx, err)
	}

	// Idempotent: a second sweep finds nothing.
	rep, err = s2.Recover()
	if err != nil || rep.Orphans != 0 || rep.Quarantined != 0 {
		t.Fatalf("second recover = %+v, %v; want clean no-op", rep, err)
	}
}

// TestCrashBetweenTempAndRename injects a crash after the temp file is
// created and written but before it is renamed, materializes what the crash
// leaves on disk, and verifies the next open sweeps the directory clean.
func TestCrashBetweenTempAndRename(t *testing.T) {
	cfs := durable.NewCrashFS()
	s := OpenFS("warm", cfs)
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	goodBytes := Encode(snap)

	// Second save of an updated snapshot dies between CreateTemp and Rename:
	// budget admits mkdir + create + the payload write, then every durable
	// op fails.
	snap2 := richSnapshot()
	snap2.Stats.Cycles++
	snap2.ReplayHash++
	cfs.FailAfter(3)
	if err := s.Save(snap2); !errors.Is(err, durable.ErrInjectedCrash) {
		t.Fatalf("save = %v, want injected crash", err)
	}
	cfs.FailAfter(-1)

	n, err := cfs.Explore(cfs.OpsLen(), "warm", t.TempDir(), func(p durable.CrashPoint, dir string) error {
		rs := Open(dir)
		rep, err := rs.Recover()
		if err != nil {
			return err
		}
		if rep.Orphans == 0 {
			t.Errorf("%s: crashed writer's temp not swept", p)
		}
		if got, err := os.ReadFile(rs.Path(snap.Benchmark, snap.LearnHash)); err != nil || !bytes.Equal(got, goodBytes) {
			t.Errorf("%s: previous snapshot damaged: %v", p, err)
		}
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), durable.TempPrefix) {
				t.Errorf("%s: temp %s survived the next open", p, e.Name())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no crash states explored")
	}
}

// TestSweepSparesLiveTemps pins the guard: an orphan sweep never deletes a
// temp file a concurrent in-process writer still owns.
func TestSweepSparesLiveTemps(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	liveTemp := filepath.Join(dir, durable.TempPrefix+"live01")
	if err := os.WriteFile(liveTemp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.markLive(liveTemp, true)
	if n := s.sweepOrphans(); n != 0 {
		t.Fatalf("sweep removed %d files, want 0", n)
	}
	if _, err := os.Stat(liveTemp); err != nil {
		t.Fatal("live temp was deleted by the sweep")
	}
	s.markLive(liveTemp, false)
	if n := s.sweepOrphans(); n != 1 {
		t.Fatalf("sweep after release removed %d files, want 1", n)
	}
}

// TestFirstSaveSweepsOrphans: the lazy path — a store that never calls
// Recover still cleans stale temps the first time it writes.
func TestFirstSaveSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, durable.TempPrefix+"stale")
	if err := os.WriteFile(orphan, []byte("old junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := Open(dir)
	if err := s.Save(richSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("first save did not sweep the orphan temp")
	}
}
