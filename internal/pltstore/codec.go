package pltstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"fssim/internal/cache"
	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/stats"
	"fssim/internal/transfer"
)

// The snapshot wire format, version 2. Everything is little-endian.
//
//	magic     8 bytes  "FSSIMPLT"
//	version   u32
//	learnHash u64
//	replayHash u64
//	family    u64      (sweep-family address; v2)
//	transferHash u64   (provenance trailer, 0 = cold-learned; v2)
//	benchmark string   (uvarint length, then bytes; canonical varints only)
//	key       string
//	coords    12 uvarints (swept machine coordinates, transfer.Coords; v2)
//	stats     machine.Stats, field by field (u64s; Prediction and the three
//	          cache snapshots inline)
//	state     core.AccelState: Params field by field (i64 / f64-bits / bool),
//	          deferred flag, then each learner with uvarint-counted rings,
//	          outlier entries, and clusters (moments as i64 N + f64 Mean/M2)
//	checksum  u64 FNV-1a over every preceding byte
//
// Floats travel as raw IEEE-754 bit patterns, so any value — including the
// NaNs and infinities the validator later rejects — round-trips exactly;
// the codec's job is bytes, the validator's job is meaning. Every count is
// bounds-checked against both a hard cap and the bytes remaining, so a
// crafted length cannot drive a large allocation. Decode never panics: every
// malformed input yields a *FormatError.

// snapshotMagic identifies a snapshot file independent of its name.
var snapshotMagic = [8]byte{'F', 'S', 'S', 'I', 'M', 'P', 'L', 'T'}

// Decode-side caps, mirroring core's snapshot limits: counts beyond these
// are rejected before allocation. core.AccelState.Validate re-checks the
// decoded state semantically.
const (
	maxDecodeString   = 1 << 16
	maxDecodeLearners = 1 << 12
	maxDecodeClusters = 1 << 16
	maxDecodeOutliers = 1 << 16
	maxDecodeEPOs     = 1 << 20
	maxDecodeRing     = 1 << 20
)

// FormatError reports malformed snapshot bytes: bad magic, wrong version,
// truncation, checksum mismatch, or an out-of-bounds count. Off is the byte
// offset where decoding failed.
type FormatError struct {
	Off int
	Msg string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("pltstore: malformed snapshot at byte %d: %s", e.Off, e.Msg)
}

// Encode serializes the snapshot to the versioned binary format, including
// the trailing checksum. Encoding is deterministic: equal snapshots produce
// equal bytes.
func Encode(s *Snapshot) []byte {
	e := &encoder{}
	e.raw(snapshotMagic[:])
	e.u32(FormatVersion)
	e.u64(s.LearnHash)
	e.u64(s.ReplayHash)
	e.u64(s.Family)
	e.u64(s.TransferHash)
	e.str(s.Benchmark)
	e.str(s.Key)
	e.coords(&s.Coords)
	e.stats(&s.Stats)
	e.state(s.State)
	h := fnv.New64a()
	h.Write(e.buf)
	e.u64(h.Sum64())
	return e.buf
}

// Decode parses snapshot bytes, verifying the checksum before interpreting
// anything else. It returns a *FormatError for any malformed input and never
// panics; a nil error means the bytes are structurally valid (semantic
// validity is Snapshot.Validate's job).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+4+8 {
		return nil, &FormatError{Off: len(data), Msg: "truncated header"}
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(trailer); got != want {
		return nil, &FormatError{Off: len(body), Msg: "checksum mismatch"}
	}
	d := &decoder{data: body}
	for i, b := range d.take(len(snapshotMagic), "magic") {
		if d.err == nil && b != snapshotMagic[i] {
			d.fail(i, "bad magic")
		}
	}
	if v := d.u32("version"); d.err == nil && v != FormatVersion {
		d.fail(d.off-4, fmt.Sprintf("unsupported format version %d", v))
	}
	s := &Snapshot{}
	s.LearnHash = d.u64("learn hash")
	s.ReplayHash = d.u64("replay hash")
	s.Family = d.u64("family hash")
	s.TransferHash = d.u64("transfer hash")
	s.Benchmark = d.str("benchmark")
	s.Key = d.str("key")
	d.coords(&s.Coords)
	d.stats(&s.Stats)
	s.State = d.state()
	if d.err == nil && d.off != len(d.data) {
		d.fail(d.off, "trailing data")
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// ---------------------------------------------------------------- encoder

type encoder struct{ buf []byte }

func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.raw([]byte(s))
}

// coordFields lists the swept machine coordinates in wire order.
func coordFields(c *transfer.Coords) [12]*int {
	return [12]*int{
		&c.L1ISize, &c.L1IAssoc, &c.L1DSize, &c.L1DAssoc,
		&c.L2Size, &c.L2Assoc,
		&c.FetchWidth, &c.IssueWidth, &c.RetireWidth, &c.ROBSize,
		&c.MemLatency, &c.BusOccupancy,
	}
}

func (e *encoder) coords(c *transfer.Coords) {
	for _, f := range coordFields(c) {
		e.uvarint(uint64(*f))
	}
}

func (e *encoder) cacheStats(c *cache.Stats) {
	e.u64(c.Accesses)
	e.u64(c.Misses)
	e.u64(c.OSAccesses)
	e.u64(c.OSMisses)
	e.u64(c.Writebacks)
	e.u64(c.Evictions)
	e.u64(c.PollutionEv)
}

func (e *encoder) stats(st *machine.Stats) {
	e.u64(st.Cycles)
	e.u64(st.Insts)
	e.u64(st.UserInsts)
	e.u64(st.OSInsts)
	e.u64(st.Intervals)
	e.u64(st.Emulated)
	e.u64(st.EmuInsts)
	e.u64(st.PredCycles)
	e.u64(st.Pred.Cycles)
	e.u64(st.Pred.L1IMisses)
	e.u64(st.Pred.L1DMisses)
	e.u64(st.Pred.L2Misses)
	e.u64(st.Pred.L1IAccesses)
	e.u64(st.Pred.L1DAccesses)
	e.u64(st.Pred.L2Accesses)
	e.u64(st.Pred.L2Writebacks)
	e.cacheStats(&st.Mem.L1I)
	e.cacheStats(&st.Mem.L1D)
	e.cacheStats(&st.Mem.L2)
	e.u64(st.DRAM)
	e.u64(st.BrLookups)
	e.u64(st.BrMispreds)
}

func (e *encoder) moments(m stats.Moments) {
	e.i64(m.N)
	e.f64(m.Mean)
	e.f64(m.M2)
}

func (e *encoder) state(st *core.AccelState) {
	p := st.Params
	e.i64(int64(p.Strategy))
	e.f64(p.PMin)
	e.f64(p.DoC)
	e.f64(p.RangeFrac)
	e.i64(int64(p.WarmupSkip))
	e.i64(int64(p.LearnWindow))
	e.i64(int64(p.DelayedThreshold))
	e.i64(int64(p.MinEPOs))
	e.i64(int64(p.MovingWindow))
	e.f64(p.FixedRange)
	e.boolean(p.MixSignature)
	e.f64(p.WatchdogThreshold)
	e.i64(int64(p.WatchdogWindow))
	e.boolean(st.Deferred)
	e.uvarint(uint64(len(st.Learners)))
	for i := range st.Learners {
		e.learner(&st.Learners[i])
	}
}

func (e *encoder) learner(l *core.LearnerState) {
	e.buf = append(e.buf, byte(l.Service.Kind))
	e.buf = binary.LittleEndian.AppendUint16(e.buf, l.Service.Num)
	e.i64(int64(l.Phase))
	e.i64(l.Seen)
	e.i64(int64(l.WarmLeft))
	e.i64(int64(l.LearnLeft))
	e.uvarint(uint64(len(l.Ring)))
	for _, id := range l.Ring {
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(id))
	}
	e.i64(int64(l.RingPos))
	e.i64(int64(l.NextOutID))
	e.uvarint(uint64(len(l.Outliers)))
	for _, o := range l.Outliers {
		e.i64(int64(o.ID))
		e.f64(o.Centroid)
		e.i64(o.N)
		e.uvarint(uint64(len(o.EPOs)))
		for _, p := range o.EPOs {
			e.f64(p)
		}
	}
	e.uvarint(uint64(len(l.WDRing)))
	for _, v := range l.WDRing {
		e.boolean(v)
	}
	e.i64(int64(l.WDPos))
	e.i64(int64(l.WDLen))
	e.i64(int64(l.WDOut))
	e.i64(int64(l.HoldLeft))
	e.i64(int64(l.RearmSeen))
	e.i64(int64(l.RearmMatched))
	e.i64(l.Learned)
	e.i64(l.Predicted)
	e.i64(l.OutlierN)
	e.i64(l.Relearns)
	e.i64(l.Degrades)
	e.f64(l.ObsCycles)
	e.f64(l.ObsInsts)
	e.uvarint(uint64(len(l.Clusters)))
	for i := range l.Clusters {
		c := &l.Clusters[i]
		e.f64(c.Centroid)
		e.f64(c.MixCentroid[0])
		e.f64(c.MixCentroid[1])
		e.f64(c.MixCentroid[2])
		e.i64(c.N)
		e.moments(c.Perf.Cycles)
		e.moments(c.Perf.L1IM)
		e.moments(c.Perf.L1DM)
		e.moments(c.Perf.L2M)
		e.moments(c.Perf.L1IA)
		e.moments(c.Perf.L1DA)
		e.moments(c.Perf.L2A)
		e.moments(c.Perf.L2WB)
		e.moments(c.Perf.IPC)
	}
}

// ---------------------------------------------------------------- decoder

// decoder walks the checksum-verified body with a sticky error: after the
// first failure every read returns zero values, so callers can decode a
// whole structure and check err once.
type decoder struct {
	data []byte
	off  int
	err  *FormatError
}

func (d *decoder) fail(off int, msg string) {
	if d.err == nil {
		d.err = &FormatError{Off: off, Msg: msg}
	}
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.data)-d.off < n {
		d.fail(d.off, "truncated "+what)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64(what string) int64   { return int64(d.u64(what)) }
func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }
func (d *decoder) u16(what string) uint16 {
	b := d.take(2, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) boolean(what string) bool {
	b := d.take(1, what)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(d.off-1, fmt.Sprintf("invalid boolean byte %#x in %s", b[0], what))
		return false
	}
}

// uvarint reads a canonically encoded varint. Non-minimal encodings are
// rejected so that every successfully decoded snapshot re-encodes to the
// exact bytes it was read from.
func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(d.off, "truncated or overlong varint in "+what)
		return 0
	}
	var tmp [binary.MaxVarintLen64]byte
	if binary.PutUvarint(tmp[:], v) != n {
		d.fail(d.off, "non-canonical varint in "+what)
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint bounded both by a hard cap and by the bytes that
// remain (each element needs at least elemSize bytes), so a crafted count
// cannot force a large allocation.
func (d *decoder) count(what string, cap uint64, elemSize int) int {
	off := d.off
	v := d.uvarint(what)
	if d.err != nil {
		return 0
	}
	if v > cap {
		d.fail(off, fmt.Sprintf("%s count %d exceeds limit %d", what, v, cap))
		return 0
	}
	if remaining := uint64(len(d.data) - d.off); elemSize > 0 && v > remaining/uint64(elemSize) {
		d.fail(off, fmt.Sprintf("%s count %d exceeds remaining data", what, v))
		return 0
	}
	return int(v)
}

func (d *decoder) str(what string) string {
	n := d.count(what, maxDecodeString, 1)
	b := d.take(n, what)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) coords(c *transfer.Coords) {
	for _, f := range coordFields(c) {
		off := d.off
		v := d.uvarint("coords")
		if d.err != nil {
			return
		}
		if v > math.MaxInt32 {
			d.fail(off, fmt.Sprintf("sweep coordinate %d out of range", v))
			return
		}
		*f = int(v)
	}
}

func (d *decoder) cacheStats(c *cache.Stats, what string) {
	c.Accesses = d.u64(what)
	c.Misses = d.u64(what)
	c.OSAccesses = d.u64(what)
	c.OSMisses = d.u64(what)
	c.Writebacks = d.u64(what)
	c.Evictions = d.u64(what)
	c.PollutionEv = d.u64(what)
}

func (d *decoder) stats(st *machine.Stats) {
	st.Cycles = d.u64("stats")
	st.Insts = d.u64("stats")
	st.UserInsts = d.u64("stats")
	st.OSInsts = d.u64("stats")
	st.Intervals = d.u64("stats")
	st.Emulated = d.u64("stats")
	st.EmuInsts = d.u64("stats")
	st.PredCycles = d.u64("stats")
	st.Pred.Cycles = d.u64("stats")
	st.Pred.L1IMisses = d.u64("stats")
	st.Pred.L1DMisses = d.u64("stats")
	st.Pred.L2Misses = d.u64("stats")
	st.Pred.L1IAccesses = d.u64("stats")
	st.Pred.L1DAccesses = d.u64("stats")
	st.Pred.L2Accesses = d.u64("stats")
	st.Pred.L2Writebacks = d.u64("stats")
	d.cacheStats(&st.Mem.L1I, "stats")
	d.cacheStats(&st.Mem.L1D, "stats")
	d.cacheStats(&st.Mem.L2, "stats")
	st.DRAM = d.u64("stats")
	st.BrLookups = d.u64("stats")
	st.BrMispreds = d.u64("stats")
}

func (d *decoder) moments(what string) stats.Moments {
	return stats.Moments{
		N:    d.i64(what),
		Mean: d.f64(what),
		M2:   d.f64(what),
	}
}

// intRange reads an i64 that must fit the given inclusive range, converting
// to int. The codec only enforces what it needs for safe construction;
// semantic ranges are re-checked by core's validator.
func (d *decoder) intRange(what string, lo, hi int64) int {
	off := d.off
	v := d.i64(what)
	if d.err != nil {
		return 0
	}
	if v < lo || v > hi {
		d.fail(off, fmt.Sprintf("%s %d outside [%d, %d]", what, v, lo, hi))
		return 0
	}
	return int(v)
}

func (d *decoder) state() *core.AccelState {
	st := &core.AccelState{}
	st.Params.Strategy = core.Strategy(d.intRange("strategy", math.MinInt32, math.MaxInt32))
	st.Params.PMin = d.f64("params")
	st.Params.DoC = d.f64("params")
	st.Params.RangeFrac = d.f64("params")
	st.Params.WarmupSkip = d.intRange("warmup skip", math.MinInt32, math.MaxInt32)
	st.Params.LearnWindow = d.intRange("learn window", math.MinInt32, math.MaxInt32)
	st.Params.DelayedThreshold = d.intRange("delayed threshold", math.MinInt32, math.MaxInt32)
	st.Params.MinEPOs = d.intRange("min EPOs", math.MinInt32, math.MaxInt32)
	st.Params.MovingWindow = d.intRange("moving window", math.MinInt32, math.MaxInt32)
	st.Params.FixedRange = d.f64("params")
	st.Params.MixSignature = d.boolean("mix signature")
	st.Params.WatchdogThreshold = d.f64("params")
	st.Params.WatchdogWindow = d.intRange("watchdog window", math.MinInt32, math.MaxInt32)
	st.Deferred = d.boolean("deferred")
	n := d.count("learner", maxDecodeLearners, 8)
	if n > 0 {
		st.Learners = make([]core.LearnerState, n)
		for i := range st.Learners {
			d.learner(&st.Learners[i])
		}
	}
	return st
}

func (d *decoder) learner(l *core.LearnerState) {
	if b := d.take(1, "service kind"); b != nil {
		l.Service.Kind = isa.ServiceKind(b[0])
	}
	l.Service.Num = d.u16("service number")
	l.Phase = d.intRange("phase", math.MinInt32, math.MaxInt32)
	l.Seen = d.i64("seen")
	l.WarmLeft = d.intRange("warmup remaining", math.MinInt32, math.MaxInt32)
	l.LearnLeft = d.intRange("learning remaining", math.MinInt32, math.MaxInt32)
	if n := d.count("ring", maxDecodeRing, 2); n > 0 {
		l.Ring = make([]int16, n)
		for i := range l.Ring {
			l.Ring[i] = int16(d.u16("ring entry"))
		}
	}
	l.RingPos = d.intRange("ring position", math.MinInt32, math.MaxInt32)
	l.NextOutID = d.intRange("next outlier id", math.MinInt32, math.MaxInt32)
	if n := d.count("outlier", maxDecodeOutliers, 8); n > 0 {
		l.Outliers = make([]core.OutlierState, n)
		for i := range l.Outliers {
			o := &l.Outliers[i]
			o.ID = d.intRange("outlier id", math.MinInt32, math.MaxInt32)
			o.Centroid = d.f64("outlier centroid")
			o.N = d.i64("outlier count")
			if m := d.count("EPO", maxDecodeEPOs, 8); m > 0 {
				o.EPOs = make([]float64, m)
				for j := range o.EPOs {
					o.EPOs[j] = d.f64("EPO")
				}
			}
		}
	}
	if n := d.count("watchdog ring", maxDecodeRing, 1); n > 0 {
		l.WDRing = make([]bool, n)
		for i := range l.WDRing {
			l.WDRing[i] = d.boolean("watchdog ring entry")
		}
	}
	l.WDPos = d.intRange("watchdog position", math.MinInt32, math.MaxInt32)
	l.WDLen = d.intRange("watchdog fill", math.MinInt32, math.MaxInt32)
	l.WDOut = d.intRange("watchdog outliers", math.MinInt32, math.MaxInt32)
	l.HoldLeft = d.intRange("hold remaining", math.MinInt32, math.MaxInt32)
	l.RearmSeen = d.intRange("re-arm seen", math.MinInt32, math.MaxInt32)
	l.RearmMatched = d.intRange("re-arm matched", math.MinInt32, math.MaxInt32)
	l.Learned = d.i64("learned counter")
	l.Predicted = d.i64("predicted counter")
	l.OutlierN = d.i64("outlier counter")
	l.Relearns = d.i64("relearn counter")
	l.Degrades = d.i64("degrade counter")
	l.ObsCycles = d.f64("observed cycles")
	l.ObsInsts = d.f64("observed instructions")
	if n := d.count("cluster", maxDecodeClusters, 8); n > 0 {
		l.Clusters = make([]core.ClusterState, n)
		for i := range l.Clusters {
			c := &l.Clusters[i]
			c.Centroid = d.f64("cluster centroid")
			c.MixCentroid[0] = d.f64("mix centroid")
			c.MixCentroid[1] = d.f64("mix centroid")
			c.MixCentroid[2] = d.f64("mix centroid")
			c.N = d.i64("cluster count")
			c.Perf.Cycles = d.moments("cluster moments")
			c.Perf.L1IM = d.moments("cluster moments")
			c.Perf.L1DM = d.moments("cluster moments")
			c.Perf.L2M = d.moments("cluster moments")
			c.Perf.L1IA = d.moments("cluster moments")
			c.Perf.L1DA = d.moments("cluster moments")
			c.Perf.L2A = d.moments("cluster moments")
			c.Perf.L2WB = d.moments("cluster moments")
			c.Perf.IPC = d.moments("cluster moments")
		}
	}
}
