package pltstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestIndexAdvertisesOnlyValidSnapshots: the peer-facing index lists exactly
// the decodable, validated, correctly-addressed snapshots — corrupt files
// and transplanted (misnamed) files are silently omitted.
func TestIndexAdvertisesOnlyValidSnapshots(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	// A corrupt sibling: valid name, flipped byte.
	bad := Encode(snap)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(s.Path("corrupt-bench", snap.LearnHash), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// A transplanted file: valid bytes under the wrong address.
	if err := os.WriteFile(s.Path("renamed-bench", snap.LearnHash), Encode(snap), 0o644); err != nil {
		t.Fatal(err)
	}

	idx, err := s.Index()
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	if len(idx) != 1 {
		t.Fatalf("index = %+v, want exactly the one valid snapshot", idx)
	}
	e := idx[0]
	if e.Benchmark != snap.Benchmark || e.LearnHash != FormatHash(snap.LearnHash) {
		t.Errorf("index entry %+v does not describe the saved snapshot", e)
	}
	fi, _ := os.Stat(s.Path(snap.Benchmark, snap.LearnHash))
	if e.Size != fi.Size() {
		t.Errorf("index size %d, file size %d", e.Size, fi.Size())
	}
	h, err := ParseHash(e.LearnHash)
	if err != nil || h != snap.LearnHash {
		t.Errorf("ParseHash(%q) = %x, %v", e.LearnHash, h, err)
	}
}

// TestPutVerified covers the verified-install path: good bytes land loadable
// and byte-verbatim; every hostile variant is rejected with its typed error
// and leaves the store empty.
func TestPutVerified(t *testing.T) {
	snap := richSnapshot()
	good := Encode(snap)

	t.Run("good", func(t *testing.T) {
		s := Open(filepath.Join(t.TempDir(), "warm"))
		got, err := s.PutVerified(snap.Benchmark, snap.LearnHash, good)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		if !reflect.DeepEqual(got, snap) {
			t.Error("verified snapshot differs from original")
		}
		loaded, err := s.Load(snap.Benchmark, snap.LearnHash)
		if err != nil {
			t.Fatalf("load after put: %v", err)
		}
		if !reflect.DeepEqual(loaded, snap) {
			t.Error("loaded snapshot differs from original")
		}
		data, _ := os.ReadFile(s.Path(snap.Benchmark, snap.LearnHash))
		if !reflect.DeepEqual(data, good) {
			t.Error("installed bytes are not verbatim the verified bytes")
		}
	})

	reject := func(t *testing.T, bench string, hash uint64, data []byte, want error) {
		t.Helper()
		s := Open(filepath.Join(t.TempDir(), "warm"))
		_, err := s.PutVerified(bench, hash, data)
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("put = %v, want %v", err, want)
		}
		if err == nil {
			t.Fatal("hostile put succeeded")
		}
		if entries, _ := os.ReadDir(s.Dir()); len(entries) != 0 {
			t.Errorf("rejected put left %d files in the store", len(entries))
		}
	}
	t.Run("truncated", func(t *testing.T) {
		var fe *FormatError
		s := Open(filepath.Join(t.TempDir(), "warm"))
		_, err := s.PutVerified(snap.Benchmark, snap.LearnHash, good[:len(good)-9])
		if !errors.As(err, &fe) {
			t.Fatalf("truncated put = %v, want *FormatError", err)
		}
		reject(t, snap.Benchmark, snap.LearnHash, good[:len(good)-9], nil)
	})
	t.Run("flipped-byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[17] ^= 0x01
		reject(t, snap.Benchmark, snap.LearnHash, bad, nil)
	})
	t.Run("wrong-address", func(t *testing.T) {
		reject(t, snap.Benchmark, snap.LearnHash+1, good, ErrMismatch)
		reject(t, "other-bench", snap.LearnHash, good, ErrMismatch)
	})
	t.Run("oversize", func(t *testing.T) {
		huge := make([]byte, MaxSnapshotBytes+1)
		reject(t, snap.Benchmark, snap.LearnHash, huge, ErrOversize)
	})
}

func TestParseHashRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "xyz", "123", "zzzzzzzzzzzzzzzz", "0123456789abcdef0"} {
		if _, err := ParseHash(bad); err == nil {
			t.Errorf("ParseHash(%q) accepted garbage", bad)
		}
	}
	if h, err := ParseHash(FormatHash(0xdeadbeefcafef00d)); err != nil || h != 0xdeadbeefcafef00d {
		t.Errorf("round trip = %x, %v", h, err)
	}
}
