package pltstore

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
)

// richAccelState drives an accelerator through a deterministic mixed
// workload via its public sink interface, so the exported state populates
// every snapshot field: several services in different phases, clusters with
// real moments, outlier entries, and a live watchdog ring.
func richAccelState() *core.AccelState {
	p := core.DefaultParams()
	p.LearnWindow = 12
	p.WarmupSkip = 2
	p.WatchdogThreshold = 0.6
	p.WatchdogWindow = 8
	a := core.NewAccelerator(p)
	svcs := []isa.ServiceID{isa.Sys(isa.SysRead), isa.Sys(isa.SysWrite), isa.Sys(isa.SysOpen)}
	bases := []uint64{1000, 4000, 250}
	for step := 0; step < 500; step++ {
		i := step % len(svcs)
		insts := bases[i] + uint64(step%7)
		if step%23 == 0 {
			insts = bases[i]*3 + uint64(step)
		}
		svc := svcs[i]
		sig := machine.Signature{Insts: insts, Loads: insts / 4, Stores: insts / 8, Branches: insts / 5}
		detailed, _ := a.OnServiceStart(svc)
		if detailed {
			a.OnServiceEnd(svc, sig, &machine.Measurement{Insts: insts, Cycles: insts * 5})
		} else {
			a.OnServiceEnd(svc, sig, nil)
		}
	}
	return a.Export()
}

func richSnapshot() *Snapshot {
	st := richAccelState()
	lh := LearnHash("fig1-lmbench", machine.Config{}, st.Params, 0.1, "")
	return &Snapshot{
		LearnHash:  lh,
		ReplayHash: ReplayHash(lh, "fig1-lmbench/accel/L2=1048576/scale=0.1", 42),
		Benchmark:  "fig1-lmbench",
		Key:        "fig1-lmbench/accel/L2=1048576/scale=0.1",
		Stats: machine.Stats{
			Cycles: 123456789, Insts: 87654321, UserInsts: 70000000, OSInsts: 17654321,
			Intervals: 4242, Emulated: 3000, EmuInsts: 9999999, PredCycles: 22222222,
			DRAM: 1234, BrLookups: 555, BrMispreds: 44,
		},
		State: st,
	}
}

// TestEncodeDecodeRoundTrip is the codec's core contract: decode(encode(x))
// reproduces x exactly, and re-encoding reproduces the exact bytes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := richSnapshot()
	data := Encode(snap)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Errorf("decoded snapshot differs:\n got %+v\nwant %+v", got, snap)
	}
	if again := Encode(got); !bytes.Equal(data, again) {
		t.Errorf("re-encode is not byte-identical: %d vs %d bytes", len(again), len(data))
	}
}

// TestStoreRoundTrip covers the full save/load path through the filesystem,
// including the not-found case for an address that was never saved.
func TestStoreRoundTrip(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "warm"))
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := s.Load(snap.Benchmark, snap.LearnHash)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("loaded snapshot differs from saved")
	}
	if _, err := s.Load(snap.Benchmark, snap.LearnHash+1); !errors.Is(err, ErrNotFound) {
		t.Errorf("load of unsaved address = %v, want ErrNotFound", err)
	}
	if _, err := s.Load("other-bench", snap.LearnHash); !errors.Is(err, ErrNotFound) {
		t.Errorf("load of unsaved benchmark = %v, want ErrNotFound", err)
	}
}

// TestStoreSaveIsAtomic asserts no temp debris survives a successful save
// and that saving over an existing snapshot replaces it completely.
func TestStoreSaveIsAtomic(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	snap.Stats.Cycles++
	snap.ReplayHash++
	if err := s.Save(snap); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		// The cached INDEX and the quarantine dir are the only non-snapshot
		// residents the store is allowed to maintain.
		if e.Name() == IndexFileName || e.Name() == QuarantineDir {
			continue
		}
		if !strings.HasSuffix(e.Name(), ".plt") {
			t.Errorf("stray file %q left in store", e.Name())
		}
	}
	got, err := s.Load(snap.Benchmark, snap.LearnHash)
	if err != nil {
		t.Fatalf("load after re-save: %v", err)
	}
	if got.Stats.Cycles != snap.Stats.Cycles {
		t.Error("re-save did not replace the snapshot")
	}
}

// TestLoadCorrupt flips every byte of a valid snapshot file, one at a time,
// and requires each corruption to be detected (no panic, always an error —
// the checksum guarantees single-byte damage cannot pass).
func TestLoadCorrupt(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := s.Path(snap.Benchmark, snap.LearnHash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(data) > 4096 {
		stride = len(data) / 4096
	}
	for off := 0; off < len(data); off += stride {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0xff
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := s.Load(snap.Benchmark, snap.LearnHash)
		if err == nil {
			t.Fatalf("byte %d: corrupt snapshot loaded without error", off)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("byte %d: error %v is not a *FormatError", off, err)
		}
	}
}

// TestLoadTruncated requires every proper prefix of a snapshot to fail with
// a typed format error rather than a panic or a partial result.
func TestLoadTruncated(t *testing.T) {
	data := Encode(richSnapshot())
	stride := 1
	if len(data) > 2048 {
		stride = len(data) / 2048
	}
	for n := 0; n < len(data); n += stride {
		snap, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(data))
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("prefix %d: error %v is not a *FormatError", n, err)
		}
		if snap != nil {
			t.Fatalf("prefix %d: decode returned a partial snapshot alongside an error", n)
		}
	}
}

// TestLoadMismatch covers a transplanted file: valid bytes at an address
// whose (benchmark, hash) identity they do not describe.
func TestLoadMismatch(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	src := s.Path(snap.Benchmark, snap.LearnHash)
	if err := os.Rename(src, s.Path(snap.Benchmark, snap.LearnHash+7)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(snap.Benchmark, snap.LearnHash+7); !errors.Is(err, ErrMismatch) {
		t.Errorf("load of transplanted file = %v, want ErrMismatch", err)
	}
	data, err := os.ReadFile(s.Path(snap.Benchmark, snap.LearnHash+7))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path("imposter", snap.LearnHash), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("imposter", snap.LearnHash); !errors.Is(err, ErrMismatch) {
		t.Errorf("load under wrong benchmark = %v, want ErrMismatch", err)
	}
}

// TestSaveRejectsInvalid: semantically invalid state (the kind core.Import
// would refuse) never reaches disk.
func TestSaveRejectsInvalid(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	snap.State.Learners[0].Clusters[0].Centroid = math.NaN()
	if err := s.Save(snap); err == nil || !errors.Is(err, core.ErrBadState) {
		t.Errorf("save of invalid state = %v, want ErrBadState", err)
	}
	if paths, _ := s.List(""); len(paths) != 0 {
		t.Errorf("rejected save left %d files in the store", len(paths))
	}
}

// TestLoadRejectsSemanticCorruption: a snapshot whose bytes are well-formed
// (checksum intact) but whose learner state is invalid must still be
// rejected, via core's validator.
func TestLoadRejectsSemanticCorruption(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Re-encode with a poisoned centroid, bypassing Save's validation.
	bad := richSnapshot()
	bad.State.Learners[0].Clusters[0].Centroid = -1
	if err := os.WriteFile(s.Path(snap.Benchmark, snap.LearnHash), Encode(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(snap.Benchmark, snap.LearnHash); !errors.Is(err, core.ErrBadState) {
		t.Errorf("load of semantically corrupt snapshot = %v, want ErrBadState", err)
	}
}

// TestDecodedStateImports closes the loop with core: a decoded snapshot's
// state imports into a fresh accelerator and re-exports identically.
func TestDecodedStateImports(t *testing.T) {
	snap := richSnapshot()
	got, err := Decode(Encode(snap))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a := core.NewAccelerator(got.State.Params)
	if err := a.Import(got.State); err != nil {
		t.Fatalf("import of decoded state: %v", err)
	}
	if !reflect.DeepEqual(a.Export(), snap.State) {
		t.Error("decoded state does not re-export identically after import")
	}
}

// TestLearnHash pins the invalidation semantics: any configuration change
// moves the address; the machine seed alone does not (that is ReplayHash's
// job).
func TestLearnHash(t *testing.T) {
	mcfg := machine.Config{Mode: 1, WithCaches: true, Seed: 7}
	p := core.DefaultParams()
	base := LearnHash("bench", mcfg, p, 0.1, "")
	if LearnHash("bench", mcfg, p, 0.1, "") != base {
		t.Error("LearnHash is not deterministic")
	}
	reseeded := mcfg
	reseeded.Seed = 99
	if LearnHash("bench", reseeded, p, 0.1, "") != base {
		t.Error("machine seed changed LearnHash; learned state transfers across seeds")
	}
	variants := map[string]uint64{
		"benchmark": LearnHash("other", mcfg, p, 0.1, ""),
		"scale":     LearnHash("bench", mcfg, p, 0.2, ""),
		"faults":    LearnHash("bench", mcfg, p, 0.1, "flip@3"),
	}
	altCfg := mcfg
	altCfg.WithCaches = false
	variants["machine"] = LearnHash("bench", altCfg, p, 0.1, "")
	altP := p
	altP.LearnWindow = 33
	variants["params"] = LearnHash("bench", mcfg, altP, 0.1, "")
	for name, h := range variants {
		if h == base {
			t.Errorf("changing %s did not change LearnHash", name)
		}
	}
	// ReplayHash, by contrast, binds seed and key.
	r := ReplayHash(base, "k", 1)
	if ReplayHash(base, "k", 2) == r || ReplayHash(base, "k2", 1) == r || ReplayHash(base+1, "k", 1) == r {
		t.Error("ReplayHash ignored part of the run identity")
	}
}

// TestList covers benchmark filtering, deterministic order, and the
// missing-directory case.
func TestList(t *testing.T) {
	s := Open(filepath.Join(t.TempDir(), "never-created"))
	if paths, err := s.List(""); err != nil || paths != nil {
		t.Errorf("List on missing dir = (%v, %v), want (nil, nil)", paths, err)
	}
	s = Open(t.TempDir())
	a := richSnapshot()
	b := richSnapshot()
	b.Benchmark = "zz-other"
	b.LearnHash++
	for _, snap := range []*Snapshot{a, b} {
		if err := s.Save(snap); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	all, err := s.List("")
	if err != nil || len(all) != 2 {
		t.Fatalf("List(\"\") = (%v, %v), want 2 paths", all, err)
	}
	only, err := s.List("zz-other")
	if err != nil || len(only) != 1 || !strings.Contains(only[0], "zz-other") {
		t.Errorf("List(zz-other) = (%v, %v), want the one matching path", only, err)
	}
}

// TestSanitizedFilenames: hostile benchmark names cannot escape the store
// directory, and identity still verifies through the header.
func TestSanitizedFilenames(t *testing.T) {
	s := Open(t.TempDir())
	snap := richSnapshot()
	snap.Benchmark = "../evil/bench name"
	snap.ReplayHash = ReplayHash(snap.LearnHash, snap.Key, 42)
	if err := s.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := s.Path(snap.Benchmark, snap.LearnHash)
	if filepath.Dir(path) != s.Dir() {
		t.Fatalf("sanitized path %q escapes the store directory", path)
	}
	got, err := s.Load(snap.Benchmark, snap.LearnHash)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Benchmark != snap.Benchmark {
		t.Errorf("benchmark %q lost through sanitized filename", got.Benchmark)
	}
}
