package pltstore

import (
	"bytes"
	"errors"
	"math"
	"os"
	"testing"

	"fssim/internal/core"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/stats"
)

// FuzzPLTSnapshotRoundTrip checks the codec's two safety properties at once:
//
//  1. Arbitrary bytes never panic the decoder — they either decode or fail
//     with a typed *FormatError; on success, re-encoding reproduces the
//     input bytes exactly (the format has one canonical encoding).
//  2. Arbitrary snapshot *states* — derived from the fuzz input via a
//     deterministic PRNG, including NaN/Inf floats and extreme counters the
//     semantic validator would reject — survive Encode -> Decode -> Encode
//     byte-identically. The codec is bit-exact below the validation layer.
func FuzzPLTSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FSSIMPLT garbage that is not a real snapshot"))
	f.Add(Encode(richSnapshot()))
	trunc := Encode(richSnapshot())
	f.Add(trunc[:len(trunc)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: decoding arbitrary bytes is total and typed.
		snap, err := Decode(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FormatError", err)
			}
			if snap != nil {
				t.Fatal("decode returned a snapshot alongside an error")
			}
		} else {
			again := Encode(snap)
			if !bytes.Equal(again, data) {
				t.Fatalf("decoded input re-encodes to different bytes (%d vs %d)", len(again), len(data))
			}
		}

		// Property 2: a generated state round-trips bit-exactly.
		gen := fuzzSnapshot(data)
		first := Encode(gen)
		decoded, err := Decode(first)
		if err != nil {
			t.Fatalf("generated snapshot failed to decode: %v", err)
		}
		if second := Encode(decoded); !bytes.Equal(first, second) {
			t.Fatalf("generated snapshot round trip not byte-identical (%d vs %d)", len(first), len(second))
		}
	})
}

// fuzzRand is a tiny deterministic PRNG (splitmix64) seeded from fuzz input,
// so generated states are reproducible from the corpus entry alone.
type fuzzRand struct{ s uint64 }

func (r *fuzzRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRand) intn(n int) int { return int(r.next() % uint64(n)) }

// f64 returns an arbitrary bit pattern as a float — NaNs, infinities, and
// denormals included. The codec must carry all of them.
func (r *fuzzRand) f64() float64 { return math.Float64frombits(r.next()) }

// fuzzSnapshot builds a structurally encodable (not necessarily semantically
// valid) snapshot from the input bytes. Integer fields that the decoder
// range-checks stay within int32; everything else is unconstrained.
func fuzzSnapshot(data []byte) *Snapshot {
	r := &fuzzRand{s: 0x5eed}
	for _, b := range data {
		r.s = r.s*131 + uint64(b)
	}
	str := func(maxLen int) string {
		n := r.intn(maxLen + 1)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.next())
		}
		return string(b)
	}
	i32 := func() int { return int(int32(r.next())) }
	snap := &Snapshot{
		LearnHash:  r.next(),
		ReplayHash: r.next(),
		Benchmark:  str(24),
		Key:        str(48),
		State:      &core.AccelState{},
	}
	snap.Stats = machine.Stats{
		Cycles: r.next(), Insts: r.next(), UserInsts: r.next(), OSInsts: r.next(),
		Intervals: r.next(), Emulated: r.next(), EmuInsts: r.next(), PredCycles: r.next(),
		Pred: machine.Prediction{
			Cycles: r.next(), L1IMisses: r.next(), L1DMisses: r.next(), L2Misses: r.next(),
			L1IAccesses: r.next(), L1DAccesses: r.next(), L2Accesses: r.next(), L2Writebacks: r.next(),
		},
		DRAM: r.next(), BrLookups: r.next(), BrMispreds: r.next(),
	}
	snap.Stats.Mem.L1I.Accesses = r.next()
	snap.Stats.Mem.L1D.Misses = r.next()
	snap.Stats.Mem.L2.Writebacks = r.next()
	st := snap.State
	st.Params = core.Params{
		Strategy: core.Strategy(i32()), PMin: r.f64(), DoC: r.f64(), RangeFrac: r.f64(),
		WarmupSkip: i32(), LearnWindow: i32(), DelayedThreshold: i32(), MinEPOs: i32(),
		MovingWindow: i32(), FixedRange: r.f64(), MixSignature: r.intn(2) == 1,
		WatchdogThreshold: r.f64(), WatchdogWindow: i32(),
	}
	st.Deferred = r.intn(2) == 1
	for i, n := 0, r.intn(4); i < n; i++ {
		l := core.LearnerState{
			Service:   isa.ServiceID{Kind: isa.ServiceKind(r.next()), Num: uint16(r.next())},
			Phase:     i32(),
			Seen:      int64(r.next()),
			WarmLeft:  i32(),
			LearnLeft: i32(),
			RingPos:   i32(),
			NextOutID: i32(),
			WDPos:     i32(), WDLen: i32(), WDOut: i32(),
			HoldLeft: i32(), RearmSeen: i32(), RearmMatched: i32(),
			Learned: int64(r.next()), Predicted: int64(r.next()), OutlierN: int64(r.next()),
			Relearns: int64(r.next()), Degrades: int64(r.next()),
			ObsCycles: r.f64(), ObsInsts: r.f64(),
		}
		if n := r.intn(6); n > 0 {
			l.Ring = make([]int16, n)
			for j := range l.Ring {
				l.Ring[j] = int16(r.next())
			}
		}
		if n := r.intn(4); n > 0 {
			l.WDRing = make([]bool, n)
			for j := range l.WDRing {
				l.WDRing[j] = r.intn(2) == 1
			}
		}
		for j, m := 0, r.intn(3); j < m; j++ {
			o := core.OutlierState{ID: i32(), Centroid: r.f64(), N: int64(r.next())}
			for k, e := 0, r.intn(3); k < e; k++ {
				o.EPOs = append(o.EPOs, r.f64())
			}
			l.Outliers = append(l.Outliers, o)
		}
		for j, m := 0, r.intn(3); j < m; j++ {
			c := core.ClusterState{
				Centroid:    r.f64(),
				MixCentroid: [3]float64{r.f64(), r.f64(), r.f64()},
				N:           int64(r.next()),
			}
			c.Perf.Cycles = stats.Moments{N: int64(r.next()), Mean: r.f64(), M2: r.f64()}
			c.Perf.IPC = stats.Moments{N: int64(r.next()), Mean: r.f64(), M2: r.f64()}
			c.Perf.L2WB = stats.Moments{N: int64(r.next()), Mean: r.f64(), M2: r.f64()}
			l.Clusters = append(l.Clusters, c)
		}
		st.Learners = append(st.Learners, l)
	}
	return snap
}

// FuzzTornSnapshot feeds arbitrary bytes — seeded with torn, truncated, and
// bit-flipped prefixes of a valid encoding — through the startup recovery
// sweep as the on-disk content of a plausible snapshot address. The sweep
// must never panic, never leave an unloadable file in the load path, and
// never import anything but a bit-exact valid snapshot; everything else is
// quarantined or ignored.
func FuzzTornSnapshot(f *testing.F) {
	ref := richSnapshot()
	valid := Encode(ref)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)
	tornFlip := append([]byte(nil), valid[:2*len(valid)/3]...)
	tornFlip[len(tornFlip)-1] ^= 0x01
	f.Add(tornFlip)

	bench, lh := ref.Benchmark, ref.LearnHash
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s := Open(dir)
		if err := os.WriteFile(s.Path(bench, lh), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		got, lerr := s.Load(bench, lh)
		switch {
		case lerr == nil:
			// Imported: must be the bit-exact valid bytes, never a torn
			// variant that happened to slip through.
			if !bytes.Equal(Encode(got), data) {
				t.Fatalf("recovery imported bytes that differ from the file")
			}
			if rep.Quarantined != 0 {
				t.Fatalf("valid snapshot counted as quarantined: %+v", rep)
			}
		case errors.Is(lerr, ErrNotFound):
			// Quarantined or ignored: the file must be out of the load path
			// and counted.
			if rep.Quarantined != 1 {
				t.Fatalf("rejected bytes not counted: %+v", rep)
			}
		default:
			t.Fatalf("file survived the sweep but fails load: %v", lerr)
		}
	})
}
