package kernel

import (
	"testing"

	"fssim/internal/isa"
	"fssim/internal/machine"
)

func newTestKernel(mode machine.SimMode) (*machine.Machine, *Kernel) {
	cfg := machine.DefaultConfig()
	cfg.Mode = mode
	m := machine.New(cfg)
	k := New(m, DefaultTunables())
	return m, k
}

func TestSpawnAndRun(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	order := []int{}
	k.Spawn("a", func(p *Proc) {
		p.U.Ops(100)
		order = append(order, 1)
	})
	k.Spawn("b", func(p *Proc) {
		p.U.Ops(100)
		order = append(order, 2)
	})
	k.Run()
	if len(order) != 2 {
		t.Fatalf("threads run: %v", order)
	}
}

func TestNanosleepAdvancesTime(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	k.Spawn("sleeper", func(p *Proc) {
		p.U.Ops(10)
		p.Nanosleep(250_000)
		p.U.Ops(10)
	})
	k.Run()
	if m.Now() < 250_000 {
		t.Fatalf("nanosleep did not advance time: %d", m.Now())
	}
}

func TestTimerTicksAndPreemption(t *testing.T) {
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	tun := DefaultTunables()
	tun.TimerPeriod = 40_000
	tun.Quantum = 2
	k := New(m, tun)
	// Two CPU-bound threads long enough to span several quanta.
	body := func(p *Proc) {
		p.U.Loop(40000, func(int) { p.U.Ops(31) })
	}
	k.Spawn("cpu1", body)
	k.Spawn("cpu2", body)
	k.Run()
	if k.Ticks() == 0 {
		t.Fatal("timer never fired")
	}
	if k.ContextSwitches() == 0 {
		t.Fatal("CPU-bound threads were never preempted")
	}
	st := m.Stats()
	if st.Intervals < k.Ticks() {
		t.Errorf("intervals %d < ticks %d", st.Intervals, k.Ticks())
	}
}

func TestFileReadWrite(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	k.FS().MustCreate("/data/file.bin", 10000)
	var got1, got2, got3 int
	k.Spawn("reader", func(p *Proc) {
		fd := p.Open("/data/file.bin")
		if fd < 0 {
			t.Error("open failed")
			return
		}
		got1 = p.Read(fd, p.Scratch(), 4096)
		got2 = p.Read(fd, p.Scratch(), 4096)
		got3 = p.Read(fd, p.Scratch(), 4096)
		if p.Read(fd, p.Scratch(), 4096) != 0 {
			t.Error("read past EOF returned data")
		}
		p.Close(fd)
	})
	k.Run()
	if got1 != 4096 || got2 != 4096 || got3 != 10000-8192 {
		t.Fatalf("reads = %d, %d, %d", got1, got2, got3)
	}
}

func TestPageCacheHitsAfterFirstRead(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	k.FS().MustCreate("/data/f", 32<<10)
	k.Spawn("r", func(p *Proc) {
		fd := p.Open("/data/f")
		for p.Read(fd, p.Scratch(), 8192) > 0 {
		}
		p.Close(fd)
		missesAfterFirst := k.FS().PageMisses
		fd = p.Open("/data/f")
		for p.Read(fd, p.Scratch(), 8192) > 0 {
		}
		p.Close(fd)
		if k.FS().PageMisses != missesAfterFirst {
			t.Errorf("second pass took %d extra page misses",
				k.FS().PageMisses-missesAfterFirst)
		}
		if k.FS().PageHits == 0 {
			t.Error("no page-cache hits recorded")
		}
	})
	k.Run()
}

func TestDiskIRQsOnColdReads(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	k.FS().MustCreate("/data/cold", 64<<10)
	sawDisk := false
	m.SetObserver(func(r machine.IntervalRecord) {
		if r.Service == isa.Irq(isa.IrqDisk) {
			sawDisk = true
		}
	})
	k.Spawn("r", func(p *Proc) {
		fd := p.Open("/data/cold")
		p.Read(fd, p.Scratch(), 4096)
		p.Close(fd)
	})
	k.Run()
	if k.disk.Requests == 0 {
		t.Fatal("no disk requests for cold file")
	}
	_ = sawDisk // the completion may fold into the blocked read interval
}

func TestLookupMissingFile(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	k.Spawn("r", func(p *Proc) {
		if p.Open("/no/such/file") >= 0 {
			t.Error("open of missing file succeeded")
		}
		if p.Stat64("/nope") {
			t.Error("stat of missing file succeeded")
		}
	})
	k.Run()
}

func TestGetdentsAndChdir(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	for i := 0; i < 5; i++ {
		k.FS().MustCreate("/dir/sub/f"+string(rune('a'+i)), 100)
	}
	var names []string
	k.Spawn("ls", func(p *Proc) {
		if !p.Chdir("/dir/sub") {
			t.Error("chdir failed")
			return
		}
		fd := p.Open(".")
		for {
			ents := p.Getdents64(fd, p.Scratch(), 2)
			if len(ents) == 0 {
				break
			}
			for _, e := range ents {
				names = append(names, e.Name)
			}
		}
		p.Close(fd)
		p.Chdir("..")
		if p.Cwd() != "/dir" {
			t.Errorf("cwd = %q after ..", p.Cwd())
		}
	})
	k.Run()
	if len(names) != 5 {
		t.Fatalf("getdents returned %d entries", len(names))
	}
}

func TestDevNull(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	k.FS().MustDevNull("/dev/null")
	k.Spawn("w", func(p *Proc) {
		fd := p.Open("/dev/null")
		p.Write(fd, p.Scratch(), 100000)
		if p.Read(fd, p.Scratch(), 10) != 0 {
			t.Error("/dev/null read returned data")
		}
		p.Close(fd)
	})
	k.Run()
	if k.FS().Writebacks != 0 && len(k.FS().dirty) != 0 {
		t.Error("/dev/null writes dirtied pages")
	}
}

func TestSocketsEndToEnd(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	delivered := 0
	var got int
	k.Spawn("server", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		cfd := p.Accept(lfd)
		got = p.Read(cfd, p.Scratch(), 4096)
		p.Send(cfd, p.Scratch(), 20<<10)
		// Drain in-flight deliveries before the simulation ends.
		p.Nanosleep(40 * k.tun.NetPerKB)
		p.Close(cfd)
	})
	m.Schedule(100, func() {
		conn := k.Net().InjectConnect(listener, func(n int) { delivered += n }, nil)
		m.ScheduleAfter(500, func() { k.Net().InjectData(conn, 300) })
	})
	k.Run()
	if got != 300 {
		t.Fatalf("server received %d bytes", got)
	}
	if delivered != 20<<10 {
		t.Fatalf("client received %d bytes", delivered)
	}
}

func TestSendWindowBlocks(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	received := 0
	sock := k.Net().NewExternalConn(func(n int) { received += n })
	start := uint64(0)
	k.Spawn("sender", func(p *Proc) {
		fd := p.Connect(sock)
		start = m.Now()
		// 256KB >> the 64KB send buffer: must block on the window.
		for i := 0; i < 32; i++ {
			p.Send(fd, p.Scratch(), 8<<10)
		}
		// Drain in-flight deliveries before the simulation ends.
		p.Nanosleep(64 * k.tun.NetPerKB * 3)
		p.Close(fd)
	})
	k.Run()
	if received != 256<<10 {
		t.Fatalf("sink received %d", received)
	}
	elapsed := m.Now() - start
	// At NetPerKB cycles/KB the link alone needs 256*NetPerKB cycles.
	if min := 256 * k.tun.NetPerKB; elapsed < min {
		t.Errorf("transfer took %d cycles, want >= link serialization %d", elapsed, min)
	}
}

func TestPollWakes(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	polled := -1
	k.Spawn("poller", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		polled = p.Poll(lfd)
	})
	m.Schedule(50_000, func() {
		k.Net().InjectConnect(listener, nil, nil)
	})
	k.Run()
	if polled < 0 {
		t.Fatal("poll never returned ready")
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	sem := k.NewSemaphore()
	inside, maxInside := 0, 0
	body := func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Semop(sem, true)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.U.Ops(2000) // long enough for timer preemption attempts
			inside--
			p.Semop(sem, false)
			p.U.Ops(500)
		}
	}
	for i := 0; i < 3; i++ {
		k.Spawn("worker", body)
	}
	k.Run()
	if maxInside != 1 {
		t.Fatalf("semaphore admitted %d holders", maxInside)
	}
}

func TestPageFaultsOnHeap(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	faults := 0
	m.SetObserver(func(r machine.IntervalRecord) {
		if r.Service == isa.Exc(isa.ExcPageFault) {
			faults++
		}
	})
	var procFaults uint64
	k.Spawn("faulter", func(p *Proc) {
		base := p.Brk(64 << 10) // 16 pages
		for i := uint64(0); i < 16; i++ {
			p.U.Store(base+i*4096, 8)
		}
		// Second touch: no faults.
		for i := uint64(0); i < 16; i++ {
			p.U.Load(base+i*4096, 8, 0)
		}
		procFaults = p.Faults()
	})
	k.Run()
	if faults != 16 || procFaults != 16 {
		t.Fatalf("faults = %d (observer) / %d (proc), want 16", faults, procFaults)
	}
}

func TestCloneWaitpidExit(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	childRan := false
	k.Spawn("parent", func(p *Proc) {
		child := p.Clone("child", func(cp *Proc) {
			cp.U.Ops(500)
			childRan = true
			cp.ExitGroup()
		})
		p.Waitpid(child)
		if !childRan {
			t.Error("waitpid returned before child exit")
		}
	})
	k.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestExecveReadsBinary(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	k.FS().MustCreate("/bin/tool", 16<<10)
	k.Spawn("execer", func(p *Proc) {
		p.Execve("/bin/tool")
	})
	k.Run()
	if k.FS().PageMisses == 0 {
		t.Fatal("execve read no binary pages")
	}
}

func TestAppOnlyNoTimer(t *testing.T) {
	_, k := newTestKernel(machine.AppOnly)
	k.Spawn("w", func(p *Proc) {
		p.U.Loop(10000, func(int) { p.U.Ops(31) })
	})
	k.Run()
	if k.Ticks() != 0 {
		t.Fatalf("timer ran %d times in App-Only mode", k.Ticks())
	}
}

func TestWriteDirtyAndFlush(t *testing.T) {
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	tun := DefaultTunables()
	tun.TimerPeriod = 40_000 // fast ticks so the pdflush interval is reached
	k := New(m, tun)
	k.FS().MustCreate("/var/log/app.log", 0)
	k.Spawn("logger", func(p *Proc) {
		fd := p.Open("/var/log/app.log")
		for i := 0; i < 200; i++ {
			p.Write(fd, p.Scratch(), 256)
			p.U.Loop(800, func(int) { p.U.Ops(15) }) // let timer ticks pass
		}
		p.Close(fd)
	})
	k.Run()
	if k.FS().Writebacks == 0 {
		t.Fatal("periodic writeback never flushed dirty pages")
	}
}

func TestIntervalFoldingAcrossBlockedSyscall(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	k.FS().MustCreate("/data/big", 8<<10)
	types := map[isa.ServiceID]int{}
	m.SetObserver(func(r machine.IntervalRecord) { types[r.Service]++ })
	k.Spawn("r", func(p *Proc) {
		fd := p.Open("/data/big")
		p.Read(fd, p.Scratch(), 8<<10) // cold: blocks on the disk
		p.Close(fd)
	})
	k.Run()
	if types[isa.Sys(isa.SysRead)] == 0 {
		t.Fatal("no sys_read interval observed")
	}
}
