// Package kernel implements the simulated operating system: a Linux-2.6-like
// kernel with a system-call table, interrupt handling, a VFS with dentry and
// page caches, a block device, a TCP-like socket layer, demand paging, and a
// preemptive round-robin scheduler over guest threads.
//
// Every handler executes a real kernel-mode instruction stream over kernel
// data structures at stable simulated addresses, so a service's dynamic
// instruction count and cache behavior depend on (a) the parameters the
// application passes, (b) the state the handler accumulated across previous
// invocations (page cache, dentry cache, socket buffers, run queues), and
// (c) asynchronous external events — exactly the three sources of behavior
// variation the paper's characterization identifies (§3).
package kernel

import (
	"fmt"

	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/memsim"
	"fssim/internal/trace"
)

// Tunables controls the kernel's device timings and scheduler quantum, in
// core cycles. The defaults are scaled down from realistic hardware so that
// benchmark runs of a few million instructions experience realistic *rates*
// of timer ticks and I/O completions (see EXPERIMENTS.md, scaling notes).
type Tunables struct {
	TimerPeriod    uint64 // cycles between local APIC timer ticks
	Quantum        int    // timer ticks per scheduling quantum
	DiskSeek       uint64 // cycles of per-request positioning latency
	DiskPerPage    uint64 // additional cycles per 4KB page transferred
	NetRTT         uint64 // client<->server round-trip cycles
	NetPerKB       uint64 // serialization cycles per KB on the link
	ReadaheadPages int    // pages fetched per block read beyond the demand page
}

// DefaultTunables returns the standard scaled device model.
func DefaultTunables() Tunables {
	return Tunables{
		TimerPeriod: 300_000,
		Quantum:     4,
		DiskSeek:    60_000,
		DiskPerPage: 4_000,
		NetRTT:      24_000,
		// Fast-LAN link: 1KB serializes in ~800 core cycles. This sits in
		// the regime the paper's testbed occupied: CPU and memory-system
		// work per request is on the critical path (so L2 capacity matters,
		// Fig 2), while bulk transfers still pace the socket workloads.
		NetPerKB:       800,
		ReadaheadPages: 7,
	}
}

// Kernel is the simulated OS instance for one machine.
type Kernel struct {
	m   *machine.Machine
	e   machine.Emitter
	tun Tunables

	code *machine.CodeMap
	fn   kernelText // entry addresses of kernel routines
	heap *memsim.Arena

	sched *Scheduler
	fs    *FS
	disk  *Disk
	net   *Net

	// Global kernel variables that hot paths touch (jiffies, xtime, ...).
	varJiffies uint64
	varXtime   uint64
	varRunq    uint64

	timerOn bool
	ticks   uint64

	// opTimer dispatches timer ticks through the machine's event jump
	// table: the periodic rescheduling of the tick carries no closure, so
	// the timer contributes zero steady-state allocations (see
	// machine.ScheduleOp).
	opTimer machine.EventOp

	// Sleep-wakeup slab: SleepCycles parks threads on pooled wait queues
	// addressed by slot index, so a sleep schedules an op event with the
	// slot as payload instead of allocating a queue and a closure per call.
	sleepers  []*WaitQueue
	sleepFree []int32
	opSleep   machine.EventOp

	// Pre-resolved trace instruments. When the machine carries no recorder
	// these are nil and every method call is a guarded no-op, so the hot
	// paths pay one nil check rather than a map lookup.
	trcTicks *trace.Counter
	trcIRQs  *trace.Counter
	trcCtxsw *trace.Counter
	trcRunq  *trace.Gauge
}

// kernelText holds the simulated entry addresses of kernel functions, so
// repeated executions of a handler replay the same I-cache lines.
type kernelText struct {
	syscallEntry, syscallExit           uint64
	irqEntry, irqExit, timerTick        uint64
	schedule, contextSwitch             uint64
	pathLookup, dcacheMiss              uint64
	vfsRead, vfsWrite, readpage         uint64
	radixLookup, copyUser               uint64
	blockSubmit, blockDone              uint64
	tcpSendmsg, tcpRecvmsg, netRx, poll uint64
	doFork, doExecve, doExit, doWait    uint64
	pageFault, brk, mmap                uint64
	semop, gettimeofday, fcntl, ioctl   uint64
	openPath, closeFd, statPath         uint64
	getdents, lseek                     uint64
}

// New builds a kernel on m with the given tunables.
func New(m *machine.Machine, tun Tunables) *Kernel {
	k := &Kernel{
		m:    m,
		e:    m.Emitter(),
		tun:  tun,
		code: machine.NewCodeMap(machine.KernelCodeBase),
		heap: m.Lay.KernelHeap,
	}
	f := &k.fn
	c := k.code
	f.syscallEntry = c.Fn(256)
	f.syscallExit = c.Fn(192)
	f.irqEntry = c.Fn(256)
	f.irqExit = c.Fn(192)
	f.timerTick = c.Fn(512)
	f.schedule = c.Fn(768)
	f.contextSwitch = c.Fn(512)
	f.pathLookup = c.Fn(640)
	f.dcacheMiss = c.Fn(512)
	f.vfsRead = c.Fn(768)
	f.vfsWrite = c.Fn(768)
	f.readpage = c.Fn(512)
	f.radixLookup = c.Fn(256)
	f.copyUser = c.Fn(256)
	f.blockSubmit = c.Fn(512)
	f.blockDone = c.Fn(512)
	f.tcpSendmsg = c.Fn(1024)
	f.tcpRecvmsg = c.Fn(768)
	f.netRx = c.Fn(1024)
	f.poll = c.Fn(512)
	f.doFork = c.Fn(1024)
	f.doExecve = c.Fn(1536)
	f.doExit = c.Fn(768)
	f.doWait = c.Fn(384)
	f.pageFault = c.Fn(640)
	f.brk = c.Fn(256)
	f.mmap = c.Fn(384)
	f.semop = c.Fn(384)
	f.gettimeofday = c.Fn(128)
	f.fcntl = c.Fn(192)
	f.ioctl = c.Fn(256)
	f.openPath = c.Fn(512)
	f.closeFd = c.Fn(320)
	f.statPath = c.Fn(448)
	f.getdents = c.Fn(640)
	f.lseek = c.Fn(128)

	k.varJiffies = k.heap.Alloc(64)
	k.varXtime = k.heap.Alloc(64)
	k.varRunq = k.heap.Alloc(256)

	reg := m.Trace().Metrics()
	k.trcTicks = reg.Counter("kernel.ticks")
	k.trcIRQs = reg.Counter("kernel.irqs")
	k.trcCtxsw = reg.Counter("kernel.ctxsw")
	k.trcRunq = reg.Gauge("kernel.runq")

	k.sched = newScheduler(k)
	k.fs = newFS(k)
	k.disk = newDisk(k)
	k.net = newNet(k)

	k.opTimer = m.RegisterOp(func(_, _ uint64) { k.timerFire() })
	k.opSleep = m.RegisterOp(k.sleepWake)
	k.disk.op = m.RegisterOp(k.disk.complete)
	k.net.opDeliver = m.RegisterOp(k.net.deliver)

	m.SetIRQHandler(k.handleIRQ)
	return k
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *FS { return k.fs }

// Net returns the kernel's network stack.
func (k *Kernel) Net() *Net { return k.net }

// Disk returns the kernel's block device.
func (k *Kernel) Disk() *Disk { return k.disk }

// InjectIRQ delivers a spurious interrupt on the given vector, as fault
// injection uses to model IRQ storms. Event-callback context only, like the
// device-side Inject* entry points.
func (k *Kernel) InjectIRQ(vector uint16) { k.handleIRQ(vector) }

// SetSchedJitter opens a scheduler-jitter window until the given cycle:
// quanta expire on every timer tick and schedule() walks a longer path,
// shifting the timer and context-switch services' behavior points (fault
// injection).
func (k *Kernel) SetSchedJitter(until uint64) {
	if until > k.sched.jitterUntil {
		k.sched.jitterUntil = until
	}
}

// Tunables returns the kernel's device/scheduler tunables.
func (k *Kernel) Tunables() Tunables { return k.tun }

// appOnly reports whether OS work is free (App-Only simulation): device
// latencies collapse to zero and the timer does not run, modeling syscalls
// that "return instantly" when the OS is not simulated.
func (k *Kernel) appOnly() bool { return k.m.Mode() == machine.AppOnly }

// Spawn creates a guest thread executing body. Threads become runnable
// immediately and are scheduled when Run is called.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Thread {
	return k.sched.spawn(name, body)
}

// Run starts the timer and schedules threads until all of them exit. It
// returns a non-nil error when the run ended early: a guest thread panicked
// (the panic is captured, not propagated) or the machine was canceled. In
// both cases every thread goroutine has been unwound before Run returns.
func (k *Kernel) Run() error {
	if !k.appOnly() && !k.timerOn {
		k.timerOn = true
		k.m.ScheduleOpAfter(k.tun.TimerPeriod, k.opTimer, 0, 0)
	}
	return k.sched.run()
}

// Ticks returns the number of timer interrupts delivered.
func (k *Kernel) Ticks() uint64 { return k.ticks }

// ContextSwitches returns the number of context switches performed.
func (k *Kernel) ContextSwitches() uint64 { return k.sched.Switches() }

func (k *Kernel) timerFire() {
	k.ticks++
	k.trcTicks.Inc()
	k.handleIRQ(isa.IrqTimer)
	k.m.ScheduleOpAfter(k.tun.TimerPeriod, k.opTimer, 0, 0)
}

// sleepWake is the SleepCycles op handler: wake the pooled wait queue in
// slot a and return the slot to the free list. WakeOne detaches the waiter
// before handing it to the scheduler, so the queue is reusable immediately.
func (k *Kernel) sleepWake(a, _ uint64) {
	wq := k.sleepers[a]
	wq.WakeOne()
	k.sleepFree = append(k.sleepFree, int32(a))
}

// handleIRQ is the machine's interrupt entry: it opens (or nests into) an OS
// service interval, runs the vector's handler body, performs the
// return-from-interrupt preemption check, and closes the interval.
func (k *Kernel) handleIRQ(vector uint16) {
	e := k.e
	k.trcIRQs.Inc()
	k.m.KEnter(isa.Irq(vector))
	e.Call(k.fn.irqEntry)
	// Save registers, ack the APIC, bump irq counters.
	e.Ops(14)
	e.Load(k.varJiffies, 8, 0)
	e.Store(k.varJiffies, 8)
	e.Chain(4)

	switch vector {
	case isa.IrqTimer:
		k.timerBody()
	case isa.IrqDisk:
		k.disk.irqBody()
	case isa.IrqNIC:
		k.net.irqBody()
	default:
		e.Ops(20)
	}

	e.Call(k.fn.irqExit)
	e.Ops(10)
	e.Ret()
	e.Ret()
	// Kernel preemption point on the return-to-user path.
	if k.sched.needResched && k.sched.canPreempt() {
		k.sched.reschedule(false)
	}
	e.Iret()
	k.m.KExit()
}

// timerBody is the local APIC timer tick: timekeeping, the scheduler-tick
// accounting, and occasionally the expiry of kernel timers. Its path length
// varies with run-queue occupancy and with whether the tick ends a quantum —
// one of the multi-behavior-point services visible in the paper's Fig 3
// (Int_239).
func (k *Kernel) timerBody() {
	e := k.e
	e.Call(k.fn.timerTick)
	e.Load(k.varXtime, 8, 0)
	e.Store(k.varXtime, 8)
	e.Mix(24)
	// scheduler_tick: touch the run queue and the current task.
	e.Load(k.varRunq, 8, 0)
	runnable := k.sched.runnableCount()
	for i := 0; i < runnable && i < 8; i++ {
		e.Load(k.varRunq+uint64(16+i*8), 8, 1)
		e.Ops(3)
	}
	if cur := k.sched.current; cur != nil {
		e.Load(cur.taskAddr, 8, 0)
		e.Store(cur.taskAddr+24, 8)
		e.Ops(6)
		cur.quantumLeft--
		if k.sched.jitterActive() {
			// Fault injection: jitter forces a quantum expiry on every tick.
			cur.quantumLeft = 0
		}
		if cur.quantumLeft <= 0 {
			cur.quantumLeft = k.tun.Quantum
			if k.sched.runnableCount() > 1 {
				k.sched.needResched = true
				// Longer path: recompute dynamic priority.
				e.Mix(30)
			}
		}
	}
	// Timer-wheel cascade every 8 ticks.
	if k.ticks%8 == 0 {
		e.Mix(60)
		e.ScanLines(k.varRunq, 4, 64)
	}
	// Periodic dirty-page writeback (pdflush), every 16 ticks.
	if k.ticks%16 == 0 {
		k.fs.flushDirty(16)
	}
	e.Ret()
}

// panicf aborts the simulation with a kernel diagnostic; it indicates a bug
// in a workload's use of the kernel API, not a simulated-OS condition.
func (k *Kernel) panicf(format string, args ...interface{}) {
	panic("kernel: " + fmt.Sprintf(format, args...))
}
