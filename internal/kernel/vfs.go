package kernel

import (
	"strings"

	"fssim/internal/isa"
	"fssim/internal/memsim"
)

// FS is the simulated filesystem: a tree of dentries and inodes with a
// dentry cache and per-inode page caches backed by the block device. All
// metadata and page frames live at stable simulated kernel addresses, so
// walks and copies exercise the cache hierarchy realistically.
type FS struct {
	k       *Kernel
	root    *Dentry
	nextIno int

	// Counters for diagnostics and tests.
	DentryHits, DentryMisses uint64
	PageHits, PageMisses     uint64
	Writebacks               uint64

	dirty []*Page // pages awaiting writeback
}

// Inode is a file or directory.
type Inode struct {
	ino      int
	addr     uint64
	size     int64
	isDir    bool
	children []*Dentry
	pages    map[int64]*Page
	onDisk   bool // contents must be fetched from the block device
	devNull  bool // writes are discarded, reads return EOF
}

// Size returns the file size in bytes.
func (i *Inode) Size() int64 { return i.size }

// Page is a page-cache frame.
type Page struct {
	addr     uint64
	uptodate bool
	busy     bool
	dirty    bool
	wq       *WaitQueue
}

// Dentry is a directory entry in the simulated dcache.
type Dentry struct {
	name   string
	addr   uint64
	parent *Dentry
	inode  *Inode
	cached bool
}

// Name returns the entry's name.
func (d *Dentry) Name() string { return d.name }

// Inode returns the entry's inode.
func (d *Dentry) Inode() *Inode { return d.inode }

// IsDir reports whether the entry is a directory.
func (d *Dentry) IsDir() bool { return d.inode != nil && d.inode.isDir }

// Path returns the absolute path of the dentry.
func (d *Dentry) Path() string {
	if d.parent == nil {
		return "/"
	}
	pp := d.parent.Path()
	if pp == "/" {
		return "/" + d.name
	}
	return pp + "/" + d.name
}

// File is an open file description: a filesystem file or a socket.
type File struct {
	addr   uint64
	d      *Dentry
	sock   *Socket
	pos    int64
	dirIdx int
}

// IsSocket reports whether the file is a socket.
func (f *File) IsSocket() bool { return f.sock != nil }

// Sock returns the socket behind the file (nil for filesystem files).
func (f *File) Sock() *Socket { return f.sock }

func newFS(k *Kernel) *FS {
	fs := &FS{k: k, nextIno: 1}
	fs.root = &Dentry{name: "/", addr: k.heap.AllocAligned(192, 64), cached: true}
	fs.root.inode = fs.newInode(true)
	return fs
}

func (fs *FS) newInode(isDir bool) *Inode {
	fs.nextIno++
	return &Inode{
		ino: fs.nextIno, addr: fs.k.heap.AllocAligned(576, 64),
		isDir: isDir, pages: make(map[int64]*Page),
	}
}

// Root returns the root dentry.
func (fs *FS) Root() *Dentry { return fs.root }

// --- Host-side tree construction (no simulated cost) ----------------------

// MustMkdir creates (or finds) the directory at path and returns its dentry.
// It is a setup-time host operation with no simulated cost.
func (fs *FS) MustMkdir(path string) *Dentry {
	d := fs.root
	for _, comp := range splitPath(path) {
		child := d.find(comp)
		if child == nil {
			child = fs.addChild(d, comp, true, 0)
		}
		if !child.IsDir() {
			fs.k.panicf("MustMkdir: %q is a file", comp)
		}
		d = child
	}
	return d
}

// MustCreate creates a regular file of the given size at path (creating
// parent directories) and returns its dentry. Contents start on disk: the
// first read of each page goes to the block device.
func (fs *FS) MustCreate(path string, size int64) *Dentry {
	comps := splitPath(path)
	if len(comps) == 0 {
		fs.k.panicf("MustCreate: empty path")
	}
	dir := fs.root
	if len(comps) > 1 {
		dir = fs.MustMkdir(strings.Join(comps[:len(comps)-1], "/"))
	}
	name := comps[len(comps)-1]
	if dir.find(name) != nil {
		fs.k.panicf("MustCreate: %q exists", path)
	}
	d := fs.addChild(dir, name, false, size)
	d.inode.onDisk = true
	return d
}

func (fs *FS) addChild(dir *Dentry, name string, isDir bool, size int64) *Dentry {
	d := &Dentry{
		name: name, addr: fs.k.heap.AllocAligned(192, 64),
		parent: dir, inode: fs.newInode(isDir),
	}
	d.inode.size = size
	d.inode.onDisk = true
	dir.inode.children = append(dir.inode.children, d)
	// Directory data grows one 64-byte on-disk record per entry, so a block
	// of 64 entries occupies one page that cold getdents/lookup must fetch.
	dir.inode.size += 64
	return d
}

// WarmFile marks every page of the file and its path's dentries as cached,
// modeling content that was served during a skipped warm-up phase (the
// paper skips the first 300 HTTP requests before measuring, by which point
// the document set is fully resident in the page cache).
func (fs *FS) WarmFile(d *Dentry) {
	for e := d; e != nil; e = e.parent {
		e.cached = true
	}
	i := d.inode
	pages := (i.size + memsim.PageSize - 1) / memsim.PageSize
	for idx := int64(0); idx < pages; idx++ {
		i.page(fs.k, idx).uptodate = true
	}
}

// DropCaches evicts every clean page-cache page backed by the block device
// and un-caches the dcache (the /proc/sys/vm/drop_caches analogue, used for
// fault injection): subsequent reads take the cold path — radix miss,
// ->readpage, disk I/O, blocking wait — and lookups re-read directory
// blocks. Busy (in-flight) and dirty pages are left alone, as are purely
// in-memory inodes. Returns the number of pages evicted.
func (fs *FS) DropCaches() int {
	n := 0
	var walk func(d *Dentry)
	walk = func(d *Dentry) {
		if d.parent != nil {
			d.cached = false
		}
		if i := d.inode; i != nil {
			if i.onDisk {
				for _, pg := range i.pages {
					if pg.uptodate && !pg.busy && !pg.dirty {
						pg.uptodate = false
						n++
					}
				}
			}
			for _, c := range i.children {
				walk(c)
			}
		}
	}
	walk(fs.root)
	return n
}

// MustDevNull creates a data-sink device node at path (writes discarded).
func (fs *FS) MustDevNull(path string) *Dentry {
	d := fs.MustCreate(path, 0)
	d.inode.devNull = true
	d.inode.onDisk = false
	return d
}

func (d *Dentry) find(name string) *Dentry {
	for _, c := range d.inode.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

func splitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// --- Page cache -----------------------------------------------------------

// page returns (allocating if needed) the page frame for index idx.
func (i *Inode) page(k *Kernel, idx int64) *Page {
	pg := i.pages[idx]
	if pg == nil {
		pg = &Page{addr: k.m.Lay.PageCache.AllocPage(), wq: k.NewWaitQueue()}
		if !i.onDisk {
			pg.uptodate = true
		}
		i.pages[idx] = pg
	}
	return pg
}

// flushDirty submits up to max dirty pages to the block device (the
// pdflush-style periodic writeback driven from the timer tick). Completion
// raises the disk interrupt but wakes no one.
func (fs *FS) flushDirty(max int) {
	if len(fs.dirty) == 0 {
		return
	}
	n := len(fs.dirty)
	if n > max {
		n = max
	}
	batch := fs.dirty[:n]
	fs.dirty = fs.dirty[n:]
	for _, pg := range batch {
		pg.dirty = false
	}
	fs.Writebacks += uint64(n)
	fs.k.disk.SubmitWrite(batch)
}

// radixWalk emits the page-cache radix-tree lookup for one page.
func (fs *FS) radixWalk(i *Inode) {
	e := fs.k.e
	e.Call(fs.k.fn.radixLookup)
	e.ChaseList([]uint64{i.addr + 64, i.addr + 128, i.addr + 192})
	e.Ops(5)
	e.Ret()
}

// readPages ensures pages [start, start+count) of inode i are uptodate,
// fetching missing ones from the block device (with readahead) and blocking
// until the I/O completes. It emits the corresponding kernel paths.
func (fs *FS) readPages(p *Proc, i *Inode, start int64, count int) {
	k := fs.k
	e := k.e
	maxPage := (i.size + memsim.PageSize - 1) / memsim.PageSize
	var submit []*Page
	end := start + int64(count)
	if end > maxPage {
		end = maxPage
	}
	for idx := start; idx < end; idx++ {
		fs.radixWalk(i)
		pg := i.page(k, idx)
		if pg.uptodate || pg.busy {
			if pg.uptodate {
				fs.PageHits++
			}
			continue
		}
		fs.PageMisses++
		// Allocate + insert: ->readpage path.
		e.Call(k.fn.readpage)
		e.Mix(26)
		e.Store(pg.addr, 8)
		e.Ret()
		pg.busy = true
		submit = append(submit, pg)
	}
	if len(submit) > 0 {
		// Readahead: extend the request window.
		ra := int64(k.tun.ReadaheadPages)
		for idx := end; idx < end+ra && idx < maxPage; idx++ {
			pg := i.page(k, idx)
			if !pg.uptodate && !pg.busy {
				pg.busy = true
				submit = append(submit, pg)
				e.Mix(12)
			}
		}
		k.disk.Submit(submit)
	}
	// Wait for the demand pages (not the readahead tail). The wait is a
	// lock_page-style re-check loop rather than a single sleep: DropCaches may
	// evict a page between its I/O completion and this thread resuming
	// (uptodate cleared, no I/O in flight), and a plain wait-for-uptodate
	// would then sleep forever. Waking on !busy lets the loop notice the
	// eviction and re-issue the read.
	for idx := start; idx < end; idx++ {
		pg := i.page(k, idx)
		for !pg.uptodate {
			if !pg.busy {
				// Evicted under us: re-run the ->readpage path.
				fs.PageMisses++
				e.Call(k.fn.readpage)
				e.Mix(26)
				e.Store(pg.addr, 8)
				e.Ret()
				pg.busy = true
				k.disk.Submit([]*Page{pg})
			}
			pg.wq.WaitFor(func() bool { return pg.uptodate || !pg.busy }, func() { e.Ops(8) })
		}
	}
}

// --- Path lookup ----------------------------------------------------------

// lookup resolves path relative to p's cwd (absolute paths from root),
// emitting the dcache walk; cold components read directory blocks from disk.
// Returns nil if a component is missing.
func (fs *FS) lookup(p *Proc, path string) *Dentry {
	k := fs.k
	e := k.e
	d := fs.root
	if !strings.HasPrefix(path, "/") {
		d = p.cwd
	}
	e.Call(k.fn.pathLookup)
	e.Ops(12)
	comps := splitPath(path)
	for ci, comp := range comps {
		if comp == ".." {
			e.Ops(6)
			if d.parent != nil {
				d = d.parent
			}
			continue
		}
		// Component hash + dcache hash-chain walk.
		e.Chain(4)
		e.ChaseList([]uint64{d.addr, d.addr + 64})
		child := d.find(comp)
		if child == nil {
			e.Mix(20) // negative lookup
			e.Ret()
			return nil
		}
		if !child.cached {
			fs.DentryMisses++
			// Cold dcache: read the directory block holding this entry.
			e.Call(k.fn.dcacheMiss)
			blk := int64(indexOf(d.inode.children, child) / 64)
			fs.readPages(p, d.inode, blk, 1)
			e.Mix(34) // d_alloc + d_add
			e.Ret()
			child.cached = true
		} else {
			fs.DentryHits++
			e.Load(child.addr, 8, 1)
			e.Ops(4)
		}
		e.Load(child.inode.addr, 8, 1)
		if ci < len(comps)-1 {
			e.Ops(3)
		}
		d = child
	}
	e.Ret()
	return d
}

func indexOf(children []*Dentry, d *Dentry) int {
	for i, c := range children {
		if c == d {
			return i
		}
	}
	return 0
}

// --- File system calls ----------------------------------------------------

// Open opens path and returns a descriptor, or -1 if it does not exist.
func (p *Proc) Open(path string) int {
	p.enter(isa.SysOpen)
	e := p.k.e
	d := p.k.fs.lookup(p, path)
	fd := -1
	e.Call(p.k.fn.openPath)
	e.Mix(40) // get_unused_fd + file allocation
	if d != nil {
		f := &File{addr: p.k.heap.AllocAligned(192, 64), d: d}
		e.Store(f.addr, 64)
		e.Ops(8)
		fd = p.installFd(f)
	}
	e.Ret()
	p.exitSyscall()
	return fd
}

// Close closes a descriptor.
func (p *Proc) Close(fd int) {
	p.enter(isa.SysClose)
	e := p.k.e
	f := p.file(fd)
	e.Call(p.k.fn.closeFd)
	e.Load(f.addr, 8, 0)
	e.Mix(26) // fput / release path
	if f.sock != nil {
		p.k.net.closeSocket(f.sock)
		e.Mix(40)
	}
	e.Ret()
	delete(p.fds, fd)
	p.exitSyscall()
}

// Read reads up to n bytes from fd into the user buffer at buf, returning
// the number of bytes read (0 at EOF). Sockets take the tcp_recvmsg path
// (blocking until data arrives); files take the page-cache path.
func (p *Proc) Read(fd int, buf uint64, n int) int {
	p.enter(isa.SysRead)
	e := p.k.e
	f := p.file(fd)
	var got int
	if f.sock != nil {
		got = p.k.net.recvBody(p, f.sock, buf, n)
	} else {
		e.Call(p.k.fn.vfsRead)
		e.Load(f.addr, 8, 0)
		e.Ops(14)
		got = p.k.fs.fileReadBody(p, f, buf, n)
		e.Ret()
	}
	p.exitSyscall()
	return got
}

// fileReadBody performs the page-cache read loop for a regular file.
func (fs *FS) fileReadBody(p *Proc, f *File, buf uint64, n int) int {
	i := f.d.inode
	if i.devNull || f.pos >= i.size {
		return 0
	}
	if int64(n) > i.size-f.pos {
		n = int(i.size - f.pos)
	}
	start := f.pos / memsim.PageSize
	endPage := (f.pos + int64(n) - 1) / memsim.PageSize
	fs.readPages(p, i, start, int(endPage-start)+1)
	e := fs.k.e
	// Copy page-by-page to the user buffer.
	off := f.pos % memsim.PageSize
	remaining := int64(n)
	dst := buf
	for idx := start; idx <= endPage; idx++ {
		pg := i.page(fs.k, idx)
		chunk := memsim.PageSize - off
		if chunk > remaining {
			chunk = remaining
		}
		e.Call(fs.k.fn.copyUser)
		p.touch(dst, int(chunk))
		e.CopyLines(dst, pg.addr+uint64(off), int((chunk+63)/64))
		e.Ret()
		dst += uint64(chunk)
		remaining -= chunk
		off = 0
	}
	f.pos += int64(n)
	return n
}

// Write writes n bytes from the user buffer at buf to fd. Sockets take the
// tcp_sendmsg path; files append through the page cache (dirty pages are not
// written back — the simulated workloads never sync).
func (p *Proc) Write(fd int, buf uint64, n int) int {
	p.enter(isa.SysWrite)
	e := p.k.e
	f := p.file(fd)
	if f.sock != nil {
		p.k.net.sendBody(p, f.sock, buf, n)
	} else {
		e.Call(p.k.fn.vfsWrite)
		e.Load(f.addr, 8, 0)
		e.Ops(12)
		p.k.fs.fileWriteBody(p, f, buf, n)
		e.Ret()
	}
	p.exitSyscall()
	return n
}

// fileWriteBody appends data into the page cache.
func (fs *FS) fileWriteBody(p *Proc, f *File, buf uint64, n int) {
	i := f.d.inode
	e := fs.k.e
	if i.devNull {
		e.Ops(12) // null_write: validate and discard
		return
	}
	pos := f.pos
	remaining := int64(n)
	src := buf
	for remaining > 0 {
		idx := pos / memsim.PageSize
		off := pos % memsim.PageSize
		fs.radixWalk(i)
		pg := i.page(fs.k, idx)
		if !pg.uptodate {
			// Writing into a fresh page: no read-modify-write needed for the
			// append-only pattern our workloads use.
			pg.uptodate = true
			e.Mix(22)
		}
		chunk := memsim.PageSize - off
		if chunk > remaining {
			chunk = remaining
		}
		e.Call(fs.k.fn.copyUser)
		e.CopyLines(pg.addr+uint64(off), src, int((chunk+63)/64))
		e.Ret()
		if !pg.dirty {
			pg.dirty = true
			fs.dirty = append(fs.dirty, pg)
		}
		pos += chunk
		src += uint64(chunk)
		remaining -= chunk
	}
	f.pos = pos
	if pos > i.size {
		i.size = pos
	}
	e.Store(i.addr+16, 8)
}

// statBody emits the stat copy path for a resolved dentry.
func (p *Proc) statBody(d *Dentry) bool {
	e := p.k.e
	e.Call(p.k.fn.statPath)
	if d == nil {
		e.Mix(12)
		e.Ret()
		return false
	}
	e.Load(d.inode.addr, 8, 0)
	e.Load(d.inode.addr+64, 8, 0)
	e.Chain(5)
	e.Store(p.scratch, 64)
	e.Store(p.scratch+64, 32)
	e.Ops(10)
	e.Ret()
	return true
}

// Stat64 stats path, returning whether it exists.
func (p *Proc) Stat64(path string) bool {
	p.enter(isa.SysStat64)
	ok := p.statBody(p.k.fs.lookup(p, path))
	p.exitSyscall()
	return ok
}

// Lstat64 stats path without following symlinks (identical in this model).
func (p *Proc) Lstat64(path string) bool {
	p.enter(isa.SysLstat64)
	ok := p.statBody(p.k.fs.lookup(p, path))
	p.exitSyscall()
	return ok
}

// Fstat64 stats an open descriptor.
func (p *Proc) Fstat64(fd int) {
	p.enter(isa.SysFstat64)
	f := p.file(fd)
	var d *Dentry
	if f.sock == nil {
		d = f.d
	}
	if d != nil {
		p.statBody(d)
	} else {
		p.k.e.Mix(30)
	}
	p.exitSyscall()
}

// Dirent is one directory entry returned by Getdents64.
type Dirent struct {
	Name  string
	IsDir bool
	Size  int64
}

// Getdents64 reads up to max entries from an open directory, copying them to
// the user buffer at buf. Cold directories read their blocks from disk.
func (p *Proc) Getdents64(fd int, buf uint64, max int) []Dirent {
	p.enter(isa.SysGetdents64)
	e := p.k.e
	f := p.file(fd)
	e.Call(p.k.fn.getdents)
	e.Load(f.addr, 8, 0)
	e.Ops(16)
	var out []Dirent
	if f.d != nil && f.d.inode.isDir {
		kids := f.d.inode.children
		for len(out) < max && f.dirIdx < len(kids) {
			// Each 64-entry block of the directory is one on-disk page.
			if f.dirIdx%64 == 0 {
				p.k.fs.readPages(p, f.d.inode, int64(f.dirIdx/64), 1)
			}
			c := kids[f.dirIdx]
			e.Load(c.addr, 8, 1)
			e.Ops(6)
			p.touch(buf+uint64(len(out)*32), 32)
			e.Store(buf+uint64(len(out)*32), 32)
			out = append(out, Dirent{Name: c.name, IsDir: c.IsDir(), Size: c.inode.size})
			f.dirIdx++
			c.cached = true
		}
	}
	e.Ret()
	p.exitSyscall()
	return out
}

// Lseek repositions fd.
func (p *Proc) Lseek(fd int, pos int64) {
	p.enter(isa.SysLseek)
	f := p.file(fd)
	p.k.e.Ops(14)
	f.pos = pos
	p.exitSyscall()
}

// Chdir changes the working directory.
func (p *Proc) Chdir(path string) bool {
	p.enter(isa.SysChdir)
	d := p.k.fs.lookup(p, path)
	p.k.e.Mix(24)
	if d != nil && d.IsDir() {
		p.cwd = d
	}
	p.exitSyscall()
	return d != nil
}

// Fcntl64 performs a descriptor control operation (O_NONBLOCK toggles etc.).
func (p *Proc) Fcntl64(fd int) {
	p.enter(isa.SysFcntl64)
	e := p.k.e
	f := p.file(fd)
	e.Call(p.k.fn.fcntl)
	e.Load(f.addr, 8, 0)
	e.Chain(4)
	e.Store(f.addr+16, 8)
	e.Ops(8)
	e.Ret()
	p.exitSyscall()
}
