package kernel

import (
	"testing"

	"fssim/internal/machine"
)

func TestRecvReturnsZeroOnFIN(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	var got, afterFin int
	k.Spawn("server", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		cfd := p.Accept(lfd)
		got = p.Recv(cfd, p.Scratch(), 4096)
		afterFin = p.Recv(cfd, p.Scratch(), 4096) // FIN: returns 0
		p.Close(cfd)
	})
	m.Schedule(100, func() {
		conn := k.Net().InjectConnect(listener, nil, nil)
		m.ScheduleAfter(200, func() { k.Net().InjectData(conn, 128) })
		m.ScheduleAfter(50_000, func() { k.Net().InjectFIN(conn) })
	})
	k.Run()
	if got != 128 || afterFin != 0 {
		t.Fatalf("recv = %d then %d, want 128 then 0", got, afterFin)
	}
}

func TestRecvTruncatesToMax(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	var first, second int
	k.Spawn("server", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		cfd := p.Accept(lfd)
		first = p.Recv(cfd, p.Scratch(), 100)
		second = p.Recv(cfd, p.Scratch(), 4096)
		p.Close(cfd)
	})
	m.Schedule(100, func() {
		conn := k.Net().InjectConnect(listener, nil, nil)
		m.ScheduleAfter(200, func() { k.Net().InjectData(conn, 300) })
	})
	k.Run()
	if first != 100 || second != 200 {
		t.Fatalf("recv = %d, %d; want 100, 200", first, second)
	}
}

func TestAcceptQueueOrdering(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	var order []string
	k.Spawn("server", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		for i := 0; i < 3; i++ {
			cfd := p.Accept(lfd)
			order = append(order, p.FileSock(cfd).Meta.(string))
			p.Close(cfd)
		}
	})
	for i, name := range []string{"a", "b", "c"} {
		name := name
		m.Schedule(uint64(100+i*1000), func() {
			conn := k.Net().InjectConnect(listener, nil, nil)
			conn.Meta = name
		})
	}
	k.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("accept order %v", order)
	}
}

func TestPeerCloseCallback(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	listener := k.Net().NewListener()
	closed := false
	k.Spawn("server", func(p *Proc) {
		lfd := p.InstallSocket(listener)
		cfd := p.Accept(lfd)
		p.Close(cfd)
		p.Nanosleep(100_000) // let the close notification fire
	})
	m.Schedule(100, func() {
		k.Net().InjectConnect(listener, nil, func() { closed = true })
	})
	k.Run()
	if !closed {
		t.Fatal("onPeerClose never fired")
	}
}

func TestDoubleCloseSocketSafe(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	sock := k.Net().NewExternalConn(nil)
	k.Spawn("c", func(p *Proc) {
		fd := p.Connect(sock)
		fd2 := p.InstallSocket(sock) // second descriptor on the same socket
		p.Close(fd)
		p.Close(fd2) // must not double-notify or panic
	})
	k.Run()
}

func TestPollMultipleFds(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	l1 := k.Net().NewListener()
	l2 := k.Net().NewListener()
	ready := -1
	var fd1, fd2 int
	k.Spawn("poller", func(p *Proc) {
		fd1 = p.InstallSocket(l1)
		fd2 = p.InstallSocket(l2)
		ready = p.Poll(fd1, fd2)
	})
	// Only the second listener gets a connection.
	m.Schedule(60_000, func() { k.Net().InjectConnect(l2, nil, nil) })
	k.Run()
	if ready != fd2 {
		t.Fatalf("poll returned %d, want %d (the ready fd)", ready, fd2)
	}
}

func TestSkbSlotRotation(t *testing.T) {
	_, k := newTestKernel(machine.FullSystem)
	n := k.Net()
	a := n.skbSlot(16 << 10)
	b := n.skbSlot(16 << 10)
	if a == b {
		t.Fatal("consecutive skb slots alias")
	}
	// The cursor wraps within the pool.
	for i := 0; i < 1000; i++ {
		s := n.skbSlot(16 << 10)
		if s < n.skbBase || s >= n.skbBase+n.skbSize {
			t.Fatalf("slot %#x outside pool", s)
		}
	}
}

func TestNetCounters(t *testing.T) {
	m, k := newTestKernel(machine.FullSystem)
	sink := 0
	sock := k.Net().NewExternalConn(func(n int) { sink += n })
	k.Spawn("c", func(p *Proc) {
		fd := p.Connect(sock)
		p.Send(fd, p.Scratch(), 32<<10)
		p.Nanosleep(64 * k.tun.NetPerKB)
		p.Close(fd)
	})
	k.Run()
	if k.Net().BytesTx != 32<<10 {
		t.Fatalf("BytesTx = %d", k.Net().BytesTx)
	}
	_ = m
}
