package kernel

import (
	"fssim/internal/isa"
	"fssim/internal/machine"
)

// Net is the simulated TCP/IP stack plus NIC. Guest threads use the socket
// system calls; the external world (web clients, an iperf sink) is modeled
// by host-side traffic generators that inject packets through the NIC, which
// raises IRQ 121 (the paper's Int_121) and processes them in a
// softirq-like receive path.
//
// Transmit flow control is TCP-like: each send occupies the link for a
// serialization delay and its in-flight bytes are acknowledged one RTT
// later; senders block when the send buffer fills, exactly the pattern that
// makes iperf's socket writes multi-modal.
type Net struct {
	k          *Kernel
	nextID     int
	linkFree   uint64
	rxPending  []rxWork
	ackPending []ackWork

	// Fault injection: noise is an internal socket unsolicited burst traffic
	// lands on (no guest reader ever drains it); while Now() < lossUntil,
	// transmitted segments take lossExtra additional cycles to arrive,
	// modeling a packet-loss/retransmission window.
	noise     *Socket
	lossUntil uint64
	lossExtra uint64

	// skb slab pool: payload copies rotate through this region the way real
	// kernels cycle through slab-allocated sk_buff data, giving the network
	// path a realistic (and cache-capacity-sensitive) working set.
	skbBase uint64
	skbSize uint64
	skbCur  uint64

	PacketsRx uint64
	BytesTx   uint64
	BytesRx   uint64

	// Segment-delivery slab: sendBody schedules deliveries as op events
	// whose payload indexes this free-listed slab, replacing the per-segment
	// closure capture. Slots are recycled as soon as the delivery fires.
	delivSlab []deliv
	delivFree []int32
	opDeliver machine.EventOp
}

// deliv is one in-flight segment delivery awaiting its arrival event.
type deliv struct {
	sock  *Socket
	bytes int
}

// skbSlot returns the data area for the next nbytes of socket payload,
// advancing the rotating slab cursor.
func (n *Net) skbSlot(nbytes int) uint64 {
	sz := (uint64(nbytes) + 63) &^ 63
	if sz > n.skbSize {
		sz = n.skbSize
	}
	if n.skbCur+sz > n.skbSize {
		n.skbCur = 0
	}
	a := n.skbBase + n.skbCur
	n.skbCur += sz
	return a
}

type rxWork struct {
	conn  *Socket // new connection arriving at a listener
	sock  *Socket // data/FIN target
	bytes int
	fin   bool
}

type ackWork struct {
	sock  *Socket
	bytes int
}

// Socket is one endpoint visible to guest threads.
type Socket struct {
	net  *Net
	id   int
	addr uint64 // kernel sock struct
	buf  uint64 // skb data area

	listening bool
	acceptQ   []*Socket
	acceptWq  *WaitQueue

	rcvBytes  int
	rcvClosed bool
	rcvWq     *WaitQueue

	sndInFlight int
	sndBufMax   int
	sndWq       *WaitQueue

	closed  bool
	pollers []*WaitQueue

	// Meta carries traffic-model metadata alongside the simulated payload
	// (e.g. the requested URL), since payload bytes are not materialized.
	Meta interface{}

	// onDeliver is invoked (host-side, no simulated cost) when bytes sent by
	// the guest arrive at the external peer.
	onDeliver func(n int)
	// onPeerClose is invoked when the guest closes the socket, so external
	// traffic models can react (e.g. issue the next request).
	onPeerClose func()
}

func newNet(k *Kernel) *Net {
	// The slab arena sk_buff data rotates through is deliberately larger
	// than a 512KB L2 but close to the 1MB default: network payload is the
	// working set whose cache residency the L2 capacity studies exercise.
	const poolSize = 896 << 10
	return &Net{
		k:       k,
		skbBase: k.heap.AllocAligned(poolSize, 64),
		skbSize: poolSize,
	}
}

func (n *Net) newSocket() *Socket {
	n.nextID++
	return &Socket{
		net: n, id: n.nextID,
		addr:      n.k.heap.AllocAligned(640, 64),
		buf:       n.k.heap.AllocAligned(64<<10, 64),
		acceptWq:  n.k.NewWaitQueue(),
		rcvWq:     n.k.NewWaitQueue(),
		sndWq:     n.k.NewWaitQueue(),
		sndBufMax: 64 << 10,
	}
}

// NewListener creates a listening socket (setup-time host operation).
func (n *Net) NewListener() *Socket {
	s := n.newSocket()
	s.listening = true
	return s
}

// InstallSocket wraps a socket in a descriptor for p (host-side setup, e.g.
// a pre-opened listener inherited by a server).
func (p *Proc) InstallSocket(s *Socket) int {
	return p.installFd(&File{addr: p.k.heap.AllocAligned(192, 64), sock: s})
}

// FileSock returns the socket behind fd (nil for filesystem files).
func (p *Proc) FileSock(fd int) *Socket { return p.file(fd).sock }

// NewExternalConn creates a socket already connected to an external peer
// modeled by onDeliver (setup-time host operation; pair with Proc.Connect).
func (n *Net) NewExternalConn(onDeliver func(int)) *Socket {
	s := n.newSocket()
	s.onDeliver = onDeliver
	return s
}

// Connect performs the client-side connect path on a pre-built external
// socket and returns its descriptor (sys_socketcall).
func (p *Proc) Connect(s *Socket) int {
	p.enter(isa.SysSocketcall)
	e := p.k.e
	e.Mix(160) // socket() + tcp_v4_connect handshake bookkeeping
	e.Store(s.addr, 64)
	fd := p.installFd(&File{addr: p.k.heap.AllocAligned(192, 64), sock: s})
	if !p.k.appOnly() {
		p.k.SleepCycles(p.k.tun.NetRTT) // SYN/SYN-ACK round trip
	}
	p.exitSyscall()
	return fd
}

// notifyPollers wakes threads polling this socket.
func (s *Socket) notifyPollers() {
	for _, wq := range s.pollers {
		wq.WakeAll()
	}
	s.pollers = s.pollers[:0]
}

// --- External (traffic generator) side ------------------------------------

// InjectConnect delivers a connection request to listener l. It must be
// called from a machine event callback; the new connection's socket is
// returned so the traffic model can inject request data and receive
// deliveries via onDeliver.
func (n *Net) InjectConnect(l *Socket, onDeliver func(int), onPeerClose func()) *Socket {
	s := n.newSocket()
	s.onDeliver = onDeliver
	s.onPeerClose = onPeerClose
	n.rxPending = append(n.rxPending, rxWork{conn: s, sock: l})
	n.k.handleIRQ(isa.IrqNIC)
	return s
}

// InjectData delivers nbytes of payload to socket s (event callback context).
func (n *Net) InjectData(s *Socket, nbytes int) {
	n.rxPending = append(n.rxPending, rxWork{sock: s, bytes: nbytes})
	n.k.handleIRQ(isa.IrqNIC)
}

// InjectFIN delivers a peer close to socket s (event callback context).
func (n *Net) InjectFIN(s *Socket) {
	n.rxPending = append(n.rxPending, rxWork{sock: s, fin: true})
	n.k.handleIRQ(isa.IrqNIC)
}

// noiseSock lazily creates the internal socket fault-injected traffic lands
// on, so bursts exercise the full RX path without touching guest sockets.
func (n *Net) noiseSock() *Socket {
	if n.noise == nil {
		n.noise = n.newSocket()
	}
	return n.noise
}

// InjectNoise delivers nbytes of unsolicited inbound traffic (fault
// injection, event callback context): the NIC interrupt fires and the receive
// path runs per-MSS, but no guest thread is waiting on the data.
func (n *Net) InjectNoise(nbytes int) {
	s := n.noiseSock()
	s.rcvBytes = 0 // nothing drains the noise socket; don't accumulate
	n.InjectData(s, nbytes)
}

// InjectNoiseFIN runs the FIN receive path against the noise socket (fault
// injection): the close-processing branch of the NIC handler executes without
// tearing down any guest connection.
func (n *Net) InjectNoiseFIN() {
	s := n.noiseSock()
	s.rcvClosed = false // re-arm so every injection takes the FIN branch
	n.InjectFIN(s)
}

// SetLoss opens a packet-loss window: until cycle `until`, every transmitted
// segment arrives extra cycles late, modeling retransmission delay (fault
// injection). A later call extends or replaces the window.
func (n *Net) SetLoss(until, extra uint64) {
	n.lossUntil = until
	n.lossExtra = extra
}

// irqBody is the NIC interrupt handler: driver RX ring reaping, the
// netif_rx/TCP receive path for arrived packets, and TCP ACK processing for
// transmitted data. Path length scales with pending work, producing the
// multiple Int_121 behavior points seen in the paper's characterization.
func (n *Net) irqBody() {
	e := n.k.e
	e.Call(n.k.fn.netRx)
	e.Mix(20) // ring reap, napi poll entry
	for _, rx := range n.rxPending {
		n.PacketsRx++
		switch {
		case rx.conn != nil:
			// SYN: create the server-side sock, queue on the listener.
			e.Mix(90) // tcp_v4_syn_recv + sock alloc
			e.Store(rx.conn.addr, 64)
			l := rx.sock
			l.acceptQ = append(l.acceptQ, rx.conn)
			e.Store(l.addr+32, 8)
			l.acceptWq.WakeOne()
			l.notifyPollers()
		case rx.fin:
			e.Mix(40)
			rx.sock.rcvClosed = true
			e.Store(rx.sock.addr+40, 8)
			rx.sock.rcvWq.WakeAll()
			rx.sock.notifyPollers()
		default:
			n.BytesRx += uint64(rx.bytes)
			// Per-MSS receive processing into the socket backlog.
			mss := (rx.bytes + 1447) / 1448
			e.Mix(30 + 14*mss)
			e.Store(rx.sock.addr+48, 8)
			rx.sock.rcvBytes += rx.bytes
			rx.sock.rcvWq.WakeAll()
			rx.sock.notifyPollers()
		}
	}
	n.rxPending = n.rxPending[:0]
	for _, ack := range n.ackPending {
		e.Mix(36) // tcp_ack: clean retransmit queue, update cwnd
		e.Load(ack.sock.addr+56, 8, 1)
		ack.sock.sndInFlight -= ack.bytes
		if ack.sock.sndInFlight < 0 {
			ack.sock.sndInFlight = 0
		}
		ack.sock.sndWq.WakeAll()
	}
	n.ackPending = n.ackPending[:0]
	e.Ret()
}

// --- Guest (system call) side ----------------------------------------------

// acceptBody blocks until a connection is queued on listener s and returns
// the new connection socket.
func (n *Net) acceptBody(p *Proc, s *Socket) *Socket {
	e := n.k.e
	e.Load(s.addr+32, 8, 0)
	if len(s.acceptQ) == 0 {
		s.acceptWq.WaitFor(func() bool { return len(s.acceptQ) > 0 },
			func() { e.Mix(12) })
	}
	c := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	e.Mix(70) // sock_graft + fd setup
	e.Load(c.addr, 64, 0)
	return c
}

// recvBody blocks until data (or FIN) is available and copies up to max
// bytes to the user buffer, returning the byte count (0 on peer close).
func (n *Net) recvBody(p *Proc, s *Socket, buf uint64, max int) int {
	e := n.k.e
	e.Call(n.k.fn.tcpRecvmsg)
	e.Load(s.addr, 8, 0)
	e.Ops(16)
	if s.rcvBytes == 0 && !s.rcvClosed {
		s.rcvWq.WaitFor(func() bool { return s.rcvBytes > 0 || s.rcvClosed },
			func() { e.Mix(14) }) // sk_wait_data
	}
	got := s.rcvBytes
	if got > max {
		got = max
	}
	if got > 0 {
		s.rcvBytes -= got
		p.touch(buf, got)
		e.CopyLines(buf, s.net.skbSlot(got), (got+63)/64)
		e.Mix(24) // skb free
	}
	e.Ret()
	return got
}

// sendBody transmits n bytes from the user buffer through the TCP send path:
// copy into socket buffers, per-MSS segmentation, link serialization, and
// window-limited blocking. Delivery to the external peer and the matching
// ACK are scheduled events.
func (n *Net) sendBody(p *Proc, s *Socket, buf uint64, nbytes int) {
	k := n.k
	e := k.e
	e.Call(k.fn.tcpSendmsg)
	e.Load(s.addr, 8, 0)
	e.Ops(18)
	remaining := nbytes
	src := buf
	for remaining > 0 {
		chunk := 16 << 10
		if chunk > remaining {
			chunk = remaining
		}
		if !k.appOnly() && s.sndInFlight+chunk > s.sndBufMax {
			need := chunk
			s.sndWq.WaitFor(func() bool { return s.sndInFlight+need <= s.sndBufMax },
				func() { e.Mix(16) }) // sk_stream_wait_memory
		}
		p.touch(src, chunk)
		e.CopyLines(n.skbSlot(chunk), src, (chunk+63)/64)
		mss := (chunk + 1447) / 1448
		e.Mix(10 * mss) // tcp_push: per-segment header build + xmit
		e.Store(s.addr+56, 8)
		s.sndInFlight += chunk
		n.BytesTx += uint64(chunk)

		// Link serialization + half-RTT propagation to the peer; the ACK
		// returns after the other half.
		var arrive uint64
		now := k.m.Now()
		if k.appOnly() {
			arrive = now + 1
		} else {
			ser := uint64(chunk) * k.tun.NetPerKB / 1024
			if n.linkFree < now {
				n.linkFree = now
			}
			n.linkFree += ser
			arrive = n.linkFree + k.tun.NetRTT/2
			if now < n.lossUntil {
				// Fault-injected loss window: the segment is retransmitted.
				arrive += n.lossExtra
			}
		}
		var slot int32
		if nf := len(n.delivFree); nf > 0 {
			slot = n.delivFree[nf-1]
			n.delivFree = n.delivFree[:nf-1]
		} else {
			slot = int32(len(n.delivSlab))
			n.delivSlab = append(n.delivSlab, deliv{})
		}
		n.delivSlab[slot] = deliv{sock: s, bytes: chunk}
		k.m.ScheduleOp(arrive, n.opDeliver, uint64(slot), 0)
		src += uint64(chunk)
		remaining -= chunk
	}
	e.Ret()
}

// deliver is the segment-arrival op handler: hand the payload to the
// external peer, queue the ACK, and raise the NIC IRQ — the body the
// per-segment closure used to carry. The slab slot is recycled before the
// IRQ so a delivery that triggers more sends can reuse it immediately.
func (n *Net) deliver(a, _ uint64) {
	d := n.delivSlab[a]
	if machine.PoisonPools {
		n.delivSlab[a] = deliv{sock: nil, bytes: -1 << 30}
	}
	n.delivFree = append(n.delivFree, int32(a))
	if d.sock.onDeliver != nil {
		d.sock.onDeliver(d.bytes)
	}
	n.ackPending = append(n.ackPending, ackWork{sock: d.sock, bytes: d.bytes})
	n.k.handleIRQ(isa.IrqNIC)
}

// closeSocket tears down s (called from sys_close) and notifies the external
// peer shortly afterward.
func (n *Net) closeSocket(s *Socket) {
	if s.closed {
		return
	}
	s.closed = true
	if s.onPeerClose != nil {
		delay := n.k.tun.NetRTT / 2
		if n.k.appOnly() {
			delay = 1
		}
		cb := s.onPeerClose
		n.k.m.ScheduleAfter(delay, cb)
	}
}

// --- Socket system calls ---------------------------------------------------

// Accept accepts a connection on the listening descriptor (sys_socketcall).
func (p *Proc) Accept(fd int) int {
	p.enter(isa.SysSocketcall)
	f := p.file(fd)
	if f.sock == nil || !f.sock.listening {
		p.k.panicf("Accept on non-listening fd")
	}
	c := p.k.net.acceptBody(p, f.sock)
	nfd := p.installFd(&File{addr: p.k.heap.AllocAligned(192, 64), sock: c})
	p.exitSyscall()
	return nfd
}

// Recv receives up to max bytes (sys_socketcall).
func (p *Proc) Recv(fd int, buf uint64, max int) int {
	p.enter(isa.SysSocketcall)
	f := p.file(fd)
	got := p.k.net.recvBody(p, f.sock, buf, max)
	p.exitSyscall()
	return got
}

// Send transmits n bytes (sys_socketcall).
func (p *Proc) Send(fd int, buf uint64, nbytes int) {
	p.enter(isa.SysSocketcall)
	f := p.file(fd)
	p.k.net.sendBody(p, f.sock, buf, nbytes)
	p.exitSyscall()
}

// Writev transmits n bytes as iovcnt gathered segments (sys_writev) — the
// path web servers use for header+body responses.
func (p *Proc) Writev(fd int, buf uint64, nbytes, iovcnt int) {
	p.enter(isa.SysWritev)
	e := p.k.e
	f := p.file(fd)
	e.Ops(10 + 6*iovcnt) // iovec validation
	if f.sock != nil {
		p.k.net.sendBody(p, f.sock, buf, nbytes)
	} else {
		e.Call(p.k.fn.vfsWrite)
		p.k.fs.fileWriteBody(p, f, buf, nbytes)
		e.Ret()
	}
	p.exitSyscall()
}

// Poll blocks until one of the fds is ready (data, FIN, or a pending
// connection) and returns it (sys_poll).
func (p *Proc) Poll(fds ...int) int {
	p.enter(isa.SysPoll)
	e := p.k.e
	e.Call(p.k.fn.poll)
	sockReady := func(s *Socket) bool {
		return s == nil || s.rcvBytes > 0 || s.rcvClosed || len(s.acceptQ) > 0
	}
	readyFd := func() int {
		for _, fd := range fds {
			if sockReady(p.file(fd).sock) {
				return fd
			}
		}
		return -1
	}
	// scan emits the per-fd poll table walk and (re-)registers the poll wait
	// queue on every socket; notifyPollers clears registrations on each wake.
	wq := p.pollWq()
	scan := func() {
		for _, fd := range fds {
			f := p.file(fd)
			e.Load(f.addr, 8, 0)
			e.Ops(6)
			if s := f.sock; s != nil {
				e.Load(s.addr+48, 8, 1)
				s.pollers = append(s.pollers, wq)
				e.Ops(4)
			}
		}
		e.Mix(10)
	}
	scan()
	if readyFd() < 0 {
		wq.WaitFor(func() bool { return readyFd() >= 0 }, scan)
	}
	ready := readyFd()
	e.Ops(8)
	e.Ret()
	p.exitSyscall()
	return ready
}

// pollWq lazily allocates the per-process poll wait queue.
func (p *Proc) pollWq() *WaitQueue {
	if p.pollwq == nil {
		p.pollwq = p.k.NewWaitQueue()
	}
	return p.pollwq
}
