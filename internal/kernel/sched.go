package kernel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"

	"fssim/internal/isa"
	"fssim/internal/machine"
)

// tstate is a thread's scheduler state.
type tstate int

const (
	tRunnable tstate = iota
	tRunning
	tBlocked
	tDead
)

// Thread is one simulated kernel-scheduled thread of execution. Each thread
// runs on its own goroutine; a strict handoff protocol guarantees exactly one
// goroutine drives the machine at any moment, so the simulation stays
// single-threaded and deterministic.
type Thread struct {
	k     *Kernel
	id    int
	name  string
	body  func(*Proc)
	proc  *Proc
	state tstate

	resume chan struct{}
	parked chan struct{}

	// Saved execution context while not running.
	depth    int
	cursor   machine.Cursor
	svcStack []isa.ServiceID // services this thread is nested in

	quantumLeft int
	taskAddr    uint64 // simulated address of the task struct
	exitWaiters *WaitQueue
	// parkPC is the caller PC of the thread's last blocking park (0 =
	// preempted, not blocked). The "file:line" string is only materialized
	// on the diagnostics path, so steady-state blocking allocates nothing.
	parkPC uintptr
}

// parkSite renders the thread's last park location for diagnostics.
func (t *Thread) parkSite() string {
	if t.parkPC == 0 {
		return "preempt"
	}
	frames := runtime.CallersFrames([]uintptr{t.parkPC})
	f, _ := frames.Next()
	if f.File == "" {
		return "?"
	}
	file := f.File
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, f.Line)
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// SetEntry overrides the thread's user-code entry PC (before it first runs),
// letting threads of the same program share text — and therefore I-cache
// lines — the way forked server workers do.
func (t *Thread) SetEntry(pc uint64) { t.cursor.PC = pc }

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

func (t *Thread) pushSvc(s isa.ServiceID) { t.svcStack = append(t.svcStack, s) }
func (t *Thread) popSvc() {
	if n := len(t.svcStack); n > 0 {
		t.svcStack = t.svcStack[:n-1]
	}
}
func (t *Thread) topSvc() isa.ServiceID {
	if n := len(t.svcStack); n > 0 {
		return t.svcStack[n-1]
	}
	return isa.Sys(isa.SysSchedYield)
}

// Scheduler is a round-robin preemptive scheduler in the style of the 2.6
// O(1) scheduler, reduced to a single run queue.
type Scheduler struct {
	k           *Kernel
	threads     []*Thread
	runq        []*Thread
	current     *Thread
	needResched bool
	dead        int
	switches    uint64
	// inThread is true while a thread goroutine owns the simulation; event
	// callbacks that run on the scheduler loop (idle advances, dispatch-time
	// deliveries) must not try to context-switch.
	inThread bool
	// failure records the first guest-thread panic (or cancellation cause).
	// It is only ever written by the goroutine currently driving the machine,
	// before the handoff back to the scheduler loop, so no locking is needed.
	failure error
	// jitterUntil makes the scheduler thrash until the given cycle (fault
	// injection): quanta expire every tick and schedule() walks a longer path.
	jitterUntil uint64
}

func newScheduler(k *Kernel) *Scheduler { return &Scheduler{k: k} }

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

func (s *Scheduler) spawn(name string, body func(*Proc)) *Thread {
	t := &Thread{
		k: s.k, id: len(s.threads) + 1, name: name, body: body,
		resume: make(chan struct{}), parked: make(chan struct{}),
		state: tRunnable, quantumLeft: s.k.tun.Quantum,
		taskAddr:    s.k.heap.AllocAligned(1344, 64),
		exitWaiters: s.k.NewWaitQueue(),
	}
	t.cursor = machine.Cursor{PC: machine.UserCodeBase + uint64(t.id)*0x10000}
	t.proc = newProc(s.k, t)
	s.threads = append(s.threads, t)
	s.runq = append(s.runq, t)
	go func() {
		<-t.resume
		// A panic anywhere in the guest body (or the kernel paths it calls)
		// must not escape this goroutine: the run's recover lives on the
		// scheduler caller's goroutine and cannot see it. Record the first
		// failure and finish the thread; the scheduler loop turns it into an
		// error from Run and cancels the remaining threads.
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case threadExit: // normal guest exit
				case *machine.AbortError: // cancellation teardown
				default:
					s.fail(fmt.Errorf("thread %s: panic: %v\n%s",
						t.name, r, debug.Stack()))
				}
			}
			t.finish()
		}()
		s.k.m.AbortIfCanceled()
		t.body(t.proc)
	}()
	return t
}

// fail records the first failure; later ones (teardown collateral) are
// dropped.
func (s *Scheduler) fail(err error) {
	if s.failure == nil {
		s.failure = err
	}
}

// threadExit is the panic sentinel sys_exit_group uses to unwind a guest
// thread's Go stack back to the spawn wrapper.
type threadExit struct{}

// finish marks the thread dead and hands control back to the scheduler loop.
func (t *Thread) finish() {
	s := t.k.sched
	t.state = tDead
	s.dead++
	t.exitWaiters.WakeAll()
	t.parked <- struct{}{}
}

func (s *Scheduler) runnableCount() int {
	n := len(s.runq)
	if s.current != nil && s.current.state == tRunning {
		n++
	}
	return n
}

func (s *Scheduler) pickNext() *Thread {
	for len(s.runq) > 0 {
		t := s.runq[0]
		s.runq = s.runq[1:]
		if t.state == tRunnable {
			return t
		}
	}
	return nil
}

// run drives the simulation: it dispatches runnable threads and advances
// virtual time across idle gaps until every thread has exited. A watchdog
// aborts if the machine only ticks (timer events with no thread ever waking),
// which indicates a lost wakeup in kernel or workload code. A guest-thread
// panic or an external cancellation ends the run early: the machine is
// canceled, every surviving thread goroutine is drained, and the failure is
// returned.
func (s *Scheduler) run() error {
	idleStreak := 0
	for s.dead < len(s.threads) {
		if s.failure == nil {
			s.fail(s.k.m.Canceled())
		}
		if s.failure != nil {
			s.k.m.Cancel(s.failure)
			s.drain()
			break
		}
		t := s.pickNext()
		if t == nil {
			if !s.k.m.AdvanceIdle() {
				s.k.panicf("all threads blocked and no pending events (workload hang)")
			}
			if idleStreak++; idleStreak > 200_000 {
				s.k.panicf("livelock: %d idle advances with no runnable thread (%s)",
					idleStreak, s.describeThreads())
			}
			continue
		}
		idleStreak = 0
		s.dispatch(t)
	}
	// Close any interval left open by the final thread.
	s.k.m.SetDepth(0, isa.ServiceID{})
	// A cancellation that unwound the last surviving thread ends the loop
	// before the loop-top check can record it; fold it in so a canceled run
	// never reports success.
	if s.failure == nil {
		s.fail(s.k.m.Canceled())
	}
	return s.failure
}

// drain force-resumes every surviving thread so its goroutine observes the
// machine's cancellation (every handoff and instruction boundary checks it)
// and exits. Without this, an abandoned run would leak one parked goroutine
// per guest thread. Bounded passes: a resumed thread may re-park once in a
// fresh wait before crossing a check, but dies on its next resume.
func (s *Scheduler) drain() {
	for pass := 0; pass < 64 && s.dead < len(s.threads); pass++ {
		for _, t := range s.threads {
			if t.state == tDead {
				continue
			}
			s.current = t
			t.state = tRunning
			s.inThread = true
			t.resume <- struct{}{}
			<-t.parked
			s.inThread = false
			s.current = nil
		}
	}
}

// describeThreads summarizes thread states for hang diagnostics.
func (s *Scheduler) describeThreads() string {
	states := [...]string{"runnable", "running", "blocked", "dead"}
	out := ""
	for _, t := range s.threads {
		if out != "" {
			out += ", "
		}
		out += t.name + "=" + states[t.state] + "@" + t.parkSite()
	}
	return out
}

// dispatch installs t's context and transfers control to its goroutine until
// it parks again (blocks, is preempted, or exits).
func (s *Scheduler) dispatch(t *Thread) {
	s.current = t
	s.needResched = false
	t.state = tRunning
	s.k.m.SwapCursor(t.cursor)
	s.k.m.SetDepth(t.depth, t.topSvc())
	s.inThread = true
	t.resume <- struct{}{}
	<-t.parked
	s.inThread = false
	s.current = nil
}

// reschedule runs the schedule() kernel path on the current thread and hands
// control back to the scheduler loop. If blocked is false the thread remains
// runnable (preemption / yield); otherwise the caller has already queued it
// on a wait queue.
func (s *Scheduler) reschedule(blocked bool) {
	t := s.current
	if t == nil {
		return
	}
	s.scheduleBody()
	s.switches++
	s.k.trcCtxsw.Inc()
	s.k.trcRunq.Set(int64(s.runnableCount()))
	s.needResched = false
	if !blocked {
		t.state = tRunnable
		s.runq = append(s.runq, t)
	}
	t.depth = s.k.m.Depth()
	t.cursor = s.k.m.SwapCursor(machine.Cursor{PC: s.k.fn.schedule})
	if blocked {
		t.parkPC = callerPC(2)
	} else {
		t.parkPC = 0
	}
	t.parked <- struct{}{}
	<-t.resume
	// Resumed during teardown: unwind instead of running on.
	s.k.m.AbortIfCanceled()
}

// callerPC returns the caller's program counter without allocating; resolve
// it to "file:line" with Thread.parkSite only when diagnostics fire.
func callerPC(skip int) uintptr {
	var pcs [1]uintptr
	if runtime.Callers(skip+1, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

// jitterActive reports whether a fault-injected scheduler-jitter window is
// open (see Kernel.SetSchedJitter).
func (s *Scheduler) jitterActive() bool { return s.k.m.Now() < s.jitterUntil }

// canPreempt reports whether a context switch may be performed right now:
// only from code running on the current thread's own goroutine, and only
// while that thread is cleanly running — a thread mid-way through blocking
// (state already tBlocked) or freshly woken during its own wait-preparation
// (tRunnable) must not be preempted, or its scheduler bookkeeping would be
// clobbered; it is about to park anyway.
func (s *Scheduler) canPreempt() bool {
	return s.inThread && s.current != nil && s.current.state == tRunning
}

// scheduleBody emits the schedule() + context_switch() kernel path: run-queue
// scan, priority arithmetic, and the register/address-space switch. Its cost
// scales mildly with run-queue occupancy.
func (s *Scheduler) scheduleBody() {
	e := s.k.e
	e.Call(s.k.fn.schedule)
	e.Load(s.k.varRunq, 8, 0)
	e.Mix(18)
	n := len(s.runq)
	if n > 6 {
		n = 6
	}
	for i := 0; i < n; i++ {
		e.Load(s.runq[i].taskAddr, 8, 1)
		e.Ops(4)
	}
	e.Call(s.k.fn.contextSwitch)
	if s.current != nil {
		e.Store(s.current.taskAddr+64, 64)
		e.Load(s.current.taskAddr+128, 64, 0)
	}
	e.Mix(26)
	if s.jitterActive() {
		// Fault injection: a priority-recomputation storm lengthens every
		// schedule() while the jitter window is open.
		e.Mix(40)
		e.ScanLines(s.k.varRunq, 2, 64)
	}
	// Address-space switch: the TLBs are flushed (no-op unless the machine
	// models TLBs).
	if mem := s.k.m.Mem(); mem != nil {
		mem.FlushTLB()
	}
	e.Ret()
	e.Ret()
}

// wake moves t to the run queue if it was blocked, emitting the
// try_to_wake_up path at the caller (typically an interrupt handler).
func (s *Scheduler) wake(t *Thread) {
	if t.state != tBlocked {
		return
	}
	e := s.k.e
	e.Load(t.taskAddr, 8, 0)
	e.Ops(8)
	e.Store(s.k.varRunq+8, 8)
	e.Store(t.taskAddr+16, 8)
	t.state = tRunnable
	s.runq = append(s.runq, t)
	if s.current != nil {
		s.needResched = true
	}
}

// WaitQueue is a kernel wait queue: threads block on it and interrupt
// handlers or other threads wake them.
type WaitQueue struct {
	k       *Kernel
	addr    uint64
	waiters []*Thread
}

// NewWaitQueue allocates a wait queue with a simulated head address.
func (k *Kernel) NewWaitQueue() *WaitQueue {
	return &WaitQueue{k: k, addr: k.heap.Alloc(32)}
}

// Empty reports whether no thread is blocked on the queue.
func (wq *WaitQueue) Empty() bool { return len(wq.waiters) == 0 }

// WaitFor blocks the current thread on wq until cond holds, following the
// kernel's prepare_to_wait discipline: the thread enqueues itself and marks
// itself blocked BEFORE emitting the wait-path instructions and re-checking
// the condition. Device events fire synchronously inside instruction
// emission, so this ordering is what makes wakeups race-free: any event that
// makes cond true during the emitted instructions finds the thread already
// on the queue. emit, if non-nil, contributes the caller's wait-path cost on
// each iteration.
func (wq *WaitQueue) WaitFor(cond func() bool, emit func()) {
	k := wq.k
	s := k.sched
	t := s.current
	if t == nil {
		if cond() {
			return
		}
		k.panicf("WaitFor outside a thread with condition unsatisfied")
	}
	e := k.e
	for {
		t.state = tBlocked
		wq.waiters = append(wq.waiters, t)
		// prepare_to_wait bookkeeping; events may fire inside these
		// emissions and wake us (making state tRunnable again).
		e.Store(wq.addr, 8)
		e.Store(t.taskAddr+16, 8)
		e.Ops(6)
		if emit != nil {
			emit()
		}
		if cond() {
			// Condition already true: cancel the wait (finish_wait).
			if t.state == tBlocked {
				wq.remove(t)
			}
			t.state = tRunning
			return
		}
		if t.state != tBlocked {
			// Woken during the preparation emissions but the condition is
			// not (or no longer) true: retry without parking. The stale run
			// queue entry from the wake is discarded when popped.
			continue
		}
		s.reschedule(true)
		// Dispatched again after a wakeup: re-check the condition.
	}
}

// Sleep blocks until the next wakeup on wq (single-shot, for event-flag
// style waits where the caller loops on its own condition). Like WaitFor it
// enqueues before emitting, so a wakeup that fires during the emitted
// instructions is not lost — Sleep then returns immediately.
func (wq *WaitQueue) Sleep() {
	k := wq.k
	s := k.sched
	t := s.current
	if t == nil {
		k.panicf("Sleep outside a thread")
	}
	e := k.e
	t.state = tBlocked
	wq.waiters = append(wq.waiters, t)
	e.Store(wq.addr, 8)
	e.Store(t.taskAddr+16, 8)
	e.Ops(6)
	if t.state != tBlocked {
		// Woken during the prepare_to_wait emissions.
		t.state = tRunning
		return
	}
	s.reschedule(true)
}

func (wq *WaitQueue) remove(t *Thread) {
	for i, w := range wq.waiters {
		if w == t {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			return
		}
	}
}

// WakeOne wakes the first waiter, if any, returning whether one was woken.
// Dequeuing shifts in place rather than advancing the slice head, so the
// queue's backing array survives drain/refill cycles and steady-state
// blocking allocates nothing (queues rarely hold more than a few waiters).
func (wq *WaitQueue) WakeOne() bool {
	for len(wq.waiters) > 0 {
		t := wq.waiters[0]
		last := len(wq.waiters) - 1
		copy(wq.waiters, wq.waiters[1:])
		wq.waiters[last] = nil
		wq.waiters = wq.waiters[:last]
		if t.state == tBlocked {
			wq.k.sched.wake(t)
			return true
		}
	}
	return false
}

// WakeAll wakes every waiter.
func (wq *WaitQueue) WakeAll() {
	for wq.WakeOne() {
	}
}

// SleepCycles blocks the current thread for the given number of cycles
// (nanosleep-style). The wakeup rides an op event whose payload names a
// pooled wait queue, so steady-state sleeping allocates nothing: the queue
// is recycled the moment its wakeup fires (WakeOne detaches the waiter
// before the thread resumes).
func (k *Kernel) SleepCycles(cycles uint64) {
	if k.appOnly() || cycles == 0 {
		return
	}
	var slot int32
	if n := len(k.sleepFree); n > 0 {
		slot = k.sleepFree[n-1]
		k.sleepFree = k.sleepFree[:n-1]
	} else {
		slot = int32(len(k.sleepers))
		k.sleepers = append(k.sleepers, &WaitQueue{k: k})
	}
	wq := k.sleepers[slot]
	// Each sleep takes a fresh simulated head address, exactly as the
	// historical per-sleep NewWaitQueue did — only the host-side structure
	// is recycled, so the emitted address stream (and with it every golden
	// table) is unchanged.
	wq.addr = k.heap.Alloc(32)
	k.m.ScheduleOpAfter(cycles, k.opSleep, uint64(slot), 0)
	wq.Sleep()
}

// Yield lets the current thread give up the CPU (sys_sched_yield body).
func (k *Kernel) Yield() {
	if k.sched.current == nil {
		return
	}
	k.sched.reschedule(false)
}
