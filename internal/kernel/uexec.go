package kernel

import "fssim/internal/machine"

// UExec is the user-mode instruction emitter guest programs use. It mirrors
// machine.Emitter but routes memory operations through the process's
// demand-paging check, so first touches of heap pages take page faults like
// real applications do.
type UExec struct {
	p *Proc
	e machine.Emitter
}

// Ops emits n independent integer operations.
func (u UExec) Ops(n int) { u.e.Ops(n) }

// Chain emits n serially dependent integer operations.
func (u UExec) Chain(n int) { u.e.Chain(n) }

// Mix emits n instructions with a typical integer-code shape.
func (u UExec) Mix(n int) { u.e.Mix(n) }

// FOps emits n floating-point operations.
func (u UExec) FOps(n int) { u.e.FOps(n) }

// Div emits an integer divide.
func (u UExec) Div() { u.e.Div() }

// FDiv emits a floating-point divide.
func (u UExec) FDiv() { u.e.FDiv() }

// Load emits a load, faulting in the page if needed.
func (u UExec) Load(addr uint64, size int, dep uint8) {
	u.p.touch(addr, size)
	u.e.Load(addr, size, dep)
}

// Store emits a store, faulting in the page if needed.
func (u UExec) Store(addr uint64, size int) {
	u.p.touch(addr, size)
	u.e.Store(addr, size)
}

// Branch emits a conditional branch.
func (u UExec) Branch(taken bool, target uint64) { u.e.Branch(taken, target) }

// Call transfers control to the routine at pc.
func (u UExec) Call(pc uint64) { u.e.Call(pc) }

// Ret returns from the most recent Call.
func (u UExec) Ret() { u.e.Ret() }

// Loop runs body iters times with a backward branch per iteration.
func (u UExec) Loop(iters int, body func(i int)) { u.e.Loop(iters, body) }

// CopyLines copies n cache lines, faulting pages as needed.
func (u UExec) CopyLines(dst, src uint64, n int) {
	u.p.touch(src, n*64)
	u.p.touch(dst, n*64)
	u.e.CopyLines(dst, src, n)
}

// ScanLines sweeps n lines read-only.
func (u UExec) ScanLines(addr uint64, n int, stride uint64) {
	if stride == 0 {
		stride = 64
	}
	u.p.touch(addr, int(stride)*n)
	u.e.ScanLines(addr, n, stride)
}

// WriteLines sweeps n lines write-only.
func (u UExec) WriteLines(addr uint64, n int, stride uint64) {
	if stride == 0 {
		stride = 64
	}
	u.p.touch(addr, int(stride)*n)
	u.e.WriteLines(addr, n, stride)
}

// ChaseList performs dependent pointer chasing through nodes.
func (u UExec) ChaseList(nodes []uint64) {
	for _, a := range nodes {
		u.p.touch(a, 8)
	}
	u.e.ChaseList(nodes)
}
