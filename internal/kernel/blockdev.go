package kernel

import (
	"fssim/internal/isa"
	"fssim/internal/machine"
)

// Disk models the block device: an elevator queue with positioning latency
// plus per-page transfer time, raising IRQ 49 (the paper's Int_49) on
// completion. In App-Only simulation requests complete on the next event
// poll with negligible latency, modeling "the OS and its devices are free".
//
// Completions are dispatched through the machine's event jump table rather
// than per-request closures: busyUntil is monotonically non-decreasing, so
// requests complete in submission order and an in-flight FIFO supplies the
// request state the closure used to capture. Page lists are copied into a
// free-listed arena at submit time and recycled after the completion IRQ,
// so steady-state I/O performs zero heap allocations.
type Disk struct {
	k         *Kernel
	busyUntil uint64

	// inflight is the FIFO of submitted-but-uncompleted requests; head
	// indexes the next request to complete. completed holds requests whose
	// events fired but whose IRQ body has not yet reaped them. pagePool
	// recycles the page-list backings of reaped requests.
	inflight  []dreq
	head      int
	completed []dreq
	pagePool  [][]*Page
	op        machine.EventOp

	// Fault injection: while Now() < degradedUntil, positioning and transfer
	// latency are multiplied by degradeFactor (a latency spike).
	degradedUntil uint64
	degradeFactor float64

	Requests uint64
	Pages    uint64
}

// Degrade opens a latency-spike window: until cycle `until`, every request's
// seek and transfer latency is multiplied by factor. A later call extends or
// replaces the window (fault injection).
func (d *Disk) Degrade(until uint64, factor float64) {
	d.degradedUntil = until
	d.degradeFactor = factor
}

// latency returns the current request latency for n pages, applying any open
// degradation window. App-only runs are exempt: their devices are free by
// definition, faulted or not.
func (d *Disk) latency(n int) uint64 {
	if d.k.appOnly() {
		return 1
	}
	lat := d.k.tun.DiskSeek + d.k.tun.DiskPerPage*uint64(n)
	if d.k.m.Now() < d.degradedUntil && d.degradeFactor > 1 {
		lat = uint64(float64(lat) * d.degradeFactor)
	}
	return lat
}

type dreq struct {
	pages []*Page
}

func newDisk(k *Kernel) *Disk { return &Disk{k: k} }

// capture copies pages into a pooled backing so the caller's slice is free
// for reuse the moment Submit returns.
func (d *Disk) capture(pages []*Page) []*Page {
	var buf []*Page
	if n := len(d.pagePool); n > 0 {
		buf = d.pagePool[n-1][:0]
		d.pagePool = d.pagePool[:n-1]
	}
	return append(buf, pages...)
}

// release returns a reaped request's page backing to the pool.
func (d *Disk) release(pages []*Page) {
	if pages == nil {
		return
	}
	if machine.PoisonPools {
		full := pages[:cap(pages)]
		for i := range full {
			full[i] = nil // a stale read of a recycled entry must fail loudly
		}
	}
	d.pagePool = append(d.pagePool, pages)
}

// enqueue appends a request to the in-flight FIFO and schedules its
// completion op at the device's busy horizon.
func (d *Disk) enqueue(req dreq, at uint64) {
	if d.head > 0 && d.head == len(d.inflight) {
		d.inflight = d.inflight[:0]
		d.head = 0
	}
	d.inflight = append(d.inflight, req)
	d.k.m.ScheduleOp(at, d.op, 0, 0)
}

// complete is the disk's event-op handler: move the oldest in-flight
// request to the completed list and raise the completion IRQ, exactly as
// the per-request closure used to.
func (d *Disk) complete(_, _ uint64) {
	req := d.inflight[d.head]
	if machine.PoisonPools {
		d.inflight[d.head] = dreq{}
	}
	d.head++
	d.completed = append(d.completed, req)
	d.k.handleIRQ(isa.IrqDisk)
}

// Submit queues a read of the given page frames and schedules its
// completion. The caller emits in syscall context; waiting for the pages is
// the caller's business (see FS.readPages). The pages slice is copied, so
// callers may reuse their scratch immediately.
func (d *Disk) Submit(pages []*Page) {
	if len(pages) == 0 {
		return
	}
	k := d.k
	e := k.e
	e.Call(k.fn.blockSubmit)
	e.Mix(24) // bio assembly + elevator merge
	for _, pg := range pages {
		e.Ops(4)
		e.Store(pg.addr, 8)
	}
	e.Store(k.varRunq+32, 8) // queue head update
	e.Ret()
	d.Requests++
	d.Pages += uint64(len(pages))

	now := k.m.Now()
	if d.busyUntil < now {
		d.busyUntil = now
	}
	d.busyUntil += d.latency(len(pages))
	d.enqueue(dreq{pages: d.capture(pages)}, d.busyUntil)
}

// SubmitWrite queues a writeback of dirty pages: like Submit, but nothing
// waits on the pages; completion merely clears the in-flight state. Called
// from the periodic writeback path (timer context).
func (d *Disk) SubmitWrite(pages []*Page) {
	if len(pages) == 0 {
		return
	}
	k := d.k
	e := k.e
	e.Call(k.fn.blockSubmit)
	e.Mix(20)
	for _, pg := range pages {
		e.Ops(3)
		e.Load(pg.addr, 8, 0)
	}
	e.Ret()
	d.Requests++
	d.Pages += uint64(len(pages))
	now := k.m.Now()
	if d.busyUntil < now {
		d.busyUntil = now
	}
	d.busyUntil += d.latency(len(pages))
	// No pages to mark: writeback completion is bookkeeping only.
	d.enqueue(dreq{}, d.busyUntil)
}

// irqBody is the disk completion handler: per-request bio completion, page
// flag updates, and waiter wakeups (which may set need_resched).
func (d *Disk) irqBody() {
	e := d.k.e
	e.Call(d.k.fn.blockDone)
	e.Mix(18)
	for i := range d.completed {
		req := &d.completed[i]
		for _, pg := range req.pages {
			e.Ops(5)
			e.Store(pg.addr+8, 8) // PG_uptodate flag
			pg.uptodate = true
			pg.busy = false
			pg.wq.WakeAll()
		}
		e.Mix(12)
		d.release(req.pages)
		req.pages = nil
	}
	d.completed = d.completed[:0]
	e.Ret()
}
