package kernel

import "fssim/internal/isa"

// Disk models the block device: an elevator queue with positioning latency
// plus per-page transfer time, raising IRQ 49 (the paper's Int_49) on
// completion. In App-Only simulation requests complete on the next event
// poll with negligible latency, modeling "the OS and its devices are free".
type Disk struct {
	k         *Kernel
	busyUntil uint64
	completed []*dreq

	// Fault injection: while Now() < degradedUntil, positioning and transfer
	// latency are multiplied by degradeFactor (a latency spike).
	degradedUntil uint64
	degradeFactor float64

	Requests uint64
	Pages    uint64
}

// Degrade opens a latency-spike window: until cycle `until`, every request's
// seek and transfer latency is multiplied by factor. A later call extends or
// replaces the window (fault injection).
func (d *Disk) Degrade(until uint64, factor float64) {
	d.degradedUntil = until
	d.degradeFactor = factor
}

// latency returns the current request latency for n pages, applying any open
// degradation window. App-only runs are exempt: their devices are free by
// definition, faulted or not.
func (d *Disk) latency(n int) uint64 {
	if d.k.appOnly() {
		return 1
	}
	lat := d.k.tun.DiskSeek + d.k.tun.DiskPerPage*uint64(n)
	if d.k.m.Now() < d.degradedUntil && d.degradeFactor > 1 {
		lat = uint64(float64(lat) * d.degradeFactor)
	}
	return lat
}

type dreq struct {
	pages []*Page
}

func newDisk(k *Kernel) *Disk { return &Disk{k: k} }

// Submit queues a read of the given page frames and schedules its
// completion. The caller emits in syscall context; waiting for the pages is
// the caller's business (see FS.readPages).
func (d *Disk) Submit(pages []*Page) {
	if len(pages) == 0 {
		return
	}
	k := d.k
	e := k.e
	e.Call(k.fn.blockSubmit)
	e.Mix(24) // bio assembly + elevator merge
	for _, pg := range pages {
		e.Ops(4)
		e.Store(pg.addr, 8)
	}
	e.Store(k.varRunq+32, 8) // queue head update
	e.Ret()
	d.Requests++
	d.Pages += uint64(len(pages))

	now := k.m.Now()
	if d.busyUntil < now {
		d.busyUntil = now
	}
	d.busyUntil += d.latency(len(pages))
	req := &dreq{pages: pages}
	k.m.Schedule(d.busyUntil, func() {
		d.completed = append(d.completed, req)
		k.handleIRQ(isa.IrqDisk)
	})
}

// SubmitWrite queues a writeback of dirty pages: like Submit, but nothing
// waits on the pages; completion merely clears the in-flight state. Called
// from the periodic writeback path (timer context).
func (d *Disk) SubmitWrite(pages []*Page) {
	if len(pages) == 0 {
		return
	}
	k := d.k
	e := k.e
	e.Call(k.fn.blockSubmit)
	e.Mix(20)
	for _, pg := range pages {
		e.Ops(3)
		e.Load(pg.addr, 8, 0)
	}
	e.Ret()
	d.Requests++
	d.Pages += uint64(len(pages))
	now := k.m.Now()
	if d.busyUntil < now {
		d.busyUntil = now
	}
	d.busyUntil += d.latency(len(pages))
	req := &dreq{} // no pages to mark: writeback completion is bookkeeping only
	k.m.Schedule(d.busyUntil, func() {
		d.completed = append(d.completed, req)
		k.handleIRQ(isa.IrqDisk)
	})
}

// irqBody is the disk completion handler: per-request bio completion, page
// flag updates, and waiter wakeups (which may set need_resched).
func (d *Disk) irqBody() {
	e := d.k.e
	e.Call(d.k.fn.blockDone)
	e.Mix(18)
	for _, req := range d.completed {
		for _, pg := range req.pages {
			e.Ops(5)
			e.Store(pg.addr+8, 8) // PG_uptodate flag
			pg.uptodate = true
			pg.busy = false
			pg.wq.WakeAll()
		}
		e.Mix(12)
	}
	d.completed = d.completed[:0]
	e.Ret()
}
