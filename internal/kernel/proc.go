package kernel

import (
	"fssim/internal/isa"
	"fssim/internal/memsim"
)

// Proc is the guest-visible face of a thread: a user-mode execution context
// with a demand-paged heap, a file-descriptor table, and system-call
// wrappers. Guest programs receive a Proc and interact with the OS only
// through it.
type Proc struct {
	k *Kernel
	t *Thread
	U UExec // user-mode instruction emitter with demand-paging checks

	fds    map[int]*File
	nextFd int
	cwd    *Dentry

	brk       uint64
	heapStart uint64
	present   map[uint64]bool // demand-paged pages currently mapped
	faults    uint64

	scratch uint64 // pre-faulted user I/O buffer (stack-like)
	pollwq  *WaitQueue
}

func newProc(k *Kernel, t *Thread) *Proc {
	p := &Proc{
		k: k, t: t,
		fds:     make(map[int]*File),
		nextFd:  3,
		cwd:     k.fs.root,
		present: make(map[uint64]bool),
		scratch: k.m.Lay.UserStack.AllocAligned(128<<10, memsim.PageSize),
	}
	p.heapStart = k.m.Lay.UserHeap.AllocAligned(0, memsim.PageSize)
	p.brk = p.heapStart
	p.U = UExec{p: p, e: k.e}
	return p
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Thread returns the underlying thread.
func (p *Proc) Thread() *Thread { return p.t }

// Faults returns the number of demand-paging faults taken.
func (p *Proc) Faults() uint64 { return p.faults }

// Cwd returns the process's current working directory path.
func (p *Proc) Cwd() string { return p.cwd.Path() }

// Scratch returns the address of the thread's pre-faulted 128KB user buffer
// (read/write targets for I/O syscalls, request parsing, and similar).
func (p *Proc) Scratch() uint64 { return p.scratch }

// enter begins a system call: the trapping instruction in user mode, the
// mode switch, and the kernel entry path.
func (p *Proc) enter(nr uint16) {
	e := p.k.e
	e.Syscall()
	p.k.m.KEnter(isa.Sys(nr))
	p.t.pushSvc(isa.Sys(nr))
	e.Call(p.k.fn.syscallEntry)
	e.Ops(10)
	e.Load(p.t.taskAddr, 8, 0)
	e.Chain(3)
	e.Ops(8)
}

// exitSyscall ends a system call: the kernel exit path, the return-to-user
// preemption point, and the IRET that closes the service interval.
func (p *Proc) exitSyscall() {
	e := p.k.e
	e.Ops(6)
	e.Load(p.t.taskAddr+32, 8, 0)
	e.Ops(4)
	e.Ret()
	if p.k.sched.needResched && p.k.sched.canPreempt() && p.k.sched.current == p.t {
		p.k.sched.reschedule(false)
	}
	e.Iret()
	p.t.popSvc()
	p.k.m.KExit()
}

// installFd registers f and returns its descriptor.
func (p *Proc) installFd(f *File) int {
	fd := p.nextFd
	p.nextFd++
	p.fds[fd] = f
	return fd
}

func (p *Proc) file(fd int) *File {
	f := p.fds[fd]
	if f == nil {
		p.k.panicf("thread %q: bad fd %d", p.t.name, fd)
	}
	return f
}

// --- Demand paging -------------------------------------------------------

// pagedRegion reports whether addr belongs to the demand-paged heap.
func (p *Proc) pagedRegion(addr uint64) bool {
	return addr >= p.heapStart && addr < p.brk
}

// touch takes page faults for any unmapped heap pages in [addr, addr+size).
func (p *Proc) touch(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	end := addr + uint64(size) - 1
	if !p.pagedRegion(addr) && !p.pagedRegion(end) {
		return
	}
	for pg := memsim.PageOf(addr); pg <= end; pg += memsim.PageSize {
		if p.pagedRegion(pg) && !p.present[pg] {
			p.pageFault(pg)
		}
	}
}

// pageFault runs the demand-paging exception handler: VMA lookup, a buddy
// allocation, and clearing the fresh page (the dominant cost).
func (p *Proc) pageFault(page uint64) {
	p.faults++
	p.present[page] = true
	k := p.k
	e := k.e
	k.m.KEnter(isa.Exc(isa.ExcPageFault))
	p.t.pushSvc(isa.Exc(isa.ExcPageFault))
	e.Call(k.fn.pageFault)
	e.Ops(12)
	e.ChaseList([]uint64{p.t.taskAddr + 200, p.t.taskAddr + 264, p.t.taskAddr + 328})
	e.Mix(30) // buddy allocator
	e.WriteLines(page, memsim.PageSize/64, 64)
	e.Store(p.t.taskAddr+392, 8) // page-table update
	e.Ops(8)
	e.Ret()
	e.Iret()
	p.t.popSvc()
	k.m.KExit()
}

// --- Memory syscalls ------------------------------------------------------

// Brk grows the heap by n bytes (page-rounded) and returns the base address
// of the new region. Pages are mapped on first touch.
func (p *Proc) Brk(n int) uint64 {
	p.enter(isa.SysBrk)
	e := p.k.e
	e.Call(p.k.fn.brk)
	e.Ops(18)
	e.Load(p.t.taskAddr+200, 8, 0)
	e.Store(p.t.taskAddr+208, 8)
	e.Ret()
	base := p.brk
	sz := (uint64(n) + memsim.PageSize - 1) &^ (memsim.PageSize - 1)
	p.k.m.Lay.UserHeap.Alloc(sz)
	p.brk += sz
	p.exitSyscall()
	return base
}

// Mmap2 maps n anonymous bytes and returns the base address.
func (p *Proc) Mmap2(n int) uint64 {
	p.enter(isa.SysMmap2)
	e := p.k.e
	e.Call(p.k.fn.mmap)
	e.Ops(26)
	e.ChaseList([]uint64{p.t.taskAddr + 200, p.t.taskAddr + 264})
	e.Mix(20)
	e.Ret()
	base := p.brk
	sz := (uint64(n) + memsim.PageSize - 1) &^ (memsim.PageSize - 1)
	p.k.m.Lay.UserHeap.Alloc(sz)
	p.brk += sz
	p.exitSyscall()
	return base
}

// --- Misc syscalls --------------------------------------------------------

// Gettimeofday reads the kernel clock.
func (p *Proc) Gettimeofday() {
	p.enter(isa.SysGettimeofday)
	e := p.k.e
	e.Call(p.k.fn.gettimeofday)
	e.Load(p.k.varXtime, 8, 0)
	e.Load(p.k.varXtime+8, 8, 0)
	e.Chain(6)
	e.Store(p.scratch, 16)
	e.Ops(10)
	e.Ret()
	p.exitSyscall()
}

// SchedYield gives up the CPU.
func (p *Proc) SchedYield() {
	p.enter(isa.SysSchedYield)
	p.k.e.Ops(12)
	if !p.k.appOnly() {
		p.k.sched.reschedule(false)
	}
	p.exitSyscall()
}

// Nanosleep blocks the thread for the given number of cycles.
func (p *Proc) Nanosleep(cycles uint64) {
	p.enter(isa.SysNanosleep)
	e := p.k.e
	e.Ops(24)
	e.Chain(4)
	p.k.SleepCycles(cycles)
	p.exitSyscall()
}

// Semop performs a SysV semaphore operation through sys_ipc — the accept
// mutex pattern multi-process servers use. acquire=true locks (possibly
// blocking), acquire=false unlocks (possibly waking a waiter).
func (p *Proc) Semop(sem *Semaphore, acquire bool) {
	p.enter(isa.SysIpc)
	e := p.k.e
	e.Call(p.k.fn.semop)
	e.Ops(16)
	e.Load(sem.addr, 8, 0)
	e.Chain(3)
	if acquire {
		if sem.held {
			// Contended: sleep until the holder releases.
			sem.wq.WaitFor(func() bool { return !sem.held }, func() { e.Mix(20) })
		}
		sem.held = true
		e.Store(sem.addr, 8)
		e.Ops(6)
	} else {
		sem.held = false
		e.Store(sem.addr, 8)
		e.Ops(4)
		sem.wq.WakeOne()
	}
	e.Ret()
	p.exitSyscall()
}

// Semaphore is a SysV-style kernel semaphore (binary).
type Semaphore struct {
	addr uint64
	held bool
	wq   *WaitQueue
}

// NewSemaphore allocates a kernel semaphore.
func (k *Kernel) NewSemaphore() *Semaphore {
	return &Semaphore{addr: k.heap.Alloc(64), wq: k.NewWaitQueue()}
}

// --- Process management ---------------------------------------------------

// Clone spawns a child thread via sys_clone and returns it.
func (p *Proc) Clone(name string, body func(*Proc)) *Thread {
	p.enter(isa.SysClone)
	e := p.k.e
	e.Call(p.k.fn.doFork)
	e.Ops(40)
	child := p.k.sched.spawn(name, body)
	// dup_task_struct: copy the parent's task into the child's.
	e.CopyLines(child.taskAddr, p.t.taskAddr, 1344/64)
	e.Mix(120) // copy fs/files/sighand/mm descriptors
	e.Store(p.k.varRunq+8, 8)
	e.Ret()
	p.exitSyscall()
	return child
}

// Execve replaces the process image with the binary at path, reading its
// pages through the page cache (first exec hits the disk, later ones hit the
// cache — a classic two-behavior-point service).
func (p *Proc) Execve(path string) {
	p.enter(isa.SysExecve)
	e := p.k.e
	d := p.k.fs.lookup(p, path)
	e.Call(p.k.fn.doExecve)
	e.Mix(180) // flush old mm, setup new mm, copy argv
	if d != nil && d.inode != nil {
		pages := int((d.inode.size + memsim.PageSize - 1) / memsim.PageSize)
		if pages > 8 {
			pages = 8 // text pages mapped eagerly
		}
		p.k.fs.readPages(p, d.inode, 0, pages)
		for i := 0; i < pages; i++ {
			pg := d.inode.page(p.k, int64(i))
			e.Load(pg.addr, 64, 0)
			e.Ops(4)
		}
	}
	e.Mix(80)
	e.Ret()
	p.exitSyscall()
}

// ExitGroup terminates the thread via sys_exit_group. It does not return.
func (p *Proc) ExitGroup() {
	p.enter(isa.SysExitGroup)
	e := p.k.e
	e.Call(p.k.fn.doExit)
	e.Mix(90) // release files, mm, signal state
	for fd := range p.fds {
		delete(p.fds, fd)
		e.Ops(10)
	}
	e.Store(p.t.taskAddr+16, 8)
	e.Ret()
	// The interval ends here; the thread never returns to user mode. The
	// spawn wrapper recovers threadExit and retires the thread.
	p.t.popSvc()
	p.k.m.KExit()
	panic(threadExit{})
}

// Waitpid blocks until child exits.
func (p *Proc) Waitpid(child *Thread) {
	p.enter(isa.SysWaitpid)
	e := p.k.e
	e.Call(p.k.fn.doWait)
	e.Ops(22)
	e.Load(child.taskAddr+16, 8, 0)
	if child.state != tDead {
		child.exitWaiters.WaitFor(func() bool { return child.state == tDead },
			func() { e.Mix(10) })
	}
	e.Mix(30) // reap: release task struct
	e.Ret()
	p.exitSyscall()
}
