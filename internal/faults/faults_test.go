package faults

import (
	"reflect"
	"strings"
	"testing"

	"fssim/internal/machine"
	"fssim/internal/workload"
)

// TestPlanDeterminism is the package's core contract: a plan is a pure
// function of (seed, spec). The same pair yields an identical schedule on
// every call; different seeds or specs yield different ones.
func TestPlanDeterminism(t *testing.T) {
	spec, err := Named("storm")
	if err != nil {
		t.Fatal(err)
	}
	a := NewPlan(7, spec)
	b := NewPlan(7, spec)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same (seed, spec) produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("storm plan is empty")
	}
	c := NewPlan(8, spec)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical schedules")
	}
	spec2 := spec
	spec2.DiskFactor++
	d := NewPlan(7, spec2)
	if reflect.DeepEqual(a.Events, d.Events) {
		t.Error("different specs produced identical schedules")
	}
}

// TestPlanBounds asserts every event (including burst expansions and clamped
// windows) lands inside [Start, Horizon) with its window fully contained, and
// that the schedule is sorted by fire time.
func TestPlanBounds(t *testing.T) {
	for _, name := range Names() {
		spec, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []float64{1, 0.1} {
			s := spec.Scaled(scale)
			p := NewPlan(1, s)
			var prev uint64
			for i, ev := range p.Events {
				if ev.At < s.Start || ev.At >= s.Horizon {
					t.Fatalf("%s@%.1f event %d at %d outside [%d, %d)", name, scale, i, ev.At, s.Start, s.Horizon)
				}
				if ev.At+ev.Dur > s.Horizon {
					t.Fatalf("%s@%.1f event %d window [%d, %d) exceeds horizon %d", name, scale, i, ev.At, ev.At+ev.Dur, s.Horizon)
				}
				if ev.At < prev {
					t.Fatalf("%s@%.1f schedule not sorted at %d", name, scale, i)
				}
				prev = ev.At
			}
		}
	}
}

func TestNamedAndNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no preset plans")
	}
	for _, n := range names {
		s, err := Named(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != n || s.Horizon <= s.Start {
			t.Errorf("preset %q malformed: %+v", n, s)
		}
	}
	if _, err := Named("no-such-plan"); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestScaled(t *testing.T) {
	s := Spec{Start: 1000, Horizon: 10000, DiskSpikeLen: 500, IRQSpacing: 3, NetDropLen: 9}
	h := s.Scaled(0.1)
	if h.Start != 100 || h.Horizon != 1000 || h.DiskSpikeLen != 50 {
		t.Errorf("time axis not scaled: %+v", h)
	}
	if h.IRQSpacing == 0 || h.NetDropLen == 0 {
		t.Errorf("nonzero durations scaled to zero: %+v", h)
	}
	if got := s.Scaled(1); !reflect.DeepEqual(got, s) {
		t.Errorf("unit scale changed the spec: %+v", got)
	}
	if got := s.Scaled(0); !reflect.DeepEqual(got, s) {
		t.Errorf("zero scale changed the spec: %+v", got)
	}
}

func TestEmptyWindow(t *testing.T) {
	p := NewPlan(1, Spec{Name: "x", Start: 100, Horizon: 100, DiskSpikes: 3})
	if len(p.Events) != 0 {
		t.Errorf("degenerate window produced %d events", len(p.Events))
	}
	if !strings.Contains(p.String(), "no events") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestString(t *testing.T) {
	spec, _ := Named("mild")
	s := NewPlan(1, spec).String()
	for _, want := range []string{"mild", "disk-spike", "irq-burst", "pagecache-drop"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// TestInstallPerturbsRun runs a benchmark with and without an installed plan:
// the faulted run must finish (no hang, no panic) and take more cycles, and
// the plan must report events actually fired.
func TestInstallPerturbsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long: simulates a benchmark twice")
	}
	run := func(plan *Plan) uint64 {
		opts := workload.DefaultOptions()
		opts.Scale = 0.1
		opts.Machine.Mode = machine.FullSystem
		opts.Machine.Seed = 42
		if plan != nil {
			opts.Prepare = plan.Install
		}
		res, err := workload.Run("find-od", opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	clean := run(nil)
	spec, _ := Named("storm")
	plan := NewPlan(42, spec.Scaled(0.1))
	faulted := run(plan)
	if plan.Applied == 0 {
		t.Fatal("no fault events fired during the run")
	}
	if faulted <= clean {
		t.Errorf("storm plan did not slow the run: %d vs %d cycles", faulted, clean)
	}
}
