package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultPlan fuzzes the plan generator's two invariants over arbitrary
// (seed, spec) pairs: determinism (the same inputs always materialize the
// identical schedule) and containment (every event window fits inside
// [Start, Horizon), even for adversarial span/duration combinations).
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), uint64(2_000_000), uint64(120_000_000), 24, 30, uint64(4000), 16, uint64(1_200_000), 6)
	f.Add(int64(0), uint64(0), uint64(1), 1, 1, uint64(0), 1, uint64(1<<40), 1)
	f.Add(int64(-5), uint64(100), uint64(90), 3, 3, uint64(7), 3, uint64(50), 3)
	f.Fuzz(func(t *testing.T, seed int64, start, horizon uint64, spikes, bursts int, spacing uint64, drops int, dropLen uint64, pcd int) {
		// Bound the counts so a fuzz input can't allocate unbounded memory;
		// the generator itself has no such limit.
		clamp := func(n int) int {
			if n < 0 {
				return 0
			}
			if n > 256 {
				return 256
			}
			return n
		}
		spec := Spec{
			Name: "fuzz", Start: start, Horizon: horizon,
			DiskSpikes: clamp(spikes), DiskFactor: 4, DiskSpikeLen: dropLen,
			IRQBursts: clamp(bursts), IRQBurstLen: 8, IRQSpacing: spacing,
			NetDrops: clamp(drops), NetDropLen: dropLen, NetDropExtra: 10,
			PageCacheDrops: clamp(pcd),
		}
		a := NewPlan(seed, spec)
		b := NewPlan(seed, spec)
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("non-deterministic plan for seed=%d spec=%+v", seed, spec)
		}
		var prev uint64
		for i, ev := range a.Events {
			if ev.At < spec.Start || ev.At >= spec.Horizon {
				t.Fatalf("event %d at %d outside [%d, %d)", i, ev.At, spec.Start, spec.Horizon)
			}
			if ev.At+ev.Dur > spec.Horizon {
				t.Fatalf("event %d window [%d, %d) exceeds horizon %d", i, ev.At, ev.At+ev.Dur, spec.Horizon)
			}
			if ev.At < prev {
				t.Fatalf("schedule not sorted at %d", i)
			}
			prev = ev.At
		}
	})
}
