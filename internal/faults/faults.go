// Package faults generates deterministic fault-injection plans and installs
// them on a simulated machine.
//
// A Plan is a pure function of (seed, Spec): the same pair always yields the
// same event schedule, byte for byte, independent of harness parallelism or
// wall-clock time. This preserves the experiment scheduler's determinism
// guarantee — a faulted run is exactly as reproducible as an unfaulted one —
// while perturbing OS service behavior mid-run so the prediction strategies'
// re-learning machinery (and the divergence watchdog) has real phase changes
// to react to.
//
// Events are expressed in simulated cycles and land inside [Spec.Start,
// Spec.Horizon). Specs are sized for full-scale workloads; use Spec.Scaled to
// shrink the time axis for reduced-scale runs so events still land inside
// short simulations.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"fssim/internal/isa"
	"fssim/internal/kernel"
)

// Kind enumerates the perturbation types a plan can schedule.
type Kind uint8

const (
	// DiskSpike multiplies block-device seek/transfer latency by Mag for Dur
	// cycles (a latency spike: contention, remapping, a failing sector).
	DiskSpike Kind = iota
	// IRQBurst delivers one spurious device interrupt (Mag holds the vector:
	// the disk or NIC line). Bursts are pre-expanded into closely spaced
	// single events at plan build time.
	IRQBurst
	// NetBurst injects Mag bytes of unsolicited inbound traffic followed by a
	// FIN, driving the receive path (softirq, copy-to-user, socket teardown)
	// outside the workload's own schedule.
	NetBurst
	// NetDrop opens a loss window: for Dur cycles every transmitted segment's
	// delivery is delayed by Mag extra cycles (retransmission timeouts).
	NetDrop
	// SchedJitter opens a window in which every context switch pays extra
	// scheduler work and the running thread's quantum is expired early.
	SchedJitter
	// CacheFlush invalidates all cache levels and the TLB at one instant,
	// forcing every learner's locality assumptions to be re-established.
	CacheFlush
	// PageCacheDrop evicts the OS page cache and dcache (drop_caches): file
	// reads shift from the short hit path onto the blocking disk path — the
	// sharpest service-behavior phase change a running system exhibits.
	PageCacheDrop
)

var kindNames = [...]string{
	"disk-spike", "irq-burst", "net-burst", "net-drop", "sched-jitter", "cache-flush",
	"pagecache-drop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled perturbation. At is the absolute simulated cycle at
// which it fires; Dur the window length for windowed kinds (zero for point
// events); Mag a kind-specific magnitude (latency factor, byte count, extra
// delay, or IRQ vector).
type Event struct {
	At   uint64
	Kind Kind
	Dur  uint64
	Mag  float64
}

// Spec describes a fault plan's shape: how many events of each kind to place
// and how severe they are. All times are simulated cycles at full workload
// scale; Scaled shrinks them proportionally.
type Spec struct {
	Name string

	// Events are placed uniformly at random in [Start, Horizon); windowed
	// events are clamped so At+Dur <= Horizon.
	Start   uint64
	Horizon uint64

	DiskSpikes   int
	DiskFactor   float64 // latency multiplier while a spike window is open
	DiskSpikeLen uint64

	IRQBursts   int
	IRQBurstLen int    // interrupts per burst
	IRQSpacing  uint64 // cycles between interrupts within a burst

	NetBursts     int
	NetBurstBytes int

	NetDrops     int
	NetDropLen   uint64
	NetDropExtra uint64 // extra delivery latency per segment inside the window

	SchedJitters   int
	SchedJitterLen uint64

	CacheFlushes int

	PageCacheDrops int
}

// Scaled returns a copy of the spec with the time axis multiplied by scale,
// matching the workload scale knob: event counts and magnitudes are
// preserved, only when and for how long they act shrinks. Non-positive and
// unit scales return the spec unchanged.
func (s Spec) Scaled(scale float64) Spec {
	if scale <= 0 || scale == 1 {
		return s
	}
	sc := func(v uint64) uint64 {
		n := uint64(float64(v) * scale)
		if v > 0 && n == 0 {
			n = 1
		}
		return n
	}
	s.Start = sc(s.Start)
	s.Horizon = sc(s.Horizon)
	s.DiskSpikeLen = sc(s.DiskSpikeLen)
	s.IRQSpacing = sc(s.IRQSpacing)
	s.NetDropLen = sc(s.NetDropLen)
	s.NetDropExtra = sc(s.NetDropExtra)
	s.SchedJitterLen = sc(s.SchedJitterLen)
	return s
}

// Named presets. Times assume full-scale workloads (tens of millions of
// cycles); reduced-scale runs should apply Spec.Scaled first.
var specs = map[string]Spec{
	"mild": {
		Name:    "mild",
		Start:   3_000_000,
		Horizon: 40_000_000,

		DiskSpikes: 6, DiskFactor: 3, DiskSpikeLen: 800_000,
		IRQBursts: 8, IRQBurstLen: 12, IRQSpacing: 8_000,
		NetBursts: 8, NetBurstBytes: 32 << 10,
		NetDrops: 4, NetDropLen: 600_000, NetDropExtra: 30_000,
		SchedJitters: 4, SchedJitterLen: 600_000,
		CacheFlushes:   8,
		PageCacheDrops: 2,
	},
	"storm": {
		Name:    "storm",
		Start:   2_000_000,
		Horizon: 120_000_000,

		DiskSpikes: 24, DiskFactor: 20, DiskSpikeLen: 2_500_000,
		IRQBursts: 30, IRQBurstLen: 64, IRQSpacing: 4_000,
		NetBursts: 30, NetBurstBytes: 96 << 10,
		NetDrops: 16, NetDropLen: 1_200_000, NetDropExtra: 120_000,
		SchedJitters: 16, SchedJitterLen: 1_200_000,
		CacheFlushes:   40,
		PageCacheDrops: 6,
	},
}

// Named returns the preset spec with the given name.
func Named(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("faults: unknown plan %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Names lists the preset spec names in sorted order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Plan is a concrete, fully materialized fault schedule.
type Plan struct {
	Seed   int64
	Spec   Spec
	Events []Event

	// Applied counts events that actually fired (runs shorter than the
	// horizon never reach late events).
	Applied int
}

// planSeed folds the run seed and the complete spec into the RNG seed, so two
// specs differing in any field draw independent schedules.
func planSeed(seed int64, spec Spec) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%+v", seed, spec)
	return int64(h.Sum64() &^ (1 << 63))
}

// NewPlan materializes the spec into a sorted event schedule. It is a pure
// function: identical (seed, spec) pairs yield identical plans.
func NewPlan(seed int64, spec Spec) *Plan {
	p := &Plan{Seed: seed, Spec: spec}
	if spec.Horizon <= spec.Start {
		return p
	}
	rng := rand.New(rand.NewSource(planSeed(seed, spec)))
	span := spec.Horizon - spec.Start

	// window draws a start cycle such that [at, at+dur) fits inside
	// [Start, Horizon); oversized durations are clamped to the span.
	window := func(dur uint64) (uint64, uint64) {
		if dur > span {
			dur = span
		}
		at := spec.Start
		if lim := span - dur; lim > 0 {
			if lim > 1<<62 {
				lim = 1 << 62
			}
			at += uint64(rng.Int63n(int64(lim)))
		}
		return at, dur
	}

	for i := 0; i < spec.DiskSpikes; i++ {
		at, dur := window(spec.DiskSpikeLen)
		p.Events = append(p.Events, Event{At: at, Kind: DiskSpike, Dur: dur, Mag: spec.DiskFactor})
	}
	for i := 0; i < spec.IRQBursts; i++ {
		n := spec.IRQBurstLen
		if n < 1 {
			n = 1
		}
		spacing := spec.IRQSpacing
		if spacing == 0 {
			spacing = 1
		}
		at, dur := window(uint64(n-1) * spacing)
		for j := 0; j < n; j++ {
			off := uint64(j) * spacing
			// A clamped window may end exactly at the horizon; every single
			// interrupt must still fire strictly before it.
			if off > dur || at+off >= spec.Horizon {
				break
			}
			vec := float64(isa.IrqDisk)
			if rng.Intn(2) == 1 {
				vec = float64(isa.IrqNIC)
			}
			p.Events = append(p.Events, Event{At: at + off, Kind: IRQBurst, Mag: vec})
		}
	}
	for i := 0; i < spec.NetBursts; i++ {
		at, _ := window(0)
		p.Events = append(p.Events, Event{At: at, Kind: NetBurst, Mag: float64(spec.NetBurstBytes)})
	}
	for i := 0; i < spec.NetDrops; i++ {
		at, dur := window(spec.NetDropLen)
		p.Events = append(p.Events, Event{At: at, Kind: NetDrop, Dur: dur, Mag: float64(spec.NetDropExtra)})
	}
	for i := 0; i < spec.SchedJitters; i++ {
		at, dur := window(spec.SchedJitterLen)
		p.Events = append(p.Events, Event{At: at, Kind: SchedJitter, Dur: dur})
	}
	for i := 0; i < spec.CacheFlushes; i++ {
		at, _ := window(0)
		p.Events = append(p.Events, Event{At: at, Kind: CacheFlush})
	}
	for i := 0; i < spec.PageCacheDrops; i++ {
		at, _ := window(0)
		p.Events = append(p.Events, Event{At: at, Kind: PageCacheDrop})
	}

	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// Install schedules every event on the kernel's machine. Call after
// kernel.New and workload setup, before the run starts. Events past the end
// of the run simply never fire. When the machine carries a trace recorder,
// each dispatched event bumps a total and a per-kind counter and lands as an
// instant on the timeline; with tracing off the instruments are nil no-ops.
func (p *Plan) Install(k *kernel.Kernel) {
	m := k.Machine()
	rec := m.Trace()
	reg := rec.Metrics()
	total := reg.Counter("faults.dispatched")
	for _, ev := range p.Events {
		ev := ev
		kindCtr := reg.Counter("faults." + ev.Kind.String())
		m.Schedule(ev.At, func() {
			p.apply(k, ev)
			total.Inc()
			kindCtr.Inc()
			rec.InstantNow("fault " + ev.Kind.String())
		})
	}
}

func (p *Plan) apply(k *kernel.Kernel, ev Event) {
	p.Applied++
	m := k.Machine()
	switch ev.Kind {
	case DiskSpike:
		k.Disk().Degrade(m.Now()+ev.Dur, ev.Mag)
	case IRQBurst:
		k.InjectIRQ(uint16(ev.Mag))
	case NetBurst:
		k.Net().InjectNoise(int(ev.Mag))
		k.Net().InjectNoiseFIN()
	case NetDrop:
		k.Net().SetLoss(m.Now()+ev.Dur, uint64(ev.Mag))
	case SchedJitter:
		k.SetSchedJitter(m.Now() + ev.Dur)
	case CacheFlush:
		if mem := m.Mem(); mem != nil {
			mem.FlushAll()
		}
	case PageCacheDrop:
		k.FS().DropCaches()
	}
}

// String summarizes the schedule for logs and harness notes.
func (p *Plan) String() string {
	if len(p.Events) == 0 {
		return fmt.Sprintf("plan %q: no events", p.Spec.Name)
	}
	counts := make(map[Kind]int)
	for _, ev := range p.Events {
		counts[ev.Kind]++
	}
	var parts []string
	for k := Kind(0); int(k) < len(kindNames); k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s x%d", k, counts[k]))
		}
	}
	return fmt.Sprintf("plan %q: %s in [%d, %d)",
		p.Spec.Name, strings.Join(parts, ", "), p.Spec.Start, p.Spec.Horizon)
}
