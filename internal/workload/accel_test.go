package workload

import (
	"math"
	"testing"

	"fssim/internal/core"
	"fssim/internal/machine"
)

func relErr(pred, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(pred-truth) / truth
}

// TestAcceleratedAccuracy runs the OS-intensive benchmarks under the
// Statistical strategy and checks the paper's headline claims at our scale:
// substantial prediction coverage with single-digit execution-time error.
func TestAcceleratedAccuracy(t *testing.T) {
	for _, name := range OSIntensiveNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Scale = 1.0
			full, err := Run(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			acc := core.NewAccelerator(core.DefaultParams())
			opts.Machine.Mode = machine.Accelerated
			opts.Sink = acc
			pred, err := Run(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			sum := acc.Summary()
			e := relErr(float64(pred.Stats.Cycles), float64(full.Stats.Cycles))
			t.Logf("%s: coverage %.0f%%, cycles %d vs %d (err %.1f%%), IPC %.3f vs %.3f, clusters %d, relearns %d, outliers %d",
				name, 100*sum.Coverage(), pred.Stats.Cycles, full.Stats.Cycles,
				100*e, pred.Stats.IPC(), full.Stats.IPC(), sum.Clusters, sum.Relearns, sum.Outliers)
			if sum.Coverage() < 0.30 {
				t.Errorf("coverage %.2f too low", sum.Coverage())
			}
			if e > 0.15 {
				t.Errorf("execution-time error %.1f%% too high", 100*e)
			}
		})
	}
}
