// Package workload assembles the paper's nine evaluation benchmarks — the
// five OS-intensive workloads (ab-rand, ab-seq, du, find-od, iperf) and the
// four SPEC2000-like controls (gzip, vpr, art, swim) — into runnable
// simulations: machine + kernel + guest programs + traffic models.
package workload

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"fssim/internal/guest"
	"fssim/internal/kernel"
	"fssim/internal/machine"
	"fssim/internal/trace"
)

// ErrUnknown is wrapped by Lookup/Run for unregistered benchmark names.
var ErrUnknown = errors.New("workload: unknown benchmark")

// Benchmark describes one named workload.
type Benchmark struct {
	Name        string
	OSIntensive bool
	Description string
	// Hidden benchmarks are runnable via Lookup/Run but excluded from
	// Names(), so synthetic probes never leak into the paper-artifact
	// experiments (which enumerate the benchmark set).
	Hidden bool
	setup  func(k *kernel.Kernel, scale float64)
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

var registry = map[string]Benchmark{
	"ab-single": {
		Name: "ab-single", OSIntensive: true,
		Description: "Apache-like server, unmodified ab: one page repeatedly",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.SingleWebConfig(scaled(320, scale)))
		},
	},
	"ab-rand": {
		Name: "ab-rand", OSIntensive: true,
		Description: "Apache-like server, random page requests (8 concurrent)",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.DefaultWebConfig(false, scaled(320, scale)))
		},
	},
	"ab-seq": {
		Name: "ab-seq", OSIntensive: true,
		Description: "Apache-like server, sequential size-sorted page requests",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.DefaultWebConfig(true, scaled(700, scale)))
		},
	},
	"du": {
		Name: "du", OSIntensive: true,
		Description: "disk-usage walk of a ~1000-file /usr tree",
		setup: func(k *kernel.Kernel, scale float64) {
			tree := guest.DefaultTreeConfig()
			if scale < 1 {
				tree.TopDirs = scaled(tree.TopDirs, scale)
			}
			guest.BuildTree(k, tree)
			guest.SetupDu(k, tree)
		},
	},
	"find-od": {
		Name: "find-od", OSIntensive: true,
		Description: "find -exec od over a /usr subtree (fork+exec per file)",
		setup: func(k *kernel.Kernel, scale float64) {
			cfg := guest.DefaultFindOdConfig()
			cfg.TopDirs = scaled(cfg.TopDirs, scale)
			guest.BuildTree(k, cfg.Tree)
			guest.SetupFindOd(k, cfg)
		},
	},
	"iperf": {
		Name: "iperf", OSIntensive: true,
		Description: "TCP bandwidth client: back-to-back socket writes",
		setup: func(k *kernel.Kernel, scale float64) {
			cfg := guest.DefaultIperfConfig()
			cfg.Writes = scaled(cfg.Writes, scale)
			guest.SetupIperf(k, cfg)
		},
	},
	"gzip": specBench("gzip", "hash-chain compression over a 448KB working set"),
	"vpr":  specBench("vpr", "random placement moves over a 1.5MB netlist"),
	"art":  specBench("art", "neural-net scans over ~2.5MB of arrays"),
	"swim": specBench("swim", "grid stencils streaming 4MB"),
}

func specBench(name, desc string) Benchmark {
	return Benchmark{
		Name: name, OSIntensive: false, Description: desc,
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupSpec(k, name, guest.SpecConfig{WorkScale: scale})
		},
	}
}

// regMu guards registry against Register calls racing Lookup/Names; the
// built-in benchmarks are installed before init completes and never change.
var regMu sync.RWMutex

// Register adds (or replaces) a benchmark. Primarily for tests and harness
// extensions that need synthetic workloads (e.g. fault-injection probes or
// deliberately misbehaving benches for robustness testing).
func Register(b Benchmark, setup func(k *kernel.Kernel, scale float64)) {
	if b.Name == "" || setup == nil {
		panic("workload: Register requires a name and a setup function")
	}
	b.setup = setup
	regMu.Lock()
	registry[b.Name] = b
	regMu.Unlock()
}

// Names returns all benchmark names, OS-intensive first, each group in the
// paper's presentation order; later registrations sort after the built-ins,
// alphabetically.
func Names() []string {
	order := map[string]int{
		"ab-rand": 0, "ab-seq": 1, "du": 2, "find-od": 3, "iperf": 4,
		"gzip": 5, "vpr": 6, "art": 7, "swim": 8, "ab-single": 9,
	}
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n, b := range registry {
		if !b.Hidden {
			out = append(out, n)
		}
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		oi, iok := order[out[i]]
		oj, jok := order[out[j]]
		if iok != jok {
			return iok // registered built-ins first
		}
		if !iok {
			return out[i] < out[j]
		}
		return oi < oj
	})
	return out
}

// OSIntensiveNames returns the five OS-intensive benchmark names.
func OSIntensiveNames() []string {
	return []string{"ab-rand", "ab-seq", "du", "find-od", "iperf"}
}

// Lookup returns the named benchmark. The error wraps ErrUnknown.
func Lookup(name string) (Benchmark, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Benchmark{}, fmt.Errorf("%w %q", ErrUnknown, name)
	}
	return b, nil
}

// Options configures one simulation run.
type Options struct {
	Machine  machine.Config
	Tunables kernel.Tunables
	Scale    float64 // workload size multiplier (default 1.0)
	Sink     machine.IntervalSink
	Observer func(machine.IntervalRecord)

	// Sample, if non-nil, attaches an application-interval sampling sink
	// (stratified sampling): user-mode stretches between OS services become
	// intervals the sink simulates in detail or fast-forwards. Orthogonal to
	// the OS-side Sink — the two compose.
	Sample machine.AppSink

	// Trace, if non-nil, attaches an interval recorder to the machine before
	// the kernel is built, so every subsystem resolves its instruments against
	// the run's registry. Nil (the default) keeps every instrumentation site a
	// guarded no-op and the simulation byte-identical to an untraced run.
	Trace *trace.Recorder

	// Prepare, if set, runs after workload setup and before the simulation
	// starts — the hook fault plans use to install their event schedules.
	Prepare func(k *kernel.Kernel)

	// Cancel, if non-nil, aborts the simulation when closed (or sent on). The
	// machine tears down cooperatively and Run returns machine.ErrCanceled
	// (wrapped in a *machine.AbortError cause chain).
	Cancel <-chan struct{}
}

// DefaultOptions returns the paper's platform at full workload scale.
func DefaultOptions() Options {
	return Options{
		Machine:  machine.DefaultConfig(),
		Tunables: kernel.DefaultTunables(),
		Scale:    1.0,
	}
}

// Result bundles the finished simulation's components for inspection.
type Result struct {
	Machine *machine.Machine
	Kernel  *kernel.Kernel
	Stats   machine.Stats
	// Trace is the recorder passed in Options.Trace (nil when untraced), and
	// Metrics its registry snapshot taken when the simulation finished.
	Trace   *trace.Recorder
	Metrics trace.Snapshot
	// Wall is the host wall-clock time the simulation took; the experiment
	// harness aggregates it to report saved work when runs are memoized.
	Wall time.Duration
}

// Run builds and runs the named benchmark to completion. Panics anywhere in
// setup or simulation are converted to errors rather than crashing the
// caller, and a closed Options.Cancel channel aborts the run cooperatively;
// in both cases the partially simulated machine state is still returned for
// diagnostics.
func Run(name string, opts Options) (res Result, err error) {
	b, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			err = fmt.Errorf("workload %s: panic: %v\n%s", name, r, debug.Stack())
		}
	}()
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	m := machine.New(opts.Machine)
	res.Machine = m
	if opts.Trace != nil {
		// Attach before kernel.New so the kernel (and everything after it)
		// resolves instruments against the run's registry.
		m.SetTrace(opts.Trace)
		res.Trace = opts.Trace
	}
	type recorderSetter interface{ SetRecorder(*trace.Recorder) }
	if opts.Sink != nil {
		m.SetSink(opts.Sink)
		// An acceleration engine that understands recorders (the Accelerator
		// does) annotates spans with PLT outcomes and emits phase instants.
		if rs, ok := opts.Sink.(recorderSetter); ok && opts.Trace != nil {
			rs.SetRecorder(opts.Trace)
		}
	}
	if opts.Sample != nil {
		m.SetAppSink(opts.Sample)
		if rs, ok := opts.Sample.(recorderSetter); ok && opts.Trace != nil {
			rs.SetRecorder(opts.Trace)
		}
	}
	if opts.Observer != nil {
		m.SetObserver(opts.Observer)
	}
	if opts.Cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-opts.Cancel:
				m.Cancel(nil) // default cause: machine.ErrCanceled
			case <-stop:
			}
		}()
	}
	k := kernel.New(m, opts.Tunables)
	res.Kernel = k
	b.setup(k, opts.Scale)
	// Workloads with a declared warm-up (the web benchmarks skip their first
	// requests, iperf its first writes, as in the paper's §5.2) defer the
	// acceleration engine and reset the statistics baseline at the warm
	// point, so measurement and learning both cover the steady state.
	if m.HasWarmup() {
		type armer interface{ Arm() }
		type deferrer interface{ Defer() }
		var arms []func()
		for _, h := range []any{opts.Sink, opts.Sample} {
			a, ok := h.(armer)
			if !ok {
				continue
			}
			if d, ok := h.(deferrer); ok {
				d.Defer()
			}
			arms = append(arms, a.Arm)
		}
		if len(arms) > 0 {
			arms := arms
			m.SetWarmCallback(func() {
				for _, f := range arms {
					f()
				}
			})
		}
	}
	if opts.Prepare != nil {
		opts.Prepare(k)
	}
	err = k.Run()
	// Close the final user-mode stretch so sampled runs account every
	// instruction to exactly one interval (no-op without a sampling sink).
	m.FinishApp()
	res.Stats = m.Stats()
	if opts.Trace.Enabled() {
		res.Metrics = opts.Trace.Metrics().Snapshot()
	}
	return res, err
}
