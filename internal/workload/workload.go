// Package workload assembles the paper's nine evaluation benchmarks — the
// five OS-intensive workloads (ab-rand, ab-seq, du, find-od, iperf) and the
// four SPEC2000-like controls (gzip, vpr, art, swim) — into runnable
// simulations: machine + kernel + guest programs + traffic models.
package workload

import (
	"fmt"
	"sort"
	"time"

	"fssim/internal/guest"
	"fssim/internal/kernel"
	"fssim/internal/machine"
)

// Benchmark describes one named workload.
type Benchmark struct {
	Name        string
	OSIntensive bool
	Description string
	setup       func(k *kernel.Kernel, scale float64)
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

var registry = map[string]Benchmark{
	"ab-single": {
		Name: "ab-single", OSIntensive: true,
		Description: "Apache-like server, unmodified ab: one page repeatedly",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.SingleWebConfig(scaled(320, scale)))
		},
	},
	"ab-rand": {
		Name: "ab-rand", OSIntensive: true,
		Description: "Apache-like server, random page requests (8 concurrent)",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.DefaultWebConfig(false, scaled(320, scale)))
		},
	},
	"ab-seq": {
		Name: "ab-seq", OSIntensive: true,
		Description: "Apache-like server, sequential size-sorted page requests",
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupWebServer(k, guest.DefaultWebConfig(true, scaled(700, scale)))
		},
	},
	"du": {
		Name: "du", OSIntensive: true,
		Description: "disk-usage walk of a ~1000-file /usr tree",
		setup: func(k *kernel.Kernel, scale float64) {
			tree := guest.DefaultTreeConfig()
			if scale < 1 {
				tree.TopDirs = scaled(tree.TopDirs, scale)
			}
			guest.BuildTree(k, tree)
			guest.SetupDu(k, tree)
		},
	},
	"find-od": {
		Name: "find-od", OSIntensive: true,
		Description: "find -exec od over a /usr subtree (fork+exec per file)",
		setup: func(k *kernel.Kernel, scale float64) {
			cfg := guest.DefaultFindOdConfig()
			cfg.TopDirs = scaled(cfg.TopDirs, scale)
			guest.BuildTree(k, cfg.Tree)
			guest.SetupFindOd(k, cfg)
		},
	},
	"iperf": {
		Name: "iperf", OSIntensive: true,
		Description: "TCP bandwidth client: back-to-back socket writes",
		setup: func(k *kernel.Kernel, scale float64) {
			cfg := guest.DefaultIperfConfig()
			cfg.Writes = scaled(cfg.Writes, scale)
			guest.SetupIperf(k, cfg)
		},
	},
	"gzip": specBench("gzip", "hash-chain compression over a 448KB working set"),
	"vpr":  specBench("vpr", "random placement moves over a 1.5MB netlist"),
	"art":  specBench("art", "neural-net scans over ~2.5MB of arrays"),
	"swim": specBench("swim", "grid stencils streaming 4MB"),
}

func specBench(name, desc string) Benchmark {
	return Benchmark{
		Name: name, OSIntensive: false, Description: desc,
		setup: func(k *kernel.Kernel, scale float64) {
			guest.SetupSpec(k, name, guest.SpecConfig{WorkScale: scale})
		},
	}
}

// Names returns all benchmark names, OS-intensive first, each group in the
// paper's presentation order.
func Names() []string {
	order := map[string]int{
		"ab-rand": 0, "ab-seq": 1, "du": 2, "find-od": 3, "iperf": 4,
		"gzip": 5, "vpr": 6, "art": 7, "swim": 8, "ab-single": 9,
	}
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

// OSIntensiveNames returns the five OS-intensive benchmark names.
func OSIntensiveNames() []string {
	return []string{"ab-rand", "ab-seq", "du", "find-od", "iperf"}
}

// Lookup returns the named benchmark.
func Lookup(name string) (Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b, nil
}

// Options configures one simulation run.
type Options struct {
	Machine  machine.Config
	Tunables kernel.Tunables
	Scale    float64 // workload size multiplier (default 1.0)
	Sink     machine.IntervalSink
	Observer func(machine.IntervalRecord)
}

// DefaultOptions returns the paper's platform at full workload scale.
func DefaultOptions() Options {
	return Options{
		Machine:  machine.DefaultConfig(),
		Tunables: kernel.DefaultTunables(),
		Scale:    1.0,
	}
}

// Result bundles the finished simulation's components for inspection.
type Result struct {
	Machine *machine.Machine
	Kernel  *kernel.Kernel
	Stats   machine.Stats
	// Wall is the host wall-clock time the simulation took; the experiment
	// harness aggregates it to report saved work when runs are memoized.
	Wall time.Duration
}

// Run builds and runs the named benchmark to completion.
func Run(name string, opts Options) (Result, error) {
	b, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	m := machine.New(opts.Machine)
	if opts.Sink != nil {
		m.SetSink(opts.Sink)
	}
	if opts.Observer != nil {
		m.SetObserver(opts.Observer)
	}
	k := kernel.New(m, opts.Tunables)
	b.setup(k, opts.Scale)
	// Workloads with a declared warm-up (the web benchmarks skip their first
	// requests, iperf its first writes, as in the paper's §5.2) defer the
	// acceleration engine and reset the statistics baseline at the warm
	// point, so measurement and learning both cover the steady state.
	if m.HasWarmup() {
		type armer interface{ Arm() }
		if a, ok := opts.Sink.(armer); ok {
			type deferrer interface{ Defer() }
			if d, ok := opts.Sink.(deferrer); ok {
				d.Defer()
			}
			m.SetWarmCallback(a.Arm)
		}
	}
	k.Run()
	return Result{Machine: m, Kernel: k, Stats: m.Stats(), Wall: time.Since(start)}, nil
}
