package workload

import (
	"testing"

	"fssim/internal/machine"
)

// TestSmokeAllBenchmarks runs every benchmark at reduced scale in
// full-system mode and checks basic sanity: completion, nonzero cycles, and
// the expected OS-intensity split.
func TestSmokeAllBenchmarks(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Scale = 0.25
			res, err := Run(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			t.Logf("%s: %d insts (%d user / %d OS = %.0f%%), %d cycles, IPC %.3f, %d intervals, L2 MR %.4f",
				name, st.Insts, st.UserInsts, st.OSInsts,
				100*float64(st.OSInsts)/float64(st.Insts),
				st.Cycles, st.IPC(), st.Intervals, st.Mem.L2.MissRate())
			if st.Insts == 0 || st.Cycles == 0 {
				t.Fatalf("empty run: %+v", st)
			}
			b, _ := Lookup(name)
			osFrac := float64(st.OSInsts) / float64(st.Insts)
			if b.OSIntensive && osFrac < 0.4 {
				t.Errorf("OS-intensive benchmark ran only %.0f%% OS instructions", 100*osFrac)
			}
			if !b.OSIntensive && osFrac > 0.3 {
				t.Errorf("compute benchmark ran %.0f%% OS instructions", 100*osFrac)
			}
		})
	}
}

// TestSmokeAppOnly checks that App-Only simulation completes and costs
// dramatically fewer cycles than full-system for an OS-intensive workload.
func TestSmokeAppOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.25
	full, err := Run("ab-rand", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Machine.Mode = machine.AppOnly
	app, err := Run("ab-rand", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full=%d cycles, app-only=%d cycles (ratio %.1fx)",
		full.Stats.Cycles, app.Stats.Cycles,
		float64(full.Stats.Cycles)/float64(app.Stats.Cycles))
	if app.Stats.Cycles*2 >= full.Stats.Cycles {
		t.Errorf("app-only (%d) should be far cheaper than full (%d)",
			app.Stats.Cycles, full.Stats.Cycles)
	}
}
